// Package fancy is a Go implementation of FANcY — "FAst In-Network GraY
// Failure Detection for ISPs" (Costa Molero, Vissicchio, Vanbever;
// SIGCOMM 2022) — together with the packet-level simulation substrate,
// baselines and benchmark harness needed to reproduce the paper's
// evaluation.
//
// FANcY detects and localizes gray failures: hardware malfunctions that
// silently drop a subset of the packets crossing a link, invisible to
// hello protocols such as BFD and too fine-grained for sampled monitoring
// such as NetFlow. Pairs of switches run a stop-and-wait counting protocol:
// the upstream tags the packets of each monitored entry with a counter ID,
// both sides count the same packets with the same counters, and the
// downstream reports its counters at the end of every counting session.
// High-priority entries get dedicated counters; everything else is covered
// by a hash-based tree explored at runtime by a zooming algorithm.
//
// # Quick start
//
//	s := fancy.NewSim(1)
//	ml := fancy.NewMonitoredLink(s, fancy.Config{
//		HighPriority: []fancy.EntryID{10},
//		MemoryBytes:  20_000, // 20 KB per port, as in the paper
//	})
//	ml.OnEvent(func(ev fancy.Event) { fmt.Println(ev) })
//	ml.UDP(10, 2e6, 0, 10*fancy.Second)                  // 2 Mbps for entry 10
//	ml.FailEntries(2*fancy.Second, 1.0, 10)              // blackhole at t=2s
//	s.Run(10 * fancy.Second)
//	fmt.Println(ml.Flagged(10))                          // true
//
// The examples directory contains runnable programs; cmd/fancy-bench
// regenerates every table and figure of the paper.
package fancy

import (
	core "fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

// Core detector types, re-exported.
type (
	// Config is FANcY's input: high-priority entries, memory budget and
	// protocol timing (Figure 1 of the paper).
	Config = core.Config
	// Detector attaches FANcY to a switch.
	Detector = core.Detector
	// Outputs are the per-port result structures: the dedicated-entry
	// flag array and the hash-path Bloom filter.
	Outputs = core.Outputs
	// Layout is the memory plan computed by input translation.
	Layout = core.Layout
	// Event is a detection event.
	Event = core.Event
	// EventKind classifies events.
	EventKind = core.EventKind
	// DetectorStats are the detector's cumulative robustness counters.
	DetectorStats = core.DetectorStats
	// TreeParams are the hash-based tree's width/depth/split.
	TreeParams = tree.Params
)

// Event kinds.
const (
	EventDedicated     = core.EventDedicated
	EventTreeZoomStart = core.EventTreeZoomStart
	EventTreeLeaf      = core.EventTreeLeaf
	EventUniform       = core.EventUniform
	EventLinkDown      = core.EventLinkDown
	EventLinkUp        = core.EventLinkUp
)

// Simulation substrate types, re-exported.
type (
	// Sim is the discrete-event simulator all experiments run on.
	Sim = sim.Sim
	// Time is a virtual timestamp in nanoseconds.
	Time = sim.Time
	// EntryID identifies a forwarding entry (destination prefix).
	EntryID = netsim.EntryID
	// Packet is the simulated packet.
	Packet = netsim.Packet
	// PacketPool recycles data packets for an allocation-free datapath.
	PacketPool = netsim.PacketPool
	// Switch is the P4-like switch model.
	Switch = netsim.Switch
	// Host is an end system.
	Host = netsim.Host
	// Failure injects gray-failure drops into a link direction.
	Failure = netsim.Failure
	// Chaos injects adversarial link conditions (corruption, duplication,
	// reordering, flapping) into a link direction.
	Chaos = netsim.Chaos
	// ChaosStats tallies what a Chaos injector did.
	ChaosStats = netsim.ChaosStats
	// Route is a forwarding decision with optional backup next hop.
	Route = netsim.Route
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewSim creates a deterministic simulator from a seed.
func NewSim(seed int64) *Sim { return sim.New(seed) }

// NewDetector attaches a FANcY detector to a switch, validating the
// configuration against its memory budget.
func NewDetector(s *Sim, sw *Switch, cfg Config) (*Detector, error) {
	return core.NewDetector(s, sw, cfg)
}

// NewSwitch creates a switch with the given port count.
func NewSwitch(s *Sim, name string, ports int) *Switch { return netsim.NewSwitch(s, name, ports) }

// NewHost creates a host.
func NewHost(s *Sim, name string) *Host { return netsim.NewHost(s, name) }

// Connect joins two node ports with a full-duplex link.
func Connect(s *Sim, a netsim.Node, aPort int, b netsim.Node, bPort int, cfg netsim.LinkConfig) *netsim.Link {
	return netsim.Connect(s, a, aPort, b, bPort, cfg)
}

// MonitoredLink is the canonical FANcY deployment: two switches joined by
// a monitored link, a source host feeding the upstream switch and a sink
// host behind the downstream one. The upstream runs the sender FSMs, the
// downstream the receiver FSMs, and failures are injected on the
// upstream→downstream direction.
type MonitoredLink struct {
	Sim  *Sim
	Src  *Host
	Dst  *Host
	Up   *Switch
	Down *Switch
	Link *netsim.Link

	// Upstream is the detector comparing counters (the one raising
	// events); Downstream runs the receiver side.
	Upstream   *Detector
	Downstream *Detector

	// Out holds the monitored port's output structures.
	Out *Outputs

	monitorPort int
	pool        *netsim.PacketPool
}

// MonitoredLinkOptions tune the topology. Zero values give the paper's
// defaults: 10 ms inter-switch delay, 100 Gbps links.
type MonitoredLinkOptions struct {
	Delay   Time
	RateBps float64
}

// NewMonitoredLink builds the canonical topology with default options; it
// panics if cfg does not fit its memory budget (use NewDetector directly
// for error handling).
func NewMonitoredLink(s *Sim, cfg Config) *MonitoredLink {
	ml, err := NewMonitoredLinkOpts(s, cfg, MonitoredLinkOptions{})
	if err != nil {
		panic(err)
	}
	return ml
}

// NewMonitoredLinkOpts builds the canonical topology.
func NewMonitoredLinkOpts(s *Sim, cfg Config, opts MonitoredLinkOptions) (*MonitoredLink, error) {
	if opts.Delay == 0 {
		opts.Delay = 10 * Millisecond
	}
	if opts.RateBps <= 0 {
		opts.RateBps = 100e9
	}
	ml := &MonitoredLink{Sim: s, monitorPort: 1}
	ml.Src = NewHost(s, "src")
	ml.Dst = NewHost(s, "dst")
	ml.Up = NewSwitch(s, "up", 2)
	ml.Down = NewSwitch(s, "down", 2)
	edge := netsim.LinkConfig{Delay: Millisecond, RateBps: opts.RateBps, QueueBytes: 1 << 24}
	corecfg := netsim.LinkConfig{Delay: opts.Delay, RateBps: opts.RateBps, QueueBytes: 1 << 24}
	Connect(s, ml.Src, 0, ml.Up, 0, edge)
	ml.Link = Connect(s, ml.Up, 1, ml.Down, 0, corecfg)
	Connect(s, ml.Down, 1, ml.Dst, 0, edge)
	ml.Up.Routes.Insert(0, 0, Route{Port: 1, Backup: -1})
	ml.Up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, Route{Port: 0, Backup: -1})
	ml.Down.Routes.Insert(0, 0, Route{Port: 1, Backup: -1})
	ml.Down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, Route{Port: 0, Backup: -1})
	ml.Src.Default = netsim.PacketHandlerFunc(func(*Packet) {})
	ml.Dst.Default = netsim.PacketHandlerFunc(func(*Packet) {})

	var err error
	ml.Upstream, err = NewDetector(s, ml.Up, cfg)
	if err != nil {
		return nil, err
	}
	ml.Downstream, err = NewDetector(s, ml.Down, cfg)
	if err != nil {
		return nil, err
	}
	ml.Downstream.ListenPort(0)
	ml.Out = ml.Upstream.MonitorPort(1)
	return ml, nil
}

// OnEvent registers the detection event callback.
func (ml *MonitoredLink) OnEvent(fn func(Event)) { ml.Upstream.OnEvent = fn }

// UsePool installs a shared packet pool on the topology: UDP sources draw
// datagrams from it, the end hosts and the monitored link recycle them at
// their death points, and the steady-state datapath stops allocating. Call
// before UDP; returns the pool for Gets/Reuses inspection.
func (ml *MonitoredLink) UsePool() *netsim.PacketPool {
	if ml.pool == nil {
		ml.pool = netsim.NewPacketPool()
		sink := netsim.PacketHandlerFunc(func(pkt *Packet) { ml.pool.Put(pkt) })
		ml.Src.Default = sink
		ml.Dst.Default = sink
		ml.Link.SetPool(ml.pool)
	}
	return ml.pool
}

// UDP starts a constant-bit-rate UDP stream for entry between start and
// stop virtual times.
func (ml *MonitoredLink) UDP(entry EntryID, rateBps float64, start, stop Time) {
	ml.Sim.ScheduleAt(start, func() {
		u := traffic.NewUDPSource(ml.Sim, ml.Src, netsim.FlowID(entry), entry,
			netsim.EntryAddr(entry, 1), rateBps, 1000, stop)
		u.Pool = ml.pool
		u.Start()
	})
}

// TCP schedules closed-loop TCP flows for entry: flowsPerSec arrivals
// carrying rateBps aggregate for the given duration (flows last ≈1 s, as
// in the paper's synthetic workloads).
func (ml *MonitoredLink) TCP(entry EntryID, rateBps, flowsPerSec float64, duration Time) {
	drv := traffic.NewDriver(ml.Sim, ml.Src, ml.Dst, tcp.Config{})
	specs := traffic.SteadyEntry(entry, rateBps, flowsPerSec, duration, ml.Sim.Rand())
	drv.Schedule(specs)
}

// FailEntries injects a gray failure dropping rate of the listed entries'
// packets from time at onward.
func (ml *MonitoredLink) FailEntries(at Time, rate float64, entries ...EntryID) *Failure {
	f := netsim.FailEntries(ml.Sim.Rand().Int63(), at, rate, entries...)
	ml.Link.AB.SetFailure(f)
	return f
}

// FailUniform injects link-level random loss (affecting all packets,
// control messages included) from time at onward.
func (ml *MonitoredLink) FailUniform(at Time, rate float64) *Failure {
	f := netsim.FailUniform(ml.Sim.Rand().Int63(), at, rate)
	ml.Link.AB.SetFailure(f)
	return f
}

// ChaosForward installs an adversarial link-condition injector on the
// monitored (upstream→downstream) direction. Its RNG derives from the
// simulation seed, so runs replay deterministically. Configure the returned
// injector's fields before Sim.Run.
func (ml *MonitoredLink) ChaosForward() *Chaos {
	c := netsim.NewChaos(ml.Sim, "ml/forward")
	ml.Link.AB.SetChaos(c)
	return c
}

// ChaosReverse is ChaosForward for the downstream→upstream direction (the
// one carrying StartACK and Report messages).
func (ml *MonitoredLink) ChaosReverse() *Chaos {
	c := netsim.NewChaos(ml.Sim, "ml/reverse")
	ml.Link.BA.SetChaos(c)
	return c
}

// Flagged reports whether FANcY has flagged the entry on the monitored
// link — by dedicated counter or hash-based tree.
func (ml *MonitoredLink) Flagged(entry EntryID) bool {
	return ml.Upstream.Flagged(ml.monitorPort, entry)
}

// MonitorPort returns the upstream port under monitoring.
func (ml *MonitoredLink) MonitorPort() int { return ml.monitorPort }
