package fancy

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The package-doc quick start, verbatim in spirit.
	s := NewSim(1)
	ml := NewMonitoredLink(s, Config{
		HighPriority: []EntryID{10},
		MemoryBytes:  20_000,
	})
	var events []Event
	ml.OnEvent(func(ev Event) { events = append(events, ev) })
	ml.UDP(10, 2e6, 0, 10*Second)
	ml.FailEntries(2*Second, 1.0, 10)
	s.Run(10 * Second)

	if !ml.Flagged(10) {
		t.Fatal("blackholed entry not flagged")
	}
	// The first mismatch event is the detection; later sessions keep
	// re-flagging while the failure persists.
	found := false
	for _, ev := range events {
		if ev.Kind == EventDedicated && ev.Entry == 10 {
			found = true
			if lat := ev.Time - 2*Second; lat <= 0 || lat > 500*Millisecond {
				t.Errorf("first detection latency = %v, want ≲ exchange interval", lat)
			}
			break
		}
	}
	if !found {
		t.Error("no dedicated-mismatch event raised")
	}
}

func TestMonitoredLinkTreeEntry(t *testing.T) {
	s := NewSim(2)
	ml := NewMonitoredLink(s, Config{
		HighPriority: []EntryID{10},
		MemoryBytes:  20_000,
	})
	ml.UDP(500, 2e6, 0, 10*Second) // best-effort entry
	ml.UDP(600, 2e6, 0, 10*Second) // healthy background
	ml.FailEntries(2*Second, 1.0, 500)
	s.Run(10 * Second)
	if !ml.Flagged(500) {
		t.Fatal("best-effort entry not flagged via the hash-based tree")
	}
	if ml.Flagged(600) {
		t.Error("healthy entry flagged")
	}
}

func TestMonitoredLinkTCPTraffic(t *testing.T) {
	s := NewSim(3)
	ml := NewMonitoredLink(s, Config{
		HighPriority: []EntryID{10},
		MemoryBytes:  20_000,
	})
	ml.TCP(10, 2e6, 20, 8*Second)
	ml.FailEntries(2*Second, 0.5, 10)
	s.Run(10 * Second)
	if !ml.Flagged(10) {
		t.Fatal("50% loss on TCP traffic not flagged")
	}
}

func TestMonitoredLinkUniform(t *testing.T) {
	s := NewSim(4)
	ml := NewMonitoredLink(s, Config{
		HighPriority: []EntryID{10},
		Tree:         TreeParams{Width: 64, Depth: 3, Split: 2, Pipelined: true},
	})
	for e := EntryID(100); e < 300; e++ {
		ml.UDP(e, 500e3, 0, 8*Second)
	}
	uniform := false
	ml.OnEvent(func(ev Event) {
		if ev.Kind == EventUniform {
			uniform = true
		}
	})
	ml.FailEntries(2*Second, 0.5, entryRange(100, 300)...)
	s.Run(8 * Second)
	if !uniform {
		t.Error("all-entry failure not classified as uniform")
	}
}

func TestNewMonitoredLinkRejectsBadBudget(t *testing.T) {
	s := NewSim(5)
	hp := make([]EntryID, 10_000)
	for i := range hp {
		hp[i] = EntryID(i)
	}
	if _, err := NewMonitoredLinkOpts(s, Config{HighPriority: hp, MemoryBytes: 1000},
		MonitoredLinkOptions{}); err == nil {
		t.Fatal("over-budget config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMonitoredLink should panic on invalid config")
		}
	}()
	NewMonitoredLink(s, Config{HighPriority: hp, MemoryBytes: 1000})
}

func TestMonitoredLinkUniformLinkLoss(t *testing.T) {
	// FailUniform hits everything — control messages included — so a
	// total outage surfaces as link-down rather than per-entry flags.
	s := NewSim(6)
	ml := NewMonitoredLink(s, Config{HighPriority: []EntryID{10}, MemoryBytes: 20_000})
	if ml.MonitorPort() != 1 {
		t.Fatalf("MonitorPort = %d, want 1", ml.MonitorPort())
	}
	down := false
	ml.OnEvent(func(ev Event) {
		if ev.Kind == EventLinkDown {
			down = true
		}
	})
	ml.UDP(10, 1e6, 0, 4*Second)
	ml.FailUniform(1*Second, 1.0)
	s.Run(4 * Second)
	if !down {
		t.Fatal("total link loss did not raise link-down")
	}
	if !ml.Upstream.LinkDown(ml.MonitorPort()) {
		t.Error("LinkDown(port) = false during the outage")
	}
}

func TestLayoutPlan(t *testing.T) {
	cfg := Config{MemoryBytes: 20_000, HighPriority: []EntryID{1, 2, 3}}
	l, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if l.Dedicated != 3 || l.Tree.Width == 0 {
		t.Errorf("layout = %+v", l)
	}
	if l.String() == "" {
		t.Error("layout must render")
	}
}

func entryRange(lo, hi EntryID) []EntryID {
	var out []EntryID
	for e := lo; e < hi; e++ {
		out = append(out, e)
	}
	return out
}
