package fancy

// One benchmark per table and figure of the paper's evaluation. Each wraps
// the corresponding driver in internal/exp at Quick scale (subsampled
// grids, shortened runs); `cmd/fancy-bench -full` regenerates the
// paper-scale versions. The benchmark output includes the rendered rows so
// `go test -bench=.` doubles as a reproduction run; EXPERIMENTS.md records
// paper-vs-measured values.

import (
	"testing"
	"time"

	"fancy/internal/exp"
	"fancy/internal/netsim"
)

const benchSeed = 20220822 // SIGCOMM'22 started on August 22

func BenchmarkTable2LossRadar(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table2()
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func BenchmarkFigure2NetSeer(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure2()
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func BenchmarkFigure7Dedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure7(exp.Quick, benchSeed)
		if r.TPR[0][0] < 0.99 {
			b.Fatalf("dedicated TPR regression: %v", r.TPR[0][0])
		}
	}
}

func BenchmarkFigure8ZoomingSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure8(exp.Quick, benchSeed)
		if len(r.MinRank) != 4 {
			b.Fatal("missing zooming speeds")
		}
	}
}

func BenchmarkFigure9HashTreeSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure9Single(exp.Quick, benchSeed)
		if r.TPR[0][0] < 0.99 {
			b.Fatalf("tree TPR regression: %v", r.TPR[0][0])
		}
	}
}

func BenchmarkFigure9HashTreeMulti(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure9Multi(exp.Quick, benchSeed)
		if r.TPR[0][0] < 0.8 {
			b.Fatalf("multi-entry TPR regression: %v", r.TPR[0][0])
		}
	}
}

func BenchmarkUniformFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.UniformFailures(exp.Quick, benchSeed)
		for j := range r.LossRates {
			if !r.Detected[j] {
				b.Fatalf("uniform loss %v undetected", r.LossRates[j])
			}
		}
	}
}

func BenchmarkTable3Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Table3(exp.Quick, benchSeed)
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.BaselineComparison(exp.Quick, benchSeed)
		if len(r.Rows) != 5 {
			b.Fatal("missing designs")
		}
	}
}

func BenchmarkTable4Resources(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table4()
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func BenchmarkTable5TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table5(exp.Quick)
	}
}

func BenchmarkFigure10Reroute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure10(exp.Quick, benchSeed)
		for _, s := range r.Series {
			if s.ReroutedAt == 0 {
				b.Fatalf("%s: reroute regression", s.Label)
			}
		}
	}
}

func BenchmarkFleetAbilene(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.FleetAbilene(exp.Quick, benchSeed)
		for _, row := range r.Rows {
			if !row.Exact {
				b.Fatalf("%s: localization regression", row.Link)
			}
		}
	}
}

func BenchmarkFigure11Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure11(exp.Quick, benchSeed)
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := exp.Overhead()
		if o.DedicatedFraction <= 0 {
			b.Fatal("overhead regression")
		}
	}
}

func BenchmarkSweepExchangeFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.ExchangeFrequencySweep(exp.Quick, benchSeed)
		if len(r.Rows) != 4 {
			b.Fatal("missing intervals")
		}
	}
}

func BenchmarkSweepLinkDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.DelaySweep(exp.Quick, benchSeed)
		if len(r.Rows) != 2 {
			b.Fatal("missing delays")
		}
	}
}

func BenchmarkAblationStrawman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.AblationStrawman(exp.Quick, benchSeed)
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.AblationSelection(exp.Quick, benchSeed)
		if len(r.Rows) != 2 {
			b.Fatal("missing policies")
		}
	}
}

func BenchmarkAblationBlink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.AblationBlink(exp.Quick, benchSeed)
		if len(r.Rows) != 2 {
			b.Fatal("missing scenarios")
		}
	}
}

func BenchmarkVerifiedReroute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.VerifiedReroute(exp.Quick, benchSeed)
		if r.BaselineLoopAtoms < 1 {
			b.Fatal("baseline installed no loop; the chaos composition regressed")
		}
		for _, row := range r.Rows {
			if !row.Exact || row.Rejected == 0 || row.Repaired == 0 || row.Unsafe != 0 {
				b.Fatalf("seed %d: gate regression %+v", row.Seed, row)
			}
		}
	}
}

func BenchmarkHHChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.HHChurn(exp.Quick, benchSeed)
		if r.DynamicMedian >= r.StaticMedian {
			b.Fatalf("dynamic allocation regression: median %v >= static %v",
				r.DynamicMedian, r.StaticMedian)
		}
	}
}

// TestBenchArtifact regenerates BENCH_fleet.json, the machine-readable
// benchmark cells (TTL medians per sweep cell plus wall-clock) that CI
// archives as a build artifact. Wall-clock is measured here, outside the
// simulator, which is why the walltime suppressions are sound.
func TestBenchArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("artifact generation skipped in -short mode")
	}
	var cells []exp.BenchCell
	stamp := func(run func() []exp.BenchCell) {
		start := time.Now() //lint:allow walltime wall-clock of the host run, not simulated time
		out := run()
		wall := time.Since(start).Seconds() //lint:allow walltime wall-clock of the host run, not simulated time
		for i := range out {
			out[i].WallSeconds = wall
		}
		cells = append(cells, out...)
	}
	stamp(func() []exp.BenchCell { return exp.FleetAbilene(exp.Quick, benchSeed).BenchCells(benchSeed) })
	stamp(func() []exp.BenchCell { return exp.FleetAbileneVerified(exp.Quick, benchSeed).BenchCells(benchSeed) })
	stamp(func() []exp.BenchCell { return exp.HHChurn(exp.Quick, benchSeed).BenchCells() })
	stamp(func() []exp.BenchCell { return exp.VerifiedReroute(exp.Quick, benchSeed).BenchCells() })
	stamp(func() []exp.BenchCell {
		epoch := time.Now() //lint:allow walltime stopwatch epoch for the latency cell, measured outside the simulator
		return []exp.BenchCell{exp.VerifyLatencyCell(benchSeed, func() float64 {
			return time.Since(epoch).Seconds() //lint:allow walltime stopwatch read for the latency cell, measured outside the simulator
		})}
	})
	stamp(func() []exp.BenchCell {
		epoch := time.Now() //lint:allow walltime stopwatch epoch for the sim-core cells, measured outside the simulator
		return exp.SimCoreBenchCells(benchSeed, func() float64 {
			return time.Since(epoch).Seconds() //lint:allow walltime stopwatch read for the sim-core cells, measured outside the simulator
		})
	})
	if err := exp.WriteBenchJSON("BENCH_fleet.json", cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.WallSeconds <= 0 || (c.TTLMedianMs <= 0 && c.Experiment != "fleet") {
			t.Errorf("degenerate cell: %+v", c)
		}
	}
}

// BenchmarkDetectorHotPath measures the per-packet cost of the detector's
// egress tagging + counting on a monitored link, the data-plane fast path.
func BenchmarkDetectorHotPath(b *testing.B) {
	s := NewSim(1)
	ml := NewMonitoredLink(s, Config{
		HighPriority: []EntryID{10},
		MemoryBytes:  20_000,
	})
	ml.UDP(10, 50e6, 0, Time(b.N+1)*Millisecond)
	ml.UDP(500, 50e6, 0, Time(b.N+1)*Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(Time(b.N) * Millisecond)
}

// BenchmarkSimEventChurn measures the engine's steady-state event cycle:
// one self-rescheduling After chain, pop + execute + recycle per iteration.
// The pooled engine must not allocate here.
func BenchmarkSimEventChurn(b *testing.B) {
	s := NewSim(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		s.After(Microsecond, tick)
	}
	s.After(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(Time(b.N) * Microsecond)
	if n < b.N {
		b.Fatalf("executed %d ticks, want ≥ %d", n, b.N)
	}
}

// BenchmarkSimTimerStop measures schedule + cancel of a long-horizon timer,
// the Timer.Stop O(log n) removal path that used to leak cancelled events.
func BenchmarkSimTimerStop(b *testing.B) {
	s := NewSim(1)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.ScheduleTimer(Second, nop)
		tm.Stop()
	}
	if s.Pending() != 0 {
		b.Fatalf("leaked %d events", s.Pending())
	}
}

// BenchmarkSimHeap measures raw heap throughput under a deep queue: 1024
// staggered self-rescheduling chains keep the 4-ary heap realistically
// loaded while events push and pop past each other.
func BenchmarkSimHeap(b *testing.B) {
	s := NewSim(1)
	const chains = 1024
	for i := 0; i < chains; i++ {
		period := Time(1000 + i) // staggered so chains interleave
		var tick func()
		tick = func() { s.After(period, tick) }
		s.After(period, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(Time(b.N) * 2000)
}

// BenchmarkLinkLane measures the per-packet cost of the serialized per-link
// lane with pooling: send, serialize, propagate, deliver, recycle.
func BenchmarkLinkLane(b *testing.B) {
	s := NewSim(1)
	src := NewHost(s, "src")
	dst := NewHost(s, "dst")
	l := Connect(s, src, 0, dst, 0, netsim.LinkConfig{
		Delay: Millisecond, RateBps: 100e9, QueueBytes: 1 << 24,
	})
	pool := netsim.NewPacketPool()
	src.SetPool(pool)
	dst.SetPool(pool)
	l.SetPool(pool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := pool.Get()
		pkt.Proto = netsim.ProtoUDP
		pkt.Size = 1000
		src.Send(pkt)
		s.Run(0)
	}
}
