package mgmt

import (
	"fmt"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

type rig struct {
	s   *sim.Sim
	net *Network
	srv *Server
	cl  *Client

	got  []uint64 // delivered (unique) report seqs, in delivery order
	vals []any
}

func newRig(t *testing.T, seed int64, cfg Config) *rig {
	t.Helper()
	r := &rig{s: sim.New(seed)}
	r.net = NewNetwork(r.s, cfg)
	r.srv = NewServer(r.s, r.net, "corr")
	r.srv.OnReport = func(from string, seq uint64, payload any) {
		if from != "sw" {
			t.Fatalf("report from %q", from)
		}
		r.got = append(r.got, seq)
		r.vals = append(r.vals, payload)
	}
	r.cl = NewClient(r.s, r.net, "sw", "corr")
	return r
}

func TestPerfectChannelDeliversInOrder(t *testing.T) {
	r := newRig(t, 1, Config{})
	for i := 0; i < 10; i++ {
		r.cl.Send(i)
	}
	r.s.Run(sim.Second)
	if len(r.got) != 10 {
		t.Fatalf("delivered %d reports, want 10", len(r.got))
	}
	for i, seq := range r.got {
		if seq != uint64(i+1) || r.vals[i] != i {
			t.Fatalf("report %d: seq=%d val=%v", i, seq, r.vals[i])
		}
	}
	if r.srv.Holes() != 0 {
		t.Fatalf("holes=%d on a perfect channel", r.srv.Holes())
	}
	if !r.srv.Alive("sw") {
		t.Fatal("client not alive despite heartbeats")
	}
}

func TestLossyChannelRetriesToCompletion(t *testing.T) {
	r := newRig(t, 7, Config{Loss: 0.3, Duplicate: 0.1, Jitter: sim.Millisecond})
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		r.s.Schedule(sim.Time(i)*2*sim.Millisecond, func() { r.cl.Send(i) })
	}
	r.s.Run(5 * sim.Second)
	if len(r.got) != n {
		t.Fatalf("delivered %d unique reports, want %d (retries must recover 30%% loss)", len(r.got), n)
	}
	if r.cl.Stats.Retries == 0 {
		t.Fatal("no retries under 30% loss")
	}
	if r.srv.Stats.Duplicates == 0 {
		t.Fatal("no duplicates suppressed despite Duplicate=0.1 and retransmissions")
	}
	if r.srv.Holes() != 0 {
		t.Fatalf("holes=%d, want 0 after retries", r.srv.Holes())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (string, NetStats) {
		s := sim.New(99)
		net := NewNetwork(s, Config{Loss: 0.25, Duplicate: 0.2, Jitter: 2 * sim.Millisecond})
		srv := NewServer(s, net, "corr")
		var log string
		srv.OnReport = func(from string, seq uint64, payload any) {
			log += fmt.Sprintf("%v/%d;", s.Now(), seq)
		}
		cl := NewClient(s, net, "sw", "corr")
		for i := 0; i < 30; i++ {
			i := i
			s.Schedule(sim.Time(i)*sim.Millisecond, func() { cl.Send(i) })
		}
		s.Run(2 * sim.Second)
		return log, net.Stats
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Fatalf("non-deterministic replay:\n%s\nvs\n%s\n%+v vs %+v", l1, l2, s1, s2)
	}
}

func TestPartitionOfflineSpoolAndHeal(t *testing.T) {
	r := newRig(t, 3, Config{})
	var transitions []bool
	r.cl.OnOnline = func(on bool) { transitions = append(transitions, on) }

	r.s.Schedule(100*sim.Millisecond, func() { r.net.Partition("sw") })
	for i := 0; i < 20; i++ {
		i := i
		r.s.Schedule(sim.Time(100+i*10)*sim.Millisecond, func() { r.cl.Send(i) })
	}
	r.s.Schedule(400*sim.Millisecond, func() {
		if r.cl.Online() {
			t.Error("client still online mid-partition")
		}
	})
	r.s.Schedule(500*sim.Millisecond, func() { r.net.Heal("sw") })
	r.s.Run(2 * sim.Second)

	if len(transitions) < 2 || transitions[0] != false || transitions[len(transitions)-1] != true {
		t.Fatalf("transitions %v, want offline then online", transitions)
	}
	if len(r.got) != 20 {
		t.Fatalf("delivered %d reports after heal, want all 20 (spool replay)", len(r.got))
	}
	for i := 1; i < len(r.got); i++ {
		if r.got[i] <= r.got[i-1] {
			t.Fatalf("spool replay out of order: %v", r.got)
		}
	}
	if r.cl.Stats.Spooled == 0 {
		t.Fatal("nothing spooled during the partition")
	}
}

func TestSpoolOverflowCreatesHoles(t *testing.T) {
	r := newRig(t, 5, Config{SpoolLimit: 4})
	r.net.Partition("sw")
	// Force offline first so sends spool directly.
	r.s.Schedule(100*sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			r.cl.Send(i)
		}
	})
	r.s.Schedule(200*sim.Millisecond, func() { r.net.Heal("sw") })
	r.s.Run(sim.Second)
	if r.cl.Stats.SpoolDrops != 6 {
		t.Fatalf("SpoolDrops=%d, want 6", r.cl.Stats.SpoolDrops)
	}
	if len(r.got) != 4 {
		t.Fatalf("delivered %d, want the 4 surviving reports", len(r.got))
	}
	if h := r.srv.Holes(); h != 6 {
		t.Fatalf("server sees %d holes, want 6", h)
	}
}

func TestCallRPCAndUnavailable(t *testing.T) {
	r := newRig(t, 11, Config{Loss: 0.3})
	r.cl.OnCall = func(req any) (any, error) {
		if req.(string) == "boom" {
			return nil, fmt.Errorf("no such path")
		}
		return "value:" + req.(string), nil
	}
	okCalls, errCalls, unavail := 0, 0, 0
	r.s.Schedule(0, func() {
		r.srv.Call("sw", "x", func(v any, err error) {
			if err != nil || v != "value:x" {
				t.Errorf("call: v=%v err=%v", v, err)
			}
			okCalls++
		})
		r.srv.Call("sw", "boom", func(v any, err error) {
			if err == nil || err.Error() != "no such path" {
				t.Errorf("boom call: v=%v err=%v", v, err)
			}
			errCalls++
		})
	})
	// A partitioned peer yields ErrUnavailable after bounded attempts.
	r.s.Schedule(300*sim.Millisecond, func() {
		r.net.Partition("sw")
		r.srv.Call("sw", "y", func(v any, err error) {
			if err != ErrUnavailable {
				t.Errorf("partitioned call: err=%v, want ErrUnavailable", err)
			}
			unavail++
		})
	})
	r.s.Run(3 * sim.Second)
	if okCalls != 1 || errCalls != 1 || unavail != 1 {
		t.Fatalf("callbacks ok=%d err=%d unavail=%d, want 1/1/1 (exactly once)", okCalls, errCalls, unavail)
	}
}

func TestCrashWindowBehavesLikePartition(t *testing.T) {
	r := newRig(t, 13, Config{})
	r.s.Schedule(100*sim.Millisecond, func() { r.srv.SetAccepting(false) })
	for i := 0; i < 10; i++ {
		i := i
		r.s.Schedule(sim.Time(110+i*10)*sim.Millisecond, func() { r.cl.Send(i) })
	}
	r.s.Schedule(400*sim.Millisecond, func() {
		if r.cl.Online() {
			t.Error("client did not notice the crashed correlator")
		}
		r.srv.SetAccepting(true)
	})
	r.s.Run(2 * sim.Second)
	if len(r.got) != 10 {
		t.Fatalf("delivered %d reports after restart, want all 10", len(r.got))
	}
	if !r.cl.Online() {
		t.Fatal("client never recovered after restart")
	}
}

func TestSeqCheckpointRestoreDedups(t *testing.T) {
	r := newRig(t, 17, Config{})
	for i := 0; i < 5; i++ {
		r.cl.Send(i)
	}
	r.s.Run(50 * sim.Millisecond)
	cp := r.srv.SeqCheckpoint()
	if cp["sw"].Contig != 5 {
		t.Fatalf("checkpoint contig=%d, want 5", cp["sw"].Contig)
	}
	r.srv.RestoreSeq(cp)
	// Replay of an already-consumed seq must be suppressed.
	before := len(r.got)
	r.net.Send(Dgram{From: "sw", To: "corr", Kind: DgramReport, Seq: 3, Payload: "dup"})
	r.s.Run(100 * sim.Millisecond)
	if len(r.got) != before {
		t.Fatal("restored server re-delivered a checkpointed seq")
	}
	if r.srv.Stats.Duplicates == 0 {
		t.Fatal("duplicate not counted")
	}
}

func TestChaosWindowPartition(t *testing.T) {
	s := sim.New(23)
	net := NewNetwork(s, Config{})
	srv := NewServer(s, net, "corr")
	var got int
	srv.OnReport = func(string, uint64, any) { got++ }
	cl := NewClient(s, net, "sw", "corr")
	ch := netsim.NewChaos(s, "mgmt-flap")
	ch.Start = 100 * sim.Millisecond
	ch.End = 300 * sim.Millisecond
	ch.DownFor = 200 * sim.Millisecond // fully down inside the window
	net.SetChaos("sw", ch)

	offlineSeen := false
	cl.OnOnline = func(on bool) {
		if !on {
			offlineSeen = true
		}
	}
	for i := 0; i < 30; i++ {
		i := i
		s.Schedule(sim.Time(i*20)*sim.Millisecond, func() { cl.Send(i) })
	}
	s.Run(3 * sim.Second)
	if !offlineSeen {
		t.Fatal("chaos down-window never drove the client offline")
	}
	if got != 30 {
		t.Fatalf("delivered %d, want all 30 once the window closed", got)
	}
	if ch.Stats.FlapDrops == 0 {
		t.Fatal("chaos flap drops not accounted")
	}
}
