// Package mgmt simulates an ISP management network: the out-of-band channel
// between every switch's telemetry agent and the central fleet correlator.
//
// PR-2's fleet control plane rode on an implicitly perfect in-process
// channel — the one part of the system no failure could touch. Real
// management planes are IP networks that degrade exactly when the data
// plane does: reports are lost, delayed, duplicated and reordered, and
// whole sites are partitioned away from the NOC. This package models that
// channel with the same seed-deterministic knob vocabulary as
// netsim.Chaos (loss, duplication, jitter, down/up partition windows) and
// layers a small reliable protocol on top:
//
//   - Client (switch side): sequence-numbered reports with per-attempt
//     timeouts and bounded retries under exponential backoff + jitter,
//     heartbeat-based connectivity probing, and an offline spool that
//     preserves report order across partitions and correlator crashes;
//   - Server (correlator side): per-client duplicate suppression and
//     gap/hole accounting over the report sequence space, heartbeat
//     liveness tracking, and a Call RPC (the Get/Sample read path) with
//     the same timeout/retry/backoff hardening.
//
// All randomness derives from the simulation seed per directed endpoint
// pair, so identical seeds replay identical management-plane weather.
package mgmt

import (
	"math/rand"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Config tunes both the datagram channel and the reliability protocol.
// The zero value is a perfect, near-instant management network.
type Config struct {
	// Delay is the base one-way datagram delay (default 500 µs).
	Delay sim.Time
	// Jitter adds a uniform extra delay in [0, Jitter) per datagram.
	Jitter sim.Time
	// Loss is the per-datagram drop probability (0..1).
	Loss float64
	// Duplicate is the per-datagram probability of delivering a second
	// copy within DupDelayMax (default 2 ms) of the original.
	Duplicate   float64
	DupDelayMax sim.Time

	// AckTimeout is the client's first-attempt ack wait (default 5 ms);
	// each retry doubles it up to BackoffMax (default 80 ms), with a
	// ±JitterFrac (default 0.25) multiplicative jitter to avoid
	// synchronized retry storms across the fleet.
	AckTimeout sim.Time
	BackoffMax sim.Time
	JitterFrac float64
	// MaxAttempts bounds transmissions per report or RPC attempt cycle
	// (default 5). An exhausted report is parked in the spool rather than
	// silently lost; an exhausted RPC fails with an error.
	MaxAttempts int

	// HeartbeatInterval is the client's liveness-probe cadence (default
	// 10 ms); OfflineAfter consecutive unacknowledged probes or reports
	// (default 3) flip the client to offline/degraded mode.
	HeartbeatInterval sim.Time
	OfflineAfter      int

	// SpoolLimit bounds the offline spool (default 512 reports); overflow
	// evicts the oldest report, which the server will observe as a
	// sequence hole.
	SpoolLimit int

	// UnreachableAfter is the server-side liveness bootstrap horizon: a
	// client not heard from for this long is considered unreachable
	// (default 60 ms) until the phi-accrual window warms up, after which
	// suspicion adapts to the observed arrival jitter.
	UnreachableAfter sim.Time

	// PhiThreshold is the accrual suspicion level treated as failure, used
	// by both the server-side liveness sweep and replica leader election
	// (default DefaultPhiThreshold = 8). PhiWindow and PhiMinSamples size
	// the inter-arrival sample window and its warm-up floor (defaults 100
	// and 5).
	PhiThreshold  float64
	PhiWindow     int
	PhiMinSamples int
}

func (c Config) withDefaults() Config {
	if c.Delay == 0 {
		c.Delay = 500 * sim.Microsecond
	}
	if c.DupDelayMax == 0 {
		c.DupDelayMax = 2 * sim.Millisecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * sim.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 80 * sim.Millisecond
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.25
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * sim.Millisecond
	}
	if c.OfflineAfter == 0 {
		c.OfflineAfter = 3
	}
	if c.SpoolLimit == 0 {
		c.SpoolLimit = 512
	}
	if c.UnreachableAfter == 0 {
		c.UnreachableAfter = 60 * sim.Millisecond
	}
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = DefaultPhiThreshold
	}
	if c.PhiWindow <= 0 {
		c.PhiWindow = DefaultPhiWindow
	}
	if c.PhiMinSamples <= 0 {
		c.PhiMinSamples = DefaultPhiMinSamples
	}
	return c
}

// NewPhi builds a phi-accrual detector from the configuration's suspicion
// knobs, bootstrapped by the fixed UnreachableAfter horizon.
func (c Config) NewPhi() *PhiDetector {
	return NewPhiDetector(c.PhiThreshold, c.PhiWindow, c.PhiMinSamples, c.UnreachableAfter)
}

// DgramKind tags a management datagram.
type DgramKind uint8

// Datagram kinds: the report stream, its acks, the RPC pair and the
// heartbeat pair.
const (
	DgramReport DgramKind = iota
	DgramReportAck
	DgramCallReq
	DgramCallResp
	DgramHeartbeat
	DgramHeartbeatAck
	// DgramRedirect is a server's "not me — talk to Payload" answer to a
	// report or heartbeat that reached a non-leader correlator replica; the
	// client re-targets and retransmits. An empty Payload means "no leader
	// known here": the client keeps rotating through its endpoint list.
	DgramRedirect
	// DgramConsensus carries an encoded replicated-log message between
	// correlator replicas (see internal/fleet's consensus wire format).
	DgramConsensus
)

// Dgram is one management-plane datagram.
type Dgram struct {
	From, To string
	Kind     DgramKind
	Seq      uint64 // report sequence or RPC id
	Payload  any
	Err      string // CallResp only
}

// NetStats counts what the channel did to traffic, fleet-wide.
type NetStats struct {
	Sent           uint64 // datagrams offered to the channel
	Delivered      uint64
	Lost           uint64 // random loss
	Duplicated     uint64 // extra copies delivered
	PartitionDrops uint64 // dropped by a partition (static chaos window or dynamic)
}

// Network is the lossy management fabric. Endpoints register by name; any
// endpoint may send to any other. Impairments apply per directed pair with
// an RNG derived from the simulation seed and the pair label, so delivery
// schedules are independent of registration or send order elsewhere.
type Network struct {
	s   *sim.Sim
	cfg Config

	handlers    map[string]func(Dgram)
	rngs        map[string]*rand.Rand
	partitioned map[string]bool          // dynamically partitioned endpoints
	chaos       map[string]*netsim.Chaos // per-endpoint windowed impairments

	Stats NetStats
}

// NewNetwork builds a management network over s.
func NewNetwork(s *sim.Sim, cfg Config) *Network {
	return &Network{
		s: s, cfg: cfg.withDefaults(),
		handlers:    make(map[string]func(Dgram)),
		rngs:        make(map[string]*rand.Rand),
		partitioned: make(map[string]bool),
		chaos:       make(map[string]*netsim.Chaos),
	}
}

// Config returns the effective (defaults-filled) configuration.
func (n *Network) Config() Config { return n.cfg }

// Register attaches an endpoint's delivery handler.
func (n *Network) Register(name string, handler func(Dgram)) {
	n.handlers[name] = handler
}

// Partition cuts an endpoint off the management network (both directions)
// until Heal. It models a site losing its out-of-band connectivity.
func (n *Network) Partition(name string) { n.partitioned[name] = true }

// Heal reconnects a previously partitioned endpoint.
func (n *Network) Heal(name string) { delete(n.partitioned, name) }

// Partitioned reports whether the endpoint is currently cut off
// (dynamically, or inside a SetChaos down window).
func (n *Network) Partitioned(name string) bool {
	if n.partitioned[name] {
		return true
	}
	return n.chaos[name].DownAt(n.s.Now())
}

// SetChaos attaches a netsim.Chaos schedule to an endpoint: its
// DownFor/UpFor window flaps the endpoint's management connectivity, its
// CorruptData probability acts as extra datagram loss (a management
// datagram with a corrupted payload is discarded whole), and
// Reorder/JitterMax add extra delivery jitter — the same knob semantics
// the data plane's chaos injector uses, applied at the management layer.
func (n *Network) SetChaos(name string, c *netsim.Chaos) { n.chaos[name] = c }

func (n *Network) rng(from, to string) *rand.Rand {
	key := from + ">" + to
	r, ok := n.rngs[key]
	if !ok {
		r = n.s.DeriveRand("mgmt/" + key)
		n.rngs[key] = r
	}
	return r
}

// Send offers one datagram to the channel. Delivery (if any) is scheduled
// for a later event; Send itself never invokes the receiver synchronously.
func (n *Network) Send(d Dgram) {
	n.Stats.Sent++
	now := n.s.Now()
	if n.Partitioned(d.From) || n.Partitioned(d.To) {
		n.Stats.PartitionDrops++
		if c := n.chaos[d.From]; c.DownAt(now) {
			c.Stats.FlapDrops++
		} else if c := n.chaos[d.To]; c.DownAt(now) {
			c.Stats.FlapDrops++
		}
		return
	}
	rng := n.rng(d.From, d.To)
	loss := n.cfg.Loss
	jitterMax := n.cfg.Jitter
	for _, c := range []*netsim.Chaos{n.chaos[d.From], n.chaos[d.To]} {
		if c != nil && c.ActiveAt(now) {
			loss = 1 - (1-loss)*(1-c.CorruptData)
			if c.JitterMax > jitterMax {
				jitterMax = c.JitterMax
			}
		}
	}
	if loss > 0 && rng.Float64() < loss {
		n.Stats.Lost++
		return
	}
	delay := n.cfg.Delay
	if jitterMax > 0 {
		delay += sim.Time(rng.Int63n(int64(jitterMax)))
	}
	n.deliver(d, delay)
	if n.cfg.Duplicate > 0 && rng.Float64() < n.cfg.Duplicate {
		n.Stats.Duplicated++
		n.deliver(d, delay+1+sim.Time(rng.Int63n(int64(n.cfg.DupDelayMax))))
	}
}

func (n *Network) deliver(d Dgram, after sim.Time) {
	n.s.After(after, func() {
		if n.Partitioned(d.To) { // partition started while in flight
			n.Stats.PartitionDrops++
			return
		}
		if h, ok := n.handlers[d.To]; ok {
			n.Stats.Delivered++
			h(d)
		}
	})
}

// backoff computes the attempt'th retransmission timeout with jitter.
func backoff(cfg Config, rng *rand.Rand, attempt int) sim.Time {
	t := cfg.AckTimeout << attempt
	if t > cfg.BackoffMax || t <= 0 {
		t = cfg.BackoffMax
	}
	j := 1 + cfg.JitterFrac*(2*rng.Float64()-1)
	t = sim.Time(float64(t) * j)
	if t < 1 {
		t = 1
	}
	return t
}
