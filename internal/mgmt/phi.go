package mgmt

// Phi-accrual adaptive failure detection (Hayashibara et al., "The φ
// Accrual Failure Detector"; applied adaptively per Satzger et al., "A New
// Adaptive Accrual Failure Detector for Dependable Distributed Systems").
//
// A fixed liveness timeout is the wrong tool on a management network whose
// delay distribution moves: a constant tuned for the quiet network false-
// suspects under loss-driven retry jitter, and one tuned for the stormy
// network detects real crashes late. The accrual detector instead keeps a
// sliding window of observed heartbeat inter-arrival times and outputs a
// continuous suspicion level
//
//	phi(t) = -log10( P(no arrival gap this long | observed gaps) )
//
// using a normal approximation of the windowed distribution. phi ≈ 1 means
// "a gap this long happens about once in 10 gaps"; phi ≥ 8 means the
// current silence is astronomically unlikely under the observed behavior —
// the peer is gone. Because the window tracks whatever jitter the channel
// currently exhibits (loss-induced retransmission gaps included), the
// threshold keeps its meaning as conditions change: suspicion latency
// stretches under heavy loss and tightens on a quiet network, with no
// re-tuning.
//
// Everything here is pure arithmetic over sim.Time values — deterministic
// for a deterministic input schedule, with no wall clock and no randomness.

import (
	"math"

	"fancy/internal/sim"
)

// phiDefaults mirror the liveness sweep and replica-election consumers.
const (
	// DefaultPhiThreshold is the suspicion level treated as failure.
	DefaultPhiThreshold = 8.0
	// DefaultPhiWindow is the inter-arrival sample window size.
	DefaultPhiWindow = 100
	// DefaultPhiMinSamples is the warm-up floor: below it the detector
	// falls back to its bootstrap horizon instead of trusting statistics
	// of two or three gaps.
	DefaultPhiMinSamples = 5
)

// minPhiStdDev keeps the normal approximation honest on a perfectly
// regular channel: a zero-variance window would make any gap infinitely
// suspicious, so the spread is floored at 100 µs.
const minPhiStdDev = 100 * sim.Microsecond

// PhiDetector is one monitored peer's accrual state. The zero value is not
// usable; construct with NewPhiDetector.
type PhiDetector struct {
	threshold float64
	bootstrap sim.Time // fixed horizon used until the window warms up
	minKeep   int      // samples required before the statistics are trusted

	window []sim.Time // inter-arrival ring buffer
	next   int        // ring write cursor

	last  sim.Time // most recent arrival
	born  sim.Time // when monitoring (re)started; anchors the bootstrap horizon
	heard bool
}

// NewPhiDetector builds a detector with the given suspicion threshold,
// window size, warm-up sample count and bootstrap horizon; zero values take
// the package defaults (bootstrap must be provided by the caller — it is
// the consumer's legacy fixed timeout).
func NewPhiDetector(threshold float64, window, minSamples int, bootstrap sim.Time) *PhiDetector {
	if threshold <= 0 {
		threshold = DefaultPhiThreshold
	}
	if window <= 0 {
		window = DefaultPhiWindow
	}
	if minSamples <= 0 {
		minSamples = DefaultPhiMinSamples
	}
	return &PhiDetector{
		threshold: threshold,
		bootstrap: bootstrap,
		minKeep:   minSamples,
		window:    make([]sim.Time, 0, window),
	}
}

// Observe records one arrival (heartbeat, ack, or any sign of life) at now.
// Out-of-order observations (now before the last arrival) are ignored: the
// simulator delivers in timestamp order, but duplicated datagrams can share
// an instant.
func (p *PhiDetector) Observe(now sim.Time) {
	if p.heard {
		gap := now - p.last
		if gap <= 0 {
			return // duplicate delivery within the same instant
		}
		if len(p.window) < cap(p.window) {
			p.window = append(p.window, gap)
		} else {
			p.window[p.next] = gap
		}
		p.next = (p.next + 1) % cap(p.window)
	}
	p.last = now
	p.heard = true
}

// Heard reports whether the peer was ever observed.
func (p *PhiDetector) Heard() bool { return p.heard }

// LastSeen returns the most recent arrival (0, false if never heard).
func (p *PhiDetector) LastSeen() (sim.Time, bool) { return p.last, p.heard }

// Samples reports how many inter-arrival gaps the window currently holds.
func (p *PhiDetector) Samples() int { return len(p.window) }

// warm reports whether the window holds enough samples to trust.
func (p *PhiDetector) warm() bool { return len(p.window) >= p.minKeep }

// Phi returns the current suspicion level at now. Before the first arrival,
// or before the window warms up, it returns 0 below the bootstrap horizon
// and exactly the threshold at or beyond it (so Suspect degrades to the
// legacy fixed-timeout behavior during warm-up).
func (p *PhiDetector) Phi(now sim.Time) float64 {
	if !p.heard || !p.warm() {
		if p.heard && p.bootstrap > 0 && now-p.last >= p.bootstrap {
			return p.threshold
		}
		if !p.heard && p.bootstrap > 0 && now-p.born >= p.bootstrap {
			return p.threshold // never heard at all: suspect past the horizon
		}
		return 0
	}
	elapsed := now - p.last
	if elapsed <= 0 {
		return 0
	}
	mean, sd := p.stats()
	// P(gap >= elapsed) under the normal approximation; phi = -log10 of it.
	z := (float64(elapsed) - mean) / sd
	pLater := 0.5 * math.Erfc(z/math.Sqrt2)
	if pLater < 1e-300 {
		pLater = 1e-300 // clamp: keep phi finite and comparisons total
	}
	return -math.Log10(pLater)
}

// stats computes the windowed mean and (floored) standard deviation.
func (p *PhiDetector) stats() (mean, sd float64) {
	var sum float64
	for _, g := range p.window {
		sum += float64(g)
	}
	n := float64(len(p.window))
	mean = sum / n
	var varsum float64
	for _, g := range p.window {
		d := float64(g) - mean
		varsum += d * d
	}
	sd = math.Sqrt(varsum / n)
	if sd < float64(minPhiStdDev) {
		sd = float64(minPhiStdDev)
	}
	return mean, sd
}

// Suspect reports whether the suspicion level has crossed the threshold.
func (p *PhiDetector) Suspect(now sim.Time) bool {
	return p.Phi(now) >= p.threshold
}

// Reset forgets everything (peer restarted from scratch, or the monitor
// changed targets): the next Observe starts a fresh window, and the
// bootstrap horizon re-anchors at now — a freshly reset detector grants the
// peer a full grace period before silence counts against it.
func (p *PhiDetector) Reset(now sim.Time) {
	p.window = p.window[:0]
	p.next = 0
	p.heard = false
	p.last = 0
	p.born = now
}
