package mgmt

import (
	"testing"

	"fancy/internal/sim"
)

// feed delivers n arrivals at a fixed cadence starting at start, returning
// the time of the last arrival.
func feed(p *PhiDetector, start, cadence sim.Time, n int) sim.Time {
	t := start
	for i := 0; i < n; i++ {
		p.Observe(t)
		t += cadence
	}
	return t - cadence
}

func TestPhiSteadyCadenceStaysLow(t *testing.T) {
	p := NewPhiDetector(8, 100, 5, 60*sim.Millisecond)
	last := feed(p, 0, 10*sim.Millisecond, 50)
	// Right on cadence: the next expected arrival instant is unremarkable.
	if phi := p.Phi(last + 10*sim.Millisecond); phi >= 8 {
		t.Fatalf("phi at expected arrival = %v, want < threshold", phi)
	}
	if p.Suspect(last + 10*sim.Millisecond) {
		t.Fatal("suspected a peer arriving exactly on cadence")
	}
}

func TestPhiSilenceCrossesThreshold(t *testing.T) {
	p := NewPhiDetector(8, 100, 5, 60*sim.Millisecond)
	last := feed(p, 0, 10*sim.Millisecond, 50)
	if !p.Suspect(last + sim.Second) {
		t.Fatalf("one second of silence after a 10ms cadence not suspected (phi=%v)",
			p.Phi(last+sim.Second))
	}
	// Monotone in elapsed silence.
	if p.Phi(last+100*sim.Millisecond) > p.Phi(last+200*sim.Millisecond) {
		t.Fatal("phi decreased with longer silence")
	}
}

func TestPhiAdaptsToJitter(t *testing.T) {
	// Tight cadence: 10ms gaps. Jittery cadence: alternating 5/40ms gaps
	// (same order of magnitude, much higher variance).
	tight := NewPhiDetector(8, 100, 5, 0)
	feed(tight, 0, 10*sim.Millisecond, 50)
	jittery := NewPhiDetector(8, 100, 5, 0)
	at := sim.Time(0)
	for i := 0; i < 50; i++ {
		jittery.Observe(at)
		if i%2 == 0 {
			at += 5 * sim.Millisecond
		} else {
			at += 40 * sim.Millisecond
		}
	}
	tl, _ := tight.LastSeen()
	jl, _ := jittery.LastSeen()
	gap := 80 * sim.Millisecond
	if tight.Phi(tl+gap) <= jittery.Phi(jl+gap) {
		t.Fatalf("tight window should suspect an 80ms gap harder than a jittery one: tight=%v jittery=%v",
			tight.Phi(tl+gap), jittery.Phi(jl+gap))
	}
}

func TestPhiBootstrapHorizon(t *testing.T) {
	p := NewPhiDetector(8, 100, 5, 60*sim.Millisecond)
	// Never heard: silent until the horizon, suspected past it.
	if p.Suspect(59 * sim.Millisecond) {
		t.Fatal("suspected before bootstrap horizon with no observations")
	}
	if !p.Suspect(60 * sim.Millisecond) {
		t.Fatal("not suspected at bootstrap horizon with no observations")
	}
	// A reset re-anchors the never-heard horizon at the reset time.
	p.Reset(200 * sim.Millisecond)
	if p.Suspect(259 * sim.Millisecond) {
		t.Fatal("suspected before re-anchored bootstrap horizon")
	}
	if !p.Suspect(260 * sim.Millisecond) {
		t.Fatal("not suspected past re-anchored bootstrap horizon")
	}
	// Heard but not warm (fewer than minSamples gaps): horizon counts from
	// the last arrival.
	p.Reset(0)
	p.Observe(100 * sim.Millisecond)
	p.Observe(110 * sim.Millisecond)
	if p.Samples() >= 5 {
		t.Fatalf("expected cold window, got %d samples", p.Samples())
	}
	if p.Suspect(110*sim.Millisecond + 59*sim.Millisecond) {
		t.Fatal("cold detector suspected inside the bootstrap horizon")
	}
	if !p.Suspect(110*sim.Millisecond + 60*sim.Millisecond) {
		t.Fatal("cold detector not suspected past the bootstrap horizon")
	}
}

func TestPhiDuplicateInstantIgnored(t *testing.T) {
	p := NewPhiDetector(8, 100, 5, 0)
	last := feed(p, 0, 10*sim.Millisecond, 10)
	n := p.Samples()
	p.Observe(last) // duplicated datagram, same instant
	if p.Samples() != n {
		t.Fatalf("duplicate-instant observation changed the window: %d -> %d", n, p.Samples())
	}
}

func TestPhiDeterministic(t *testing.T) {
	mk := func() float64 {
		p := NewPhiDetector(8, 100, 5, 60*sim.Millisecond)
		at := sim.Time(0)
		for i := 0; i < 200; i++ {
			p.Observe(at)
			at += sim.Time(1+i%7) * sim.Millisecond
		}
		return p.Phi(at + 50*sim.Millisecond)
	}
	a, b := mk(), mk()
	// Identical inputs must yield bit-identical suspicion (pure arithmetic,
	// no wall clock, no randomness).
	if a != b { //lint:allow floateq identical-input determinism check wants bit equality
		t.Fatalf("phi not deterministic: %v vs %v", a, b)
	}
}

func TestPhiWindowSlides(t *testing.T) {
	p := NewPhiDetector(8, 10, 5, 0)
	// Fill the 10-slot window with slow 50ms gaps, then shift to a fast
	// 5ms cadence; once the window has slid, a 50ms silence — formerly the
	// norm — must look far more suspicious than before.
	last := feed(p, 0, 50*sim.Millisecond, 20)
	before := p.Phi(last + 50*sim.Millisecond)
	last = feed(p, last+5*sim.Millisecond, 5*sim.Millisecond, 20)
	after := p.Phi(last + 50*sim.Millisecond)
	if after <= before {
		t.Fatalf("window did not adapt to the faster cadence: before=%v after=%v", before, after)
	}
	if p.Samples() != 10 {
		t.Fatalf("window grew past its cap: %d", p.Samples())
	}
}
