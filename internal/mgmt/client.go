package mgmt

import (
	"math/rand"
	"sort"

	"fancy/internal/sim"
)

// ClientStats are one switch-side client's lifetime counters.
type ClientStats struct {
	Reports      uint64 // reports accepted from the application
	Retries      uint64 // report retransmissions
	Exhausted    uint64 // reports that ran out of attempts and were spooled
	Spooled      uint64 // reports parked while offline
	SpoolDrops   uint64 // oldest reports evicted by a full spool (become gaps)
	Heartbeats   uint64
	ProbeRetries uint64 // heartbeat retransmissions
	Offline      uint64 // online→offline transitions
	Calls        uint64 // RPC requests served for the correlator
	Redirects    uint64 // redirect answers received from non-leader replicas
	Rotations    uint64 // endpoint rotations after an unanswered target
}

// Client is the switch-side endpoint of the management protocol: it ships
// sequence-numbered reports to the server with bounded retries, probes
// connectivity with heartbeats, and spools reports while the correlator is
// unreachable so a healed partition replays them in order.
type Client struct {
	s    *sim.Sim
	net  *Network
	cfg  Config
	name string
	srv  string // current server endpoint name

	// endpoints is the full candidate server list (correlator replicas).
	// Empty means single-server mode: srv is the only target. With
	// candidates, an unanswered target rotates to the next and a
	// DgramRedirect re-aims directly at the announced leader.
	endpoints []string
	epIdx     int

	nextSeq      uint64 // report sequence space (contiguous, gap-checked)
	probeSeq     uint64 // heartbeat probe ids, a separate space
	lastProbeAck uint64 // highest probe id ever acknowledged
	inflight     map[uint64]*pendingReport
	spool        []spooled // seq-ordered reports awaiting a reachable server

	online bool
	misses int // consecutive unacked probes/reports

	// OnOnline observes connectivity transitions (true = reachable). The
	// fleet layer uses the false edge to engage degraded-mode local
	// protection and the true edge to hand control back.
	OnOnline func(bool)

	// OnCall serves the correlator's RPC reads (the Get/Sample path). A nil
	// handler rejects calls.
	OnCall func(req any) (any, error)

	Stats ClientStats

	// heartbeatFn is the bound heartbeat method, allocated once so the
	// recurring self-reschedule is allocation-free.
	heartbeatFn func()
}

type pendingReport struct {
	seq     uint64
	payload any
	attempt int
	timer   *sim.Timer
}

type spooled struct {
	seq     uint64
	payload any
}

// NewClient registers a client endpoint named name, talking to server srv.
func NewClient(s *sim.Sim, net *Network, name, srv string) *Client {
	c := &Client{
		s: s, net: net, cfg: net.cfg, name: name, srv: srv,
		nextSeq: 1, online: true,
		inflight: make(map[uint64]*pendingReport),
	}
	c.heartbeatFn = c.heartbeat
	net.Register(name, c.onDgram)
	s.After(c.cfg.HeartbeatInterval, c.heartbeatFn)
	return c
}

// Online reports current connectivity belief (optimistic until OfflineAfter
// consecutive probes go unanswered).
func (c *Client) Online() bool { return c.online }

// SpoolLen reports how many reports are currently parked awaiting a
// reachable server.
func (c *Client) SpoolLen() int { return len(c.spool) }

// Target returns the server endpoint currently being addressed.
func (c *Client) Target() string { return c.srv }

// SetEndpoints installs the candidate server list (correlator replicas).
// If the current target is not on the list the client re-aims at the first
// candidate; otherwise it stays put and only rotates on future misses.
func (c *Client) SetEndpoints(eps []string) {
	c.endpoints = append([]string(nil), eps...)
	c.epIdx = 0
	for i, ep := range c.endpoints {
		if ep == c.srv {
			c.epIdx = i
			return
		}
	}
	if len(c.endpoints) > 0 {
		c.Retarget(c.endpoints[0])
	}
}

// Retarget re-aims the client at a different server endpoint and
// retransmits every in-flight report there in ascending sequence order.
// Attempt counters are preserved: a report that already burned attempts on
// a dead leader keeps its budget, so a genuinely unreachable fleet still
// exhausts and spools on the usual schedule.
func (c *Client) Retarget(srv string) {
	if srv == c.srv {
		return
	}
	c.srv = srv
	for i, ep := range c.endpoints {
		if ep == srv {
			c.epIdx = i
			break
		}
	}
	seqs := make([]uint64, 0, len(c.inflight))
	for seq := range c.inflight {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		p := c.inflight[seq]
		p.timer.Stop()
		c.send(p)
	}
}

// rotate advances to the next candidate endpoint after the current target
// went unanswered. No-op without a candidate list.
func (c *Client) rotate() {
	if len(c.endpoints) < 2 {
		return
	}
	c.Stats.Rotations++
	c.Retarget(c.endpoints[(c.epIdx+1)%len(c.endpoints)])
}

func (c *Client) rng() *rand.Rand { return c.net.rng(c.name, c.srv) }

// Send ships one report. While offline the report is spooled; otherwise it
// is transmitted with up to MaxAttempts tries under exponential backoff,
// and parked in the spool if every attempt goes unacknowledged.
func (c *Client) Send(payload any) uint64 {
	seq := c.nextSeq
	c.nextSeq++
	c.Stats.Reports++
	if !c.online {
		c.park(seq, payload)
		return seq
	}
	c.transmit(&pendingReport{seq: seq, payload: payload})
	return seq
}

func (c *Client) transmit(p *pendingReport) {
	c.inflight[p.seq] = p
	c.send(p)
}

func (c *Client) send(p *pendingReport) {
	c.net.Send(Dgram{From: c.name, To: c.srv, Kind: DgramReport, Seq: p.seq, Payload: p.payload})
	p.timer = c.s.Schedule(backoff(c.cfg, c.rng(), p.attempt), func() { c.expire(p) })
}

func (c *Client) expire(p *pendingReport) {
	if _, still := c.inflight[p.seq]; !still {
		return
	}
	p.attempt++
	if p.attempt >= c.cfg.MaxAttempts {
		delete(c.inflight, p.seq)
		c.Stats.Exhausted++
		c.miss()
		c.park(p.seq, p.payload)
		return
	}
	c.Stats.Retries++
	c.send(p)
}

// park inserts a report into the seq-ordered spool, evicting the oldest on
// overflow (the server will see the eviction as a sequence hole).
func (c *Client) park(seq uint64, payload any) {
	c.Stats.Spooled++
	i := len(c.spool)
	for i > 0 && c.spool[i-1].seq > seq {
		i--
	}
	c.spool = append(c.spool, spooled{})
	copy(c.spool[i+1:], c.spool[i:])
	c.spool[i] = spooled{seq: seq, payload: payload}
	if len(c.spool) > c.cfg.SpoolLimit {
		c.spool = c.spool[1:]
		c.Stats.SpoolDrops++
	}
}

func (c *Client) heartbeat() {
	c.Stats.Heartbeats++
	c.probeSeq++
	c.probe(c.probeSeq, 0)
	c.s.After(c.cfg.HeartbeatInterval, c.heartbeatFn)
}

// probe transmits one liveness probe with fast, fixed-interval retries (no
// exponential backoff: this is failure detection, not congestion control).
// A probe counts as missed only after every attempt went unanswered, which
// keeps false offline transitions negligible even at heavy datagram loss
// while a real outage still accumulates OfflineAfter misses within a few
// heartbeat intervals.
func (c *Client) probe(seq uint64, attempt int) {
	c.net.Send(Dgram{From: c.name, To: c.srv, Kind: DgramHeartbeat, Seq: seq})
	c.s.After(c.cfg.AckTimeout, func() {
		if c.lastProbeAck >= seq {
			return
		}
		if attempt+1 >= c.cfg.MaxAttempts {
			c.miss()
			return
		}
		c.Stats.ProbeRetries++
		c.probe(seq, attempt+1)
	})
}

func (c *Client) miss() {
	c.misses++
	// Try the next replica before (and after) giving up: a dead leader is
	// indistinguishable from a partition until another endpoint answers.
	c.rotate()
	if c.online && c.misses >= c.cfg.OfflineAfter {
		c.online = false
		c.Stats.Offline++
		if c.OnOnline != nil {
			c.OnOnline(false)
		}
	}
}

func (c *Client) onDgram(d Dgram) {
	switch d.Kind {
	case DgramReportAck:
		if p, ok := c.inflight[d.Seq]; ok {
			p.timer.Stop()
			delete(c.inflight, d.Seq)
		}
		c.ackSeen()
	case DgramHeartbeatAck:
		if d.Seq > c.lastProbeAck {
			c.lastProbeAck = d.Seq
		}
		c.ackSeen()
	case DgramRedirect:
		c.Stats.Redirects++
		hint, _ := d.Payload.(string)
		if hint != "" && hint != c.srv {
			// The replica answered, so the path is alive — clear the miss
			// streak — but only a real ack flushes the spool (ackSeen).
			c.misses = 0
			c.Retarget(hint)
		}
	case DgramCallReq:
		c.Stats.Calls++
		// Answer the caller, not the configured target: with replicas, any
		// leader may issue reads regardless of where reports are aimed.
		resp := Dgram{From: c.name, To: d.From, Kind: DgramCallResp, Seq: d.Seq}
		if c.OnCall == nil {
			resp.Err = "mgmt: no call handler"
		} else if v, err := c.OnCall(d.Payload); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Payload = v
		}
		c.net.Send(resp)
	}
}

// ackSeen resets the miss counter and, on the offline→online edge, flushes
// the spool in sequence order before announcing the transition.
func (c *Client) ackSeen() {
	c.misses = 0
	if c.online {
		return
	}
	c.online = true
	spool := c.spool
	c.spool = nil
	for _, sp := range spool {
		c.transmit(&pendingReport{seq: sp.seq, payload: sp.payload})
	}
	if c.OnOnline != nil {
		c.OnOnline(true)
	}
}
