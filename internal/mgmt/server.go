package mgmt

import (
	"errors"
	"math/rand"
	"sort"

	"fancy/internal/sim"
)

// ErrUnavailable is returned by Call when every attempt timed out — the
// switch is unreachable over the management plane (partition, crash window
// or sustained loss).
var ErrUnavailable = errors.New("mgmt: peer unavailable")

// ServerStats are the correlator-side protocol counters.
type ServerStats struct {
	Reports    uint64 // report datagrams received (including duplicates)
	Duplicates uint64 // duplicate deliveries suppressed
	Calls      uint64 // RPC attempts issued
	CallFails  uint64 // RPCs that exhausted every attempt
}

// clientTrack is the server's per-client sequencing and liveness record.
type clientTrack struct {
	contig   uint64              // all report seqs <= contig delivered
	above    map[uint64]struct{} // delivered seqs beyond a hole
	lastSeen sim.Time
	heard    bool
	phi      *PhiDetector // accrual liveness over datagram arrivals
}

// pendingCall is one in-flight RPC attempt cycle.
type pendingCall struct {
	id      uint64
	to      string
	req     any
	attempt int
	timer   *sim.Timer
	done    bool
	cb      func(any, error)
}

// Server is the correlator-side endpoint: it acknowledges and deduplicates
// the report streams, tracks per-client sequence holes and liveness, and
// issues hardened RPC reads against switch agents.
type Server struct {
	s    *sim.Sim
	net  *Network
	cfg  Config
	name string

	clients map[string]*clientTrack
	calls   map[uint64]*pendingCall
	nextID  uint64

	// accepting gates inbound processing: a crashed correlator neither
	// handles nor acknowledges anything (see SetAccepting).
	accepting bool

	// Intercept, if set, sees every inbound datagram of an accepting
	// server before normal processing; returning true consumes it. The
	// fleet's replica layer uses it to handle consensus traffic and to
	// redirect agent reports away from non-leader replicas.
	Intercept func(Dgram) bool

	// OnReport receives each unique in-order-or-later report. Duplicates
	// are filtered before this point; reordering is visible (the fleet
	// layer guards with epochs), holes are queryable via Holes.
	OnReport func(from string, seq uint64, payload any)

	Stats ServerStats
}

// NewServer registers the correlator endpoint under name.
func NewServer(s *sim.Sim, net *Network, name string) *Server {
	srv := &Server{
		s: s, net: net, cfg: net.cfg, name: name,
		clients:   make(map[string]*clientTrack),
		calls:     make(map[uint64]*pendingCall),
		accepting: true,
	}
	net.Register(name, srv.onDgram)
	return srv
}

// SetAccepting toggles inbound processing. While false (correlator
// crashed), reports and heartbeats are dropped unacknowledged — clients
// observe the crash exactly like a partition — and any in-flight RPC is
// abandoned.
func (srv *Server) SetAccepting(on bool) {
	srv.accepting = on
	if !on {
		for id, pc := range srv.calls {
			pc.done = true
			pc.timer.Stop()
			delete(srv.calls, id)
		}
	}
}

func (srv *Server) track(name string) *clientTrack {
	ct, ok := srv.clients[name]
	if !ok {
		ct = &clientTrack{above: make(map[uint64]struct{}), phi: srv.cfg.NewPhi()}
		srv.clients[name] = ct
	}
	return ct
}

// seen records one sign of life from a client: the fixed-horizon timestamp
// and the accrual window both advance.
func (ct *clientTrack) seen(now sim.Time) {
	ct.lastSeen, ct.heard = now, true
	ct.phi.Observe(now)
}

func (srv *Server) onDgram(d Dgram) {
	if !srv.accepting {
		return
	}
	if srv.Intercept != nil && srv.Intercept(d) {
		return
	}
	switch d.Kind {
	case DgramReport:
		srv.Stats.Reports++
		ct := srv.track(d.From)
		ct.seen(srv.s.Now())
		// Always ack: the client may have missed a previous ack.
		srv.net.Send(Dgram{From: srv.name, To: d.From, Kind: DgramReportAck, Seq: d.Seq})
		if d.Seq <= ct.contig {
			srv.Stats.Duplicates++
			return
		}
		if _, dup := ct.above[d.Seq]; dup {
			srv.Stats.Duplicates++
			return
		}
		ct.above[d.Seq] = struct{}{}
		for {
			if _, ok := ct.above[ct.contig+1]; !ok {
				break
			}
			delete(ct.above, ct.contig+1)
			ct.contig++
		}
		if srv.OnReport != nil {
			srv.OnReport(d.From, d.Seq, d.Payload)
		}
	case DgramHeartbeat:
		ct := srv.track(d.From)
		ct.seen(srv.s.Now())
		srv.net.Send(Dgram{From: srv.name, To: d.From, Kind: DgramHeartbeatAck, Seq: d.Seq})
	case DgramCallResp:
		pc, ok := srv.calls[d.Seq]
		if !ok || pc.done {
			return // late duplicate of an answered or abandoned call
		}
		pc.done = true
		pc.timer.Stop()
		delete(srv.calls, d.Seq)
		if d.Err != "" {
			pc.cb(nil, errors.New(d.Err))
			return
		}
		pc.cb(d.Payload, nil)
	}
}

// Call issues an RPC read against a switch agent with per-attempt timeouts
// and bounded exponential-backoff retries; cb fires exactly once, with
// ErrUnavailable if every attempt expired. This is the management-plane
// Get/Sample path: the correlator's periodic sweep is a SAMPLE over it and
// verdict-time reads are hardened Gets.
func (srv *Server) Call(to string, req any, cb func(any, error)) {
	srv.nextID++
	pc := &pendingCall{id: srv.nextID, to: to, req: req, cb: cb}
	srv.calls[pc.id] = pc
	srv.attempt(pc)
}

func (srv *Server) attempt(pc *pendingCall) {
	srv.Stats.Calls++
	srv.net.Send(Dgram{From: srv.name, To: pc.to, Kind: DgramCallReq, Seq: pc.id, Payload: pc.req})
	pc.timer = srv.s.Schedule(backoff(srv.cfg, srv.rng(pc.to), pc.attempt), func() {
		if pc.done {
			return
		}
		pc.attempt++
		if pc.attempt >= srv.cfg.MaxAttempts {
			pc.done = true
			delete(srv.calls, pc.id)
			srv.Stats.CallFails++
			pc.cb(nil, ErrUnavailable)
			return
		}
		srv.attempt(pc)
	})
}

func (srv *Server) rng(to string) *rand.Rand { return srv.net.rng(srv.name, to) }

// Alive reports whether the client is believed reachable: phi-accrual
// suspicion over the observed datagram inter-arrival times once the window
// has warmed up, the fixed UnreachableAfter horizon before that.
func (srv *Server) Alive(name string) bool {
	ct, ok := srv.clients[name]
	return ok && ct.heard && !ct.phi.Suspect(srv.s.Now())
}

// Phi returns the current accrual suspicion level for a client (0 if the
// client was never heard from and the bootstrap horizon has not passed).
func (srv *Server) Phi(name string) float64 {
	ct, ok := srv.clients[name]
	if !ok {
		return 0
	}
	return ct.phi.Phi(srv.s.Now())
}

// LastSeen returns when the client was last heard from (0, false if never).
func (srv *Server) LastSeen(name string) (sim.Time, bool) {
	ct, ok := srv.clients[name]
	if !ok || !ct.heard {
		return 0, false
	}
	return ct.lastSeen, true
}

// Holes counts report sequence numbers currently missing below each
// client's delivery frontier — reports lost for good unless a spooled
// retransmission still arrives.
func (srv *Server) Holes() int {
	n := 0
	for _, ct := range srv.clients {
		if len(ct.above) == 0 {
			continue
		}
		var maxSeq uint64
		for s := range ct.above {
			if s > maxSeq {
				maxSeq = s
			}
		}
		n += int(maxSeq-ct.contig) - len(ct.above)
	}
	return n
}

// SeqCheckpoint snapshots the per-client sequencing state for the
// correlator's checkpoint.
func (srv *Server) SeqCheckpoint() map[string]SeqState {
	out := make(map[string]SeqState, len(srv.clients))
	for name, ct := range srv.clients {
		st := SeqState{Contig: ct.contig}
		for s := range ct.above {
			st.Above = append(st.Above, s)
		}
		sort.Slice(st.Above, func(i, j int) bool { return st.Above[i] < st.Above[j] })
		out[name] = st
	}
	return out
}

// RestoreSeq reinstates sequencing state from a checkpoint: reports the
// crashed incarnation had already consumed stay deduplicated, reports it
// consumed after the checkpoint will be re-accepted if a client retransmits
// them (the fleet layer's alarm dedup absorbs that overlap).
func (srv *Server) RestoreSeq(cp map[string]SeqState) {
	srv.clients = make(map[string]*clientTrack, len(cp))
	for name, st := range cp {
		// Fresh phi state: the restarted incarnation re-learns arrival
		// statistics rather than trusting the dead one's window.
		ct := &clientTrack{above: make(map[uint64]struct{}, len(st.Above)), phi: srv.cfg.NewPhi()}
		ct.contig = st.Contig
		for _, s := range st.Above {
			ct.above[s] = struct{}{}
		}
		srv.clients[name] = ct
	}
}

// SeqState is one client's checkpointed sequence record.
type SeqState struct {
	Contig uint64
	Above  []uint64
}
