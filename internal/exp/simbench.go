package exp

// Sim-core benchmark cells: wall-clock of the fleet sweep on the pooled
// sequential engine and with trial-level parallel workers. These are the
// regression cells for the event-engine optimizations (event/packet
// pooling, per-link lanes, the 4-ary heap): simulated results are
// byte-identical across all of them, so the only signal is wall time.
//
// exp code may not read the host clock (the walltime vet check), so the
// caller injects a stopwatch — a func returning elapsed host seconds —
// exactly like VerifyLatencyCell.

import "fmt"

// SimCoreBenchCells times the Quick-scale fleet sweep sequentially and
// with 4 trial-level workers using the injected stopwatch, and verifies the
// two produce identical results before reporting. The cells carry
// Values["wallclock"]=1: the benchgate then holds their latency to an
// absolute budget instead of comparing simulated TTLs.
func SimCoreBenchCells(seed int64, now func() float64) []BenchCell {
	var cells []BenchCell
	var seqRender string
	for _, cfg := range []struct {
		cell    string
		workers int
	}{
		{"fleet-seq", 1},
		{"fleet-par4", 4},
	} {
		start := now()
		r := FleetAbileneWorkers(Quick, seed, false, cfg.workers)
		wall := now() - start
		rendered := r.Render()
		if cfg.workers == 1 {
			seqRender = rendered
		} else if rendered != seqRender {
			panic(fmt.Sprintf("exp: fleet sweep with %d workers diverged from sequential", cfg.workers))
		}
		exact := 0
		for _, row := range r.Rows {
			if row.Exact {
				exact++
			}
		}
		cells = append(cells, BenchCell{
			Experiment:  "sim-core",
			Cell:        cfg.cell,
			Scale:       Quick.String(),
			Seed:        seed,
			WallSeconds: wall,
			TTLMedianMs: wall * 1e3, // host latency; budget-gated via wallclock=1
			Values: map[string]float64{
				"wallclock": 1,
				"workers":   float64(cfg.workers),
				"exact":     float64(exact),
				"trials":    float64(len(r.Rows)),
			},
		})
	}
	return cells
}
