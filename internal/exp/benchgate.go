package exp

// Benchmark regression gate: CI compares the freshly generated
// BENCH_fleet.json against the committed BENCH_baseline.json and fails the
// build when a cell regressed beyond tolerance. Two regression axes:
//
//   - TTL medians are simulated time — deterministic for a given seed — so
//     any growth beyond tolerance is a real behavior change, not noise.
//     Cells marked Values["wallclock"]=1 carry host wall time instead and
//     are exempt from the ratio check; they are held to the absolute
//     budget below.
//   - WallSeconds is host time and noisy across machines, so cells are
//     compared by their share of the run's total wall time, which cancels
//     the machine's overall speed. Cells under the floor are skipped.

import (
	"encoding/json"
	"fmt"
	"os"
)

// wallclockBudgetMs is the absolute latency budget for wallclock-marked
// cells: the paper's end-to-end localization budget (~156 ms median). A
// safety check whose own latency approaches it is broken regardless of
// what the baseline measured.
const wallclockBudgetMs = 156

// wallFloorSeconds is the minimum wall time for the share comparison;
// below it the share is dominated by scheduling noise.
const wallFloorSeconds = 0.05

// ReadBenchJSON loads a benchmark-cell artifact written by WriteBenchJSON.
func ReadBenchJSON(path string) ([]BenchCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("exp: read bench cells: %w", err)
	}
	var cells []BenchCell
	if err := json.Unmarshal(data, &cells); err != nil {
		return nil, fmt.Errorf("exp: parse %s: %w", path, err)
	}
	return cells, nil
}

func benchKey(c BenchCell) string {
	return c.Experiment + "/" + c.Cell + "/" + c.Scale
}

// GateBench returns one finding per regression of current against baseline.
// Every baseline cell must still exist; new current cells pass freely (they
// enter the gate when the baseline is refreshed). ttlTol and wallTol are
// fractional tolerances (0.25 = +25%).
func GateBench(baseline, current []BenchCell, ttlTol, wallTol float64) []string {
	cur := make(map[string]BenchCell, len(current))
	var curWall float64
	for _, c := range current {
		cur[benchKey(c)] = c
		curWall += c.WallSeconds
	}
	var baseWall float64
	for _, b := range baseline {
		baseWall += b.WallSeconds
	}

	var findings []string
	for _, b := range baseline {
		key := benchKey(b)
		c, ok := cur[key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: cell missing from current run", key))
			continue
		}
		if c.Values["wallclock"] == 1 { //lint:allow floateq wallclock is an exact 0/1 marker, not a measurement
			if c.TTLMedianMs > wallclockBudgetMs {
				findings = append(findings, fmt.Sprintf(
					"%s: median latency %.3fms exceeds the %dms budget", key, c.TTLMedianMs, wallclockBudgetMs))
			}
		} else if b.TTLMedianMs > 0 && c.TTLMedianMs > b.TTLMedianMs*(1+ttlTol) {
			findings = append(findings, fmt.Sprintf(
				"%s: TTL median %.3fms vs baseline %.3fms (tolerance %+.0f%%)",
				key, c.TTLMedianMs, b.TTLMedianMs, ttlTol*100))
		}
		if b.WallSeconds >= wallFloorSeconds && c.WallSeconds >= wallFloorSeconds &&
			baseWall > 0 && curWall > 0 {
			baseShare := b.WallSeconds / baseWall
			curShare := c.WallSeconds / curWall
			if curShare > baseShare*(1+wallTol) {
				findings = append(findings, fmt.Sprintf(
					"%s: wall share %.1f%% vs baseline %.1f%% (tolerance %+.0f%%)",
					key, curShare*100, baseShare*100, wallTol*100))
			}
		}
	}
	return findings
}
