package exp

import (
	"strings"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

func TestTable2Renders(t *testing.T) {
	out := Table2()
	for _, want := range []string{"100Gbps/32p", "400Gbps/64p", "memory size", "read speedup", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Renders(t *testing.T) {
	out := Figure2()
	if !strings.Contains(out, "100Gbps") || !strings.Contains(out, "MB") {
		t.Errorf("Figure2 output malformed:\n%s", out)
	}
	// At 10ms+, NetSeer must be flagged as exceeding available memory.
	if !strings.Contains(out, "!") {
		t.Errorf("Figure2 shows NetSeer operational everywhere:\n%s", out)
	}
}

func TestTable4Renders(t *testing.T) {
	out := Table4()
	for _, want := range []string{"SRAM", "Stateful ALU", "switch.p4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
}

func TestTable5Renders(t *testing.T) {
	out := Table5(Quick)
	if !strings.Contains(out, "equinix-chicago.dirB-2014") {
		t.Errorf("Table5 missing trace name:\n%s", out)
	}
}

func TestOverheadMatchesPaperOrders(t *testing.T) {
	o := Overhead()
	// §5.3: dedicated ≈0.014% of a 100 Gbps link (we compute the same
	// order), tree ≈0.0002%, tags 0.13%.
	if o.DedicatedFraction < 1e-5 || o.DedicatedFraction > 1e-3 {
		t.Errorf("dedicated overhead fraction = %v, want ≈1e-4", o.DedicatedFraction)
	}
	if o.TreeFraction < 1e-7 || o.TreeFraction > 1e-4 {
		t.Errorf("tree overhead fraction = %v, want ≈4e-6", o.TreeFraction)
	}
	if o.TagFraction < 0.001 || o.TagFraction > 0.002 {
		t.Errorf("tag fraction = %v, want 0.0013", o.TagFraction)
	}
	if !strings.Contains(o.Render(), "overhead") {
		t.Error("Render missing content")
	}
}

func TestScenarioDedicatedDetects(t *testing.T) {
	sc := &Scenario{
		Seed: 1, Cfg: fig7Cfg(42), Delay: 10 * sim.Millisecond,
		Duration: 8 * sim.Second, FailAt: 1 * sim.Second, LossRate: 1.0,
		Failed:           []netsim.EntryID{42},
		Loads:            []EntryLoad{{Entry: 42, RateBps: 1e6, FlowsPerSec: 50}},
		StopWhenDetected: true,
	}
	out := sc.Run()
	d := out.PerEntry[42]
	if !d.Detected {
		t.Fatal("scenario blackhole not detected")
	}
	if d.Latency <= 0 || d.Latency > sim.Second {
		t.Errorf("latency = %v, want < 1s", d.Latency)
	}
	if out.CtlBytes == 0 {
		t.Error("no control overhead recorded")
	}
}

func TestUniformFailuresQuick(t *testing.T) {
	res := UniformFailures(Quick, 3)
	for i, loss := range res.LossRates {
		if !res.Detected[i] {
			t.Errorf("uniform loss %v not detected", loss)
			continue
		}
		// §5.1.3: detection in about one zooming interval (plus session
		// open/close overhead).
		if res.Latency[i] > 1.0 {
			t.Errorf("uniform loss %v latency = %.2fs, want ≲0.5s", loss, res.Latency[i])
		}
	}
}

func TestFigure7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Figure7(Quick, 5)
	if len(r.TPR) != len(QuickGrid) || len(r.TPR[0]) != len(QuickLossRates) {
		t.Fatalf("grid dims %dx%d", len(r.TPR), len(r.TPR[0]))
	}
	// Top-left (large entry, blackhole): perfect detection, fast.
	if r.TPR[0][0] < 0.99 {
		t.Errorf("TPR[10Mbps][100%%] = %v, want 1", r.TPR[0][0])
	}
	if r.DetTime[0][0] > 0.5 {
		t.Errorf("detection time[10Mbps][100%%] = %vs, want ≈0.1s", r.DetTime[0][0])
	}
	// Monotone-ish: the biggest entry at the highest loss cannot be worse
	// than the smallest entry at the lowest loss.
	last := len(r.TPR) - 1
	lcol := len(QuickLossRates) - 1
	if r.TPR[0][0] < r.TPR[last][lcol] {
		t.Errorf("TPR grid inverted: corner values %v vs %v", r.TPR[0][0], r.TPR[last][lcol])
	}
	out := r.Render()
	if !strings.Contains(out, "Avg TPR") || !strings.Contains(out, "10Mbps/100") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFigure9SingleQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Figure9Single(Quick, 7)
	if r.TPR[0][0] < 0.99 {
		t.Errorf("tree TPR[10Mbps][100%%] = %v, want 1", r.TPR[0][0])
	}
	// Tree detection needs ≈3 zooming intervals: distinctly slower than
	// dedicated counters but still sub-second.
	if r.DetTime[0][0] < 0.4 || r.DetTime[0][0] > 2.0 {
		t.Errorf("tree detection time = %vs, want ≈0.7s", r.DetTime[0][0])
	}
}

func TestFigure9MultiQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Figure9Multi(Quick, 9)
	// Multi-entry failures: high TPR on high-traffic rows at 100% loss.
	if r.TPR[0][0] < 0.8 {
		t.Errorf("multi-entry TPR[1Mbps][100%%] = %v, want ≈1", r.TPR[0][0])
	}
	// Detection is spread out by the k-per-session zooming budget: the
	// mean must exceed the single-entry ≈0.7 s.
	if r.DetTime[0][0] < 0.7 {
		t.Errorf("multi-entry detection = %vs, should be slower than single", r.DetTime[0][0])
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep")
	}
	r := Table3(Quick, 11)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	first := r.Rows[0] // 100% loss
	if first.TPRBytes < 0.5 {
		t.Errorf("TPR bytes at 100%% loss = %.2f, want high", first.TPRBytes)
	}
	var low Table3Row
	for _, row := range r.Rows {
		if row.LossRate == 0.01 {
			low = row
		}
	}
	// §5.2: accuracy drops sharply at ≤1% loss (paper: 19.5%). With our
	// byte-weighted sampling the drop must at least be visible.
	if low.Trials > 0 && low.TPRPrefixes > first.TPRPrefixes {
		t.Errorf("1%% loss TPR (%v) higher than 100%% loss TPR (%v)", low.TPRPrefixes, first.TPRPrefixes)
	}
	if !strings.Contains(r.Render(), "Hash-Tree") {
		t.Error("render malformed")
	}
}

func TestBaselineComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep")
	}
	r := BaselineComparison(Quick, 13)
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 designs (3 strawmen + lossradar + netseer), got %d", len(r.Rows))
	}
	byName := map[string]BaselineRow{}
	for _, row := range r.Rows {
		byName[row.Design] = row
	}
	single := byName["single-counter"]
	per := byName["per-entry"]
	bloom := byName["counting-bloom"]
	// The single counter detects but implicates everything.
	if single.TPRPrefixes < 0.8 {
		t.Errorf("single-counter TPR = %v", single.TPRPrefixes)
	}
	if single.FalsePerTrial < 10 {
		t.Errorf("single-counter FPs = %v, want ≈all active prefixes", single.FalsePerTrial)
	}
	// Per-entry is exact but needs orders of magnitude more memory than
	// the Bloom filter.
	if per.FalsePerTrial != 0 {
		t.Errorf("per-entry FPs = %v, want 0", per.FalsePerTrial)
	}
	if per.MemoryBytes <= bloom.MemoryBytes {
		t.Error("per-entry should need more memory than the Bloom filter")
	}
	if bloom.TPRPrefixes < 0.8 {
		t.Errorf("counting-bloom TPR = %v", bloom.TPRPrefixes)
	}
}

func TestFigure10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("case study")
	}
	r := Figure10(Quick, 15)
	if len(r.Series) != 6 {
		t.Fatalf("want 6 series, got %d", len(r.Series))
	}
	for _, s := range r.Series {
		if s.ReroutedAt == 0 {
			t.Errorf("%s: never rerouted", s.Label)
			continue
		}
		lat := s.ReroutedAt - s.FailAt
		if lat <= 0 || lat > 2*sim.Second {
			t.Errorf("%s: reroute latency %v", s.Label, lat)
		}
		// Post-reroute throughput must recover: the average of the last
		// 10 bins should be at least half the pre-failure average.
		n := len(s.Mbps)
		pre := avg(s.Mbps[5:15])
		post := avg(s.Mbps[n-10:])
		if post < pre/2 {
			t.Errorf("%s: post-reroute throughput %.1f vs pre %.1f", s.Label, post, pre)
		}
	}
	if !strings.Contains(r.Render(), "reroute") {
		t.Error("render malformed")
	}
}

func TestFigure11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep")
	}
	r := Figure11(Quick, 17)
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 rows at quick scale, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TPR < 0.5 {
			t.Errorf("%s: TPR = %.2f, want most of a 10-burst detected", row.Config, row.TPR)
		}
	}
	if !strings.Contains(r.Render(), "d/k/w") {
		t.Error("render malformed")
	}
}

func TestFigure8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("zoom sweep")
	}
	r := Figure8(Quick, 19)
	if len(r.MinRank) != 4 {
		t.Fatalf("want 4 zooming speeds, got %d", len(r.MinRank))
	}
	// At 100% loss, even small entries are detectable for every zooming
	// speed ≥50 ms (column 0 = 100%).
	for zi := 1; zi < len(r.Zooming); zi++ {
		if r.MinRank[zi][0] == 0 {
			t.Errorf("zoom %v: no entry reached 95%% TPR at 100%% loss", r.Zooming[zi])
		}
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Error("render malformed")
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestAblationStrawman(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	r := AblationStrawman(Quick, 23)
	byKey := map[string]StrawmanRow{}
	for _, row := range r.Rows {
		byKey[row.Protocol+LossLabel(row.ReverseLoss)] = row
	}
	// FANcY detects both failure types regardless of reverse loss.
	for _, k := range []string{"fancy-stop-and-wait0%", "fancy-stop-and-wait30%"} {
		row := byKey[k]
		if !row.DetectedPartial || !row.DetectedBlackhole {
			t.Errorf("%s: detections = %v/%v, want true/true", k, row.DetectedPartial, row.DetectedBlackhole)
		}
	}
	// The strawman loses measurements under reverse loss...
	s1 := byKey["strawman-k1"+LossLabel(0.3)]
	if s1.Verified > 0.85 {
		t.Errorf("strawman-k1 verified %.2f under 30%% reverse loss, want ≈0.7", s1.Verified)
	}
	// ...and is blind to blackholes (receiver starvation).
	if s1.DetectedBlackhole {
		t.Error("strawman detected a blackhole despite receiver starvation")
	}
	// Memory grows linearly with the history depth.
	if byKey["strawman-k40%"].MemoryBits <= byKey["strawman-k10%"].MemoryBits {
		t.Error("history depth must cost memory")
	}
	if !strings.Contains(r.Render(), "strawman") {
		t.Error("render malformed")
	}
}

func TestAblationSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	r := AblationSelection(Quick, 29)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 policies, got %d", len(r.Rows))
	}
	maxDiff, random := r.Rows[0], r.Rows[1]
	if maxDiff.Policy != "max-diff" || random.Policy != "random" {
		t.Fatalf("unexpected policy order: %+v", r.Rows)
	}
	// Max-difference must localize the heavy entry at least as fast as
	// random selection (the point of §4.2 footnote 1).
	if maxDiff.HeavyDetectedSecs > random.HeavyDetectedSecs+0.3 {
		t.Errorf("max-diff heavy detection %.2fs slower than random %.2fs",
			maxDiff.HeavyDetectedSecs, random.HeavyDetectedSecs)
	}
	if !strings.Contains(r.Render(), "max-diff") {
		t.Error("render malformed")
	}
}

func TestAblationBlink(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	r := AblationBlink(Quick, 31)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(r.Rows))
	}
	hard, gray := r.Rows[0], r.Rows[1]
	if !hard.BlinkDetected || !hard.FancyDetected {
		t.Errorf("hard failure: blink=%v fancy=%v, want both detected", hard.BlinkDetected, hard.FancyDetected)
	}
	if gray.BlinkDetected {
		t.Error("Blink detected a minority-flow gray failure (should be fundamentally unable, §2.3)")
	}
	if !gray.FancyDetected {
		t.Error("FANcY missed the minority-flow gray failure")
	}
	if !strings.Contains(r.Render(), "Blink") {
		t.Error("render malformed")
	}
}

func TestExchangeFrequencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := ExchangeFrequencySweep(Quick, 37)
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 intervals, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TPR < 0.99 {
			t.Errorf("interval %v: TPR %.2f, want 1 (50%% loss, busy entry)", row.Interval, row.TPR)
		}
	}
	// §5.1.1: frequency affects detection speed — shorter intervals must
	// not be slower than the 200 ms setting.
	if r.Rows[0].MeanDetSecs > r.Rows[3].MeanDetSecs {
		t.Errorf("25ms interval slower than 200ms: %.3f vs %.3f",
			r.Rows[0].MeanDetSecs, r.Rows[3].MeanDetSecs)
	}
	// ...and overhead: shorter intervals cost more control bytes per run.
	if r.Rows[0].CtlBytes <= r.Rows[3].CtlBytes {
		t.Errorf("25ms interval cheaper than 200ms: %d vs %d bytes",
			r.Rows[0].CtlBytes, r.Rows[3].CtlBytes)
	}
	if !strings.Contains(r.Render(), "exchange frequency") {
		t.Error("render malformed")
	}
}

func TestDelaySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := DelaySweep(Quick, 41)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 delays, got %d", len(r.Rows))
	}
	fast, slow := r.Rows[0], r.Rows[1]
	// §5: dedicated detection speeds up markedly at 1 ms (paper: 2×,
	// because the session cycle is RTT-bound); the tree improves less
	// (paper: ≈15%, it is zooming-interval-bound). With quick-scale
	// repetition counts we assert the robust part: a clear dedicated
	// speed-up and no tree slow-down.
	if gain := slow.DedicatedSecs / fast.DedicatedSecs; gain < 1.15 {
		t.Errorf("dedicated gain at 1ms = %.2fx, want ≥1.15x", gain)
	}
	if fast.TreeSecs > slow.TreeSecs*1.05 {
		t.Errorf("tree at 1ms (%.3fs) slower than at 10ms (%.3fs)", fast.TreeSecs, slow.TreeSecs)
	}
	if !strings.Contains(r.Render(), "link delay") {
		t.Error("render malformed")
	}
}

func TestFleetAbileneQuick(t *testing.T) {
	r := FleetAbilene(Quick, 20220822)
	if len(r.Rows) != len(quickFleetLinks) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), len(quickFleetLinks))
	}
	for _, row := range r.Rows {
		if !row.Exact {
			t.Errorf("%s: not localized exactly", row.Link)
		}
		if row.Exact && (row.TTL <= 0 || row.TTL > sim.Second) {
			t.Errorf("%s: time-to-localize %v, want within 1s", row.Link, row.TTL)
		}
		if row.Protected && !row.Rerouted {
			t.Errorf("%s: protected entry was not rerouted", row.Link)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "exact localization: 3/3") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}

func TestFleetChaosQuick(t *testing.T) {
	r := FleetChaos(Quick, 20220822)
	want := len(fleetChaosConfigs()) * len(quickFleetLinks)
	if len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		// The survivability contract: impairments may slow localization
		// down, but accuracy must stay exact and verdicts unique.
		if !row.Exact {
			t.Errorf("%s/%s: not localized exactly", row.Config, row.Link)
		}
		if row.Verdicts > 1 {
			t.Errorf("%s/%s: %d localization events, want 1", row.Config, row.Link, row.Verdicts)
		}
		if row.Exact && (row.TTL <= 0 || row.TTL > 2*sim.Second) {
			t.Errorf("%s/%s: time-to-localize %v, want within 2s", row.Config, row.Link, row.TTL)
		}
		if row.Protected && !row.Rerouted {
			t.Errorf("%s/%s: protected entry was not rerouted", row.Config, row.Link)
		}
		switch row.Config {
		case "perfect":
			if row.MgmtLost != 0 {
				t.Errorf("perfect config lost %d datagrams", row.MgmtLost)
			}
		case "loss20+crash":
			if row.MgmtLost == 0 {
				t.Errorf("%s: no management loss exercised", row.Link)
			}
			if row.Handbacks == 0 {
				t.Errorf("%s: no degraded-mode handback after the crash", row.Link)
			}
		case "replica3+leaderkill":
			if row.MgmtLost == 0 {
				t.Errorf("%s: no management loss exercised", row.Link)
			}
			if row.Failovers == 0 {
				t.Errorf("%s: leader killed but no takeover recorded", row.Link)
			}
		}
	}
	out := r.Render()
	if !strings.Contains(out, "loss20+crash") || !strings.Contains(out, "per-link detail") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	if !strings.Contains(out, "replica3+leaderkill") || !strings.Contains(out, "Failovers") {
		t.Fatalf("replicated cell missing from render:\n%s", out)
	}
}
