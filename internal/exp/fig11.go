package exp

// Figure 11 / Appendix D: sensitivity analysis of the hash-based tree
// parameters. Eight depth/split/width configurations spanning 125 KB–1 MB
// of per-switch memory are compared on bursts of 10 and 50 simultaneous
// prefix blackholes: TPR, median detection time, detected bytes and false
// positives.

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/traffic"
)

// TreeConfig is one sensitivity-analysis candidate, labelled
// depth/split/width(memory) like the paper's legend.
type TreeConfig struct {
	Label  string
	Params tree.Params
}

// Fig11Configs are the eight designs of Appendix D (depth/split/width);
// the memory label is the 32-port per-switch total of the pipelined layout.
func Fig11Configs() []TreeConfig {
	mk := func(d, k, w int) TreeConfig {
		p := tree.Params{Width: w, Depth: d, Split: k, Pipelined: true}
		kb := float64(p.MemoryBits()) * 32 / 8 / 1024 // 32 ports
		return TreeConfig{Label: fmt.Sprintf("%d/%d/%d (%.0fKB)", d, k, w, kb), Params: p}
	}
	return []TreeConfig{
		mk(3, 3, 205), mk(3, 2, 190), mk(3, 3, 100), mk(4, 3, 32),
		mk(3, 2, 100), mk(4, 2, 44), mk(3, 1, 110), mk(4, 2, 28),
	}
}

// Fig11Row is one configuration's measurements for one burst size.
type Fig11Row struct {
	Config        string
	Burst         int
	TPR           float64
	MedianDetSecs float64
	DetectedBytes float64 // fraction of failed bytes detected
	FalsePos      float64 // average per run
}

// Fig11Result groups all rows.
type Fig11Result struct{ Rows []Fig11Row }

// Render prints the sensitivity table.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("== Figure 11 (Appendix D): tree parameter sensitivity ==\n")
	headers := []string{"Config d/k/w", "Burst", "TPR", "MedianDet", "DetBytes", "FalsePos"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config, fmt.Sprintf("%d", row.Burst),
			fmt.Sprintf("%.3f", row.TPR),
			fmt.Sprintf("%.2fs", row.MedianDetSecs),
			fmt.Sprintf("%.3f", row.DetectedBytes),
			fmt.Sprintf("%.1f", row.FalsePos),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// Figure11 runs the sensitivity analysis: Zipf traffic over many prefixes,
// bursts of simultaneous blackholes, 100% of memory given to the tree (no
// dedicated counters beyond a placeholder).
func Figure11(scale Scale, seed int64) *Fig11Result {
	bursts := pick(scale, []int{10}, []int{10, 50})
	nPrefixes := pick(scale, 300, 5000)
	aggregate := pick(scale, 30e6, 300e6)
	reps := pick(scale, 1, 10)
	duration := pick(scale, 15*sim.Second, 30*sim.Second)
	configs := Fig11Configs()
	if scale == Quick {
		configs = []TreeConfig{configs[1], configs[3], configs[6]} // 3/2/190, 4/3/32, 3/1/110
	}

	res := &Fig11Result{}
	for _, tc := range configs {
		for _, burst := range bursts {
			var acc stats.Acc
			acc.Cap = duration.Seconds()
			var detBytes, totBytes float64
			var fps int
			var lat []float64
			for rep := 0; rep < reps; rep++ {
				s := seed + int64(rep)*7907
				rng := simRand(s)
				// As in Appendix D, only fail prefixes detectable at the
				// configured zooming speed and depth: the head prefixes
				// with enough packets per counting session.
				head := nPrefixes / 10
				if head < 3*burst {
					head = 3 * burst
				}
				var failed []netsim.EntryID
				for len(failed) < burst {
					e := netsim.EntryID(rng.Intn(head))
					dup := false
					for _, f := range failed {
						if f == e {
							dup = true
						}
					}
					if !dup {
						failed = append(failed, e)
					}
				}
				cfg := fancy.Config{
					HighPriority: []netsim.EntryID{netsim.EntryID(nPrefixes + 1)},
					Tree:         tc.Params,
					TreeSeed:     23,
				}
				sc := &Scenario{
					Seed: s, Cfg: cfg, Delay: 10 * sim.Millisecond,
					Duration: duration, FailAt: 2 * sim.Second, LossRate: 1.0,
					Failed: failed, StopWhenDetected: true,
				}
				specs := traffic.ZipfWorkload(nPrefixes, aggregate, float64(nPrefixes)/5, 1.05, duration, rng)
				sc.InstallTraffic = func(sm *sim.Sim, src, dst *netsim.Host) {
					drv := traffic.NewDriver(sm, src, dst, tcpCfg())
					drv.Schedule(specs)
				}
				shares := traffic.ZipfShares(nPrefixes, 1.05)
				out := sc.Run()
				for _, e := range failed {
					d := out.PerEntry[e]
					acc.Add(d)
					totBytes += shares[e]
					if d.Detected {
						detBytes += shares[e]
						lat = append(lat, d.Latency.Seconds())
					}
				}
				fps += out.FalseEntries
			}
			row := Fig11Row{
				Config: tc.Label, Burst: burst,
				TPR:           acc.TPR(),
				MedianDetSecs: stats.Percentile(lat, 50),
				FalsePos:      float64(fps) / float64(reps),
			}
			if totBytes > 0 {
				row.DetectedBytes = detBytes / totBytes
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}
