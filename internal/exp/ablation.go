package exp

// Ablation studies for the design choices DESIGN.md calls out:
//
//   - stop-and-wait vs the §4.1 strawman (continuous counting with
//     in-packet session IDs): reliability under reverse-path loss and
//     blackhole starvation, against memory cost;
//   - max-difference vs random zoom-counter selection (§4.2 footnote 1):
//     how fast the traffic-weighted bulk of a multi-entry failure is
//     localized;
//   - Blink vs FANcY on minority-flow gray failures (§2.3).

import (
	"fmt"
	"strings"

	"fancy/internal/baseline/blink"
	core "fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

// StrawmanRow is one protocol variant's outcome.
type StrawmanRow struct {
	Protocol          string
	ReverseLoss       float64
	MemoryBits        int
	Verified          float64 // fraction of sessions with usable measurements
	DetectedPartial   bool    // 50% per-entry loss detected
	DetectedBlackhole bool
}

// StrawmanResult is the stop-and-wait vs strawman comparison.
type StrawmanResult struct{ Rows []StrawmanRow }

// Render prints the comparison table.
func (r *StrawmanResult) Render() string {
	var b strings.Builder
	b.WriteString("== Ablation: stop-and-wait vs §4.1 strawman ==\n")
	headers := []string{"Protocol", "RevLoss", "Memory", "Verified", "Detects 50%", "Detects blackhole"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Protocol, LossLabel(row.ReverseLoss),
			fmt.Sprintf("%db", row.MemoryBits),
			fmt.Sprintf("%.0f%%", row.Verified*100),
			fmt.Sprintf("%v", row.DetectedPartial),
			fmt.Sprintf("%v", row.DetectedBlackhole),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// AblationStrawman compares FANcY's stop-and-wait counting protocol with
// the continuous-counting strawman at several history depths, with and
// without reverse-path loss.
func AblationStrawman(scale Scale, seed int64) *StrawmanResult {
	duration := pick(scale, 6*sim.Second, 20*sim.Second)
	res := &StrawmanResult{}

	for _, revLoss := range []float64{0, 0.3} {
		// FANcY stop-and-wait: one dedicated entry = 80 bits.
		fancyRow := StrawmanRow{Protocol: "fancy-stop-and-wait", ReverseLoss: revLoss,
			MemoryBits: core.DedicatedEntryBits}
		fancyRow.DetectedPartial = runFancyOnce(seed, revLoss, 0.5, duration)
		fancyRow.DetectedBlackhole = runFancyOnce(seed+1, revLoss, 1.0, duration)
		fancyRow.Verified = 1 // retransmissions make every session usable
		res.Rows = append(res.Rows, fancyRow)

		for _, k := range []int{1, 2, 4} {
			cfg := core.StrawmanConfig{Entry: 7, Interval: 50 * sim.Millisecond, History: k}
			row := StrawmanRow{
				Protocol:    fmt.Sprintf("strawman-k%d", k),
				ReverseLoss: revLoss,
				MemoryBits:  cfg.MemoryBits(),
			}
			row.Verified, row.DetectedPartial = runStrawmanOnce(seed+int64(k), cfg, revLoss, 0.5, duration)
			_, row.DetectedBlackhole = runStrawmanOnce(seed+int64(k)+10, cfg, revLoss, 1.0, duration)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func runFancyOnce(seed int64, revLoss, failRate float64, duration sim.Time) bool {
	sc := &Scenario{
		Seed: seed, Cfg: core.Config{
			HighPriority: []netsim.EntryID{7},
			Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
		},
		Delay: 10 * sim.Millisecond, Duration: duration,
		FailAt: 1 * sim.Second, LossRate: failRate,
		Failed: []netsim.EntryID{7},
		Loads:  []EntryLoad{{Entry: 7, RateBps: 2e6}},
		UDP:    true, StopWhenDetected: true,
	}
	out := runWithReverseLoss(sc, revLoss)
	return out.PerEntry[7].Detected
}

// runWithReverseLoss wraps Scenario.Run with reverse-direction loss.
func runWithReverseLoss(sc *Scenario, revLoss float64) *Outcome {
	sc.ReverseLoss = revLoss
	return sc.Run()
}

func runStrawmanOnce(seed int64, cfg core.StrawmanConfig, revLoss, failRate float64,
	duration sim.Time) (verified float64, detected bool) {

	s := sim.New(seed)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, src, 0, up, 0, lc)
	link := netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	var reverse *netsim.Failure
	if revLoss > 0 {
		reverse = netsim.FailUniform(seed+5, 0, revLoss)
	}
	snd := core.NewStrawmanSender(s, up, 1, cfg)
	core.NewStrawmanReceiver(s, down, 0, snd, reverse, cfg)

	traffic.NewUDPSource(s, src, 1, cfg.Entry, netsim.EntryAddr(cfg.Entry, 1),
		2e6, 1000, duration).Start()
	link.AB.SetFailure(netsim.FailEntries(seed+2, 1*sim.Second, failRate, cfg.Entry))
	s.Run(duration)
	return snd.VerifiedFraction(), snd.Mismatches > 0
}

// SelectionRow is one policy's outcome in the zoom-selection ablation.
type SelectionRow struct {
	Policy            string
	HeavyDetectedSecs float64 // time to detect the traffic-heaviest failed entry
	TPR               float64
}

// SelectionResult compares max-difference against random selection.
type SelectionResult struct{ Rows []SelectionRow }

// Render prints the table.
func (r *SelectionResult) Render() string {
	var b strings.Builder
	b.WriteString("== Ablation: zoom counter selection policy (§4.2 fn.1) ==\n")
	headers := []string{"Policy", "HeavyEntryDet", "TPR"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			fmt.Sprintf("%.2fs", row.HeavyDetectedSecs),
			fmt.Sprintf("%.2f", row.TPR),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// AblationSelection fails a set of entries with very skewed traffic and
// measures how quickly each policy localizes the heaviest one — the
// property the max-difference choice optimizes ("prioritize failure
// detection for most traffic").
func AblationSelection(scale Scale, seed int64) *SelectionResult {
	duration := pick(scale, 15*sim.Second, 30*sim.Second)
	reps := pick(scale, 3, 10)
	nFailed := 8

	res := &SelectionResult{}
	for _, policy := range []core.ZoomSelection{core.SelectMaxDiff, core.SelectRandom} {
		var heavy []float64
		var acc stats.Acc
		acc.Cap = duration.Seconds()
		for rep := 0; rep < reps; rep++ {
			failed := make([]netsim.EntryID, nFailed)
			loads := make([]EntryLoad, nFailed)
			for i := range failed {
				failed[i] = netsim.EntryID(1000 + i)
				rate := 50e3 // light tail entries
				if i == 0 {
					rate = 5e6 // the heavy entry
				}
				loads[i] = EntryLoad{Entry: failed[i], RateBps: rate}
			}
			sc := &Scenario{
				Seed: seed + int64(rep)*313,
				Cfg: core.Config{
					HighPriority:  []netsim.EntryID{1},
					Tree:          tree.Params{Width: 64, Depth: 3, Split: 1, Pipelined: true},
					ZoomSelection: policy,
				},
				Delay: 10 * sim.Millisecond, Duration: duration,
				FailAt: 1 * sim.Second, LossRate: 1.0,
				Failed: failed, Loads: loads, UDP: true,
			}
			out := sc.Run()
			for _, e := range failed {
				acc.Add(out.PerEntry[e])
			}
			if d := out.PerEntry[failed[0]]; d.Detected {
				heavy = append(heavy, d.Latency.Seconds())
			} else {
				heavy = append(heavy, duration.Seconds())
			}
		}
		name := "max-diff"
		if policy == core.SelectRandom {
			name = "random"
		}
		res.Rows = append(res.Rows, SelectionRow{
			Policy:            name,
			HeavyDetectedSecs: stats.Mean(heavy),
			TPR:               acc.TPR(),
		})
	}
	return res
}

// BlinkRow is one detector's outcome in the Blink comparison.
type BlinkRow struct {
	Scenario      string
	BlinkDetected bool
	BlinkSecs     float64
	FancyDetected bool
	FancySecs     float64
}

// BlinkResult compares Blink and FANcY on the same failures.
type BlinkResult struct{ Rows []BlinkRow }

// Render prints the table.
func (r *BlinkResult) Render() string {
	var b strings.Builder
	b.WriteString("== Ablation: Blink vs FANcY (§2.3) ==\n")
	headers := []string{"Failure", "Blink", "FANcY"}
	var rows [][]string
	fmtDet := func(det bool, secs float64) string {
		if !det {
			return "missed"
		}
		return fmt.Sprintf("%.2fs", secs)
	}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario,
			fmtDet(row.BlinkDetected, row.BlinkSecs),
			fmtDet(row.FancyDetected, row.FancySecs),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// AblationBlink runs both detectors on (a) a failure blackholing all flows
// and (b) a gray failure blackholing 20% of flows: Blink detects only the
// former; FANcY detects both.
func AblationBlink(scale Scale, seed int64) *BlinkResult {
	duration := pick(scale, 10*sim.Second, 20*sim.Second)
	res := &BlinkResult{}
	for _, c := range []struct {
		name     string
		fraction float64
	}{
		{"all flows (hard failure)", 1.0},
		{"20% of flows (gray)", 0.20},
	} {
		row := BlinkRow{Scenario: c.name}
		row.BlinkDetected, row.BlinkSecs, row.FancyDetected, row.FancySecs =
			runBlinkVsFancy(seed, c.fraction, duration)
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runBlinkVsFancy(seed int64, fraction float64, duration sim.Time) (bool, float64, bool, float64) {
	s := sim.New(seed)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 5 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, src, 0, up, 0, lc)
	link := netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	const entry = netsim.EntryID(100)
	bd := blink.New(s, entry, blink.Config{})
	up.AddIngressHook(bd)

	cfg := core.Config{
		HighPriority: []netsim.EntryID{entry},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	}
	det, err := core.NewDetector(s, up, cfg)
	if err != nil {
		panic(err)
	}
	downDet, err := core.NewDetector(s, down, cfg)
	if err != nil {
		panic(err)
	}
	downDet.ListenPort(0)
	det.MonitorPort(1)
	var fancyAt sim.Time
	det.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventDedicated && ev.Entry == entry && fancyAt == 0 {
			fancyAt = ev.Time
		}
	}

	// 40 long-lived TCP flows at 100 kbps each.
	drv := traffic.NewDriver(s, src, dst, tcp.Config{})
	var specs []traffic.FlowSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, traffic.FlowSpec{
			Entry: entry, Start: sim.Time(i) * 5 * sim.Millisecond,
			Bytes: int64(100e3 / 8 * duration.Seconds()), RateBps: 100e3,
		})
	}
	drv.Schedule(specs)

	const failAt = 2 * sim.Second
	link.AB.SetFailure(netsim.FailFlows(seed+3, failAt, fraction, 1.0))
	s.Run(duration)

	blinkSecs, fancySecs := 0.0, 0.0
	if bd.Detected() {
		blinkSecs = (bd.FailureAt - failAt).Seconds()
	}
	if fancyAt > 0 {
		fancySecs = (fancyAt - failAt).Seconds()
	}
	return bd.Detected(), blinkSecs, fancyAt > 0, fancySecs
}
