package exp

import (
	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// fig9Cfg monitors everything through the hash-based tree (the failed
// entries are best effort; an unused dedicated entry keeps the layout
// realistic).
func fig9Cfg() fancy.Config {
	return fancy.Config{
		HighPriority: []netsim.EntryID{1},
		Tree:         tree.Params{Width: 190, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     13,
	}
}

// Figure9Single reproduces Figure 9a: hash-tree accuracy and detection
// speed for single-entry failures across entry sizes and loss rates, with
// the 200 ms zooming speed of §5.1.2.
func Figure9Single(scale Scale, seed int64) *HeatmapResult {
	rows := pick(scale, QuickGrid, PaperGrid)
	losses := pick(scale, QuickLossRates, PaperLossRates)
	reps := pick(scale, 2, 10)
	duration := pick(scale, 12*sim.Second, 30*sim.Second)
	const entry = netsim.EntryID(1000)
	return grid("Figure 9a: hash-based tree, single-entry failures", rows, losses, reps,
		duration, 2*sim.Second, seed,
		func(row GridRow) ([]netsim.EntryID, []EntryLoad, fancy.Config) {
			return []netsim.EntryID{entry},
				[]EntryLoad{{Entry: entry, RateBps: row.RateBps, FlowsPerSec: row.FlowsPerSec}},
				fig9Cfg()
		})
}

// fig9MultiGrid caps the per-entry rate so the aggregate (rate × number of
// simultaneously failing entries) stays simulable; the paper's Figure 9b
// grid similarly tops out at 200 Mbps per entry.
func fig9MultiGrid(scale Scale) []GridRow {
	if scale == Full {
		var rows []GridRow
		for _, r := range PaperGrid {
			if r.RateBps <= 10e6 {
				rows = append(rows, r)
			}
		}
		return rows
	}
	return []GridRow{
		{"1Mbps/50", 1e6, 50}, {"500Kbps/25", 500e3, 25},
		{"100Kbps/10", 100e3, 10}, {"25Kbps/5", 25e3, 5},
	}
}

// Figure9Multi reproduces Figure 9b: failures hitting many entries at the
// same time (paper: 100; Quick scale: 10), which stress the zooming
// pipeline — detection time grows to several seconds because FANcY starts
// at most `split` new explorations per session.
func Figure9Multi(scale Scale, seed int64) *HeatmapResult {
	rows := fig9MultiGrid(scale)
	losses := pick(scale, []float64{1.0, 0.10, 0.01}, PaperLossRates)
	reps := pick(scale, 1, 10)
	duration := pick(scale, 20*sim.Second, 30*sim.Second)
	n := pick(scale, 10, 100)

	failed := make([]netsim.EntryID, n)
	for i := range failed {
		failed[i] = netsim.EntryID(2000 + i)
	}
	name := "Figure 9b: hash-based tree, multi-entry failures"
	return grid(name, rows, losses, reps, duration, 2*sim.Second, seed,
		func(row GridRow) ([]netsim.EntryID, []EntryLoad, fancy.Config) {
			loads := make([]EntryLoad, n)
			for i, e := range failed {
				loads[i] = EntryLoad{Entry: e, RateBps: row.RateBps, FlowsPerSec: row.FlowsPerSec}
			}
			return failed, loads, fig9Cfg()
		})
}

// UniformResult is the §5.1.3 outcome: whether uniform failures are
// detected as uniform, and how fast.
type UniformResult struct {
	LossRates []float64
	Detected  []bool
	Latency   []float64 // seconds
}

// UniformFailures reproduces §5.1.3: failures hitting every entry (random
// per-packet loss at link level, or the all-prefix bugs of Table 1) are
// classified as uniform — a majority of root counters mismatch — in about
// one zooming interval regardless of the loss rate. The failure drops data
// packets of all entries; for the majority test to have signal, entries
// must cover most of the tree's root counters and each counter must see
// enough packets per session that a drop is likely at the configured rate.
func UniformFailures(scale Scale, seed int64) *UniformResult {
	losses := pick(scale, []float64{1.0, 0.10, 0.02}, []float64{1.0, 0.5, 0.1, 0.01})
	nEntries := pick(scale, 400, 800)
	perEntry := pick(scale, 2e6, 20e6) // 2 Mbps ≈ 250 pps per entry

	res := &UniformResult{LossRates: losses}
	for i, loss := range losses {
		loads := make([]EntryLoad, nEntries)
		failed := make([]netsim.EntryID, nEntries)
		for j := range loads {
			e := netsim.EntryID(100 + j)
			loads[j] = EntryLoad{Entry: e, RateBps: perEntry, FlowsPerSec: 20}
			failed[j] = e
		}
		sc := &Scenario{
			Seed: seed + int64(i), Cfg: fig9Cfg(), Delay: 10 * sim.Millisecond,
			Duration: pick(scale, 8*sim.Second, 30*sim.Second),
			FailAt:   2 * sim.Second, LossRate: loss,
			Failed: failed, Loads: loads, UDP: true, StopWhenDetected: true,
		}
		out := sc.Run()
		res.Detected = append(res.Detected, out.UniformDetected)
		res.Latency = append(res.Latency, out.UniformLatency.Seconds())
	}
	return res
}
