package exp

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
)

// HeatmapResult is the output of the Figure 7/9-style grid experiments: the
// average TPR and average detection time per (entry size, loss rate) cell.
type HeatmapResult struct {
	Name    string
	Rows    []GridRow
	Loss    []float64
	TPR     [][]float64
	DetTime [][]float64 // seconds
}

// Render prints the two heatmaps side by side, like the paper's figures.
func (r *HeatmapResult) Render() string {
	rows := make([]string, len(r.Rows))
	for i, g := range r.Rows {
		rows[i] = g.Label
	}
	cols := make([]string, len(r.Loss))
	for i, l := range r.Loss {
		cols[i] = LossLabel(l)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	tpr := stats.Heatmap{Title: "Avg TPR", RowLabel: "Entry Size", Rows: rows, Cols: cols, Cells: r.TPR, Format: "%5.2f"}
	det := stats.Heatmap{Title: "Avg Detection Time (s)", RowLabel: "Entry Size", Rows: rows, Cols: cols, Cells: r.DetTime, Format: "%5.2f"}
	b.WriteString(tpr.Render())
	b.WriteByte('\n')
	b.WriteString(det.Render())
	return b.String()
}

// grid runs the (rows × loss rates × reps) sweep shared by Figures 7 and 9.
// failedEntries yields the failing entries and their loads for one cell.
func grid(name string, rows []GridRow, losses []float64, reps int,
	duration, failWindow sim.Time, seed int64,
	build func(row GridRow) ([]netsim.EntryID, []EntryLoad, fancy.Config)) *HeatmapResult {

	r := &HeatmapResult{Name: name, Rows: rows, Loss: losses}
	capSecs := duration.Seconds()
	for _, row := range rows {
		tprRow := make([]float64, len(losses))
		detRow := make([]float64, len(losses))
		for li, loss := range losses {
			var acc stats.Acc
			acc.Cap = capSecs
			for rep := 0; rep < reps; rep++ {
				failed, loads, cfg := build(row)
				s := seed + int64(rep)*7919 + int64(li)*104729
				failAt := sim.Time(1+s%int64(failWindow/sim.Millisecond)) * sim.Millisecond
				sc := &Scenario{
					Seed: s, Cfg: cfg, Delay: 10 * sim.Millisecond,
					Duration: duration, FailAt: failAt, LossRate: loss,
					Failed: failed, Loads: loads, StopWhenDetected: true,
				}
				out := sc.Run()
				for _, e := range failed {
					acc.Add(out.PerEntry[e])
				}
			}
			tprRow[li] = acc.TPR()
			detRow[li] = acc.MeanLatency()
		}
		r.TPR = append(r.TPR, tprRow)
		r.DetTime = append(r.DetTime, detRow)
	}
	return r
}

// fig7Cfg is the evaluation configuration of §5: a dedicated counter for
// the observed entry and the default 50 ms exchange interval.
func fig7Cfg(entry netsim.EntryID) fancy.Config {
	return fancy.Config{
		HighPriority: []netsim.EntryID{entry},
		Tree:         tree.Params{Width: 190, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     11,
	}
}

// Figure7 reproduces the dedicated-counter heatmaps: accuracy and detection
// speed across entry sizes and loss rates (§5.1.1). Single-entry failures
// only, because dedicated counters work independently from each other.
func Figure7(scale Scale, seed int64) *HeatmapResult {
	rows := pick(scale, QuickGrid, PaperGrid)
	losses := pick(scale, QuickLossRates, PaperLossRates)
	reps := pick(scale, 2, 10)
	duration := pick(scale, 10*sim.Second, 30*sim.Second)
	const entry = netsim.EntryID(42)
	return grid("Figure 7: dedicated counters", rows, losses, reps,
		duration, 2*sim.Second, seed,
		func(row GridRow) ([]netsim.EntryID, []EntryLoad, fancy.Config) {
			return []netsim.EntryID{entry},
				[]EntryLoad{{Entry: entry, RateBps: row.RateBps, FlowsPerSec: row.FlowsPerSec}},
				fig7Cfg(entry)
		})
}
