package exp

// ISP-wide fleet scenario: the full Abilene deployment of internal/fleet,
// one injected gray link per trial. For every targeted directed link the
// driver builds a fresh network, aims a high-priority entry's traffic
// across that link, injects a per-entry blackhole, and measures whether the
// central correlator localizes exactly that link, how long it takes, and —
// when a provably loop-free detour exists — whether the fleet's gated
// reroute diverts the protected entry.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/topo"
	"fancy/internal/traffic"
)

// FleetRow is one trial: one gray directed link under a full Abilene fleet.
type FleetRow struct {
	Link       string
	Exact      bool     // localized exactly the injected link, nothing else
	TTL        sim.Time // failure injection → localization
	Suppressed int      // alarms the correlator discarded fleet-wide
	Protected  bool     // a loop-free backup existed and the entry was protected
	Rerouted   bool     // the protected entry was diverted to it
}

// FleetResult aggregates the per-link trials.
type FleetResult struct {
	Scale    Scale
	Verified bool // trials ran with the verified-commit gate
	Rows     []FleetRow
}

// Render prints the per-link table plus aggregates (the metrics the fleet
// snapshot reports: localization accuracy, time-to-localize, false alarms).
func (r *FleetResult) Render() string {
	var b strings.Builder
	gate := ""
	if r.Verified {
		gate = ", verified gate"
	}
	fmt.Fprintf(&b, "== ISP-wide fleet: Abilene gray-link localization (%s%s) ==\n", r.Scale, gate)
	headers := []string{"Gray link", "Localized", "TTL", "Suppressed", "Rerouted"}
	var rows [][]string
	exact := 0
	var ttls []sim.Time
	var maxTTL sim.Time
	for _, row := range r.Rows {
		loc := "MISS"
		if row.Exact {
			loc = "exact"
			exact++
			ttls = append(ttls, row.TTL)
			if row.TTL > maxTTL {
				maxTTL = row.TTL
			}
		}
		rr := "n/a"
		if row.Protected {
			rr = fmt.Sprintf("%v", row.Rerouted)
		}
		rows = append(rows, []string{row.Link, loc, row.TTL.String(),
			fmt.Sprintf("%d", row.Suppressed), rr})
	}
	b.WriteString(stats.Table(headers, rows))
	fmt.Fprintf(&b, "exact localization: %d/%d\n", exact, len(r.Rows))
	if len(ttls) > 0 {
		sort.Slice(ttls, func(i, j int) bool { return ttls[i] < ttls[j] })
		fmt.Fprintf(&b, "time-to-localize: median %v, max %v\n", ttls[len(ttls)/2], maxTTL)
	}
	return b.String()
}

// quickFleetLinks is the subsampled directed-link set at Quick scale:
// coast, core and east-coast links, both short and long delays.
var quickFleetLinks = []topo.DirectedLink{
	{From: "seattle", To: "sunnyvale"},
	{From: "kansascity", To: "denver"},
	{From: "chicago", To: "newyork"},
}

// FleetAbilene runs the fleet scenario: Quick targets a 3-link subsample,
// Full targets every directed link of Abilene (28 trials).
func FleetAbilene(scale Scale, seed int64) *FleetResult {
	return FleetAbileneWorkers(scale, seed, false, 1)
}

// FleetAbileneVerified is FleetAbilene with the verified-commit gate on
// every fleet: the single-failure localization and reroute results must be
// indistinguishable from the ungated sweep — verification is free when the
// requested backup is safe.
func FleetAbileneVerified(scale Scale, seed int64) *FleetResult {
	return FleetAbileneWorkers(scale, seed, true, 1)
}

// FleetAbileneWorkers runs the sweep's independent trials on up to workers
// OS threads. Each trial is its own simulator, seeded from the trial index
// alone and written to its own result slot, so the sweep is byte-identical
// for every worker count — parallelism here is pure wall-clock.
func FleetAbileneWorkers(scale Scale, seed int64, verified bool, workers int) *FleetResult {
	var targets []topo.DirectedLink
	if scale == Full {
		spec := topo.Abilene()
		for _, l := range spec.Links {
			targets = append(targets,
				topo.DirectedLink{From: l.A, To: l.B},
				topo.DirectedLink{From: l.B, To: l.A})
		}
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].From != targets[j].From {
				return targets[i].From < targets[j].From
			}
			return targets[i].To < targets[j].To
		})
	} else {
		targets = quickFleetLinks
	}
	res := &FleetResult{Scale: scale, Verified: verified}
	duration := pick(scale, 3*sim.Second, 5*sim.Second)
	res.Rows = make([]FleetRow, len(targets))
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers <= 1 {
		for i, dl := range targets {
			res.Rows[i] = fleetTrial(seed+int64(i), dl, duration, verified)
		}
		return res
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(targets) {
					return
				}
				res.Rows[i] = fleetTrial(seed+int64(i), targets[i], duration, verified)
			}
		}()
	}
	wg.Wait()
	return res
}

// fleetTrial injects one gray link into a fresh Abilene fleet.
func fleetTrial(seed int64, dl topo.DirectedLink, duration sim.Time, verified bool) FleetRow {
	s := sim.New(seed)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: dl.From},
		{Name: "hdst", Attach: dl.To},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(fmt.Sprintf("exp: fleet topology: %v", err))
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		panic(err)
	}
	cfg := fleet.Config{Fancy: fancy.Config{
		HighPriority: []netsim.EntryID{entry},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     3,
	}}
	if verified {
		cfg.Verify = &fleet.VerifyConfig{}
	}
	f, err := fleet.New(s, n, cfg)
	if err != nil {
		panic(err)
	}

	row := FleetRow{Link: dl.String()}
	// Gated reroute, only where a detour is provably loop-free: a neighbor
	// nb of From (other than To) whose installed shortest path to To is
	// strictly cheaper than going back through From cannot traverse the
	// failed link. Direct links are the shortest A→B paths in Abilene, so
	// the comparison baseline is the failed link's own delay.
	if nb, ok := loopFreeBackup(n, dl); ok {
		row.Protected = true
		route := n.Switches[dl.From].Routes.InsertEntry(entry, netsim.Route{
			Port:   n.PortOf[dl.From][dl.To],
			Backup: n.PortOf[dl.From][nb],
		})
		if err := f.Protect(dl.From, entry, route); err != nil {
			panic(err)
		}
	}

	src := traffic.NewUDPSource(s, n.Hosts["hsrc"], netsim.FlowID(entry), entry,
		netsim.EntryAddr(entry, 1), 2e6, 1000, duration)
	src.Pool = n.UsePool()
	src.Start()
	const failAt = sim.Second
	n.Direction(dl.From, dl.To).SetFailure(netsim.FailEntries(seed+1, failAt, 1.0, entry))
	s.Run(duration)

	loc := f.Localized()
	row.Exact = len(loc) == 1 && loc[0] == dl.String()
	if row.Exact {
		row.TTL = f.LocalizedAt(dl.String()) - failAt
	}
	row.Suppressed = f.Suppressed
	if row.Protected {
		row.Rerouted = f.Rerouted(dl.From, entry)
	}
	return row
}

// loopFreeBackup picks From's cheapest neighbor detour toward To that
// provably avoids the From→To link.
func loopFreeBackup(n *topo.Network, dl topo.DirectedLink) (string, bool) {
	direct, ok := n.LinkDelay(dl.From, dl.To)
	if !ok {
		return "", false
	}
	best := ""
	var bestDelay sim.Time
	for _, nb := range n.Neighbors(dl.From) {
		if nb == dl.To {
			continue
		}
		detour, ok := n.PathDelay(nb, dl.To)
		if !ok {
			continue
		}
		back, _ := n.LinkDelay(nb, dl.From)
		if detour >= back+direct {
			continue // detour may route back through From; unsafe
		}
		if best == "" || detour < bestDelay {
			best, bestDelay = nb, detour
		}
	}
	return best, best != ""
}
