// Package exp contains one driver per table and figure of the paper's
// evaluation (§2.3, §5, §6, Appendix D). Each driver builds the scenario,
// runs it at the requested scale and returns a result that renders the same
// rows/series the paper reports. cmd/fancy-bench exposes them on the
// command line; bench_test.go wraps them as testing.B benchmarks.
package exp

import (
	"fmt"
	"math/rand"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

// Scale selects experiment fidelity. Quick subsamples grids, shortens runs
// and lowers repetition counts so the whole suite finishes in CI time; Full
// reproduces the paper-scale parameters. EXPERIMENTS.md records both.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// pick returns q at Quick scale and f at Full scale.
func pick[T any](s Scale, q, f T) T {
	if s == Full {
		return f
	}
	return q
}

// EntryLoad describes the traffic offered to one entry: the synthetic-grid
// axis of Figures 7–9 ("Entry Size: total throughput and flows/s").
type EntryLoad struct {
	Entry       netsim.EntryID
	RateBps     float64
	FlowsPerSec float64
}

// GridRow labels one row of the Figure 7/9 grids.
type GridRow struct {
	Label       string
	RateBps     float64
	FlowsPerSec float64
}

// PaperGrid is the 18-row entry-size axis of Figure 7.
var PaperGrid = []GridRow{
	{"500Mbps/250", 500e6, 250}, {"100Mbps/200", 100e6, 200},
	{"50Mbps/150", 50e6, 150}, {"10Mbps/150", 10e6, 150},
	{"10Mbps/100", 10e6, 100}, {"1Mbps/100", 1e6, 100},
	{"1Mbps/50", 1e6, 50}, {"500Kbps/50", 500e3, 50},
	{"500Kbps/25", 500e3, 25}, {"100Kbps/25", 100e3, 25},
	{"100Kbps/10", 100e3, 10}, {"50Kbps/10", 50e3, 10},
	{"50Kbps/5", 50e3, 5}, {"25Kbps/5", 25e3, 5},
	{"25Kbps/2", 25e3, 2}, {"8Kbps/2", 8e3, 2},
	{"8Kbps/1", 8e3, 1}, {"4Kbps/1", 4e3, 1},
}

// QuickGrid is the subsampled axis used at Quick scale.
var QuickGrid = []GridRow{
	{"10Mbps/100", 10e6, 100}, {"1Mbps/50", 1e6, 50},
	{"500Kbps/25", 500e3, 25}, {"100Kbps/10", 100e3, 10},
	{"25Kbps/5", 25e3, 5}, {"8Kbps/1", 8e3, 1},
}

// PaperLossRates is the loss-rate axis of Figures 7–9 (fractions).
var PaperLossRates = []float64{1.0, 0.75, 0.50, 0.10, 0.01, 0.001}

// QuickLossRates subsamples the axis at Quick scale.
var QuickLossRates = []float64{1.0, 0.50, 0.10, 0.01}

// LossLabel formats a loss fraction like the paper's column headers.
func LossLabel(l float64) string {
	switch {
	case l >= 1:
		return "100%"
	case l >= 0.001:
		return fmt.Sprintf("%g%%", l*100)
	default:
		return fmt.Sprintf("%g%%", l*100)
	}
}

// Scenario is one measurement run on the canonical two-switch link:
//
//	src — up ——(monitored link, failure injected)—— down — dst
type Scenario struct {
	Seed     int64
	Cfg      fancy.Config
	Delay    sim.Time // inter-switch delay (paper: 10 ms)
	Duration sim.Time // total simulated time
	FailAt   sim.Time
	LossRate float64
	Failed   []netsim.EntryID
	Uniform  bool // uniform loss instead of per-entry
	Loads    []EntryLoad

	// StopWhenDetected ends the run as soon as every failed entry is
	// detected, shortening the common case enormously.
	StopWhenDetected bool

	// UDP switches the workload to constant-bit-rate UDP instead of
	// closed-loop TCP flows.
	UDP bool

	// InstallTraffic, when set, replaces the Loads-driven workload with a
	// custom one (e.g. a synthesized trace replay).
	InstallTraffic func(s *sim.Sim, src, dst *netsim.Host)

	// ReverseLoss installs uniform loss on the downstream→upstream
	// direction of the monitored link, hitting StartACK/Report messages.
	ReverseLoss float64
}

// Outcome is what a scenario run produced.
type Outcome struct {
	// PerEntry holds the detection result for every failed entry.
	PerEntry map[netsim.EntryID]stats.Detection
	// UniformDetected reports an EventUniform and its latency.
	UniformDetected bool
	UniformLatency  sim.Time
	// Events is the raw event log.
	Events []fancy.Event
	// CtlBytes is the detector's control-message overhead.
	CtlBytes uint64
	// FalseEntries counts non-failed entries with traffic that ended up
	// flagged (hash collisions).
	FalseEntries int
}

// Run executes the scenario.
func (sc *Scenario) Run() *Outcome {
	s := sim.New(sc.Seed)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	edge := netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 100e9, QueueBytes: 1 << 24}
	core := netsim.LinkConfig{Delay: sc.Delay, RateBps: 100e9, QueueBytes: 1 << 24}
	netsim.Connect(s, src, 0, up, 0, edge)
	link := netsim.Connect(s, up, 1, down, 0, core)
	netsim.Connect(s, down, 1, dst, 0, edge)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	det, err := fancy.NewDetector(s, up, sc.Cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: detector config invalid: %v", err))
	}
	downDet, err := fancy.NewDetector(s, down, sc.Cfg)
	if err != nil {
		panic(err)
	}
	downDet.ListenPort(0)
	det.MonitorPort(1)

	out := &Outcome{PerEntry: make(map[netsim.EntryID]stats.Detection)}
	failedSet := make(map[netsim.EntryID]bool, len(sc.Failed))
	for _, e := range sc.Failed {
		failedSet[e] = true
	}
	pathOf := make(map[string][]netsim.EntryID)
	for _, e := range sc.Failed {
		if _, dedicated := det.DedicatedSlot(e); !dedicated {
			k := pathKey(det.EntryPath(1, e))
			pathOf[k] = append(pathOf[k], e)
		}
	}
	detected := 0
	markDetected := func(e netsim.EntryID) {
		if d := out.PerEntry[e]; d.Detected {
			return
		}
		out.PerEntry[e] = stats.Detection{Detected: true, Latency: s.Now() - sc.FailAt}
		detected++
		if sc.StopWhenDetected && detected == len(sc.Failed) {
			s.Stop()
		}
	}
	det.OnEvent = func(ev fancy.Event) {
		out.Events = append(out.Events, ev)
		if s.Now() < sc.FailAt {
			return // spurious pre-failure event (should not happen)
		}
		switch ev.Kind {
		case fancy.EventDedicated:
			if failedSet[ev.Entry] {
				markDetected(ev.Entry)
			}
		case fancy.EventTreeLeaf:
			for _, e := range pathOf[pathKey(ev.Path)] {
				markDetected(e)
			}
		case fancy.EventUniform:
			if !out.UniformDetected {
				out.UniformDetected = true
				out.UniformLatency = s.Now() - sc.FailAt
			}
			// A uniform report localizes the failure to all entries.
			for _, e := range sc.Failed {
				markDetected(e)
			}
			if sc.Uniform && sc.StopWhenDetected {
				s.Stop()
			}
		}
	}

	// Traffic.
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	if sc.InstallTraffic != nil {
		sc.InstallTraffic(s, src, dst)
	} else if sc.UDP {
		for _, l := range sc.Loads {
			traffic.NewUDPSource(s, src, netsim.FlowID(l.Entry), l.Entry,
				netsim.EntryAddr(l.Entry, 1), l.RateBps, 1000, sc.Duration).Start()
		}
	} else {
		drv := traffic.NewDriver(s, src, dst, tcp.Config{})
		var specs []traffic.FlowSpec
		for _, l := range sc.Loads {
			specs = append(specs, traffic.SteadyEntry(l.Entry, l.RateBps, l.FlowsPerSec, sc.Duration, rng)...)
		}
		drv.Schedule(specs)
	}

	// Failure.
	var failure *netsim.Failure
	if sc.Uniform {
		failure = netsim.FailUniform(sc.Seed+2, sc.FailAt, sc.LossRate)
	} else {
		failure = netsim.FailEntries(sc.Seed+2, sc.FailAt, sc.LossRate, sc.Failed...)
	}
	link.AB.SetFailure(failure)
	if sc.ReverseLoss > 0 {
		link.BA.SetFailure(netsim.FailUniform(sc.Seed+3, 0, sc.ReverseLoss))
	}

	s.Run(sc.Duration)

	for _, e := range sc.Failed {
		if _, ok := out.PerEntry[e]; !ok {
			out.PerEntry[e] = stats.Detection{}
		}
	}
	// False positives: entries with traffic that were flagged but healthy.
	for _, l := range sc.Loads {
		if !failedSet[l.Entry] && det.Flagged(1, l.Entry) {
			out.FalseEntries++
		}
	}
	out.CtlBytes = det.CtlBytesSent
	return out
}

// tcpCfg is the default TCP configuration used by experiment workloads.
func tcpCfg() tcp.Config { return tcp.Config{} }

// simRand builds a deterministic RNG for workload generation.
func simRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func pathKey(p []uint16) string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}
