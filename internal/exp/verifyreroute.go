package exp

// Verified-reroute chaos suite: concurrent gray failures composed so that
// each switch's configured backup is individually loop-free but committing
// both installs a forwarding loop. Traffic washington→kansascity rides
// atlanta→indianapolis; atlanta's backup detours via houston, houston's
// backup detours via atlanta. Failing atlanta→indianapolis AND
// houston→kansascity makes atlanta divert first (houston's link carries no
// entry traffic until then), so houston's flip is provably unsafe by the
// time it localizes.
//
// The unverified baseline commits both flips and installs the
// atlanta↔houston loop — demonstrated by auditing a fresh forwarding model
// snapshotted from the post-run routes. The verified fleet rejects
// houston's flip with a loop verdict and repairs it via losangeles, keeping
// every trial's post-run state loop- and blackhole-free. The suite soaks
// the composition across seeds; the latency cell measures the wall-clock
// cost of one incremental safety check (the paper's localization budget is
// ~156 ms — the check must be negligible against it).

import (
	"fmt"
	"sort"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/topo"
	"fancy/internal/traffic"
	"fancy/internal/verify"
)

// VerifiedRerouteRow is one verified chaos trial.
type VerifiedRerouteRow struct {
	Seed      int64
	Exact     bool     // both injected links localized, nothing else
	Rejected  uint64   // gate rejections (the composed loop)
	Repaired  uint64   // alternate-next-hop repairs
	Fallbacks uint64   // unverified commits (must be 0 here)
	RepairTTL sim.Time // failure injection → repair commit
	Unsafe    int      // unsafe atoms in the post-run audit (must be 0)
	Delivered int      // entry packets delivered end-to-end
}

// VerifiedRerouteResult holds the unverified baseline plus the verified
// seed sweep.
type VerifiedRerouteResult struct {
	Scale Scale
	Seed  int64

	// Unverified baseline: same scenario, no gate.
	BaselineLoopAtoms int      // post-run atoms stuck in a forwarding loop
	BaselineHoleAtoms int      // post-run blackholed atoms
	BaselineDelivered int      // packets that still made it end-to-end
	BaselineTTL       sim.Time // median localization TTL (localization is unharmed)

	Rows []VerifiedRerouteRow
}

// Render prints the baseline damage and the per-seed verified table.
func (r *VerifiedRerouteResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Verified reroute: concurrent-failure chaos suite (%s) ==\n", r.Scale)
	fmt.Fprintf(&b, "baseline (unverified): %d loop atom(s), %d blackhole atom(s), %d pkts delivered\n",
		r.BaselineLoopAtoms, r.BaselineHoleAtoms, r.BaselineDelivered)
	headers := []string{"Seed", "Localized", "Rejected", "Repaired", "Repair TTL", "Unsafe atoms", "Delivered"}
	var rows [][]string
	for _, row := range r.Rows {
		loc := "MISS"
		if row.Exact {
			loc = "exact"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Seed), loc,
			fmt.Sprintf("%d", row.Rejected), fmt.Sprintf("%d", row.Repaired),
			row.RepairTTL.String(), fmt.Sprintf("%d", row.Unsafe),
			fmt.Sprintf("%d", row.Delivered),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// VerifiedReroute runs the chaos suite: one unverified baseline trial (to
// demonstrate the loop the gate exists to prevent) plus pick(8, 40)
// verified trials across consecutive seeds.
func VerifiedReroute(scale Scale, seed int64) *VerifiedRerouteResult {
	res := &VerifiedRerouteResult{Scale: scale, Seed: seed}
	duration := pick(scale, 4*sim.Second, 6*sim.Second)

	base := verifiedChaosTrial(seed, duration, false)
	res.BaselineLoopAtoms = base.loopAtoms
	res.BaselineHoleAtoms = base.holeAtoms
	res.BaselineDelivered = base.delivered
	res.BaselineTTL = ttlMedian(base.locTTLs)

	for i := 0; i < pick(scale, 8, 40); i++ {
		res.Rows = append(res.Rows, verifiedChaosTrial(seed+int64(i), duration, true).row())
	}
	return res
}

type chaosOut struct {
	seed      int64
	exact     bool
	locTTLs   []sim.Time
	rejected  uint64
	repaired  uint64
	fallbacks uint64
	repairTTL sim.Time
	loopAtoms int
	holeAtoms int
	delivered int
}

func (c chaosOut) row() VerifiedRerouteRow {
	return VerifiedRerouteRow{
		Seed: c.seed, Exact: c.exact,
		Rejected: c.rejected, Repaired: c.repaired, Fallbacks: c.fallbacks,
		RepairTTL: c.repairTTL, Unsafe: c.loopAtoms + c.holeAtoms,
		Delivered: c.delivered,
	}
}

const chaosFailAt = sim.Second

// verifiedChaosTrial runs one washington→kansascity double-failure trial.
func verifiedChaosTrial(seed int64, duration sim.Time, verified bool) chaosOut {
	s := sim.New(seed)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: "washington"},
		{Name: "hdst", Attach: "kansascity"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(fmt.Sprintf("exp: chaos topology: %v", err))
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		panic(err)
	}
	cfg := fleet.Config{Fancy: fancy.Config{
		HighPriority: []netsim.EntryID{entry},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     3,
	}}
	if verified {
		cfg.Verify = &fleet.VerifyConfig{}
	}
	f, err := fleet.New(s, n, cfg)
	if err != nil {
		panic(err)
	}
	protect := func(sw, primaryTo, backupTo string) {
		route := n.Switches[sw].Routes.InsertEntry(entry, netsim.Route{
			Port:   n.PortOf[sw][primaryTo],
			Backup: n.PortOf[sw][backupTo],
		})
		if err := f.Protect(sw, entry, route); err != nil {
			panic(err)
		}
	}
	protect("atlanta", "indianapolis", "houston")
	protect("houston", "kansascity", "atlanta")

	out := chaosOut{seed: seed}
	n.Hosts["hdst"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Entry == entry {
			out.delivered++
		}
	})

	traffic.NewUDPSource(s, n.Hosts["hsrc"], netsim.FlowID(entry), entry,
		netsim.EntryAddr(entry, 1), 2e6, 1000, duration).Start()
	n.Direction("atlanta", "indianapolis").SetFailure(
		netsim.FailEntries(seed+1, chaosFailAt, 1.0, entry))
	n.Direction("houston", "kansascity").SetFailure(
		netsim.FailEntries(seed+2, chaosFailAt, 1.0, entry))
	s.Run(duration)

	loc := f.Localized()
	out.exact = len(loc) == 2 &&
		loc[0] == "atlanta->indianapolis" && loc[1] == "houston->kansascity"
	for _, key := range loc {
		out.locTTLs = append(out.locTTLs, f.LocalizedAt(key)-chaosFailAt)
	}
	for _, ev := range f.Events {
		if ev.Kind == fleet.EventRerouteRepaired && out.repairTTL == 0 {
			out.repairTTL = ev.Time - chaosFailAt
		}
	}
	// Audit the post-run forwarding state. The verified fleet audits its own
	// incremental model; the baseline has none, so snapshot a fresh model
	// from the final installed routes — same verdict semantics.
	var audit *verify.Verdict
	if verified {
		out.rejected = f.Verify.Rejected
		out.repaired = f.Verify.Repaired
		out.fallbacks = f.Verify.Fallbacks
		audit = f.Verifier().Audit()
	} else {
		audit = verify.NewModel(n).Audit()
	}
	out.loopAtoms = audit.Loops()
	out.holeAtoms = audit.Blackholes()
	return out
}

// BenchCells summarizes the suite: the baseline damage and the verified
// sweep's repair latency (simulated time).
func (r *VerifiedRerouteResult) BenchCells() []BenchCell {
	var repairs []sim.Time
	var maxRepair sim.Time
	exact, rejected, repaired, unsafe := 0, uint64(0), uint64(0), 0
	for _, row := range r.Rows {
		if row.Exact {
			exact++
		}
		rejected += row.Rejected
		repaired += row.Repaired
		unsafe += row.Unsafe
		if row.RepairTTL > 0 {
			repairs = append(repairs, row.RepairTTL)
			if row.RepairTTL > maxRepair {
				maxRepair = row.RepairTTL
			}
		}
	}
	return []BenchCell{
		{
			Experiment:  "verified-reroute",
			Cell:        "baseline-unverified",
			Scale:       r.Scale.String(),
			Seed:        r.Seed,
			TTLMedianMs: ttlMs(r.BaselineTTL),
			Values: map[string]float64{
				"loop_atoms": float64(r.BaselineLoopAtoms),
				"hole_atoms": float64(r.BaselineHoleAtoms),
				"delivered":  float64(r.BaselineDelivered),
			},
		},
		{
			Experiment:  "verified-reroute",
			Cell:        "verified",
			Scale:       r.Scale.String(),
			Seed:        r.Seed,
			TTLMedianMs: ttlMs(ttlMedian(repairs)),
			TTLMaxMs:    ttlMs(maxRepair),
			Values: map[string]float64{
				"seeds":        float64(len(r.Rows)),
				"exact":        float64(exact),
				"rejected":     float64(rejected),
				"repaired":     float64(repaired),
				"unsafe_atoms": float64(unsafe),
			},
		},
	}
}

// VerifyLatencyCell measures the wall-clock cost of one incremental safety
// check on the full Abilene model: every (switch, alternate next hop) flip
// of four dedicated entries, checked against a live model that commits as
// it goes. The caller supplies the stopwatch (seconds) so this package
// stays free of wall-clock reads; the cell is marked wallclock=1 so the
// regression gate treats its latency as host-dependent.
func VerifyLatencyCell(seed int64, now func() float64) BenchCell {
	s := sim.New(seed)
	spec := topo.Abilene()
	owners := map[netsim.EntryID]string{}
	var entries []netsim.EntryID
	for i, sw := range []string{"kansascity", "denver", "seattle", "atlanta"} {
		e := netsim.EntryID(10 + i)
		h := "h-" + sw
		spec.Hosts = append(spec.Hosts, topo.HostSpec{Name: h, Attach: sw})
		owners[e] = h
		entries = append(entries, e)
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(fmt.Sprintf("exp: latency topology: %v", err))
	}
	if err := n.InstallShortestPaths(owners); err != nil {
		panic(err)
	}
	m := verify.NewModel(n)

	var checkMs []float64
	var maxMs float64
	for _, e := range entries {
		for _, sw := range m.Switches() {
			for _, nb := range n.Neighbors(sw) {
				d := verify.NewDelta(sw, []verify.Flip{
					verify.EntryFlip(sw, e, n.PortOf[sw][nb])})
				t0 := now()
				v, err := m.Check(d)
				ms := (now() - t0) * 1e3
				if err != nil {
					panic(err)
				}
				checkMs = append(checkMs, ms)
				if ms > maxMs {
					maxMs = ms
				}
				// Commit safe flips so later checks run against an evolved
				// (dirtier) model, not always the pristine snapshot.
				if v.Safe() {
					m.Commit(d)
				}
			}
		}
	}
	sort.Float64s(checkMs)
	return BenchCell{
		Experiment:  "verified-reroute",
		Cell:        "check-latency",
		Scale:       "full",
		Seed:        seed,
		TTLMedianMs: checkMs[len(checkMs)/2],
		TTLMaxMs:    maxMs,
		Values: map[string]float64{
			"wallclock":   1,
			"checks":      float64(len(checkMs)),
			"model_atoms": float64(m.Atoms()),
		},
	}
}
