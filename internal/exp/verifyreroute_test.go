package exp

// Chaos-suite contract: the unverified baseline must actually install the
// composed forwarding loop (otherwise the suite proves nothing), and every
// verified trial must reject it, repair via an alternate next hop, keep
// exact localization of both failures, and end with zero unsafe atoms. The
// soak widens the seed batch nightly via FANCY_VERIFY_SOAK_RUNS.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"fancy/internal/sim"
)

func TestVerifiedRerouteChaos(t *testing.T) {
	r := VerifiedReroute(Quick, 20220822)
	if r.BaselineLoopAtoms < 1 {
		t.Fatalf("baseline installed no loop (loop atoms %d) — the chaos composition is broken",
			r.BaselineLoopAtoms)
	}
	if r.BaselineTTL <= 0 {
		t.Fatalf("baseline localization TTL %v — localization itself broke", r.BaselineTTL)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no verified trials")
	}
	for _, row := range r.Rows {
		assertVerifiedRow(t, row)
	}
	out := r.Render()
	for _, want := range []string{"baseline (unverified)", "loop atom(s)", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render misses %q:\n%s", want, out)
		}
	}
}

func assertVerifiedRow(t *testing.T, row VerifiedRerouteRow) {
	t.Helper()
	if !row.Exact {
		t.Fatalf("seed %d: localization not exact", row.Seed)
	}
	if row.Rejected < 1 || row.Repaired < 1 {
		t.Fatalf("seed %d: rejected=%d repaired=%d, want the loop rejected and repaired",
			row.Seed, row.Rejected, row.Repaired)
	}
	if row.Fallbacks != 0 {
		t.Fatalf("seed %d: %d unverified fallback commits in a healthy gate", row.Seed, row.Fallbacks)
	}
	if row.Unsafe != 0 {
		t.Fatalf("seed %d: %d unsafe atoms committed", row.Seed, row.Unsafe)
	}
	if row.RepairTTL <= 0 {
		t.Fatalf("seed %d: no repair commit observed", row.Seed)
	}
	if row.Delivered == 0 {
		t.Fatalf("seed %d: repaired detour delivered nothing", row.Seed)
	}
}

// TestVerifiedRerouteSoakSeeds drives the verified chaos trial over a seed
// batch. The default batch rides along in regular CI; nightly widens it via
// FANCY_VERIFY_SOAK_RUNS (with the race detector). Deterministic per seed.
func TestVerifiedRerouteSoakSeeds(t *testing.T) {
	runs := 6
	if v := os.Getenv("FANCY_VERIFY_SOAK_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FANCY_VERIFY_SOAK_RUNS=%q: %v", v, err)
		}
		runs = n
	}
	for i := 0; i < runs; i++ {
		seed := int64(7000 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			assertVerifiedRow(t, verifiedChaosTrial(seed, 4*sim.Second, true).row())
		})
	}
}

// TestFleetAbileneVerified: single-failure sweeps must be unharmed by the
// gate — same exact localization, every protected entry still diverted.
func TestFleetAbileneVerified(t *testing.T) {
	r := FleetAbileneVerified(Quick, 20220822)
	if !r.Verified {
		t.Fatal("result not flagged verified")
	}
	for _, row := range r.Rows {
		if !row.Exact {
			t.Fatalf("%s: localization regression under the gate", row.Link)
		}
		if row.Protected && !row.Rerouted {
			t.Fatalf("%s: gate blocked a safe reroute", row.Link)
		}
	}
	if !strings.Contains(r.Render(), "verified gate") {
		t.Fatal("render does not flag the gate")
	}
	if cells := r.BenchCells(20220822); cells[0].Experiment != "fleet-verified" {
		t.Fatalf("bench cell experiment %q, want fleet-verified", cells[0].Experiment)
	}
}

// TestVerifyLatencyCell exercises the cell with a synthetic stopwatch (1 ms
// per read keeps the test itself wall-free and deterministic).
func TestVerifyLatencyCell(t *testing.T) {
	tick := 0.0
	now := func() float64 { tick += 1e-3; return tick }
	c := VerifyLatencyCell(20220822, now)
	if c.Experiment != "verified-reroute" || c.Cell != "check-latency" {
		t.Fatalf("cell identity wrong: %+v", c)
	}
	if c.Values["wallclock"] != 1 {
		t.Fatal("latency cell not marked wallclock — the regression gate would treat it as simulated time")
	}
	if c.Values["checks"] == 0 || c.Values["model_atoms"] == 0 {
		t.Fatalf("degenerate latency cell: %+v", c)
	}
	if c.TTLMedianMs <= 0 || c.TTLMaxMs < c.TTLMedianMs {
		t.Fatalf("latency stats wrong: median %v max %v", c.TTLMedianMs, c.TTLMaxMs)
	}
}
