package exp

// Figure 10 (§6.1): the fast-rerouting case study. A FANcY switch forwards
// traffic over a primary link whose far-end "link switch" starts dropping
// 1%, 10% or 100% of the packets; FANcY detects the mismatch and the
// reroute application diverts only the affected entries to a backup link.
// The figure plots delivered throughput over time — the dip at the failure
// and the sub-second recovery.

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/sim"
	"fancy/internal/traffic"
)

// Fig10Series is one experiment's delivered-throughput time series.
type Fig10Series struct {
	Label      string
	LossRate   float64
	BinSecs    float64
	Mbps       []float64
	ReroutedAt sim.Time // 0 if never rerouted
	FailAt     sim.Time
}

// Fig10Result groups the series of the case study.
type Fig10Result struct {
	Series []Fig10Series
}

// Render prints each series as a row of per-bin throughputs.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("== Figure 10: selective fast rerouting on a Tofino-like switch ==\n")
	for _, s := range r.Series {
		reroute := "never"
		if s.ReroutedAt > 0 {
			reroute = fmt.Sprintf("+%.0fms", (s.ReroutedAt-s.FailAt).Seconds()*1000)
		}
		fmt.Fprintf(&b, "%-24s fail@%.1fs reroute %s\n  Mbps/bin:", s.Label, s.FailAt.Seconds(), reroute)
		for _, m := range s.Mbps {
			fmt.Fprintf(&b, " %5.1f", m)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure10 runs the case study for dedicated and hash-tree entries at the
// three loss rates. The testbed ran 50 Gbps; the simulation runs a scaled
// rate, which preserves the plot's shape (throughput dip and recovery).
func Figure10(scale Scale, seed int64) *Fig10Result {
	res := &Fig10Result{}
	for _, dedicated := range []bool{true, false} {
		for _, loss := range []float64{1.0, 0.10, 0.01} {
			res.Series = append(res.Series, runFig10(scale, seed, dedicated, loss))
		}
	}
	return res
}

func runFig10(scale Scale, seed int64, dedicated bool, loss float64) Fig10Series {
	s := sim.New(seed)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 3)
	down := netsim.NewSwitch(s, "down", 3)
	lc := netsim.LinkConfig{Delay: 2 * sim.Millisecond, RateBps: 10e9, QueueBytes: 1 << 24}
	netsim.Connect(s, src, 0, up, 0, lc)
	primary := netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, up, 2, down, 2, lc) // backup link via the link switch
	netsim.Connect(s, down, 1, dst, 0, lc)
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	const entry = netsim.EntryID(10)
	hp := []netsim.EntryID{10}
	if !dedicated {
		hp = []netsim.EntryID{1} // monitored entry goes through the tree
	}
	cfg := fancy.Config{
		HighPriority: hp,
		Tree:         tree.Params{Width: 190, Depth: 3, Split: 1, Pipelined: false}, // Tofino layout
		TreeSeed:     19,
		// §6: 200 ms counting sessions so the failure impact is visible.
		ExchangeInterval: 200 * sim.Millisecond,
		ZoomingInterval:  200 * sim.Millisecond,
	}
	det, err := fancy.NewDetector(s, up, cfg)
	if err != nil {
		panic(err)
	}
	downDet, err := fancy.NewDetector(s, down, cfg)
	if err != nil {
		panic(err)
	}
	downDet.ListenPort(0)
	det.MonitorPort(1)

	app := reroute.New(s, det, 1)
	det.OnEvent = func(ev fancy.Event) { app.HandleEvent(ev) }
	route := up.Routes.InsertEntry(entry, netsim.Route{Port: 1, Backup: 2})
	app.Protect(entry, route)

	duration := pick(scale, 6*sim.Second, 10*sim.Second)
	const failAt = 2 * sim.Second
	const binSecs = 0.1
	bins := make([]float64, int(duration.Seconds()/binSecs))
	// Tap delivered bytes at the downstream switch's forwarding step so
	// both the TCP flows (bound to per-flow handlers) and UDP count.
	down.OnForwarded(func(p *netsim.Packet, in, out int) {
		if out != 1 {
			return
		}
		bin := int(s.Now().Seconds() / binSecs)
		if bin < len(bins) {
			bins[bin] += float64(p.Size) * 8
		}
	})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	// Workload: TCP flows plus a UDP stream, as in the testbed.
	rateBps := pick(scale, 50e6, 500e6)
	drv := traffic.NewDriver(s, src, dst, tcpCfg())
	rng := simRand(seed)
	drv.Schedule(traffic.SteadyEntry(entry, rateBps, 50, duration, rng))
	traffic.NewUDPSource(s, src, 9999, entry, netsim.EntryAddr(entry, 2),
		rateBps/100, 1000, duration).Start()

	primary.AB.SetFailure(netsim.FailEntries(seed+3, failAt, loss, entry))
	s.Run(duration)

	series := Fig10Series{
		LossRate: loss, BinSecs: binSecs, FailAt: failAt,
		ReroutedAt: app.ReroutedAt[entry],
	}
	kind := "hash-based"
	if dedicated {
		kind = "dedicated"
	}
	series.Label = fmt.Sprintf("%s loss=%s", kind, LossLabel(loss))
	for _, b := range bins {
		series.Mbps = append(series.Mbps, b/binSecs/1e6)
	}
	return series
}
