package exp

// Table 3 (§5.2): FANcY on CAIDA-like traces — accuracy in bytes and
// prefixes, split by dedicated counters vs hash-based tree, plus detection
// time. The baseline comparison (§5.2) runs the simple designs on the same
// traces.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"fancy/internal/baseline/lossradar"
	"fancy/internal/baseline/netseer"
	"fancy/internal/baseline/simple"
	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/tcp"
	"fancy/internal/traffic"
)

// Table3Row aggregates one loss rate's results.
type Table3Row struct {
	LossRate     float64
	TPRBytes     float64
	TPRPrefixes  float64
	TPRDedicated float64
	TPRTree      float64
	DetTimeSecs  float64
	Trials       int
	DedTrials    int
	TreeTrials   int
}

// Table3Result is the full table.
type Table3Result struct {
	Rows  []Table3Row
	Scale Scale
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("== Table 3: FANcY on synthesized CAIDA-like traces ==\n")
	headers := []string{"Loss", "TPR Bytes", "TPR Prefixes", "Dedicated", "Hash-Tree", "DetTime", "Trials"}
	pct := func(v float64, trials int) string {
		if trials == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", v*100)
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			LossLabel(row.LossRate),
			pct(row.TPRBytes, row.Trials),
			pct(row.TPRPrefixes, row.Trials),
			pct(row.TPRDedicated, row.DedTrials),
			pct(row.TPRTree, row.TreeTrials),
			fmt.Sprintf("%.2fs", row.DetTimeSecs),
			fmt.Sprintf("%d", row.Trials),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// traceScenario holds the pieces shared by Table 3 and the baseline
// comparison: a synthesized trace replayed through the two-switch topology.
type traceScenario struct {
	scale     Scale
	trace     *traffic.Trace
	dedicated []netsim.EntryID
	cfg       fancy.Config
	duration  sim.Time
	failAt    sim.Time
}

func buildTraceScenario(scale Scale, seed int64) *traceScenario {
	cfg := traffic.StandardTraces(pick(scale, 400.0, 50.0))[0]
	cfg.Seed = seed
	cfg.Duration = pick(scale, 12*sim.Second, 30*sim.Second)
	tr := traffic.Synthesize(cfg)

	nDedicated := pick(scale, 100, 500)
	dedicated := make([]netsim.EntryID, nDedicated)
	for i := range dedicated {
		dedicated[i] = netsim.EntryID(i) // historical top-N by construction
	}
	return &traceScenario{
		scale:     scale,
		trace:     tr,
		dedicated: dedicated,
		cfg: fancy.Config{
			HighPriority: dedicated,
			Tree:         tree.Params{Width: 190, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     17,
		},
		duration: cfg.Duration,
		failAt:   2 * sim.Second,
	}
}

// samplePrefixes picks prefixes to fail, stratified over the slice's
// byte-rank distribution so TPR-bytes and TPR-prefixes both get signal.
// The paper fails the top 10K of ≈250K prefixes (the top ≈4%, carrying
// ≥95% of the bytes) one by one; we sample within the equivalent head.
func (ts *traceScenario) samplePrefixes(n int, rng *rand.Rand) []netsim.EntryID {
	head := ts.trace.Config.Prefixes / 20
	if head < 25 {
		head = 25
	}
	// Make sure the head reaches past the dedicated set so hash-tree
	// prefixes are sampled too (at full scale 10K ≫ 500 guarantees this).
	if min := 2 * len(ts.dedicated); head < min {
		head = min
	}
	top := ts.trace.SliceTop(head)
	if len(top) == 0 {
		return nil
	}
	var out []netsim.EntryID
	for i := 0; i < n; i++ {
		// Stratified: sample rank ~ quadratic so most picks are from the
		// head (where the bytes are) but the tail is represented.
		f := float64(i) / float64(n)
		idx := int(f * f * float64(len(top)-1))
		jitter := 0
		if len(top) > 10 {
			jitter = rng.Intn(len(top) / 10)
		}
		if idx+jitter < len(top) {
			idx += jitter
		}
		out = append(out, top[idx])
	}
	// De-duplicate while keeping order.
	seen := make(map[netsim.EntryID]bool)
	uniq := out[:0]
	for _, e := range out {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	return uniq
}

// prefixBytes returns each prefix's slice bytes.
func (ts *traceScenario) prefixBytes() map[netsim.EntryID]int64 {
	m := make(map[netsim.EntryID]int64)
	for _, f := range ts.trace.Specs {
		m[f.Entry] += f.Bytes
	}
	return m
}

// Table3 runs the trace experiments.
func Table3(scale Scale, seed int64) *Table3Result {
	losses := pick(scale, []float64{1.0, 0.5, 0.1, 0.01},
		[]float64{1.0, 0.75, 0.5, 0.1, 0.01, 0.001})
	nSamples := pick(scale, 6, 40)
	ts := buildTraceScenario(scale, seed)
	bytesOf := ts.prefixBytes()
	dedSet := make(map[netsim.EntryID]bool)
	for _, e := range ts.dedicated {
		dedSet[e] = true
	}
	rng := rand.New(rand.NewSource(seed + 99))
	samples := ts.samplePrefixes(nSamples, rng)

	res := &Table3Result{Scale: scale}
	for _, loss := range losses {
		row := Table3Row{LossRate: loss}
		var detBytes, totBytes float64
		var det, tot, dedDet, dedTot, treeDet, treeTot int
		var lat []float64
		for i, prefix := range samples {
			sc := &Scenario{
				Seed: seed + int64(i)*131, Cfg: ts.cfg, Delay: 10 * sim.Millisecond,
				Duration: ts.duration, FailAt: ts.failAt, LossRate: loss,
				Failed:           []netsim.EntryID{prefix},
				Loads:            nil, // loads come from the trace below
				StopWhenDetected: true,
			}
			out := runTrace(sc, ts.trace)
			d := out.PerEntry[prefix]
			tot++
			totBytes += float64(bytesOf[prefix])
			if dedSet[prefix] {
				dedTot++
			} else {
				treeTot++
			}
			if d.Detected {
				det++
				detBytes += float64(bytesOf[prefix])
				lat = append(lat, d.Latency.Seconds())
				if dedSet[prefix] {
					dedDet++
				} else {
					treeDet++
				}
			}
		}
		row.Trials = tot
		row.DedTrials = dedTot
		row.TreeTrials = treeTot
		if tot > 0 {
			row.TPRPrefixes = float64(det) / float64(tot)
		}
		if totBytes > 0 {
			row.TPRBytes = detBytes / totBytes
		}
		if dedTot > 0 {
			row.TPRDedicated = float64(dedDet) / float64(dedTot)
		}
		if treeTot > 0 {
			row.TPRTree = float64(treeDet) / float64(treeTot)
		}
		row.DetTimeSecs = stats.Mean(lat)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// runTrace executes a scenario whose traffic comes from a synthesized
// trace instead of grid loads.
func runTrace(sc *Scenario, tr *traffic.Trace) *Outcome {
	sc.InstallTraffic = func(s *sim.Sim, src, dst *netsim.Host) {
		drv := traffic.NewDriver(s, src, dst, tcp.Config{})
		drv.Schedule(tr.Specs)
	}
	return sc.Run()
}

// BaselineRow is one design's result in the §5.2 comparison. MemoryBytes
// is the design's requirement at ISP scale — a 250K-prefix routing table —
// which is the paper's point of comparison (320 MB for per-prefix counters
// versus FANcY's 1.25 MB).
type BaselineRow struct {
	Design        string
	TPRPrefixes   float64
	FalsePerTrial float64
	MemoryBytes   int
	DetTimeSecs   float64
}

// BaselineResult is the §5.2 comparison output.
type BaselineResult struct {
	LossRate float64
	Rows     []BaselineRow
}

// Render prints the comparison.
func (r *BaselineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== §5.2 baseline comparison (loss %s) ==\n", LossLabel(r.LossRate))
	headers := []string{"Design", "TPR", "FalsePos/trial", "Memory", "DetTime"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Design,
			fmt.Sprintf("%.1f%%", row.TPRPrefixes*100),
			fmt.Sprintf("%.1f", row.FalsePerTrial),
			fmtBytes(row.MemoryBytes),
			fmt.Sprintf("%.2fs", row.DetTimeSecs),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	b.WriteString("(lossradar/netseer run within FANcY's 20 KB budget at simulation-scale\n" +
		" traffic; at ISP line rate the same budgets fail — Table 2 / Figure 2)\n")
	return b.String()
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BaselineComparison runs the simple designs on the same trace scenario and
// loss rate (§5.2): single link counter, one counter per prefix, and a
// counting Bloom filter sized to FANcY's memory budget.
func BaselineComparison(scale Scale, seed int64) *BaselineResult {
	ts := buildTraceScenario(scale, seed)
	loss := 0.10
	nSamples := pick(scale, 5, 30)
	rng := rand.New(rand.NewSource(seed + 7))
	samples := ts.samplePrefixes(nSamples, rng)
	prefixes := ts.trace.Config.Prefixes

	// The counting Bloom filter gets FANcY's per-port budget: 20 KB →
	// 20 KB·8/(32·2) cells.
	bloomCells := 20_000 * 8 / (32 * 2)

	designs := []simple.Design{
		simple.SingleCounter{},
		simple.PerEntry{N: prefixes},
		simple.CountingBloom{M: bloomCells, K: 2, Seed: 5},
	}
	res := &BaselineResult{LossRate: loss}

	// The §2.3 systems, executable on the same trials. LossRadar gets the
	// IBF cells that fit FANcY's 20 KB budget at 36 B/cell (≈560);
	// NetSeer gets a buffer of the signatures that fit 20 KB at 16 B each
	// (1250 packets — far below this link's bandwidth-delay product).
	res.Rows = append(res.Rows,
		runLossRadarTrials(ts, samples, loss, seed),
		runNetSeerTrials(ts, samples, loss, seed),
	)

	for _, design := range designs {
		var det, tot, fps int
		var lat []float64
		for i, prefix := range samples {
			outcome := runBaselineTrial(ts, design, prefix, loss, seed+int64(i)*17)
			tot++
			if outcome.detected {
				det++
				lat = append(lat, outcome.latency.Seconds())
			}
			fps += outcome.falsePositives
		}
		row := BaselineRow{
			Design:      design.Name(),
			DetTimeSecs: stats.Mean(lat),
		}
		if tot > 0 {
			row.TPRPrefixes = float64(det) / float64(tot)
			row.FalsePerTrial = float64(fps) / float64(tot)
		}
		switch d := design.(type) {
		case simple.PerEntry:
			// Report at ISP scale: one counter for each of 250K prefixes.
			row.MemoryBytes = simple.PerEntry{N: 250_000}.MemoryBytes(1)
		case simple.CountingBloom:
			row.MemoryBytes = d.MemoryBytes()
		default:
			row.MemoryBytes = 8
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// baselineTopo builds the bare two-switch topology shared by the §2.3/§2.4
// baseline trials and returns the pieces the caller hooks into.
type baselineTopo struct {
	s        *sim.Sim
	src, dst *netsim.Host
	up, down *netsim.Switch
	link     *netsim.Link
}

func newBaselineTopo(seed int64) *baselineTopo {
	s := sim.New(seed)
	b := &baselineTopo{s: s}
	b.src = netsim.NewHost(s, "src")
	b.dst = netsim.NewHost(s, "dst")
	b.up = netsim.NewSwitch(s, "up", 2)
	b.down = netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 100e9, QueueBytes: 1 << 24}
	netsim.Connect(s, b.src, 0, b.up, 0, lc)
	b.link = netsim.Connect(s, b.up, 1, b.down, 0, lc)
	netsim.Connect(s, b.down, 1, b.dst, 0, lc)
	b.up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	b.down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	b.down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	b.src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	b.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	return b
}

// runLossRadarTrials runs the executable LossRadar meter pair, budgeted to
// FANcY's per-port memory, on the same failure trials.
func runLossRadarTrials(ts *traceScenario, samples []netsim.EntryID, loss float64, seed int64) BaselineRow {
	const cells = 20_000 / lossradar.CellBytes
	var det, tot int
	for i, prefix := range samples {
		b := newBaselineTopo(seed + int64(i)*23)
		m := lossradar.NewMeterPair(b.s, cells, 10*sim.Millisecond)
		b.up.AddEgressHook(m)
		b.up.RefreshEgressHooks()
		b.down.AddIngressHook(m)
		drv := traffic.NewDriver(b.s, b.src, b.dst, tcp.Config{})
		drv.Schedule(ts.trace.Specs)
		b.link.AB.SetFailure(netsim.FailEntries(seed+2, ts.failAt, loss, prefix))
		b.s.Run(ts.duration)
		tot++
		if m.LostRecovered[prefix] > 0 {
			det++
		}
	}
	row := BaselineRow{Design: "lossradar-20KB", MemoryBytes: cells * lossradar.CellBytes * 2}
	if tot > 0 {
		row.TPRPrefixes = float64(det) / float64(tot)
	}
	return row
}

// runNetSeerTrials runs the executable NetSeer protocol with a buffer that
// fits FANcY's per-port memory — far below the link's BDP, so most losses
// are unattributable (the Figure 2 regime).
func runNetSeerTrials(ts *traceScenario, samples []netsim.EntryID, loss float64, seed int64) BaselineRow {
	const bufferPkts = 20_000 / netseer.RecordBytes
	var det, tot int
	for i, prefix := range samples {
		b := newBaselineTopo(seed + int64(i)*29)
		p := netseer.NewProtocol(b.s, bufferPkts, 10*sim.Millisecond)
		b.up.AddEgressHook(p)
		b.up.RefreshEgressHooks()
		b.down.AddIngressHook(p)
		drv := traffic.NewDriver(b.s, b.src, b.dst, tcp.Config{})
		drv.Schedule(ts.trace.Specs)
		b.link.AB.SetFailure(netsim.FailEntries(seed+2, ts.failAt, loss, prefix))
		b.s.Run(ts.duration)
		tot++
		if p.LossByEntry[prefix] > 0 {
			det++
		}
	}
	row := BaselineRow{Design: "netseer-20KB", MemoryBytes: bufferPkts * netseer.RecordBytes}
	if tot > 0 {
		row.TPRPrefixes = float64(det) / float64(tot)
	}
	return row
}

type baselineOutcome struct {
	detected       bool
	latency        sim.Time
	falsePositives int
}

func runBaselineTrial(ts *traceScenario, design simple.Design, prefix netsim.EntryID,
	loss float64, seed int64) baselineOutcome {

	s := sim.New(seed)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	lc := netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 100e9, QueueBytes: 1 << 24}
	netsim.Connect(s, src, 0, up, 0, lc)
	link := netsim.Connect(s, up, 1, down, 0, lc)
	netsim.Connect(s, down, 1, dst, 0, lc)
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	probe := simple.NewProbe(s, design, 50*sim.Millisecond)
	up.AddEgressHook(probe)
	up.RefreshEgressHooks()
	down.AddIngressHook(probe)

	drv := traffic.NewDriver(s, src, dst, tcp.Config{})
	drv.Schedule(ts.trace.Specs)
	link.AB.SetFailure(netsim.FailEntries(seed+2, ts.failAt, loss, prefix))
	s.Run(ts.duration)

	out := baselineOutcome{}
	if at, ok := probe.EntryFlaggedAt(prefix); ok {
		out.detected = true
		out.latency = at - ts.failAt
	}
	// Count false positives over the prefixes active in the slice.
	active := make(map[netsim.EntryID]bool)
	for _, f := range ts.trace.Specs {
		active[f.Entry] = true
	}
	failed := map[netsim.EntryID]bool{prefix: true}
	var universe []netsim.EntryID
	for e := range active {
		universe = append(universe, e)
	}
	sort.Slice(universe, func(a, b int) bool { return universe[a] < universe[b] })
	out.falsePositives = probe.FalsePositives(universe, failed)
	return out
}
