package exp

// Fleet chaos sweep: the FleetAbilene scenario re-run over a degraded
// management plane. Each configuration fixes a management-network loss rate
// and a correlator crash schedule; every targeted directed link then gets
// its own trial (fresh Abilene, one injected gray link). The claim under
// test is the survivability contract: impairments may slow localization
// down (TTL degrades) but must never change the verdict — accuracy stays
// exact on every directed link, with zero duplicate confirmed verdicts.

import (
	"fmt"
	"sort"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/topo"
	"fancy/internal/traffic"
)

// ChaosFleetConfig is one cell of the sweep: a management-plane impairment
// level plus a correlator crash schedule, optionally with a replicated
// correlator group.
type ChaosFleetConfig struct {
	Name     string
	Loss     float64 // management-datagram loss probability
	Crash    bool    // crash the correlator mid-run, restart 300 ms later
	Replicas int     // correlator replicas (0/1 = single instance)
}

// fleetChaosConfigs is the sweep grid. loss20+crash is the single-instance
// acceptance configuration from the checkpoint/restart work (20% loss plus
// a crash/restart spanning the first evidence window); replica3+leaderkill
// is the replicated acceptance configuration — same impairment, but the
// crashed correlator is the LEADER of a 3-replica consensus group, and
// recovery is a phi-driven election plus replicated-log restore instead of
// a scheduled local restart.
func fleetChaosConfigs() []ChaosFleetConfig {
	return []ChaosFleetConfig{
		{Name: "perfect", Loss: 0, Crash: false},
		{Name: "loss10", Loss: 0.10, Crash: false},
		{Name: "loss20+crash", Loss: 0.20, Crash: true},
		{Name: "replica3+leaderkill", Loss: 0.20, Crash: true, Replicas: 3},
	}
}

// ChaosFleetRow is one trial of the sweep.
type ChaosFleetRow struct {
	Config     string
	Link       string
	Exact      bool     // localized exactly the injected link, nothing else
	Verdicts   int      // localization events for the link (must be <=1)
	TTL        sim.Time // failure injection → localization
	Rerouted   bool     // protected entry diverted (where a detour exists)
	Protected  bool
	Stale      uint64 // stale-epoch reports discarded
	Handbacks  uint64 // degraded-mode reconciliations
	MgmtLost   uint64 // management datagrams dropped by the impairments
	MgmtHoles  int    // report seqs lost for good
	Duplicates uint64 // transport duplicates suppressed
	Failovers  uint64 // replica leader takeovers (replicated cells only)
}

// ChaosFleetResult aggregates the sweep.
type ChaosFleetResult struct {
	Scale Scale
	Rows  []ChaosFleetRow
}

// Render prints one aggregate block per configuration plus the per-link
// table of the most impaired configuration.
func (r *ChaosFleetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet chaos sweep: localization vs management-plane faults (%s) ==\n", r.Scale)
	byCfg := make(map[string][]ChaosFleetRow)
	var order []string
	for _, row := range r.Rows {
		if _, ok := byCfg[row.Config]; !ok {
			order = append(order, row.Config)
		}
		byCfg[row.Config] = append(byCfg[row.Config], row)
	}
	headers := []string{"Config", "Exact", "Dup verdicts", "TTL median", "TTL max", "Mgmt lost", "Holes", "Failovers"}
	var rows [][]string
	for _, cfg := range order {
		trials := byCfg[cfg]
		exact, dups := 0, 0
		var lost, failovers uint64
		holes := 0
		var ttls []sim.Time
		for _, t := range trials {
			if t.Exact {
				exact++
				ttls = append(ttls, t.TTL)
			}
			if t.Verdicts > 1 {
				dups++
			}
			lost += t.MgmtLost
			holes += t.MgmtHoles
			failovers += t.Failovers
		}
		med, max := sim.Time(0), sim.Time(0)
		if len(ttls) > 0 {
			sort.Slice(ttls, func(i, j int) bool { return ttls[i] < ttls[j] })
			med, max = ttls[len(ttls)/2], ttls[len(ttls)-1]
		}
		rows = append(rows, []string{cfg,
			fmt.Sprintf("%d/%d", exact, len(trials)),
			fmt.Sprintf("%d", dups), med.String(), max.String(),
			fmt.Sprintf("%d", lost), fmt.Sprintf("%d", holes),
			fmt.Sprintf("%d", failovers)})
	}
	b.WriteString(stats.Table(headers, rows))
	// Per-link detail for the most impaired configuration.
	worst := order[len(order)-1]
	fmt.Fprintf(&b, "-- per-link detail, %s --\n", worst)
	dheaders := []string{"Gray link", "Localized", "TTL", "Rerouted", "Stale", "Handbacks"}
	var drows [][]string
	for _, t := range byCfg[worst] {
		loc := "MISS"
		if t.Exact {
			loc = "exact"
		}
		rr := "n/a"
		if t.Protected {
			rr = fmt.Sprintf("%v", t.Rerouted)
		}
		drows = append(drows, []string{t.Link, loc, t.TTL.String(), rr,
			fmt.Sprintf("%d", t.Stale), fmt.Sprintf("%d", t.Handbacks)})
	}
	b.WriteString(stats.Table(dheaders, drows))
	return b.String()
}

// FleetChaos runs the sweep: every configuration over the Quick 3-link
// subsample or, at Full scale, over all 28 directed links of Abilene.
func FleetChaos(scale Scale, seed int64) *ChaosFleetResult {
	var targets []topo.DirectedLink
	if scale == Full {
		spec := topo.Abilene()
		for _, l := range spec.Links {
			targets = append(targets,
				topo.DirectedLink{From: l.A, To: l.B},
				topo.DirectedLink{From: l.B, To: l.A})
		}
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].From != targets[j].From {
				return targets[i].From < targets[j].From
			}
			return targets[i].To < targets[j].To
		})
	} else {
		targets = quickFleetLinks
	}
	res := &ChaosFleetResult{Scale: scale}
	duration := pick(scale, 3*sim.Second, 5*sim.Second)
	for ci, cfg := range fleetChaosConfigs() {
		for i, dl := range targets {
			res.Rows = append(res.Rows,
				fleetChaosTrial(seed+int64(ci*1000+i), dl, duration, cfg))
		}
	}
	return res
}

// fleetChaosTrial is one gray link under one impairment configuration.
func fleetChaosTrial(seed int64, dl topo.DirectedLink, duration sim.Time, cfg ChaosFleetConfig) ChaosFleetRow {
	s := sim.New(seed)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: dl.From},
		{Name: "hdst", Attach: dl.To},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(fmt.Sprintf("exp: fleet chaos topology: %v", err))
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		panic(err)
	}
	f, err := fleet.New(s, n, fleet.Config{
		Fancy: fancy.Config{
			HighPriority: []netsim.EntryID{entry},
			Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     3,
		},
		Mgmt:     &mgmt.Config{Loss: cfg.Loss, Duplicate: cfg.Loss / 2, Jitter: sim.Millisecond},
		Replicas: cfg.Replicas,
	})
	if err != nil {
		panic(err)
	}

	row := ChaosFleetRow{Config: cfg.Name, Link: dl.String()}
	if nb, ok := loopFreeBackup(n, dl); ok {
		row.Protected = true
		route := n.Switches[dl.From].Routes.InsertEntry(entry, netsim.Route{
			Port:   n.PortOf[dl.From][dl.To],
			Backup: n.PortOf[dl.From][nb],
		})
		if err := f.Protect(dl.From, entry, route); err != nil {
			panic(err)
		}
	}

	traffic.NewUDPSource(s, n.Hosts["hsrc"], netsim.FlowID(entry), entry,
		netsim.EntryAddr(entry, 1), 2e6, 1000, duration).Start()
	const failAt = sim.Second
	n.Direction(dl.From, dl.To).SetFailure(netsim.FailEntries(seed+1, failAt, 1.0, entry))
	if cfg.Crash {
		if cfg.Replicas > 1 {
			// Kill the LEADER spanning the first evidence window; recovery
			// is a phi-driven election and a replicated-log restore, not a
			// scheduled restart. The dead replica rejoins as a follower.
			killed := -1
			s.ScheduleAt(failAt+100*sim.Millisecond, func() { killed = f.KillLeader() })
			s.ScheduleAt(failAt+400*sim.Millisecond, func() { f.RestartReplica(killed) })
		} else {
			// Crash spanning the first evidence window; restart 300 ms later.
			s.ScheduleAt(failAt+100*sim.Millisecond, f.CrashCorrelator)
			s.ScheduleAt(failAt+400*sim.Millisecond, f.RestartCorrelator)
		}
	}
	s.Run(duration)

	loc := f.Localized()
	row.Exact = len(loc) == 1 && loc[0] == dl.String()
	if row.Exact {
		row.TTL = f.LocalizedAt(dl.String()) - failAt
	}
	for _, ev := range f.Events {
		if ev.Kind == fleet.EventLocalized && ev.Link == dl.String() {
			row.Verdicts++
		}
	}
	if row.Protected {
		row.Rerouted = f.Rerouted(dl.From, entry)
	}
	snap := f.Snapshot()
	row.Stale = snap.Corr.StaleEvents
	row.Handbacks = snap.Corr.Handbacks
	row.MgmtLost = snap.MgmtNet.Lost
	row.MgmtHoles = snap.MgmtHoles
	row.Duplicates = snap.MgmtDuplicates
	row.Failovers = snap.Corr.Failovers
	return row
}
