package exp

import "testing"

// TestFleetWorkersByteIdentical pins the trial-level parallel sweep to the
// sequential one: every worker count must render the exact same table —
// same localizations, same TTLs, same suppression counts — because each
// trial owns its simulator and its result slot, and seeding depends only on
// the trial index.
func TestFleetWorkersByteIdentical(t *testing.T) {
	const seed = 20220822
	want := FleetAbileneWorkers(Quick, seed, false, 1).Render()
	for _, workers := range []int{2, 4, 7} {
		got := FleetAbileneWorkers(Quick, seed, false, workers).Render()
		if got != want {
			t.Errorf("workers=%d diverged from sequential:\n--- sequential\n%s--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
	// The verified-gate variant must hold the same property.
	wantV := FleetAbileneWorkers(Quick, seed, true, 1).Render()
	if got := FleetAbileneWorkers(Quick, seed, true, 4).Render(); got != wantV {
		t.Error("verified sweep diverged between 1 and 4 workers")
	}
}

// TestSimCoreBenchCells checks the cells are well-formed and that the
// embedded sequential-vs-parallel cross-check passes (it panics on
// divergence).
func TestSimCoreBenchCells(t *testing.T) {
	var tick float64
	now := func() float64 { tick += 0.001; return tick }
	cells := SimCoreBenchCells(20220822, now)
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Experiment != "sim-core" || c.WallSeconds <= 0 {
			t.Errorf("degenerate cell: %+v", c)
		}
		if c.Values["wallclock"] != 1 {
			t.Errorf("%s: missing wallclock marker", c.Cell)
		}
		if c.Values["exact"] != c.Values["trials"] {
			t.Errorf("%s: localization regression: %+v", c.Cell, c.Values)
		}
	}
}
