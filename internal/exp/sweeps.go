package exp

// Two sensitivity sweeps the evaluation text reports without a figure:
//
//   - §5.1.1: "we first evaluate the impact of the exchange frequency of
//     counters ... accuracy results are very similar whenever counters'
//     exchange frequency ranges between 50 and 100 ms. This also means the
//     exchange frequency just affects overhead and detection speed."
//
//   - §5: "We also experiment with lower link delays ... for 1 ms links,
//     detection speed doubles for dedicated counters, and increases by
//     ≈15 % for hash-based trees."

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
)

// FreqRow is one exchange-interval setting's outcome.
type FreqRow struct {
	Interval    sim.Time
	TPR         float64
	MeanDetSecs float64
	CtlBytes    uint64 // control overhead during the run
}

// FreqResult is the exchange-frequency sweep.
type FreqResult struct{ Rows []FreqRow }

// Render prints the sweep.
func (r *FreqResult) Render() string {
	var b strings.Builder
	b.WriteString("== §5.1.1 sweep: counters' exchange frequency (dedicated) ==\n")
	headers := []string{"Interval", "TPR", "MeanDet", "CtlBytes"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Interval.String(),
			fmt.Sprintf("%.2f", row.TPR),
			fmt.Sprintf("%.3fs", row.MeanDetSecs),
			fmt.Sprintf("%d", row.CtlBytes),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// ExchangeFrequencySweep measures TPR, detection speed and control
// overhead across exchange intervals on a fixed 50 % loss workload.
func ExchangeFrequencySweep(scale Scale, seed int64) *FreqResult {
	intervals := []sim.Time{25 * sim.Millisecond, 50 * sim.Millisecond,
		100 * sim.Millisecond, 200 * sim.Millisecond}
	reps := pick(scale, 3, 10)
	duration := pick(scale, 8*sim.Second, 30*sim.Second)
	const entry = netsim.EntryID(42)

	res := &FreqResult{}
	for _, interval := range intervals {
		var acc stats.Acc
		acc.Cap = duration.Seconds()
		var ctl uint64
		for rep := 0; rep < reps; rep++ {
			cfg := fancy.Config{
				HighPriority:     []netsim.EntryID{entry},
				Tree:             tree.Params{Width: 64, Depth: 3, Split: 2, Pipelined: true},
				ExchangeInterval: interval,
			}
			s := seed + int64(rep)*7919
			sc := &Scenario{
				Seed: s, Cfg: cfg, Delay: 10 * sim.Millisecond,
				Duration: duration, FailAt: sim.Time(1+s%1000) * sim.Millisecond,
				LossRate: 0.5, Failed: []netsim.EntryID{entry},
				Loads:            []EntryLoad{{Entry: entry, RateBps: 1e6, FlowsPerSec: 50}},
				StopWhenDetected: true,
			}
			out := sc.Run()
			acc.Add(out.PerEntry[entry])
			ctl += out.CtlBytes
		}
		res.Rows = append(res.Rows, FreqRow{
			Interval:    interval,
			TPR:         acc.TPR(),
			MeanDetSecs: acc.MeanLatency(),
			CtlBytes:    ctl / uint64(reps),
		})
	}
	return res
}

// DelayRow is one link-delay setting's outcome.
type DelayRow struct {
	Delay         sim.Time
	DedicatedSecs float64
	TreeSecs      float64
}

// DelayResult is the link-delay sweep.
type DelayResult struct{ Rows []DelayRow }

// Render prints the sweep.
func (r *DelayResult) Render() string {
	var b strings.Builder
	b.WriteString("== §5 sweep: inter-switch link delay vs detection speed ==\n")
	headers := []string{"Delay", "Dedicated", "Hash-tree"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Delay.String(),
			fmt.Sprintf("%.3fs", row.DedicatedSecs),
			fmt.Sprintf("%.3fs", row.TreeSecs),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// DelaySweep measures mean detection time for a blackholed dedicated entry
// and a blackholed tree entry at 1 ms and 10 ms link delays.
func DelaySweep(scale Scale, seed int64) *DelayResult {
	delays := []sim.Time{1 * sim.Millisecond, 10 * sim.Millisecond}
	reps := pick(scale, 16, 40)
	duration := pick(scale, 8*sim.Second, 30*sim.Second)

	res := &DelayResult{}
	for _, delay := range delays {
		row := DelayRow{Delay: delay}
		for _, dedicated := range []bool{true, false} {
			entry := netsim.EntryID(42)
			hp := []netsim.EntryID{entry}
			if !dedicated {
				hp = []netsim.EntryID{1}
			}
			var acc stats.Acc
			acc.Cap = duration.Seconds()
			// Failure times must sample the session cycle uniformly or the
			// phase-dependent part of the latency is aliased away.
			rng := simRand(seed + int64(delay))
			for rep := 0; rep < reps; rep++ {
				s := seed + int64(rep)*104729
				sc := &Scenario{
					Seed: s, Cfg: fancy.Config{
						HighPriority: hp,
						Tree:         tree.Params{Width: 64, Depth: 3, Split: 2, Pipelined: true},
					},
					Delay: delay, Duration: duration,
					FailAt:   sim.Time(1000+rng.Intn(2000)) * sim.Millisecond,
					LossRate: 1.0, Failed: []netsim.EntryID{entry},
					Loads:            []EntryLoad{{Entry: entry, RateBps: 2e6, FlowsPerSec: 50}},
					StopWhenDetected: true,
				}
				out := sc.Run()
				acc.Add(out.PerEntry[entry])
			}
			if dedicated {
				row.DedicatedSecs = acc.MeanLatency()
			} else {
				row.TreeSecs = acc.MeanLatency()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
