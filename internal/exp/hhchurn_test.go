package exp

import "testing"

// TestHHChurn is the sweep's acceptance gate: dynamic allocation must
// detect newly-hot failing prefixes measurably faster than the static
// top-k baseline, and the sweep must be seed-deterministic.
func TestHHChurn(t *testing.T) {
	const seed = 20220822
	r := HHChurn(Quick, seed)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if !row.DynamicDetected {
			t.Errorf("epoch %d entry %d undetected under dynamic allocation", row.Epoch, row.Entry)
		}
	}
	if r.DynamicMedian >= r.StaticMedian {
		t.Fatalf("dynamic median %v not below static median %v", r.DynamicMedian, r.StaticMedian)
	}
	if r.HH.Promotions == 0 {
		t.Fatalf("allocation loop never promoted: %+v", r.HH)
	}

	if a, b := HHChurn(Quick, seed).Render(), r.Render(); a != b {
		t.Fatalf("same seed, different renders:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b, a)
	}

	cells := r.BenchCells()
	if len(cells) != 2 {
		t.Fatalf("BenchCells = %d cells, want static + dynamic", len(cells))
	}
	for _, c := range cells {
		if c.TTLMedianMs <= 0 {
			t.Errorf("cell %s has no TTL median", c.Cell)
		}
	}
}
