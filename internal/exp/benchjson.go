package exp

// Machine-readable benchmark cells: the CI artifact format. Each sweep
// contributes one cell per configuration it compares, carrying the TTL
// medians (simulated time) plus the wall-clock the caller measured around
// the run. encoding/json sorts map keys, so the artifact is byte-stable
// for a given seed.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"fancy/internal/sim"
)

// BenchCell is one row of the benchmark artifact.
type BenchCell struct {
	Experiment  string             `json:"experiment"`
	Cell        string             `json:"cell"`
	Scale       string             `json:"scale"`
	Seed        int64              `json:"seed"`
	WallSeconds float64            `json:"wall_seconds"`
	TTLMedianMs float64            `json:"ttl_median_ms,omitempty"`
	TTLMaxMs    float64            `json:"ttl_max_ms,omitempty"`
	Values      map[string]float64 `json:"values,omitempty"`
}

// WriteBenchJSON writes cells as an indented JSON array, sorted by
// (experiment, cell) for stable diffs.
func WriteBenchJSON(path string, cells []BenchCell) error {
	sorted := append([]BenchCell(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Experiment != sorted[j].Experiment {
			return sorted[i].Experiment < sorted[j].Experiment
		}
		return sorted[i].Cell < sorted[j].Cell
	})
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return fmt.Errorf("exp: marshal bench cells: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ttlMs(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }

// BenchCells summarizes the fleet localization sweep: one cell with the
// TTL distribution over the exactly-localized trials.
func (r *FleetResult) BenchCells(seed int64) []BenchCell {
	var ttls []sim.Time
	exact := 0
	var maxTTL sim.Time
	for _, row := range r.Rows {
		if row.Exact {
			exact++
			ttls = append(ttls, row.TTL)
			if row.TTL > maxTTL {
				maxTTL = row.TTL
			}
		}
	}
	experiment := "fleet"
	if r.Verified {
		experiment = "fleet-verified"
	}
	return []BenchCell{{
		Experiment:  experiment,
		Cell:        "localization",
		Scale:       r.Scale.String(),
		Seed:        seed,
		TTLMedianMs: ttlMs(ttlMedian(ttls)),
		TTLMaxMs:    ttlMs(maxTTL),
		Values: map[string]float64{
			"exact":  float64(exact),
			"trials": float64(len(r.Rows)),
		},
	}}
}

// BenchCells summarizes the churn sweep: one cell per allocation mode,
// medians over the newly-hot prefixes.
func (r *HHChurnResult) BenchCells() []BenchCell {
	maxOver := func(dyn bool) sim.Time {
		var m sim.Time
		for _, row := range r.Rows {
			if !row.NewlyHot {
				continue
			}
			ttl := row.StaticTTL
			if dyn {
				ttl = row.DynamicTTL
			}
			if ttl > m {
				m = ttl
			}
		}
		return m
	}
	return []BenchCell{
		{
			Experiment:  "hh-churn",
			Cell:        "static",
			Scale:       r.Scale.String(),
			Seed:        r.Seed,
			TTLMedianMs: ttlMs(r.StaticMedian),
			TTLMaxMs:    ttlMs(maxOver(false)),
			Values:      map[string]float64{"slots": float64(r.Slots)},
		},
		{
			Experiment:  "hh-churn",
			Cell:        "dynamic",
			Scale:       r.Scale.String(),
			Seed:        r.Seed,
			TTLMedianMs: ttlMs(r.DynamicMedian),
			TTLMaxMs:    ttlMs(maxOver(true)),
			Values: map[string]float64{
				"slots":            float64(r.Slots),
				"promotions":       float64(r.HH.Promotions),
				"demotions":        float64(r.HH.Demotions),
				"flaps_suppressed": float64(r.HH.FlapsSuppressed),
				"deferred":         float64(r.HH.Deferred),
			},
		},
	}
}
