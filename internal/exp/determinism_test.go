package exp

// Dynamic determinism regression: the static fancy-vet suite bans the
// constructs that usually break seed-determinism (wall clock, global rand,
// ordered map iteration), but no static analysis sees everything. This test
// backstops it at runtime: the same fleet-chaos scenario run twice from the
// same seed must produce byte-identical fleet event logs, correlator
// verdicts and health snapshots.

import (
	"fmt"
	"strings"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/hh"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
	"fancy/internal/traffic"
)

// chaosTranscript runs one fleet-chaos trial — gray link on a degraded
// management plane with a mid-run correlator crash, the most event-dense
// configuration we have — and serializes everything observable: the full
// event log, the verdict set with timestamps, and the health snapshot.
// With replicas > 1 the crash kills the LEADER of a consensus group and
// recovery goes through a phi-driven election and replicated-log restore.
// With verified set the correlator runs the verified-commit gate and the
// gray switch carries a protected backup, so the transcript includes gate
// decisions (commit, rejection or repair) and the verify snapshot counters.
func chaosTranscript(t *testing.T, seed int64, replicas int, hhSlots int, verified bool) string {
	t.Helper()
	dl := topo.DirectedLink{From: "kansascity", To: "denver"}
	duration := 3 * sim.Second

	s := sim.New(seed)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "hsrc", Attach: dl.From},
		{Name: "hdst", Attach: dl.To},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "hdst"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleet.Config{
		Fancy: fancy.Config{
			HighPriority: []netsim.EntryID{entry},
			Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     3,
		},
		Mgmt:     &mgmt.Config{Loss: 0.2, Duplicate: 0.1, Jitter: sim.Millisecond},
		Replicas: replicas,
	}
	if hhSlots > 0 {
		cfg.HH = &fleet.HHFleetConfig{
			Sketch:       hh.Params{Stages: 3, Width: 32, Seed: 5},
			DynamicSlots: hhSlots,
		}
	}
	if verified {
		cfg.Verify = &fleet.VerifyConfig{}
	}
	f, err := fleet.New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if verified {
		route := n.Switches[dl.From].Routes.InsertEntry(entry, netsim.Route{
			Port:   n.PortOf[dl.From][dl.To],
			Backup: n.PortOf[dl.From]["houston"],
		})
		if err := f.Protect(dl.From, entry, route); err != nil {
			t.Fatal(err)
		}
	}

	traffic.NewUDPSource(s, n.Hosts["hsrc"], netsim.FlowID(entry), entry,
		netsim.EntryAddr(entry, 1), 2e6, 1000, duration).Start()
	const failAt = sim.Second
	n.Direction(dl.From, dl.To).SetFailure(netsim.FailEntries(seed+1, failAt, 1.0, entry))
	s.ScheduleAt(failAt+100*sim.Millisecond, f.CrashCorrelator)
	s.ScheduleAt(failAt+400*sim.Millisecond, f.RestartCorrelator)
	s.Run(duration)

	var b strings.Builder
	for _, ev := range f.Events {
		fmt.Fprintf(&b, "%s\n", ev)
	}
	for _, key := range f.Localized() {
		fmt.Fprintf(&b, "verdict %s at %v\n", key, f.LocalizedAt(key))
	}
	fmt.Fprintf(&b, "snapshot %+v\n", f.Snapshot())
	return b.String()
}

// TestSameSeedSameTranscript is the determinism contract: two runs from one
// seed are byte-identical; a different seed must still localize the same
// gray link (the verdict is seed-independent even though the transcript is
// not). Both the single-instance and the replicated correlator must hold
// it — elections, log replication and redirects included.
func TestSameSeedSameTranscript(t *testing.T) {
	const seed = 1234
	for _, tc := range []struct {
		name     string
		replicas int
		hhSlots  int
		verified bool
	}{
		{"single-instance", 0, 0, false},
		{"replica3", 3, 0, false},
		{"hh-alloc", 0, 4, false},
		{"verify", 0, 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := chaosTranscript(t, seed, tc.replicas, tc.hhSlots, tc.verified)
			b := chaosTranscript(t, seed, tc.replicas, tc.hhSlots, tc.verified)
			if a != b {
				t.Fatalf("same seed produced different transcripts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
			if !strings.Contains(a, "verdict kansascity->denver") {
				t.Fatalf("transcript has no verdict for the injected link:\n%s", a)
			}
			c := chaosTranscript(t, seed+1, tc.replicas, tc.hhSlots, tc.verified)
			if !strings.Contains(c, "verdict kansascity->denver") {
				t.Fatalf("other-seed transcript has no verdict for the injected link:\n%s", c)
			}
		})
	}
}
