package exp

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateCell(experiment, cell string, ttl, wall float64, vals map[string]float64) BenchCell {
	return BenchCell{Experiment: experiment, Cell: cell, Scale: "quick",
		TTLMedianMs: ttl, WallSeconds: wall, Values: vals}
}

func TestGateBenchPassesIdentical(t *testing.T) {
	cells := []BenchCell{
		gateCell("fleet", "localization", 156, 1.0, nil),
		gateCell("hh-churn", "dynamic", 60, 0.5, nil),
	}
	if f := GateBench(cells, cells, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("identical runs flagged: %v", f)
	}
}

func TestGateBenchTTLRegression(t *testing.T) {
	base := []BenchCell{gateCell("fleet", "localization", 100, 1.0, nil)}
	cur := []BenchCell{gateCell("fleet", "localization", 130, 1.0, nil)}
	f := GateBench(base, cur, 0.25, 0.25)
	if len(f) != 1 || !strings.Contains(f[0], "TTL median") {
		t.Fatalf("30%% TTL growth not flagged at 25%% tolerance: %v", f)
	}
	if f := GateBench(base, []BenchCell{gateCell("fleet", "localization", 120, 1.0, nil)}, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("20%% TTL growth flagged at 25%% tolerance: %v", f)
	}
}

func TestGateBenchMissingCell(t *testing.T) {
	// Sub-floor wall times keep the share check out of the picture.
	base := []BenchCell{
		gateCell("fleet", "localization", 100, 0.01, nil),
		gateCell("verified-reroute", "verified", 300, 0.01, nil),
	}
	cur := base[:1]
	f := GateBench(base, cur, 0.25, 0.25)
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("dropped cell not flagged: %v", f)
	}
}

func TestGateBenchNewCellPasses(t *testing.T) {
	base := []BenchCell{gateCell("fleet", "localization", 100, 1.0, nil)}
	cur := append([]BenchCell{gateCell("new-exp", "fresh", 10, 1.0, nil)}, base...)
	if f := GateBench(base, cur, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("new cell flagged: %v", f)
	}
}

// Wall time is compared as share-of-total so a uniformly slower machine
// never trips the gate; one cell ballooning relative to the rest does.
func TestGateBenchWallShare(t *testing.T) {
	base := []BenchCell{
		gateCell("a", "x", 10, 1.0, nil),
		gateCell("b", "y", 10, 1.0, nil),
	}
	slowMachine := []BenchCell{
		gateCell("a", "x", 10, 3.0, nil),
		gateCell("b", "y", 10, 3.0, nil),
	}
	if f := GateBench(base, slowMachine, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("uniform slowdown flagged: %v", f)
	}
	oneBalloon := []BenchCell{
		gateCell("a", "x", 10, 5.0, nil),
		gateCell("b", "y", 10, 1.0, nil),
	}
	f := GateBench(base, oneBalloon, 0.25, 0.25)
	if len(f) != 1 || !strings.Contains(f[0], "wall share") {
		t.Fatalf("relative balloon not flagged: %v", f)
	}
	// Cells under the floor are scheduling noise, never flagged.
	tiny := []BenchCell{gateCell("a", "x", 10, 0.001, nil)}
	tinySlow := []BenchCell{gateCell("a", "x", 10, 0.04, nil)}
	if f := GateBench(tiny, tinySlow, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("sub-floor cell flagged: %v", f)
	}
}

// Wallclock-marked cells (host latency measurements) skip the ratio check —
// they are host-dependent — but are held to the absolute paper budget.
func TestGateBenchWallclockCells(t *testing.T) {
	wc := map[string]float64{"wallclock": 1}
	base := []BenchCell{gateCell("verified-reroute", "check-latency", 0.001, 0.01, wc)}
	noisy := []BenchCell{gateCell("verified-reroute", "check-latency", 0.05, 0.01, wc)}
	if f := GateBench(base, noisy, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("host-dependent latency jitter flagged: %v", f)
	}
	blown := []BenchCell{gateCell("verified-reroute", "check-latency", 200, 0.01, wc)}
	f := GateBench(base, blown, 0.25, 0.25)
	if len(f) != 1 || !strings.Contains(f[0], "budget") {
		t.Fatalf("budget-blowing latency not flagged: %v", f)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	cells := []BenchCell{
		gateCell("fleet", "localization", 156, 1.0, map[string]float64{"exact": 3}),
		gateCell("verified-reroute", "check-latency", 0.001, 0.01, map[string]float64{"wallclock": 1}),
	}
	path := filepath.Join(t.TempDir(), "cells.json")
	if err := WriteBenchJSON(path, cells); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("round trip lost cells: %d != %d", len(got), len(cells))
	}
	if f := GateBench(cells, got, 0.25, 0.25); len(f) != 0 {
		t.Fatalf("round-tripped cells flagged: %v", f)
	}
}
