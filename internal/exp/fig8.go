package exp

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
)

// Fig8Result reports, for each zooming speed and loss rate, the smallest
// entry (by traffic rank in the grid) for which the hash-based tree reaches
// a TPR of at least 95% — Figure 8's y axis ("Entry Size Rank": lower ranks
// correspond to smaller traffic).
type Fig8Result struct {
	Zooming []sim.Time
	Loss    []float64
	// MinRank[z][l] is the rank of the smallest detectable entry: rank 1
	// is the grid's smallest entry (4 Kbps), rank len(grid) the largest.
	// 0 means no grid row reached the TPR target.
	MinRank [][]int
	Grid    []GridRow
}

// Render prints the rank table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 8: minimum entry size for TPR ≥ 95%% ==\n")
	headers := []string{"Zooming"}
	for _, l := range r.Loss {
		headers = append(headers, LossLabel(l))
	}
	var rows [][]string
	for zi, z := range r.Zooming {
		row := []string{z.String()}
		for li := range r.Loss {
			rank := r.MinRank[zi][li]
			if rank == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%d (%s)", rank, r.Grid[len(r.Grid)-rank].Label))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// Figure8 sweeps the tree's zooming speed (counting session duration) and
// measures the minimum entry size reaching 95% TPR per loss rate (§5.1.2).
// Smaller minimum entries are better; the paper's takeaway is that accuracy
// is insensitive to zooming speeds between 50 and 200 ms.
func Figure8(scale Scale, seed int64) *Fig8Result {
	zooms := []sim.Time{10 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond, 200 * sim.Millisecond}
	losses := pick(scale, []float64{1.0, 0.10, 0.01}, []float64{1.0, 0.5, 0.1, 0.01, 0.001})
	rows := pick(scale, QuickGrid, PaperGrid)
	reps := pick(scale, 2, 10)
	duration := pick(scale, 12*sim.Second, 30*sim.Second)
	const entry = netsim.EntryID(1000)

	res := &Fig8Result{Zooming: zooms, Loss: losses, Grid: rows}
	for zi, zoom := range zooms {
		ranks := make([]int, len(losses))
		for li, loss := range losses {
			// Scan from the smallest entry (last grid row) upward; the
			// first row reaching the TPR target gives the minimum size.
			for ri := len(rows) - 1; ri >= 0; ri-- {
				row := rows[ri]
				var acc stats.Acc
				for rep := 0; rep < reps; rep++ {
					cfg := fancy.Config{
						HighPriority:    []netsim.EntryID{1},
						Tree:            tree.Params{Width: 190, Depth: 3, Split: 2, Pipelined: true},
						TreeSeed:        13,
						ZoomingInterval: zoom,
					}
					s := seed + int64(zi)*31 + int64(li)*7919 + int64(rep)*104729 + int64(ri)
					sc := &Scenario{
						Seed: s, Cfg: cfg, Delay: 10 * sim.Millisecond,
						Duration: duration, FailAt: sim.Time(1+s%1500) * sim.Millisecond,
						LossRate: loss, Failed: []netsim.EntryID{entry},
						Loads:            []EntryLoad{{Entry: entry, RateBps: row.RateBps, FlowsPerSec: row.FlowsPerSec}},
						StopWhenDetected: true,
					}
					out := sc.Run()
					acc.Add(out.PerEntry[entry])
				}
				if acc.TPR() >= 0.95 {
					ranks[li] = len(rows) - ri
					break
				}
			}
		}
		res.MinRank = append(res.MinRank, ranks)
	}
	return res
}
