package exp

// Analytical reproductions: Table 2 (LossRadar infeasibility), Figure 2
// (NetSeer memory vs link latency), Table 4 (Tofino resources), Table 5
// (trace characteristics) and the §5.3 overhead analysis.

import (
	"fmt"
	"strings"

	"fancy/internal/baseline/lossradar"
	"fancy/internal/baseline/netseer"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/tofino"
	"fancy/internal/traffic"
	"fancy/internal/wire"
)

// Table2 reproduces the LossRadar requirements table of §2.3.
func Table2() string {
	losses := []float64{0.001, 0.002, 0.003, 0.01}
	var b strings.Builder
	b.WriteString("== Table 2: LossRadar requirements vs switch capabilities ==\n")
	headers := []string{"Switch", "Metric"}
	for _, l := range losses {
		headers = append(headers, LossLabel(l))
	}
	var rows [][]string
	for _, sw := range []struct {
		name string
		spec lossradar.SwitchSpec
	}{
		{"100Gbps/32p", lossradar.Switch100Gx32},
		{"400Gbps/64p", lossradar.Switch400Gx64},
	} {
		mem := []string{sw.name, "memory size"}
		read := []string{"", "read speedup"}
		for _, l := range losses {
			r := lossradar.Analyze(sw.spec, l)
			mem = append(mem, fmt.Sprintf("x%.2f", r.MemoryRatio))
			read = append(read, fmt.Sprintf("x%.1f", r.ReadRatio))
		}
		rows = append(rows, mem, read)
	}
	b.WriteString(stats.Table(headers, rows))
	b.WriteString("(ratios > 1 exceed the switch's per-stage memory or register read speed)\n")
	return b.String()
}

// Figure2 reproduces NetSeer's required memory per switch as a function of
// inter-switch link latency.
func Figure2() string {
	latencies := []float64{100e-6, 1e-3, 10e-3, 100e-3}
	rates := []float64{100e9, 200e9, 400e9}
	var b strings.Builder
	b.WriteString("== Figure 2: NetSeer required memory per switch (64 ports) ==\n")
	headers := []string{"Latency"}
	for _, r := range rates {
		headers = append(headers, fmt.Sprintf("%dGbps", int(r/1e9)))
	}
	var rows [][]string
	for _, lat := range latencies {
		row := []string{fmtLatency(lat)}
		for _, rate := range rates {
			req := netseer.Analyze(64, rate, lat)
			cell := fmt.Sprintf("%.1fMB", req.MemoryBytes/1e6)
			if !req.Operational {
				cell += "!"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	b.WriteString(stats.Table(headers, rows))
	fmt.Fprintf(&b, "(! = exceeds the ≈%.0f MB available to in-switch apps; ISP links sit at ≥1 ms)\n",
		netseer.AvailableMemBytes/1e6)
	return b.String()
}

// Table4 reproduces the hardware resource usage comparison.
func Table4() string {
	chip := tofino.Tofino32()
	d := tofino.PaperConfig()
	dhh := d
	dhh.HHStages, dhh.HHWidth = 3, 64
	ded := chip.Utilization(chip.DedicatedComponent(d))
	full := chip.Utilization(chip.FancyResources(d, false))
	rer := chip.Utilization(chip.FancyResources(d, true))
	hhu := chip.Utilization(chip.FancyResources(dhh, true))
	ref := tofino.SwitchP4Reference()

	var b strings.Builder
	b.WriteString("== Table 4: hardware resource usage on a 32-port Tofino ==\n")
	headers := []string{"Resource", "Dedicated", "Full FANcY", "FANcY+Reroute", "+HH stage", "switch.p4"}
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
	rows := [][]string{
		{"SRAM", pct(ded.SRAM), pct(full.SRAM), pct(rer.SRAM), pct(hhu.SRAM), pct(ref.SRAM)},
		{"Stateful ALU", pct(ded.SALU), pct(full.SALU), pct(rer.SALU), pct(hhu.SALU), pct(ref.SALU)},
		{"VLIW Actions", pct(ded.VLIW), pct(full.VLIW), pct(rer.VLIW), pct(hhu.VLIW), pct(ref.VLIW)},
		{"TCAM", pct(ded.TCAM), pct(full.TCAM), pct(rer.TCAM), pct(hhu.TCAM), pct(ref.TCAM)},
		{"Hash bits", pct(ded.HashBits), pct(full.HashBits), pct(rer.HashBits), pct(hhu.HashBits), pct(ref.HashBits)},
		{"Ternary Xbar", pct(ded.TernaryXbar), pct(full.TernaryXbar), pct(rer.TernaryXbar), pct(hhu.TernaryXbar), pct(ref.TernaryXbar)},
		{"Exact Xbar", pct(ded.ExactXbar), pct(full.ExactXbar), pct(rer.ExactXbar), pct(hhu.ExactXbar), pct(ref.ExactXbar)},
	}
	b.WriteString(stats.Table(headers, rows))
	fmt.Fprintf(&b, "register memory: %.1f KB (%.1f KB with rerouting, %.1f KB with the %d-stage heavy-hitter stage)\n",
		float64(d.TotalBytes(false))/1024, float64(d.TotalBytes(true))/1024,
		float64(dhh.TotalBytes(true))/1024, dhh.HHStages)
	return b.String()
}

// Table5 synthesizes the four evaluation traces and prints their aggregate
// statistics next to the published targets.
func Table5(scale Scale) string {
	factor := pick(scale, 1000.0, 100.0)
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 5: synthesized CAIDA-like traces (scaled 1/%g) ==\n", factor)
	headers := []string{"Trace", "BitRate", "target", "PktRate", "target", "FlowRate", "target", "ActivePfx"}
	var rows [][]string
	for _, cfg := range traffic.StandardTraces(factor) {
		tr := traffic.Synthesize(cfg)
		st := tr.Stats()
		rows = append(rows, []string{
			cfg.Name,
			fmt.Sprintf("%.1fMbps", st.BitRateBps/1e6),
			fmt.Sprintf("%.1fMbps", cfg.BitRateBps/factor/1e6),
			fmt.Sprintf("%.1fKpps", st.PacketRate/1e3),
			fmt.Sprintf("%.1fKpps", cfg.PacketRate/factor/1e3),
			fmt.Sprintf("%.0ffps", st.FlowRate),
			fmt.Sprintf("%.0ffps", cfg.FlowRate/factor),
			fmt.Sprintf("%d", st.ActivePfx),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	return b.String()
}

// OverheadResult is the §5.3 traffic-overhead analysis.
type OverheadResult struct {
	DedicatedCtlBps   float64
	DedicatedFraction float64 // of a 100 Gbps link
	TreeCtlBps        float64
	TreeFraction      float64
	TagFraction       float64 // per 1500 B packet
	TreeReportBytes   int
}

// Overhead computes FANcY's control and tagging overhead analytically from
// the wire formats, for the paper's reference configuration: 500 dedicated
// counters exchanged every 50 ms and a width-190 pipelined tree zooming
// every 200 ms on a 10 ms-delay 100 Gbps link.
func Overhead() *OverheadResult {
	const linkBps = 100e9
	const dedicated = 500
	const exchange = 0.050
	const zooming = 0.200

	// Five minimum-size control frames per session per dedicated entry:
	// Start, StartACK, Stop, Report and the first-of-next-session Start
	// overlap the paper counts.
	perSession := 5 * 64.0
	dedBps := perSession * 8 * dedicated / exchange

	// Tree session: four small messages plus the Report carrying
	// (1 + nodes-1) × width counters in the pipelined layout.
	report := &wire.Message{Header: wire.Header{Type: wire.MsgReport, Kind: wire.KindTree}}
	nodes := 7 // width-190, depth-3, split-2 pipelined tree
	report.Counters = make([]uint64, nodes*190)
	treeBytes := 4*64 + report.WireSize()
	treeBps := float64(treeBytes) * 8 / zooming

	return &OverheadResult{
		DedicatedCtlBps:   dedBps,
		DedicatedFraction: dedBps / linkBps,
		TreeCtlBps:        treeBps,
		TreeFraction:      treeBps / linkBps,
		TagFraction:       float64(wire.TagSize) / 1500,
		TreeReportBytes:   report.WireSize(),
	}
}

// Render prints the overhead analysis.
func (o *OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("== §5.3 overhead analysis (100 Gbps link) ==\n")
	fmt.Fprintf(&b, "dedicated counters control: %.3f Mbps (%.5f%% of link)\n",
		o.DedicatedCtlBps/1e6, o.DedicatedFraction*100)
	fmt.Fprintf(&b, "hash-tree control:          %.3f Mbps (%.5f%% of link), report %d B\n",
		o.TreeCtlBps/1e6, o.TreeFraction*100, o.TreeReportBytes)
	fmt.Fprintf(&b, "packet tag overhead:        %.2f%% per 1500 B packet\n", o.TagFraction*100)
	return b.String()
}

func fmtLatency(secs float64) string {
	return sim.Time(secs * float64(sim.Second)).String()
}
