package exp

// Churning heavy-hitter sweep: dynamic dedicated-counter allocation vs a
// static Table-3-style top-k chosen at deploy time. The workload's hot
// set rotates every epoch (internal/traffic's churn schedule); each epoch
// the first newly-hot prefix suffers a gray failure shortly after it
// becomes hot. A static allocation only has dedicated counters for the
// initial top-k, so post-churn failures fall back to tree zooming; the
// allocation loop promotes the new heavy hitters within a few report
// intervals and keeps detection at dedicated-counter speed.

import (
	"fmt"
	"sort"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/fleet"
	"fancy/internal/hh"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/stats"
	"fancy/internal/topo"
	"fancy/internal/traffic"
)

// HHChurnRow is one failed-prefix trial under both allocation modes.
type HHChurnRow struct {
	Epoch    int
	Entry    netsim.EntryID
	NewlyHot bool // entered the hot set at this epoch (false only for epoch 0)

	StaticDetected  bool
	StaticTTL       sim.Time
	DynamicDetected bool
	DynamicTTL      sim.Time
}

// HHChurnResult aggregates the sweep.
type HHChurnResult struct {
	Scale Scale
	Seed  int64
	Slots int // dedicated slots available to both modes

	Rows []HHChurnRow

	// Medians over the newly-hot rows, the cells the sweep exists for
	// (undetected prefixes count as the run-remainder sentinel).
	StaticMedian  sim.Time
	DynamicMedian sim.Time

	// HH is the dynamic run's fleet-wide allocation-loop telemetry.
	HH fleet.HHSnapshot
}

// hhChurnFailDelay is how long after its epoch starts the target prefix
// begins blackholing — late enough for the allocation loop to have
// promoted it, well before the epoch ends.
const hhChurnFailDelay = 600 * sim.Millisecond

// HHChurn runs the sweep at the given scale: one churn schedule, two runs
// (static vs dynamic allocation), identical seeds and failures.
func HHChurn(scale Scale, seed int64) *HHChurnResult {
	res := &HHChurnResult{Scale: scale, Seed: seed, Slots: 8}
	churn := traffic.ChurnConfig{
		Entries:       pick(scale, 48, 128),
		AggregateBps:  20e6,
		ShiftInterval: pick(scale, 2*sim.Second, 3*sim.Second),
		Epochs:        pick(scale, 3, 5),
		ShiftCount:    4,
		HotRanks:      res.Slots, // churned-in prefixes are outside the static top-k
		Seed:          seed,
	}
	sched := traffic.NewChurnSchedule(churn)

	// One failure target per epoch: the hottest prefix at epoch 0, the
	// first newly-hot prefix afterwards.
	targets := make([]netsim.EntryID, sched.Epochs())
	for e := range targets {
		if fresh := sched.NewlyHot(e); len(fresh) > 0 {
			targets[e] = fresh[0]
		} else {
			targets[e] = sched.Ranks(e)[0]
		}
	}

	static := runHHChurn(seed, sched, targets, res.Slots, false, nil)
	dynamic := runHHChurn(seed, sched, targets, res.Slots, true, &res.HH)

	var staticTTLs, dynamicTTLs []sim.Time
	for e, entry := range targets {
		row := HHChurnRow{Epoch: e, Entry: entry, NewlyHot: e > 0}
		row.StaticDetected, row.StaticTTL = static[e].Detected, static[e].Latency
		row.DynamicDetected, row.DynamicTTL = dynamic[e].Detected, dynamic[e].Latency
		res.Rows = append(res.Rows, row)
		if row.NewlyHot {
			staticTTLs = append(staticTTLs, row.StaticTTL)
			dynamicTTLs = append(dynamicTTLs, row.DynamicTTL)
		}
	}
	res.StaticMedian = ttlMedian(staticTTLs)
	res.DynamicMedian = ttlMedian(dynamicTTLs)
	return res
}

func ttlMedian(ttls []sim.Time) sim.Time {
	if len(ttls) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), ttls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// runHHChurn executes one allocation mode over the shared schedule and
// returns per-epoch detection of the target prefixes. Undetected targets
// carry the run-remainder sentinel latency.
func runHHChurn(seed int64, sched *traffic.ChurnSchedule, targets []netsim.EntryID,
	slots int, dynamic bool, hhOut *fleet.HHSnapshot) map[int]stats.Detection {

	s := sim.New(seed)
	spec := topo.Spec{
		Switches: []string{"up", "down"},
		Links:    []topo.LinkSpec{{A: "up", B: "down", Delay: 2 * sim.Millisecond}},
		Hosts:    []topo.HostSpec{{Name: "hsrc", Attach: "up"}, {Name: "hdst", Attach: "down"}},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		panic(fmt.Sprintf("exp: hh-churn topology: %v", err))
	}
	routes := make(map[netsim.EntryID]string, sched.Config().Entries)
	for i := 0; i < sched.Config().Entries; i++ {
		routes[netsim.EntryID(i)] = "hdst"
	}
	if err := n.InstallShortestPaths(routes); err != nil {
		panic(err)
	}

	cfg := fleet.Config{}
	cfg.Fancy.Tree = tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true}
	cfg.Fancy.TreeSeed = 3
	if dynamic {
		cfg.HH = &fleet.HHFleetConfig{
			Sketch:       hh.Params{Stages: 3, Width: 32, Seed: uint64(seed)},
			DynamicSlots: slots,
		}
	} else {
		cfg.Fancy.HighPriority = sched.Top(0, slots)
	}
	f, err := fleet.New(s, n, cfg)
	if err != nil {
		panic(err)
	}

	// Detection taps the upstream detector directly (fleet wired its own
	// handler; chain ours in front) so both modes are measured at the
	// same point, before any correlator policy.
	det := f.Detectors["up"]
	port := n.PortOf["up"]["down"]
	out := make(map[int]stats.Detection, len(targets))
	epochOf := make(map[netsim.EntryID]int, len(targets))
	failAt := make(map[netsim.EntryID]sim.Time, len(targets))
	pathOf := make(map[string][]netsim.EntryID)
	prev := det.OnEvent
	mark := func(entry netsim.EntryID) {
		e, ok := epochOf[entry]
		if !ok || out[e].Detected {
			return
		}
		out[e] = stats.Detection{Detected: true, Latency: s.Now() - failAt[entry]}
	}
	det.OnEvent = func(ev fancy.Event) {
		switch ev.Kind {
		case fancy.EventDedicated:
			mark(ev.Entry)
		case fancy.EventTreeLeaf:
			for _, entry := range pathOf[pathKey(ev.Path)] {
				mark(entry)
			}
		case fancy.EventUniform:
			for entry := range epochOf {
				if s.Now() >= failAt[entry] {
					mark(entry)
				}
			}
		}
		prev(ev)
	}

	// Failure schedule: at every epoch's fail time the link's per-entry
	// blackhole is replaced with the cumulative target set, so earlier
	// failures persist across epoch boundaries.
	var failed []netsim.EntryID
	for e, entry := range targets {
		e, entry := e, entry
		at := sched.EpochStart(e) + hhChurnFailDelay
		s.ScheduleAt(at, func() {
			epochOf[entry] = e
			failAt[entry] = at
			k := pathKey(det.EntryPath(port, entry))
			pathOf[k] = append(pathOf[k], entry)
			failed = append(failed, entry)
			n.Direction("up", "down").SetFailure(
				netsim.FailEntries(seed+int64(e)+2, at, 1.0, failed...))
		})
	}

	sched.Launch(s, n.Hosts["hsrc"])
	s.Run(sched.Duration())

	for e, entry := range targets {
		if !out[e].Detected {
			out[e] = stats.Detection{Latency: sched.Duration() - failAt[entry]}
		}
	}
	if hhOut != nil {
		*hhOut = f.Snapshot().HH
	}
	return out
}

// Render prints the per-epoch table plus the medians the sweep compares.
func (r *HHChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== churning heavy hitters: dynamic vs static dedicated-counter allocation (%s, %d slots) ==\n",
		r.Scale, r.Slots)
	headers := []string{"Epoch", "Entry", "NewlyHot", "Static TTD", "Dynamic TTD"}
	var rows [][]string
	fmtTTL := func(detected bool, ttl sim.Time) string {
		if !detected {
			return fmt.Sprintf(">%v", ttl)
		}
		return ttl.String()
	}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Epoch),
			fmt.Sprintf("%d", row.Entry),
			fmt.Sprintf("%v", row.NewlyHot),
			fmtTTL(row.StaticDetected, row.StaticTTL),
			fmtTTL(row.DynamicDetected, row.DynamicTTL),
		})
	}
	b.WriteString(stats.Table(headers, rows))
	fmt.Fprintf(&b, "newly-hot median time-to-detect: static %v, dynamic %v\n",
		r.StaticMedian, r.DynamicMedian)
	fmt.Fprintf(&b, "allocation loop: reports=%d promotions=%d demotions=%d flaps-suppressed=%d deferred=%d\n",
		r.HH.Reports, r.HH.Promotions, r.HH.Demotions, r.HH.FlapsSuppressed, r.HH.Deferred)
	return b.String()
}
