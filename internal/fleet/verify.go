package fleet

// The verified-commit gate: with Config.Verify set, the correlator consults
// an incremental atom-based forwarding model (internal/verify) before every
// fleet-wide reroute commit. A requested backup flip whose post-commit
// state would contain a forwarding loop or blackhole is rejected with the
// verifier's structured verdict; the correlator then attempts repair — the
// alternate backup next hops at the same switch, checked in neighbor-name
// order — and, failing that, parks the flip on a hold-and-retry list that
// re-checks after every later commit, restore or model sync (a conflicting
// reroute being rolled back is exactly what unblocks a held flip).
//
// Graceful degradation is the design anchor — verification must never make
// recovery strictly worse than not having it:
//
//   - SetVerifierAvailable(false) enters verify-unavailable fallback:
//     commits revert to today's unverified behavior, counted and logged.
//   - A model error (e.g. a prefix installed after the model snapshot)
//     degrades that one commit to the same fallback.
//   - Degraded-mode local protection bypasses the gate by design — the
//     agent cannot reach the correlator — and its reroutes are adopted
//     into the model unchecked when the report arrives.
//
// Every gate decision is recorded in a replicated decision log keyed by
// (link, localization time, entry) and carried in the consensus checkpoint,
// so a leader failover re-issues accepted commits idempotently and can
// never double-commit (re-evaluate into acceptance) a rejected one.

import (
	"fmt"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/sim"
	"fancy/internal/verify"
)

// VerifyConfig tunes the verified-commit gate.
type VerifyConfig struct {
	// HoldRetry is the cadence at which held (currently unrepairable) flips
	// are re-checked against the evolved model. Default 100 ms — one
	// evidence window.
	HoldRetry sim.Time

	// MaxRetries bounds the hold-and-retry attempts per held flip before it
	// is abandoned as a final rejection. Default 5.
	MaxRetries int
}

// Gate decision outcomes, replicated through the consensus checkpoint.
const (
	verifyCommitted uint8 = iota // requested backup checked safe and issued
	verifyRepaired               // alternate next hop substituted and issued
	verifyRejected               // no safe candidate; entry stays on primary
	verifyFallback               // committed unverified (gate degraded)
	verifyRevoked                // rolled back by RestoreEntry; gating reopens
)
const verifyOutcomeMax = verifyRevoked

// VerifyDecision is one replicated gate decision. Frame is the canonical
// verify.Delta encoding of the committed flip (empty for rejections); a
// restored or failed-over correlator replays frames into a fresh model and
// re-issues accepted commands from them.
type VerifyDecision struct {
	Key     string // "link|localizedAt|entry" (or "degraded|sw|port|entry")
	Outcome uint8
	Frame   []byte
}

// HeldReroute is the checkpointed form of one parked flip.
type HeldReroute struct {
	LinkKey string
	Key     string
	Entry   netsim.EntryID
	Retries int
}

// heldReroute is the live form.
type heldReroute struct {
	ls      *linkState
	key     string
	entry   netsim.EntryID
	retries int
}

// VerifyStats counts the gate's work. Lifetime counters (like
// CorrelatorStats, they survive crashes and failovers).
type VerifyStats struct {
	Checked      uint64 // candidate flips evaluated against the model
	AtomsChecked uint64 // atoms re-walked across those checks
	Committed    uint64 // requested backups committed as-is
	Rejected     uint64 // requested backups rejected as unsafe
	Repaired     uint64 // rejections resolved via an alternate next hop
	Held         uint64 // rejections parked for hold-and-retry
	Retries      uint64 // hold-and-retry passes over parked flips
	Abandoned    uint64 // parked flips dropped after MaxRetries
	Fallbacks    uint64 // unverified commits (gate down, error, degraded)
	Errors       uint64 // model errors (treated as per-commit fallback)
}

// VerifyEnabled reports whether the fleet runs the verified-commit gate.
func (f *Fleet) VerifyEnabled() bool { return f.verifier != nil }

// VerifierAvailable reports whether the gate is currently verifying (false
// in verify-unavailable fallback).
func (f *Fleet) VerifierAvailable() bool { return f.verifier != nil && !f.verifyDown }

// SetVerifierAvailable toggles the gate's verifier. While unavailable,
// commits fall back to today's unverified behavior — counted in
// VerifyStats.Fallbacks and still synced into the model — so verification
// can never make recovery strictly worse. No-op without Config.Verify.
func (f *Fleet) SetVerifierAvailable(ok bool) {
	if f.verifier == nil {
		return
	}
	f.verifyDown = !ok
}

// Verifier exposes the gate's forwarding model (nil without Config.Verify),
// for audits by experiments and demos.
func (f *Fleet) Verifier() *verify.Model { return f.verifier }

func verifyKey(ls *linkState, entry netsim.EntryID) string {
	return fmt.Sprintf("%s|%d|%d", ls.key, int64(ls.localizedAt), entry)
}

func (f *Fleet) entryDelta(ls *linkState, entry netsim.EntryID, port int) *verify.Delta {
	return verify.NewDelta(ls.key, []verify.Flip{verify.EntryFlip(ls.dl.From, entry, port)})
}

// mountVerifyStats exposes the gate counters through every switch's
// telemetry server, next to the detector and hh-alloc stats.
func (f *Fleet) mountVerifyStats() {
	for _, sw := range f.switches {
		srv := f.Telemetry[sw]
		// Built-in names cannot collide; a failure would be a programming
		// error surfaced by the telemetry tests.
		_ = srv.RegisterStat("verify-checked", func() int { return int(f.Verify.Checked) })
		_ = srv.RegisterStat("verify-committed", func() int { return int(f.Verify.Committed) })
		_ = srv.RegisterStat("verify-rejected", func() int { return int(f.Verify.Rejected) })
		_ = srv.RegisterStat("verify-repaired", func() int { return int(f.Verify.Repaired) })
		_ = srv.RegisterStat("verify-fallbacks", func() int { return int(f.Verify.Fallbacks) })
	}
}

// gatedReact is react with the verifier in the loop: the evidence is
// resolved to its target entries centrally (reroute.App.Targets), each
// entry's flip is checked, and only safe (or repaired) flips are issued as
// per-entry commands. Runs inside the consensus commit callback when
// replicating, so gate checks are serialized by the log.
func (f *Fleet) gatedReact(ls *linkState, app *reroute.App, evidence []fancy.Event) {
	dedup := make(map[netsim.EntryID]bool)
	var entries []netsim.EntryID
	for _, ev := range evidence {
		for _, e := range app.Targets(ev) {
			if !dedup[e] {
				dedup[e] = true
				entries = append(entries, e)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	for _, e := range entries {
		f.gateEntry(ls, app, e)
	}
	// A fresh commit may have changed the state a held flip was parked on.
	f.retryHeld(false)
}

func (f *Fleet) gateEntry(ls *linkState, app *reroute.App, entry netsim.EntryID) {
	route, ok := app.Route(entry)
	if !ok || route.UseBackup || route.Backup < 0 {
		return // nothing to divert (or already diverted: idempotent)
	}
	key := verifyKey(ls, entry)
	for _, h := range f.verifyHeld {
		if h.key == key {
			return // already parked; the retry loop owns it now
		}
	}
	if out, done := f.verifySeen[key]; done && out != verifyRevoked {
		// A previous leader (or an earlier evidence replay) already decided
		// this commit. Accepted outcomes are re-issued — idempotent at the
		// agent; a rejected commit is never re-evaluated into acceptance:
		// that is the double-commit the replicated decision log prevents.
		// (A revoked decision falls through: RestoreEntry rolled the flip
		// back, so new evidence gates fresh against the current model.)
		if out != verifyRejected {
			f.reissue(ls, key)
		}
		return
	}
	if f.verifyDown {
		f.fallbackCommit(ls, entry, route.Backup, key, "verifier unavailable")
		return
	}
	f.tryCommit(ls, app, entry, key, true)
}

// tryCommit checks the entry's requested backup flip against the model and,
// when unsafe, walks the repair alternates. announce is false on
// hold-and-retry passes: no rejection event, no new hold record. Reports
// whether a flip committed (or there was nothing left to do).
func (f *Fleet) tryCommit(ls *linkState, app *reroute.App, entry netsim.EntryID, key string, announce bool) bool {
	route, ok := app.Route(entry)
	if !ok || route.UseBackup || route.Backup < 0 {
		return true
	}
	sw := ls.dl.From
	d := f.entryDelta(ls, entry, route.Backup)
	v, err := f.verifier.Check(d)
	if err != nil {
		// The model cannot evaluate this flip (e.g. the prefix was
		// installed after the model snapshot): degrade this one commit to
		// the unverified behavior rather than blocking recovery.
		f.Verify.Errors++
		f.fallbackCommit(ls, entry, route.Backup, key, "verifier error: "+err.Error())
		return true
	}
	f.Verify.Checked++
	f.Verify.AtomsChecked += uint64(v.Atoms)
	if v.Safe() {
		f.verifier.Commit(d)
		f.Verify.Committed++
		f.record(VerifyDecision{Key: key, Outcome: verifyCommitted, Frame: verify.EncodeDelta(d)})
		f.command(sw, divertCmd{Port: ls.port, Entry: entry})
		return true
	}
	if announce {
		f.Verify.Rejected++
		f.emit(Event{Time: f.S.Now(), Kind: EventRerouteRejected, Link: ls.key, Entry: entry,
			Detail: v.String()})
	}
	for _, port := range f.repairCandidates(ls, route) {
		d := f.entryDelta(ls, entry, port)
		v, err := f.verifier.Check(d)
		if err != nil {
			f.Verify.Errors++
			continue
		}
		f.Verify.Checked++
		f.Verify.AtomsChecked += uint64(v.Atoms)
		if !v.Safe() {
			continue
		}
		f.verifier.Commit(d)
		f.Verify.Repaired++
		f.record(VerifyDecision{Key: key, Outcome: verifyRepaired, Frame: verify.EncodeDelta(d)})
		f.emit(Event{Time: f.S.Now(), Kind: EventRerouteRepaired, Link: ls.key, Entry: entry,
			Detail: fmt.Sprintf("backup port %d unsafe, diverted via port %d", route.Backup, port)})
		f.command(sw, repairCmd{Port: ls.port, Entry: entry, Backup: port})
		return true
	}
	if announce {
		f.Verify.Held++
		f.emit(Event{Time: f.S.Now(), Kind: EventRerouteHeld, Link: ls.key, Entry: entry,
			Detail: "no safe backup next hop; holding for retry"})
		f.verifyHeld = append(f.verifyHeld, &heldReroute{ls: ls, key: key, entry: entry})
		f.persist()
		f.armVerifyTimer()
	}
	return false
}

// repairCandidates lists the upstream switch's other inter-switch egress
// ports — the alternate backup next hops — in neighbor-name order,
// excluding the primary egress and the already-rejected configured backup.
func (f *Fleet) repairCandidates(ls *linkState, route *netsim.Route) []int {
	var out []int
	for _, nb := range f.Net.Neighbors(ls.dl.From) {
		p := f.Net.PortOf[ls.dl.From][nb]
		if p == route.Port || p == route.Backup {
			continue
		}
		out = append(out, p)
	}
	return out
}

// fallbackCommit is the verify-unavailable path: commit unverified exactly
// as the ungated fleet would, but keep the model in sync and the decision
// replicated so the gate resumes from true state.
func (f *Fleet) fallbackCommit(ls *linkState, entry netsim.EntryID, port int, key, why string) {
	d := f.entryDelta(ls, entry, port)
	if _, err := f.verifier.Commit(d); err != nil {
		f.Verify.Errors++
		d = nil
	}
	f.Verify.Fallbacks++
	f.emit(Event{Time: f.S.Now(), Kind: EventVerifyFallback, Link: ls.key, Entry: entry, Detail: why})
	dec := VerifyDecision{Key: key, Outcome: verifyFallback}
	if d != nil {
		dec.Frame = verify.EncodeDelta(d)
	}
	f.record(dec)
	f.command(ls.dl.From, repairCmd{Port: ls.port, Entry: entry, Backup: port})
}

// record appends one decision to the replicated log and persists: a gate
// decision is externally visible the moment its command leaves, so it must
// survive any later crash (same rationale as verdict persistence).
func (f *Fleet) record(d VerifyDecision) {
	f.verifySeen[d.Key] = d.Outcome
	f.verifyLog = append(f.verifyLog, d)
	f.persist()
}

// reissue re-sends the commanded flip of an already-decided commit (leader
// failover or duplicated evidence) from its logged frame — idempotent at
// the agent.
func (f *Fleet) reissue(ls *linkState, key string) {
	for i := len(f.verifyLog) - 1; i >= 0; i-- {
		dec := f.verifyLog[i]
		if dec.Key != key || len(dec.Frame) == 0 {
			continue
		}
		d, err := verify.DecodeDelta(dec.Frame)
		if err != nil || len(d.Flips) == 0 {
			return
		}
		fl := d.Flips[0]
		f.command(ls.dl.From, repairCmd{Port: ls.port, Entry: netsim.EntryID(fl.Addr >> 8), Backup: fl.Port})
		return
	}
}

// retryHeld re-checks every parked flip: after each committed delta or
// model sync (tick=false, no retry budget consumed) and on the HoldRetry
// cadence (tick=true, budget consumed; exhaustion abandons the flip as a
// final rejection).
func (f *Fleet) retryHeld(tick bool) {
	if f.verifier == nil || len(f.verifyHeld) == 0 {
		return
	}
	keep := f.verifyHeld[:0]
	for _, h := range f.verifyHeld {
		if _, done := f.verifySeen[h.key]; done {
			continue // decided while parked (restore replay or fallback)
		}
		app, ok := f.agents[h.ls.dl.From].apps[h.ls.port]
		if !ok {
			continue
		}
		if tick {
			h.retries++
			f.Verify.Retries++
		}
		if f.tryCommit(h.ls, app, h.entry, h.key, false) {
			continue
		}
		if h.retries >= f.cfg.Verify.MaxRetries {
			f.Verify.Abandoned++
			f.emit(Event{Time: f.S.Now(), Kind: EventRerouteRejected, Link: h.ls.key, Entry: h.entry,
				Detail: fmt.Sprintf("abandoned after %d retries; entry stays on primary", h.retries)})
			f.record(VerifyDecision{Key: h.key, Outcome: verifyRejected})
			continue
		}
		keep = append(keep, h)
	}
	f.verifyHeld = keep
}

func (f *Fleet) armVerifyTimer() {
	if f.verifyTimer != nil || len(f.verifyHeld) == 0 || f.crashed {
		return
	}
	f.verifyTimer = f.S.Schedule(f.cfg.Verify.HoldRetry, f.verifyRetryTick)
}

func (f *Fleet) verifyRetryTick() {
	f.verifyTimer = nil
	if f.crashed || f.verifier == nil {
		return
	}
	f.retryHeld(true)
	f.armVerifyTimer()
}

// syncDegradedReroute folds an agent's autonomous reroute into the model:
// degraded-mode local protection bypasses the gate by design — the agent
// cannot reach the correlator, and protection must not wait — so it IS a
// verify-unavailable fallback, adopted unchecked.
func (f *Fleet) syncDegradedReroute(sw string, r rerouteReport) {
	key := fmt.Sprintf("degraded|%s|%d|%d", sw, r.Port, r.Entry)
	if _, done := f.verifySeen[key]; done {
		return
	}
	app, ok := f.agents[sw].apps[r.Port]
	if !ok {
		return
	}
	route, ok := app.Route(r.Entry)
	if !ok {
		return
	}
	linkKey := sw
	if ls, ok := f.portLink[sw][r.Port]; ok {
		linkKey = ls.key
	}
	d := verify.NewDelta(linkKey, []verify.Flip{verify.EntryFlip(sw, r.Entry, route.Egress())})
	if _, err := f.verifier.Commit(d); err != nil {
		f.Verify.Errors++
		return
	}
	f.Verify.Fallbacks++
	f.emit(Event{Time: f.S.Now(), Kind: EventVerifyFallback, Link: linkKey, Entry: r.Entry,
		Detail: "degraded-local reroute adopted unverified"})
	f.record(VerifyDecision{Key: key, Outcome: verifyFallback, Frame: verify.EncodeDelta(d)})
	f.retryHeld(false)
}

// RestoreEntry reverts a protected entry to its primary next hop at sw —
// the operator action after the underlying failure is repaired. With the
// gate enabled the model reverts too (as a logged decision, so a restored
// correlator replays it), the entry's old gate decision is revoked — the
// rollback reopens gating, and a stale accepted decision must not be
// re-issued against the rolled-back state — and held commits re-check
// immediately: a conflicting reroute being rolled back is exactly what
// unblocks a held flip.
func (f *Fleet) RestoreEntry(sw string, entry netsim.EntryID) {
	a, ok := f.agents[sw]
	if !ok {
		return
	}
	var ports []int
	for port := range a.apps {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		app := a.apps[port]
		route, ok := app.Route(entry)
		if !ok || !route.UseBackup {
			continue
		}
		app.Restore(entry)
		if f.verifier == nil {
			continue
		}
		linkKey := sw
		ls, onLink := f.portLink[sw][port]
		if onLink {
			linkKey = ls.key
		}
		d := verify.NewDelta(linkKey, []verify.Flip{verify.EntryFlip(sw, entry, route.Port)})
		if _, err := f.verifier.Commit(d); err != nil {
			f.Verify.Errors++
			continue
		}
		// Revoke the rolled-back decision in the log itself (not just the
		// index): a restored correlator rebuilds verifySeen from the log,
		// so a plain delete would resurrect the stale decision — and its
		// re-issue would diverge model and network. The frames stay: replay
		// applies the old flip, then this tombstone's revert, landing on
		// the true state.
		if onLink {
			k := verifyKey(ls, entry)
			if _, done := f.verifySeen[k]; done {
				f.verifySeen[k] = verifyRevoked
				for i := range f.verifyLog {
					if f.verifyLog[i].Key == k {
						f.verifyLog[i].Outcome = verifyRevoked
					}
				}
			}
		}
		f.record(VerifyDecision{
			Key:     fmt.Sprintf("restore|%s|%d|%d|%d", sw, port, entry, int64(f.S.Now())),
			Outcome: verifyCommitted,
			Frame:   verify.EncodeDelta(d),
		})
	}
	if f.verifier != nil {
		// Holds at the restored switch are cancelled — the operator just
		// reverted this entry; new evidence will re-open gating if the
		// failure persists. Holds elsewhere re-check: the rollback may be
		// exactly what makes them safe.
		keep := f.verifyHeld[:0]
		for _, h := range f.verifyHeld {
			if h.ls.dl.From == sw && h.entry == entry {
				continue
			}
			keep = append(keep, h)
		}
		f.verifyHeld = keep
		f.retryHeld(false)
	}
}

// HeldCommits reports how many flips are currently parked on the
// hold-and-retry list.
func (f *Fleet) HeldCommits() int { return len(f.verifyHeld) }
