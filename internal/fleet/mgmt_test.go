package fleet

// Survivability tests: the fleet control plane over a lossy management
// network, correlator crash/restart from checkpoint, degraded-mode local
// protection under a partition, and the correlator's alarm/epoch guards.

import (
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

func countEvents(f *Fleet, kind EventKind, link string) int {
	n := 0
	for _, ev := range f.Events {
		if ev.Kind == kind && (link == "" || ev.Link == link) {
			n++
		}
	}
	return n
}

// abileneProtected builds the acceptance topology: Abilene, one protected
// entry at seattle whose primary is seattle→sunnyvale and whose backup
// detours via denver.
func abileneProtected(t *testing.T, s *sim.Sim, cfg Config) (*topo.Network, *Fleet, netsim.EntryID) {
	t.Helper()
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "h-sunnyvale", Attach: "sunnyvale"},
		{Name: "h-seattle", Attach: "seattle"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "h-sunnyvale"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	route := n.Switches["seattle"].Routes.InsertEntry(entry, netsim.Route{
		Port:   n.PortOf["seattle"]["sunnyvale"],
		Backup: n.PortOf["seattle"]["denver"],
	})
	if err := f.Protect("seattle", entry, route); err != nil {
		t.Fatal(err)
	}
	return n, f, entry
}

// TestMgmtLossyLocalization: with 20% management-plane loss plus
// duplication and jitter, retries and transport dedup keep localization
// exact — one verdict on the failed link, duplicates never double-counted.
func TestMgmtLossyLocalization(t *testing.T) {
	s := sim.New(42)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(entry)
	cfg.Mgmt = &mgmt.Config{Loss: 0.2, Duplicate: 0.2, Jitter: sim.Millisecond}
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	const failAt = 2 * sim.Second
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, failAt, 1.0, entry))
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want exactly [B->C]", got)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events for B->C, want exactly 1", nLoc)
	}
	ttl := f.LocalizedAt("B->C") - failAt
	if ttl <= 0 || ttl > 20*fancy.DefaultExchangeInterval {
		t.Fatalf("time-to-localize %v under 20%% mgmt loss, want bounded degradation", ttl)
	}
	snap := f.Snapshot()
	if !snap.MgmtEnabled || snap.MgmtNet.Lost == 0 {
		t.Fatalf("management impairments not exercised: %+v", snap.MgmtNet)
	}
	if snap.MgmtDuplicates == 0 {
		t.Fatal("no transport duplicates suppressed despite Duplicate=0.2")
	}
	if snap.MgmtHoles != 0 {
		t.Fatalf("%d report holes without any partition/overflow", snap.MgmtHoles)
	}
}

// TestMgmtDeterminism: the full management plane (loss, duplication,
// jitter, retries) must replay byte-identically under the same seed.
func TestMgmtDeterminism(t *testing.T) {
	run := func() string {
		s := sim.New(23)
		n, err := topo.Build(s, lineSpec(0))
		if err != nil {
			t.Fatal(err)
		}
		const entry = netsim.EntryID(10)
		if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
			t.Fatal(err)
		}
		cfg := fleetCfg(entry)
		cfg.Mgmt = &mgmt.Config{Loss: 0.25, Duplicate: 0.2, Jitter: 2 * sim.Millisecond}
		f, err := New(s, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		udp(n, "H1", entry, 2e6, 5*sim.Second)
		n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
		s.ScheduleAt(2500*sim.Millisecond, f.CrashCorrelator)
		s.ScheduleAt(2900*sim.Millisecond, f.RestartCorrelator)
		s.Run(5 * sim.Second)
		return f.Snapshot().Report()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("non-deterministic mgmt fleet:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1, r2)
	}
}

// TestDuplicateAlarmNotDoubleCounted: the same session's alarm delivered
// twice (management-plane duplication that slips past transport dedup,
// e.g. a post-restore retransmission) must count as one piece of evidence.
func TestDuplicateAlarmNotDoubleCounted(t *testing.T) {
	s := sim.New(5)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, fleetCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	rep := eventReport{
		Epoch: f.Detectors["B"].Epoch(),
		Ev: fancy.Event{
			Time: s.Now(), Port: n.PortOf["B"]["C"],
			Kind: fancy.EventDedicated, Entry: entry, Diff: 3,
		},
	}
	f.handleReport("B", rep)
	f.handleReport("B", rep) // duplicated delivery of the same alarm
	ls := f.link("B->C")
	if f.Alarms != 1 || ls.alarms != 1 {
		t.Fatalf("alarms=%d link=%d after duplicate delivery, want 1/1", f.Alarms, ls.alarms)
	}
	if len(ls.evidence) != 1 {
		t.Fatalf("evidence len %d, want 1 (no double counting)", len(ls.evidence))
	}
	if n := countEvents(f, EventAlarm, "B->C"); n != 1 {
		t.Fatalf("%d alarm events, want 1", n)
	}
}

// TestCorrelatorCrashRestart: a correlator crash after localization loses
// nothing — the checkpoint preserves the confirmed verdict, the restarted
// correlator deduplicates retransmitted evidence, and no duplicate
// localization is ever emitted.
func TestCorrelatorCrashRestart(t *testing.T) {
	s := sim.New(19)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(entry)
	cfg.Mgmt = &mgmt.Config{} // perfect channel: isolate the crash semantics
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))

	// Crash well after the verdict (~2.2 s) and the 2.5 s checkpoint; the
	// outage spans several counting sessions' worth of fresh alarms.
	s.ScheduleAt(2600*sim.Millisecond, func() {
		if len(f.Localized()) != 1 {
			t.Fatal("failure not localized before the crash — timing assumption broken")
		}
		f.CrashCorrelator()
		if !f.Crashed() {
			t.Fatal("CrashCorrelator did not take")
		}
	})
	s.ScheduleAt(3200*sim.Millisecond, func() {
		f.RestartCorrelator()
		// The confirmed verdict must survive the restart verbatim.
		if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
			t.Fatalf("verdict lost across crash/restart: %v", got)
		}
	})
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v at end, want exactly [B->C]", got)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events, want 1 (no duplicate verdicts after restart)", nLoc)
	}
	if f.Corr.Crashes != 1 || f.Corr.Restores != 1 || f.Corr.Checkpoints == 0 {
		t.Fatalf("lifecycle counters %+v, want 1 crash, 1 restore, >0 checkpoints", f.Corr)
	}
	if !hasEvent(f, EventCorrelatorCrash, "") || !hasEvent(f, EventCorrelatorRestart, "checkpoint at") {
		t.Fatal("correlator lifecycle events missing")
	}
}

// TestCrashMidEvidenceWindow: a crash between the first alarm and the
// verdict re-opens the evidence window from the checkpoint, and the
// persisting failure still localizes exactly once.
func TestCrashMidEvidenceWindow(t *testing.T) {
	s := sim.New(29)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(entry)
	cfg.Mgmt = &mgmt.Config{}
	cfg.Window = 400 * sim.Millisecond            // long window, so the crash lands inside it
	cfg.CheckpointInterval = 50 * sim.Millisecond // checkpoint catches the open window
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))

	crashed := false
	var poll func()
	poll = func() {
		if !crashed && f.link("B->C").verdictPending {
			crashed = true
			f.CrashCorrelator()
			s.Schedule(200*sim.Millisecond, f.RestartCorrelator)
			return
		}
		if !crashed && s.Now() < 4*sim.Second {
			s.Schedule(10*sim.Millisecond, poll)
		}
	}
	s.ScheduleAt(2*sim.Second, poll)
	s.Run(8 * sim.Second)

	if !crashed {
		t.Fatal("no evidence window ever opened — scenario broken")
	}
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want [B->C] despite mid-window crash", got)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events, want 1", nLoc)
	}
	if !hasEvent(f, EventCorrelatorRestart, "window(s) re-opened") {
		t.Fatal("restart did not re-open the pending evidence window")
	}
}

// TestPartitionDegradedProtectionAndHandback is the survivability
// acceptance scenario: a switch partitioned from the correlator keeps
// protecting its entries autonomously (degraded mode), the reroute engages
// within roughly one counting session of detection, and after the heal the
// agent hands control back — one confirmed verdict, one recorded reroute,
// no duplicates.
func TestPartitionDegradedProtectionAndHandback(t *testing.T) {
	s := sim.New(31)
	cfg := fleetCfg(10, 11)
	cfg.Mgmt = &mgmt.Config{}
	n, f, entry := abileneProtected(t, s, cfg)

	delivered := 0
	n.Hosts["h-sunnyvale"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Entry == entry {
			delivered++
		}
	})
	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)

	const partitionAt = 1500 * sim.Millisecond
	const failAt = 2 * sim.Second
	const healAt = 3 * sim.Second
	s.ScheduleAt(partitionAt, func() { f.PartitionSwitch("seattle") })
	s.ScheduleAt(failAt-sim.Millisecond, func() {
		if !f.Degraded("seattle") {
			t.Error("agent not degraded before the failure despite the partition")
		}
	})
	n.Direction("seattle", "sunnyvale").SetFailure(netsim.FailEntries(7, failAt, 1.0, entry))
	// Degraded-mode local protection must reroute within ~one counting
	// session of the detector flagging the entry (flagging itself takes a
	// session or two from the failure).
	s.ScheduleAt(failAt+4*fancy.DefaultExchangeInterval, func() {
		if !f.Rerouted("seattle", entry) {
			t.Error("degraded-mode local reroute did not engage within a few counting sessions")
		}
		if len(f.Localized()) != 0 {
			t.Error("correlator localized during the partition — it cannot have the evidence yet")
		}
	})
	s.ScheduleAt(healAt, func() { f.HealSwitch("seattle") })
	s.Run(8 * sim.Second)

	if f.Degraded("seattle") {
		t.Fatal("agent still degraded after the heal")
	}
	if !hasEvent(f, EventDegradedHandback, "local reroute(s)") {
		t.Fatal("no degraded-mode handback recorded")
	}
	if f.Corr.Handbacks != 1 {
		t.Fatalf("Handbacks=%d, want 1", f.Corr.Handbacks)
	}
	// The spooled evidence replays after the heal and the correlator takes
	// gating back: exactly one confirmed verdict, on the right link.
	if got := f.Localized(); len(got) != 1 || got[0] != "seattle->sunnyvale" {
		t.Fatalf("localized %v, want exactly [seattle->sunnyvale]", got)
	}
	if nLoc := countEvents(f, EventLocalized, "seattle->sunnyvale"); nLoc != 1 {
		t.Fatalf("%d localization events, want 1 (no duplicate verdicts after handback)", nLoc)
	}
	if f.Reroutes != 1 {
		t.Fatalf("Reroutes=%d, want 1 (degraded reroute recorded once)", f.Reroutes)
	}
	if !hasEvent(f, EventRerouted, "degraded-local") {
		t.Fatal("reroute not attributed to degraded-mode local protection")
	}
	if !hasEvent(f, EventSwitchUnreachable, "") || !hasEvent(f, EventSwitchReachable, "") {
		t.Fatal("liveness transitions not surfaced")
	}
	// The detour must actually deliver traffic throughout the partition.
	if delivered < 1200 {
		t.Fatalf("only %d packets delivered — degraded protection did not keep traffic flowing", delivered)
	}
}

// TestRestartMidEvidenceWindowPurgesEpoch is the stale-epoch regression:
// restarting the UPSTREAM switch while its link has an open evidence window
// must clamp the window (timer stopped, cross-epoch evidence discarded)
// instead of letting a verdict fire over counters from two incarnations.
// The persisting failure then re-alarms under the new epoch and localizes.
func TestRestartMidEvidenceWindowPurgesEpoch(t *testing.T) {
	s := sim.New(37)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(entry)
	cfg.Window = 300 * sim.Millisecond // wide window so the restart lands inside
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 10*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))

	restarted := false
	var poll func()
	poll = func() {
		if !restarted && f.link("B->C").verdictPending {
			restarted = true
			f.Detectors["B"].Restart()
			return
		}
		if !restarted && s.Now() < 4*sim.Second {
			s.Schedule(10*sim.Millisecond, poll)
		}
	}
	s.ScheduleAt(2*sim.Second, poll)
	s.Run(10 * sim.Second)

	if !restarted {
		t.Fatal("no evidence window ever opened — scenario broken")
	}
	if !hasEvent(f, EventSuppressed, "epoch-change") {
		t.Fatal("epoch advance did not purge the pending evidence window")
	}
	if f.Corr.EpochPurges == 0 {
		t.Fatalf("EpochPurges=%d, want >0", f.Corr.EpochPurges)
	}
	// The window's timer was clamped: no verdict fired over the purged
	// evidence, and the persisting failure re-localized under epoch 2.
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want [B->C] after the epoch purge", got)
	}
	if f.epochCur["B"] != 2 {
		t.Fatalf("correlator tracks epoch %d for B, want 2", f.epochCur["B"])
	}
}
