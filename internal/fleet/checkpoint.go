package fleet

// Correlator checkpoint/restart. The correlator periodically snapshots its
// evidence windows, verdicts and health bookkeeping; CrashCorrelator wipes
// the live state (and stops the management server from acknowledging
// anything, so agents observe the crash as a partition and fall back to
// degraded-mode local protection); RestartCorrelator rebuilds from the last
// checkpoint and reconciles with live telemetry — pending evidence windows
// re-open with a fresh full window, restart counters are re-read, and the
// transport-level sequence state plus the fleet-level alarm and reroute
// dedup maps guarantee no duplicate confirmed verdicts and no duplicate
// reroute accounting, while confirmed verdicts survive verbatim.

import (
	"fmt"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/verify"
)

// LinkCheckpoint is one directed link's persisted correlator record.
type LinkCheckpoint struct {
	Localized   bool
	LocalizedAt sim.Time
	Affected    []netsim.EntryID
	TreePaths   int
	Alarms      int
	Suppressed  int
	Flapping    bool
	DownTimes   []sim.Time

	VerdictPending bool
	IncidentStart  sim.Time
	Seen           []string
	Evidence       []fancy.Event

	LastHealth Health
}

// Checkpoint is a full correlator snapshot, sufficient to restart from.
type Checkpoint struct {
	Time sim.Time

	Alarms        int
	Suppressed    int
	Localizations int
	Reroutes      int

	Links map[string]LinkCheckpoint

	RestartsSeen    map[string]int
	RestartObserved map[string]sim.Time
	EpochCur        map[string]uint8
	EpochPrev       map[string]uint8
	RerouteSeen     []string

	// Seq is the management server's per-client sequencing state, so a
	// restarted correlator keeps deduplicating reports the crashed
	// incarnation already consumed.
	Seq map[string]mgmt.SeqState

	// VerifyLog and VerifyHeld persist the verified-commit gate: decided
	// commits (with their committed delta frames, replayed into a fresh
	// model on restore) and flips parked on the hold-and-retry list. Empty
	// without Config.Verify.
	VerifyLog  []VerifyDecision
	VerifyHeld []HeldReroute
}

// Checkpoint deep-copies the correlator's current state.
func (f *Fleet) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Time:            f.S.Now(),
		Alarms:          f.Alarms,
		Suppressed:      f.Suppressed,
		Localizations:   f.Localizations,
		Reroutes:        f.Reroutes,
		Links:           make(map[string]LinkCheckpoint, len(f.links)),
		RestartsSeen:    make(map[string]int, len(f.restartsSeen)),
		RestartObserved: make(map[string]sim.Time, len(f.restartObserved)),
		EpochCur:        make(map[string]uint8, len(f.epochCur)),
		EpochPrev:       make(map[string]uint8, len(f.epochPrev)),
	}
	for _, key := range f.order {
		ls := f.links[key]
		lc := LinkCheckpoint{
			Localized:      ls.localized,
			LocalizedAt:    ls.localizedAt,
			TreePaths:      ls.treePaths,
			Alarms:         ls.alarms,
			Suppressed:     ls.suppressed,
			Flapping:       ls.flapping,
			DownTimes:      append([]sim.Time(nil), ls.downTimes...),
			VerdictPending: ls.verdictPending,
			IncidentStart:  ls.incidentStart,
			Evidence:       append([]fancy.Event(nil), ls.evidence...),
			LastHealth:     ls.lastHealth,
		}
		for e := range ls.affected {
			lc.Affected = append(lc.Affected, e)
		}
		sort.Slice(lc.Affected, func(i, j int) bool { return lc.Affected[i] < lc.Affected[j] })
		for k := range ls.seen {
			lc.Seen = append(lc.Seen, k)
		}
		sort.Strings(lc.Seen)
		cp.Links[key] = lc
	}
	for sw, r := range f.restartsSeen {
		cp.RestartsSeen[sw] = r
	}
	for sw, t := range f.restartObserved {
		cp.RestartObserved[sw] = t
	}
	for sw, e := range f.epochCur {
		cp.EpochCur[sw] = e
	}
	for sw, e := range f.epochPrev {
		cp.EpochPrev[sw] = e
	}
	for k := range f.rerouteSeen {
		cp.RerouteSeen = append(cp.RerouteSeen, k)
	}
	sort.Strings(cp.RerouteSeen)
	if f.mgmtSrv != nil {
		cp.Seq = f.mgmtSrv.SeqCheckpoint()
	}
	for _, d := range f.verifyLog {
		cp.VerifyLog = append(cp.VerifyLog, VerifyDecision{
			Key: d.Key, Outcome: d.Outcome, Frame: append([]byte(nil), d.Frame...),
		})
	}
	for _, h := range f.verifyHeld {
		cp.VerifyHeld = append(cp.VerifyHeld, HeldReroute{
			LinkKey: h.ls.key, Key: h.key, Entry: h.entry, Retries: h.retries,
		})
	}
	return cp
}

func (f *Fleet) periodicCheckpoint() {
	if !f.crashed {
		f.persist()
	}
	f.ckptTimer = f.S.Schedule(f.cfg.CheckpointInterval, f.periodicCheckpoint)
}

// persist takes a checkpoint immediately. Besides the periodic cadence, the
// correlator persists on every durable state change (alarm accepted into an
// evidence window, verdict, epoch purge, reroute recorded): the transport
// acknowledges a report the moment it is consumed, so anything consumed but
// not checkpointed would be lost for good in a crash — the client never
// retransmits an acknowledged report, and a degraded-mode reroute may have
// removed the failure symptom that would otherwise re-alarm.
func (f *Fleet) persist() {
	if f.cfg.CheckpointInterval < 0 {
		return
	}
	f.lastCkpt = f.Checkpoint()
	f.Corr.Checkpoints++
	if f.replicating() {
		// Replicated mode: a persisted checkpoint is also a log entry, so
		// followers track every durable state change, not just verdicts.
		f.group.replicate(f.lastCkpt, "window", nil)
	}
}

// LastCheckpoint returns the most recent periodic checkpoint (nil before
// the first checkpoint interval elapses).
func (f *Fleet) LastCheckpoint() *Checkpoint { return f.lastCkpt }

// CrashCorrelator fails the central correlator: all in-memory state since
// the last checkpoint is lost, every pending timer and in-flight read is
// abandoned, and — over a management network — inbound reports go
// unacknowledged, so switch agents observe the crash exactly like a
// partition and engage degraded-mode local protection. Detectors and
// agents keep running throughout.
func (f *Fleet) CrashCorrelator() {
	if f.group != nil {
		f.CrashReplica(f.group.active)
		return
	}
	if f.crashed {
		return
	}
	f.crashed = true
	f.corrGen++
	f.Corr.Crashes++
	if f.mgmtSrv != nil {
		f.mgmtSrv.SetAccepting(false)
	}
	f.haltDuty()
	f.emit(Event{Time: f.S.Now(), Kind: EventCorrelatorCrash, Link: correlatorEndpoint,
		Entry: netsim.InvalidEntry})
}

// haltDuty stops every timer the current correlator incarnation owns:
// pending verdict windows, the liveness sweep and the checkpoint cadence.
// Used on crash and on leader takeover (the deposed incarnation's timers
// must not fire into the new one's state).
func (f *Fleet) haltDuty() {
	for _, key := range f.order {
		ls := f.links[key]
		if ls.verdictTimer != nil {
			ls.verdictTimer.Stop()
		}
	}
	if f.sweepTimer != nil {
		f.sweepTimer.Stop()
	}
	if f.ckptTimer != nil {
		f.ckptTimer.Stop()
	}
	if f.verifyTimer != nil {
		f.verifyTimer.Stop()
		f.verifyTimer = nil
	}
}

// resumeDuty reconciles with live telemetry and restarts the periodic
// duties after a restore: every switch's restart counter is re-read so a
// reboot during the outage suppresses cross-epoch evidence instead of
// producing a wrong verdict, then the sweep and checkpoint cadences resume.
func (f *Fleet) resumeDuty() {
	for _, sw := range f.switches {
		f.refreshRestarts(sw, nil)
	}
	f.sweepTimer = f.S.Schedule(f.cfg.SweepInterval, f.sweep)
	if f.cfg.CheckpointInterval > 0 {
		f.ckptTimer = f.S.Schedule(f.cfg.CheckpointInterval, f.periodicCheckpoint)
	}
}

// RestartCorrelator brings the correlator back from its last periodic
// checkpoint (or from scratch if none was taken) and reconciles with live
// telemetry: confirmed verdicts and the alarm/reroute dedup maps are
// restored, evidence windows that were pending at the crash re-open with a
// fresh full window, the management server resumes accepting with the
// checkpointed sequence state, and every switch's restart counter is
// re-read so reboots during the outage are not misdiagnosed.
func (f *Fleet) RestartCorrelator() {
	if f.group != nil {
		if f.group.lastCrashed >= 0 {
			f.RestartReplica(f.group.lastCrashed)
		}
		return
	}
	if !f.crashed {
		return
	}
	now := f.S.Now()
	detail := f.restoreState(f.lastCkpt)
	f.emit(Event{Time: now, Kind: EventCorrelatorRestart, Link: correlatorEndpoint,
		Entry: netsim.InvalidEntry, Detail: detail})
	f.resumeDuty()
}

// restoreState wipes the correlator state machine and overlays cp (nil
// restores from scratch): confirmed verdicts and the alarm/reroute dedup
// maps come back verbatim, evidence windows that were pending re-open with
// a fresh full window, and the management server resumes accepting with the
// checkpointed sequence state. Returns a human-readable restore summary.
func (f *Fleet) restoreState(cp *Checkpoint) string {
	// Wipe to zero state, then overlay the checkpoint.
	f.Alarms, f.Suppressed, f.Localizations, f.Reroutes = 0, 0, 0, 0
	f.restartsSeen = make(map[string]int)
	f.restartObserved = make(map[string]sim.Time)
	f.epochCur = make(map[string]uint8)
	f.epochPrev = make(map[string]uint8)
	f.rerouteSeen = make(map[string]bool)
	f.aliveSeen = make(map[string]bool)
	for _, key := range f.order {
		ls := f.links[key]
		*ls = linkState{
			dl: ls.dl, key: ls.key, port: ls.port, guard: ls.guard,
			seen:     make(map[string]bool),
			affected: make(map[netsim.EntryID]bool),
		}
	}
	if f.verifier != nil {
		// A fresh model snapshot of the live tables, with the checkpointed
		// decision log replayed on top: flips already applied at the agents
		// are in the snapshot (replay is then idempotent), and flips whose
		// command was lost in flight stay committed in the model, exactly as
		// the deposed incarnation decided them.
		f.verifier = verify.NewModel(f.Net)
		f.verifySeen = make(map[string]uint8)
		f.verifyLog = nil
		f.verifyHeld = nil
	}

	restored := 0
	if cp != nil {
		f.Alarms, f.Suppressed = cp.Alarms, cp.Suppressed
		f.Localizations, f.Reroutes = cp.Localizations, cp.Reroutes
		for sw, r := range cp.RestartsSeen {
			f.restartsSeen[sw] = r
		}
		for sw, t := range cp.RestartObserved {
			f.restartObserved[sw] = t
		}
		for sw, e := range cp.EpochCur {
			f.epochCur[sw] = e
		}
		for sw, e := range cp.EpochPrev {
			f.epochPrev[sw] = e
		}
		for _, k := range cp.RerouteSeen {
			f.rerouteSeen[k] = true
		}
		// Re-opened verdict windows are scheduled below, so the links must
		// be visited in a fixed order to keep event sequence numbers (and
		// therefore same-tick execution order) reproducible.
		linkKeys := make([]string, 0, len(cp.Links))
		for key := range cp.Links {
			linkKeys = append(linkKeys, key)
		}
		sort.Strings(linkKeys)
		for _, key := range linkKeys {
			lc := cp.Links[key]
			ls, ok := f.links[key]
			if !ok {
				continue
			}
			ls.localized = lc.Localized
			ls.localizedAt = lc.LocalizedAt
			ls.treePaths = lc.TreePaths
			ls.alarms = lc.Alarms
			ls.suppressed = lc.Suppressed
			ls.flapping = lc.Flapping
			ls.downTimes = append([]sim.Time(nil), lc.DownTimes...)
			ls.incidentStart = lc.IncidentStart
			ls.evidence = append([]fancy.Event(nil), lc.Evidence...)
			ls.lastHealth = lc.LastHealth
			for _, e := range lc.Affected {
				ls.affected[e] = true
			}
			for _, k := range lc.Seen {
				ls.seen[k] = true
			}
			if lc.VerdictPending {
				// Re-open the window in full: the crashed incarnation's
				// partial wait cannot be trusted, and a fresh window gives
				// retransmitted evidence time to land before the verdict.
				ls.verdictPending = true
				ls.verdictTimer = f.S.Schedule(f.cfg.Window, func() { f.verdict(ls) })
				restored++
			}
		}
		if f.verifier != nil {
			for _, d := range cp.VerifyLog {
				d.Frame = append([]byte(nil), d.Frame...)
				f.verifyLog = append(f.verifyLog, d)
				f.verifySeen[d.Key] = d.Outcome
				if len(d.Frame) == 0 || d.Outcome == verifyRejected {
					continue
				}
				if dd, err := verify.DecodeDelta(d.Frame); err == nil {
					f.verifier.Commit(dd)
				}
			}
			for _, h := range cp.VerifyHeld {
				if ls, ok := f.links[h.LinkKey]; ok {
					f.verifyHeld = append(f.verifyHeld,
						&heldReroute{ls: ls, key: h.Key, entry: h.Entry, retries: h.Retries})
				}
			}
		}
	}

	f.crashed = false
	f.Corr.Restores++
	f.armVerifyTimer()
	if f.mgmtSrv != nil {
		f.mgmtSrv.SetAccepting(true)
		if cp != nil && cp.Seq != nil {
			f.mgmtSrv.RestoreSeq(cp.Seq)
		}
	}
	if cp == nil {
		return "from scratch (no checkpoint)"
	}
	return fmt.Sprintf("checkpoint at %v, %d pending window(s) re-opened", cp.Time, restored)
}

// Crashed reports whether the correlator is currently down.
func (f *Fleet) Crashed() bool { return f.crashed }
