package fleet

// Replicated correlator: a Paxos-style consensus group (in the spirit of
// "Paxos Made Switch-y") whose replicated log carries full correlator
// checkpoints over the lossy management network.
//
// Design, and how it maps onto classic Multi-Paxos with a stable leader:
//
//   - Replicas "corr0".."corrN-1" are ordinary mgmt endpoints; consensus
//     messages are DgramConsensus datagrams with the wire.go encoding and
//     suffer the same loss/delay/duplication/partitions as agent traffic.
//   - Ballot numbers are partitioned by replica id (ballot b belongs to
//     replica b mod N), so two candidates can never collide on a ballot.
//     Replica 0 boots as the established leader of ballot 0.
//   - Every log entry carries a COMPLETE correlator checkpoint, so entry k
//     subsumes all entries before it. That collapses log replication, log
//     compaction and snapshotting into one mechanism: an acceptor stores
//     only its highest accepted entry, the snapshot is the last committed
//     entry, and Checkpoint.Seq carries the SeqCheckpoint transport state
//     so report dedup survives failover.
//   - The leader beats every mgmt heartbeat interval; followers feed a
//     phi-accrual detector with beat arrivals and campaign (Prepare /
//     Promise, then a fresh Accept of the best accepted entry) when
//     suspicion crosses the threshold. Followers answer beats with
//     beat-acks, which drive the leader's own per-peer phi detectors.
//   - A leader that loses its acknowledgment quorum for a grace period
//     degrades explicitly to PR 3's single-instance mode: commits apply
//     locally (checkpoint/restart semantics) until quorum returns. If the
//     leader itself dies with no electable quorum, agents get no acks,
//     go offline, and fall back to degraded-mode local protection.
//   - Exactly one replica — group.active — drives the shared Fleet state
//     machine; takeover halts the previous incarnation's timers, restores
//     from the best accepted entry and re-aims f.mgmtSrv, which excludes
//     split-brain by construction. Deposed or non-active replicas answer
//     agent traffic with redirects instead of consuming it.

import (
	"fmt"
	"sort"

	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// quorumGraceTicks is how many consecutive failed quorum checks (one per
// beat interval) a leader tolerates before declaring degraded mode.
const quorumGraceTicks = 3

// electionRetryTicks is the base number of beat intervals a candidate waits
// for promises before campaigning again with a higher ballot; each
// replica's id is added to stagger retries deterministically.
const electionRetryTicks = 5

// pendingEntry is an uncommitted proposal at the leader.
type pendingEntry struct {
	entry *logEntry
	cb    func()       // commit closure (verdict announce, reroute replay)
	acked map[int]bool // peer ids that acknowledged this index
}

// corrGroup is the replicated correlator: N replicas, one active.
type corrGroup struct {
	f        *Fleet
	n        int
	quorum   int
	replicas []*replica

	active      int // replica currently driving the Fleet state machine
	nextIndex   uint64
	commitIndex uint64
	pending     map[uint64]*pendingEntry
	quorumLost  bool // active leader is in degraded single-instance mode
	lastCrashed int  // most recently crashed replica (legacy Restart mapping)

	beat       sim.Time // leader heartbeat cadence (mgmt heartbeat interval)
	minSilence sim.Time // anti-flap floor before a follower may campaign
}

// replica is one member of the correlator group.
type replica struct {
	g    *corrGroup
	id   int
	name string
	srv  *mgmt.Server

	crashed bool

	// Acceptor state — survives a replica crash (stable storage).
	promised uint64
	acc      *logEntry // highest accepted entry

	// Leader state (volatile).
	isLeader     bool
	ballot       uint64
	lastAcked    []uint64            // per-peer highest acknowledged index
	peerPhi      []*mgmt.PhiDetector // per-peer liveness from acks
	quorumMisses int

	// Follower/candidate state (volatile).
	leaderBallot  uint64 // highest leader ballot observed
	leaderPhi     *mgmt.PhiDetector
	campaign      uint64 // my candidate ballot, 0 when not campaigning
	campaignTicks int
	promises      map[int]*consMsg

	tickTimer *sim.Timer
}

// newCorrGroup builds the replica group over the fleet's management
// network. Replica 0 starts as the leader of ballot 0; ticks are staggered
// by replica id so same-tick elections resolve deterministically.
func newCorrGroup(f *Fleet, n int, onReport func(string, uint64, any)) *corrGroup {
	g := &corrGroup{
		f: f, n: n, quorum: n/2 + 1,
		pending:     make(map[uint64]*pendingEntry),
		lastCrashed: -1,
	}
	cfg := f.mgmtNet.Config()
	g.beat = cfg.HeartbeatInterval
	g.minSilence = cfg.UnreachableAfter
	for i := 0; i < n; i++ {
		r := &replica{
			g: g, id: i, name: fmt.Sprintf("corr%d", i),
			lastAcked: make([]uint64, n),
			peerPhi:   make([]*mgmt.PhiDetector, n),
			leaderPhi: cfg.NewPhi(),
		}
		for j := 0; j < n; j++ {
			r.peerPhi[j] = cfg.NewPhi()
		}
		r.srv = mgmt.NewServer(f.S, f.mgmtNet, r.name)
		r.srv.OnReport = onReport
		r.srv.Intercept = r.intercept
		g.replicas = append(g.replicas, r)
	}
	g.replicas[0].isLeader = true
	for i, r := range g.replicas {
		r := r
		r.tickTimer = f.S.Schedule(g.beat+sim.Time(i)*(g.beat/4+1), r.tick)
	}
	return g
}

// leader returns the active replica if it currently leads (nil while the
// fleet is between leaders or the active replica is down).
func (g *corrGroup) leader() *replica {
	r := g.replicas[g.active]
	if r.isLeader && !r.crashed {
		return r
	}
	return nil
}

// replicating reports whether verdict and reroute commits should travel the
// log: a live active leader with its quorum intact.
func (f *Fleet) replicating() bool {
	return f.group != nil && !f.group.quorumLost && !f.crashed && f.group.leader() != nil
}

// propose persists the current state as a replicated log entry whose commit
// runs cb. Callers must hold f.replicating(); if checkpointing is disabled
// the effects commit locally, single-instance style.
func (f *Fleet) propose(note string, cb func()) {
	if f.cfg.CheckpointInterval < 0 {
		if cb != nil {
			cb()
		}
		return
	}
	f.lastCkpt = f.Checkpoint()
	f.Corr.Checkpoints++
	f.group.replicate(f.lastCkpt, note, cb)
}

// replicate appends cp to the log and sends Accepts; cb runs at quorum.
// Without a leading quorum the commit applies immediately (degraded
// single-instance mode, PR 3 semantics).
func (g *corrGroup) replicate(cp *Checkpoint, note string, cb func()) {
	r := g.leader()
	if r == nil || g.quorumLost {
		if cb != nil {
			cb()
		}
		return
	}
	g.nextIndex++
	e := &logEntry{Index: g.nextIndex, Ballot: r.ballot, Note: note, Cp: cp}
	r.acc = e // self-accept
	g.pending[e.Index] = &pendingEntry{entry: e, cb: cb, acked: make(map[int]bool)}
	for j := 0; j < g.n; j++ {
		if j != r.id {
			r.sendTo(j, &consMsg{Kind: consAccept, Ballot: r.ballot, Index: e.Index, Entry: e})
		}
	}
}

// sendTo ships one consensus message to a peer over the lossy channel.
func (r *replica) sendTo(peer int, m *consMsg) {
	m.From = uint8(r.id)
	r.g.f.mgmtNet.Send(mgmt.Dgram{
		From: r.name, To: r.g.replicas[peer].name,
		Kind: mgmt.DgramConsensus, Payload: encodeConsensus(m),
	})
}

// intercept sees every datagram reaching this replica's server: consensus
// traffic is consumed here, and agent traffic reaching a non-active replica
// is answered with a redirect to the believed leader.
func (r *replica) intercept(d mgmt.Dgram) bool {
	switch d.Kind {
	case mgmt.DgramConsensus:
		b, ok := d.Payload.([]byte)
		if !ok {
			r.g.f.Corr.WireRejects++
			return true
		}
		m, err := decodeConsensus(b)
		if err != nil {
			r.g.f.Corr.WireRejects++
			return true
		}
		r.handle(m, int(m.From))
		return true
	case mgmt.DgramReport, mgmt.DgramHeartbeat:
		if r.g.active == r.id && !r.g.f.crashed {
			return false // I am the leader: serve it normally
		}
		r.g.f.mgmtNet.Send(mgmt.Dgram{From: r.name, To: d.From, Kind: mgmt.DgramRedirect,
			Seq: d.Seq, Payload: r.leaderHint()})
		return true
	}
	return false
}

// leaderHint names the replica agent traffic should be re-aimed at, or ""
// while this replica itself doubts who leads (mid-election or suspicious).
func (r *replica) leaderHint() string {
	now := r.g.f.S.Now()
	if r.isLeader {
		return r.name
	}
	if r.campaign != 0 || r.leaderPhi.Suspect(now) {
		return ""
	}
	return r.g.replicas[int(r.leaderBallot)%r.g.n].name
}

// tick is a replica's periodic duty: leaders beat peers and audit their
// quorum, followers audit the leader and campaign on suspicion.
func (r *replica) tick() {
	r.tickTimer = r.g.f.S.Schedule(r.g.beat, r.tick)
	if r.crashed {
		return
	}
	now := r.g.f.S.Now()
	if r.isLeader {
		r.beatPeers()
		if r.g.active == r.id {
			// Only the replica actually driving the fleet audits the
			// quorum: a deposed leader that has not yet heard the new
			// ballot must not flush the new leader's pending commits.
			r.checkQuorum(now)
		}
		return
	}
	r.checkLeader(now)
}

// beatPeers sends the leader heartbeat, retransmitting the latest accepted
// entry to any peer whose acknowledged index lags it (loss repair and
// crash-rejoin catch-up share this one path).
func (r *replica) beatPeers() {
	g := r.g
	for j := 0; j < g.n; j++ {
		if j == r.id {
			continue
		}
		m := &consMsg{Kind: consBeat, Ballot: r.ballot, Index: g.commitIndex}
		if r.acc != nil && r.lastAcked[j] < r.acc.Index {
			m.Entry = r.acc
		}
		r.sendTo(j, m)
	}
}

// checkQuorum counts peers whose acks still look alive; sustained loss of
// the majority flips the group into degraded single-instance mode, and its
// return flips it back (with a fresh entry to catch followers up).
func (r *replica) checkQuorum(now sim.Time) {
	g := r.g
	alive := 1 // self
	for j := 0; j < g.n; j++ {
		if j != r.id && !r.peerPhi[j].Suspect(now) {
			alive++
		}
	}
	if alive >= g.quorum {
		r.quorumMisses = 0
		if g.quorumLost {
			g.quorumLost = false
			g.f.emit(Event{Time: now, Kind: EventQuorumRestored, Link: r.name,
				Entry:  netsim.InvalidEntry,
				Detail: fmt.Sprintf("%d/%d replicas reachable, resuming replicated commits", alive, g.n)})
			g.f.persist() // fresh entry resyncs followers
		}
		return
	}
	r.quorumMisses++
	if !g.quorumLost && r.quorumMisses >= quorumGraceTicks {
		g.quorumLost = true
		g.f.Corr.QuorumLosses++
		g.f.emit(Event{Time: now, Kind: EventQuorumLost, Link: r.name,
			Entry:  netsim.InvalidEntry,
			Detail: fmt.Sprintf("%d/%d replicas reachable, degrading to single-instance checkpoints", alive, g.n)})
		g.flushPending()
	}
}

// flushPending commits every outstanding proposal locally, in index order:
// degraded mode inherits PR 3's semantics, where a persisted checkpoint is
// the commit.
func (g *corrGroup) flushPending() {
	for _, idx := range g.pendingIndexes() {
		p := g.pending[idx]
		delete(g.pending, idx)
		if idx > g.commitIndex {
			g.commitIndex = idx
		}
		if p.cb != nil {
			p.cb()
		}
	}
}

// pendingIndexes returns the outstanding proposal indexes in ascending
// order (map iteration order must never reach commit order).
func (g *corrGroup) pendingIndexes() []uint64 {
	idxs := make([]uint64, 0, len(g.pending))
	for idx := range g.pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// checkLeader is the follower side: feed suspicion, campaign when the
// leader's beats stop looking alive, and retry stalled campaigns with a
// fresh ballot after an id-staggered timeout.
func (r *replica) checkLeader(now sim.Time) {
	if r.campaign != 0 {
		r.campaignTicks++
		if r.campaignTicks >= electionRetryTicks+r.id {
			r.startCampaign()
		}
		return
	}
	if int(r.leaderBallot)%r.g.n == r.id {
		// I own the current ballot but am not leading — a restarted old
		// leader. Campaign for a fresh ballot rather than squat.
		r.startCampaign()
		return
	}
	if !r.leaderPhi.Suspect(now) {
		return
	}
	// Anti-flap floor: phi crossing the threshold is necessary but not
	// sufficient. On a freshly-warmed window of near-constant beat gaps a
	// single lost datagram looks astronomically suspicious, so an election
	// additionally requires silence past the bootstrap horizon — phi then
	// governs how far past it suspicion stretches under observed jitter.
	if last, heard := r.leaderPhi.LastSeen(); heard && now-last < r.g.minSilence {
		return
	}
	r.startCampaign()
}

// startCampaign opens (or re-opens) an election with a ballot strictly
// above everything this replica has seen, from its own id's ballot class.
func (r *replica) startCampaign() {
	g := r.g
	maxSeen := r.promised
	if r.leaderBallot > maxSeen {
		maxSeen = r.leaderBallot
	}
	if r.campaign > maxSeen {
		maxSeen = r.campaign
	}
	b := (maxSeen/uint64(g.n)+1)*uint64(g.n) + uint64(r.id)
	r.campaign = b
	r.campaignTicks = 0
	r.promises = make(map[int]*consMsg)
	g.f.Corr.Elections++
	if b > r.promised {
		r.promised = b // self-promise
	}
	for j := 0; j < g.n; j++ {
		if j != r.id {
			r.sendTo(j, &consMsg{Kind: consPrepare, Ballot: b})
		}
	}
}

// handle processes one decoded consensus message.
func (r *replica) handle(m *consMsg, from int) {
	if from < 0 || from >= r.g.n || from == r.id {
		r.g.f.Corr.WireRejects++
		return
	}
	now := r.g.f.S.Now()
	switch m.Kind {
	case consPrepare:
		if m.Ballot < r.promised {
			r.sendTo(from, &consMsg{Kind: consNack, Ballot: r.promised})
			return
		}
		r.promised = m.Ballot
		if r.isLeader && m.Ballot > r.ballot {
			r.stepDown()
		}
		p := &consMsg{Kind: consPromise, Ballot: m.Ballot}
		if r.acc != nil {
			p.AccBallot = r.acc.Ballot
			p.Index = r.acc.Index
			p.Entry = r.acc
		}
		r.sendTo(from, p)

	case consPromise:
		if r.campaign == 0 || m.Ballot != r.campaign {
			return
		}
		r.promises[from] = m
		if len(r.promises)+1 >= r.g.quorum {
			r.win(now)
		}

	case consAccept:
		if m.Ballot < r.promised {
			r.sendTo(from, &consMsg{Kind: consNack, Ballot: r.promised})
			return
		}
		r.promised = m.Ballot
		if r.isLeader && m.Ballot > r.ballot {
			r.stepDown()
		}
		r.observeLeader(m.Ballot, now)
		if m.Entry != nil && (r.acc == nil || m.Entry.Index > r.acc.Index ||
			(m.Entry.Index == r.acc.Index && m.Entry.Ballot >= r.acc.Ballot)) {
			r.acc = m.Entry
		}
		ackIdx := uint64(0)
		if r.acc != nil {
			ackIdx = r.acc.Index
		}
		r.sendTo(from, &consMsg{Kind: consAccepted, Ballot: m.Ballot, Index: ackIdx})

	case consAccepted:
		if !r.isLeader || m.Ballot != r.ballot || r.g.active != r.id {
			return
		}
		r.ackFrom(from, m.Index, now)

	case consNack:
		if r.campaign != 0 && m.Ballot > r.campaign {
			r.campaign = 0
			r.promises = nil
		}
		if m.Ballot > r.promised {
			r.promised = m.Ballot
		}
		if r.isLeader && m.Ballot > r.ballot {
			r.stepDown()
		}

	case consBeat:
		if int(m.Ballot)%r.g.n == from {
			// A leader's beat.
			if m.Ballot < r.promised {
				r.sendTo(from, &consMsg{Kind: consNack, Ballot: r.promised})
				return
			}
			r.promised = m.Ballot
			if r.isLeader && from != r.id {
				r.stepDown() // equal-or-higher ballot from a peer: not mine
			}
			r.observeLeader(m.Ballot, now)
			if m.Entry != nil && (r.acc == nil || m.Entry.Index > r.acc.Index) {
				r.acc = m.Entry
			}
			ackIdx := uint64(0)
			if r.acc != nil {
				ackIdx = r.acc.Index
			}
			r.sendTo(from, &consMsg{Kind: consBeat, Ballot: m.Ballot, Index: ackIdx})
			return
		}
		// A follower's beat-ack.
		if r.isLeader && m.Ballot == r.ballot && r.g.active == r.id {
			r.ackFrom(from, m.Index, now)
		}
	}
}

// observeLeader records a sign of life from the ballot's owner, resetting
// the suspicion window when leadership changes hands.
func (r *replica) observeLeader(ballot uint64, now sim.Time) {
	if ballot != r.leaderBallot {
		r.leaderBallot = ballot
		r.leaderPhi.Reset(now)
		if r.campaign != 0 && ballot >= r.campaign {
			r.campaign = 0
			r.promises = nil
		}
	}
	r.leaderPhi.Observe(now)
}

// ackFrom advances a peer's acknowledged index at the leader and commits
// every pending entry the quorum now covers, in index order.
func (r *replica) ackFrom(from int, idx uint64, now sim.Time) {
	g := r.g
	r.peerPhi[from].Observe(now)
	if idx > r.lastAcked[from] {
		r.lastAcked[from] = idx
	}
	frontier := uint64(0)
	for _, i := range g.pendingIndexes() {
		if i <= idx {
			g.pending[i].acked[from] = true
		}
		if len(g.pending[i].acked)+1 >= g.quorum && i > frontier {
			frontier = i
		}
	}
	if frontier == 0 {
		return
	}
	// Entry `frontier` carries a checkpoint subsuming everything below it,
	// so all lower pending entries commit with it.
	for _, i := range g.pendingIndexes() {
		if i > frontier {
			break
		}
		p := g.pending[i]
		delete(g.pending, i)
		if i > g.commitIndex {
			g.commitIndex = i
		}
		if p.cb != nil {
			p.cb()
		}
	}
}

// stepDown demotes a deposed leader to follower. If it was still the
// active replica its outstanding commit closures are dropped: their state
// rides the checkpoints the new leader recovers, and announcePending
// re-derives the external effects. A deposed ex-leader that already lost
// the active role must not touch its successor's pending commits.
func (r *replica) stepDown() {
	r.isLeader = false
	r.quorumMisses = 0
	if r.g.active == r.id {
		r.g.quorumLost = false
		r.g.pending = make(map[uint64]*pendingEntry)
	}
}

// win completes an election: adopt the best accepted entry the promise
// quorum reported (Paxos's value-choice rule, with full-checkpoint entries
// compared by index then ballot) and take over the fleet state machine.
func (r *replica) win(now sim.Time) {
	g := r.g
	b := r.campaign
	r.campaign = 0
	r.campaignTicks = 0
	r.isLeader = true
	r.ballot = b
	r.leaderBallot = b
	for j := 0; j < g.n; j++ {
		r.peerPhi[j].Reset(now) // grace: quorum audit restarts from here
		r.lastAcked[j] = 0
	}
	r.quorumMisses = 0
	best := r.acc
	for j := 0; j < g.n; j++ {
		pm, ok := r.promises[j]
		if !ok || pm.Entry == nil {
			continue
		}
		if best == nil || pm.Entry.Index > best.Index ||
			(pm.Entry.Index == best.Index && pm.Entry.Ballot > best.Ballot) {
			best = pm.Entry
		}
	}
	r.promises = nil
	g.takeover(r, best)
}

// takeover switches the fleet state machine to a newly elected leader: the
// previous incarnation's timers are halted, state is restored from the best
// accepted entry's checkpoint, the transport sequence state follows it to
// the new server, and verdicts the dead leader confirmed but never
// announced are finished.
func (g *corrGroup) takeover(r *replica, best *logEntry) {
	f := g.f
	now := f.S.Now()
	g.active = r.id
	g.quorumLost = false
	g.pending = make(map[uint64]*pendingEntry)
	if best != nil {
		r.acc = best
		if best.Index >= g.nextIndex {
			g.nextIndex = best.Index
		}
		if best.Index > g.commitIndex {
			// The entry had been accepted somewhere; re-proposing it as our
			// fresh checkpoint below re-commits it under the new ballot.
			g.commitIndex = best.Index
		}
		f.lastCkpt = best.Cp
	}
	f.corrGen++
	f.haltDuty()
	f.mgmtSrv = r.srv
	f.Corr.Failovers++
	cp := f.lastCkpt
	detail := f.restoreState(cp)
	f.emit(Event{Time: now, Kind: EventLeaderElected, Link: r.name,
		Entry: netsim.InvalidEntry, Detail: fmt.Sprintf("ballot %d, %s", r.ballot, detail)})
	f.announcePending()
	f.resumeDuty()
	f.persist() // replicate the recovered state under the new ballot
}

// CrashReplica fails one correlator replica. Crashing the active replica is
// a correlator outage (agents observe silence, followers elect); crashing a
// follower only thins the quorum. Acceptor state (promised ballot, accepted
// entry) survives, as Paxos requires of stable storage.
func (f *Fleet) CrashReplica(id int) {
	g := f.group
	if g == nil || id < 0 || id >= g.n {
		return
	}
	r := g.replicas[id]
	if r.crashed {
		return
	}
	r.crashed = true
	g.lastCrashed = id
	r.srv.SetAccepting(false)
	r.campaign = 0
	r.promises = nil
	f.Corr.Crashes++
	detail := "follower replica"
	if id == g.active {
		detail = "active leader"
		f.crashed = true
		f.corrGen++
		f.haltDuty()
	}
	f.emit(Event{Time: f.S.Now(), Kind: EventCorrelatorCrash, Link: r.name,
		Entry: netsim.InvalidEntry, Detail: detail})
}

// RestartReplica brings a crashed replica back. A restarted non-active
// replica rejoins as a follower and catches up from the leader's beats; the
// active replica restarting with no successor elected restores from its
// last checkpoint exactly like the single-instance path.
func (f *Fleet) RestartReplica(id int) {
	g := f.group
	if g == nil || id < 0 || id >= g.n {
		return
	}
	r := g.replicas[id]
	if !r.crashed {
		return
	}
	now := f.S.Now()
	r.crashed = false
	r.srv.SetAccepting(true)
	r.leaderPhi.Reset(now)
	if id == g.active && f.crashed {
		// Nobody took over while we were down: single-instance recovery.
		detail := f.restoreState(f.lastCkpt)
		f.emit(Event{Time: now, Kind: EventCorrelatorRestart, Link: r.name,
			Entry: netsim.InvalidEntry, Detail: detail})
		f.resumeDuty()
		return
	}
	r.isLeader = false
	f.emit(Event{Time: now, Kind: EventCorrelatorRestart, Link: r.name,
		Entry: netsim.InvalidEntry, Detail: "rejoined as follower"})
}

// KillLeader crashes whichever replica currently drives the fleet (the
// failover drill), returning its id; -1 without a replica group.
func (f *Fleet) KillLeader() int {
	if f.group == nil {
		return -1
	}
	id := f.group.active
	f.CrashReplica(id)
	return id
}

// Leader returns the name of the replica currently driving the fleet (the
// single-instance endpoint name in legacy mode).
func (f *Fleet) Leader() string {
	if f.group == nil {
		return correlatorEndpoint
	}
	return f.group.replicas[f.group.active].name
}

// QuorumDegraded reports whether the active leader is running without its
// acknowledgment quorum (explicit single-instance degraded mode).
func (f *Fleet) QuorumDegraded() bool { return f.group != nil && f.group.quorumLost }
