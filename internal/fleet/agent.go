package fleet

// The switch agent is the on-device half of the fleet control plane: it
// owns the switch's telemetry server and reroute applications, forwards
// detector events to the correlator as epoch-stamped reports, serves the
// correlator's telemetry reads and gating commands, and — when the
// management plane cuts it off — falls back to degraded-mode local
// protection, the paper-level per-link reroute that needs no correlator.

import (
	"fmt"

	"fancy/internal/fancy"
	"fancy/internal/hh"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/sim"
	"fancy/internal/telemetry"
)

// eventReport carries one detector event to the correlator, stamped with
// the emitting detector's epoch so the correlator can recognize reports
// from a pre-restart incarnation that the management network delivered
// late (stale-epoch guard).
type eventReport struct {
	Epoch uint8
	Ev    fancy.Event
}

// rerouteReport tells the correlator an entry flipped to its backup next
// hop, either under correlator gating or autonomously in degraded mode.
type rerouteReport struct {
	Port     int
	Entry    netsim.EntryID
	At       sim.Time
	Degraded bool
}

// reconcileReport is the agent's handback after a partition heals: how long
// it protected autonomously and how many local reroutes it performed (the
// individual rerouteReports travel separately, in sequence).
type reconcileReport struct {
	Since    sim.Time
	Reroutes int
}

// getReq is the correlator's RPC read of a telemetry path.
type getReq struct {
	Path string
}

// rerouteCmd is the correlator's gating command: replay one piece of
// confirmed evidence into the switch's reroute application.
type rerouteCmd struct {
	Port int
	Ev   fancy.Event
}

// divertCmd is the verified gate's per-entry commit: flip exactly this
// entry to its (already safe-checked) backup next hop.
type divertCmd struct {
	Port  int
	Entry netsim.EntryID
}

// repairCmd is the gate's repair commit: rewrite the entry's backup next
// hop to the verified alternate, then flip. Also used to re-issue logged
// decisions after a failover (idempotent either way).
type repairCmd struct {
	Port   int
	Entry  netsim.EntryID
	Backup int
}

// switchAgent is one switch's management endpoint.
type switchAgent struct {
	f    *Fleet
	sw   string
	srv  *telemetry.Server
	apps map[int]*reroute.App

	client *mgmt.Client // nil in legacy in-process mode

	degraded      bool
	degradedSince sim.Time
	localReroutes int // reroutes performed during the current degraded spell

	// Engagements counts offline→degraded transitions, for reporting.
	engagements uint64

	// Heavy-hitter allocation loop (populated only with Config.HH).
	hhAlloc map[int]*hh.Allocator // per monitored port
	hhStats hhAllocStats
}

func newSwitchAgent(f *Fleet, sw string, srv *telemetry.Server) *switchAgent {
	a := &switchAgent{f: f, sw: sw, srv: srv, apps: make(map[int]*reroute.App),
		hhAlloc: make(map[int]*hh.Allocator)}
	if f.mgmtNet != nil {
		target := correlatorEndpoint
		if f.group != nil {
			target = f.group.replicas[0].name
		}
		a.client = mgmt.NewClient(f.S, f.mgmtNet, sw, target)
		if f.group != nil {
			// Leader discovery: the agent knows every replica endpoint and
			// rotates through them on silence; redirects re-aim it directly.
			eps := make([]string, f.group.n)
			for i, r := range f.group.replicas {
				eps[i] = r.name
			}
			a.client.SetEndpoints(eps)
		}
		a.client.OnOnline = a.onOnline
		a.client.OnCall = a.onCall
	}
	return a
}

// onDetectorEvent receives every event of this switch's detector (already
// published through the telemetry server) and ships it to the correlator.
// In degraded mode the event is also fed straight into the local reroute
// applications: protection must not wait out a partition.
func (a *switchAgent) onDetectorEvent(ev fancy.Event) {
	if a.degraded {
		if app, ok := a.apps[ev.Port]; ok {
			app.HandleEvent(ev)
		}
	}
	a.send(eventReport{Epoch: a.f.Detectors[a.sw].Epoch(), Ev: ev})
}

// send ships one report to the correlator: over the management network when
// one is configured, synchronously otherwise.
func (a *switchAgent) send(payload any) {
	if a.client != nil {
		a.client.Send(payload)
		return
	}
	a.f.handleReport(a.sw, payload)
}

// onOnline tracks management-plane connectivity. The false edge engages
// degraded-mode local protection; the true edge hands control back to the
// correlator and reconciles.
func (a *switchAgent) onOnline(online bool) {
	if !online {
		if !a.degraded {
			a.degraded = true
			a.degradedSince = a.f.S.Now()
			a.localReroutes = 0
			a.engagements++
		}
		return
	}
	if a.degraded {
		a.degraded = false
		a.send(reconcileReport{Since: a.degradedSince, Reroutes: a.localReroutes})
	}
}

// onCall serves the correlator's RPCs: telemetry reads and gating commands.
func (a *switchAgent) onCall(req any) (any, error) {
	switch r := req.(type) {
	case getReq:
		return a.srv.Get(r.Path)
	case rerouteCmd:
		if app, ok := a.apps[r.Port]; ok {
			app.HandleEvent(r.Ev)
		}
		return true, nil
	case divertCmd:
		if app, ok := a.apps[r.Port]; ok {
			app.Divert(r.Entry)
		}
		return true, nil
	case repairCmd:
		if app, ok := a.apps[r.Port]; ok {
			if app.SetBackup(r.Entry, r.Backup) {
				app.Divert(r.Entry)
			}
		}
		return true, nil
	}
	return nil, fmt.Errorf("fleet: unknown agent call %T", req)
}

// onLocalReroute observes a reroute application diverting an entry (whether
// commanded by the correlator or autonomous) and reports it upstream; in
// degraded mode the report spools until the partition heals.
func (a *switchAgent) onLocalReroute(port int, entry netsim.EntryID, at sim.Time) {
	if a.degraded {
		a.localReroutes++
	}
	a.send(rerouteReport{Port: port, Entry: entry, At: at, Degraded: a.degraded})
}

// command delivers a correlator gating command (rerouteCmd, divertCmd or
// repairCmd) to this agent: direct in legacy mode, a hardened RPC over the
// management plane otherwise.
func (f *Fleet) command(sw string, cmd any) {
	a := f.agents[sw]
	if a.client == nil {
		a.onCall(cmd) //nolint:errcheck // gating commands cannot fail
		return
	}
	f.mgmtSrv.Call(sw, cmd, func(_ any, err error) {
		if err != nil {
			f.Corr.RerouteCmdFails++
		}
	})
}

// remoteGet reads a telemetry path of sw: synchronous in legacy mode, a
// hardened RPC (timeout, bounded retries, backoff + jitter) otherwise. cb
// fires exactly once either way.
func (f *Fleet) remoteGet(sw, path string, cb func(any, error)) {
	a := f.agents[sw]
	if a.client == nil {
		v, err := f.Telemetry[sw].Get(path)
		cb(v, err)
		return
	}
	f.mgmtSrv.Call(sw, getReq{Path: path}, cb)
}
