package fleet

// Deterministic binary wire format for the replicated-log consensus
// messages exchanged between correlator replicas over the management
// network (mgmt.DgramConsensus payloads).
//
// The in-process simulator could pass structs by pointer, but real replicas
// exchange bytes — and bytes are what a fuzzer can attack. Encoding is
// canonical: integers are varints (zigzag for signed), strings are
// length-prefixed, maps are emitted in sorted key order, and absent
// optionals are a zero flag byte — so identical states produce identical
// bytes regardless of map iteration order, which same-seed transcript
// determinism requires. Decoding is defensive: every length prefix is
// bounds-checked against the remaining input before allocation, so
// arbitrary input can produce an error but never a panic or a
// multi-gigabyte allocation (see FuzzDecodeConsensus).

import (
	"encoding/binary"
	"errors"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/verify"
)

// errWire rejects malformed consensus bytes.
var errWire = errors.New("fleet: malformed consensus message")

// wireVersion guards against cross-version replica traffic.
const wireVersion = 1

// consKind tags a consensus message.
type consKind uint8

// Consensus message kinds: the Paxos prepare/promise election pair, the
// accept/accepted replication pair, the stale-ballot nack, and the leader
// beat that carries the commit frontier.
const (
	consPrepare consKind = iota
	consPromise
	consAccept
	consAccepted
	consNack
	consBeat
)

func (k consKind) String() string {
	switch k {
	case consPrepare:
		return "prepare"
	case consPromise:
		return "promise"
	case consAccept:
		return "accept"
	case consAccepted:
		return "accepted"
	case consNack:
		return "nack"
	case consBeat:
		return "beat"
	}
	return "unknown"
}

// logEntry is one replicated-log record. Every entry carries a complete
// correlator checkpoint: committing entry k therefore subsumes every entry
// before it, which is the log's built-in compaction — an acceptor persists
// only its highest accepted entry, and the snapshot is the last committed
// entry (Checkpoint.Seq already embeds the management server's SeqCheckpoint
// state, so transport-level dedup survives failover too).
type logEntry struct {
	Index  uint64 // log position, 1-based
	Ballot uint64 // ballot under which the entry was proposed
	Note   string // human-readable trigger ("verdict seattle>sunnyvale", ...)
	Cp     *Checkpoint
}

// consMsg is one consensus datagram payload.
type consMsg struct {
	Kind   consKind
	From   uint8  // sender replica id
	Ballot uint64 // sender's ballot (prepare/accept) or promised ballot (nack)
	Index  uint64 // accepted/commit index, per kind
	// AccBallot is, in a promise, the ballot of the accepted entry being
	// reported back to the candidate (0 = none).
	AccBallot uint64
	Entry     *logEntry // accept payload, promise report, beat retransmit
}

// --- encoder ---

type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64)    { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) i64(v int64)     { w.b = binary.AppendVarint(w.b, v) }
func (w *wbuf) time(t sim.Time) { w.i64(int64(t)) }
func (w *wbuf) byte(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) bool(v bool) {
	if v {
		w.byte(1)
	} else {
		w.byte(0)
	}
}
func (w *wbuf) str(s string) {
	w.u64(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// encodeConsensus serializes a consensus message canonically.
func encodeConsensus(m *consMsg) []byte {
	w := &wbuf{b: make([]byte, 0, 64)}
	w.byte(wireVersion)
	w.byte(byte(m.Kind))
	w.byte(m.From)
	w.u64(m.Ballot)
	w.u64(m.Index)
	w.u64(m.AccBallot)
	if m.Entry == nil {
		w.bool(false)
	} else {
		w.bool(true)
		encodeEntry(w, m.Entry)
	}
	return w.b
}

func encodeEntry(w *wbuf, e *logEntry) {
	w.u64(e.Index)
	w.u64(e.Ballot)
	w.str(e.Note)
	if e.Cp == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	encodeCheckpoint(w, e.Cp)
}

func encodeCheckpoint(w *wbuf, cp *Checkpoint) {
	w.time(cp.Time)
	w.i64(int64(cp.Alarms))
	w.i64(int64(cp.Suppressed))
	w.i64(int64(cp.Localizations))
	w.i64(int64(cp.Reroutes))

	w.u64(uint64(len(cp.Links)))
	for _, key := range sortedKeys(cp.Links) {
		w.str(key)
		encodeLink(w, cp.Links[key])
	}

	w.u64(uint64(len(cp.RestartsSeen)))
	for _, sw := range sortedKeys(cp.RestartsSeen) {
		w.str(sw)
		w.i64(int64(cp.RestartsSeen[sw]))
	}
	w.u64(uint64(len(cp.RestartObserved)))
	for _, sw := range sortedKeys(cp.RestartObserved) {
		w.str(sw)
		w.time(cp.RestartObserved[sw])
	}
	w.u64(uint64(len(cp.EpochCur)))
	for _, sw := range sortedKeys(cp.EpochCur) {
		w.str(sw)
		w.byte(cp.EpochCur[sw])
	}
	w.u64(uint64(len(cp.EpochPrev)))
	for _, sw := range sortedKeys(cp.EpochPrev) {
		w.str(sw)
		w.byte(cp.EpochPrev[sw])
	}
	w.strs(cp.RerouteSeen)

	w.u64(uint64(len(cp.Seq)))
	for _, name := range sortedKeys(cp.Seq) {
		st := cp.Seq[name]
		w.str(name)
		w.u64(st.Contig)
		w.u64(uint64(len(st.Above)))
		for _, s := range st.Above {
			w.u64(s)
		}
	}

	w.u64(uint64(len(cp.VerifyLog)))
	for _, d := range cp.VerifyLog {
		w.str(d.Key)
		w.byte(d.Outcome)
		w.u64(uint64(len(d.Frame)))
		w.b = append(w.b, d.Frame...)
	}
	w.u64(uint64(len(cp.VerifyHeld)))
	for _, h := range cp.VerifyHeld {
		w.str(h.LinkKey)
		w.str(h.Key)
		w.u64(uint64(h.Entry))
		w.i64(int64(h.Retries))
	}
}

func encodeLink(w *wbuf, lc LinkCheckpoint) {
	w.bool(lc.Localized)
	w.time(lc.LocalizedAt)
	w.u64(uint64(len(lc.Affected)))
	for _, e := range lc.Affected {
		w.u64(uint64(e))
	}
	w.i64(int64(lc.TreePaths))
	w.i64(int64(lc.Alarms))
	w.i64(int64(lc.Suppressed))
	w.bool(lc.Flapping)
	w.u64(uint64(len(lc.DownTimes)))
	for _, t := range lc.DownTimes {
		w.time(t)
	}
	w.bool(lc.VerdictPending)
	w.time(lc.IncidentStart)
	w.strs(lc.Seen)
	w.u64(uint64(len(lc.Evidence)))
	for _, ev := range lc.Evidence {
		encodeEvidence(w, ev)
	}
	w.byte(byte(lc.LastHealth))
}

func encodeEvidence(w *wbuf, ev fancy.Event) {
	w.time(ev.Time)
	w.i64(int64(ev.Port))
	w.byte(byte(ev.Kind))
	w.u64(uint64(ev.Entry))
	w.u64(uint64(len(ev.Path)))
	for _, p := range ev.Path {
		w.u64(uint64(p))
	}
	w.u64(ev.Diff)
}

// sortedKeys returns a map's keys in sorted order (canonical encoding).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- decoder ---

type rbuf struct {
	b   []byte
	bad bool
}

func (r *rbuf) fail() { r.bad = true }

func (r *rbuf) u64() uint64 {
	v, n := binary.Uvarint(r.b)
	// n <= 0 is truncation/overflow; a zero final byte of a multi-byte
	// varint is a non-minimal encoding our encoder never produces —
	// rejecting it keeps "valid input" and "canonical input" the same set.
	if n <= 0 || (n > 1 && r.b[n-1] == 0) {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *rbuf) i64() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 || (n > 1 && r.b[n-1] == 0) {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// u32 and u16 read range-checked narrow integers (a wider value would
// silently truncate and break canonical re-encoding).
func (r *rbuf) u32() uint32 {
	v := r.u64()
	if v > 0xffffffff {
		r.fail()
		return 0
	}
	return uint32(v)
}

func (r *rbuf) u16() uint16 {
	v := r.u64()
	if v > 0xffff {
		r.fail()
		return 0
	}
	return uint16(v)
}

func (r *rbuf) time() sim.Time { return sim.Time(r.i64()) }

func (r *rbuf) byte() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) bool() bool {
	switch r.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail() // non-canonical flag byte
		return false
	}
}

// count reads a length prefix and bounds it by the remaining input (every
// element costs at least one byte), so hostile prefixes cannot drive a
// huge allocation.
func (r *rbuf) count() int {
	v := r.u64()
	if r.bad || v > uint64(len(r.b)) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *rbuf) str() string {
	n := r.count()
	if r.bad {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// strs reads a sorted unique string set (Seen, RerouteSeen): the encoder
// always emits these sorted, so an out-of-order or duplicate element marks
// forged input.
func (r *rbuf) strs() []string {
	n := r.count()
	if r.bad || n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && !r.bad; i++ {
		s := r.str()
		if i > 0 && s <= out[i-1] {
			r.fail()
			return nil
		}
		out = append(out, s)
	}
	return out
}

// key reads one sorted-map key, enforcing strictly ascending order against
// the previous key (duplicates and shuffles are non-canonical).
func (r *rbuf) key(i int, prev string) string {
	k := r.str()
	if i > 0 && k <= prev {
		r.fail()
	}
	return k
}

// decodeConsensus parses a consensus message, rejecting malformed or
// trailing bytes.
func decodeConsensus(b []byte) (*consMsg, error) {
	r := &rbuf{b: b}
	if r.byte() != wireVersion {
		return nil, errWire
	}
	m := &consMsg{}
	k := r.byte()
	if consKind(k) > consBeat {
		return nil, errWire
	}
	m.Kind = consKind(k)
	m.From = r.byte()
	m.Ballot = r.u64()
	m.Index = r.u64()
	m.AccBallot = r.u64()
	if r.bool() {
		m.Entry = decodeEntry(r)
	}
	if r.bad || len(r.b) != 0 {
		return nil, errWire
	}
	return m, nil
}

func decodeEntry(r *rbuf) *logEntry {
	e := &logEntry{}
	e.Index = r.u64()
	e.Ballot = r.u64()
	e.Note = r.str()
	if r.bool() {
		e.Cp = decodeCheckpoint(r)
	}
	return e
}

func decodeCheckpoint(r *rbuf) *Checkpoint {
	cp := &Checkpoint{}
	cp.Time = r.time()
	cp.Alarms = int(r.i64())
	cp.Suppressed = int(r.i64())
	cp.Localizations = int(r.i64())
	cp.Reroutes = int(r.i64())

	if n := r.count(); n > 0 {
		cp.Links = make(map[string]LinkCheckpoint, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			cp.Links[prev] = decodeLink(r)
		}
	}
	if n := r.count(); n > 0 {
		cp.RestartsSeen = make(map[string]int, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			cp.RestartsSeen[prev] = int(r.i64())
		}
	}
	if n := r.count(); n > 0 {
		cp.RestartObserved = make(map[string]sim.Time, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			cp.RestartObserved[prev] = r.time()
		}
	}
	if n := r.count(); n > 0 {
		cp.EpochCur = make(map[string]uint8, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			cp.EpochCur[prev] = r.byte()
		}
	}
	if n := r.count(); n > 0 {
		cp.EpochPrev = make(map[string]uint8, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			cp.EpochPrev[prev] = r.byte()
		}
	}
	cp.RerouteSeen = r.strs()

	if n := r.count(); n > 0 {
		cp.Seq = make(map[string]mgmt.SeqState, n)
		prev := ""
		for i := 0; i < n && !r.bad; i++ {
			prev = r.key(i, prev)
			st := mgmt.SeqState{Contig: r.u64()}
			if a := r.count(); a > 0 {
				st.Above = make([]uint64, 0, a)
				for j := 0; j < a && !r.bad; j++ {
					s := r.u64()
					if j > 0 && s <= st.Above[j-1] {
						r.fail()
						break
					}
					st.Above = append(st.Above, s)
				}
			}
			cp.Seq[prev] = st
		}
	}

	if n := r.count(); n > 0 {
		for i := 0; i < n && !r.bad; i++ {
			d := VerifyDecision{Key: r.str(), Outcome: r.byte()}
			if d.Outcome > verifyOutcomeMax {
				r.fail()
				break
			}
			if fn := r.count(); fn > 0 && !r.bad {
				d.Frame = append([]byte(nil), r.b[:fn]...)
				r.b = r.b[fn:]
				// A frame must itself be a canonical delta; a forged or
				// corrupted frame would otherwise be replayed into the
				// verifier model after a failover.
				if _, err := verify.DecodeDelta(d.Frame); err != nil {
					r.fail()
					break
				}
			}
			cp.VerifyLog = append(cp.VerifyLog, d)
		}
	}
	if n := r.count(); n > 0 {
		for i := 0; i < n && !r.bad; i++ {
			cp.VerifyHeld = append(cp.VerifyHeld, HeldReroute{
				LinkKey: r.str(),
				Key:     r.str(),
				Entry:   netsim.EntryID(r.u32()),
				Retries: int(r.i64()),
			})
		}
	}
	return cp
}

func decodeLink(r *rbuf) LinkCheckpoint {
	var lc LinkCheckpoint
	lc.Localized = r.bool()
	lc.LocalizedAt = r.time()
	if n := r.count(); n > 0 {
		lc.Affected = make([]netsim.EntryID, 0, n)
		for i := 0; i < n && !r.bad; i++ {
			e := netsim.EntryID(r.u32())
			if i > 0 && e <= lc.Affected[i-1] {
				r.fail()
				break
			}
			lc.Affected = append(lc.Affected, e)
		}
	}
	lc.TreePaths = int(r.i64())
	lc.Alarms = int(r.i64())
	lc.Suppressed = int(r.i64())
	lc.Flapping = r.bool()
	if n := r.count(); n > 0 {
		lc.DownTimes = make([]sim.Time, 0, n)
		for i := 0; i < n && !r.bad; i++ {
			lc.DownTimes = append(lc.DownTimes, r.time())
		}
	}
	lc.VerdictPending = r.bool()
	lc.IncidentStart = r.time()
	lc.Seen = r.strs()
	if n := r.count(); n > 0 {
		lc.Evidence = make([]fancy.Event, 0, n)
		for i := 0; i < n && !r.bad; i++ {
			lc.Evidence = append(lc.Evidence, decodeEvidence(r))
		}
	}
	lc.LastHealth = Health(r.byte())
	return lc
}

func decodeEvidence(r *rbuf) fancy.Event {
	var ev fancy.Event
	ev.Time = r.time()
	ev.Port = int(r.i64())
	ev.Kind = fancy.EventKind(r.byte())
	ev.Entry = netsim.EntryID(r.u32())
	if n := r.count(); n > 0 {
		ev.Path = make([]uint16, 0, n)
		for i := 0; i < n && !r.bad; i++ {
			ev.Path = append(ev.Path, r.u16())
		}
	}
	ev.Diff = r.u64()
	return ev
}
