package fleet

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// LinkReport is the per-directed-link slice of a Snapshot.
type LinkReport struct {
	Link        string
	Health      Health
	Sessions    uint64 // counting sessions completed on the upstream end
	Alarms      int    // deduped alarms, lifetime
	Suppressed  int    // alarms discarded by the correlator
	Localized   bool
	LocalizedAt sim.Time
	Affected    []netsim.EntryID // failing dedicated entries, sorted
	TreePaths   int              // failing hash-tree paths (best-effort traffic)
}

// Snapshot is the fleet's aggregate state at one instant.
type Snapshot struct {
	Time  sim.Time
	Links []LinkReport // in canonical (sorted) link order

	// Aggregates across all links/switches.
	Alarms        int
	Suppressed    int // the false-alarm count: alarms that did not localize
	Localizations int
	Reroutes      int
	Stats         fancy.DetectorStats // summed over every detector
}

// Snapshot assembles the current fleet-wide view.
func (f *Fleet) Snapshot() Snapshot {
	now := f.S.Now()
	snap := Snapshot{
		Time:          now,
		Alarms:        f.Alarms,
		Suppressed:    f.Suppressed,
		Localizations: f.Localizations,
		Reroutes:      f.Reroutes,
	}
	for _, key := range f.order {
		ls := f.links[key]
		lr := LinkReport{
			Link:        key,
			Health:      f.healthOf(ls, now),
			Sessions:    f.Detectors[ls.dl.From].SessionsCompleted(ls.port),
			Alarms:      ls.alarms,
			Suppressed:  ls.suppressed,
			Localized:   ls.localized,
			LocalizedAt: ls.localizedAt,
			Affected:    f.AffectedEntries(key),
			TreePaths:   ls.treePaths,
		}
		snap.Links = append(snap.Links, lr)
	}
	for _, det := range f.Detectors {
		st := det.Stats()
		snap.Stats.CtlCorrupted += st.CtlCorrupted
		snap.Stats.Retransmits += st.Retransmits
		snap.Stats.LinkDownEvents += st.LinkDownEvents
		snap.Stats.LinkUpEvents += st.LinkUpEvents
		snap.Stats.Restarts += st.Restarts
		snap.Stats.SessionsDiscarded += st.SessionsDiscarded
	}
	return snap
}

// Report renders the snapshot as a deterministic operator-facing text block.
func (s Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet report @ %v\n", s.Time)
	fmt.Fprintf(&b, "  links=%d alarms=%d suppressed=%d localized=%d reroutes=%d\n",
		len(s.Links), s.Alarms, s.Suppressed, s.Localizations, s.Reroutes)
	fmt.Fprintf(&b, "  detectors: retransmits=%d ctl-corrupted=%d link-down=%d link-up=%d restarts=%d sessions-discarded=%d\n",
		s.Stats.Retransmits, s.Stats.CtlCorrupted, s.Stats.LinkDownEvents,
		s.Stats.LinkUpEvents, s.Stats.Restarts, s.Stats.SessionsDiscarded)
	for _, lr := range s.Links {
		fmt.Fprintf(&b, "  %-28s %-9s sessions=%-5d", lr.Link, lr.Health, lr.Sessions)
		if lr.Alarms > 0 || lr.Suppressed > 0 {
			fmt.Fprintf(&b, " alarms=%d suppressed=%d", lr.Alarms, lr.Suppressed)
		}
		if lr.Localized {
			fmt.Fprintf(&b, " localized@%v", lr.LocalizedAt)
			if len(lr.Affected) > 0 {
				fmt.Fprintf(&b, " entries=%v", lr.Affected)
			}
			if lr.TreePaths > 0 {
				fmt.Fprintf(&b, " tree-paths=%d", lr.TreePaths)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GrayLinks filters the snapshot to links in gray (localized) state.
func (s Snapshot) GrayLinks() []LinkReport {
	var out []LinkReport
	for _, lr := range s.Links {
		if lr.Health == HealthGray {
			out = append(out, lr)
		}
	}
	return out
}
