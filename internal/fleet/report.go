package fleet

import (
	"fmt"
	"strings"

	"fancy/internal/fancy"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// AgentReport is one switch agent's management-plane slice of a Snapshot.
type AgentReport struct {
	Switch   string
	Online   bool
	Degraded bool
	Spooled  int // reports parked awaiting a reachable correlator
	Stats    mgmt.ClientStats
}

// ReplicaReport is one correlator replica's slice of a Snapshot.
type ReplicaReport struct {
	Name     string
	Active   bool // currently driving the fleet state machine
	Leader   bool
	Crashed  bool
	Promised uint64 // highest promised ballot (acceptor stable state)
	AccIndex uint64 // highest accepted log index
}

// LinkReport is the per-directed-link slice of a Snapshot.
type LinkReport struct {
	Link        string
	Health      Health
	Sessions    uint64 // counting sessions completed on the upstream end
	Alarms      int    // deduped alarms, lifetime
	Suppressed  int    // alarms discarded by the correlator
	Localized   bool
	LocalizedAt sim.Time
	Affected    []netsim.EntryID // failing dedicated entries, sorted
	TreePaths   int              // failing hash-tree paths (best-effort traffic)
}

// HHSnapshot aggregates the heavy-hitter allocation loop fleet-wide.
type HHSnapshot struct {
	Reports         uint64 // digests ingested by agents
	DecodeErrors    uint64 // frames rejected by the strict decoder
	ApplyErrors     uint64 // allocator decisions the detector refused
	Promotions      uint64 // allocator-driven slot promotions
	Demotions       uint64 // allocator-driven slot demotions
	FlapsSuppressed uint64 // demotion streaks broken by a reappearance
	Deferred        uint64 // promotions postponed for lack of a free slot
	EpochResets     uint64 // allocator wipes after a detector restart
	Occupied        int    // dynamic slots currently assigned, all ports
	Capacity        int    // dynamic slots provisioned, all ports
}

// Snapshot is the fleet's aggregate state at one instant.
type Snapshot struct {
	Time  sim.Time
	Links []LinkReport // in canonical (sorted) link order

	// Aggregates across all links/switches.
	Alarms        int
	Suppressed    int // the false-alarm count: alarms that did not localize
	Localizations int
	Reroutes      int
	Stats         fancy.DetectorStats // summed over every detector

	// Heavy-hitter allocation loop (populated only with Config.HH).
	HHEnabled bool
	HH        HHSnapshot

	// Verified-commit gate (populated only with Config.Verify).
	VerifyEnabled     bool
	Verify            VerifyStats
	VerifyHeldPending int  // flips currently parked on the hold-and-retry list
	VerifyAtoms       int  // atoms in the forwarding model
	VerifyUnavailable bool // verify-unavailable fallback engaged

	// Management plane (populated only when the fleet runs over a
	// simulated management network).
	MgmtEnabled    bool
	MgmtNet        mgmt.NetStats
	MgmtHoles      int    // report seqs lost for good (spool overflow)
	MgmtDuplicates uint64 // duplicate deliveries suppressed at the correlator
	MgmtSpoolDrops uint64 // reports evicted from full agent spools, fleet-wide
	Corr           CorrelatorStats
	Agents         []AgentReport // in sorted switch order

	// Correlator replication (populated only with cfg.Replicas > 1).
	Replicated     bool
	Leader         string // replica currently driving the fleet
	CommitIndex    uint64
	QuorumDegraded bool            // leader running without its ack quorum
	Replicas       []ReplicaReport // in replica-id order
}

// Snapshot assembles the current fleet-wide view.
func (f *Fleet) Snapshot() Snapshot {
	now := f.S.Now()
	snap := Snapshot{
		Time:          now,
		Alarms:        f.Alarms,
		Suppressed:    f.Suppressed,
		Localizations: f.Localizations,
		Reroutes:      f.Reroutes,
	}
	for _, key := range f.order {
		ls := f.links[key]
		lr := LinkReport{
			Link:        key,
			Health:      f.healthOf(ls, now),
			Sessions:    f.Detectors[ls.dl.From].SessionsCompleted(ls.port),
			Alarms:      ls.alarms,
			Suppressed:  ls.suppressed,
			Localized:   ls.localized,
			LocalizedAt: ls.localizedAt,
			Affected:    f.AffectedEntries(key),
			TreePaths:   ls.treePaths,
		}
		snap.Links = append(snap.Links, lr)
	}
	if f.mgmtNet != nil {
		snap.MgmtEnabled = true
		snap.MgmtNet = f.mgmtNet.Stats
		snap.MgmtHoles = f.mgmtSrv.Holes()
		snap.MgmtDuplicates = f.mgmtSrv.Stats.Duplicates
		snap.Corr = f.Corr
		for _, sw := range f.switches {
			a := f.agents[sw]
			snap.Agents = append(snap.Agents, AgentReport{
				Switch:   sw,
				Online:   a.client.Online(),
				Degraded: a.degraded,
				Spooled:  a.client.SpoolLen(),
				Stats:    a.client.Stats,
			})
			snap.MgmtSpoolDrops += a.client.Stats.SpoolDrops
		}
		if g := f.group; g != nil {
			snap.Replicated = true
			snap.Leader = f.Leader()
			snap.CommitIndex = g.commitIndex
			snap.QuorumDegraded = g.quorumLost
			for _, r := range g.replicas {
				rr := ReplicaReport{
					Name: r.name, Active: g.active == r.id,
					Leader: r.isLeader, Crashed: r.crashed,
					Promised: r.promised,
				}
				if r.acc != nil {
					rr.AccIndex = r.acc.Index
				}
				snap.Replicas = append(snap.Replicas, rr)
			}
		}
	}
	for _, det := range f.Detectors {
		st := det.Stats()
		snap.Stats.CtlCorrupted += st.CtlCorrupted
		snap.Stats.Retransmits += st.Retransmits
		snap.Stats.LinkDownEvents += st.LinkDownEvents
		snap.Stats.LinkUpEvents += st.LinkUpEvents
		snap.Stats.Restarts += st.Restarts
		snap.Stats.SessionsDiscarded += st.SessionsDiscarded
		snap.Stats.HHReports += st.HHReports
		snap.Stats.Promotions += st.Promotions
		snap.Stats.Demotions += st.Demotions
	}
	if f.cfg.HH != nil {
		snap.HHEnabled = true
		for _, sw := range f.switches {
			a := f.agents[sw]
			st, occupied, capacity := a.hhAllocTotals()
			snap.HH.Reports += st.Reports
			snap.HH.Promotions += st.Promotions
			snap.HH.Demotions += st.Demotions
			snap.HH.FlapsSuppressed += st.FlapsSuppressed
			snap.HH.Deferred += st.Deferred
			snap.HH.EpochResets += st.EpochResets
			snap.HH.DecodeErrors += a.hhStats.DecodeErrs
			snap.HH.ApplyErrors += a.hhStats.ApplyErrs
			snap.HH.Occupied += occupied
			snap.HH.Capacity += capacity
		}
	}
	if f.verifier != nil {
		snap.VerifyEnabled = true
		snap.Verify = f.Verify
		snap.VerifyHeldPending = len(f.verifyHeld)
		snap.VerifyAtoms = f.verifier.Atoms()
		snap.VerifyUnavailable = f.verifyDown
	}
	return snap
}

// Report renders the snapshot as a deterministic operator-facing text block.
func (s Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet report @ %v\n", s.Time)
	fmt.Fprintf(&b, "  links=%d alarms=%d suppressed=%d localized=%d reroutes=%d\n",
		len(s.Links), s.Alarms, s.Suppressed, s.Localizations, s.Reroutes)
	fmt.Fprintf(&b, "  detectors: retransmits=%d ctl-corrupted=%d link-down=%d link-up=%d restarts=%d sessions-discarded=%d\n",
		s.Stats.Retransmits, s.Stats.CtlCorrupted, s.Stats.LinkDownEvents,
		s.Stats.LinkUpEvents, s.Stats.Restarts, s.Stats.SessionsDiscarded)
	if s.HHEnabled {
		fmt.Fprintf(&b, "  hh-alloc: reports=%d promotions=%d demotions=%d flaps-suppressed=%d deferred=%d epoch-resets=%d occupied=%d/%d decode-errors=%d apply-errors=%d\n",
			s.HH.Reports, s.HH.Promotions, s.HH.Demotions, s.HH.FlapsSuppressed,
			s.HH.Deferred, s.HH.EpochResets, s.HH.Occupied, s.HH.Capacity,
			s.HH.DecodeErrors, s.HH.ApplyErrors)
	}
	if s.VerifyEnabled {
		avail := "on"
		if s.VerifyUnavailable {
			avail = "UNAVAILABLE"
		}
		fmt.Fprintf(&b, "  verify: %s checked=%d committed=%d rejected=%d repaired=%d held=%d retries=%d abandoned=%d fallbacks=%d errors=%d atoms-checked=%d pending-holds=%d model-atoms=%d\n",
			avail, s.Verify.Checked, s.Verify.Committed, s.Verify.Rejected,
			s.Verify.Repaired, s.Verify.Held, s.Verify.Retries, s.Verify.Abandoned,
			s.Verify.Fallbacks, s.Verify.Errors, s.Verify.AtomsChecked,
			s.VerifyHeldPending, s.VerifyAtoms)
	}
	if s.MgmtEnabled {
		fmt.Fprintf(&b, "  mgmt: sent=%d delivered=%d lost=%d dup=%d partition-drops=%d holes=%d dedup=%d\n",
			s.MgmtNet.Sent, s.MgmtNet.Delivered, s.MgmtNet.Lost, s.MgmtNet.Duplicated,
			s.MgmtNet.PartitionDrops, s.MgmtHoles, s.MgmtDuplicates)
		fmt.Fprintf(&b, "  correlator: checkpoints=%d crashes=%d restores=%d stale-events=%d epoch-purges=%d get-fails=%d cmd-fails=%d handbacks=%d\n",
			s.Corr.Checkpoints, s.Corr.Crashes, s.Corr.Restores, s.Corr.StaleEvents,
			s.Corr.EpochPurges, s.Corr.GetFails, s.Corr.RerouteCmdFails, s.Corr.Handbacks)
		if s.Replicated {
			degraded := "quorum"
			if s.QuorumDegraded {
				degraded = "DEGRADED"
			}
			fmt.Fprintf(&b, "  replication: leader=%s commit=%d %s elections=%d failovers=%d quorum-losses=%d wire-rejects=%d\n",
				s.Leader, s.CommitIndex, degraded, s.Corr.Elections, s.Corr.Failovers,
				s.Corr.QuorumLosses, s.Corr.WireRejects)
			for _, rr := range s.Replicas {
				role := "follower"
				switch {
				case rr.Crashed:
					role = "CRASHED"
				case rr.Leader:
					role = "leader"
				}
				active := ""
				if rr.Active {
					active = " active"
				}
				fmt.Fprintf(&b, "  replica %-8s %-8s promised=%d acc=%d%s\n",
					rr.Name, role, rr.Promised, rr.AccIndex, active)
			}
		}
		for _, ar := range s.Agents {
			state := "online"
			if ar.Degraded {
				state = "DEGRADED"
			} else if !ar.Online {
				state = "offline"
			}
			fmt.Fprintf(&b, "  agent %-8s %-8s spool=%-3d reports=%d retries=%d exhausted=%d spool-drops=%d redirects=%d offline-transitions=%d\n",
				ar.Switch, state, ar.Spooled, ar.Stats.Reports, ar.Stats.Retries,
				ar.Stats.Exhausted, ar.Stats.SpoolDrops, ar.Stats.Redirects, ar.Stats.Offline)
		}
	}
	for _, lr := range s.Links {
		fmt.Fprintf(&b, "  %-28s %-9s sessions=%-5d", lr.Link, lr.Health, lr.Sessions)
		if lr.Alarms > 0 || lr.Suppressed > 0 {
			fmt.Fprintf(&b, " alarms=%d suppressed=%d", lr.Alarms, lr.Suppressed)
		}
		if lr.Localized {
			fmt.Fprintf(&b, " localized@%v", lr.LocalizedAt)
			if len(lr.Affected) > 0 {
				fmt.Fprintf(&b, " entries=%v", lr.Affected)
			}
			if lr.TreePaths > 0 {
				fmt.Fprintf(&b, " tree-paths=%d", lr.TreePaths)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GrayLinks filters the snapshot to links in gray (localized) state.
func (s Snapshot) GrayLinks() []LinkReport {
	var out []LinkReport
	for _, lr := range s.Links {
		if lr.Health == HealthGray {
			out = append(out, lr)
		}
	}
	return out
}
