package fleet

// The agent half of the heavy-hitter allocation loop. Each switch agent
// owns one hh.Allocator per monitored port; the detector's periodic
// digests feed it, and its promote/demote decisions are applied straight
// to the local detector. The loop never crosses the management plane —
// a partitioned switch keeps re-pointing its dynamic dedicated counters
// at whatever is hot right now.

import (
	"fancy/internal/hh"
)

// hhAllocStats aggregates one agent's allocation-loop counters.
type hhAllocStats struct {
	Reports    uint64 // digests ingested
	DecodeErrs uint64 // frames the strict decoder rejected
	ApplyErrs  uint64 // allocator decisions the detector refused
}

// onHHReport receives one encoded heavy-hitter digest from the local
// detector, runs it through the port's allocator and applies the
// resulting slot changes.
func (a *switchAgent) onHHReport(port int, frame []byte) {
	rep, err := hh.DecodeReport(frame)
	if err != nil {
		a.hhStats.DecodeErrs++
		return
	}
	a.hhStats.Reports++
	alloc, ok := a.hhAlloc[port]
	if !ok {
		alloc = hh.NewAllocator(hh.AllocPolicy{
			Capacity:     a.f.cfg.HH.DynamicSlots,
			PromoteAfter: a.f.cfg.HH.PromoteAfter,
			DemoteAfter:  a.f.cfg.HH.DemoteAfter,
			MinCount:     a.f.cfg.HH.MinCount,
		}, a.f.cfg.Fancy.HighPriority)
		a.hhAlloc[port] = alloc
	}
	det := a.f.Detectors[a.sw]
	for _, act := range alloc.Ingest(rep) {
		switch act.Kind {
		case hh.Demote:
			if err := det.Demote(port, act.Entry); err != nil {
				a.hhStats.ApplyErrs++
			}
		case hh.Promote:
			if _, err := det.Promote(port, act.Entry); err != nil {
				a.hhStats.ApplyErrs++
			}
		}
	}
}

// hhAllocTotals sums the per-port allocator stats plus the detector's
// dynamic-slot occupancy across the agent's monitored ports.
func (a *switchAgent) hhAllocTotals() (st hh.AllocStats, occupied, capacity int) {
	for _, alloc := range a.hhAlloc {
		s := alloc.Stats()
		st.Reports += s.Reports
		st.Promotions += s.Promotions
		st.Demotions += s.Demotions
		st.FlapsSuppressed += s.FlapsSuppressed
		st.Deferred += s.Deferred
		st.EpochResets += s.EpochResets
	}
	det := a.f.Detectors[a.sw]
	for port := range a.f.portLink[a.sw] {
		used, c := det.DynamicOccupancy(port)
		occupied += used
		capacity += c
	}
	return st, occupied, capacity
}

// mountHHStats exposes the agent's allocation-loop counters through the
// switch's telemetry server, next to the detector's own stats.
func (a *switchAgent) mountHHStats() {
	mount := func(name string, fn func() int) {
		// The names cannot collide with built-ins; a failure here would be
		// a programming error surfaced by the telemetry tests.
		_ = a.srv.RegisterStat(name, fn)
	}
	mount("hh-agent-reports", func() int { return int(a.hhStats.Reports) })
	mount("hh-decode-errors", func() int { return int(a.hhStats.DecodeErrs) })
	mount("hh-apply-errors", func() int { return int(a.hhStats.ApplyErrs) })
	mount("hh-flaps-suppressed", func() int {
		st, _, _ := a.hhAllocTotals()
		return int(st.FlapsSuppressed)
	})
	mount("hh-deferred", func() int {
		st, _, _ := a.hhAllocTotals()
		return int(st.Deferred)
	})
}
