package fleet

import (
	"strings"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/hh"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

// hhFleetCfg is a fleet with no static high-priority entries: every
// dedicated counter is a dynamic slot driven by the allocation loop.
func hhFleetCfg(slots int) Config {
	return Config{
		Fancy: fancy.Config{
			Tree:     tree.Params{Width: 16, Depth: 2, Split: 2, Pipelined: true},
			TreeSeed: 3,
		},
		HH: &HHFleetConfig{
			Sketch:       hh.Params{Stages: 3, Width: 32, Seed: 11},
			DynamicSlots: slots,
		},
	}
}

// TestHHFleetPromoteDetectDemote is the allocation loop end to end: a hot
// prefix is promoted into a dynamic dedicated slot, a gray failure on it
// is then detected at dedicated-counter speed, and once the flow stops
// the slot is demoted and returned.
func TestHHFleetPromoteDetectDemote(t *testing.T) {
	s := sim.New(21)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(20)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, hhFleetCfg(2))
	if err != nil {
		t.Fatal(err)
	}

	// Heavy flow from t=0; with 100 ms digests and PromoteAfter=2 the
	// B->C agent promotes it by ~300 ms, well before the failure.
	udp(n, "H1", entry, 4e6, 1500*sim.Millisecond)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 600*sim.Millisecond, 1.0, entry))
	s.Run(1200 * sim.Millisecond)

	bPort := n.PortOf["B"]["C"]
	if _, ok := f.Detectors["B"].Promoted(bPort, entry); !ok {
		t.Fatal("hot entry was not promoted on B->C")
	}
	// The failure must surface through the dynamic dedicated counter, not
	// tree zooming: a dedicated detection event for the promoted entry.
	var dedicatedAt sim.Time
	for _, ev := range f.Events {
		if ev.Kind == EventAlarm && strings.Contains(ev.Detail, "dedicated") {
			dedicatedAt = ev.Time
			break
		}
	}
	if dedicatedAt == 0 {
		t.Fatalf("no dedicated alarm in the fleet log: %v", f.Events)
	}
	if dedicatedAt > 900*sim.Millisecond {
		t.Fatalf("dedicated alarm at %v, want within ~3 exchange intervals of the 600 ms failure", dedicatedAt)
	}
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("Localized() = %v, want [B->C]", got)
	}

	snap := f.Snapshot()
	if !snap.HHEnabled {
		t.Fatal("snapshot does not mark HH enabled")
	}
	if snap.HH.Reports == 0 || snap.HH.Promotions == 0 {
		t.Fatalf("allocation loop idle: %+v", snap.HH)
	}
	if snap.HH.Occupied == 0 {
		t.Fatalf("no occupied dynamic slot while the flow is hot: %+v", snap.HH)
	}
	if snap.Stats.HHReports == 0 || snap.Stats.Promotions == 0 {
		t.Fatalf("detector HH stats not summed: %+v", snap.Stats)
	}
	if !strings.Contains(snap.Report(), "hh-alloc:") {
		t.Fatal("Report() lacks the hh-alloc line")
	}

	// The flow stops at 1.5 s; DemoteAfter=3 empty digests later every
	// agent lets go of the slot.
	s.Run(2500 * sim.Millisecond)
	if _, ok := f.Detectors["B"].Promoted(bPort, entry); ok {
		t.Fatal("cooled entry still promoted on B->C")
	}
	snap = f.Snapshot()
	if snap.HH.Demotions == 0 {
		t.Fatalf("no demotion after the flow stopped: %+v", snap.HH)
	}
	if snap.HH.Occupied != 0 {
		t.Fatalf("dynamic slots still occupied after cooling: %+v", snap.HH)
	}
	if snap.HH.DecodeErrors != 0 || snap.HH.ApplyErrors != 0 {
		t.Fatalf("allocation loop errored: %+v", snap.HH)
	}

	// Agent counters are also served through telemetry.
	if v, err := f.Telemetry["B"].Get("/fancy/stats/hh-agent-reports"); err != nil || v.(int) == 0 {
		t.Errorf("hh-agent-reports = %v, %v", v, err)
	}
}

// TestHHFleetSurvivesPartition: the allocation loop is local to each
// switch, so a management-plane partition must not stop promotions.
func TestHHFleetSurvivesPartition(t *testing.T) {
	s := sim.New(22)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(20)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := hhFleetCfg(2)
	cfg.Mgmt = &mgmt.Config{Loss: 0.2, Jitter: sim.Millisecond}
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.PartitionSwitch("B")
	udp(n, "H1", entry, 4e6, sim.Second)
	s.Run(800 * sim.Millisecond)

	if _, ok := f.Detectors["B"].Promoted(n.PortOf["B"]["C"], entry); !ok {
		t.Fatal("partitioned switch stopped promoting")
	}
}
