package fleet

// Replicated-correlator tests: consensus verdict log over the lossy
// management network, phi-driven leader failover, partition-heal handback
// to a different leader, quorum-loss degraded fallback, and same-seed
// determinism of the whole replicated control plane.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

// replicatedCfg is the common 3-replica config over a lossy channel.
func replicatedCfg(loss float64, entries ...netsim.EntryID) Config {
	cfg := fleetCfg(entries...)
	cfg.Mgmt = &mgmt.Config{Loss: loss, Duplicate: loss / 2, Jitter: sim.Millisecond}
	cfg.Replicas = 3
	return cfg
}

// TestReplicatedLocalization: with a healthy 3-replica group and 20% loss,
// verdicts travel the consensus log and localization stays exact — one
// verdict, committed through a quorum, no failovers.
func TestReplicatedLocalization(t *testing.T) {
	s := sim.New(42)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0.2, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want exactly [B->C]", got)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events, want exactly 1", nLoc)
	}
	snap := f.Snapshot()
	if !snap.Replicated || snap.Leader != "corr0" {
		t.Fatalf("Replicated=%v Leader=%q, want replicated under corr0", snap.Replicated, snap.Leader)
	}
	if snap.CommitIndex == 0 {
		t.Fatal("nothing committed through the consensus log")
	}
	if f.Corr.Failovers != 0 {
		t.Fatalf("Failovers=%d with a healthy leader, want 0 (spurious election churn)", f.Corr.Failovers)
	}
	// Every replica must hold a recent accepted entry (log replication +
	// built-in compaction actually propagating state).
	for _, rr := range snap.Replicas {
		if rr.AccIndex == 0 {
			t.Fatalf("replica %s never accepted an entry: %+v", rr.Name, rr)
		}
	}
}

// TestLeaderFailover is the tentpole scenario: the leader is killed under
// 20% loss before the verdict window closes; a follower detects the silence
// via phi, wins the election, restores from the replicated log and finishes
// the verdict — exactly once, with agents redirected to the new leader.
func TestLeaderFailover(t *testing.T) {
	s := sim.New(7)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0.2, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	const failAt = 2 * sim.Second
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, failAt, 1.0, entry))
	// Kill the leader shortly after the failure starts alarming: the crash
	// lands around the open evidence window, the worst time to lose state.
	s.ScheduleAt(failAt+100*sim.Millisecond, func() {
		if id := f.KillLeader(); id != 0 {
			t.Errorf("KillLeader killed replica %d, want 0 (corr0 leads at boot)", id)
		}
	})
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want exactly [B->C] across the failover", got)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events, want exactly 1 (no duplicate verdicts)", nLoc)
	}
	if f.Corr.Failovers == 0 || !hasEvent(f, EventLeaderElected, "ballot") {
		t.Fatalf("no leader takeover recorded: Failovers=%d", f.Corr.Failovers)
	}
	snap := f.Snapshot()
	if snap.Leader == "corr0" {
		t.Fatalf("leader still %s after killing it", snap.Leader)
	}
	// Agents must have discovered the new leader (redirects or rotation)
	// and resumed reporting: the fleet is not in degraded local mode.
	for _, ar := range snap.Agents {
		if ar.Degraded {
			t.Fatalf("agent %s still degraded after failover", ar.Switch)
		}
	}
	if !snap.QuorumDegraded && f.Crashed() {
		t.Fatal("fleet still marked crashed after a successful takeover")
	}
}

// TestFailoverTTL bounds the control-plane outage: from leader kill to the
// first post-takeover verdict must stay within a small multiple of the
// detection timescale (phi horizon + election + restore + re-opened
// window), not the multi-second restart of the single-instance path.
func TestFailoverTTL(t *testing.T) {
	s := sim.New(11)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0.1, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	const failAt = 2 * sim.Second
	const killAt = failAt + 100*sim.Millisecond
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, failAt, 1.0, entry))
	var electedAt sim.Time
	s.ScheduleAt(killAt, func() { f.KillLeader() })
	s.Run(8 * sim.Second)
	for _, ev := range f.Events {
		if ev.Kind == EventLeaderElected {
			electedAt = ev.Time
			break
		}
	}
	if electedAt == 0 {
		t.Fatal("no takeover happened")
	}
	if d := electedAt - killAt; d > 500*sim.Millisecond {
		t.Fatalf("takeover took %v after the kill, want well under 500ms", d)
	}
	ttl := f.LocalizedAt("B->C") - failAt
	if ttl <= 0 || ttl > 2*sim.Second {
		t.Fatalf("time-to-localize %v across a leader kill, want bounded", ttl)
	}
}

// TestPartitionHealReconcileToNewLeader: a switch goes degraded behind a
// partition, reroutes locally, and while it is unreachable the leader dies
// and a different replica takes over. After the heal the agent must hand
// gating back to the NEW leader — one confirmed verdict, one recorded
// reroute, one handback, no duplicates and nothing lost.
func TestPartitionHealReconcileToNewLeader(t *testing.T) {
	s := sim.New(31)
	cfg := fleetCfg(10, 11)
	cfg.Mgmt = &mgmt.Config{}
	cfg.Replicas = 3
	n, f, entry := abileneProtected(t, s, cfg)

	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)

	const partitionAt = 1500 * sim.Millisecond
	const failAt = 2 * sim.Second
	const killAt = 2200 * sim.Millisecond
	const healAt = 3500 * sim.Millisecond
	s.ScheduleAt(partitionAt, func() { f.PartitionSwitch("seattle") })
	n.Direction("seattle", "sunnyvale").SetFailure(netsim.FailEntries(7, failAt, 1.0, entry))
	s.ScheduleAt(killAt, func() { f.KillLeader() })
	s.ScheduleAt(healAt-sim.Millisecond, func() {
		if f.Leader() == "corr0" {
			t.Error("no failover before the heal — scenario broken")
		}
		if !f.Rerouted("seattle", entry) {
			t.Error("degraded-mode local reroute did not engage during the partition")
		}
	})
	s.ScheduleAt(healAt, func() { f.HealSwitch("seattle") })
	s.Run(8 * sim.Second)

	if f.Degraded("seattle") {
		t.Fatal("agent still degraded after the heal")
	}
	if f.Leader() == "corr0" {
		t.Fatalf("leader is %s, want a different replica after the kill", f.Leader())
	}
	// Every agent briefly degrades during the failover gap (the new leader
	// takes tens of milliseconds to elect) and reconciles on discovery, so
	// the fleet-wide handback count exceeds one — but the partitioned
	// switch itself must hand its long degraded spell back EXACTLY once,
	// to the new leader.
	if f.Corr.Handbacks == 0 {
		t.Fatal("no reconcile reached the new leader")
	}
	if n := countEvents(f, EventDegradedHandback, "seattle"); n != 1 {
		t.Fatalf("%d handbacks from seattle, want exactly 1", n)
	}
	if !hasEvent(f, EventDegradedHandback, "local reroute(s)") {
		t.Fatal("no degraded-mode handback recorded at the new leader")
	}
	if got := f.Localized(); len(got) != 1 || got[0] != "seattle->sunnyvale" {
		t.Fatalf("localized %v, want exactly [seattle->sunnyvale]", got)
	}
	if nLoc := countEvents(f, EventLocalized, "seattle->sunnyvale"); nLoc != 1 {
		t.Fatalf("%d localization events, want exactly 1 (no duplicate verdicts)", nLoc)
	}
	if f.Reroutes != 1 {
		t.Fatalf("Reroutes=%d, want 1 (degraded reroute recorded once at the new leader)", f.Reroutes)
	}
	// The agent found the new leader via redirect/rotation, not luck.
	snap := f.Snapshot()
	for _, ar := range snap.Agents {
		if ar.Switch == "seattle" && ar.Stats.Redirects == 0 && ar.Stats.Rotations == 0 {
			t.Fatal("seattle reconciled without any redirect or endpoint rotation — leader discovery not exercised")
		}
	}
}

// TestQuorumLossDegradedFallback: with both followers dead the leader
// cannot commit through the log; it must detect the loss, degrade to
// single-instance checkpointing (PR 3 semantics) without blocking verdicts,
// and resume replicated commits when the followers return.
func TestQuorumLossDegradedFallback(t *testing.T) {
	s := sim.New(13)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	s.ScheduleAt(1500*sim.Millisecond, func() {
		f.CrashReplica(1)
		f.CrashReplica(2)
	})
	s.ScheduleAt(3*sim.Second, func() {
		if !f.QuorumDegraded() {
			t.Error("leader did not notice losing both followers")
		}
		if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
			t.Errorf("localized %v during quorum loss, want [B->C] (degraded commits must not block)", got)
		}
	})
	s.ScheduleAt(4*sim.Second, func() {
		f.RestartReplica(1)
		f.RestartReplica(2)
	})
	s.Run(8 * sim.Second)

	if f.QuorumDegraded() {
		t.Fatal("quorum not restored after both followers returned")
	}
	if f.Corr.QuorumLosses != 1 {
		t.Fatalf("QuorumLosses=%d, want exactly 1", f.Corr.QuorumLosses)
	}
	if !hasEvent(f, EventQuorumLost, "single-instance") || !hasEvent(f, EventQuorumRestored, "resuming") {
		t.Fatal("quorum loss/restore transitions not surfaced as events")
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events, want 1", nLoc)
	}
	if f.Corr.Failovers != 0 {
		t.Fatalf("Failovers=%d, want 0 (a minority cannot elect)", f.Corr.Failovers)
	}
	// Restarted followers catch up from the leader's beats.
	snap := f.Snapshot()
	for _, rr := range snap.Replicas {
		if rr.Crashed {
			t.Fatalf("replica %s still crashed", rr.Name)
		}
		if rr.AccIndex == 0 {
			t.Fatalf("replica %s never caught up after restart", rr.Name)
		}
	}
}

// TestReplicaCrashSoak: repeated leader assassination — every elected
// leader is killed in turn and the previous one restarted — must never
// lose or duplicate the confirmed verdict.
func TestReplicaCrashSoak(t *testing.T) {
	s := sim.New(17)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0.1, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 12*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	kills := 0
	prev := -1
	var round func()
	round = func() {
		if s.Now() > 9*sim.Second {
			return
		}
		if prev >= 0 {
			f.RestartReplica(prev)
		}
		prev = f.KillLeader()
		if prev >= 0 {
			kills++
		}
		s.Schedule(1200*sim.Millisecond, round)
	}
	s.ScheduleAt(2200*sim.Millisecond, round)
	s.Run(12 * sim.Second)

	if kills < 3 {
		t.Fatalf("only %d leader kills executed — soak too short", kills)
	}
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v after %d leader kills, want exactly [B->C]", got, kills)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events after %d kills, want exactly 1", nLoc, kills)
	}
	if int(f.Corr.Failovers) < kills-1 {
		t.Fatalf("Failovers=%d after %d kills, want at least %d", f.Corr.Failovers, kills, kills-1)
	}
}

// TestReplicatedDeterminism: the full replicated control plane — elections,
// log replication, failover, redirects — must replay byte-identically under
// the same seed.
func TestReplicatedDeterminism(t *testing.T) {
	run := func() string {
		s := sim.New(23)
		n, err := topo.Build(s, lineSpec(0))
		if err != nil {
			t.Fatal(err)
		}
		const entry = netsim.EntryID(10)
		if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
			t.Fatal(err)
		}
		f, err := New(s, n, replicatedCfg(0.25, entry))
		if err != nil {
			t.Fatal(err)
		}
		udp(n, "H1", entry, 2e6, 6*sim.Second)
		n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
		s.ScheduleAt(2300*sim.Millisecond, func() { f.KillLeader() })
		s.ScheduleAt(3100*sim.Millisecond, func() { f.RestartReplica(0) })
		s.Run(6 * sim.Second)
		var b strings.Builder
		b.WriteString(f.Snapshot().Report())
		for _, ev := range f.Events {
			fmt.Fprintf(&b, "%v %v %s %s\n", ev.Time, ev.Kind, ev.Link, ev.Detail)
		}
		return b.String()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("non-deterministic replicated fleet:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1, r2)
	}
}

// TestReplicasRequireMgmt: a replica group without a management network is
// a configuration error, not a silent fallback.
func TestReplicasRequireMgmt(t *testing.T) {
	s := sim.New(1)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(10)
	cfg.Replicas = 3
	if _, err := New(s, n, cfg); err == nil {
		t.Fatal("New accepted Replicas=3 without Config.Mgmt")
	}
}

// soakReplicaOne is one seeded replica-chaos trial: 20% management loss,
// the active leader assassinated at seed-derived times (the dead replica
// rejoins at the next kill), and the exactly-once verdict contract checked
// at the end regardless of how the kills landed.
func soakReplicaOne(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	s := sim.New(seed)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, replicatedCfg(0.2, entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 10*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(seed+1, 2*sim.Second, 1.0, entry))

	kills := 0
	prev := -1
	var round func()
	round = func() {
		if prev >= 0 {
			f.RestartReplica(prev)
		}
		prev = f.KillLeader()
		if prev >= 0 {
			kills++
		}
		gap := 800*sim.Millisecond + sim.Time(rng.Int63n(int64(sim.Second)))
		if s.Now()+gap < 8*sim.Second {
			s.Schedule(gap, round)
		}
	}
	s.ScheduleAt(2*sim.Second+sim.Time(rng.Int63n(int64(400*sim.Millisecond))), round)
	s.Run(10 * sim.Second)

	if kills < 2 {
		t.Fatalf("only %d leader kills executed — soak schedule broken", kills)
	}
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v after %d leader kills, want exactly [B->C]", got, kills)
	}
	if nLoc := countEvents(f, EventLocalized, "B->C"); nLoc != 1 {
		t.Fatalf("%d localization events after %d kills, want exactly 1", nLoc, kills)
	}
}

// TestReplicaCrashSoakSeeds drives soakReplicaOne over a batch of seeds. The
// default batch rides along in regular CI; the nightly workflow widens it
// via FANCY_REPLICA_SOAK_RUNS and adds the race detector. Every trial is
// fully deterministic, so a green batch stays green.
func TestReplicaCrashSoakSeeds(t *testing.T) {
	runs := 6
	if v := os.Getenv("FANCY_REPLICA_SOAK_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FANCY_REPLICA_SOAK_RUNS=%q: %v", v, err)
		}
		runs = n
	}
	for i := 0; i < runs; i++ {
		seed := int64(5000 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			soakReplicaOne(t, seed)
		})
	}
}
