package fleet

import (
	"strings"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

func fleetCfg(entries ...netsim.EntryID) Config {
	return Config{
		Fancy: fancy.Config{
			HighPriority: entries,
			Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     3,
		},
	}
}

// udp drives a constant-bitrate UDP flow from a host toward an entry.
func udp(n *topo.Network, from string, entry netsim.EntryID, rateBps float64, stop sim.Time) {
	host := n.Hosts[from]
	const size = 1000
	gap := sim.Time(float64(size*8) / rateBps * float64(sim.Second))
	var tick func()
	tick = func() {
		if n.Sim.Now() >= stop {
			return
		}
		host.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Src: n.HostAddr(from), Proto: netsim.ProtoUDP, Size: size})
		n.Sim.Schedule(gap, tick)
	}
	n.Sim.Schedule(0, tick)
}

// burstUDP sends count-packet bursts every interval, to build transient
// queues on a slow link without destabilizing it.
func burstUDP(n *topo.Network, from string, entry netsim.EntryID, count int, interval, start, stop sim.Time) {
	host := n.Hosts[from]
	var tick func()
	tick = func() {
		if n.Sim.Now() >= stop {
			return
		}
		for i := 0; i < count; i++ {
			host.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Src: n.HostAddr(from), Proto: netsim.ProtoUDP, Size: 1000})
		}
		n.Sim.Schedule(interval, tick)
	}
	n.Sim.ScheduleAt(start, tick)
}

func lineSpec(rateBC float64) topo.Spec {
	return topo.Spec{
		Switches: []string{"A", "B", "C"},
		Links: []topo.LinkSpec{
			{A: "A", B: "B", Delay: 2 * sim.Millisecond},
			{A: "B", B: "C", Delay: 2 * sim.Millisecond, RateBps: rateBC},
		},
		Hosts: []topo.HostSpec{{Name: "H1", Attach: "A"}, {Name: "H2", Attach: "C"}},
	}
}

func hasEvent(f *Fleet, kind EventKind, detailSub string) bool {
	for _, ev := range f.Events {
		if ev.Kind == kind && (detailSub == "" || strings.Contains(ev.Detail, detailSub)) {
			return true
		}
	}
	return false
}

// TestAbileneGrayLocalization is the acceptance scenario: a full Abilene
// fleet, one injected gray link, exactly one localization, reroute fired,
// time-to-localize within a few counting sessions.
func TestAbileneGrayLocalization(t *testing.T) {
	s := sim.New(42)
	spec := topo.Abilene()
	spec.Hosts = []topo.HostSpec{
		{Name: "h-sunnyvale", Attach: "sunnyvale"},
		{Name: "h-seattle", Attach: "seattle"},
		{Name: "h-newyork", Attach: "newyork"},
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	const bg = netsim.EntryID(11)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{
		entry: "h-sunnyvale", bg: "h-newyork"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, fleetCfg(entry, bg))
	if err != nil {
		t.Fatal(err)
	}

	// Protect the target entry at seattle: primary is the direct
	// seattle→sunnyvale link (7 ms, the shortest path), backup detours via
	// denver, whose own shortest path to sunnyvale is the direct 9 ms link
	// — loop-free by construction.
	primary := n.PortOf["seattle"]["sunnyvale"]
	backup := n.PortOf["seattle"]["denver"]
	route := n.Switches["seattle"].Routes.InsertEntry(entry,
		netsim.Route{Port: primary, Backup: backup})
	if err := f.Protect("seattle", entry, route); err != nil {
		t.Fatal(err)
	}

	// Count target-entry arrivals, to prove the detour actually delivers.
	delivered := 0
	n.Hosts["h-sunnyvale"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Entry == entry {
			delivered++
		}
	})

	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)
	udp(n, "h-seattle", bg, 1e6, 8*sim.Second) // background: seattle→…→newyork

	const failAt = 2 * sim.Second
	n.Direction("seattle", "sunnyvale").SetFailure(
		netsim.FailEntries(7, failAt, 1.0, entry))
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "seattle->sunnyvale" {
		t.Fatalf("localized %v, want exactly [seattle->sunnyvale]", got)
	}
	ttl := f.LocalizedAt("seattle->sunnyvale") - failAt
	sessions := fancy.DefaultExchangeInterval
	if ttl <= 0 || ttl > 10*sessions {
		t.Fatalf("time-to-localize %v, want within a few counting sessions (%v each)", ttl, sessions)
	}
	if !f.Rerouted("seattle", entry) {
		t.Fatal("protected entry was not rerouted")
	}
	if f.Reroutes == 0 || !hasEvent(f, EventRerouted, "") {
		t.Fatal("no reroute event recorded")
	}
	if got := f.AffectedEntries("seattle->sunnyvale"); len(got) != 1 || got[0] != entry {
		t.Fatalf("affected entries %v, want [%d]", got, entry)
	}
	// The detour via denver must deliver: well over half the post-failure
	// packets arrive (only the detection window's worth is lost).
	if delivered < 1200 {
		t.Fatalf("only %d target packets delivered, detour not working", delivered)
	}
	if f.Suppressed != 0 {
		t.Fatalf("clean gray failure, but %d alarms suppressed", f.Suppressed)
	}

	snap := f.Snapshot()
	gray := snap.GrayLinks()
	if len(gray) != 1 || gray[0].Link != "seattle->sunnyvale" {
		t.Fatalf("snapshot gray links %v, want exactly seattle->sunnyvale", gray)
	}
	for _, lr := range snap.Links {
		if lr.Link != "seattle->sunnyvale" && lr.Localized {
			t.Fatalf("false localization on %s", lr.Link)
		}
	}
	if !strings.Contains(snap.Report(), "seattle->sunnyvale") {
		t.Fatal("report does not mention the gray link")
	}
}

// TestFleetDeterminism: identical seeds must yield byte-identical reports
// and event logs.
func TestFleetDeterminism(t *testing.T) {
	run := func() (string, int) {
		s := sim.New(42)
		spec := topo.Abilene()
		spec.Hosts = []topo.HostSpec{
			{Name: "h-sunnyvale", Attach: "sunnyvale"},
			{Name: "h-seattle", Attach: "seattle"},
		}
		n, err := topo.Build(s, spec)
		if err != nil {
			t.Fatal(err)
		}
		const entry = netsim.EntryID(10)
		if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "h-sunnyvale"}); err != nil {
			t.Fatal(err)
		}
		f, err := New(s, n, fleetCfg(entry))
		if err != nil {
			t.Fatal(err)
		}
		udp(n, "h-seattle", entry, 2e6, 5*sim.Second)
		n.Direction("seattle", "sunnyvale").SetFailure(
			netsim.FailEntries(7, 2*sim.Second, 1.0, entry))
		s.Run(5 * sim.Second)
		return f.Snapshot().Report(), len(f.Events)
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1 != r2 || e1 != e2 {
		t.Fatalf("non-deterministic fleet: events %d vs %d\n--- run 1 ---\n%s--- run 2 ---\n%s",
			e1, e2, r1, r2)
	}
}

// TestCongestionSuppressed: alarms raised while the link's transmit queue
// is congested are discarded (§4.3 footnote 2), not localized.
func TestCongestionSuppressed(t *testing.T) {
	s := sim.New(7)
	// B→C runs at 10 Mb/s so bursts queue up; 20-packet bursts every 20 ms
	// (8 Mb/s average) oscillate the queue between ~20 kB and empty.
	n, err := topo.Build(s, lineSpec(10e6))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(entry)
	cfg.CongestionBytes = 5000
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	burstUDP(n, "H1", entry, 20, 20*sim.Millisecond, 0, 6*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	s.Run(6 * sim.Second)

	if got := f.Localized(); len(got) != 0 {
		t.Fatalf("localized %v despite congestion", got)
	}
	if f.Suppressed == 0 || !hasEvent(f, EventSuppressed, "congestion") {
		t.Fatalf("no congestion suppression recorded (suppressed=%d)", f.Suppressed)
	}
}

// TestFlappingSuppressed: a flapping link is classified as flapping and its
// counter-mismatch alarms are not misreported as a gray failure.
func TestFlappingSuppressed(t *testing.T) {
	s := sim.New(11)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, fleetCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	ch := netsim.NewChaos(s, "flap")
	ch.Start = sim.Second
	ch.DownFor = 300 * sim.Millisecond
	ch.UpFor = 100 * sim.Millisecond
	n.Direction("B", "C").SetChaos(ch)
	// A gray failure arrives once the link is already established as
	// flapping: its alarms must be attributed to the flap, not localized.
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 3*sim.Second, 1.0, entry))
	s.Run(8 * sim.Second)

	if !hasEvent(f, EventLinkFlapping, "") {
		t.Fatal("flapping link never classified as flapping")
	}
	if got := f.Localized(); len(got) != 0 {
		t.Fatalf("localized %v, want none: flapping is not gray", got)
	}
	if f.Suppressed == 0 || !hasEvent(f, EventSuppressed, "link-flapping") {
		t.Fatalf("no flap suppression recorded (suppressed=%d)", f.Suppressed)
	}
}

// TestPeerRestartSuppressed: evidence spanning a peer reboot is discarded
// once; the persisting failure then re-alarms and localizes cleanly.
func TestPeerRestartSuppressed(t *testing.T) {
	s := sim.New(13)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, fleetCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	// Reboot the downstream switch inside the first evidence window.
	s.ScheduleAt(2*sim.Second+100*sim.Millisecond, func() { f.Detectors["C"].Restart() })
	s.Run(8 * sim.Second)

	if !hasEvent(f, EventSuppressed, "peer-restart") {
		t.Fatal("restart-window alarms were not suppressed")
	}
	if !hasEvent(f, EventPeerRestart, "") {
		t.Fatal("peer restart never surfaced in the event log")
	}
	// The gray failure persists past the reboot, so it must still localize.
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want [B->C] after the restart window", got)
	}
}

// TestHealthStates: the sweep's per-link health resolves Down over Gray
// over Healthy.
func TestHealthStates(t *testing.T) {
	s := sim.New(17)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	f, err := New(s, n, fleetCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 4*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, entry))
	s.Run(4 * sim.Second)

	snap := f.Snapshot()
	byLink := make(map[string]LinkReport)
	for _, lr := range snap.Links {
		byLink[lr.Link] = lr
	}
	if h := byLink["B->C"].Health; h != HealthGray {
		t.Fatalf("B->C health %v, want GRAY", h)
	}
	if h := byLink["A->B"].Health; h != HealthHealthy {
		t.Fatalf("A->B health %v, want healthy", h)
	}
	if byLink["A->B"].Sessions == 0 {
		t.Fatal("no counting sessions completed on healthy link")
	}

	// Acknowledge clears the verdict; the persisting failure re-localizes.
	f.Acknowledge("B->C")
	if len(f.Localized()) != 0 {
		t.Fatal("Acknowledge did not clear the localization")
	}
	udp(n, "H1", entry, 2e6, 8*sim.Second)
	s.Run(8 * sim.Second)
	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v after acknowledge, want [B->C] again", got)
	}
}
