package fleet

import (
	"fmt"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// EventKind classifies fleet-level events.
type EventKind uint8

// Fleet event kinds.
const (
	// EventAlarm: a deduplicated gray alarm (dedicated mismatch, tree leaf
	// or uniform report) arrived from a link's upstream detector.
	EventAlarm EventKind = iota
	// EventLocalized: the correlator confirmed a gray failure on the link
	// after the evidence window.
	EventLocalized
	// EventSuppressed: an incident's alarms were discarded; Detail names
	// the competing explanation (congestion, link-flapping, peer-restart).
	EventSuppressed
	// EventRerouted: a protected entry flipped to its backup next hop.
	EventRerouted
	// EventLinkDown / EventLinkUp mirror the detector's connectivity
	// reports, attributed to the directed link.
	EventLinkDown
	EventLinkUp
	// EventLinkFlapping: repeated link-down reports within the flap window.
	EventLinkFlapping
	// EventLinkCongested: the link's transmit queue crossed the congestion
	// threshold during the last sweep.
	EventLinkCongested
	// EventPeerRestart: a switch's restart counter advanced (device
	// reboot, epoch bump).
	EventPeerRestart
	// EventSwitchUnreachable / EventSwitchReachable: heartbeat-based
	// liveness transitions of a switch's management agent.
	EventSwitchUnreachable
	EventSwitchReachable
	// EventDegradedHandback: a switch agent reconciled after a partition —
	// it reports how long it protected autonomously and hands gating back.
	EventDegradedHandback
	// EventCorrelatorCrash / EventCorrelatorRestart bracket a correlator
	// outage; restart carries what the checkpoint recovered.
	EventCorrelatorCrash
	EventCorrelatorRestart
	// EventLeaderElected: a correlator replica won an election and took
	// over the fleet state machine; Detail carries the ballot and what the
	// replicated log recovered.
	EventLeaderElected
	// EventQuorumLost / EventQuorumRestored bracket a leader's loss of its
	// acknowledgment quorum: between them the leader runs in explicit
	// degraded single-instance mode (PR 3 checkpoint/restart semantics).
	EventQuorumLost
	EventQuorumRestored
	// EventRerouteRejected: the verified-commit gate found the requested
	// backup flip unsafe (Detail carries the verifier's verdict), or a held
	// flip was abandoned after exhausting its retries.
	EventRerouteRejected
	// EventRerouteRepaired: an unsafe flip was diverted via an alternate
	// safe next hop instead.
	EventRerouteRepaired
	// EventRerouteHeld: no safe next hop exists right now; the flip is
	// parked and re-checked as the forwarding state evolves.
	EventRerouteHeld
	// EventVerifyFallback: a commit went through unverified — the verifier
	// is unavailable, errored, or a degraded agent rerouted autonomously.
	EventVerifyFallback
)

func (k EventKind) String() string {
	switch k {
	case EventAlarm:
		return "alarm"
	case EventLocalized:
		return "localized"
	case EventSuppressed:
		return "suppressed"
	case EventRerouted:
		return "rerouted"
	case EventLinkDown:
		return "link-down"
	case EventLinkUp:
		return "link-up"
	case EventLinkFlapping:
		return "link-flapping"
	case EventLinkCongested:
		return "link-congested"
	case EventPeerRestart:
		return "peer-restart"
	case EventSwitchUnreachable:
		return "switch-unreachable"
	case EventSwitchReachable:
		return "switch-reachable"
	case EventDegradedHandback:
		return "degraded-handback"
	case EventCorrelatorCrash:
		return "correlator-crash"
	case EventCorrelatorRestart:
		return "correlator-restart"
	case EventLeaderElected:
		return "leader-elected"
	case EventQuorumLost:
		return "quorum-lost"
	case EventQuorumRestored:
		return "quorum-restored"
	case EventRerouteRejected:
		return "reroute-rejected"
	case EventRerouteRepaired:
		return "reroute-repaired"
	case EventRerouteHeld:
		return "reroute-held"
	case EventVerifyFallback:
		return "verify-fallback"
	}
	return fmt.Sprintf("fleet-event(%d)", uint8(k))
}

// Event is one entry of the fleet-level event log.
type Event struct {
	Time sim.Time
	Kind EventKind
	// Link is the directed link ("A->B") the event concerns; for
	// per-switch events (EventPeerRestart, liveness, handback) it is the
	// switch's name.
	Link string
	// Entry is set for per-entry events (EventAlarm on a dedicated entry,
	// EventRerouted); netsim.InvalidEntry otherwise.
	Entry netsim.EntryID
	// Detail carries the human-readable specifics (suppression reason,
	// evidence summary).
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("[%v] %s %s", e.Time, e.Link, e.Kind)
	if e.Entry != netsim.InvalidEntry {
		s += fmt.Sprintf(" entry=%d", e.Entry)
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Health is the correlator's verdict on one directed link.
type Health uint8

// Link health states, in decreasing precedence.
const (
	HealthUnknown Health = iota
	HealthDown
	HealthFlapping
	HealthGray
	HealthCongested
	HealthHealthy
)

func (h Health) String() string {
	switch h {
	case HealthDown:
		return "down"
	case HealthFlapping:
		return "flapping"
	case HealthGray:
		return "GRAY"
	case HealthCongested:
		return "congested"
	case HealthHealthy:
		return "healthy"
	}
	return "unknown"
}

// handleReport consumes one report from a switch agent, after transport
// dedup. The correlator never processes anything while crashed (the
// management server already drops inbound then; this guard covers the
// legacy synchronous path).
func (f *Fleet) handleReport(sw string, payload any) {
	if f.crashed {
		return
	}
	switch r := payload.(type) {
	case eventReport:
		if f.staleEpoch(sw, r.Epoch) {
			f.Corr.StaleEvents++
			return
		}
		f.onDetectorEvent(sw, r.Ev)
	case rerouteReport:
		f.onRerouteReport(sw, r)
	case reconcileReport:
		f.Corr.Handbacks++
		f.emit(Event{Time: f.S.Now(), Kind: EventDegradedHandback, Link: sw, Entry: netsim.InvalidEntry,
			Detail: fmt.Sprintf("degraded since %v, %d local reroute(s)", r.Since, r.Reroutes)})
	}
}

// staleEpoch is the evidence-window epoch guard: event reports stamped with
// a previous detector incarnation's epoch (emitted before a restart,
// delivered after it by a slow management plane) are discarded, and an
// epoch advance purges the switch's pending evidence windows — counter
// state cannot be compared across a reboot.
func (f *Fleet) staleEpoch(sw string, epoch uint8) bool {
	if epoch == 0 {
		return false // unstamped (not expected, but fail open)
	}
	cur := f.epochCur[sw]
	switch epoch {
	case cur:
		return false
	case f.epochPrev[sw]:
		return true // a previous incarnation's report, delivered late
	}
	// First report of a new incarnation: adopt it and clamp any evidence
	// window still running against the old epoch's counters.
	if cur != 0 {
		f.purgeEpoch(sw)
	}
	f.epochPrev[sw] = cur
	f.epochCur[sw] = epoch
	return false
}

// purgeEpoch discards pending (unconfirmed) evidence on every link whose
// upstream detector just changed epochs, stopping the window timers so a
// verdict never fires over cross-epoch evidence. Confirmed verdicts stand.
func (f *Fleet) purgeEpoch(sw string) {
	now := f.S.Now()
	for _, key := range f.order {
		ls := f.links[key]
		if ls.dl.From != sw || !ls.verdictPending {
			continue
		}
		f.Corr.EpochPurges++
		n := len(ls.evidence)
		ls.suppressed += n
		f.Suppressed += n
		f.emit(Event{Time: now, Kind: EventSuppressed, Link: ls.key, Entry: netsim.InvalidEntry,
			Detail: fmt.Sprintf("epoch-change, %d alarm(s) discarded", n)})
		ls.verdictTimer.Stop()
		ls.verdictPending = false
		ls.evidence = nil
		for k := range ls.seen {
			delete(ls.seen, k)
		}
	}
	f.persist()
}

// onRerouteReport records a reroute performed at a switch (gated or
// degraded-local), deduplicating replays after crashes or partitions.
func (f *Fleet) onRerouteReport(sw string, r rerouteReport) {
	key := fmt.Sprintf("%s|%d|%d", sw, r.Port, r.Entry)
	if f.rerouteSeen[key] {
		return
	}
	f.rerouteSeen[key] = true
	f.Reroutes++
	linkKey := sw
	if ls, ok := f.portLink[sw][r.Port]; ok {
		linkKey = ls.key
	}
	detail := ""
	if r.Degraded {
		detail = "degraded-local"
	}
	f.emit(Event{Time: f.S.Now(), Kind: EventRerouted, Link: linkKey, Entry: r.Entry, Detail: detail})
	f.persist()
	if r.Degraded && f.verifier != nil {
		f.syncDegradedReroute(sw, r)
	}
}

// onDetectorEvent routes one detector event into the correlator. It runs
// for every monitored port of every switch — the first code in the repo
// that sees more than one detector at a time.
func (f *Fleet) onDetectorEvent(sw string, ev fancy.Event) {
	ls, ok := f.portLink[sw][ev.Port]
	if !ok {
		return // not an inter-switch port
	}
	now := f.S.Now()
	switch ev.Kind {
	case fancy.EventLinkDown:
		ls.downTimes = append(ls.downTimes, now)
		f.pruneFlaps(ls, now)
		f.emit(Event{Time: now, Kind: EventLinkDown, Link: ls.key, Entry: netsim.InvalidEntry})
		if !ls.flapping && len(ls.downTimes) >= f.cfg.FlapThreshold {
			ls.flapping = true
			f.emit(Event{Time: now, Kind: EventLinkFlapping, Link: ls.key, Entry: netsim.InvalidEntry,
				Detail: fmt.Sprintf("%d outages within %v", len(ls.downTimes), f.cfg.FlapWindow)})
		}
	case fancy.EventLinkUp:
		f.emit(Event{Time: now, Kind: EventLinkUp, Link: ls.key, Entry: netsim.InvalidEntry})
	case fancy.EventDedicated, fancy.EventTreeLeaf, fancy.EventUniform:
		f.onAlarm(ls, ev)
	}
	// EventTreeZoomStart is diagnostic only: zooming has begun, but there
	// is nothing to localize until a leaf (or the uniform test) reports.
}

// alarmKey collapses the per-session repetition of a persistent failure:
// one dedicated entry, one tree path or the uniform signal each count once
// per incident. Duplicated deliveries on the management channel collapse
// onto the same key, so evidence is never double-counted.
func alarmKey(ev fancy.Event) string {
	switch ev.Kind {
	case fancy.EventDedicated:
		return fmt.Sprintf("d/%d", ev.Entry)
	case fancy.EventTreeLeaf:
		return fmt.Sprintf("t/%v", ev.Path)
	default:
		return "uniform"
	}
}

func (f *Fleet) onAlarm(ls *linkState, ev fancy.Event) {
	now := f.S.Now()
	key := alarmKey(ev)
	if ls.seen[key] {
		return // same evidence, later session (or a duplicate): deduplicated
	}
	ls.seen[key] = true
	ls.alarms++
	f.Alarms++

	if ls.localized {
		// The link is already a confirmed gray link; new evidence extends
		// the affected set and reacts with no second window — through the
		// replicated log when one is running, so a reroute commit is never
		// lost to a leader crash.
		f.recordEvidence(ls, ev)
		if f.replicating() {
			f.propose("evidence "+ls.key, func() {
				f.react(ls, []fancy.Event{ev})
			})
			return
		}
		f.react(ls, []fancy.Event{ev})
		f.persist()
		return
	}
	entry := netsim.InvalidEntry
	if ev.Kind == fancy.EventDedicated {
		entry = ev.Entry
	}
	f.emit(Event{Time: now, Kind: EventAlarm, Link: ls.key, Entry: entry,
		Detail: ev.Kind.String()})
	ls.evidence = append(ls.evidence, ev)
	if !ls.verdictPending {
		ls.verdictPending = true
		ls.incidentStart = now
		ls.verdictTimer = f.S.Schedule(f.cfg.Window, func() { f.verdict(ls) })
	}
	// Consumed reports are already acknowledged and will never be
	// retransmitted: persist the accepted evidence now, or a crash before
	// the next periodic checkpoint loses the alarm for good (a degraded
	// reroute may remove the symptom, so it would never re-fire).
	f.persist()
}

// verdict closes an incident's evidence window. Before deciding, it
// refreshes both ends' restart counters through the management plane (the
// hardened Get path); the decision itself runs in finishVerdict once both
// reads complete or exhaust their retries. A crash between the two phases
// abandons the verdict — the restored correlator re-opens the window.
func (f *Fleet) verdict(ls *linkState) {
	if f.crashed {
		return
	}
	gen := f.corrGen
	pending := 2
	done := func() {
		pending--
		if pending == 0 && gen == f.corrGen && !f.crashed && ls.verdictPending {
			f.finishVerdict(ls)
		}
	}
	f.refreshRestarts(ls.dl.From, done)
	f.refreshRestarts(ls.dl.To, done)
}

// finishVerdict: either a competing explanation stands — and the alarms are
// discarded — or the link is localized as gray and the reaction fires.
func (f *Fleet) finishVerdict(ls *linkState) {
	ls.verdictPending = false
	now := f.S.Now()

	reason := ""
	switch {
	case f.Detectors[ls.dl.From].LinkDown(ls.port) || ls.flapping:
		// Counter state around an outage is untrustworthy, and a flapping
		// peer is its own diagnosis — not a gray link.
		reason = "link-flapping"
	case f.restartObserved[ls.dl.From] >= ls.incidentStart ||
		f.restartObserved[ls.dl.To] >= ls.incidentStart:
		// A rebooted device wiped its counters (epoch bump); evidence
		// spanning the restart cannot be trusted. The stale-epoch guard
		// makes this rare, but the correlator still refuses to localize
		// across a reboot.
		reason = "peer-restart"
	case f.congestedDuring(ls, ls.incidentStart, now):
		// §4.3 footnote 2: discard measurements collected while queues
		// were excessively long.
		reason = "congestion"
	}
	if reason != "" {
		n := len(ls.evidence)
		ls.suppressed += n
		f.Suppressed += n
		f.emit(Event{Time: now, Kind: EventSuppressed, Link: ls.key, Entry: netsim.InvalidEntry,
			Detail: fmt.Sprintf("%s, %d alarm(s) discarded", reason, n)})
		// Reset the incident: a genuine persistent failure will re-alarm
		// on later sessions and get a clean verdict.
		ls.evidence = nil
		for k := range ls.seen {
			delete(ls.seen, k)
		}
		f.persist()
		return
	}

	ls.localized = true
	ls.localizedAt = now
	f.Localizations++
	for _, ev := range ls.evidence {
		f.recordEvidence(ls, ev)
	}
	detail := fmt.Sprintf("%d alarm(s) in %v%s", len(ls.evidence), now-ls.incidentStart, f.corroboration(ls))
	if f.replicating() {
		// Replicated mode: the state change above rides the proposed
		// entry's checkpoint, but the externally visible actions — the
		// operator alert and the gating reroute commands — wait for the
		// acknowledgment quorum. The evidence stays on the link until the
		// commit closure runs, so a leader that dies pre-commit leaves a
		// checkpoint from which the next leader can finish the job (see
		// announcePending).
		f.propose("verdict "+ls.key, func() {
			f.announceLocalized(ls, detail)
		})
		return
	}
	f.announceLocalized(ls, detail)
	f.persist() // a confirmed verdict must survive any later crash
}

// announceLocalized fires a confirmed verdict's external effects: the
// EventLocalized alert and the evidence replay into the upstream reroute
// application. The alert is deduplicated on (link, localization time) — the
// same sink-level dedup an operator alerting pipeline applies — so a
// verdict that commits on one leader and is finished by its successor
// announces exactly once, and the reroute replay is idempotent at the
// agent. Clears the link's pending evidence either way.
func (f *Fleet) announceLocalized(ls *linkState, detail string) {
	if !ls.localized {
		return // superseded (acknowledged) before the commit landed
	}
	key := fmt.Sprintf("%s|%d", ls.key, int64(ls.localizedAt))
	if f.emitOnce(key, Event{Time: f.S.Now(), Kind: EventLocalized, Link: ls.key,
		Entry: netsim.InvalidEntry, Detail: detail}) {
		f.react(ls, ls.evidence)
	}
	ls.evidence = nil
	if f.replicating() {
		f.persist()
	}
}

// announcePending finishes verdicts a previous leader confirmed but never
// announced: a localized link restored with its evidence still attached
// means the commit closure never ran on the dead leader. The emitOnce dedup
// keeps this safe against the race where the old leader did announce just
// before dying.
func (f *Fleet) announcePending() {
	for _, key := range f.order {
		ls := f.links[key]
		if ls.localized && len(ls.evidence) > 0 {
			f.announceLocalized(ls, fmt.Sprintf("%d alarm(s), finished after failover", len(ls.evidence)))
		}
	}
}

func (f *Fleet) recordEvidence(ls *linkState, ev fancy.Event) {
	switch ev.Kind {
	case fancy.EventDedicated:
		ls.affected[ev.Entry] = true
	case fancy.EventTreeLeaf:
		ls.treePaths++
	}
}

// react replays the confirmed evidence into the link's reroute application
// at the upstream switch — a gating command over the management plane.
func (f *Fleet) react(ls *linkState, evidence []fancy.Event) {
	a := f.agents[ls.dl.From]
	app, ok := a.apps[ls.port]
	if !ok {
		return // nothing protected there
	}
	if f.verifier != nil {
		f.gatedReact(ls, app, evidence)
		return
	}
	for _, ev := range evidence {
		f.command(ls.dl.From, rerouteCmd{Port: ls.port, Ev: ev})
	}
}

// corroboration reports multi-vantage context for a localization: other
// links currently alarming or localized share the blame only if the same
// dedicated entries appear there — otherwise the verdict stands alone.
func (f *Fleet) corroboration(ls *linkState) string {
	multi := 0
	for _, key := range f.order {
		other := f.links[key]
		if other == ls || (!other.localized && len(other.evidence) == 0) {
			continue
		}
		for _, ev := range other.evidence {
			if ev.Kind == fancy.EventDedicated && ls.affected[ev.Entry] {
				multi++
			}
		}
		for e := range other.affected {
			if ls.affected[e] {
				multi++
			}
		}
	}
	if multi == 0 {
		return ""
	}
	return fmt.Sprintf(", %d shared-entry alarm(s) elsewhere: possible multi-point failure", multi)
}

// refreshRestarts reads a switch's restart counter through the management
// plane (hardened Get: timeout, bounded retries, backoff) and records any
// advance with an EventPeerRestart plus an observation timestamp that
// finishVerdict checks against the incident window. done always fires
// exactly once; an unreachable switch counts a GetFail and leaves the
// cached observation in place (fail open — a persisting failure re-alarms,
// so a wrong verdict self-corrects at the next incident).
func (f *Fleet) refreshRestarts(sw string, done func()) {
	gen := f.corrGen
	f.remoteGet(sw, "/fancy/stats/restarts", func(v any, err error) {
		defer func() {
			if done != nil {
				done()
			}
		}()
		if gen != f.corrGen || f.crashed {
			return // response addressed to a crashed incarnation
		}
		if err != nil {
			f.Corr.GetFails++
			return
		}
		if r := v.(int); r > f.restartsSeen[sw] {
			f.restartsSeen[sw] = r
			f.restartObserved[sw] = f.S.Now()
			f.emit(Event{Time: f.S.Now(), Kind: EventPeerRestart, Link: sw, Entry: netsim.InvalidEntry,
				Detail: fmt.Sprintf("restart counter now %d", r)})
		}
	})
}

// congestedDuring reports whether the link itself or any egress queue of
// its downstream switch was congested in [from, to] — the two positions
// where queue build-up can coincide with (and explain away) loss that an
// operator would otherwise blame on the link.
func (f *Fleet) congestedDuring(ls *linkState, from, to sim.Time) bool {
	if ls.guard != nil && ls.guard.Congested(ls.port, from, to) {
		return true
	}
	for _, nb := range f.Net.Neighbors(ls.dl.To) {
		if nb == ls.dl.From {
			continue
		}
		if down, ok := f.links[ls.dl.To+"->"+nb]; ok && down.guard != nil &&
			down.guard.Congested(down.port, from, to) {
			return true
		}
	}
	return false
}

// pruneFlaps drops link-down reports older than the flap window and clears
// the flapping classification once the window is quiet again.
func (f *Fleet) pruneFlaps(ls *linkState, now sim.Time) {
	cutoff := now - f.cfg.FlapWindow
	keep := ls.downTimes[:0]
	for _, t := range ls.downTimes {
		if t >= cutoff {
			keep = append(keep, t)
		}
	}
	ls.downTimes = keep
	if ls.flapping && len(ls.downTimes) == 0 && !f.Detectors[ls.dl.From].LinkDown(ls.port) {
		ls.flapping = false
	}
}

// healthOf resolves a link's current health, in precedence order.
func (f *Fleet) healthOf(ls *linkState, now sim.Time) Health {
	det := f.Detectors[ls.dl.From]
	switch {
	case det.LinkDown(ls.port):
		return HealthDown
	case ls.flapping:
		return HealthFlapping
	case ls.localized:
		return HealthGray
	case ls.guard != nil && ls.guard.Congested(ls.port, now-f.cfg.SweepInterval, now):
		return HealthCongested
	case det.SessionsCompleted(ls.port) > 0:
		return HealthHealthy
	}
	return HealthUnknown
}

// sweep is the correlator's periodic pass: it refreshes flap state, samples
// the per-switch restart counters over the management plane, tracks agent
// liveness from heartbeats, and emits health-transition events.
func (f *Fleet) sweep() {
	if f.crashed {
		return
	}
	now := f.S.Now()
	for _, key := range f.order {
		ls := f.links[key]
		f.pruneFlaps(ls, now)
		h := f.healthOf(ls, now)
		if h != ls.lastHealth {
			if h == HealthCongested {
				f.emit(Event{Time: now, Kind: EventLinkCongested, Link: ls.key, Entry: netsim.InvalidEntry})
			}
			ls.lastHealth = h
		}
	}
	// Restart counters, sampled here for the event log even when no
	// verdict forces a fresh read; plus heartbeat-liveness transitions.
	for _, sw := range f.switches {
		f.refreshRestarts(sw, nil)
		if f.mgmtSrv != nil {
			alive := f.mgmtSrv.Alive(sw)
			if was, seen := f.aliveSeen[sw]; !seen || was != alive {
				if seen && !alive {
					f.emit(Event{Time: now, Kind: EventSwitchUnreachable, Link: sw, Entry: netsim.InvalidEntry})
				} else if seen {
					f.emit(Event{Time: now, Kind: EventSwitchReachable, Link: sw, Entry: netsim.InvalidEntry})
				}
				f.aliveSeen[sw] = alive
			}
		}
	}
	f.sweepTimer = f.S.Schedule(f.cfg.SweepInterval, f.sweep)
}
