// Package fleet is the ISP-wide control plane over FANcY: it deploys a
// detector at every switch of a topo topology, opens counting sessions on
// both directions of every inter-switch link (the full deployment of §4.3,
// "monitors all links, one by one"), and runs a central correlator that
// turns the resulting firehose of per-pair alarms into network-level
// verdicts.
//
// The paper frames FANcY as a per-link building block (Figure 1); an ISP
// operates hundreds of them at once. The fleet layer adds what the paper
// leaves to the operator:
//
//   - deduplication: a persistent gray failure re-flags the same entry every
//     counting session; the correlator collapses those into one incident;
//   - localization: an alarm is attributed to the exact directed link whose
//     upstream detector raised it, and only confirmed after an evidence
//     window in which competing explanations are ruled out;
//   - discrimination: alarms raised while the link (or the downstream
//     switch's egress queues) were congested are discarded, as §4.3
//     footnote 2 prescribes; alarms from a flapping or restarting peer
//     (the PR-1 link-down/epoch signals, read through the same
//     /fancy/stats telemetry paths operators use) are suppressed rather
//     than misreported as gray links;
//   - reaction: once a link is localized, the recorded evidence is replayed
//     into the internal/reroute application of that link, diverting exactly
//     the affected entries to their backup next hops (§6.1);
//   - reporting: a fleet-level event log plus an aggregate Snapshot with
//     per-link health, localization timestamps and robustness counters.
//
// Survivability (this layer's own gray-failure story): when Config.Mgmt is
// set, every report and read between a switch's telemetry agent and the
// correlator traverses a simulated management network (internal/mgmt) with
// seed-deterministic loss, delay, duplication and partitions. Both ends are
// hardened for it: agents ship sequence-numbered, epoch-stamped reports
// with bounded retries and an offline spool; the correlator deduplicates,
// detects sequence holes, tracks per-switch liveness from heartbeats,
// checkpoints its evidence windows and verdicts, and survives crash/restart
// by replaying the checkpoint and reconciling with live telemetry. A switch
// partitioned from the correlator falls back to degraded-mode local
// protection — the per-link reroute application keeps protecting dedicated
// entries autonomously — and hands control back when the partition heals,
// with no duplicate confirmed verdicts.
package fleet

import (
	"fmt"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/hh"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/sim"
	"fancy/internal/telemetry"
	"fancy/internal/topo"
	"fancy/internal/verify"
)

// correlatorEndpoint is the correlator's management-network address.
const correlatorEndpoint = "correlator"

// Config tunes the fleet control plane.
type Config struct {
	// Fancy is the per-detector configuration applied at every switch.
	Fancy fancy.Config

	// Window is the evidence-gathering delay between the first alarm on a
	// link and the correlator's verdict; corroborating alarms accumulate
	// and competing explanations (flap, restart, congestion) are checked
	// at the end. Default 100 ms — two dedicated counting sessions.
	Window sim.Time

	// SweepInterval is the cadence of the correlator's health sweep, which
	// reads each detector's /fancy/stats counters through telemetry and
	// emits health-transition events. Default 250 ms.
	SweepInterval sim.Time

	// FlapWindow and FlapThreshold classify a link as flapping when at
	// least FlapThreshold link-down reports land within FlapWindow.
	// Defaults: 2 reports in 5 s.
	FlapWindow    sim.Time
	FlapThreshold int

	// CongestionBytes is the per-direction transmit-queue depth above
	// which the link's queue guard marks the surrounding window congested
	// (suppressing gray verdicts, §4.3 footnote 2). Default 256 KB;
	// negative disables congestion guarding.
	CongestionBytes int

	// GuardInterval is the queue-sampling cadence of the per-link guards.
	// Default 5 ms.
	GuardInterval sim.Time

	// Mgmt, when non-nil, interposes a simulated management network
	// between every switch's telemetry agent and the correlator. Nil keeps
	// the legacy perfect in-process channel (reports deliver instantly and
	// reads are synchronous), which is also the degenerate zero-impairment
	// configuration.
	Mgmt *mgmt.Config

	// CheckpointInterval is the cadence at which the correlator checkpoints
	// its evidence windows, verdicts and health state for crash recovery.
	// Default 250 ms; negative disables checkpointing.
	CheckpointInterval sim.Time

	// Replicas runs the correlator as a consensus group of this many
	// replicas (endpoints "corr0".."corrN-1") instead of a single instance:
	// confirmed verdicts, gating reroute commits and evidence-window
	// checkpoints travel a Paxos-style replicated log over the management
	// network, leader election is driven by phi-accrual suspicion of the
	// leader's beats, and switch agents discover the leader by redirect.
	// Requires Mgmt. 0 or 1 keeps the single-instance correlator.
	Replicas int

	// HH, when non-nil, deploys the heavy-hitter stage on every detector
	// and runs a counter-allocation controller in each switch agent: the
	// stage's periodic top-k reports drive hysteresis-gated promotion of
	// hot prefixes into the switch's dynamic dedicated-counter slots (and
	// demotion once they cool), so newly hot traffic is detected at
	// dedicated-counter speed instead of waiting out tree zooming. The
	// loop is local to each switch — it keeps allocating through
	// management-plane partitions.
	HH *HHFleetConfig

	// Verify, when non-nil, gates every fleet-wide reroute commit behind an
	// incremental atom-based safety check (internal/verify): a flip whose
	// post-commit forwarding state would contain a loop or blackhole is
	// rejected and repaired (alternate next hop, or hold-and-retry).
	// Requires routes to be installed before New so the model snapshot is
	// accurate. See internal/fleet/verify.go for the gate semantics.
	Verify *VerifyConfig
}

// HHFleetConfig tunes the fleet's heavy-hitter allocation loop.
type HHFleetConfig struct {
	// Sketch sizes each detector's per-port sketch (defaults 3×32; each
	// port derives its own seed from Sketch.Seed).
	Sketch hh.Params

	// ReportInterval and TopK parameterize the per-port digests (defaults
	// 100 ms, 8 entries).
	ReportInterval sim.Time
	TopK           int

	// DynamicSlots is the number of runtime-assignable dedicated-counter
	// slots per port, beyond Fancy.HighPriority (default 8).
	DynamicSlots int

	// PromoteAfter, DemoteAfter and MinCount are the allocator's
	// hysteresis knobs (defaults 2 consecutive hot reports to promote, 3
	// consecutive absences to demote, window count ≥ 2 to qualify).
	PromoteAfter int
	DemoteAfter  int
	MinCount     uint32
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 100 * sim.Millisecond
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 250 * sim.Millisecond
	}
	if c.FlapWindow == 0 {
		c.FlapWindow = 5 * sim.Second
	}
	if c.FlapThreshold == 0 {
		c.FlapThreshold = 2
	}
	if c.CongestionBytes == 0 {
		c.CongestionBytes = 256 << 10
	}
	if c.GuardInterval == 0 {
		c.GuardInterval = 5 * sim.Millisecond
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 250 * sim.Millisecond
	}
	if c.Verify != nil {
		v := *c.Verify
		if v.HoldRetry == 0 {
			v.HoldRetry = 100 * sim.Millisecond
		}
		if v.MaxRetries == 0 {
			v.MaxRetries = 5
		}
		c.Verify = &v
	}
	if c.HH != nil {
		h := *c.HH
		if h.DynamicSlots == 0 {
			h.DynamicSlots = 8
		}
		c.HH = &h
		// Project the fleet knobs onto the per-detector config; the
		// sketch and digest defaults cascade through fancy/hh.
		c.Fancy.HH = &fancy.HHStageConfig{
			Sketch:         h.Sketch,
			ReportInterval: h.ReportInterval,
			TopK:           h.TopK,
		}
		c.Fancy.DynamicSlots = h.DynamicSlots
	}
	return c
}

// linkState is the correlator's per-directed-link record.
type linkState struct {
	dl    topo.DirectedLink
	key   string // "from->to"
	port  int    // monitored egress port at dl.From
	guard *fancy.QueueGuard

	// Current incident (between first alarm and verdict).
	incidentStart  sim.Time
	evidence       []fancy.Event
	seen           map[string]bool // dedup keys of alarms already counted
	verdictPending bool
	verdictTimer   *sim.Timer

	localized   bool
	localizedAt sim.Time
	affected    map[netsim.EntryID]bool // flagged dedicated entries
	treePaths   int                     // flagged hash paths (not invertible)

	downTimes  []sim.Time // recent link-down reports, for flap detection
	flapping   bool
	alarms     int // deduped alarms, lifetime
	suppressed int // alarms discarded by the correlator, lifetime

	lastHealth Health
}

// CorrelatorStats are the correlator's management-plane robustness counters.
type CorrelatorStats struct {
	// StaleEvents counts event reports discarded because they were stamped
	// with a detector epoch that predates the switch's current incarnation
	// (emitted before a restart, delivered after).
	StaleEvents uint64
	// EpochPurges counts evidence windows cleared because the upstream
	// switch's epoch advanced mid-window.
	EpochPurges uint64
	// GetFails counts verdict- or sweep-time telemetry reads that exhausted
	// their retry budget (switch unreachable over the management plane).
	GetFails uint64
	// RerouteCmdFails counts gating commands the correlator could not
	// deliver to a switch agent.
	RerouteCmdFails uint64
	// Checkpoints, Crashes and Restores count correlator lifecycle events.
	Checkpoints uint64
	Crashes     uint64
	Restores    uint64
	// Handbacks counts degraded-mode reconciliations received from agents
	// after a partition healed.
	Handbacks uint64
	// Elections counts leader-election campaigns started by any replica
	// (including retries); Failovers counts completed takeovers where a new
	// leader restored the fleet state machine from the replicated log.
	Elections uint64
	Failovers uint64
	// QuorumLosses counts transitions into degraded single-instance mode (a
	// leader alive but unable to reach an acknowledgment majority).
	QuorumLosses uint64
	// WireRejects counts consensus datagrams dropped by the strict decoder.
	WireRejects uint64
}

// Fleet is a deployed ISP-wide control plane.
type Fleet struct {
	S   *sim.Sim
	Net *topo.Network
	cfg Config

	// Detectors and Telemetry hold one FANcY instance and one telemetry
	// server per switch.
	Detectors map[string]*fancy.Detector
	Telemetry map[string]*telemetry.Server

	switches []string // sorted switch names, the canonical iteration order
	agents   map[string]*switchAgent

	// Management plane (nil in legacy in-process mode). With replication,
	// mgmtSrv always points at the ACTIVE replica's server — the one
	// driving the fleet state machine — and is re-aimed on failover.
	mgmtNet *mgmt.Network
	mgmtSrv *mgmt.Server
	group   *corrGroup // nil unless cfg.Replicas > 1

	// announced deduplicates externally visible verdict announcements
	// (operator alerts + reroute replays) across crashes and failovers,
	// keyed "link|localizedAt" — the sink-level dedup an operator alerting
	// pipeline applies.
	announced map[string]bool

	links    map[string]*linkState
	order    []string // sorted link keys, the canonical iteration order
	portLink map[string]map[int]*linkState

	// Correlator working state (wiped by a crash, rebuilt from checkpoint).
	restartsSeen    map[string]int      // per-switch restart counter at last read
	restartObserved map[string]sim.Time // when an advance was last observed
	epochCur        map[string]uint8    // per-switch detector epoch, from report stamps
	epochPrev       map[string]uint8
	rerouteSeen     map[string]bool // "sw|port|entry" reroutes already recorded
	aliveSeen       map[string]bool // last sweep's per-switch liveness

	crashed    bool
	corrGen    int // bumped by each crash; stale async callbacks check it
	lastCkpt   *Checkpoint
	sweepTimer *sim.Timer
	ckptTimer  *sim.Timer

	// Verified-commit gate (populated only with Config.Verify; see
	// internal/fleet/verify.go).
	verifier    *verify.Model
	verifyDown  bool             // verify-unavailable fallback engaged
	verifySeen  map[string]uint8 // decision key → outcome
	verifyLog   []VerifyDecision
	verifyHeld  []*heldReroute
	verifyTimer *sim.Timer

	// Verify tallies the gate's work (zero-valued without Config.Verify).
	Verify VerifyStats

	// Events is the fleet-level event log; OnEvent, if set, streams it.
	Events  []Event
	OnEvent func(Event)

	// Aggregate counters.
	Alarms        int // deduped alarms across all links
	Suppressed    int // alarms discarded (congestion/flap/restart)
	Localizations int
	Reroutes      int

	// Corr tallies management-plane robustness at the correlator.
	Corr CorrelatorStats
}

// New deploys FANcY on every switch of net, monitors both directions of
// every inter-switch link, and starts the correlator. The topology's routes
// should already be installed (the detectors themselves need none, but the
// traffic under observation does).
func New(s *sim.Sim, net *topo.Network, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		S: s, Net: net, cfg: cfg,
		Detectors:       make(map[string]*fancy.Detector),
		Telemetry:       make(map[string]*telemetry.Server),
		agents:          make(map[string]*switchAgent),
		links:           make(map[string]*linkState),
		portLink:        make(map[string]map[int]*linkState),
		restartsSeen:    make(map[string]int),
		restartObserved: make(map[string]sim.Time),
		epochCur:        make(map[string]uint8),
		epochPrev:       make(map[string]uint8),
		rerouteSeen:     make(map[string]bool),
		aliveSeen:       make(map[string]bool),
		announced:       make(map[string]bool),
		verifySeen:      make(map[string]uint8),
	}
	for sw := range net.Switches {
		f.switches = append(f.switches, sw)
	}
	sort.Strings(f.switches)
	if cfg.Replicas > 1 && cfg.Mgmt == nil {
		return nil, fmt.Errorf("fleet: Replicas=%d requires a management network (Config.Mgmt)", cfg.Replicas)
	}
	if cfg.Mgmt != nil {
		f.mgmtNet = mgmt.NewNetwork(s, *cfg.Mgmt)
		onReport := func(from string, seq uint64, payload any) {
			f.handleReport(from, payload)
		}
		if cfg.Replicas > 1 {
			f.group = newCorrGroup(f, cfg.Replicas, onReport)
			f.mgmtSrv = f.group.replicas[0].srv
		} else {
			f.mgmtSrv = mgmt.NewServer(s, f.mgmtNet, correlatorEndpoint)
			f.mgmtSrv.OnReport = onReport
		}
	}
	for _, sw := range f.switches {
		det, err := fancy.NewDetector(s, net.Switches[sw], cfg.Fancy)
		if err != nil {
			return nil, fmt.Errorf("fleet: detector at %q: %w", sw, err)
		}
		f.Detectors[sw] = det
		f.portLink[sw] = make(map[int]*linkState)
	}
	for _, dl := range net.DirectedLinks() {
		port := net.PortOf[dl.From][dl.To]
		f.Detectors[dl.From].MonitorPort(port)
		f.Detectors[dl.To].ListenPort(net.PortOf[dl.To][dl.From])
		ls := &linkState{
			dl: dl, key: dl.String(), port: port,
			seen:     make(map[string]bool),
			affected: make(map[netsim.EntryID]bool),
		}
		if cfg.CongestionBytes >= 0 {
			ls.guard = fancy.NewQueueGuard(s, cfg.CongestionBytes, cfg.GuardInterval)
			ls.guard.Watch(net.Direction(dl.From, dl.To))
		}
		f.links[ls.key] = ls
		f.order = append(f.order, ls.key)
		f.portLink[dl.From][port] = ls
	}
	sort.Strings(f.order)
	// One telemetry server and one management agent per switch over its
	// monitored ports; detector events flow through the telemetry server
	// (so external subscribers share the stream), into the agent, and from
	// there over the management plane into the correlator.
	for _, sw := range f.switches {
		var ports []int
		for port := range f.portLink[sw] {
			ports = append(ports, port)
		}
		sort.Ints(ports)
		srv := telemetry.NewServer(s, f.Detectors[sw], ports...)
		f.Telemetry[sw] = srv
		a := newSwitchAgent(f, sw, srv)
		f.agents[sw] = a
		f.Detectors[sw].OnEvent = srv.AttachEvents(a.onDetectorEvent)
		if cfg.HH != nil {
			f.Detectors[sw].OnHHReport = a.onHHReport
			a.mountHHStats()
		}
	}
	if cfg.Verify != nil {
		f.verifier = verify.NewModel(net)
		f.mountVerifyStats()
	}
	f.sweepTimer = s.Schedule(cfg.SweepInterval, f.sweep)
	if cfg.CheckpointInterval > 0 {
		f.ckptTimer = s.Schedule(cfg.CheckpointInterval, f.periodicCheckpoint)
	}
	return f, nil
}

// MgmtEnabled reports whether the fleet runs over a simulated management
// network (as opposed to the perfect in-process channel).
func (f *Fleet) MgmtEnabled() bool { return f.mgmtNet != nil }

// MgmtNetwork exposes the management network for fault injection (nil in
// legacy mode).
func (f *Fleet) MgmtNetwork() *mgmt.Network { return f.mgmtNet }

// PartitionSwitch cuts a switch's telemetry agent off the management
// network; its detectors keep running and, if entries are protected there,
// degraded-mode local protection takes over. No-op in legacy mode.
func (f *Fleet) PartitionSwitch(sw string) {
	if f.mgmtNet != nil {
		f.mgmtNet.Partition(sw)
	}
}

// HealSwitch reconnects a partitioned switch; its agent replays spooled
// reports and hands gating back to the correlator.
func (f *Fleet) HealSwitch(sw string) {
	if f.mgmtNet != nil {
		f.mgmtNet.Heal(sw)
	}
}

// Degraded reports whether a switch's agent is currently in degraded-mode
// local protection (always false in legacy mode).
func (f *Fleet) Degraded(sw string) bool {
	a, ok := f.agents[sw]
	return ok && a.degraded
}

// Link returns the correlator's view of a directed link ("A->B" key),
// primarily for tests and reporting.
func (f *Fleet) link(key string) *linkState { return f.links[key] }

// Localized lists the directed links currently localized as gray, sorted.
func (f *Fleet) Localized() []string {
	var out []string
	for _, key := range f.order {
		if f.links[key].localized {
			out = append(out, key)
		}
	}
	return out
}

// LocalizedAt reports when a directed link was localized (0 if it is not).
func (f *Fleet) LocalizedAt(key string) sim.Time {
	if ls, ok := f.links[key]; ok && ls.localized {
		return ls.localizedAt
	}
	return 0
}

// AffectedEntries lists the dedicated entries confirmed failing on a
// localized link, sorted.
func (f *Fleet) AffectedEntries(key string) []netsim.EntryID {
	ls, ok := f.links[key]
	if !ok {
		return nil
	}
	var out []netsim.EntryID
	for e := range ls.affected {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Protect registers an entry for gated fast rerouting at a switch. The
// route's primary port must be a monitored inter-switch port and its Backup
// must be valid; when the correlator localizes that port's link as gray,
// the triggering evidence is replayed into the reroute application and the
// entry flips to its backup next hop. Unlike a raw reroute.App wired
// straight into a detector, reaction waits for the correlator's verdict —
// alarms explained by congestion, flapping or a peer restart divert nothing
// — except in degraded mode, when the agent cannot reach the correlator and
// the per-link application protects autonomously.
func (f *Fleet) Protect(sw string, entry netsim.EntryID, route *netsim.Route) error {
	a, ok := f.agents[sw]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", sw)
	}
	if _, ok := f.portLink[sw][route.Port]; !ok {
		return fmt.Errorf("fleet: switch %q port %d is not a monitored inter-switch port", sw, route.Port)
	}
	app, ok := a.apps[route.Port]
	if !ok {
		app = reroute.New(f.S, f.Detectors[sw], route.Port)
		port := route.Port
		app.OnReroute = func(e netsim.EntryID, at sim.Time) {
			a.onLocalReroute(port, e, at)
		}
		a.apps[route.Port] = app
	}
	app.Protect(entry, route)
	return nil
}

// Rerouted reports whether a protected entry is on its backup path at sw.
func (f *Fleet) Rerouted(sw string, entry netsim.EntryID) bool {
	a, ok := f.agents[sw]
	if !ok {
		return false
	}
	for _, app := range a.apps {
		if app.Rerouted(entry) {
			return true
		}
	}
	return false
}

// Acknowledge clears a localized link after the operator acted on it: the
// detector outputs are wiped and the correlator state reset, so a
// persisting failure will re-alarm and re-localize.
func (f *Fleet) Acknowledge(key string) {
	ls, ok := f.links[key]
	if !ok {
		return
	}
	f.Detectors[ls.dl.From].Acknowledge(ls.port)
	ls.localized = false
	ls.localizedAt = 0
	ls.evidence = nil
	ls.seen = make(map[string]bool)
	ls.affected = make(map[netsim.EntryID]bool)
	ls.treePaths = 0
}

func (f *Fleet) emit(ev Event) {
	f.Events = append(f.Events, ev)
	if f.OnEvent != nil {
		f.OnEvent(ev)
	}
}

// emitOnce emits ev unless key was already announced, reporting whether it
// emitted. The announced set survives correlator crashes and failovers —
// it models the alert sink, not correlator state.
func (f *Fleet) emitOnce(key string, ev Event) bool {
	if f.announced[key] {
		return false
	}
	f.announced[key] = true
	f.emit(ev)
	return true
}
