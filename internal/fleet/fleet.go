// Package fleet is the ISP-wide control plane over FANcY: it deploys a
// detector at every switch of a topo topology, opens counting sessions on
// both directions of every inter-switch link (the full deployment of §4.3,
// "monitors all links, one by one"), and runs a central correlator that
// turns the resulting firehose of per-pair alarms into network-level
// verdicts.
//
// The paper frames FANcY as a per-link building block (Figure 1); an ISP
// operates hundreds of them at once. The fleet layer adds what the paper
// leaves to the operator:
//
//   - deduplication: a persistent gray failure re-flags the same entry every
//     counting session; the correlator collapses those into one incident;
//   - localization: an alarm is attributed to the exact directed link whose
//     upstream detector raised it, and only confirmed after an evidence
//     window in which competing explanations are ruled out;
//   - discrimination: alarms raised while the link (or the downstream
//     switch's egress queues) were congested are discarded, as §4.3
//     footnote 2 prescribes; alarms from a flapping or restarting peer
//     (the PR-1 link-down/epoch signals, read through the same
//     /fancy/stats telemetry paths operators use) are suppressed rather
//     than misreported as gray links;
//   - reaction: once a link is localized, the recorded evidence is replayed
//     into the internal/reroute application of that link, diverting exactly
//     the affected entries to their backup next hops (§6.1);
//   - reporting: a fleet-level event log plus an aggregate Snapshot with
//     per-link health, localization timestamps and robustness counters.
package fleet

import (
	"fmt"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/reroute"
	"fancy/internal/sim"
	"fancy/internal/telemetry"
	"fancy/internal/topo"
)

// Config tunes the fleet control plane.
type Config struct {
	// Fancy is the per-detector configuration applied at every switch.
	Fancy fancy.Config

	// Window is the evidence-gathering delay between the first alarm on a
	// link and the correlator's verdict; corroborating alarms accumulate
	// and competing explanations (flap, restart, congestion) are checked
	// at the end. Default 100 ms — two dedicated counting sessions.
	Window sim.Time

	// SweepInterval is the cadence of the correlator's health sweep, which
	// reads each detector's /fancy/stats counters through telemetry and
	// emits health-transition events. Default 250 ms.
	SweepInterval sim.Time

	// FlapWindow and FlapThreshold classify a link as flapping when at
	// least FlapThreshold link-down reports land within FlapWindow.
	// Defaults: 2 reports in 5 s.
	FlapWindow    sim.Time
	FlapThreshold int

	// CongestionBytes is the per-direction transmit-queue depth above
	// which the link's queue guard marks the surrounding window congested
	// (suppressing gray verdicts, §4.3 footnote 2). Default 256 KB;
	// negative disables congestion guarding.
	CongestionBytes int

	// GuardInterval is the queue-sampling cadence of the per-link guards.
	// Default 5 ms.
	GuardInterval sim.Time
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 100 * sim.Millisecond
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 250 * sim.Millisecond
	}
	if c.FlapWindow == 0 {
		c.FlapWindow = 5 * sim.Second
	}
	if c.FlapThreshold == 0 {
		c.FlapThreshold = 2
	}
	if c.CongestionBytes == 0 {
		c.CongestionBytes = 256 << 10
	}
	if c.GuardInterval == 0 {
		c.GuardInterval = 5 * sim.Millisecond
	}
	return c
}

// linkState is the correlator's per-directed-link record.
type linkState struct {
	dl    topo.DirectedLink
	key   string // "from->to"
	port  int    // monitored egress port at dl.From
	guard *fancy.QueueGuard

	// Current incident (between first alarm and verdict).
	incidentStart  sim.Time
	evidence       []fancy.Event
	seen           map[string]bool // dedup keys of alarms already counted
	verdictPending bool

	localized   bool
	localizedAt sim.Time
	affected    map[netsim.EntryID]bool // flagged dedicated entries
	treePaths   int                     // flagged hash paths (not invertible)

	downTimes  []sim.Time // recent link-down reports, for flap detection
	flapping   bool
	alarms     int // deduped alarms, lifetime
	suppressed int // alarms discarded by the correlator, lifetime

	lastHealth Health
}

// Fleet is a deployed ISP-wide control plane.
type Fleet struct {
	S   *sim.Sim
	Net *topo.Network
	cfg Config

	// Detectors and Telemetry hold one FANcY instance and one telemetry
	// server per switch.
	Detectors map[string]*fancy.Detector
	Telemetry map[string]*telemetry.Server

	links    map[string]*linkState
	order    []string // sorted link keys, the canonical iteration order
	portLink map[string]map[int]*linkState
	apps     map[string]*reroute.App // "sw|port" → reroute application

	restartsSeen map[string]int // per-switch restart counter at last read

	// Events is the fleet-level event log; OnEvent, if set, streams it.
	Events  []Event
	OnEvent func(Event)

	// Aggregate counters.
	Alarms        int // deduped alarms across all links
	Suppressed    int // alarms discarded (congestion/flap/restart)
	Localizations int
	Reroutes      int
}

// New deploys FANcY on every switch of net, monitors both directions of
// every inter-switch link, and starts the correlator. The topology's routes
// should already be installed (the detectors themselves need none, but the
// traffic under observation does).
func New(s *sim.Sim, net *topo.Network, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		S: s, Net: net, cfg: cfg,
		Detectors:    make(map[string]*fancy.Detector),
		Telemetry:    make(map[string]*telemetry.Server),
		links:        make(map[string]*linkState),
		portLink:     make(map[string]map[int]*linkState),
		apps:         make(map[string]*reroute.App),
		restartsSeen: make(map[string]int),
	}
	var switches []string
	for sw := range net.Switches {
		switches = append(switches, sw)
	}
	sort.Strings(switches)
	for _, sw := range switches {
		det, err := fancy.NewDetector(s, net.Switches[sw], cfg.Fancy)
		if err != nil {
			return nil, fmt.Errorf("fleet: detector at %q: %w", sw, err)
		}
		f.Detectors[sw] = det
		f.portLink[sw] = make(map[int]*linkState)
	}
	for _, dl := range net.DirectedLinks() {
		port := net.PortOf[dl.From][dl.To]
		f.Detectors[dl.From].MonitorPort(port)
		f.Detectors[dl.To].ListenPort(net.PortOf[dl.To][dl.From])
		ls := &linkState{
			dl: dl, key: dl.String(), port: port,
			seen:     make(map[string]bool),
			affected: make(map[netsim.EntryID]bool),
		}
		if cfg.CongestionBytes >= 0 {
			ls.guard = fancy.NewQueueGuard(s, cfg.CongestionBytes, cfg.GuardInterval)
			ls.guard.Watch(net.Direction(dl.From, dl.To))
		}
		f.links[ls.key] = ls
		f.order = append(f.order, ls.key)
		f.portLink[dl.From][port] = ls
	}
	sort.Strings(f.order)
	// One telemetry server per switch over its monitored ports; detector
	// events flow through it (so external subscribers share the stream)
	// and then into the correlator.
	for _, sw := range switches {
		var ports []int
		for port := range f.portLink[sw] {
			ports = append(ports, port)
		}
		sort.Ints(ports)
		srv := telemetry.NewServer(s, f.Detectors[sw], ports...)
		f.Telemetry[sw] = srv
		name := sw
		f.Detectors[sw].OnEvent = srv.AttachEvents(func(ev fancy.Event) {
			f.onDetectorEvent(name, ev)
		})
	}
	s.Schedule(cfg.SweepInterval, f.sweep)
	return f, nil
}

// Link returns the correlator's view of a directed link ("A->B" key),
// primarily for tests and reporting.
func (f *Fleet) link(key string) *linkState { return f.links[key] }

// Localized lists the directed links currently localized as gray, sorted.
func (f *Fleet) Localized() []string {
	var out []string
	for _, key := range f.order {
		if f.links[key].localized {
			out = append(out, key)
		}
	}
	return out
}

// LocalizedAt reports when a directed link was localized (0 if it is not).
func (f *Fleet) LocalizedAt(key string) sim.Time {
	if ls, ok := f.links[key]; ok && ls.localized {
		return ls.localizedAt
	}
	return 0
}

// AffectedEntries lists the dedicated entries confirmed failing on a
// localized link, sorted.
func (f *Fleet) AffectedEntries(key string) []netsim.EntryID {
	ls, ok := f.links[key]
	if !ok {
		return nil
	}
	var out []netsim.EntryID
	for e := range ls.affected {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Protect registers an entry for gated fast rerouting at a switch. The
// route's primary port must be a monitored inter-switch port and its Backup
// must be valid; when the correlator localizes that port's link as gray,
// the triggering evidence is replayed into the reroute application and the
// entry flips to its backup next hop. Unlike a raw reroute.App wired
// straight into a detector, reaction waits for the correlator's verdict —
// alarms explained by congestion, flapping or a peer restart divert nothing.
func (f *Fleet) Protect(sw string, entry netsim.EntryID, route *netsim.Route) error {
	det, ok := f.Detectors[sw]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", sw)
	}
	ls, ok := f.portLink[sw][route.Port]
	if !ok {
		return fmt.Errorf("fleet: switch %q port %d is not a monitored inter-switch port", sw, route.Port)
	}
	key := fmt.Sprintf("%s|%d", sw, route.Port)
	app, ok := f.apps[key]
	if !ok {
		app = reroute.New(f.S, det, route.Port)
		linkKey := ls.key
		app.OnReroute = func(e netsim.EntryID, at sim.Time) {
			f.Reroutes++
			f.emit(Event{Time: at, Kind: EventRerouted, Link: linkKey, Entry: e})
		}
		f.apps[key] = app
	}
	app.Protect(entry, route)
	return nil
}

// Rerouted reports whether a protected entry is on its backup path at sw.
func (f *Fleet) Rerouted(sw string, entry netsim.EntryID) bool {
	for key, app := range f.apps {
		if len(key) > len(sw) && key[:len(sw)] == sw && key[len(sw)] == '|' && app.Rerouted(entry) {
			return true
		}
	}
	return false
}

// Acknowledge clears a localized link after the operator acted on it: the
// detector outputs are wiped and the correlator state reset, so a
// persisting failure will re-alarm and re-localize.
func (f *Fleet) Acknowledge(key string) {
	ls, ok := f.links[key]
	if !ok {
		return
	}
	f.Detectors[ls.dl.From].Acknowledge(ls.port)
	ls.localized = false
	ls.localizedAt = 0
	ls.evidence = nil
	ls.seen = make(map[string]bool)
	ls.affected = make(map[netsim.EntryID]bool)
	ls.treePaths = 0
}

func (f *Fleet) emit(ev Event) {
	f.Events = append(f.Events, ev)
	if f.OnEvent != nil {
		f.OnEvent(ev)
	}
}
