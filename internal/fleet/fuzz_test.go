package fleet

import (
	"bytes"
	"testing"
)

// FuzzDecodeConsensus throws arbitrary bytes at the consensus decoder: it
// must never panic and never allocate proportionally to a hostile length
// prefix, and anything it does accept must re-encode to the exact same
// bytes (the canonical-form property replication determinism rests on) and
// decode again to the same message. The corpus seeds every message kind,
// with and without a full checkpoint payload, plus targeted corruptions.
func FuzzDecodeConsensus(f *testing.F) {
	for _, m := range sampleMsgs() {
		b := encodeConsensus(m)
		f.Add(b)
		// Truncations and bit flips around the seed messages give the
		// fuzzer a head start on the interesting joints.
		f.Add(b[:len(b)/2])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{wireVersion, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // max varints everywhere

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeConsensus(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		enc := encodeConsensus(m)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical input:\n in: %x\nout: %x", data, enc)
		}
		m2, err := decodeConsensus(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if !bytes.Equal(encodeConsensus(m2), enc) {
			t.Fatal("decode∘encode not idempotent")
		}
	})
}
