package fleet

// Verified-commit gate tests: safe commits pass untouched, composed-loop
// flips are rejected and repaired via an alternate next hop, unrepairable
// flips hold until a conflicting reroute rolls back, the gate survives
// correlator crash/restart and leader failover without double-committing,
// and verify-unavailable fallback preserves the unverified behavior.

import (
	"strings"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/topo"
)

// verifiedCfg is fleetCfg plus the verified-commit gate.
func verifiedCfg(entries ...netsim.EntryID) Config {
	cfg := fleetCfg(entries...)
	cfg.Verify = &VerifyConfig{}
	return cfg
}

// abileneHosts builds Abilene with hosts attached at the named switches
// ("h-<switch>") and installs shortest paths for owners.
func abileneHosts(t *testing.T, s *sim.Sim, owners map[netsim.EntryID]string, at ...string) *topo.Network {
	t.Helper()
	spec := topo.Abilene()
	for _, sw := range at {
		spec.Hosts = append(spec.Hosts, topo.HostSpec{Name: "h-" + sw, Attach: sw})
	}
	n, err := topo.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(owners); err != nil {
		t.Fatal(err)
	}
	return n
}

func mustProtect(t *testing.T, f *Fleet, n *topo.Network, sw string, entry netsim.EntryID, primaryTo, backupTo string) *netsim.Route {
	t.Helper()
	route := n.Switches[sw].Routes.InsertEntry(entry, netsim.Route{
		Port: n.PortOf[sw][primaryTo], Backup: n.PortOf[sw][backupTo]})
	if err := f.Protect(sw, entry, route); err != nil {
		t.Fatal(err)
	}
	return route
}

func countEventKind(f *Fleet, kind EventKind) int {
	n := 0
	for _, ev := range f.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestVerifiedSafeCommit: the PR-0 acceptance scenario with the gate on. A
// loop-free backup commits exactly as before — same localization, same
// reroute — plus a checked/committed decision, live telemetry counters and
// the verify line in the report.
func TestVerifiedSafeCommit(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-sunnyvale"},
		"sunnyvale", "seattle")
	f, err := New(s, n, verifiedCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "seattle", entry, "sunnyvale", "denver")

	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)
	n.Direction("seattle", "sunnyvale").SetFailure(
		netsim.FailEntries(7, 2*sim.Second, 1.0, entry))
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "seattle->sunnyvale" {
		t.Fatalf("localized %v, want exactly [seattle->sunnyvale]", got)
	}
	if !f.Rerouted("seattle", entry) {
		t.Fatal("safe backup was not committed")
	}
	if f.Verify.Committed != 1 || f.Verify.Rejected != 0 || f.Verify.Fallbacks != 0 {
		t.Fatalf("gate stats %+v, want exactly one clean commit", f.Verify)
	}
	if f.Verify.Checked == 0 || f.Verify.AtomsChecked == 0 {
		t.Fatalf("gate stats %+v: commit was not actually checked", f.Verify)
	}
	if v, err := f.Telemetry["seattle"].Get("/fancy/stats/verify-committed"); err != nil || v != 1 {
		t.Fatalf("telemetry verify-committed = %v, %v; want 1", v, err)
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("post-run audit unsafe: %s", audit)
	}
	snap := f.Snapshot()
	if !snap.VerifyEnabled || snap.VerifyAtoms == 0 || snap.Verify.Committed != 1 {
		t.Fatalf("snapshot verify block wrong: %+v", snap.Verify)
	}
	if !strings.Contains(snap.Report(), "verify: on checked=") {
		t.Fatalf("report misses the verify line:\n%s", snap.Report())
	}
}

// TestVerifiedRejectAndRepair is the concurrent-gray-failure composition:
// traffic washington→kansascity; atlanta's backup (via houston) and
// houston's backup (via atlanta) are each individually loop-free, but once
// atlanta has diverted, committing houston's configured backup would
// install an atlanta↔houston loop. The gate must reject it with the
// verdict and repair via losangeles — the only remaining next hop whose
// post-commit state is loop-free — restoring end-to-end delivery.
func TestVerifiedRejectAndRepair(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-kansascity"},
		"kansascity", "washington")
	f, err := New(s, n, verifiedCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "atlanta", entry, "indianapolis", "houston")
	hou := mustProtect(t, f, n, "houston", entry, "kansascity", "atlanta")

	delivered := 0
	n.Hosts["h-kansascity"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Entry == entry {
			delivered++
		}
	})

	udp(n, "h-washington", entry, 2e6, 10*sim.Second)
	// Concurrent gray failures: the primary path's atlanta→indianapolis hop
	// and the would-be detour's houston→kansascity hop.
	n.Direction("atlanta", "indianapolis").SetFailure(
		netsim.FailEntries(43, 1*sim.Second, 1.0, entry))
	n.Direction("houston", "kansascity").SetFailure(
		netsim.FailEntries(44, 1*sim.Second, 1.0, entry))
	s.Run(10 * sim.Second)

	loc := f.Localized()
	if len(loc) != 2 || loc[0] != "atlanta->indianapolis" || loc[1] != "houston->kansascity" {
		t.Fatalf("localized %v, want both injected links exactly", loc)
	}
	if !f.Rerouted("atlanta", entry) || !f.Rerouted("houston", entry) {
		t.Fatal("both switches must end up diverted")
	}
	if !hasEvent(f, EventRerouteRejected, "loop") {
		t.Fatal("houston's looping backup was not rejected with a loop verdict")
	}
	if !hasEvent(f, EventRerouteRepaired, "") {
		t.Fatal("no repair event")
	}
	if want := n.PortOf["houston"]["losangeles"]; hou.Backup != want {
		t.Fatalf("houston diverted via port %d, want losangeles (%d)", hou.Backup, want)
	}
	if f.Verify.Rejected == 0 || f.Verify.Repaired == 0 || f.Verify.Committed == 0 {
		t.Fatalf("gate stats %+v, want a commit, a rejection and a repair", f.Verify)
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("post-run audit unsafe: %s", audit)
	}
	// The repaired detour (…→houston→losangeles→sunnyvale→denver→kansascity)
	// must actually deliver the tail of the flow.
	if delivered < 1000 {
		t.Fatalf("only %d packets delivered; repaired detour not carrying traffic", delivered)
	}
}

// TestVerifiedHoldAndRetry is the scenario with no safe alternate: for
// traffic to denver, sunnyvale's backup (seattle) loops once seattle has
// diverted via sunnyvale, and its only alternate (losangeles) default-routes
// to denver through sunnyvale — also a loop. The flip must hold, commit
// nothing unsafe, and go through the moment the operator rolls seattle back.
func TestVerifiedHoldAndRetry(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-denver"},
		"denver", "seattle", "sunnyvale")
	cfg := verifiedCfg(entry)
	cfg.Verify.MaxRetries = 1000 // the test drives the unblock explicitly
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "seattle", entry, "denver", "sunnyvale")
	sun := mustProtect(t, f, n, "sunnyvale", entry, "denver", "seattle")

	udp(n, "h-seattle", entry, 2e6, 4*sim.Second)
	udp(n, "h-sunnyvale", entry, 2e6, 8*sim.Second)
	// Staggered failures so seattle commits first and sunnyvale's backup is
	// provably unsafe by the time it localizes.
	n.Direction("seattle", "denver").SetFailure(
		netsim.FailEntries(43, 1*sim.Second, 1.0, entry))
	n.Direction("sunnyvale", "denver").SetFailure(
		netsim.FailEntries(44, 2500*sim.Millisecond, 1.0, entry))

	s.Run(4 * sim.Second)
	if !f.Rerouted("seattle", entry) {
		t.Fatal("seattle's safe commit missing")
	}
	if f.Rerouted("sunnyvale", entry) {
		t.Fatal("sunnyvale committed despite having no safe next hop")
	}
	if !hasEvent(f, EventRerouteHeld, "") || f.HeldCommits() != 1 {
		t.Fatalf("flip not held: held-events=%v pending=%d",
			hasEvent(f, EventRerouteHeld, ""), f.HeldCommits())
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("audit unsafe while holding: %s", audit)
	}

	// Operator rolls seattle back (its link is repaired out-of-band): the
	// conflicting reroute disappears and the held flip must commit on the
	// immediate re-check.
	s.ScheduleAt(5*sim.Second, func() { f.RestoreEntry("seattle", entry) })
	s.Run(8 * sim.Second)

	if !f.Rerouted("sunnyvale", entry) {
		t.Fatal("held flip did not commit after the conflicting reroute rolled back")
	}
	if want := n.PortOf["sunnyvale"]["seattle"]; sun.Backup != want {
		t.Fatalf("sunnyvale diverted via port %d, want seattle (%d)", sun.Backup, want)
	}
	if f.HeldCommits() != 0 && f.Verify.Abandoned == 0 {
		t.Fatalf("hold list not drained: %d pending", f.HeldCommits())
	}
	if f.Verify.Held == 0 || f.Verify.Committed < 2 {
		t.Fatalf("gate stats %+v, want a hold and two commits", f.Verify)
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("post-run audit unsafe: %s", audit)
	}
}

// TestVerifiedAbandonAfterRetries: a held flip with a tight retry budget is
// dropped as a final rejection — and never re-parked by later evidence.
func TestVerifiedAbandonAfterRetries(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-denver"},
		"denver", "seattle", "sunnyvale")
	cfg := verifiedCfg(entry)
	cfg.Verify.MaxRetries = 3
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "seattle", entry, "denver", "sunnyvale")
	mustProtect(t, f, n, "sunnyvale", entry, "denver", "seattle")

	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)
	udp(n, "h-sunnyvale", entry, 2e6, 8*sim.Second)
	n.Direction("seattle", "denver").SetFailure(
		netsim.FailEntries(43, 1*sim.Second, 1.0, entry))
	n.Direction("sunnyvale", "denver").SetFailure(
		netsim.FailEntries(44, 2500*sim.Millisecond, 1.0, entry))
	s.Run(8 * sim.Second)

	if f.Verify.Abandoned != 1 || f.HeldCommits() != 0 {
		t.Fatalf("gate stats %+v pending=%d, want exactly one abandoned hold",
			f.Verify, f.HeldCommits())
	}
	if f.Rerouted("sunnyvale", entry) {
		t.Fatal("abandoned flip still committed")
	}
	if f.Verify.Held != 1 {
		t.Fatalf("held %d times, want once (later evidence must not re-park a decided key)",
			f.Verify.Held)
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("post-run audit unsafe: %s", audit)
	}
}

// TestVerifyFallbackUnavailable: with the verifier marked unavailable the
// gate must not block recovery — the commit goes through unverified, is
// counted as a fallback, and the model stays in sync for when verification
// resumes.
func TestVerifyFallbackUnavailable(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-sunnyvale"},
		"sunnyvale", "seattle")
	f, err := New(s, n, verifiedCfg(entry))
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "seattle", entry, "sunnyvale", "denver")
	f.SetVerifierAvailable(false)

	udp(n, "h-seattle", entry, 2e6, 8*sim.Second)
	n.Direction("seattle", "sunnyvale").SetFailure(
		netsim.FailEntries(7, 2*sim.Second, 1.0, entry))
	s.Run(8 * sim.Second)

	if !f.Rerouted("seattle", entry) {
		t.Fatal("fallback mode blocked the reroute — verification made recovery worse")
	}
	if f.Verify.Fallbacks != 1 || f.Verify.Checked != 0 {
		t.Fatalf("gate stats %+v, want one unchecked fallback commit", f.Verify)
	}
	if !hasEvent(f, EventVerifyFallback, "unavailable") {
		t.Fatal("no verify-fallback event")
	}
	if !f.Snapshot().VerifyUnavailable {
		t.Fatal("snapshot does not flag the unavailable verifier")
	}
	// The model tracked the unverified commit: the audit sees the diverted
	// state, not the stale pre-commit one.
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("model out of sync after fallback: %s", audit)
	}
}

// TestVerifiedHoldSurvivesRestart: correlator crash/restart mid-hold. The
// held flip and the rejection must come back from the checkpoint — the
// restarted incarnation keeps refusing the loop, and the operator unblock
// still works.
func TestVerifiedHoldSurvivesRestart(t *testing.T) {
	s := sim.New(42)
	const entry = netsim.EntryID(10)
	n := abileneHosts(t, s, map[netsim.EntryID]string{entry: "h-denver"},
		"denver", "seattle", "sunnyvale")
	cfg := verifiedCfg(entry)
	cfg.Verify.MaxRetries = 1000
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustProtect(t, f, n, "seattle", entry, "denver", "sunnyvale")
	mustProtect(t, f, n, "sunnyvale", entry, "denver", "seattle")

	udp(n, "h-seattle", entry, 2e6, 4*sim.Second)
	udp(n, "h-sunnyvale", entry, 2e6, 9*sim.Second)
	n.Direction("seattle", "denver").SetFailure(
		netsim.FailEntries(43, 1*sim.Second, 1.0, entry))
	n.Direction("sunnyvale", "denver").SetFailure(
		netsim.FailEntries(44, 2500*sim.Millisecond, 1.0, entry))

	s.ScheduleAt(3500*sim.Millisecond, f.CrashCorrelator)
	s.ScheduleAt(4*sim.Second, f.RestartCorrelator)
	s.Run(6 * sim.Second)

	if f.HeldCommits() != 1 {
		t.Fatalf("held flip lost across restart: pending=%d", f.HeldCommits())
	}
	if f.Rerouted("sunnyvale", entry) {
		t.Fatal("restarted correlator committed the rejected loop")
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("audit unsafe after restart: %s", audit)
	}

	s.ScheduleAt(7*sim.Second, func() { f.RestoreEntry("seattle", entry) })
	s.Run(9 * sim.Second)
	if !f.Rerouted("sunnyvale", entry) {
		t.Fatal("held flip did not commit after rollback, post-restart")
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("final audit unsafe: %s", audit)
	}
}

// TestVerifiedNoDoubleCommitAcrossFailover: on the A—B—C line, B's only
// backup for C-bound traffic is A — a loop, since A routes through B. The
// gate rejects it; then the leader is killed. The new leader restores the
// decision log from consensus and must keep refusing the flip for the rest
// of the run, under continuing evidence replay.
func TestVerifiedNoDoubleCommitAcrossFailover(t *testing.T) {
	s := sim.New(7)
	n, err := topo.Build(s, lineSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(10)
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	cfg := replicatedCfg(0.2, entry)
	cfg.Verify = &VerifyConfig{}
	f, err := New(s, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	route := n.Switches["B"].Routes.InsertEntry(entry, netsim.Route{
		Port: n.PortOf["B"]["C"], Backup: n.PortOf["B"]["A"]})
	if err := f.Protect("B", entry, route); err != nil {
		t.Fatal(err)
	}

	udp(n, "H1", entry, 2e6, 8*sim.Second)
	const failAt = 2 * sim.Second
	n.Direction("B", "C").SetFailure(netsim.FailEntries(9, failAt, 1.0, entry))
	s.ScheduleAt(failAt+400*sim.Millisecond, func() { f.KillLeader() })
	s.Run(8 * sim.Second)

	if got := f.Localized(); len(got) != 1 || got[0] != "B->C" {
		t.Fatalf("localized %v, want exactly [B->C]", got)
	}
	if f.Corr.Failovers == 0 {
		t.Fatal("no failover happened; the scenario did not exercise takeover")
	}
	if f.Rerouted("B", entry) {
		t.Fatal("a correlator incarnation committed the rejected loop")
	}
	if f.Verify.Rejected == 0 {
		t.Fatalf("gate stats %+v, want at least one rejection", f.Verify)
	}
	if f.Verify.Committed > 0 || f.Verify.Repaired > 0 || f.Verify.Fallbacks > 0 {
		t.Fatalf("gate stats %+v: something committed a flip with no safe candidate", f.Verify)
	}
	if audit := f.Verifier().Audit(); !audit.Safe() {
		t.Fatalf("post-run audit unsafe: %s", audit)
	}
}
