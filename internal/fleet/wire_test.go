package fleet

import (
	"bytes"
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/mgmt"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// sampleCheckpoint builds a checkpoint exercising every encoded field.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Time:          1500 * sim.Millisecond,
		Alarms:        7,
		Suppressed:    2,
		Localizations: 1,
		Reroutes:      1,
		Links: map[string]LinkCheckpoint{
			"seattle>sunnyvale": {
				Localized:   true,
				LocalizedAt: 1400 * sim.Millisecond,
				Affected:    []netsim.EntryID{3, 10},
				TreePaths:   2,
				Alarms:      5,
				Suppressed:  1,
				DownTimes:   []sim.Time{900 * sim.Millisecond},
				Seen:        []string{"ded|10|1000000", "tree|1.2|1100000"},
				Evidence: []fancy.Event{
					{Time: sim.Second, Port: 4, Kind: 1, Entry: 10, Diff: 42},
					{Time: 1100 * sim.Millisecond, Port: 4, Kind: 2, Path: []uint16{1, 2}, Diff: 17},
				},
				LastHealth: 2,
			},
			"denver>kansascity": {
				VerdictPending: true,
				IncidentStart:  1200 * sim.Millisecond,
				Flapping:       true,
			},
		},
		RestartsSeen:    map[string]int{"seattle": 1, "denver": 0},
		RestartObserved: map[string]sim.Time{"seattle": 800 * sim.Millisecond},
		EpochCur:        map[string]uint8{"seattle": 1, "denver": 0},
		EpochPrev:       map[string]uint8{"seattle": 0},
		RerouteSeen:     []string{"seattle>sunnyvale|10"},
		Seq: map[string]mgmt.SeqState{
			"agent-seattle": {Contig: 41, Above: []uint64{43, 45}},
			"agent-denver":  {Contig: 12},
		},
	}
}

func sampleMsgs() []*consMsg {
	cp := sampleCheckpoint()
	entry := &logEntry{Index: 9, Ballot: 7, Note: "verdict seattle>sunnyvale", Cp: cp}
	return []*consMsg{
		{Kind: consPrepare, From: 1, Ballot: 4},
		{Kind: consPromise, From: 2, Ballot: 4, Index: 8, AccBallot: 3, Entry: entry},
		{Kind: consPromise, From: 0, Ballot: 4}, // nothing accepted yet
		{Kind: consAccept, From: 1, Ballot: 4, Index: 9, Entry: entry},
		{Kind: consAccepted, From: 2, Ballot: 4, Index: 9},
		{Kind: consNack, From: 0, Ballot: 6},
		{Kind: consBeat, From: 1, Ballot: 4, Index: 9},
		{Kind: consBeat, From: 1, Ballot: 4, Index: 8, Entry: entry}, // retransmit
		{Kind: consAccept, From: 1, Ballot: 4, Index: 1,
			Entry: &logEntry{Index: 1, Ballot: 4, Note: "window", Cp: &Checkpoint{}}},
	}
}

// TestWireRoundtrip checks the canonical-form property: decoding and
// re-encoding any encoded message reproduces the original bytes exactly.
// Byte equality (rather than struct comparison) is the property the
// replicas actually rely on for deterministic transcripts.
func TestWireRoundtrip(t *testing.T) {
	for i, m := range sampleMsgs() {
		b := encodeConsensus(m)
		got, err := decodeConsensus(b)
		if err != nil {
			t.Fatalf("msg %d (%v): decode failed: %v", i, m.Kind, err)
		}
		if got.Kind != m.Kind || got.From != m.From || got.Ballot != m.Ballot ||
			got.Index != m.Index || got.AccBallot != m.AccBallot {
			t.Fatalf("msg %d: header mismatch: %+v vs %+v", i, got, m)
		}
		if !bytes.Equal(encodeConsensus(got), b) {
			t.Fatalf("msg %d (%v): decode∘encode not canonical", i, m.Kind)
		}
	}
}

// TestWireEncodingDeterministic re-encodes the same state repeatedly: map
// iteration order must never leak into the bytes.
func TestWireEncodingDeterministic(t *testing.T) {
	m := sampleMsgs()[3]
	first := encodeConsensus(m)
	for i := 0; i < 32; i++ {
		if !bytes.Equal(encodeConsensus(m), first) {
			t.Fatalf("encoding varies across runs (map order leak), run %d", i)
		}
	}
}

// TestWireRejects rejects truncations, trailing garbage and bad versions —
// every prefix of a valid message except the full message must fail.
func TestWireRejects(t *testing.T) {
	b := encodeConsensus(sampleMsgs()[1])
	for n := 0; n < len(b); n++ {
		if _, err := decodeConsensus(b[:n]); err == nil {
			t.Fatalf("accepted truncation to %d/%d bytes", n, len(b))
		}
	}
	if _, err := decodeConsensus(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	bad := append([]byte(nil), b...)
	bad[0] = wireVersion + 1
	if _, err := decodeConsensus(bad); err == nil {
		t.Fatal("accepted wrong wire version")
	}
	if _, err := decodeConsensus(nil); err == nil {
		t.Fatal("accepted empty input")
	}
}
