package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{
		MsgInvalid:  "invalid",
		MsgStart:    "start",
		MsgStartACK: "start-ack",
		MsgStop:     "stop",
		MsgReport:   "report",
		MsgType(99): "msgtype(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("MsgType(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestSessionKindString(t *testing.T) {
	if KindDedicated.String() != "dedicated" || KindTree.String() != "tree" {
		t.Error("unexpected SessionKind strings")
	}
	if SessionKind(9).String() != "kind(9)" {
		t.Error("unexpected fallback SessionKind string")
	}
}

func TestTagDedicatedRoundTrip(t *testing.T) {
	for _, id := range []uint16{0, 1, 255, 256, 499, 65535} {
		tag := DedicatedTag(id)
		if got := tag.DedicatedID(); got != id {
			t.Errorf("DedicatedID round trip: got %d, want %d", got, id)
		}
	}
}

func TestTagWireRoundTrip(t *testing.T) {
	tag := Tag{Node: 7, Counter: 130}
	b := AppendTag(nil, tag)
	if len(b) != TagSize {
		t.Fatalf("encoded tag size = %d, want %d", len(b), TagSize)
	}
	got, err := ParseTag(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != tag {
		t.Errorf("ParseTag = %+v, want %+v", got, tag)
	}
	if _, err := ParseTag(b[:1]); err != ErrShort {
		t.Errorf("short tag: err = %v, want ErrShort", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Header: Header{Type: MsgStart, Kind: KindDedicated, Session: 1, Link: 3, Unit: 499}},
		{Header: Header{Type: MsgStartACK, Kind: KindTree, Session: 0xdeadbeef, Link: 65535, Unit: TreeUnit}},
		{Header: Header{Type: MsgStop, Kind: KindTree, Session: 7, Link: 0}},
		{
			Header:   Header{Type: MsgReport, Kind: KindDedicated, Session: 42, Link: 9},
			Counters: []uint64{0, 1, 1 << 20, 0xffffffff},
		},
		{
			Header:   Header{Type: MsgStart, Kind: KindTree, Session: 5, Link: 2},
			Counters: []uint64{10, 20},
			Targets: []ZoomTarget{
				{Path: []uint16{1}},
				{Path: []uint16{1, 0}},
				{Path: []uint16{189, 3, 77}},
			},
		},
	}
	for i, m := range msgs {
		b := m.Marshal(nil)
		if len(b) != m.WireSize() {
			t.Errorf("msg %d: WireSize = %d, encoded = %d", i, m.WireSize(), len(b))
		}
		got, n, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("msg %d: Unmarshal: %v", i, err)
		}
		if n != len(b) {
			t.Errorf("msg %d: consumed %d of %d bytes", i, n, len(b))
		}
		if got.Header != m.Header {
			t.Errorf("msg %d: header = %+v, want %+v", i, got.Header, m.Header)
		}
		if !equalCounters(got.Counters, m.Counters) {
			t.Errorf("msg %d: counters = %v, want %v", i, got.Counters, m.Counters)
		}
		if !equalTargets(got.Targets, m.Targets) {
			t.Errorf("msg %d: targets = %v, want %v", i, got.Targets, m.Targets)
		}
	}
}

func equalCounters(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalTargets(a, b []ZoomTarget) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Path, b[i].Path) {
			return false
		}
	}
	return true
}

func TestMarshalAppendsToExisting(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	m := &Message{Header: Header{Type: MsgStop, Kind: KindTree, Session: 1, Link: 1}}
	b := m.Marshal(append([]byte(nil), prefix...))
	if !bytes.Equal(b[:2], prefix) {
		t.Error("Marshal must append, not overwrite")
	}
	if _, _, err := Unmarshal(b[2:]); err != nil {
		t.Errorf("Unmarshal after prefix: %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := &Message{Header: Header{Type: MsgReport, Kind: KindDedicated, Session: 1, Link: 1},
		Counters: []uint64{1, 2, 3}}
	b := m.Marshal(nil)

	if _, _, err := Unmarshal(b[:5]); err != ErrShort {
		t.Errorf("short buffer: err = %v, want ErrShort", err)
	}
	if _, _, err := Unmarshal(b[:len(b)-4]); err != ErrTruncl {
		t.Errorf("truncated payload: err = %v, want ErrTruncl", err)
	}

	bad := append([]byte(nil), b...)
	bad[0] = 77 // version
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}

	for i := range b {
		flip := append([]byte(nil), b...)
		flip[i] ^= 0x01
		if flip[0] != Version {
			continue // version errors take precedence over checksum
		}
		if _, _, err := Unmarshal(flip); err == nil {
			// A flip in the length field may produce ErrTruncl instead; any
			// error is fine, but silent acceptance is a checksum failure.
			t.Errorf("bit flip at byte %d accepted silently", i)
		}
	}
}

func TestChecksumProperties(t *testing.T) {
	if Checksum(nil) != 0xffff {
		t.Errorf("Checksum(nil) = %#x, want 0xffff", Checksum(nil))
	}
	// Odd-length buffers are padded with a zero byte.
	if Checksum([]byte{0x12}) != Checksum([]byte{0x12, 0x00}) {
		t.Error("odd-length checksum differs from zero-padded")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary messages.
func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, kind uint8, session uint32, link, unit uint16, counters []uint64, rawPaths [][]uint16) bool {
		m := &Message{Header: Header{
			Type:    MsgType(typ%4 + 1),
			Kind:    SessionKind(kind%2 + 1),
			Session: session,
			Link:    link,
			Unit:    unit,
		}}
		if len(counters) > 512 {
			counters = counters[:512]
		}
		// Counters are 32-bit on the wire (the hardware register width).
		for i := range counters {
			counters[i] &= 0xffffffff
		}
		m.Counters = counters
		for _, p := range rawPaths {
			if len(p) > 8 {
				p = p[:8]
			}
			m.Targets = append(m.Targets, ZoomTarget{Path: p})
			if len(m.Targets) == 16 {
				break
			}
		}
		b := m.Marshal(nil)
		got, n, err := Unmarshal(b)
		if err != nil || n != len(b) {
			return false
		}
		if got.Header != m.Header || !equalCounters(got.Counters, m.Counters) {
			return false
		}
		if len(got.Targets) != len(m.Targets) {
			return false
		}
		for i := range got.Targets {
			a, b := got.Targets[i].Path, m.Targets[i].Path
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: the checksum of any marshalled message verifies to zero, and any
// single-byte corruption in the counter payload is detected.
func TestPropertyChecksumDetectsCorruption(t *testing.T) {
	f := func(session uint32, counters []uint64, corrupt uint8, xor uint8) bool {
		if len(counters) == 0 || xor == 0 {
			return true
		}
		if len(counters) > 64 {
			counters = counters[:64]
		}
		m := &Message{Header: Header{Type: MsgReport, Kind: KindTree, Session: session, Link: 1},
			Counters: counters}
		b := m.Marshal(nil)
		if Checksum(b) != 0 {
			return false
		}
		// Corrupt one payload byte (past the header, inside counters).
		idx := headerSize + 2 + int(corrupt)%(4*len(counters))
		b[idx] ^= xor
		_, _, err := Unmarshal(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

func TestReportSizeMatchesPaperOverhead(t *testing.T) {
	// §5.3: "the hash-tree counter that carries 5320 B in the pipelined
	// version of the zooming algorithm" — exactly 7 nodes × 190 counters
	// × 4 B for the width-190 depth-3 split-2 tree. Our Report adds only
	// its fixed protocol header on top of those 5320 payload bytes.
	m := &Message{Header: Header{Type: MsgReport, Kind: KindTree}}
	m.Counters = make([]uint64, 7*190)
	size := m.WireSize()
	if size < 5320 || size > 5320+64 {
		t.Errorf("tree report size = %d B, want 5320 B of counters + a small header", size)
	}
}

func BenchmarkMarshalReport(b *testing.B) {
	m := &Message{Header: Header{Type: MsgReport, Kind: KindDedicated, Session: 9, Link: 1},
		Counters: make([]uint64, 500)}
	buf := make([]byte, 0, m.WireSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshalReport(b *testing.B) {
	m := &Message{Header: Header{Type: MsgReport, Kind: KindDedicated, Session: 9, Link: 1},
		Counters: make([]uint64, 500)}
	buf := m.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
