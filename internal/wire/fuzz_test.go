package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzUnmarshal checks that arbitrary input never panics the parser and
// that anything it accepts re-marshals to a message it accepts again.
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid encodings of each message type.
	seeds := []*Message{
		{Header: Header{Type: MsgStart, Kind: KindDedicated, Session: 1, Link: 2, Unit: 3}},
		{Header: Header{Type: MsgStartACK, Kind: KindTree, Session: 9, Unit: TreeUnit}},
		{Header: Header{Type: MsgReport, Kind: KindDedicated, Session: 7}, Counters: []uint64{1, 2, 3}},
		{
			Header:  Header{Type: MsgStart, Kind: KindTree, Session: 5},
			Targets: []ZoomTarget{{Path: []uint16{1}}, {Path: []uint16{1, 7}}},
		},
		// Custom sessions: application-defined units above customUnitBase,
		// with Report payloads shaped by the application (here a size
		// histogram) rather than by the counter layout.
		{Header: Header{Type: MsgStart, Kind: KindCustom, Epoch: 3, Session: 4, Link: 1, Unit: 0xf000}},
		{Header: Header{Type: MsgStop, Kind: KindCustom, Epoch: 255, Session: 4, Unit: 0xf000}},
		{
			Header:   Header{Type: MsgReport, Kind: KindCustom, Epoch: 7, Session: 6, Unit: 0xf001},
			Counters: []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 1 << 40},
		},
	}
	for _, m := range seeds {
		f.Add(m.Marshal(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round trip: re-marshal and parse again; headers must agree.
		re := m.Marshal(nil)
		m2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshal of accepted message rejected: %v", err)
		}
		if m2.Header != m.Header {
			t.Fatalf("headers differ after round trip: %+v vs %+v", m2.Header, m.Header)
		}
		if len(m2.Counters) != len(m.Counters) || len(m2.Targets) != len(m.Targets) {
			t.Fatal("payload shape differs after round trip")
		}
	})
}

// TestSingleBitFlipsDetected corrupts every bit of every byte of valid
// messages, one at a time — the exact fault the chaos injector's control
// corruption produces. Each flip must yield a recognized parse error
// (normally ErrChecksum; flips in the version or length fields may surface
// as ErrVersion/ErrTruncl first) or, at worst, a parse whose header is
// byte-identical to the original. What must never happen: a panic, or a
// silently different header steering a detector FSM.
func TestSingleBitFlipsDetected(t *testing.T) {
	msgs := []*Message{
		{Header: Header{Type: MsgStart, Kind: KindDedicated, Epoch: 1, Session: 3, Link: 1, Unit: 2}},
		{Header: Header{Type: MsgStartACK, Kind: KindTree, Epoch: 9, Session: 12, Unit: TreeUnit}},
		{
			Header:   Header{Type: MsgReport, Kind: KindDedicated, Epoch: 200, Session: 7},
			Counters: []uint64{42, 0, 1 << 31},
		},
		{
			Header:  Header{Type: MsgStart, Kind: KindTree, Epoch: 4, Session: 5},
			Targets: []ZoomTarget{{Path: []uint16{1}}, {Path: []uint16{1, 7}}},
		},
		{Header: Header{Type: MsgStop, Kind: KindCustom, Epoch: 17, Session: 9, Unit: 0xf000}},
	}
	known := []error{ErrShort, ErrChecksum, ErrVersion, ErrTruncl}
	for mi, m := range msgs {
		orig := m.Marshal(nil)
		for i := range orig {
			for bit := 0; bit < 8; bit++ {
				buf := append([]byte(nil), orig...)
				buf[i] ^= 1 << bit
				got, _, err := Unmarshal(buf)
				if err != nil {
					ok := false
					for _, k := range known {
						if errors.Is(err, k) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("msg %d byte %d bit %d: unrecognized error %v", mi, i, bit, err)
					}
					continue
				}
				if got.Header != m.Header {
					t.Fatalf("msg %d byte %d bit %d: corrupted message parsed with a different header: %+v vs %+v",
						mi, i, bit, got.Header, m.Header)
				}
			}
		}
	}
}

// FuzzParseTag: the 2-byte tag parser must never panic and always round
// trip.
func FuzzParseTag(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{255, 255})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tag, err := ParseTag(data)
		if err != nil {
			if len(data) >= TagSize {
				t.Fatal("well-sized tag rejected")
			}
			return
		}
		if !bytes.Equal(AppendTag(nil, tag), data[:TagSize]) {
			t.Fatal("tag round trip failed")
		}
	})
}
