package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks that arbitrary input never panics the parser and
// that anything it accepts re-marshals to a message it accepts again.
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid encodings of each message type.
	seeds := []*Message{
		{Header: Header{Type: MsgStart, Kind: KindDedicated, Session: 1, Link: 2, Unit: 3}},
		{Header: Header{Type: MsgStartACK, Kind: KindTree, Session: 9, Unit: TreeUnit}},
		{Header: Header{Type: MsgReport, Kind: KindDedicated, Session: 7}, Counters: []uint64{1, 2, 3}},
		{
			Header:  Header{Type: MsgStart, Kind: KindTree, Session: 5},
			Targets: []ZoomTarget{{Path: []uint16{1}}, {Path: []uint16{1, 7}}},
		},
	}
	for _, m := range seeds {
		f.Add(m.Marshal(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round trip: re-marshal and parse again; headers must agree.
		re := m.Marshal(nil)
		m2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshal of accepted message rejected: %v", err)
		}
		if m2.Header != m.Header {
			t.Fatalf("headers differ after round trip: %+v vs %+v", m2.Header, m.Header)
		}
		if len(m2.Counters) != len(m.Counters) || len(m2.Targets) != len(m.Targets) {
			t.Fatal("payload shape differs after round trip")
		}
	})
}

// FuzzParseTag: the 2-byte tag parser must never panic and always round
// trip.
func FuzzParseTag(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{255, 255})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tag, err := ParseTag(data)
		if err != nil {
			if len(data) >= TagSize {
				t.Fatal("well-sized tag rejected")
			}
			return
		}
		if !bytes.Equal(AppendTag(nil, tag), data[:TagSize]) {
			t.Fatal("tag round trip failed")
		}
	})
}
