// Package wire defines the on-the-wire formats of the FANcY inter-switch
// counting protocol.
//
// FANcY exchanges four control messages per counting session (Figure 4 of
// the paper): Start, StartACK, Stop and Report. Data packets that must be
// counted by the downstream switch carry a 2-byte tag identifying the
// counter to increment — for dedicated counters the tag is the 16-bit
// counter ID, for the hash-based tree one byte selects the tree node and the
// other the counter within the node (§5.3).
//
// The encoding uses network byte order throughout and a 16-bit ones'
// complement checksum (the Internet checksum) so that corrupted control
// messages are discarded rather than mis-parsed, mirroring how the Tofino
// prototype validates recirculated headers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType enumerates FANcY control message types.
type MsgType uint8

// Control message types of the counting protocol (Figure 3).
const (
	MsgInvalid  MsgType = iota
	MsgStart            // upstream → downstream: open a counting session
	MsgStartACK         // downstream → upstream: session accepted, counters reset
	MsgStop             // upstream → downstream: close the session
	MsgReport           // downstream → upstream: counter values for the session
)

var msgNames = [...]string{"invalid", "start", "start-ack", "stop", "report"}

func (m MsgType) String() string {
	if int(m) < len(msgNames) {
		return msgNames[m]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(m))
}

// SessionKind distinguishes the two counting machineries that share the
// protocol: dedicated per-entry counters and the hash-based tree.
type SessionKind uint8

// Session kinds.
const (
	KindDedicated SessionKind = 1
	KindTree      SessionKind = 2
	// KindCustom marks application-defined sessions that synchronize
	// arbitrary state across switches (§4.1's extensibility).
	KindCustom SessionKind = 3
)

func (k SessionKind) String() string {
	switch k {
	case KindDedicated:
		return "dedicated"
	case KindTree:
		return "tree"
	case KindCustom:
		return "custom"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Version is the protocol version encoded in every control message.
// Version 2 added the epoch (generation) byte in the former pad slot, so a
// rebooted peer's stale messages are rejected instead of corrupting the
// successor's sessions.
const Version = 2

// Errors returned by Unmarshal functions.
var (
	ErrShort    = errors.New("wire: buffer too short")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrVersion  = errors.New("wire: unsupported version")
	ErrTruncl   = errors.New("wire: truncated payload")
)

// Tag is the 2-byte per-packet tag FANcY adds to counted packets.
//
// For dedicated counters, Node and Counter together hold the 16-bit entry
// counter ID (Node is the high byte). For tree sessions, Node identifies the
// deepest tree node the packet maps to in the current zoom configuration and
// Counter the index within that node.
type Tag struct {
	Node    uint8
	Counter uint8
}

// DedicatedTag builds a Tag carrying a 16-bit dedicated counter ID.
func DedicatedTag(id uint16) Tag {
	return Tag{Node: uint8(id >> 8), Counter: uint8(id)}
}

// DedicatedID recovers the 16-bit dedicated counter ID from a Tag.
func (t Tag) DedicatedID() uint16 { return uint16(t.Node)<<8 | uint16(t.Counter) }

// TagSize is the wire size of a Tag in bytes (§5.3: 2 bytes, 0.13 % overhead
// on a 1500 B packet).
const TagSize = 2

// AppendTag appends the tag encoding to b.
func AppendTag(b []byte, t Tag) []byte { return append(b, t.Node, t.Counter) }

// ParseTag decodes a tag from the first TagSize bytes of b.
func ParseTag(b []byte) (Tag, error) {
	if len(b) < TagSize {
		return Tag{}, ErrShort
	}
	return Tag{Node: b[0], Counter: b[1]}, nil
}

// ZoomTarget describes one active zoom in a tree session's Start message:
// the partial hash path being explored. The downstream switch uses the list
// of targets to map tag node IDs back to tree positions, so it never has to
// hash packets itself (§4.2).
type ZoomTarget struct {
	// Path is the sequence of counter indices from the root to (and
	// including) the counter being zoomed into. Its length is the level at
	// which the new child node sits.
	Path []uint16
}

// Header is the fixed preamble of every FANcY control message.
type Header struct {
	Type    MsgType
	Kind    SessionKind
	Epoch   uint8  // sender generation; receivers echo it back (see below)
	Session uint32 // session sequence number, per (link, kind, unit)
	Link    uint16 // upstream port / link identifier
	Unit    uint16 // sub-state-machine index: dedicated entry slot, or TreeUnit

	// Epoch semantics: the upstream stamps Start/Stop with its current
	// generation number, which changes when the device reboots and loses
	// all session state. The downstream adopts the epoch from Start and
	// echoes it in StartACK/Report. Both sides discard messages carrying a
	// foreign epoch, so a rebooted peer's stale responses cannot complete
	// (and mis-compare) a successor session that happens to reuse the same
	// session number — the pair re-synchronizes on the next Start instead.
}

// TreeUnit is the Unit value of the per-port hash-based-tree session (the
// dedicated entries occupy units 0..n-1).
const TreeUnit uint16 = 0xffff

// headerSize is version(1)+type(1)+kind(1)+epoch(1)+session(4)+link(2)+unit(2)+len(2)+csum(2).
const headerSize = 16

// Message is a fully parsed FANcY control message.
type Message struct {
	Header

	// Counters carries the Report payload: one value per counter, in
	// counter-ID order. For tree reports the layout is the concatenation of
	// the root node followed by each active zoom node in ZoomTarget order.
	// Values are 32-bit on the wire, the register width of the hardware
	// design (Appendix B.2) — a width-190 depth-3 split-2 pipelined tree's
	// report is then exactly the 5320 B the paper's §5.3 quotes.
	Counters []uint64

	// Targets carries the zoom configuration in tree Start messages.
	Targets []ZoomTarget
}

// Marshal encodes m, appending to dst (which may be nil) and returning the
// extended buffer. Callers that know Size() can pre-allocate dst exactly;
// the payload is appended in place either way (no scratch buffer), with
// the length and checksum backfilled into the header.
func (m *Message) Marshal(dst []byte) []byte {
	start := len(dst)
	dst = append(dst,
		Version, byte(m.Type), byte(m.Kind), m.Epoch,
		0, 0, 0, 0, // session
		0, 0, // link
		0, 0, // unit
		0, 0, // payload length
		0, 0, // checksum
	)
	dst = m.appendPayload(dst)
	binary.BigEndian.PutUint32(dst[start+4:], m.Session)
	binary.BigEndian.PutUint16(dst[start+8:], m.Link)
	binary.BigEndian.PutUint16(dst[start+10:], m.Unit)
	binary.BigEndian.PutUint16(dst[start+12:], uint16(len(dst)-start-headerSize))
	csum := Checksum(dst[start:])
	binary.BigEndian.PutUint16(dst[start+14:], csum)
	return dst
}

func (m *Message) appendPayload(b []byte) []byte {
	// Counter block: u16 count, then count u32 values (saturating — a
	// single 50 ms session cannot overflow 2^32 packets on any real link).
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Counters)))
	for _, c := range m.Counters {
		if c > 0xffffffff {
			c = 0xffffffff
		}
		b = binary.BigEndian.AppendUint32(b, uint32(c))
	}
	// Target block: u16 count, then per target u16 path length + path.
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Targets)))
	for _, t := range m.Targets {
		b = binary.BigEndian.AppendUint16(b, uint16(len(t.Path)))
		for _, p := range t.Path {
			b = binary.BigEndian.AppendUint16(b, p)
		}
	}
	return b
}

// Unmarshal parses a control message from b, returning a freshly allocated
// message and the number of bytes consumed.
func Unmarshal(b []byte) (*Message, int, error) {
	m := new(Message)
	n, err := UnmarshalInto(b, m)
	if err != nil {
		return nil, 0, err
	}
	return m, n, nil
}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows. Element values are overwritten by the caller.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// UnmarshalInto parses a control message from b into m, reusing the capacity
// of m.Counters, m.Targets and their Path slices, and returns the number of
// bytes consumed. A long-lived scratch Message makes steady-state parsing
// allocation-free.
//
// The decoded slices are only valid until the next UnmarshalInto on the same
// m: consumers that retain m.Counters, m.Targets or a Path beyond the call
// that handed them the message must copy them. On error, m holds partially
// decoded garbage and must not be read.
func UnmarshalInto(b []byte, m *Message) (int, error) {
	if len(b) < headerSize {
		return 0, ErrShort
	}
	if b[0] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, b[0])
	}
	plen := int(binary.BigEndian.Uint16(b[12:]))
	total := headerSize + plen
	if len(b) < total {
		return 0, ErrTruncl
	}
	if Checksum(b[:total]) != 0 {
		return 0, ErrChecksum
	}
	m.Header = Header{
		Type:    MsgType(b[1]),
		Kind:    SessionKind(b[2]),
		Epoch:   b[3],
		Session: binary.BigEndian.Uint32(b[4:]),
		Link:    binary.BigEndian.Uint16(b[8:]),
		Unit:    binary.BigEndian.Uint16(b[10:]),
	}
	p := b[headerSize:total]
	nc := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < nc*4 {
		return 0, ErrTruncl
	}
	m.Counters = grow(m.Counters, nc)
	for i := range m.Counters {
		m.Counters[i] = uint64(binary.BigEndian.Uint32(p))
		p = p[4:]
	}
	if len(p) < 2 {
		return 0, ErrTruncl
	}
	nt := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	m.Targets = grow(m.Targets, nt)
	for i := range m.Targets {
		if len(p) < 2 {
			return 0, ErrTruncl
		}
		np := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if len(p) < np*2 {
			return 0, ErrTruncl
		}
		path := grow(m.Targets[i].Path, np)
		for j := range path {
			path[j] = binary.BigEndian.Uint16(p)
			p = p[2:]
		}
		m.Targets[i].Path = path
	}
	return total, nil
}

// WireSize returns the encoded size of the message in bytes without
// allocating, used by the overhead analysis (§5.3).
func (m *Message) WireSize() int {
	n := headerSize + 2 + 4*len(m.Counters) + 2
	for _, t := range m.Targets {
		n += 2 + 2*len(t.Path)
	}
	return n
}

// Checksum computes the 16-bit ones' complement Internet checksum over b.
// A buffer whose checksum field is filled in verifies to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
