package netsim

// Chaos injects adversarial link conditions beyond the clean packet removal
// of Failure: bit corruption, packet duplication, reordering/jitter and link
// flapping. Failure models the paper's Table 1 gray-failure classes — the
// conditions FANcY is designed to DETECT; Chaos models everything else a
// misbehaving link can do to the detector itself — the conditions FANcY
// must SURVIVE (§4.1's stop-and-wait reliability argument, and §2.1's
// intermittent failures that "are never diagnosed").
//
// All randomness is drawn from a generator derived from the simulation seed
// (sim.Sim.DeriveRand), so identical seeds replay identical chaos schedules
// event for event.

import (
	"math/rand"

	"fancy/internal/sim"
)

// Chaos is an adversarial link-condition injector for one link direction.
// Install it with LinkEnd.SetChaos. Fields may be combined freely; each is
// evaluated independently per delivered packet.
type Chaos struct {
	// Start and End bound the active window (End == 0 means "until the end
	// of the simulation"), like Failure.
	Start, End sim.Time

	// CorruptCtl is the per-packet probability of flipping a random bit in
	// a FANcY control message's wire bytes. The corrupted message is still
	// delivered: the receiving detector must reject it through the wire
	// checksum rather than mis-parse it, exercising the Unmarshal
	// validation path end to end.
	CorruptCtl float64

	// CorruptData is the per-packet probability of corrupting a data
	// packet. Link-layer CRC discards corrupted data frames, so the effect
	// on the wire is a drop — but unlike Failure drops it also hits tagged
	// packets mid-session, which is exactly a gray failure FANcY must
	// detect (CRC corruption is the paper's canonical uniform-loss cause).
	CorruptData float64

	// Duplicate is the per-packet probability of delivering an extra copy
	// of the packet shortly after the original (within DupDelayMax,
	// default 500 µs). Duplicated control messages exercise the FSMs'
	// at-least-once tolerance; duplicated tagged data packets inflate the
	// downstream counters, which must never flag a healthy entry.
	Duplicate   float64
	DupDelayMax sim.Time

	// Reorder is the per-packet probability of delaying a packet by a
	// uniform extra jitter in (0, JitterMax] (default 1 ms), letting later
	// packets overtake it. The receiver's Twait grace period (§4.1) must
	// absorb jitter below Twait without raising false positives.
	Reorder   float64
	JitterMax sim.Time

	// DownFor/UpFor flap the link: starting at Start the direction cycles
	// fully down for DownFor, then up for UpFor, repeating while the window
	// is active. Both zero disables flapping. A flap outage longer than
	// MaxAttempts×Trtx drives the detector's link-down/recovery path.
	DownFor, UpFor sim.Time

	rng *rand.Rand

	// Stats counts what the injector did, per class.
	Stats ChaosStats
}

// ChaosStats tallies chaos actions on one link direction.
type ChaosStats struct {
	CorruptedCtl  uint64 // control messages delivered with flipped bits
	CorruptedData uint64 // data packets dropped by the CRC model
	Duplicated    uint64 // extra copies delivered
	Reordered     uint64 // packets delayed by jitter
	FlapDrops     uint64 // packets dropped while the link flapped down
}

// NewChaos builds a chaos injector whose RNG is derived from the simulation
// seed and the given stream label, keeping replays deterministic.
func NewChaos(s *sim.Sim, stream string) *Chaos {
	return &Chaos{rng: s.DeriveRand("chaos/" + stream)}
}

// ActiveAt reports whether the chaos window covers time t.
func (c *Chaos) ActiveAt(t sim.Time) bool {
	if c == nil {
		return false
	}
	return t >= c.Start && (c.End == 0 || t < c.End)
}

// DownAt reports whether the link direction is flapped down at time t.
func (c *Chaos) DownAt(t sim.Time) bool {
	if !c.ActiveAt(t) || c.DownFor <= 0 {
		return false
	}
	if c.UpFor <= 0 {
		return true // down for the whole window
	}
	phase := (t - c.Start) % (c.DownFor + c.UpFor)
	return phase < c.DownFor
}

func (c *Chaos) roll(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return c.rng.Float64() < p
}

// chaosVerdict is the outcome of applying chaos to one arriving packet.
type chaosVerdict uint8

const (
	chaosDeliver chaosVerdict = iota // deliver now (possibly corrupted)
	chaosDrop                        // flap or CRC removed the packet
	chaosDelay                       // deliver after extra jitter
)

// apply decides this packet's fate at delivery time t. It may mutate the
// packet (control-byte corruption) and reports an optional extra delay and
// whether an extra copy must be scheduled.
func (c *Chaos) apply(pkt *Packet, t sim.Time) (v chaosVerdict, extraDelay sim.Time, dup bool) {
	if !c.ActiveAt(t) {
		return chaosDeliver, 0, false
	}
	if c.DownAt(t) {
		c.Stats.FlapDrops++
		return chaosDrop, 0, false
	}
	if pkt.Proto == ProtoFancy {
		if c.CorruptCtl > 0 && len(pkt.Ctl) > 0 && c.roll(c.CorruptCtl) {
			bit := c.rng.Intn(len(pkt.Ctl) * 8)
			pkt.Ctl[bit/8] ^= 1 << (bit % 8)
			c.Stats.CorruptedCtl++
		}
	} else if c.CorruptData > 0 && c.roll(c.CorruptData) {
		c.Stats.CorruptedData++
		return chaosDrop, 0, false
	}
	dup = c.Duplicate > 0 && c.roll(c.Duplicate)
	if c.Reorder > 0 && c.roll(c.Reorder) {
		max := c.JitterMax
		if max <= 0 {
			max = sim.Millisecond
		}
		extraDelay = 1 + sim.Time(c.rng.Int63n(int64(max)))
		c.Stats.Reordered++
		return chaosDelay, extraDelay, dup
	}
	return chaosDeliver, 0, dup
}

// dupDelay picks the extra copy's delay behind the original.
func (c *Chaos) dupDelay() sim.Time {
	max := c.DupDelayMax
	if max <= 0 {
		max = 500 * sim.Microsecond
	}
	return 1 + sim.Time(c.rng.Int63n(int64(max)))
}

// clone deep-copies a packet for duplicate delivery: the receiver mutates
// delivered packets (tag stripping, control-byte parsing), so the copy must
// not share the Ctl buffer.
func (p *Packet) clone() *Packet {
	q := *p
	if p.Ctl != nil {
		q.Ctl = append([]byte(nil), p.Ctl...)
	}
	// The copy is its own object: it is in no lane and owned by no pool.
	q.laneNext = nil
	q.laneAt = 0
	q.laneEgressed = false
	q.pooled = false
	return &q
}
