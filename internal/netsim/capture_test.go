package netsim

import (
	"strings"
	"testing"

	"fancy/internal/sim"
)

func TestCaptureObservesAllOutcomes(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e6, QueueBytes: 3500})
	cs := NewCaptureStats()
	l.AB.SetCapture(cs.Observe)
	l.AB.SetFailure(FailEntries(1, 0, 1.0, 9))

	a.tx.Send(&Packet{Entry: 5, Size: 1000}) // delivered
	a.tx.Send(&Packet{Entry: 9, Size: 1000}) // failure drop
	a.tx.Send(&Packet{Entry: 5, Size: 1000}) // delivered
	a.tx.Send(&Packet{Entry: 5, Size: 1000}) // congestion drop (queue full at 3500B)
	s.Run(0)

	if cs.ByKind[CaptureSend] != 3 {
		t.Errorf("sends = %d, want 3", cs.ByKind[CaptureSend])
	}
	if cs.ByKind[CaptureDeliver] != 2 {
		t.Errorf("delivers = %d, want 2", cs.ByKind[CaptureDeliver])
	}
	if cs.ByKind[CaptureFailureDrop] != 1 {
		t.Errorf("failure drops = %d, want 1", cs.ByKind[CaptureFailureDrop])
	}
	if cs.ByKind[CaptureCongestionDrop] != 1 {
		t.Errorf("congestion drops = %d, want 1", cs.ByKind[CaptureCongestionDrop])
	}
	if cs.ByEntry[5] != 2 || cs.Bytes != 2000 {
		t.Errorf("per-entry = %v bytes = %d", cs.ByEntry, cs.Bytes)
	}
}

func TestCaptureWriterFormat(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	var buf strings.Builder
	l.AB.SetCapture(NewCaptureWriter(&buf))
	a.tx.Send(&Packet{Entry: 7, Proto: ProtoUDP, Size: 100})
	s.Run(0)
	out := buf.String()
	if !strings.Contains(out, "send") || !strings.Contains(out, "deliver") {
		t.Errorf("capture log missing events:\n%s", out)
	}
	if !strings.Contains(out, "entry=7") {
		t.Errorf("capture log missing packet summary:\n%s", out)
	}
}

func TestCaptureRemovable(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	n := 0
	l.AB.SetCapture(func(CaptureEvent) { n++ })
	a.tx.Send(&Packet{Size: 100})
	s.Run(0)
	if n == 0 {
		t.Fatal("capture saw nothing")
	}
	l.AB.SetCapture(nil)
	before := n
	a.tx.Send(&Packet{Size: 100})
	s.Run(0)
	if n != before {
		t.Error("capture fired after removal")
	}
}

func TestCaptureKindString(t *testing.T) {
	for k, want := range map[CaptureKind]string{
		CaptureSend: "send", CaptureDeliver: "deliver",
		CaptureCongestionDrop: "congestion-drop", CaptureFailureDrop: "failure-drop",
		CaptureKind(9): "capture(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
