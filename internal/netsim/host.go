package netsim

import (
	"fmt"

	"fancy/internal/sim"
)

// PacketHandler consumes packets delivered to a host for one flow.
type PacketHandler interface {
	HandlePacket(pkt *Packet)
}

// PacketHandlerFunc adapts a function to the PacketHandler interface.
type PacketHandlerFunc func(pkt *Packet)

// HandlePacket implements PacketHandler.
func (f PacketHandlerFunc) HandlePacket(pkt *Packet) { f(pkt) }

// Host is an end system with a single uplink port. Transport endpoints
// (TCP connections, UDP sinks) register per-flow handlers; everything else
// goes to the Default handler.
type Host struct {
	s    *sim.Sim
	name string
	tx   *LinkEnd

	handlers map[FlowID]PacketHandler

	// Default, when set, receives packets with no per-flow handler.
	Default PacketHandler

	// pool, when set, recycles packets that die here (no handler).
	pool *PacketPool

	Received uint64
	Dropped  uint64 // no handler
}

// NewHost creates a host.
func NewHost(s *sim.Sim, name string) *Host {
	return &Host{s: s, name: name, handlers: make(map[FlowID]PacketHandler)}
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Attach implements Node. A host has a single port (0).
func (h *Host) Attach(port int, tx *LinkEnd) {
	if port != 0 {
		panic(fmt.Sprintf("netsim: host %s only has port 0, got %d", h.name, port))
	}
	h.tx = tx
}

// SetPool lets the host recycle packets that reach it without any handler
// — for sink hosts of pooled CBR workloads this closes the packet
// lifecycle without garbage.
func (h *Host) SetPool(p *PacketPool) { h.pool = p }

// Receive implements Node.
func (h *Host) Receive(pkt *Packet, port int) {
	h.Received++
	if hd, ok := h.handlers[pkt.Flow]; ok {
		hd.HandlePacket(pkt)
		return
	}
	if h.Default != nil {
		h.Default.HandlePacket(pkt)
		return
	}
	h.Dropped++
	h.pool.Put(pkt)
}

// Send transmits a packet out of the host's uplink. It reports false if the
// uplink queue dropped the packet or the host is not attached.
func (h *Host) Send(pkt *Packet) bool {
	if h.tx == nil {
		return false
	}
	return h.tx.Send(pkt)
}

// Bind registers handler for a flow. Binding nil removes the handler.
func (h *Host) Bind(flow FlowID, handler PacketHandler) {
	if handler == nil {
		delete(h.handlers, flow)
		return
	}
	h.handlers[flow] = handler
}

// Sim returns the simulator the host is running on.
func (h *Host) Sim() *sim.Sim { return h.s }
