package netsim

import (
	"fmt"
	"testing"

	"fancy/internal/sim"
)

// chaosPair builds two hosts joined by one link and returns everything a
// chaos test needs: send on a, observe arrivals at b.
type chaosPair struct {
	s    *sim.Sim
	a, b *Host
	link *Link
}

func newChaosPair(seed int64) *chaosPair {
	s := sim.New(seed)
	a := NewHost(s, "a")
	b := NewHost(s, "b")
	link := Connect(s, a, 0, b, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	return &chaosPair{s: s, a: a, b: b, link: link}
}

func (p *chaosPair) sendEvery(gap sim.Time, n int, mk func(i int) *Packet) {
	for i := 0; i < n; i++ {
		pkt := mk(i)
		p.s.ScheduleAt(sim.Time(i)*gap, func() { p.a.Send(pkt) })
	}
}

func TestChaosFlapWindows(t *testing.T) {
	c := NewChaos(sim.New(1), "flap")
	c.Start = 100 * sim.Millisecond
	c.End = 500 * sim.Millisecond
	c.DownFor = 50 * sim.Millisecond
	c.UpFor = 150 * sim.Millisecond
	cases := []struct {
		t    sim.Time
		down bool
	}{
		{0, false},                      // before the window
		{100 * sim.Millisecond, true},   // first down phase
		{149 * sim.Millisecond, true},   //
		{150 * sim.Millisecond, false},  // up phase
		{299 * sim.Millisecond, false},  //
		{300 * sim.Millisecond, true},   // second cycle down
		{349 * sim.Millisecond, true},   //
		{350 * sim.Millisecond, false},  //
		{500 * sim.Millisecond, false},  // window ended
		{1200 * sim.Millisecond, false}, //
	}
	for _, tc := range cases {
		if got := c.DownAt(tc.t); got != tc.down {
			t.Errorf("DownAt(%v) = %v, want %v", tc.t, got, tc.down)
		}
	}
	// Permanent outage: DownFor without UpFor.
	solid := NewChaos(sim.New(1), "solid")
	solid.Start = sim.Second
	solid.DownFor = sim.Millisecond
	if !solid.DownAt(5*sim.Second) || solid.DownAt(0) {
		t.Error("DownFor without UpFor should hold the link down for the whole window")
	}
}

func TestChaosFlapDropsEverything(t *testing.T) {
	p := newChaosPair(3)
	c := NewChaos(p.s, "flap")
	c.DownFor = sim.Second // down for the whole run
	p.link.AB.SetChaos(c)
	var got int
	p.b.Default = PacketHandlerFunc(func(*Packet) { got++ })
	p.sendEvery(10*sim.Millisecond, 20, func(i int) *Packet {
		return &Packet{ID: uint64(i), Proto: ProtoUDP, Size: 100, Entry: 1}
	})
	p.s.Run(sim.Second)
	if got != 0 {
		t.Fatalf("flapped-down link delivered %d packets", got)
	}
	if c.Stats.FlapDrops != 20 {
		t.Fatalf("FlapDrops = %d, want 20", c.Stats.FlapDrops)
	}
}

func TestChaosCorruptsControlBytesAndDropsData(t *testing.T) {
	p := newChaosPair(4)
	c := NewChaos(p.s, "corrupt")
	c.CorruptCtl = 1.0
	c.CorruptData = 1.0
	p.link.AB.SetChaos(c)

	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	var ctl [][]byte
	var data int
	p.b.Default = PacketHandlerFunc(func(pkt *Packet) {
		if pkt.Proto == ProtoFancy {
			ctl = append(ctl, append([]byte(nil), pkt.Ctl...))
		} else {
			data++
		}
	})
	p.sendEvery(10*sim.Millisecond, 10, func(i int) *Packet {
		if i%2 == 0 {
			return &Packet{Proto: ProtoFancy, Size: 64, Entry: InvalidEntry,
				Ctl: append([]byte(nil), orig...)}
		}
		return &Packet{Proto: ProtoUDP, Size: 100, Entry: 1}
	})
	p.s.Run(sim.Second)

	if data != 0 {
		t.Errorf("corrupted data packets delivered: %d (the CRC model must drop them)", data)
	}
	if c.Stats.CorruptedData != 5 {
		t.Errorf("CorruptedData = %d, want 5", c.Stats.CorruptedData)
	}
	if len(ctl) != 5 || c.Stats.CorruptedCtl != 5 {
		t.Fatalf("control deliveries = %d (stat %d), want 5: corrupted control is delivered, not dropped",
			len(ctl), c.Stats.CorruptedCtl)
	}
	for _, b := range ctl {
		diff := 0
		for i := range b {
			diff += popcount8(b[i] ^ orig[i])
		}
		if diff != 1 {
			t.Errorf("corrupted control differs by %d bits, want exactly 1", diff)
		}
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestChaosDuplicateDeliversDeepCopy(t *testing.T) {
	p := newChaosPair(5)
	c := NewChaos(p.s, "dup")
	c.Duplicate = 1.0
	p.link.AB.SetChaos(c)
	var pkts []*Packet
	p.b.Default = PacketHandlerFunc(func(pkt *Packet) { pkts = append(pkts, pkt) })
	p.sendEvery(10*sim.Millisecond, 4, func(i int) *Packet {
		return &Packet{ID: uint64(i), Proto: ProtoFancy, Size: 64, Entry: InvalidEntry, Ctl: []byte{1, 2}}
	})
	p.s.Run(sim.Second)
	if len(pkts) != 8 || c.Stats.Duplicated != 4 {
		t.Fatalf("delivered %d packets (dup stat %d), want 8/4", len(pkts), c.Stats.Duplicated)
	}
	// Copies must not share Ctl storage: receivers mutate delivered packets.
	byID := map[uint64][]*Packet{}
	for _, pkt := range pkts {
		byID[pkt.ID] = append(byID[pkt.ID], pkt)
	}
	for id, pair := range byID {
		if len(pair) != 2 {
			t.Fatalf("packet %d delivered %d times, want 2", id, len(pair))
		}
		if pair[0] == pair[1] || &pair[0].Ctl[0] == &pair[1].Ctl[0] {
			t.Fatal("duplicate shares storage with the original")
		}
	}
}

func TestChaosReorderDelaysWithinJitterBound(t *testing.T) {
	p := newChaosPair(6)
	c := NewChaos(p.s, "reorder")
	c.Reorder = 1.0
	c.JitterMax = 2 * sim.Millisecond
	p.link.AB.SetChaos(c)
	base := sim.Millisecond // link propagation delay
	var late int
	p.b.Default = PacketHandlerFunc(func(pkt *Packet) {
		delay := p.s.Now() - pkt.SentAt
		if delay <= base {
			late++ // should never happen: every packet gets extra jitter
		}
		if delay > base+c.JitterMax {
			late++
		}
	})
	p.sendEvery(5*sim.Millisecond, 50, func(i int) *Packet {
		return &Packet{ID: uint64(i), Proto: ProtoUDP, Size: 100, Entry: 1}
	})
	p.s.Run(sim.Second)
	if late != 0 {
		t.Fatalf("%d packets outside the (delay, delay+JitterMax] window", late)
	}
	if c.Stats.Reordered != 50 {
		t.Fatalf("Reordered = %d, want 50", c.Stats.Reordered)
	}
}

// TestChaosReplayDeterminism is the replay-equality check: two simulations
// built from the same seed must produce bit-identical chaos schedules,
// delivery sequences and injector statistics — including the Failure
// injector's drops, whose RNG is likewise derived from the simulation seed.
func TestChaosReplayDeterminism(t *testing.T) {
	run := func(seed int64) (string, ChaosStats, uint64) {
		p := newChaosPair(seed)
		c := NewChaos(p.s, "replay")
		c.CorruptCtl = 0.2
		c.CorruptData = 0.1
		c.Duplicate = 0.15
		c.Reorder = 0.3
		c.JitterMax = sim.Millisecond
		c.DownFor = 20 * sim.Millisecond
		c.UpFor = 80 * sim.Millisecond
		c.Start = 100 * sim.Millisecond
		p.link.AB.SetChaos(c)
		f := NewFailure(p.s.DeriveSeed("failure"))
		f.Uniform = 0.1
		p.link.AB.SetFailure(f)

		var trace string
		p.b.Default = PacketHandlerFunc(func(pkt *Packet) {
			trace += fmt.Sprintf("%d@%d;", pkt.ID, p.s.Now())
		})
		p.sendEvery(3*sim.Millisecond, 200, func(i int) *Packet {
			if i%5 == 0 {
				return &Packet{ID: uint64(i), Proto: ProtoFancy, Size: 64,
					Entry: InvalidEntry, Ctl: []byte{9, 9, 9, 9}}
			}
			return &Packet{ID: uint64(i), Proto: ProtoUDP, Size: 100, Entry: 1}
		})
		p.s.Run(sim.Second)
		return trace, c.Stats, f.Dropped.Data + f.Dropped.Control
	}

	t1, s1, f1 := run(42)
	t2, s2, f2 := run(42)
	if t1 != t2 {
		t.Error("same seed produced different delivery traces")
	}
	if s1 != s2 {
		t.Errorf("same seed produced different chaos stats: %+v vs %+v", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("same seed produced different failure drops: %d vs %d", f1, f2)
	}
	// And a different seed must actually change the schedule (the streams
	// are not accidentally constant).
	t3, _, _ := run(43)
	if t1 == t3 {
		t.Error("different seeds replayed the identical trace")
	}
}
