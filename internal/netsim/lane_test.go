package netsim

import (
	"testing"

	"fancy/internal/sim"
)

// TestSerializationExactTimes pins the integer serialization arithmetic to
// exact values for the rates EXPERIMENTS.md uses. The rule is documented on
// direction.serialization: ns = ceil(bits * 1e9 / rate) — a packet never
// finishes serialization early, and equal inputs give bit-identical times
// on every platform (the old float64 math could drift at high rates).
func TestSerializationExactTimes(t *testing.T) {
	cases := []struct {
		rateBps int64
		size    int
		want    sim.Time
	}{
		// 2 Mbps × 1000 B (the fleet sweep's UDP source): exactly 4 ms.
		{2e6, 1000, 4 * sim.Millisecond},
		// 1 Mbps × 1250 B: exactly 10 ms (the classic test fixture).
		{1e6, 1250, 10 * sim.Millisecond},
		// 10 Gbps × 1500 B: 12000 bits / 10^10 bps = 1.2 µs exactly.
		{10e9, 1500, 1200 * sim.Nanosecond},
		// 100 Gbps × 64 B: 512 bits / 10^11 bps = 5.12 ns → rounds UP to 6.
		{100e9, 64, 6 * sim.Nanosecond},
		// 3 Mbps × 1000 B: 8000/3 µs = 2666.66… µs → rounds UP.
		{3e6, 1000, sim.Time(2666667)},
		// Zero rate means an infinitely fast link.
		{0, 1500, 0},
	}
	for _, c := range cases {
		d := &direction{rateBps: c.rateBps}
		if got := d.serialization(c.size); got != c.want {
			t.Errorf("serialization(%d B @ %d bps) = %v, want %v",
				c.size, c.rateBps, got, c.want)
		}
	}
}

// TestLaneEgressHookTiming verifies the per-link lane preserves the egress
// hook contract: the hook fires when a packet begins serialization — at
// send time for an idle serializer, at the previous packet's serialization
// end for a queued one.
func TestLaneEgressHookTiming(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	Connect(s, a, 0, b, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e6})
	var hookAt []sim.Time
	var hookID []uint64
	a.tx.dir.egressHook = func(pkt *Packet) {
		hookAt = append(hookAt, s.Now())
		hookID = append(hookID, pkt.ID)
	}
	// 1250 B @ 1 Mbps = 10 ms serialization each.
	a.tx.Send(&Packet{Size: 1250, ID: 1}) // serializes 0–10 ms
	a.tx.Send(&Packet{Size: 1250, ID: 2}) // serializes 10–20 ms
	s.Run(0)
	if len(hookAt) != 2 {
		t.Fatalf("egress hook fired %d times, want 2", len(hookAt))
	}
	if hookID[0] != 1 || hookAt[0] != 0 {
		t.Errorf("first egress: id=%d at %v, want id=1 at 0", hookID[0], hookAt[0])
	}
	if hookID[1] != 2 || hookAt[1] != 10*sim.Millisecond {
		t.Errorf("second egress: id=%d at %v, want id=2 at 10ms", hookID[1], hookAt[1])
	}
	if len(b.got) != 2 || b.at[0] != 11*sim.Millisecond || b.at[1] != 21*sim.Millisecond {
		t.Errorf("deliveries %v, want [11ms 21ms]", b.at)
	}
}

// TestPacketPoolSemantics exercises the Get/Put eligibility rules: only
// pool-originated plain UDP packets are recycled, and returned packets come
// back zeroed.
func TestPacketPoolSemantics(t *testing.T) {
	p := NewPacketPool()
	pkt := p.Get()
	if !pkt.pooled {
		t.Fatal("Get must mark the packet pooled")
	}
	pkt.Proto = ProtoUDP
	pkt.ID = 42
	pkt.Size = 1000
	p.Put(pkt)
	if p.Gets != 1 {
		t.Errorf("Gets = %d, want 1", p.Gets)
	}
	got := p.Get()
	if got != pkt {
		t.Error("pool did not recycle the returned packet")
	}
	if got.ID != 0 || got.Size != 0 || !got.pooled {
		t.Errorf("recycled packet not reset: %+v", got)
	}
	if p.Reuses != 1 {
		t.Errorf("Reuses = %d, want 1", p.Reuses)
	}

	// Foreign packets (not from the pool) are refused.
	foreign := &Packet{ID: 7}
	p.Put(foreign)
	if len(p.free) != 0 {
		t.Error("pool accepted a non-pooled packet")
	}
	// Control packets are refused even if pool-originated.
	ctl := p.Get()
	ctl.Proto = ProtoFancy
	ctl.Ctl = []byte{1}
	p.Put(ctl)
	if len(p.free) != 0 {
		t.Error("pool accepted a control packet")
	}
	// Put clears pooled, so a double Put of the same pointer is a no-op.
	dup := p.Get()
	dup.Proto = ProtoUDP
	p.Put(dup)
	p.Put(dup)
	if len(p.free) != 1 {
		t.Errorf("double Put stored %d entries, want 1", len(p.free))
	}
	// nil pool and nil packet are both safe.
	var nilPool *PacketPool
	nilPool.Put(&Packet{})
	p.Put(nil)
}

// TestChaosCloneClearsLaneState guards the duplicate path: a cloned packet
// must not inherit the original's intrusive lane linkage or pool ownership,
// or the lanes would corrupt and the pool could double-free.
func TestChaosCloneClearsLaneState(t *testing.T) {
	orig := &Packet{ID: 1, pooled: true, laneAt: 5, laneEgressed: true}
	orig.laneNext = &Packet{ID: 2}
	c := orig.clone()
	if c.laneNext != nil || c.laneAt != 0 || c.laneEgressed || c.pooled {
		t.Errorf("clone kept lane/pool state: %+v", c)
	}
}

// TestLinkSteadyStateDoesNotAllocate pins the pooled hot path: a
// send→serialize→propagate→deliver→recycle cycle on a warmed link performs
// no heap allocations.
func TestLinkSteadyStateDoesNotAllocate(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &dropNode{name: "b"}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	pool := NewPacketPool()
	l.SetPool(pool)
	b.pool = pool
	// Warm the lane, the event pool, and the packet pool.
	cycle := func() {
		pkt := pool.Get()
		pkt.Proto = ProtoUDP
		pkt.Size = 1000
		a.tx.Send(pkt)
		s.Run(0)
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("steady-state link cycle allocates %.1f objects, want 0", avg)
	}
	if pool.Reuses == 0 {
		t.Error("pool never recycled a packet")
	}
}

// dropNode receives and discards without retaining, so delivered packets
// reach the death point the pool reclaims from (host no-handler drop is the
// production path; here the node itself frees).
type dropNode struct {
	name string
	tx   *LinkEnd
	pool *PacketPool
	got  int
}

func (n *dropNode) Name() string                 { return n.name }
func (n *dropNode) Attach(port int, tx *LinkEnd) { n.tx = tx }
func (n *dropNode) Receive(pkt *Packet, port int) {
	n.got++
	if n.pool != nil {
		n.pool.Put(pkt)
	}
}

// TestConnectOnShardedTranscript runs the same two-node ping-pong workload
// on the classic engine and on the sharded parallel engine (one node per
// shard, the link crossing shards via ConnectOn) and requires identical
// delivery times on both.
func TestConnectOnShardedTranscript(t *testing.T) {
	run := func(workers int) []sim.Time {
		s := sim.New(7)
		var times []sim.Time
		const delay = 2 * sim.Millisecond
		if workers > 0 {
			s.SetParallel(workers, delay)
			shards := s.Shards(2)
			a := &sinkNode{name: "a", s: shards[0]}
			b := &bouncer{times: &times, s: shards[1]}
			ConnectOn(shards[0], shards[1], a, 0, b, 0,
				LinkConfig{Delay: delay, RateBps: 1e6})
			shards[0].After(0, func() { a.tx.Send(&Packet{Size: 1250, ID: 1}) })
			shards[0].After(15*sim.Millisecond, func() { a.tx.Send(&Packet{Size: 1250, ID: 2}) })
			s.Run(100 * sim.Millisecond)
			return times
		}
		a := &sinkNode{name: "a", s: s}
		b := &bouncer{times: &times, s: s}
		Connect(s, a, 0, b, 0, LinkConfig{Delay: delay, RateBps: 1e6})
		s.After(0, func() { a.tx.Send(&Packet{Size: 1250, ID: 1}) })
		s.After(15*sim.Millisecond, func() { a.tx.Send(&Packet{Size: 1250, ID: 2}) })
		s.Run(100 * sim.Millisecond)
		return times
	}
	want := run(0)
	if len(want) == 0 {
		t.Fatal("classic run delivered nothing")
	}
	for _, w := range []int{1, 2} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d delivered %d, classic %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d delivery %d at %v, classic %v", w, i, got[i], want[i])
			}
		}
	}
}

// bouncer records arrival times using its own shard's clock.
type bouncer struct {
	name  string
	s     *sim.Sim
	tx    *LinkEnd
	times *[]sim.Time
}

func (n *bouncer) Name() string                 { return n.name }
func (n *bouncer) Attach(port int, tx *LinkEnd) { n.tx = tx }
func (n *bouncer) Receive(pkt *Packet, port int) {
	*n.times = append(*n.times, n.s.Now())
}
