// Package netsim provides a packet-level network simulation substrate: hosts,
// links with configurable delay/bandwidth and gray-failure injection, and a
// P4-like switch model (parser → ingress → traffic manager → egress) that
// in-switch applications such as FANcY hook into.
//
// The model mirrors the custom ns-3 switch the paper used for its software
// evaluation: packets are structs (not raw bytes) for speed, but FANcY
// control messages and tags are carried in their marshalled wire form so the
// protocol's encode/decode path is exercised end to end.
package netsim

import (
	"fmt"

	"fancy/internal/sim"
	"fancy/internal/wire"
)

// EntryID identifies a forwarding entry (in the paper's terms, a subset of
// the header space — typically a destination prefix). FANcY detects and
// localizes failures at entry granularity.
type EntryID uint32

// InvalidEntry marks packets that do not belong to any monitored entry,
// such as control messages.
const InvalidEntry EntryID = ^EntryID(0)

// Proto enumerates transport protocols used by the traffic generators.
type Proto uint8

// Transport protocols.
const (
	ProtoTCP Proto = iota
	ProtoUDP
	ProtoFancy // FANcY control message
)

// FlowID identifies a transport flow end to end.
type FlowID uint32

// TCPFlags is the subset of TCP flags the simplified stack uses.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
)

// Packet is the unit of transmission. Packets are passed by pointer and are
// owned by the receiving node once delivered.
type Packet struct {
	ID    uint64
	Flow  FlowID
	Entry EntryID
	Src   uint32 // IPv4 source address
	Dst   uint32 // IPv4 destination address
	Proto Proto
	Size  int // bytes on the wire, headers included

	// Transport fields (TCP).
	Seq   int64 // first payload byte carried
	Ack   int64 // cumulative ACK
	Len   int   // payload bytes
	Flags TCPFlags

	// FANcY fields. Tagged marks a packet counted by a FANcY session; Tag
	// is its 2-byte wire tag and TagKind the session machinery it belongs
	// to. Ctl carries a marshalled FANcY control message for ProtoFancy.
	Tagged  bool
	Tag     wire.Tag
	TagKind wire.SessionKind
	Ctl     []byte

	// SentAt records when the packet first entered a link, for latency
	// accounting in tests.
	SentAt sim.Time

	// ProbeWindow carries a measurement-window stamp for the baseline
	// probes of §2.4/§5.2 (0 = unstamped). It plays the role FANcY's
	// session tags play: making upstream and downstream count the same
	// packets in the same window despite in-flight delay.
	ProbeWindow int64

	// Intrusive link-lane fields (see direction in link.go): next packet
	// in the lane FIFO, the lane deadline (serialization end on the
	// transmit lane, arrival time on the receive lane), and whether the
	// egress hook already fired for this transmission.
	laneNext     *Packet
	laneAt       sim.Time
	laneEgressed bool

	// pooled marks packets obtained from a PacketPool; only those are
	// eligible for recycling (see pool.go).
	pooled bool
}

// String summarizes the packet for debugging.
func (p *Packet) String() string {
	switch p.Proto {
	case ProtoFancy:
		return fmt.Sprintf("fancy-ctl(%dB)", p.Size)
	case ProtoUDP:
		return fmt.Sprintf("udp flow=%d entry=%d %dB", p.Flow, p.Entry, p.Size)
	default:
		return fmt.Sprintf("tcp flow=%d entry=%d seq=%d ack=%d len=%d flags=%03b",
			p.Flow, p.Entry, p.Seq, p.Ack, p.Len, p.Flags)
	}
}

// A Node is anything attachable to a link: a switch or a host.
type Node interface {
	// Name identifies the node in logs and errors.
	Name() string
	// Attach gives the node the transmit handle for one of its ports.
	Attach(port int, tx *LinkEnd)
	// Receive delivers a packet arriving on port.
	Receive(pkt *Packet, port int)
}

// IPv4 builds an address from dotted-quad octets, for readable tests.
func IPv4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// EntryAddr derives a deterministic destination address for an entry: each
// entry occupies its own /24, mirroring the paper's per-/24-prefix entries.
func EntryAddr(e EntryID, host byte) uint32 {
	return uint32(e)<<8 | uint32(host)
}

// AddrEntry recovers the entry a destination address belongs to under the
// EntryAddr scheme.
func AddrEntry(addr uint32) EntryID { return EntryID(addr >> 8) }
