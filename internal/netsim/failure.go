package netsim

import (
	"math/rand"

	"fancy/internal/sim"
)

// Failure injects gray-failure packet drops into one link direction. It
// reproduces the failure classes of Table 1 in the paper:
//
//   - per-entry loss (some or all packets of one or a few IP prefixes):
//     PerEntry maps each affected entry to its drop probability;
//   - uniform loss (all entries, a fraction of packets — e.g. CRC
//     corruption on a link): Uniform > 0;
//   - blackholes: probability 1 in either mode.
//
// A Failure is active between Start and End (End == 0 means "until the end
// of the simulation"). Control-plane packets (ProtoFancy) are only affected
// by Uniform loss: entry-selective hardware bugs match on header fields the
// control messages do not carry, whereas link-level corruption hits
// everything — exactly the property that makes gray failures invisible to
// hello protocols like BFD yet detectable by FANcY.
type Failure struct {
	Start sim.Time
	End   sim.Time

	Uniform  float64
	PerEntry map[EntryID]float64

	// FlowFraction selects a deterministic subset of flows (by flow-ID
	// hash) whose packets are dropped with probability FlowLoss. This
	// models the Table 1 bugs that hit specific packets — e.g. specific
	// sizes or header values — which map to specific flows: the failure
	// class hello protocols and Blink-style retransmission detectors
	// fundamentally miss when the subset is a minority.
	FlowFraction float64
	FlowLoss     float64

	// SizeMin/SizeMax select packets by wire size, dropped with
	// probability SizeLoss — the Table 1 bug "drops random sized L2TPv3
	// packets" / "packets with specific sizes" class.
	SizeMin, SizeMax int
	SizeLoss         float64

	// BurstOn/BurstOff make the failure intermittent: within the active
	// window it cycles BurstOn dropping, BurstOff healthy, repeating.
	// §2.1's operators report that intermittent gray failures are the
	// hardest to diagnose — "many gray failures are never diagnosed,
	// e.g., because they appear intermittently".
	BurstOn, BurstOff sim.Time

	// DropsControl optionally extends per-entry failures to control
	// packets as well, to test the counting protocol's stop-and-wait
	// reliability in isolation.
	DropsControl bool

	rng *rand.Rand

	// Dropped counts packets this failure removed, per class.
	Dropped struct {
		Data    uint64
		Control uint64
	}
}

// NewFailure returns a failure with its own deterministic drop RNG.
func NewFailure(seed int64) *Failure {
	return &Failure{rng: rand.New(rand.NewSource(seed))}
}

// ActiveAt reports whether the failure window covers time t, including the
// intermittent duty cycle when configured.
func (f *Failure) ActiveAt(t sim.Time) bool {
	if f == nil {
		return false
	}
	if t < f.Start || (f.End != 0 && t >= f.End) {
		return false
	}
	if f.BurstOn > 0 && f.BurstOff > 0 {
		phase := (t - f.Start) % (f.BurstOn + f.BurstOff)
		return phase < f.BurstOn
	}
	return true
}

// Drop decides whether to drop pkt at time t.
func (f *Failure) Drop(pkt *Packet, t sim.Time) bool {
	if !f.ActiveAt(t) {
		return false
	}
	if pkt.Proto == ProtoFancy {
		if f.Uniform > 0 && f.roll(f.Uniform) {
			f.Dropped.Control++
			return true
		}
		if f.DropsControl && len(f.PerEntry) > 0 {
			// Apply the maximum per-entry rate to control traffic.
			max := 0.0
			for _, p := range f.PerEntry {
				if p > max {
					max = p
				}
			}
			if f.roll(max) {
				f.Dropped.Control++
				return true
			}
		}
		return false
	}
	if f.Uniform > 0 && f.roll(f.Uniform) {
		f.Dropped.Data++
		return true
	}
	if p, ok := f.PerEntry[pkt.Entry]; ok && f.roll(p) {
		f.Dropped.Data++
		return true
	}
	if f.FlowFraction > 0 && flowSelected(pkt.Flow, f.FlowFraction) && f.roll(f.FlowLoss) {
		f.Dropped.Data++
		return true
	}
	if f.SizeLoss > 0 && pkt.Size >= f.SizeMin && pkt.Size <= f.SizeMax && f.roll(f.SizeLoss) {
		f.Dropped.Data++
		return true
	}
	return false
}

// FailSizes builds a failure dropping rate of the packets whose wire size
// lies in [min, max] bytes, from start onward.
func FailSizes(seed int64, start sim.Time, min, max int, rate float64) *Failure {
	f := NewFailure(seed)
	f.Start = start
	f.SizeMin, f.SizeMax = min, max
	f.SizeLoss = rate
	return f
}

// flowSelected deterministically maps a flow into [0,1) and compares
// against the selected fraction.
func flowSelected(flow FlowID, fraction float64) bool {
	x := uint64(flow) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return float64(x%1_000_000)/1_000_000 < fraction
}

// FailFlows builds a failure dropping rate of the packets of a fraction
// of flows, from start onward.
func FailFlows(seed int64, start sim.Time, fraction, rate float64) *Failure {
	f := NewFailure(seed)
	f.Start = start
	f.FlowFraction = fraction
	f.FlowLoss = rate
	return f
}

func (f *Failure) roll(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

// FailEntries builds a per-entry failure dropping rate of each listed entry.
func FailEntries(seed int64, start sim.Time, rate float64, entries ...EntryID) *Failure {
	f := NewFailure(seed)
	f.Start = start
	f.PerEntry = make(map[EntryID]float64, len(entries))
	for _, e := range entries {
		f.PerEntry[e] = rate
	}
	return f
}

// FailUniform builds a uniform random-loss failure starting at start.
func FailUniform(seed int64, start sim.Time, rate float64) *Failure {
	f := NewFailure(seed)
	f.Start = start
	f.Uniform = rate
	return f
}
