package netsim

import "fmt"

// Route is the forwarding decision for a prefix. Port is the primary egress
// port; Backup, when non-negative, is the alternate next hop a rerouting
// application can divert traffic to. UseBackup flips the active choice —
// this is the per-entry bit FANcY's fast-reroute case study sets when a
// counter is flagged (§6.1).
type Route struct {
	Port      int
	Backup    int
	UseBackup bool
}

// Egress returns the currently active egress port.
func (r *Route) Egress() int {
	if r.UseBackup && r.Backup >= 0 {
		return r.Backup
	}
	return r.Port
}

// RouteTable is a longest-prefix-match table over IPv4 addresses,
// implemented as a binary trie. The zero value is an empty table.
type RouteTable struct {
	root *trieNode
	n    int
}

type trieNode struct {
	children [2]*trieNode
	route    *Route
}

// Insert adds a route for addr/plen and returns it so the caller can keep a
// handle for rerouting. Inserting the same prefix twice replaces the route.
func (t *RouteTable) Insert(addr uint32, plen int, route Route) (*Route, error) {
	if plen < 0 || plen > 32 {
		return nil, fmt.Errorf("netsim: invalid prefix length %d", plen)
	}
	if t.root == nil {
		t.root = &trieNode{}
	}
	n := t.root
	for i := 0; i < plen; i++ {
		bit := addr >> (31 - i) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{}
		}
		n = n.children[bit]
	}
	if n.route == nil {
		t.n++
	}
	r := route
	n.route = &r
	return n.route, nil
}

// Lookup returns the longest-prefix-match route for addr, or nil if no
// prefix covers it.
func (t *RouteTable) Lookup(addr uint32) *Route {
	n := t.root
	var best *Route
	for i := 0; n != nil; i++ {
		if n.route != nil {
			best = n.route
		}
		if i == 32 {
			break
		}
		n = n.children[addr>>(31-i)&1]
	}
	return best
}

// Len reports the number of installed prefixes.
func (t *RouteTable) Len() int { return t.n }

// Walk visits every installed prefix in deterministic order (shorter prefix
// before longer, then by address). The route pointer is the live handle, so
// callers observe the current UseBackup state.
func (t *RouteTable) Walk(fn func(addr uint32, plen int, route *Route)) {
	walkTrie(t.root, 0, 0, fn)
}

func walkTrie(n *trieNode, addr uint32, depth int, fn func(uint32, int, *Route)) {
	if n == nil {
		return
	}
	if n.route != nil {
		fn(addr, depth, n.route)
	}
	if depth == 32 {
		return
	}
	walkTrie(n.children[0], addr, depth+1, fn)
	walkTrie(n.children[1], addr|1<<(31-depth), depth+1, fn)
}

// InsertEntry installs a /24 route for an EntryID under the EntryAddr
// addressing scheme, the common case in experiments.
func (t *RouteTable) InsertEntry(e EntryID, route Route) *Route {
	r, err := t.Insert(uint32(e)<<8, 24, route)
	if err != nil {
		panic(err) // /24 is always valid
	}
	return r
}
