package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fancy/internal/sim"
)

// sinkNode records everything it receives.
type sinkNode struct {
	name string
	got  []*Packet
	at   []sim.Time
	s    *sim.Sim
	tx   *LinkEnd
}

func (n *sinkNode) Name() string                 { return n.name }
func (n *sinkNode) Attach(port int, tx *LinkEnd) { n.tx = tx }
func (n *sinkNode) Receive(pkt *Packet, port int) {
	n.got = append(n.got, pkt)
	n.at = append(n.at, n.s.Now())
}

func TestIPv4Helpers(t *testing.T) {
	addr := IPv4(10, 1, 2, 3)
	if addr != 0x0a010203 {
		t.Errorf("IPv4 = %#x, want 0x0a010203", addr)
	}
	e := EntryID(0x0a0102)
	if EntryAddr(e, 3) != addr {
		t.Errorf("EntryAddr = %#x, want %#x", EntryAddr(e, 3), addr)
	}
	if AddrEntry(addr) != e {
		t.Errorf("AddrEntry = %#x, want %#x", AddrEntry(addr), e)
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	// 1 Mbps, 10 ms delay: a 1250-byte packet serializes in exactly 10 ms.
	Connect(s, a, 0, b, 0, LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 1e6})
	a.tx.Send(&Packet{Size: 1250})
	s.Run(0)
	if len(b.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(b.got))
	}
	if want := 20 * sim.Millisecond; b.at[0] != want {
		t.Errorf("delivery at %v, want %v", b.at[0], want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	Connect(s, a, 0, b, 0, LinkConfig{Delay: 1 * sim.Millisecond, RateBps: 1e6})
	// Two packets sent at t=0 serialize back to back.
	a.tx.Send(&Packet{Size: 1250})
	a.tx.Send(&Packet{Size: 1250})
	s.Run(0)
	if len(b.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(b.got))
	}
	if b.at[0] != 11*sim.Millisecond || b.at[1] != 21*sim.Millisecond {
		t.Errorf("deliveries at %v, %v; want 11ms, 21ms", b.at[0], b.at[1])
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: 0, RateBps: 1e6, QueueBytes: 3000})
	sent, dropped := 0, 0
	for i := 0; i < 5; i++ {
		if a.tx.Send(&Packet{Size: 1000}) {
			sent++
		} else {
			dropped++
		}
	}
	if sent != 3 || dropped != 2 {
		t.Errorf("sent=%d dropped=%d, want 3/2", sent, dropped)
	}
	s.Run(0)
	st := l.AB.Stats()
	if st.CongestionDrops != 2 || st.Delivered != 3 {
		t.Errorf("stats = %+v, want 2 congestion drops, 3 delivered", st)
	}
	// Queue drains after serialization completes; further sends succeed.
	if !a.tx.Send(&Packet{Size: 1000}) {
		t.Error("send after drain should succeed")
	}
}

func TestLinkFullDuplex(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	Connect(s, a, 0, b, 0, LinkConfig{Delay: 1 * sim.Millisecond, RateBps: 1e9})
	a.tx.Send(&Packet{Size: 100, ID: 1})
	b.tx.Send(&Packet{Size: 100, ID: 2})
	s.Run(0)
	if len(b.got) != 1 || b.got[0].ID != 1 {
		t.Error("a→b direction broken")
	}
	if len(a.got) != 1 || a.got[0].ID != 2 {
		t.Error("b→a direction broken")
	}
}

func TestFailureWindow(t *testing.T) {
	f := NewFailure(1)
	f.Start = 1 * sim.Second
	f.End = 2 * sim.Second
	f.Uniform = 1
	pkt := &Packet{Entry: 5}
	if f.Drop(pkt, 500*sim.Millisecond) {
		t.Error("dropped before window")
	}
	if !f.Drop(pkt, 1500*sim.Millisecond) {
		t.Error("not dropped inside window")
	}
	if f.Drop(pkt, 2500*sim.Millisecond) {
		t.Error("dropped after window")
	}
	var nilF *Failure
	if nilF.Drop(pkt, 0) {
		t.Error("nil failure dropped a packet")
	}
}

func TestFailurePerEntrySelectivity(t *testing.T) {
	f := FailEntries(1, 0, 1.0, 7)
	if !f.Drop(&Packet{Entry: 7}, 1) {
		t.Error("failed entry not dropped")
	}
	if f.Drop(&Packet{Entry: 8}, 1) {
		t.Error("healthy entry dropped")
	}
	if f.Drop(&Packet{Proto: ProtoFancy, Entry: InvalidEntry}, 1) {
		t.Error("control packet dropped by per-entry failure")
	}
	if f.Dropped.Data != 1 {
		t.Errorf("data drop count = %d, want 1", f.Dropped.Data)
	}
}

func TestFailureControlDropsOption(t *testing.T) {
	f := FailEntries(1, 0, 1.0, 7)
	f.DropsControl = true
	if !f.Drop(&Packet{Proto: ProtoFancy, Entry: InvalidEntry}, 1) {
		t.Error("DropsControl failure should drop control packets")
	}
	if f.Dropped.Control != 1 {
		t.Errorf("control drop count = %d, want 1", f.Dropped.Control)
	}
}

func TestFailureUniformAffectsControl(t *testing.T) {
	f := FailUniform(1, 0, 1.0)
	if !f.Drop(&Packet{Proto: ProtoFancy}, 1) {
		t.Error("uniform blackhole must drop control packets")
	}
}

func TestFailureStatisticalRate(t *testing.T) {
	f := FailUniform(42, 0, 0.1)
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if f.Drop(&Packet{}, 1) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.09 || rate > 0.11 {
		t.Errorf("empirical drop rate = %.4f, want ≈0.10", rate)
	}
}

func TestRouteTableLPM(t *testing.T) {
	var rt RouteTable
	if rt.Lookup(IPv4(1, 2, 3, 4)) != nil {
		t.Error("empty table returned a route")
	}
	rt.Insert(IPv4(10, 0, 0, 0), 8, Route{Port: 1, Backup: -1})
	rt.Insert(IPv4(10, 1, 0, 0), 16, Route{Port: 2, Backup: -1})
	rt.Insert(IPv4(10, 1, 2, 0), 24, Route{Port: 3, Backup: -1})
	rt.Insert(0, 0, Route{Port: 9, Backup: -1}) // default route

	cases := []struct {
		addr uint32
		port int
	}{
		{IPv4(10, 1, 2, 3), 3},
		{IPv4(10, 1, 9, 9), 2},
		{IPv4(10, 9, 9, 9), 1},
		{IPv4(192, 168, 0, 1), 9},
	}
	for _, c := range cases {
		r := rt.Lookup(c.addr)
		if r == nil || r.Port != c.port {
			t.Errorf("Lookup(%#x) = %+v, want port %d", c.addr, r, c.port)
		}
	}
	if rt.Len() != 4 {
		t.Errorf("Len = %d, want 4", rt.Len())
	}
}

func TestRouteTableReplace(t *testing.T) {
	var rt RouteTable
	rt.Insert(IPv4(10, 0, 0, 0), 8, Route{Port: 1})
	rt.Insert(IPv4(10, 0, 0, 0), 8, Route{Port: 2})
	if rt.Len() != 1 {
		t.Errorf("Len = %d after replace, want 1", rt.Len())
	}
	if r := rt.Lookup(IPv4(10, 0, 0, 1)); r.Port != 2 {
		t.Errorf("port = %d after replace, want 2", r.Port)
	}
}

func TestRouteTableInvalidPrefix(t *testing.T) {
	var rt RouteTable
	if _, err := rt.Insert(0, 33, Route{}); err == nil {
		t.Error("plen 33 accepted")
	}
	if _, err := rt.Insert(0, -1, Route{}); err == nil {
		t.Error("plen -1 accepted")
	}
}

func TestRouteBackupSwitching(t *testing.T) {
	r := Route{Port: 1, Backup: 2}
	if r.Egress() != 1 {
		t.Error("primary not used by default")
	}
	r.UseBackup = true
	if r.Egress() != 2 {
		t.Error("backup not used when flagged")
	}
	r2 := Route{Port: 1, Backup: -1, UseBackup: true}
	if r2.Egress() != 1 {
		t.Error("UseBackup without a backup must fall back to primary")
	}
}

// Property: LPM returns the most specific matching prefix out of a random
// set of /8, /16, /24 prefixes.
func TestPropertyLPM(t *testing.T) {
	f := func(addrs []uint32) bool {
		var rt RouteTable
		type pfx struct {
			addr uint32
			plen int
			port int
		}
		var inserted []pfx
		for i, a := range addrs {
			plen := []int{8, 16, 24}[i%3]
			mask := uint32(0xffffffff) << (32 - plen)
			p := pfx{a & mask, plen, i + 1}
			inserted = append(inserted, p)
			rt.Insert(p.addr, p.plen, Route{Port: p.port, Backup: -1})
			if len(inserted) >= 64 {
				break
			}
		}
		for _, a := range addrs {
			want := -1
			bestLen := -1
			for _, p := range inserted {
				mask := uint32(0xffffffff) << (32 - p.plen)
				if a&mask == p.addr && p.plen > bestLen {
					// Later inserts replace earlier ones for the same prefix.
					bestLen, want = p.plen, p.port
				}
			}
			// Replacement semantics: find the LAST insert with that prefix.
			if bestLen >= 0 {
				for _, p := range inserted {
					mask := uint32(0xffffffff) << (32 - p.plen)
					if p.plen == bestLen && a&mask == p.addr {
						want = p.port
					}
				}
			}
			r := rt.Lookup(a)
			got := -1
			if r != nil {
				got = r.Port
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestSwitchForwarding(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 4)
	src := &sinkNode{name: "src", s: s}
	dst := &sinkNode{name: "dst", s: s}
	Connect(s, src, 0, sw, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	Connect(s, sw, 1, dst, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e9})
	sw.Routes.InsertEntry(100, Route{Port: 1, Backup: -1})

	src.tx.Send(&Packet{Dst: EntryAddr(100, 1), Entry: 100, Size: 100})
	src.tx.Send(&Packet{Dst: EntryAddr(999, 1), Entry: 999, Size: 100}) // no route
	s.Run(0)
	if len(dst.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(dst.got))
	}
	if sw.Forwarded != 1 || sw.NoRoute != 1 {
		t.Errorf("Forwarded=%d NoRoute=%d, want 1/1", sw.Forwarded, sw.NoRoute)
	}
}

type recordingIngress struct {
	seen    int
	consume func(*Packet) bool
}

func (r *recordingIngress) OnIngress(pkt *Packet, port int) bool {
	r.seen++
	if r.consume != nil {
		return r.consume(pkt)
	}
	return false
}

type recordingEgress struct{ seen int }

func (r *recordingEgress) OnEgress(pkt *Packet, port int) { r.seen++ }

func TestSwitchHooks(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 2)
	src := &sinkNode{name: "src", s: s}
	dst := &sinkNode{name: "dst", s: s}
	Connect(s, src, 0, sw, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	Connect(s, sw, 1, dst, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	sw.Routes.InsertEntry(1, Route{Port: 1, Backup: -1})

	in := &recordingIngress{consume: func(p *Packet) bool { return p.Proto == ProtoFancy }}
	eg := &recordingEgress{}
	sw.AddIngressHook(in)
	sw.AddEgressHook(eg)

	src.tx.Send(&Packet{Dst: EntryAddr(1, 1), Entry: 1, Size: 100})
	src.tx.Send(&Packet{Proto: ProtoFancy, Size: 64})
	s.Run(0)

	if in.seen != 2 {
		t.Errorf("ingress saw %d, want 2", in.seen)
	}
	if eg.seen != 1 {
		t.Errorf("egress saw %d, want 1 (control consumed at ingress)", eg.seen)
	}
	if sw.Consumed != 1 {
		t.Errorf("Consumed = %d, want 1", sw.Consumed)
	}
	if len(dst.got) != 1 {
		t.Errorf("delivered %d, want 1", len(dst.got))
	}
}

func TestSwitchEgressHookAfterTM(t *testing.T) {
	// Egress hooks must not observe congestion-dropped packets.
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 2)
	src := &sinkNode{name: "src", s: s}
	dst := &sinkNode{name: "dst", s: s}
	Connect(s, src, 0, sw, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	// Slow egress with a tiny queue: most packets are congestion drops.
	l := Connect(s, sw, 1, dst, 0, LinkConfig{Delay: 0, RateBps: 1e6, QueueBytes: 2000})
	sw.Routes.InsertEntry(1, Route{Port: 1, Backup: -1})
	eg := &recordingEgress{}
	sw.AddEgressHook(eg)

	for i := 0; i < 10; i++ {
		src.tx.Send(&Packet{Dst: EntryAddr(1, 1), Entry: 1, Size: 1000})
	}
	s.Run(0)
	st := l.AB.Stats()
	if st.CongestionDrops == 0 {
		t.Fatal("expected congestion drops in this setup")
	}
	if eg.seen != int(st.Sent) {
		t.Errorf("egress hook saw %d packets, want %d (only TM-admitted)", eg.seen, st.Sent)
	}
	if eg.seen+int(st.CongestionDrops) != 10 {
		t.Errorf("admitted+dropped = %d, want 10", eg.seen+int(st.CongestionDrops))
	}
}

func TestSwitchInject(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 2)
	dst := &sinkNode{name: "dst", s: s}
	Connect(s, sw, 1, dst, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	if !sw.Inject(&Packet{Proto: ProtoFancy, Size: 64}, 1) {
		t.Fatal("Inject failed")
	}
	if sw.Inject(&Packet{}, 0) {
		t.Error("Inject to unattached port should fail")
	}
	s.Run(0)
	if len(dst.got) != 1 {
		t.Errorf("delivered %d, want 1", len(dst.got))
	}
}

func TestSwitchReroute(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 3)
	src := &sinkNode{name: "src", s: s}
	d1 := &sinkNode{name: "d1", s: s}
	d2 := &sinkNode{name: "d2", s: s}
	Connect(s, src, 0, sw, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	Connect(s, sw, 1, d1, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	Connect(s, sw, 2, d2, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	route := sw.Routes.InsertEntry(1, Route{Port: 1, Backup: 2})

	src.tx.Send(&Packet{Dst: EntryAddr(1, 1), Entry: 1, Size: 100})
	s.Run(0)
	route.UseBackup = true
	src.tx.Send(&Packet{Dst: EntryAddr(1, 1), Entry: 1, Size: 100})
	s.Run(0)

	if len(d1.got) != 1 || len(d2.got) != 1 {
		t.Errorf("d1=%d d2=%d, want 1 each (reroute must divert the second packet)", len(d1.got), len(d2.got))
	}
}

func TestHostDemux(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	peer := &sinkNode{name: "peer", s: s}
	Connect(s, peer, 0, h, 0, LinkConfig{Delay: 0, RateBps: 1e9})

	var flowPkts, defPkts int
	h.Bind(7, PacketHandlerFunc(func(p *Packet) { flowPkts++ }))
	h.Default = PacketHandlerFunc(func(p *Packet) { defPkts++ })

	peer.tx.Send(&Packet{Flow: 7, Size: 10})
	peer.tx.Send(&Packet{Flow: 8, Size: 10})
	s.Run(0)
	if flowPkts != 1 || defPkts != 1 {
		t.Errorf("flow=%d default=%d, want 1/1", flowPkts, defPkts)
	}

	h.Bind(7, nil)
	peer.tx.Send(&Packet{Flow: 7, Size: 10})
	s.Run(0)
	if defPkts != 2 {
		t.Errorf("unbound flow should fall to default, defPkts=%d", defPkts)
	}
}

func TestHostSendUnattached(t *testing.T) {
	h := NewHost(sim.New(1), "h")
	if h.Send(&Packet{}) {
		t.Error("Send on unattached host should fail")
	}
}

func TestLinkFailureDropsCounted(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	l := Connect(s, a, 0, b, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	l.AB.SetFailure(FailEntries(1, 0, 1.0, 5))
	a.tx.Send(&Packet{Entry: 5, Size: 100})
	a.tx.Send(&Packet{Entry: 6, Size: 100})
	s.Run(0)
	st := l.AB.Stats()
	if st.FailureDrops != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v, want 1 failure drop, 1 delivered", st)
	}
	if len(b.got) != 1 || b.got[0].Entry != 6 {
		t.Error("wrong packet survived the failure")
	}
}

func BenchmarkLinkThroughput(b *testing.B) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	dst := &sinkNode{name: "b", s: s}
	Connect(s, a, 0, dst, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 100e9, QueueBytes: 1 << 30})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.tx.Send(&Packet{Size: 1500})
		if i%1024 == 0 {
			s.Run(0)
			dst.got = dst.got[:0]
			dst.at = dst.at[:0]
		}
	}
	s.Run(0)
}

func TestFailureConstructors(t *testing.T) {
	// FailFlows: deterministic flow-subset selection.
	f := FailFlows(1, 0, 0.3, 1.0)
	selected, n := 0, 5000
	for i := 0; i < n; i++ {
		if f.Drop(&Packet{Flow: FlowID(i), Proto: ProtoTCP}, 1) {
			selected++
		}
	}
	frac := float64(selected) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("flow fraction = %.3f, want ≈0.30", frac)
	}
	// Same flow, same verdict: selection must be deterministic.
	f2 := FailFlows(99, 0, 0.3, 1.0)
	for i := 0; i < 100; i++ {
		p := &Packet{Flow: FlowID(i), Proto: ProtoTCP}
		if f.Drop(p, 1) != f2.Drop(p, 1) {
			t.Fatal("flow selection depends on the RNG seed")
		}
	}

	// FailSizes: only the configured byte range drops.
	fs := FailSizes(2, 0, 700, 900, 1.0)
	if !fs.Drop(&Packet{Size: 800}, 1) {
		t.Error("in-range size not dropped")
	}
	if fs.Drop(&Packet{Size: 699}, 1) || fs.Drop(&Packet{Size: 901}, 1) {
		t.Error("out-of-range size dropped")
	}
}

func TestAccessors(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "hostname")
	if h.Name() != "hostname" || h.Sim() != s {
		t.Error("host accessors broken")
	}
	sw := NewSwitch(s, "swname", 2)
	if sw.Name() != "swname" || sw.NumPorts() != 2 {
		t.Error("switch accessors broken")
	}
	a := &sinkNode{name: "a", s: s}
	l := Connect(s, a, 0, sw, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e6})
	if l.AB.Failure() != nil {
		t.Error("fresh link has a failure")
	}
	fl := NewFailure(1)
	l.AB.SetFailure(fl)
	if l.AB.Failure() != fl {
		t.Error("Failure accessor broken")
	}
	if l.AB.Busy() {
		t.Error("idle link reports busy")
	}
	a.tx.Send(&Packet{Size: 10_000})
	if !l.AB.Busy() || l.AB.QueueDepthBytes() != 10_000 {
		t.Errorf("busy=%v depth=%d, want true/10000", l.AB.Busy(), l.AB.QueueDepthBytes())
	}
	s.Run(0)
	if l.AB.QueueDepthBytes() != 0 {
		t.Error("queue did not drain")
	}
}

func TestPacketString(t *testing.T) {
	cases := []*Packet{
		{Proto: ProtoFancy, Size: 64},
		{Proto: ProtoUDP, Flow: 1, Entry: 2, Size: 100},
		{Proto: ProtoTCP, Flow: 3, Entry: 4, Seq: 5, Ack: 6, Len: 7, Flags: FlagACK},
	}
	for _, p := range cases {
		if p.String() == "" {
			t.Errorf("empty String() for %+v", p)
		}
	}
}

func TestHostAttachPanics(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	defer func() {
		if recover() == nil {
			t.Error("host Attach on port 1 should panic")
		}
	}()
	h.Attach(1, nil)
}

func TestSwitchAttachPanics(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 1)
	a := &sinkNode{name: "a", s: s}
	Connect(s, a, 0, sw, 0, LinkConfig{RateBps: 1e6})
	defer func() {
		if recover() == nil {
			t.Error("double attach should panic")
		}
	}()
	sw.Attach(0, nil)
}

func TestFailureIntermittentDutyCycle(t *testing.T) {
	f := FailEntries(1, sim.Second, 1.0, 5)
	f.BurstOn = 100 * sim.Millisecond
	f.BurstOff = 300 * sim.Millisecond
	pkt := &Packet{Entry: 5}
	cases := []struct {
		at   sim.Time
		drop bool
	}{
		{500 * sim.Millisecond, false},  // before Start
		{1050 * sim.Millisecond, true},  // first burst
		{1200 * sim.Millisecond, false}, // off phase
		{1450 * sim.Millisecond, true},  // second burst
		{1700 * sim.Millisecond, false}, // off phase
	}
	for _, c := range cases {
		if got := f.Drop(pkt, c.at); got != c.drop {
			t.Errorf("Drop at %v = %v, want %v", c.at, got, c.drop)
		}
	}
}

func TestSwitchTapsAndLocalDeliv(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "sw", 2)
	src := &sinkNode{name: "src", s: s}
	dst := &sinkNode{name: "dst", s: s}
	Connect(s, src, 0, sw, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	Connect(s, sw, 1, dst, 0, LinkConfig{Delay: 0, RateBps: 1e9})
	sw.Routes.InsertEntry(1, Route{Port: 1, Backup: -1})

	var taps int
	sw.OnForwarded(func(p *Packet, in, out int) {
		if in != 0 || out != 1 {
			t.Errorf("tap ports = %d→%d, want 0→1", in, out)
		}
		taps++
	})
	var local int
	sw.LocalDeliv = func(p *Packet, port int) { local++ }

	src.tx.Send(&Packet{Dst: EntryAddr(1, 1), Entry: 1, Size: 100})
	src.tx.Send(&Packet{Dst: EntryAddr(9, 1), Entry: 9, Size: 100}) // no route → local
	s.Run(0)
	if taps != 1 {
		t.Errorf("forward taps = %d, want 1", taps)
	}
	if local != 1 {
		t.Errorf("local deliveries = %d, want 1", local)
	}
	if sw.NoRoute != 0 {
		t.Errorf("NoRoute = %d with LocalDeliv set, want 0", sw.NoRoute)
	}
	// Port accessor bounds.
	if sw.Port(-1) != nil || sw.Port(5) != nil {
		t.Error("out-of-range Port returned a handle")
	}
	if sw.Port(0) == nil {
		t.Error("attached Port returned nil")
	}
}

func TestZeroRateLinkHasNoSerializationDelay(t *testing.T) {
	s := sim.New(1)
	a := &sinkNode{name: "a", s: s}
	b := &sinkNode{name: "b", s: s}
	Connect(s, a, 0, b, 0, LinkConfig{Delay: 3 * sim.Millisecond, RateBps: 0})
	a.tx.Send(&Packet{Size: 1_000_000})
	s.Run(0)
	if len(b.got) != 1 || b.at[0] != 3*sim.Millisecond {
		t.Fatalf("zero-rate link delivery at %v, want pure propagation 3ms", b.at[0])
	}
}
