package netsim

import (
	"testing"

	"fancy/internal/sim"
)

// TestPoolForeignPacketNotRecycled asserts Put on a packet that did not come
// from Get is a no-op: only pool-owned packets may enter the free list, so a
// caller-allocated packet (which something else may still reference) can
// never be handed out again by Get.
func TestPoolForeignPacketNotRecycled(t *testing.T) {
	p := NewPacketPool()
	foreign := &Packet{Proto: ProtoUDP}
	p.Put(foreign)
	got := p.Get()
	if got == foreign {
		t.Fatal("Get returned a foreign packet that was never pool-owned")
	}
	if p.Reuses != 0 {
		t.Fatalf("Reuses = %d after putting only a foreign packet, want 0", p.Reuses)
	}
}

// TestPoolDoubleReturnIsNoOp asserts the second Put of the same packet does
// not enter it into the free list twice: two subsequent Gets must hand out
// two distinct packets, never the same pointer aliased to two owners.
func TestPoolDoubleReturnIsNoOp(t *testing.T) {
	p := NewPacketPool()
	pkt := p.Get()
	pkt.Proto = ProtoUDP
	p.Put(pkt)
	p.Put(pkt) // second return: must be ignored
	a, b := p.Get(), p.Get()
	if a != pkt {
		t.Fatal("first Get after Put did not reuse the returned packet")
	}
	if b == a {
		t.Fatal("double Put duplicated the packet in the free list: two Gets returned the same pointer")
	}
	if p.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1 (one real return, one ignored)", p.Reuses)
	}
}

// TestPoolIneligiblePackets asserts the conservative acceptance rules:
// non-UDP packets and packets carrying a control payload are retained by
// protocol machinery beyond delivery, so Put must leave them alone even when
// they are pool-owned.
func TestPoolIneligiblePackets(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Packet)
		wantR uint64
	}{
		{"tcp", func(pkt *Packet) { pkt.Proto = ProtoTCP }, 0},
		{"fancy-ctl", func(pkt *Packet) { pkt.Proto = ProtoFancy; pkt.Ctl = []byte{1} }, 0},
		{"udp-with-ctl", func(pkt *Packet) { pkt.Proto = ProtoUDP; pkt.Ctl = []byte{1} }, 0},
		{"plain-udp", func(pkt *Packet) { pkt.Proto = ProtoUDP }, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPacketPool()
			pkt := p.Get()
			tc.mut(pkt)
			p.Put(pkt)
			p.Get()
			if p.Reuses != tc.wantR {
				t.Fatalf("Reuses = %d, want %d", p.Reuses, tc.wantR)
			}
		})
	}
}

// TestPoolGetZeroesRecycledPacket asserts a reused packet carries no state
// from its previous life: stale FANcY tags or lane fields on a recycled
// packet would corrupt a later transmission undetectably.
func TestPoolGetZeroesRecycledPacket(t *testing.T) {
	p := NewPacketPool()
	pkt := p.Get()
	pkt.Proto = ProtoUDP
	pkt.Flow = 7
	pkt.Tagged = true
	pkt.SentAt = 42
	p.Put(pkt)
	got := p.Get()
	if got != pkt {
		t.Fatal("expected the recycled packet back")
	}
	if got.Flow != 0 || got.Tagged || got.SentAt != 0 {
		t.Fatalf("recycled packet kept stale state: %+v", got)
	}
	if !got.pooled {
		t.Fatal("recycled packet lost its pool ownership mark")
	}
}

// TestPoolCaptureObserverNeverRecycles asserts a link direction with a
// capture observer leaves dropped packets alone: the observer may have
// retained them (capture tests inspect packets after the run), so recycling
// would hand the observer's packet to an unrelated later Get.
func TestPoolCaptureObserverNeverRecycles(t *testing.T) {
	run := func(withCapture bool) (reuses uint64, retained *Packet, reGot *Packet) {
		s := sim.New(1)
		a := &sinkNode{name: "a", s: s}
		b := &sinkNode{name: "b", s: s}
		l := Connect(s, a, 0, b, 0, LinkConfig{Delay: sim.Millisecond, RateBps: 1e6})
		l.AB.SetFailure(FailEntries(1, 0, 1.0, 9)) // drop every entry-9 packet
		pool := NewPacketPool()
		l.AB.SetPool(pool)
		if withCapture {
			l.AB.SetCapture(func(ev CaptureEvent) {
				if ev.Kind == CaptureFailureDrop {
					retained = ev.Pkt
				}
			})
		}
		pkt := pool.Get()
		pkt.Proto = ProtoUDP
		pkt.Entry = 9
		pkt.Size = 100
		a.tx.Send(pkt)
		s.Run(0)
		reGot = pool.Get() // Reuses increments here if the drop recycled
		return pool.Reuses, retained, reGot
	}

	// Without an observer the failure drop is a point of certain ownership:
	// the packet goes back to the pool and the next Get reuses it.
	if reuses, _, _ := run(false); reuses != 1 {
		t.Fatalf("without capture: Reuses = %d, want 1 (drop path recycles)", reuses)
	}
	// With an observer the same drop must not recycle.
	reuses, retained, reGot := run(true)
	if retained == nil {
		t.Fatal("capture observer saw no failure drop")
	}
	if reuses != 0 {
		t.Fatalf("with capture: Reuses = %d, want 0 (observer may retain the packet)", reuses)
	}
	if reGot == retained {
		t.Fatal("Get returned the packet the capture observer retained")
	}
}
