package netsim

import (
	"fmt"
	"io"

	"fancy/internal/sim"
)

// CaptureKind classifies a capture event on a link direction.
type CaptureKind uint8

// Capture event kinds.
const (
	CaptureSend CaptureKind = iota // accepted for transmission
	CaptureDeliver
	CaptureCongestionDrop
	CaptureFailureDrop
	CaptureChaosDrop // removed by the chaos injector (flap or CRC)
)

func (k CaptureKind) String() string {
	switch k {
	case CaptureSend:
		return "send"
	case CaptureDeliver:
		return "deliver"
	case CaptureCongestionDrop:
		return "congestion-drop"
	case CaptureFailureDrop:
		return "failure-drop"
	case CaptureChaosDrop:
		return "chaos-drop"
	}
	return fmt.Sprintf("capture(%d)", uint8(k))
}

// CaptureEvent is one observed packet event. The packet pointer is only
// valid during the callback; copy fields, not the pointer, if retaining.
type CaptureEvent struct {
	Time sim.Time
	Kind CaptureKind
	Pkt  *Packet
}

// SetCapture installs a per-event observer on this link direction — the
// library's tcpdump. Pass nil to remove. Capturing costs one call per
// packet event; uncaptured links pay only a nil check.
func (e *LinkEnd) SetCapture(fn func(CaptureEvent)) { e.dir.capture = fn }

// NewCaptureWriter returns a capture callback that renders one line per
// event to w (a pcap-style text log).
func NewCaptureWriter(w io.Writer) func(CaptureEvent) {
	return func(ev CaptureEvent) {
		fmt.Fprintf(w, "%-12v %-15s %s\n", ev.Time, ev.Kind, ev.Pkt)
	}
}

// CaptureStats aggregates capture events into per-kind and per-entry
// counters, a convenient ready-made observer for tests and tools.
type CaptureStats struct {
	ByKind  [5]uint64
	ByEntry map[EntryID]uint64 // delivered data packets per entry
	Bytes   uint64             // delivered bytes
}

// NewCaptureStats builds an empty aggregator.
func NewCaptureStats() *CaptureStats {
	return &CaptureStats{ByEntry: make(map[EntryID]uint64)}
}

// Observe implements the capture callback.
func (cs *CaptureStats) Observe(ev CaptureEvent) {
	cs.ByKind[ev.Kind]++
	if ev.Kind == CaptureDeliver {
		cs.Bytes += uint64(ev.Pkt.Size)
		if ev.Pkt.Entry != InvalidEntry {
			cs.ByEntry[ev.Pkt.Entry]++
		}
	}
}
