package netsim

import (
	"fmt"

	"fancy/internal/sim"
)

// IngressHook observes packets as they arrive at a switch port, before the
// traffic manager — the position where FANcY's receiver-side counting runs
// (§3: "counted after the TM of the upstream switch and before the TM of
// the downstream one"). Returning true consumes the packet (control
// messages addressed to the switch).
type IngressHook interface {
	OnIngress(pkt *Packet, port int) (consumed bool)
}

// EgressHook observes packets after the traffic manager, as they begin
// serialization on an output port — the sender-side counting position.
type EgressHook interface {
	OnEgress(pkt *Packet, port int)
}

// Switch is a P4-like packet-forwarding device: parser and ingress pipeline
// (the ingress hooks plus the LPM routing lookup), traffic manager (the
// per-port transmit queues inside each attached link direction), and egress
// pipeline (the egress hooks).
type Switch struct {
	s     *sim.Sim
	name  string
	ports []*LinkEnd

	Routes RouteTable

	ingressHooks []IngressHook
	egressHooks  []EgressHook

	// Stats per switch.
	Forwarded   uint64
	NoRoute     uint64
	Consumed    uint64
	LocalDeliv  func(pkt *Packet, port int) // optional sink for packets with no route
	onForwarded func(pkt *Packet, inPort, outPort int)
}

// NewSwitch creates a switch with the given number of ports.
func NewSwitch(s *sim.Sim, name string, numPorts int) *Switch {
	return &Switch{s: s, name: name, ports: make([]*LinkEnd, numPorts)}
}

// Name implements Node.
func (sw *Switch) Name() string { return sw.name }

// Attach implements Node.
func (sw *Switch) Attach(port int, tx *LinkEnd) {
	if port < 0 || port >= len(sw.ports) {
		panic(fmt.Sprintf("netsim: switch %s has no port %d", sw.name, port))
	}
	if sw.ports[port] != nil {
		panic(fmt.Sprintf("netsim: switch %s port %d already attached", sw.name, port))
	}
	sw.ports[port] = tx
}

// Port returns the transmit handle for a port (nil if unattached).
func (sw *Switch) Port(port int) *LinkEnd {
	if port < 0 || port >= len(sw.ports) {
		return nil
	}
	return sw.ports[port]
}

// NumPorts reports the switch's port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// AddIngressHook registers an ingress-pipeline observer.
func (sw *Switch) AddIngressHook(h IngressHook) { sw.ingressHooks = append(sw.ingressHooks, h) }

// AddEgressHook registers an egress-pipeline observer. The hook fires after
// the traffic manager, so congestion drops are never observed by it.
func (sw *Switch) AddEgressHook(h EgressHook) { sw.egressHooks = append(sw.egressHooks, h) }

// OnForwarded installs a tap invoked for every forwarded packet, used by
// experiment drivers for accounting.
func (sw *Switch) OnForwarded(fn func(pkt *Packet, inPort, outPort int)) { sw.onForwarded = fn }

// Receive implements Node: the ingress pipeline.
func (sw *Switch) Receive(pkt *Packet, port int) {
	for _, h := range sw.ingressHooks {
		if h.OnIngress(pkt, port) {
			sw.Consumed++
			return
		}
	}
	route := sw.Routes.Lookup(pkt.Dst)
	if route == nil {
		if sw.LocalDeliv != nil {
			sw.LocalDeliv(pkt, port)
			return
		}
		sw.NoRoute++
		return
	}
	sw.forward(pkt, port, route.Egress())
}

// Inject sends a locally generated packet (e.g. a FANcY control message)
// out of the given port, passing through the egress pipeline like any other
// packet.
func (sw *Switch) Inject(pkt *Packet, outPort int) bool {
	return sw.forward(pkt, -1, outPort)
}

func (sw *Switch) forward(pkt *Packet, inPort, outPort int) bool {
	tx := sw.Port(outPort)
	if tx == nil {
		sw.NoRoute++
		return false
	}
	sw.Forwarded++
	if sw.onForwarded != nil {
		sw.onForwarded(pkt, inPort, outPort)
	}
	// The link's transmit path invokes egress hooks at serialization start
	// (after the TM queue admission decision).
	if tx.dir.egressHook == nil && len(sw.egressHooks) > 0 {
		sw.installEgress(tx, outPort)
	}
	return tx.Send(pkt)
}

func (sw *Switch) installEgress(tx *LinkEnd, port int) {
	hooks := sw.egressHooks
	tx.dir.egressHook = func(pkt *Packet) {
		for _, h := range hooks {
			h.OnEgress(pkt, port)
		}
	}
}

// RefreshEgressHooks re-installs egress hooks on all attached ports; call it
// after adding hooks if traffic has already flowed.
func (sw *Switch) RefreshEgressHooks() {
	for port, tx := range sw.ports {
		if tx != nil {
			sw.installEgress(tx, port)
		}
	}
}
