package netsim

// PacketPool recycles UDP data packets through a free list, eliminating
// the dominant allocation of high-rate constant-bitrate workloads (the
// fleet sweep allocates one Packet per generated datagram otherwise).
//
// Pooling is strictly opt-in and conservative, because a recycled packet
// that something still references would silently corrupt a later
// transmission:
//
//   - Only packets obtained from Get are ever recycled (the pooled flag);
//     Put on a foreign or already-returned packet is a no-op.
//   - Only plain UDP data packets are accepted back. FANcY control
//     packets (Ctl) and TCP segments are retained by protocol machinery
//     (retransmit queues, reorder buffers) beyond their delivery, so they
//     are never pooled.
//   - Packets are returned only at points of certain ownership: the host
//     default-drop path and the link failure/chaos drop paths, and links
//     with a capture observer never recycle (capture_test inspects
//     packets after the run).
//
// A pool is single-threaded, like the Sim it serves: in parallel runs use
// one pool per shard, and for trial-level parallelism one pool per trial.
type PacketPool struct {
	free []*Packet

	// Gets and Reuses count pool traffic for tests and diagnostics.
	Gets   uint64
	Reuses uint64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet marked as pool-owned.
func (p *PacketPool) Get() *Packet {
	p.Gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*pkt = Packet{pooled: true}
		p.Reuses++
		return pkt
	}
	return &Packet{pooled: true}
}

// Put returns a packet to the pool if it is eligible (see the type
// comment). Ineligible packets are left to the garbage collector.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil || !pkt.pooled {
		return
	}
	if pkt.Proto != ProtoUDP || pkt.Ctl != nil {
		return
	}
	pkt.pooled = false // a second Put is a no-op until the next Get
	p.free = append(p.free, pkt)
}
