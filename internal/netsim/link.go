package netsim

import (
	"fmt"

	"fancy/internal/sim"
)

// LinkConfig describes one link's physical characteristics. The same values
// apply to both directions.
type LinkConfig struct {
	// Delay is the one-way propagation delay. The paper evaluates FANcY
	// with 10 ms inter-switch delay to represent large ISPs.
	Delay sim.Time
	// RateBps is the line rate in bits per second (e.g. 100e9). Rates are
	// truncated to whole bits per second: serialization times are computed
	// in integer arithmetic (see direction.serialization).
	RateBps float64
	// QueueBytes bounds the transmit (traffic-manager) queue per
	// direction; packets beyond it are congestion drops, which FANcY must
	// NOT attribute to gray failures. Zero means a 1 MB default.
	QueueBytes int
}

const defaultQueueBytes = 1 << 20

// LinkEnd is the transmit handle a node uses to send packets into one
// direction of a link.
type LinkEnd struct {
	dir *direction
}

// Send queues pkt for transmission. It reports false if the packet was
// dropped at the queue (congestion); the packet then still belongs to the
// caller.
func (e *LinkEnd) Send(pkt *Packet) bool { return e.dir.send(pkt) }

// SetFailure installs (or clears, with nil) the gray-failure injector on
// this direction.
func (e *LinkEnd) SetFailure(f *Failure) { e.dir.failure = f }

// Failure returns the currently installed failure injector, if any.
func (e *LinkEnd) Failure() *Failure { return e.dir.failure }

// SetChaos installs (or clears, with nil) the adversarial link-condition
// injector on this direction.
func (e *LinkEnd) SetChaos(c *Chaos) { e.dir.chaos = c }

// Chaos returns the currently installed chaos injector, if any.
func (e *LinkEnd) Chaos() *Chaos { return e.dir.chaos }

// SetPool lets this direction recycle packets it terminally drops (failure
// and chaos drops) into p. Directions with a capture observer never
// recycle — the observer may retain the packet.
func (e *LinkEnd) SetPool(p *PacketPool) { e.dir.pool = p }

// Stats returns transmission statistics for this direction.
func (e *LinkEnd) Stats() LinkStats { return e.dir.stats }

// Busy reports whether the serializer currently has a backlog.
func (e *LinkEnd) Busy() bool { return e.dir.busyUntil > e.dir.s.Now() }

// QueueDepthBytes reports the bytes currently waiting or in serialization.
func (e *LinkEnd) QueueDepthBytes() int { return e.dir.queuedBytes }

// LinkStats counts per-direction outcomes.
type LinkStats struct {
	Sent            uint64 // packets accepted for transmission
	Delivered       uint64 // packets handed to the far end
	CongestionDrops uint64 // traffic-manager queue overflow
	FailureDrops    uint64 // removed by the gray-failure injector
	BytesSent       uint64
}

// direction is one half of a full-duplex link.
//
// Each direction runs two serialized LANES instead of per-packet heap
// events: an intrusive transmit FIFO ordered by serialization-end time and
// an intrusive receive FIFO ordered by arrival time (serialization end +
// propagation delay — monotone because serialization ends are). Each lane
// keeps at most ONE recurring event in the simulator heap, armed for its
// head packet, so a send costs O(1) lane appends instead of two or three
// heap pushes with escaping closures.
type direction struct {
	s  *sim.Sim // transmit-side simulator (the sender node's shard)
	rs *sim.Sim // receive-side simulator; == s except on cross-shard links

	delay    sim.Time
	rateBps  int64 // whole bits per second; 0 = infinitely fast
	queueCap int

	dst     Node
	dstPort int

	// egressHook runs when a packet leaves the traffic-manager queue and
	// begins serialization — i.e. after the upstream TM, where FANcY's
	// sender-side counting happens.
	egressHook func(*Packet)

	// Transmit lane: packets in (or waiting for) the serializer, laneAt =
	// serialization end. txArmed tells whether the drain event is in the
	// heap.
	txHead, txTail *Packet
	txArmed        bool
	drainFn        func()

	// Receive lane: packets in flight, laneAt = arrival time.
	rxHead, rxTail *Packet
	rxArmed        bool
	arriveFn       func()

	busyUntil   sim.Time
	queuedBytes int
	failure     *Failure
	chaos       *Chaos
	capture     func(CaptureEvent)
	pool        *PacketPool
	stats       LinkStats
}

func (d *direction) captureEvent(kind CaptureKind, pkt *Packet, now sim.Time) {
	if d.capture != nil {
		d.capture(CaptureEvent{Time: now, Kind: kind, Pkt: pkt})
	}
}

// serialization returns the transmit time of size bytes in integer
// arithmetic, rounded UP to the next nanosecond: a packet never finishes
// serialization early, and equal inputs give bit-identical times on every
// platform (the old float64 math could drift at high rates). With sizes
// bounded by the queue capacity (~1 MB) the intermediate bits*Second
// product stays far below int64 overflow.
func (d *direction) serialization(size int) sim.Time {
	if d.rateBps <= 0 {
		return 0
	}
	bits := int64(size) * 8
	return sim.Time((bits*int64(sim.Second) + d.rateBps - 1) / d.rateBps)
}

func (d *direction) send(pkt *Packet) bool {
	now := d.s.Now()
	if d.queuedBytes+pkt.Size > d.queueCap {
		d.stats.CongestionDrops++
		d.captureEvent(CaptureCongestionDrop, pkt, now)
		return false
	}
	d.stats.Sent++
	d.stats.BytesSent += uint64(pkt.Size)
	d.queuedBytes += pkt.Size
	pkt.SentAt = now
	d.captureEvent(CaptureSend, pkt, now)

	txStart := d.busyUntil
	if txStart < now {
		txStart = now
	}
	serEnd := txStart + d.serialization(pkt.Size)
	d.busyUntil = serEnd

	pkt.laneAt = serEnd
	pkt.laneNext = nil
	pkt.laneEgressed = false
	if d.egressHook != nil && txStart == now {
		// Idle serializer: the packet starts transmitting immediately.
		// Queued packets get their hook when the drain promotes them to
		// the serializer (their predecessor's serialization end).
		d.egressHook(pkt)
		pkt.laneEgressed = true
	}
	if d.txTail == nil {
		d.txHead = pkt
	} else {
		d.txTail.laneNext = pkt
	}
	d.txTail = pkt
	if !d.txArmed {
		d.txArmed = true
		if d.drainFn == nil {
			d.drainFn = d.drain
		}
		d.s.At(serEnd, d.drainFn)
	}
	return true
}

// drain retires every transmit-lane packet whose serialization has
// finished: it releases the queue bytes, starts the next packet's
// serialization (egress hook), and hands the packet to the receive lane
// one propagation delay out. It then re-arms for the new head.
func (d *direction) drain() {
	d.txArmed = false
	now := d.s.Now()
	for d.txHead != nil && d.txHead.laneAt <= now {
		pkt := d.txHead
		d.txHead = pkt.laneNext
		if d.txHead == nil {
			d.txTail = nil
		}
		pkt.laneNext = nil
		d.queuedBytes -= pkt.Size
		if next := d.txHead; next != nil && d.egressHook != nil && !next.laneEgressed {
			d.egressHook(next)
			next.laneEgressed = true
		}
		d.handoff(pkt, now+d.delay)
	}
	if d.txHead != nil && !d.txArmed {
		d.txArmed = true
		d.s.At(d.txHead.laneAt, d.drainFn)
	}
}

// handoff moves a serialized packet onto the receive lane (same shard) or
// across shards through the conservative-lookahead scheduler.
func (d *direction) handoff(pkt *Packet, at sim.Time) {
	if d.rs != d.s {
		// Cross-shard link: one closure per packet, but only on shard
		// boundaries. The link's propagation delay is what makes the
		// lookahead sound, so `at` is always at or beyond the window end.
		d.s.CrossAt(d.rs, at, func() { d.arrive(pkt) })
		return
	}
	pkt.laneAt = at
	pkt.laneNext = nil
	if d.rxTail == nil {
		d.rxHead = pkt
	} else {
		d.rxTail.laneNext = pkt
	}
	d.rxTail = pkt
	if !d.rxArmed {
		d.rxArmed = true
		if d.arriveFn == nil {
			d.arriveFn = d.arriveLane
		}
		d.rs.At(at, d.arriveFn)
	}
}

// arriveLane delivers every receive-lane packet whose arrival time has
// come, then re-arms for the new head. Arrival times are monotone per
// direction (FIFO links), so the lane never reorders.
func (d *direction) arriveLane() {
	d.rxArmed = false
	now := d.rs.Now()
	for d.rxHead != nil && d.rxHead.laneAt <= now {
		pkt := d.rxHead
		d.rxHead = pkt.laneNext
		if d.rxHead == nil {
			d.rxTail = nil
		}
		pkt.laneNext = nil
		d.arrive(pkt)
	}
	if d.rxHead != nil && !d.rxArmed {
		d.rxArmed = true
		d.rs.At(d.rxHead.laneAt, d.arriveFn)
	}
}

// free recycles a packet the link terminally dropped. Directions with a
// capture observer never recycle: the observer may have retained the
// packet.
func (d *direction) free(pkt *Packet) {
	if d.pool != nil && d.capture == nil {
		d.pool.Put(pkt)
	}
}

// arrive runs the receive-side injectors and hands the packet to the far
// node. Failure (clean gray-failure drops) applies first, then Chaos
// (corruption, duplication, reorder, flap).
func (d *direction) arrive(pkt *Packet) {
	now := d.rs.Now()
	if d.failure.Drop(pkt, now) {
		d.stats.FailureDrops++
		d.captureEvent(CaptureFailureDrop, pkt, now)
		d.free(pkt)
		return
	}
	if c := d.chaos; c != nil {
		verdict, extra, dup := c.apply(pkt, now)
		if dup {
			// The extra copy lands shortly after the original and skips
			// further chaos rolls (one fault decision per transmission).
			copyPkt := pkt.clone()
			d.rs.After(c.dupDelay(), func() {
				c.Stats.Duplicated++
				d.deliver(copyPkt)
			})
		}
		switch verdict {
		case chaosDrop:
			d.captureEvent(CaptureChaosDrop, pkt, now)
			d.free(pkt)
			return
		case chaosDelay:
			d.rs.After(extra, func() { d.deliver(pkt) })
			return
		}
	}
	d.deliver(pkt)
}

func (d *direction) deliver(pkt *Packet) {
	d.stats.Delivered++
	d.captureEvent(CaptureDeliver, pkt, d.rs.Now())
	d.dst.Receive(pkt, d.dstPort)
}

// Link is a full-duplex point-to-point link between two node ports.
type Link struct {
	AB *LinkEnd // direction a → b
	BA *LinkEnd // direction b → a
}

// SetPool installs a recycling pool on both directions (see LinkEnd.SetPool).
func (l *Link) SetPool(p *PacketPool) {
	l.AB.SetPool(p)
	l.BA.SetPool(p)
}

// Connect wires port aPort of node a to port bPort of node b and attaches
// the transmit handles to both nodes.
func Connect(s *sim.Sim, a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	return ConnectOn(s, s, a, aPort, b, bPort, cfg)
}

// ConnectOn is Connect for the sharded parallel scheduler: node a runs on
// simulator (shard view) sa and node b on sb. Cross-shard packet handoffs
// go through sim.CrossAt, so the link's propagation delay must be at least
// the scheduler's lookahead. With sa == sb it is exactly Connect.
func ConnectOn(sa, sb *sim.Sim, a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	if cfg.RateBps < 0 {
		panic(fmt.Sprintf("netsim: negative rate %v", cfg.RateBps))
	}
	rate := int64(cfg.RateBps)
	ab := &direction{s: sa, rs: sb, delay: cfg.Delay, rateBps: rate, queueCap: cfg.QueueBytes, dst: b, dstPort: bPort}
	ba := &direction{s: sb, rs: sa, delay: cfg.Delay, rateBps: rate, queueCap: cfg.QueueBytes, dst: a, dstPort: aPort}
	l := &Link{AB: &LinkEnd{dir: ab}, BA: &LinkEnd{dir: ba}}
	a.Attach(aPort, l.AB)
	b.Attach(bPort, l.BA)
	return l
}
