package netsim

import (
	"fmt"

	"fancy/internal/sim"
)

// LinkConfig describes one link's physical characteristics. The same values
// apply to both directions.
type LinkConfig struct {
	// Delay is the one-way propagation delay. The paper evaluates FANcY
	// with 10 ms inter-switch delay to represent large ISPs.
	Delay sim.Time
	// RateBps is the line rate in bits per second (e.g. 100e9).
	RateBps float64
	// QueueBytes bounds the transmit (traffic-manager) queue per
	// direction; packets beyond it are congestion drops, which FANcY must
	// NOT attribute to gray failures. Zero means a 1 MB default.
	QueueBytes int
}

const defaultQueueBytes = 1 << 20

// LinkEnd is the transmit handle a node uses to send packets into one
// direction of a link.
type LinkEnd struct {
	dir *direction
}

// Send queues pkt for transmission. It reports false if the packet was
// dropped at the queue (congestion).
func (e *LinkEnd) Send(pkt *Packet) bool { return e.dir.send(pkt) }

// SetFailure installs (or clears, with nil) the gray-failure injector on
// this direction.
func (e *LinkEnd) SetFailure(f *Failure) { e.dir.failure = f }

// Failure returns the currently installed failure injector, if any.
func (e *LinkEnd) Failure() *Failure { return e.dir.failure }

// SetChaos installs (or clears, with nil) the adversarial link-condition
// injector on this direction.
func (e *LinkEnd) SetChaos(c *Chaos) { e.dir.chaos = c }

// Chaos returns the currently installed chaos injector, if any.
func (e *LinkEnd) Chaos() *Chaos { return e.dir.chaos }

// Stats returns transmission statistics for this direction.
func (e *LinkEnd) Stats() LinkStats { return e.dir.stats }

// Busy reports whether the serializer currently has a backlog.
func (e *LinkEnd) Busy() bool { return e.dir.busyUntil > e.dir.s.Now() }

// QueueDepthBytes reports the bytes currently waiting or in serialization.
func (e *LinkEnd) QueueDepthBytes() int { return e.dir.queuedBytes }

// LinkStats counts per-direction outcomes.
type LinkStats struct {
	Sent            uint64 // packets accepted for transmission
	Delivered       uint64 // packets handed to the far end
	CongestionDrops uint64 // traffic-manager queue overflow
	FailureDrops    uint64 // removed by the gray-failure injector
	BytesSent       uint64
}

// direction is one half of a full-duplex link.
type direction struct {
	s        *sim.Sim
	delay    sim.Time
	rateBps  float64
	queueCap int

	dst     Node
	dstPort int

	// egressHook runs when a packet leaves the traffic-manager queue and
	// begins serialization — i.e. after the upstream TM, where FANcY's
	// sender-side counting happens.
	egressHook func(*Packet)

	busyUntil   sim.Time
	queuedBytes int
	failure     *Failure
	chaos       *Chaos
	capture     func(CaptureEvent)
	stats       LinkStats
}

func (d *direction) captureEvent(kind CaptureKind, pkt *Packet) {
	if d.capture != nil {
		d.capture(CaptureEvent{Time: d.s.Now(), Kind: kind, Pkt: pkt})
	}
}

func (d *direction) serialization(size int) sim.Time {
	if d.rateBps <= 0 {
		return 0
	}
	return sim.Time(float64(size*8) / d.rateBps * float64(sim.Second))
}

func (d *direction) send(pkt *Packet) bool {
	now := d.s.Now()
	if d.queuedBytes+pkt.Size > d.queueCap {
		d.stats.CongestionDrops++
		d.captureEvent(CaptureCongestionDrop, pkt)
		return false
	}
	d.stats.Sent++
	d.stats.BytesSent += uint64(pkt.Size)
	d.queuedBytes += pkt.Size
	pkt.SentAt = now
	d.captureEvent(CaptureSend, pkt)

	txStart := d.busyUntil
	if txStart < now {
		txStart = now
	}
	ser := d.serialization(pkt.Size)
	serEnd := txStart + ser
	d.busyUntil = serEnd

	if d.egressHook != nil {
		if txStart == now {
			d.egressHook(pkt)
		} else {
			d.s.ScheduleAt(txStart, func() { d.egressHook(pkt) })
		}
	}
	// The transmit queue drains when serialization completes; delivery
	// happens one propagation delay later. Keeping these separate avoids
	// inflating queue occupancy by the bandwidth-delay product.
	d.s.ScheduleAt(serEnd, func() { d.queuedBytes -= pkt.Size })
	d.s.ScheduleAt(serEnd+d.delay, func() { d.arrive(pkt) })
	return true
}

// arrive runs the receive-side injectors and hands the packet to the far
// node. Failure (clean gray-failure drops) applies first, then Chaos
// (corruption, duplication, reorder, flap).
func (d *direction) arrive(pkt *Packet) {
	now := d.s.Now()
	if d.failure.Drop(pkt, now) {
		d.stats.FailureDrops++
		d.captureEvent(CaptureFailureDrop, pkt)
		return
	}
	if c := d.chaos; c != nil {
		verdict, extra, dup := c.apply(pkt, now)
		if dup {
			// The extra copy lands shortly after the original and skips
			// further chaos rolls (one fault decision per transmission).
			copyPkt := pkt.clone()
			d.s.Schedule(c.dupDelay(), func() {
				c.Stats.Duplicated++
				d.deliver(copyPkt)
			})
		}
		switch verdict {
		case chaosDrop:
			d.captureEvent(CaptureChaosDrop, pkt)
			return
		case chaosDelay:
			d.s.Schedule(extra, func() { d.deliver(pkt) })
			return
		}
	}
	d.deliver(pkt)
}

func (d *direction) deliver(pkt *Packet) {
	d.stats.Delivered++
	d.captureEvent(CaptureDeliver, pkt)
	d.dst.Receive(pkt, d.dstPort)
}

// Link is a full-duplex point-to-point link between two node ports.
type Link struct {
	AB *LinkEnd // direction a → b
	BA *LinkEnd // direction b → a
}

// Connect wires port aPort of node a to port bPort of node b and attaches
// the transmit handles to both nodes.
func Connect(s *sim.Sim, a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	if cfg.RateBps < 0 {
		panic(fmt.Sprintf("netsim: negative rate %v", cfg.RateBps))
	}
	ab := &direction{s: s, delay: cfg.Delay, rateBps: cfg.RateBps, queueCap: cfg.QueueBytes, dst: b, dstPort: bPort}
	ba := &direction{s: s, delay: cfg.Delay, rateBps: cfg.RateBps, queueCap: cfg.QueueBytes, dst: a, dstPort: aPort}
	l := &Link{AB: &LinkEnd{dir: ab}, BA: &LinkEnd{dir: ba}}
	a.Attach(aPort, l.AB)
	b.Attach(bPort, l.BA)
	return l
}
