// Package topo builds multi-switch ISP topologies on the netsim substrate:
// named switches and hosts, links with per-link characteristics,
// shortest-path (Dijkstra) route installation, and one-call FANcY
// deployment at every switch — the full deployment of §4.3 in which FANcY
// "monitors all links, one by one", maximizing detection and localization
// accuracy.
package topo

import (
	"fmt"
	"sort"

	"fancy/internal/fancy"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// LinkSpec is one bidirectional link between two named switches.
type LinkSpec struct {
	A, B    string
	Delay   sim.Time
	RateBps float64
}

// HostSpec attaches a named host to a switch.
type HostSpec struct {
	Name   string
	Attach string
}

// Spec describes a topology.
type Spec struct {
	Switches []string
	Links    []LinkSpec
	Hosts    []HostSpec
}

// Network is a built topology.
type Network struct {
	Sim      *sim.Sim
	Switches map[string]*netsim.Switch
	Hosts    map[string]*netsim.Host

	// PortOf[a][b] is switch a's port toward neighbor (switch or host) b.
	PortOf map[string]map[string]int

	links     map[string]*netsim.Link // key "a|b" in spec order
	linkCfg   map[string]netsim.LinkConfig
	adjacency map[string][]edge
	hostAddr  map[string]uint32
	hostAt    map[string]string
}

type edge struct {
	to    string
	delay sim.Time
}

// Build instantiates the topology. Hosts receive addresses 172.16.0.1,
// 172.16.0.2, … in spec order.
func Build(s *sim.Sim, spec Spec) (*Network, error) {
	n := &Network{
		Sim:       s,
		Switches:  make(map[string]*netsim.Switch),
		Hosts:     make(map[string]*netsim.Host),
		PortOf:    make(map[string]map[string]int),
		links:     make(map[string]*netsim.Link),
		linkCfg:   make(map[string]netsim.LinkConfig),
		adjacency: make(map[string][]edge),
		hostAddr:  make(map[string]uint32),
		hostAt:    make(map[string]string),
	}
	ports := make(map[string]int) // next free port per switch
	degree := make(map[string]int)
	for _, l := range spec.Links {
		degree[l.A]++
		degree[l.B]++
	}
	for _, h := range spec.Hosts {
		degree[h.Attach]++
	}
	for _, name := range spec.Switches {
		if _, dup := n.Switches[name]; dup {
			return nil, fmt.Errorf("topo: duplicate switch %q", name)
		}
		n.Switches[name] = netsim.NewSwitch(s, name, degree[name])
		n.PortOf[name] = make(map[string]int)
	}
	alloc := func(sw string) int {
		p := ports[sw]
		ports[sw]++
		return p
	}
	for _, l := range spec.Links {
		a, okA := n.Switches[l.A]
		b, okB := n.Switches[l.B]
		if !okA || !okB {
			return nil, fmt.Errorf("topo: link %s—%s references unknown switch", l.A, l.B)
		}
		pa, pb := alloc(l.A), alloc(l.B)
		cfg := netsim.LinkConfig{Delay: l.Delay, RateBps: l.RateBps}
		if cfg.RateBps == 0 {
			cfg.RateBps = 100e9
		}
		n.links[l.A+"|"+l.B] = netsim.Connect(s, a, pa, b, pb, cfg)
		n.linkCfg[l.A+"|"+l.B] = cfg
		n.PortOf[l.A][l.B] = pa
		n.PortOf[l.B][l.A] = pb
		n.adjacency[l.A] = append(n.adjacency[l.A], edge{l.B, l.Delay})
		n.adjacency[l.B] = append(n.adjacency[l.B], edge{l.A, l.Delay})
	}
	for i, h := range spec.Hosts {
		sw, ok := n.Switches[h.Attach]
		if !ok {
			return nil, fmt.Errorf("topo: host %q attaches to unknown switch %q", h.Name, h.Attach)
		}
		host := netsim.NewHost(s, h.Name)
		host.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
		p := alloc(h.Attach)
		netsim.Connect(s, host, 0, sw, p, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 100e9})
		n.Hosts[h.Name] = host
		n.PortOf[h.Attach][h.Name] = p
		n.hostAddr[h.Name] = netsim.IPv4(172, 16, 0, byte(i+1))
		n.hostAt[h.Name] = h.Attach
	}
	return n, nil
}

// UsePool installs one packet pool on every link direction and host of the
// network, so terminally dropped data packets (failure/chaos drops, sink
// hosts without handlers) are recycled instead of garbage-collected. The
// returned pool is what pooled traffic generators (traffic.UDPSource.Pool)
// should draw from. Pools are single-threaded like the Sim; use one per
// trial or per shard.
func (n *Network) UsePool() *netsim.PacketPool {
	p := netsim.NewPacketPool()
	for _, l := range n.links {
		l.SetPool(p)
	}
	for _, h := range n.Hosts {
		h.SetPool(p)
	}
	return p
}

// Link returns the link between two switches, in either spec order.
func (n *Network) Link(a, b string) *netsim.Link {
	if l, ok := n.links[a+"|"+b]; ok {
		return l
	}
	return nil
}

// Direction returns the transmit end of the a→b direction of a link.
func (n *Network) Direction(a, b string) *netsim.LinkEnd {
	if l, ok := n.links[a+"|"+b]; ok {
		return l.AB
	}
	if l, ok := n.links[b+"|"+a]; ok {
		return l.BA
	}
	return nil
}

// HostAddr returns a host's address.
func (n *Network) HostAddr(name string) uint32 { return n.hostAddr[name] }

// HostAt returns the switch a host attaches to ("" if unknown).
func (n *Network) HostAt(name string) string { return n.hostAt[name] }

// linkConfig looks up the built configuration of the a—b link in either
// spec order.
func (n *Network) linkConfig(a, b string) (netsim.LinkConfig, bool) {
	if c, ok := n.linkCfg[a+"|"+b]; ok {
		return c, true
	}
	c, ok := n.linkCfg[b+"|"+a]
	return c, ok
}

// LinkDelay reports the one-way propagation delay of the a—b link (either
// order). The second result is false if no such link exists.
func (n *Network) LinkDelay(a, b string) (sim.Time, bool) {
	c, ok := n.linkConfig(a, b)
	return c.Delay, ok
}

// LinkRateBps reports the line rate of the a—b link (either order),
// defaults already applied. The second result is false if no such link
// exists.
func (n *Network) LinkRateBps(a, b string) (float64, bool) {
	c, ok := n.linkConfig(a, b)
	return c.RateBps, ok
}

// Neighbors lists the switches adjacent to sw, sorted for determinism.
func (n *Network) Neighbors(sw string) []string {
	var out []string
	for _, e := range n.adjacency[sw] {
		out = append(out, e.to)
	}
	sort.Strings(out)
	return out
}

// DirectedLink names one direction of an inter-switch link.
type DirectedLink struct {
	From, To string
}

// String renders the direction as "from->to", the key format used across
// deployment reports.
func (dl DirectedLink) String() string { return dl.From + "->" + dl.To }

// DirectedLinks enumerates both directions of every inter-switch link,
// sorted by (From, To) for determinism — the iteration order fleet-wide
// deployments build on.
func (n *Network) DirectedLinks() []DirectedLink {
	var out []DirectedLink
	for sw := range n.Switches {
		for _, e := range n.adjacency[sw] {
			out = append(out, DirectedLink{From: sw, To: e.to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// PathDelay sums the per-link propagation delays along the delay-weighted
// shortest path between two switches. The second result is false if no
// path exists.
func (n *Network) PathDelay(from, to string) (sim.Time, bool) {
	if from == to {
		return 0, true
	}
	next := n.paths(to)
	var total sim.Time
	for at := from; at != to; {
		nh, ok := next[at]
		if !ok {
			return 0, false
		}
		d, ok := n.LinkDelay(at, nh)
		if !ok {
			return 0, false
		}
		total += d
		at = nh
	}
	return total, true
}

// paths computes Dijkstra next hops toward dst (a switch name): for every
// switch, the neighbor on its shortest path to dst.
func (n *Network) paths(dst string) map[string]string {
	const inf = int64(1) << 62
	dist := make(map[string]int64)
	next := make(map[string]string) // next hop toward dst
	for sw := range n.Switches {
		dist[sw] = inf
	}
	dist[dst] = 0
	visited := make(map[string]bool)
	for {
		// Extract the closest unvisited switch (deterministic tie-break
		// by name for reproducibility).
		var u string
		best := inf
		var names []string
		for sw := range n.Switches {
			names = append(names, sw)
		}
		sort.Strings(names)
		for _, sw := range names {
			if !visited[sw] && dist[sw] < best {
				best = dist[sw]
				u = sw
			}
		}
		if u == "" {
			break
		}
		visited[u] = true
		for _, e := range n.adjacency[u] {
			d := dist[u] + int64(e.delay) + 1 // +1: hop count tie-break
			if d < dist[e.to] {
				dist[e.to] = d
				next[e.to] = u
			}
		}
	}
	return next
}

// InstallShortestPaths installs routes so that each entry's traffic reaches
// its owning host over delay-weighted shortest paths, and each host's own
// address is routable from everywhere (for reverse traffic and remote
// FANcY control messages).
func (n *Network) InstallShortestPaths(entryOwner map[netsim.EntryID]string) error {
	for host := range n.hostAddr {
		attach := n.hostAt[host]
		next := n.paths(attach)
		for sw := range n.Switches {
			var port int
			if sw == attach {
				port = n.PortOf[sw][host]
			} else {
				nh, ok := next[sw]
				if !ok {
					return fmt.Errorf("topo: switch %q cannot reach host %q", sw, host)
				}
				port = n.PortOf[sw][nh]
			}
			// The host's own /32.
			if _, err := n.Switches[sw].Routes.Insert(n.hostAddr[host], 32,
				netsim.Route{Port: port, Backup: -1}); err != nil {
				return err
			}
			// Entries owned by this host.
			for e, owner := range entryOwner {
				if owner != host {
					continue
				}
				n.Switches[sw].Routes.InsertEntry(e, netsim.Route{Port: port, Backup: -1})
			}
		}
	}
	return nil
}

// Deployment is a full FANcY deployment: one detector per switch, every
// inter-switch link monitored in both directions.
type Deployment struct {
	Detectors map[string]*fancy.Detector

	// Events records every event with the switch that raised it.
	Events []DeployEvent
}

// DeployEvent pairs an event with its reporting switch.
type DeployEvent struct {
	Switch string
	Event  fancy.Event
}

// DeployFancy attaches a detector to every switch and opens counting
// sessions on both directions of every inter-switch link.
func (n *Network) DeployFancy(cfg fancy.Config) (*Deployment, error) {
	d := &Deployment{Detectors: make(map[string]*fancy.Detector)}
	var names []string
	for sw := range n.Switches {
		names = append(names, sw)
	}
	sort.Strings(names)
	for _, sw := range names {
		det, err := fancy.NewDetector(n.Sim, n.Switches[sw], cfg)
		if err != nil {
			return nil, fmt.Errorf("topo: detector at %q: %w", sw, err)
		}
		name := sw
		det.OnEvent = func(ev fancy.Event) {
			d.Events = append(d.Events, DeployEvent{Switch: name, Event: ev})
		}
		d.Detectors[sw] = det
	}
	// Monitor/listen both directions of each link.
	for key, l := range n.links {
		_ = l
		var a, b string
		for i := 0; i < len(key); i++ {
			if key[i] == '|' {
				a, b = key[:i], key[i+1:]
			}
		}
		d.Detectors[a].MonitorPort(n.PortOf[a][b])
		d.Detectors[b].ListenPort(n.PortOf[b][a])
		d.Detectors[b].MonitorPort(n.PortOf[b][a])
		d.Detectors[a].ListenPort(n.PortOf[a][b])
	}
	return d, nil
}

// FlaggedAt reports the switches that flagged entry on any monitored port,
// with the port names resolved back to neighbors.
func (n *Network) FlaggedAt(d *Deployment, entry netsim.EntryID) []string {
	var out []string
	for sw, det := range d.Detectors {
		for nb, port := range n.PortOf[sw] {
			if _, isHost := n.Hosts[nb]; isHost {
				continue
			}
			if det.Outputs(port) != nil && det.Flagged(port, entry) {
				out = append(out, sw+"->"+nb)
			}
		}
	}
	sort.Strings(out)
	return out
}
