package topo

import (
	"testing"

	"fancy/internal/fancy"
	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// line builds H1 — A — B — C — H2.
func lineSpec() Spec {
	return Spec{
		Switches: []string{"A", "B", "C"},
		Links: []LinkSpec{
			{A: "A", B: "B", Delay: 5 * sim.Millisecond},
			{A: "B", B: "C", Delay: 5 * sim.Millisecond},
		},
		Hosts: []HostSpec{
			{Name: "H1", Attach: "A"},
			{Name: "H2", Attach: "C"},
		},
	}
}

func deployCfg() fancy.Config {
	return fancy.Config{
		HighPriority: []netsim.EntryID{10},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
		TreeSeed:     3,
	}
}

func udp(n *Network, from string, entry netsim.EntryID, rateBps float64, stop sim.Time) {
	host := n.Hosts[from]
	const size = 1000
	gap := sim.Time(float64(size*8) / rateBps * float64(sim.Second))
	var tick func()
	tick = func() {
		if n.Sim.Now() >= stop {
			return
		}
		host.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Src: n.HostAddr(from), Proto: netsim.ProtoUDP, Size: size})
		n.Sim.Schedule(gap, tick)
	}
	n.Sim.Schedule(0, tick)
}

func TestBuildErrors(t *testing.T) {
	s := sim.New(1)
	if _, err := Build(s, Spec{Switches: []string{"A", "A"}}); err == nil {
		t.Error("duplicate switch accepted")
	}
	if _, err := Build(s, Spec{Switches: []string{"A"},
		Links: []LinkSpec{{A: "A", B: "ZZ"}}}); err == nil {
		t.Error("link to unknown switch accepted")
	}
	if _, err := Build(s, Spec{Switches: []string{"A"},
		Hosts: []HostSpec{{Name: "H", Attach: "ZZ"}}}); err == nil {
		t.Error("host on unknown switch accepted")
	}
}

func TestShortestPathForwarding(t *testing.T) {
	s := sim.New(1)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{10: "H2"}); err != nil {
		t.Fatal(err)
	}
	got := 0
	n.Hosts["H2"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) { got++ })
	udp(n, "H1", 10, 1e6, 100*sim.Millisecond)
	s.Run(sim.Second)
	if got == 0 {
		t.Fatal("no packets delivered across the line topology")
	}
	// Reverse reachability: H2 → H1 by address.
	back := 0
	n.Hosts["H1"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) { back++ })
	n.Hosts["H2"].Send(&netsim.Packet{Dst: n.HostAddr("H1"), Proto: netsim.ProtoUDP, Size: 100})
	s.Run(2 * sim.Second)
	if back != 1 {
		t.Fatalf("reverse delivery = %d, want 1", back)
	}
}

func TestShortestPathPicksLowDelay(t *testing.T) {
	// Square with a fast diagonal: A—B slow (50ms), A—C—B fast (2×5ms).
	s := sim.New(1)
	n, err := Build(s, Spec{
		Switches: []string{"A", "B", "C"},
		Links: []LinkSpec{
			{A: "A", B: "B", Delay: 50 * sim.Millisecond},
			{A: "A", B: "C", Delay: 5 * sim.Millisecond},
			{A: "C", B: "B", Delay: 5 * sim.Millisecond},
		},
		Hosts: []HostSpec{{Name: "H1", Attach: "A"}, {Name: "H2", Attach: "B"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{10: "H2"}); err != nil {
		t.Fatal(err)
	}
	// Traffic through the fast path crosses C.
	var viaC int
	n.Switches["C"].OnForwarded(func(*netsim.Packet, int, int) { viaC++ })
	udp(n, "H1", 10, 1e6, 100*sim.Millisecond)
	s.Run(sim.Second)
	if viaC == 0 {
		t.Fatal("shortest path did not route via the fast two-hop path")
	}
}

func TestFullDeploymentLocalizesFailure(t *testing.T) {
	// FANcY at every switch: a failure on B→C must be flagged by B on its
	// port toward C — and nowhere else. This is the paper's localization
	// claim ("identifying both the switch port suffering from a gray
	// failure and the affected traffic").
	s := sim.New(2)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{10: "H2", 500: "H2"}); err != nil {
		t.Fatal(err)
	}
	dep, err := n.DeployFancy(deployCfg())
	if err != nil {
		t.Fatal(err)
	}

	udp(n, "H1", 10, 2e6, 8*sim.Second)
	n.Direction("B", "C").SetFailure(netsim.FailEntries(7, 2*sim.Second, 1.0, 10))
	s.Run(8 * sim.Second)

	flagged := n.FlaggedAt(dep, 10)
	if len(flagged) != 1 || flagged[0] != "B->C" {
		t.Fatalf("flagged at %v, want exactly [B->C]", flagged)
	}
	// The A→B hop saw the same traffic but no loss: it must stay silent.
	for _, de := range dep.Events {
		if de.Event.Kind == fancy.EventDedicated && de.Switch != "B" {
			t.Errorf("switch %s raised %v; only B should detect", de.Switch, de.Event)
		}
	}
}

func TestFullDeploymentReverseDirection(t *testing.T) {
	// Sessions run in both directions: a failure on C→B (the reverse
	// path) is flagged by C.
	s := sim.New(3)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{20: "H1"}); err != nil {
		t.Fatal(err)
	}
	dep, err := n.DeployFancy(fancy.Config{
		HighPriority: []netsim.EntryID{20},
		Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H2", 20, 2e6, 8*sim.Second) // H2 → H1 crosses C→B→A
	n.Direction("C", "B").SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, 20))
	s.Run(8 * sim.Second)

	flagged := n.FlaggedAt(dep, 20)
	if len(flagged) != 1 || flagged[0] != "C->B" {
		t.Fatalf("flagged at %v, want exactly [C->B]", flagged)
	}
}

func TestFullDeploymentTreeEntryLocalized(t *testing.T) {
	s := sim.New(4)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	const entry = netsim.EntryID(777) // best effort
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{entry: "H2"}); err != nil {
		t.Fatal(err)
	}
	dep, err := n.DeployFancy(deployCfg())
	if err != nil {
		t.Fatal(err)
	}
	udp(n, "H1", entry, 2e6, 10*sim.Second)
	n.Direction("A", "B").SetFailure(netsim.FailEntries(11, 2*sim.Second, 1.0, entry))
	s.Run(10 * sim.Second)

	flagged := n.FlaggedAt(dep, entry)
	if len(flagged) != 1 || flagged[0] != "A->B" {
		t.Fatalf("flagged at %v, want exactly [A->B]", flagged)
	}
}

func TestDeploymentSessionsOnAllLinks(t *testing.T) {
	s := sim.New(5)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(nil); err != nil {
		t.Fatal(err)
	}
	dep, err := n.DeployFancy(deployCfg())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second)
	// Every monitored direction must be cycling sessions even without
	// traffic (control messages keep flowing).
	checks := [][2]string{{"A", "B"}, {"B", "A"}, {"B", "C"}, {"C", "B"}}
	for _, c := range checks {
		det := dep.Detectors[c[0]]
		port := n.PortOf[c[0]][c[1]]
		if det.SessionsCompleted(port) == 0 {
			t.Errorf("no sessions on %s→%s", c[0], c[1])
		}
	}
}

func TestLinkAccessors(t *testing.T) {
	s := sim.New(1)
	n, err := Build(s, lineSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][2]string{{"A", "B"}, {"B", "A"}} {
		if d, ok := n.LinkDelay(order[0], order[1]); !ok || d != 5*sim.Millisecond {
			t.Errorf("LinkDelay(%s,%s) = %v, %v; want 5ms", order[0], order[1], d, ok)
		}
		if r, ok := n.LinkRateBps(order[0], order[1]); !ok || r != 100e9 {
			t.Errorf("LinkRateBps(%s,%s) = %v, %v; want default 100e9", order[0], order[1], r, ok)
		}
	}
	if _, ok := n.LinkDelay("A", "C"); ok {
		t.Error("LinkDelay reported a link that does not exist")
	}
	if got := n.Neighbors("B"); len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Errorf("Neighbors(B) = %v, want [A C]", got)
	}
	dls := n.DirectedLinks()
	want := []DirectedLink{{"A", "B"}, {"B", "A"}, {"B", "C"}, {"C", "B"}}
	if len(dls) != len(want) {
		t.Fatalf("DirectedLinks = %v, want %v", dls, want)
	}
	for i := range want {
		if dls[i] != want[i] {
			t.Errorf("DirectedLinks[%d] = %v, want %v", i, dls[i], want[i])
		}
	}
	if d, ok := n.PathDelay("A", "C"); !ok || d != 10*sim.Millisecond {
		t.Errorf("PathDelay(A,C) = %v, %v; want 10ms", d, ok)
	}
}

func TestAbileneRoundTrip(t *testing.T) {
	// Round-trip sanity: an echo between coast hosts must take exactly
	// 2 × (host links + the delay-weighted shortest switch path), which the
	// accessors predict without running a packet.
	spec := Abilene()
	spec.Hosts = []HostSpec{{Name: "h1", Attach: "seattle"}, {Name: "h2", Attach: "newyork"}}
	s := sim.New(11)
	n, err := Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(nil); err != nil {
		t.Fatal(err)
	}
	oneWay, ok := n.PathDelay("seattle", "newyork")
	if !ok {
		t.Fatal("no seattle→newyork path")
	}
	// seattle—denver—kansascity—indianapolis—chicago—newyork = 30 ms.
	if oneWay != 30*sim.Millisecond {
		t.Fatalf("PathDelay(seattle,newyork) = %v, want 30ms", oneWay)
	}

	var sent, rtt sim.Time
	n.Hosts["h2"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		n.Hosts["h2"].Send(&netsim.Packet{Dst: n.HostAddr("h1"), Proto: netsim.ProtoUDP, Size: 100})
	})
	n.Hosts["h1"].Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		rtt = s.Now() - sent
	})
	s.Schedule(0, func() {
		sent = s.Now()
		n.Hosts["h1"].Send(&netsim.Packet{Dst: n.HostAddr("h2"), Proto: netsim.ProtoUDP, Size: 100})
	})
	s.Run(sim.Second)

	// Host edge links add 1 ms on each side; serialization at 100 Gbps is
	// nanoseconds, so allow a 1 ms tolerance above the propagation floor.
	wantRTT := 2 * (oneWay + 2*sim.Millisecond)
	if rtt < wantRTT || rtt > wantRTT+sim.Millisecond {
		t.Fatalf("echo RTT = %v, want ≈%v", rtt, wantRTT)
	}
}

func TestAbileneSpec(t *testing.T) {
	spec := Abilene()
	if len(spec.Switches) != 11 || len(spec.Links) != 14 {
		t.Fatalf("Abilene: %d switches, %d links; want 11/14", len(spec.Switches), len(spec.Links))
	}
	spec.Hosts = []HostSpec{{Name: "h1", Attach: "seattle"}, {Name: "h2", Attach: "newyork"}}
	s := sim.New(9)
	n, err := Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallShortestPaths(map[netsim.EntryID]string{5: "h2"}); err != nil {
		t.Fatal(err)
	}
	// Coast-to-coast delivery works over shortest paths.
	got := 0
	n.Hosts["h2"].Default = netsim.PacketHandlerFunc(func(*netsim.Packet) { got++ })
	udp(n, "h1", 5, 1e6, 100*sim.Millisecond)
	s.Run(sim.Second)
	if got == 0 {
		t.Fatal("no coast-to-coast delivery on Abilene")
	}
	// Full deployment works on the real topology too.
	dep, err := n.DeployFancy(deployCfg())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(s.Now() + 2*sim.Second)
	if dep.Detectors["kansascity"].SessionsCompleted(n.PortOf["kansascity"]["denver"]) == 0 {
		t.Error("no sessions on an interior Abilene link")
	}
}
