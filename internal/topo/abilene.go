package topo

import "fancy/internal/sim"

// Abilene returns the 11-node Abilene research backbone, the classic
// reference topology for ISP-scale evaluations. Link delays approximate
// the fiber distances between the PoPs; rates default to 100 Gbps. Hosts
// are not included — append them to the returned Spec before Build.
func Abilene() Spec {
	ms := func(d int) sim.Time { return sim.Time(d) * sim.Millisecond }
	return Spec{
		Switches: []string{
			"seattle", "sunnyvale", "losangeles", "denver", "kansascity",
			"houston", "chicago", "indianapolis", "atlanta", "washington", "newyork",
		},
		Links: []LinkSpec{
			{A: "seattle", B: "sunnyvale", Delay: ms(7)},
			{A: "seattle", B: "denver", Delay: ms(10)},
			{A: "sunnyvale", B: "losangeles", Delay: ms(3)},
			{A: "sunnyvale", B: "denver", Delay: ms(9)},
			{A: "losangeles", B: "houston", Delay: ms(12)},
			{A: "denver", B: "kansascity", Delay: ms(5)},
			{A: "kansascity", B: "houston", Delay: ms(7)},
			{A: "kansascity", B: "indianapolis", Delay: ms(4)},
			{A: "houston", B: "atlanta", Delay: ms(8)},
			{A: "chicago", B: "indianapolis", Delay: ms(2)},
			{A: "chicago", B: "newyork", Delay: ms(9)},
			{A: "indianapolis", B: "atlanta", Delay: ms(5)},
			{A: "atlanta", B: "washington", Delay: ms(6)},
			{A: "washington", B: "newyork", Delay: ms(3)},
		},
	}
}
