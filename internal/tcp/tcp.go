// Package tcp implements a simplified TCP (Reno-style) on top of the netsim
// substrate: slow start, AIMD congestion avoidance, fast retransmit on three
// duplicate ACKs, and a retransmission timeout with exponential backoff.
//
// The FANcY evaluation depends on closed-loop TCP dynamics: under a 100 %
// blackhole all traffic collapses to exponentially spaced retransmissions
// (making detection *harder* than at 50 % loss, see Table 3 discussion),
// while moderate loss keeps flows sending. This package reproduces exactly
// those dynamics. The paper's simulations use a 200 ms retransmission
// timeout, which is this package's default.
package tcp

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Config parameterizes a TCP sender.
type Config struct {
	MSS         int      // payload bytes per segment (default 1460)
	HeaderBytes int      // header overhead per packet (default 40)
	RTO         sim.Time // initial retransmission timeout (default 200 ms)
	MaxRTO      sim.Time // backoff cap (default 60 s)
	InitialCwnd float64  // initial window in segments (default 10)

	// RateBps paces the application: bytes become available for sending
	// at this rate, emulating a flow with a target bitrate. Zero means
	// unpaced (bulk transfer limited only by cwnd).
	RateBps float64
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.RTO == 0 {
		c.RTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
}

// Stats aggregates a sender's lifetime counters.
type Stats struct {
	SegmentsSent    uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	BytesAcked      int64
	CompletedAt     sim.Time // zero until the flow finishes
}

// Sender is the sending side of a flow. Create with NewSender; the receiver
// side is created automatically on the destination host.
type Sender struct {
	cfg   Config
	s     *sim.Sim
	host  *netsim.Host
	flow  netsim.FlowID
	entry netsim.EntryID
	src   uint32
	dst   uint32

	total int64 // application bytes to deliver
	start sim.Time

	sndUna   int64
	sndNxt   int64
	cwnd     float64 // segments
	ssthresh float64
	dupAcks  int
	recover  int64 // highest seq sent when loss was detected (NewReno-lite)

	rto      sim.Time
	rtoTimer *sim.Timer
	payTimer *sim.Timer // pending pacing wakeup

	done bool

	Stats Stats

	// OnComplete, if set, fires once when all bytes are acknowledged.
	OnComplete func()
}

// NewSender creates a flow sending total bytes from srcHost to dstAddr, and
// installs the matching receiver on dstHost. Data packets carry entry so
// that link failure models and FANcY can classify them; ACKs carry
// netsim.InvalidEntry (they flow on the reverse path).
func NewSender(s *sim.Sim, srcHost, dstHost *netsim.Host, flow netsim.FlowID,
	entry netsim.EntryID, srcAddr, dstAddr uint32, total int64, cfg Config) *Sender {
	cfg.fill()
	snd := &Sender{
		cfg: cfg, s: s, host: srcHost, flow: flow, entry: entry,
		src: srcAddr, dst: dstAddr, total: total,
		cwnd: cfg.InitialCwnd, ssthresh: 1 << 20, rto: cfg.RTO,
		start: s.Now(),
	}
	rcv := &receiver{s: s, host: dstHost, flow: flow, src: dstAddr, dst: srcAddr,
		segs: make(map[int64]int)}
	srcHost.Bind(flow, netsim.PacketHandlerFunc(snd.onAck))
	dstHost.Bind(flow, netsim.PacketHandlerFunc(rcv.onData))
	return snd
}

// Start begins transmission.
func (t *Sender) Start() { t.trySend() }

// Done reports whether every byte has been acknowledged.
func (t *Sender) Done() bool { return t.done }

// Outstanding reports unacknowledged bytes in flight.
func (t *Sender) Outstanding() int64 { return t.sndNxt - t.sndUna }

// available returns application bytes released by pacing at the current time.
func (t *Sender) available() int64 {
	if t.cfg.RateBps <= 0 {
		return t.total
	}
	elapsed := t.s.Now() - t.start
	avail := int64(t.cfg.RateBps * elapsed.Seconds() / 8)
	// Always allow at least one segment immediately so short flows start.
	if avail < int64(t.cfg.MSS) {
		avail = int64(t.cfg.MSS)
	}
	if avail > t.total {
		avail = t.total
	}
	return avail
}

func (t *Sender) trySend() {
	if t.done {
		return
	}
	wnd := t.sndUna + int64(t.cwnd*float64(t.cfg.MSS))
	avail := t.available()
	for t.sndNxt < wnd && t.sndNxt < avail {
		segLen := int(min64(int64(t.cfg.MSS), avail-t.sndNxt))
		if segLen < t.cfg.MSS && t.sndNxt+int64(segLen) < t.total {
			// Wait until pacing releases a full segment; emitting runts
			// here would let the ACK clock shred the flow into tinygrams.
			break
		}
		t.emit(t.sndNxt, segLen, false)
		t.sndNxt += int64(segLen)
	}
	// If the window has room but pacing has not released a full segment
	// yet, wake up when the next one becomes available.
	if t.cfg.RateBps > 0 && t.sndNxt < wnd && avail < t.total &&
		t.sndNxt+int64(t.cfg.MSS) > avail {
		if !t.payTimer.Active() {
			next := sim.Time(float64(t.cfg.MSS*8) / t.cfg.RateBps * float64(sim.Second))
			if next <= 0 {
				next = sim.Microsecond
			}
			t.payTimer = t.s.Schedule(next, t.trySend)
		}
	}
	t.armRTO()
}

func (t *Sender) emit(seq int64, segLen int, isRtx bool) {
	pkt := &netsim.Packet{
		Flow: t.flow, Entry: t.entry, Src: t.src, Dst: t.dst,
		Proto: netsim.ProtoTCP, Size: segLen + t.cfg.HeaderBytes,
		Seq: seq, Len: segLen,
	}
	t.Stats.SegmentsSent++
	if isRtx {
		t.Stats.Retransmits++
	}
	t.host.Send(pkt)
}

func (t *Sender) armRTO() {
	if t.done || t.sndNxt == t.sndUna {
		t.rtoTimer.Stop()
		return
	}
	if t.rtoTimer.Active() {
		return
	}
	t.rtoTimer = t.s.Schedule(t.rto, t.onTimeout)
}

func (t *Sender) onTimeout() {
	if t.done || t.sndNxt == t.sndUna {
		return
	}
	t.Stats.Timeouts++
	t.ssthresh = maxf(t.cwnd/2, 2)
	t.cwnd = 1
	t.dupAcks = 0
	t.rto *= 2
	if t.rto > t.cfg.MaxRTO {
		t.rto = t.cfg.MaxRTO
	}
	// Retransmit the first unacknowledged segment.
	segLen := int(min64(int64(t.cfg.MSS), t.total-t.sndUna))
	if segLen > 0 {
		t.emit(t.sndUna, segLen, true)
	}
	t.rtoTimer = t.s.Schedule(t.rto, t.onTimeout)
}

func (t *Sender) onAck(pkt *netsim.Packet) {
	if t.done || pkt.Flags&netsim.FlagACK == 0 {
		return
	}
	ack := pkt.Ack
	switch {
	case ack > t.sndUna: // new data acknowledged
		t.Stats.BytesAcked = ack
		t.sndUna = ack
		t.dupAcks = 0
		t.rto = t.cfg.RTO // fresh RTT estimate proxy
		t.rtoTimer.Stop()
		if ack >= t.recover {
			// Exit recovery: congestion avoidance or slow start resumes.
			if t.cwnd < t.ssthresh {
				t.cwnd++
			} else {
				t.cwnd += 1 / t.cwnd
			}
		} else {
			// Partial ACK during recovery: retransmit next hole (NewReno).
			segLen := int(min64(int64(t.cfg.MSS), t.total-t.sndUna))
			if segLen > 0 {
				t.emit(t.sndUna, segLen, true)
				t.Stats.FastRetransmits++
			}
		}
		if t.sndUna >= t.total {
			t.done = true
			t.Stats.CompletedAt = t.s.Now()
			t.rtoTimer.Stop()
			t.payTimer.Stop()
			if t.OnComplete != nil {
				t.OnComplete()
			}
			return
		}
		t.trySend()
	case ack == t.sndUna: // duplicate
		t.dupAcks++
		if t.dupAcks == 3 {
			t.Stats.FastRetransmits++
			t.ssthresh = maxf(t.cwnd/2, 2)
			t.cwnd = t.ssthresh
			t.recover = t.sndNxt
			segLen := int(min64(int64(t.cfg.MSS), t.total-t.sndUna))
			if segLen > 0 {
				t.emit(t.sndUna, segLen, true)
			}
			t.rtoTimer.Stop()
			t.armRTO()
		}
	}
}

// receiver implements cumulative ACKs with out-of-order buffering.
type receiver struct {
	s    *sim.Sim
	host *netsim.Host
	flow netsim.FlowID
	src  uint32 // our address (ACK source)
	dst  uint32 // sender address

	rcvNxt int64
	segs   map[int64]int // buffered out-of-order segments: seq → len

	BytesReceived int64
}

func (r *receiver) onData(pkt *netsim.Packet) {
	if pkt.Len == 0 {
		return
	}
	r.BytesReceived += int64(pkt.Len)
	if pkt.Seq == r.rcvNxt {
		r.rcvNxt += int64(pkt.Len)
		// Drain any buffered continuation.
		for {
			l, ok := r.segs[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.segs, r.rcvNxt)
			r.rcvNxt += int64(l)
		}
	} else if pkt.Seq > r.rcvNxt {
		r.segs[pkt.Seq] = pkt.Len
	}
	// ACK every segment (no delayed ACKs).
	r.host.Send(&netsim.Packet{
		Flow: r.flow, Entry: netsim.InvalidEntry, Src: r.src, Dst: r.dst,
		Proto: netsim.ProtoTCP, Size: 40, Ack: r.rcvNxt, Flags: netsim.FlagACK,
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
