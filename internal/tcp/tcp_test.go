package tcp

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// pair builds two hosts connected by a direct link and returns them with the
// link for failure injection.
func pair(s *sim.Sim, rateBps float64, delay sim.Time) (*netsim.Host, *netsim.Host, *netsim.Link) {
	a := netsim.NewHost(s, "a")
	b := netsim.NewHost(s, "b")
	l := netsim.Connect(s, a, 0, b, 0, netsim.LinkConfig{Delay: delay, RateBps: rateBps, QueueBytes: 1 << 22})
	return a, b, l
}

func TestBulkTransferCompletes(t *testing.T) {
	s := sim.New(1)
	a, b, _ := pair(s, 10e6, 5*sim.Millisecond)
	const total = 200_000
	snd := NewSender(s, a, b, 1, 100, netsim.IPv4(10, 0, 0, 1), netsim.IPv4(10, 0, 0, 2), total, Config{})
	snd.Start()
	s.Run(30 * sim.Second)
	if !snd.Done() {
		t.Fatalf("flow did not complete; acked %d of %d", snd.Stats.BytesAcked, int64(total))
	}
	if snd.Stats.BytesAcked != total {
		t.Errorf("BytesAcked = %d, want %d", snd.Stats.BytesAcked, int64(total))
	}
	if snd.Stats.Retransmits != 0 {
		t.Errorf("lossless transfer had %d retransmits", snd.Stats.Retransmits)
	}
	if snd.Stats.CompletedAt == 0 {
		t.Error("CompletedAt not recorded")
	}
}

func TestOnCompleteFires(t *testing.T) {
	s := sim.New(1)
	a, b, _ := pair(s, 10e6, sim.Millisecond)
	snd := NewSender(s, a, b, 1, 100, 1, 2, 10_000, Config{})
	fired := 0
	snd.OnComplete = func() { fired++ }
	snd.Start()
	s.Run(10 * sim.Second)
	if fired != 1 {
		t.Errorf("OnComplete fired %d times, want 1", fired)
	}
}

func TestPacedFlowDuration(t *testing.T) {
	// A 125 KB flow paced at 1 Mbps should take ≈1 s, like the ≈1 s flows
	// in the paper's synthetic workloads.
	s := sim.New(1)
	a, b, _ := pair(s, 100e6, 5*sim.Millisecond)
	const total = 125_000
	snd := NewSender(s, a, b, 1, 100, 1, 2, total, Config{RateBps: 1e6})
	snd.Start()
	s.Run(30 * sim.Second)
	if !snd.Done() {
		t.Fatal("paced flow did not complete")
	}
	dur := snd.Stats.CompletedAt.Seconds()
	if dur < 0.8 || dur > 1.5 {
		t.Errorf("paced flow took %.2fs, want ≈1s", dur)
	}
}

func TestLossRecoveryUniform(t *testing.T) {
	s := sim.New(1)
	a, b, l := pair(s, 10e6, 5*sim.Millisecond)
	l.AB.SetFailure(netsim.FailUniform(7, 0, 0.05)) // 5% data loss a→b
	const total = 500_000
	snd := NewSender(s, a, b, 1, 100, 1, 2, total, Config{})
	snd.Start()
	s.Run(120 * sim.Second)
	if !snd.Done() {
		t.Fatalf("flow did not recover from 5%% loss; acked %d", snd.Stats.BytesAcked)
	}
	if snd.Stats.Retransmits == 0 {
		t.Error("expected retransmissions under 5% loss")
	}
	if snd.Stats.FastRetransmits == 0 {
		t.Error("expected fast retransmits under 5% loss")
	}
}

func TestBlackholeBacksOffExponentially(t *testing.T) {
	// Under a 100% blackhole the sender must fall back to RTO-driven
	// retransmissions at exponentially increasing intervals — this is the
	// TCP behaviour that makes blackholes *harder* for FANcY than 50%
	// loss (Table 3 discussion).
	s := sim.New(1)
	a, b, l := pair(s, 10e6, 5*sim.Millisecond)
	l.AB.SetFailure(netsim.FailEntries(7, 0, 1.0, 100))
	snd := NewSender(s, a, b, 1, 100, 1, 2, 100_000, Config{})
	snd.Start()
	s.Run(10 * sim.Second)
	if snd.Done() {
		t.Fatal("flow completed through a blackhole")
	}
	if snd.Stats.Timeouts < 4 {
		t.Errorf("timeouts = %d, want ≥4 in 10s with 200ms base RTO", snd.Stats.Timeouts)
	}
	// 200ms + 400 + 800 + 1600 + 3200 = 6.2s for 5 timeouts; with doubling
	// we cannot see more than ~6 timeouts in 10s.
	if snd.Stats.Timeouts > 7 {
		t.Errorf("timeouts = %d: backoff does not seem exponential", snd.Stats.Timeouts)
	}
}

func TestBlackholeHealsAndCompletes(t *testing.T) {
	s := sim.New(1)
	a, b, l := pair(s, 10e6, 5*sim.Millisecond)
	f := netsim.FailEntries(7, 0, 1.0, 100)
	f.End = 1 * sim.Second
	l.AB.SetFailure(f)
	snd := NewSender(s, a, b, 1, 100, 1, 2, 50_000, Config{})
	snd.Start()
	s.Run(60 * sim.Second)
	if !snd.Done() {
		t.Fatal("flow did not complete after failure healed")
	}
	if snd.Stats.Timeouts == 0 {
		t.Error("expected at least one timeout during the blackhole")
	}
}

func TestReverseDirectionLossRecovers(t *testing.T) {
	// ACK loss must not stall the connection (cumulative ACKs).
	s := sim.New(1)
	a, b, l := pair(s, 10e6, 5*sim.Millisecond)
	l.BA.SetFailure(netsim.FailUniform(9, 0, 0.2)) // 20% ACK loss
	snd := NewSender(s, a, b, 1, 100, 1, 2, 200_000, Config{})
	snd.Start()
	s.Run(120 * sim.Second)
	if !snd.Done() {
		t.Fatalf("flow did not complete under ACK loss; acked %d", snd.Stats.BytesAcked)
	}
}

func TestThroughputTracksPacingRate(t *testing.T) {
	s := sim.New(1)
	a, b, _ := pair(s, 100e6, 5*sim.Millisecond)
	const rate = 5e6 // 5 Mbps
	const dur = 4    // seconds
	total := int64(rate / 8 * dur)
	snd := NewSender(s, a, b, 1, 100, 1, 2, total, Config{RateBps: rate})
	snd.Start()
	s.Run(30 * sim.Second)
	if !snd.Done() {
		t.Fatal("flow did not complete")
	}
	goodput := float64(snd.Stats.BytesAcked*8) / snd.Stats.CompletedAt.Seconds()
	if goodput < 0.7*rate || goodput > 1.3*rate {
		t.Errorf("goodput = %.0f bps, want ≈%.0f", goodput, float64(rate))
	}
}

func TestMultipleConcurrentFlows(t *testing.T) {
	s := sim.New(1)
	a, b, _ := pair(s, 50e6, 2*sim.Millisecond)
	var snds []*Sender
	for i := 0; i < 20; i++ {
		snd := NewSender(s, a, b, netsim.FlowID(i), netsim.EntryID(i), 1, 2, 50_000,
			Config{RateBps: 1e6})
		snd.Start()
		snds = append(snds, snd)
	}
	s.Run(60 * sim.Second)
	for i, snd := range snds {
		if !snd.Done() {
			t.Errorf("flow %d did not complete", i)
		}
	}
}

func TestSegmentationRespectsTotal(t *testing.T) {
	// A flow whose size is not a multiple of MSS must still complete with
	// a short final segment.
	s := sim.New(1)
	a, b, _ := pair(s, 10e6, sim.Millisecond)
	snd := NewSender(s, a, b, 1, 100, 1, 2, 1460*3+37, Config{})
	snd.Start()
	s.Run(10 * sim.Second)
	if !snd.Done() {
		t.Fatal("odd-sized flow did not complete")
	}
	if snd.Stats.BytesAcked != 1460*3+37 {
		t.Errorf("BytesAcked = %d, want %d", snd.Stats.BytesAcked, 1460*3+37)
	}
}

func TestSlowPacedFlowNeverStalls(t *testing.T) {
	// Regression: a paced flow whose rate releases less than one MSS per
	// ACK round-trip must keep arming its pacing wakeup even when the
	// available bytes sit strictly between segment boundaries; an early
	// version deadlocked here after the first segment.
	s := sim.New(1)
	a, b, _ := pair(s, 10e6, 5*sim.Millisecond)
	for i, total := range []int64{2000, 3333, 14600, 1461} {
		snd := NewSender(s, a, b, netsim.FlowID(i), 100, 1, 2, total,
			Config{RateBps: 16_000 + float64(i)*777}) // awkward rates
		snd.Start()
		s.Run(s.Now() + 60*sim.Second)
		if !snd.Done() {
			t.Fatalf("flow %d (total=%d) stalled: acked=%d outstanding=%d",
				i, total, snd.Stats.BytesAcked, snd.Outstanding())
		}
	}
}

func TestTinyFlowSingleSegment(t *testing.T) {
	s := sim.New(1)
	a, b, _ := pair(s, 10e6, sim.Millisecond)
	snd := NewSender(s, a, b, 1, 100, 1, 2, 100, Config{RateBps: 8000})
	snd.Start()
	s.Run(10 * sim.Second)
	if !snd.Done() {
		t.Fatal("tiny flow did not complete")
	}
	if snd.Stats.SegmentsSent != 1 {
		t.Errorf("SegmentsSent = %d, want 1", snd.Stats.SegmentsSent)
	}
}

func TestRTOBackoffCapped(t *testing.T) {
	s := sim.New(1)
	a, b, l := pair(s, 10e6, sim.Millisecond)
	l.AB.SetFailure(netsim.FailEntries(7, 0, 1.0, 100))
	snd := NewSender(s, a, b, 1, 100, 1, 2, 50_000,
		Config{RTO: 100 * sim.Millisecond, MaxRTO: 400 * sim.Millisecond})
	snd.Start()
	s.Run(10 * sim.Second)
	// With doubling capped at 400ms: timeouts at 0.1, 0.3, 0.7, then
	// every 0.4s → ≈25 timeouts in 10s. Uncapped doubling would give ≈7.
	if snd.Stats.Timeouts < 15 {
		t.Errorf("timeouts = %d; MaxRTO cap not applied", snd.Stats.Timeouts)
	}
}

func TestInitialCwndLimitsBurst(t *testing.T) {
	// With cwnd=2 and a long RTT, only two segments leave before the
	// first ACK returns.
	s := sim.New(1)
	a, b, l := pair(s, 10e9, 50*sim.Millisecond)
	var firstBurst int
	l.AB.SetCapture(func(ev netsim.CaptureEvent) {
		if ev.Kind == netsim.CaptureSend && ev.Time < 40*sim.Millisecond {
			firstBurst++
		}
	})
	snd := NewSender(s, a, b, 1, 100, 1, 2, 100_000, Config{InitialCwnd: 2})
	snd.Start()
	s.Run(5 * sim.Second)
	if firstBurst != 2 {
		t.Errorf("initial burst = %d segments, want 2 (InitialCwnd)", firstBurst)
	}
	if !snd.Done() {
		t.Error("flow did not complete")
	}
}

func TestDuplicateDataReACKed(t *testing.T) {
	// Out-of-order and duplicate segments must still elicit cumulative
	// ACKs (the dup-ACK signal fast retransmit relies on).
	s := sim.New(1)
	a, b, l := pair(s, 10e6, 5*sim.Millisecond)
	acks := 0
	l.BA.SetCapture(func(ev netsim.CaptureEvent) {
		if ev.Kind == netsim.CaptureSend {
			acks++
		}
	})
	snd := NewSender(s, a, b, 1, 100, 1, 2, 14600, Config{})
	snd.Start()
	s.Run(5 * sim.Second)
	if !snd.Done() {
		t.Fatal("flow did not complete")
	}
	if acks < 10 {
		t.Errorf("acks = %d, want one per segment", acks)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		a, dst, _ := pair(s, 100e6, sim.Millisecond)
		snd := NewSender(s, a, dst, 1, 100, 1, 2, 1_000_000, Config{})
		snd.Start()
		s.Run(0)
		if !snd.Done() {
			b.Fatal("incomplete")
		}
	}
}
