// Package hh is the in-dataplane heavy-hitter stage: a pipelined, d-stage
// HashPipe sketch (Sivaraman et al., "Heavy-Hitter Detection Entirely in
// the Data Plane") whose insertion policy is PRECISION-style probabilistic
// recirculation (Ben Basat et al.): instead of HashPipe's always-evict
// first stage, a packet that misses every stage is admitted into the
// minimum-count slot with probability ~1/(min+1), approximated in hardware
// by a power-of-two mask over a register-resident LCG. This keeps
// elephants sticky (a established heavy slot is overwritten with
// vanishingly small probability) while still letting newly-hot prefixes
// climb in O(count) packets, and it needs exactly one recirculation per
// admission instead of HashPipe's per-stage eviction chain.
//
// The Sketch type in this package is the control-plane model: it advances
// the same per-stage hash placement and the same LCG stream as the
// register-level program in internal/dataplane (see BuildHeavyHitter), so
// the two stay packet-for-packet equivalent — the equivalence is asserted
// by a test. The switch agent consumes the sketch's periodic top-k reports
// (report.go) and drives dedicated-counter promotion/demotion through the
// allocator (alloc.go).
package hh

import (
	"math/bits"
	"sort"

	"fancy/internal/netsim"
)

// Params sizes the sketch. The zero value is usable: withDefaults yields a
// 3-stage, 32-slot-per-stage table, the smallest configuration at which
// the PRECISION admission policy separates a Zipf head from its tail.
type Params struct {
	Stages int    // pipeline depth d (default 3)
	Width  int    // slots per stage (default 32)
	Seed   uint64 // hash + LCG seed; distinct seeds give independent sketches
}

func (p Params) withDefaults() Params {
	if p.Stages <= 0 {
		p.Stages = 3
	}
	if p.Width <= 0 {
		p.Width = 32
	}
	return p
}

// PortSeed derives a per-port sketch seed from a base seed so that every
// monitored port runs an independently-hashed sketch.
func PortSeed(seed uint64, port int) uint64 {
	return splitmix(seed ^ (uint64(port+1) * 0x9e3779b97f4a7c15))
}

// splitmix is the SplitMix64 finalizer — the avalanche we use both to
// derive per-stage hash functions and to spread keys over slots.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StageIndex is the slot index of key in the given stage. It is exported
// because the register-level program in internal/dataplane must place keys
// in exactly the same cells as this model.
func StageIndex(seed uint64, stage, width int, key uint32) int {
	h := splitmix(seed ^ (uint64(stage+1) << 32) ^ uint64(key))
	return int(h % uint64(width))
}

// LCGStep advances the admission RNG one step. The constants are the
// classic numerical-recipes 32-bit LCG — one multiply and one add, exactly
// what a single SALU slot can compute per packet.
func LCGStep(x uint32) uint32 {
	return x*1664525 + 1013904223
}

// RandInit is the admission RNG's initial register value for a seed.
func RandInit(seed uint64) uint32 {
	return uint32(splitmix(seed ^ 0x5bf03635))
}

// EntryCount is one reported (prefix, count) pair.
type EntryCount struct {
	Entry netsim.EntryID
	Count uint32
}

// Sketch is the control-plane model of the heavy-hitter stage. Not safe
// for concurrent use; in the simulator it lives on the event-loop thread.
type Sketch struct {
	p Params
	// keys stores entry+1 so that the all-zero reset state cannot collide
	// with netsim.EntryID 0, which is a valid prefix.
	keys   [][]uint32
	counts [][]uint32
	rnd    uint32

	packets uint64 // observations since the last Reset
	recircs uint64 // admissions (each costs one recirculation) since Reset

	TotalPackets uint64
	TotalRecircs uint64
}

// NewSketch builds an empty sketch for p (zero fields defaulted).
func NewSketch(p Params) *Sketch {
	p = p.withDefaults()
	sk := &Sketch{p: p, rnd: RandInit(p.Seed)}
	sk.keys = make([][]uint32, p.Stages)
	sk.counts = make([][]uint32, p.Stages)
	for i := range sk.keys {
		sk.keys[i] = make([]uint32, p.Width)
		sk.counts[i] = make([]uint32, p.Width)
	}
	return sk
}

// Params returns the sketch's (defaulted) sizing.
func (sk *Sketch) Params() Params { return sk.p }

// draw returns the current RNG value and advances the stream — the same
// old-value-out semantics as a register RegOp, so the register program and
// this model consume identical draws.
func (sk *Sketch) draw() uint32 {
	r := sk.rnd
	sk.rnd = LCGStep(sk.rnd)
	return r
}

// Observe runs one packet through the sketch. It reports whether the
// packet was admitted into a slot, which in hardware costs one
// recirculated clone. The policy, per PRECISION:
//
//   - match in any stage: increment that slot, done (no RNG draw);
//   - full miss: find the minimum-count slot across stages, admit with
//     probability 2^-len(min) — the power-of-two approximation of
//     1/(min+1) — taking over the slot with count min+1.
//
// An empty slot has count 0, mask 0, and is therefore always claimed.
func (sk *Sketch) Observe(entry netsim.EntryID) bool {
	sk.packets++
	sk.TotalPackets++
	key := uint32(entry) + 1
	minStage, minIdx := 0, 0
	var min uint32
	for i := 0; i < sk.p.Stages; i++ {
		idx := StageIndex(sk.p.Seed, i, sk.p.Width, uint32(entry))
		if sk.keys[i][idx] == key {
			sk.counts[i][idx]++
			return false
		}
		if c := sk.counts[i][idx]; i == 0 || c < min {
			min, minStage, minIdx = c, i, idx
		}
	}
	j := bits.Len32(min)
	var mask uint32
	if j >= 32 {
		mask = ^uint32(0)
	} else {
		mask = 1<<uint(j) - 1
	}
	if sk.draw()&mask != 0 {
		return false
	}
	sk.keys[minStage][minIdx] = key
	sk.counts[minStage][minIdx] = min + 1
	sk.recircs++
	sk.TotalRecircs++
	return true
}

// Window returns the observation and admission counts since the last
// Reset.
func (sk *Sketch) Window() (packets, recircs uint64) {
	return sk.packets, sk.recircs
}

// TopK returns the k heaviest tracked prefixes, ordered by descending
// count then ascending entry — the canonical report order. k <= 0 or k
// larger than the table returns everything tracked.
func (sk *Sketch) TopK(k int) []EntryCount {
	var all []EntryCount
	for i := range sk.keys {
		for j, key := range sk.keys[i] {
			if key == 0 {
				continue
			}
			all = append(all, EntryCount{Entry: netsim.EntryID(key - 1), Count: sk.counts[i][j]})
		}
	}
	// The same entry can briefly occupy slots in two stages (admitted
	// twice after losing a slot); merge counts so reports never carry
	// duplicate prefixes.
	sort.Slice(all, func(a, b int) bool { return all[a].Entry < all[b].Entry })
	merged := all[:0]
	for _, ec := range all {
		if n := len(merged); n > 0 && merged[n-1].Entry == ec.Entry {
			merged[n-1].Count += ec.Count
			continue
		}
		merged = append(merged, ec)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Count != merged[b].Count {
			return merged[a].Count > merged[b].Count
		}
		return merged[a].Entry < merged[b].Entry
	})
	if k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// Reset clears every slot and the window counters, starting a fresh
// measurement epoch. The RNG stream continues — hardware does not reseed
// its register between control-plane reads.
func (sk *Sketch) Reset() {
	for i := range sk.keys {
		for j := range sk.keys[i] {
			sk.keys[i][j] = 0
			sk.counts[i][j] = 0
		}
	}
	sk.packets, sk.recircs = 0, 0
}

// Slot exposes one cell (key+1 encoding, 0 = empty) for the equivalence
// test against the register-level program.
func (sk *Sketch) Slot(stage, idx int) (key, count uint32) {
	return sk.keys[stage][idx], sk.counts[stage][idx]
}
