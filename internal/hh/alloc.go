package hh

import (
	"sort"

	"fancy/internal/netsim"
)

// AllocPolicy tunes the counter-allocation controller. The hysteresis pair
// (PromoteAfter, DemoteAfter) is the flap damper: a prefix must be hot in
// PromoteAfter consecutive reports to earn a dedicated counter and absent
// from DemoteAfter consecutive reports to lose it, so a prefix oscillating
// around the top-k boundary cannot churn the dedicated table every window.
type AllocPolicy struct {
	Capacity     int    // dynamic dedicated slots available on the port
	PromoteAfter int    // consecutive hot reports before promotion (default 2)
	DemoteAfter  int    // consecutive absent reports before demotion (default 3)
	MinCount     uint32 // ignore reported prefixes below this window count (default 2)
}

func (p AllocPolicy) withDefaults() AllocPolicy {
	if p.PromoteAfter <= 0 {
		p.PromoteAfter = 2
	}
	if p.DemoteAfter <= 0 {
		p.DemoteAfter = 3
	}
	if p.MinCount == 0 {
		p.MinCount = 2
	}
	return p
}

// ActionKind discriminates allocator decisions.
type ActionKind uint8

const (
	// Promote assigns the entry a dynamic dedicated counter.
	Promote ActionKind = iota
	// Demote releases the entry's dynamic dedicated counter.
	Demote
)

// Action is one allocation decision for the detector to apply.
type Action struct {
	Kind  ActionKind
	Entry netsim.EntryID
	Count uint32 // last reported window count (0 for demotions)
}

// AllocStats counts allocator activity for telemetry.
type AllocStats struct {
	Reports         uint64 // reports ingested
	Promotions      uint64
	Demotions       uint64
	FlapsSuppressed uint64 // cold streaks broken before DemoteAfter fired
	Deferred        uint64 // promotion-ready prefixes parked on a full table
	EpochResets     uint64 // detector restarts that wiped the dynamic table
}

// Allocator is the per-port counter-allocation controller. It ingests the
// heavy-hitter reports for one port and emits promote/demote actions,
// deterministic in the report stream: tracked state is iterated in sorted
// order and promotion priority follows the report's canonical
// heaviest-first order.
type Allocator struct {
	policy AllocPolicy
	// pinned prefixes hold static (Table 3) dedicated counters already;
	// the controller never manages them.
	pinned map[netsim.EntryID]bool

	epoch     uint8
	haveEpoch bool

	hot       map[netsim.EntryID]int // candidate consecutive-hot streaks
	allocated map[netsim.EntryID]int // promoted prefixes -> consecutive-cold streak
	stats     AllocStats
}

// NewAllocator builds a controller for one port. pinned lists the
// statically assigned high-priority prefixes.
func NewAllocator(policy AllocPolicy, pinned []netsim.EntryID) *Allocator {
	a := &Allocator{
		policy:    policy.withDefaults(),
		pinned:    make(map[netsim.EntryID]bool, len(pinned)),
		hot:       make(map[netsim.EntryID]int),
		allocated: make(map[netsim.EntryID]int),
	}
	for _, e := range pinned {
		a.pinned[e] = true
	}
	return a
}

// Stats returns the lifetime counters.
func (a *Allocator) Stats() AllocStats { return a.stats }

// Occupancy is the number of dynamic slots currently allocated.
func (a *Allocator) Occupancy() int { return len(a.allocated) }

// Capacity is the number of dynamic slots the controller manages.
func (a *Allocator) Capacity() int { return a.policy.Capacity }

// Allocated reports whether the controller currently holds a dynamic slot
// for the entry.
func (a *Allocator) Allocated(entry netsim.EntryID) bool {
	_, ok := a.allocated[entry]
	return ok
}

func sortedEntries[V any](m map[netsim.EntryID]V) []netsim.EntryID {
	out := make([]netsim.EntryID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ingest consumes one report and returns the actions to apply, demotions
// first (they free the slots this round's promotions fill). A report from
// a new detector epoch means the dataplane restarted and every dynamic
// slot was wiped: the controller forgets its state and relearns.
func (a *Allocator) Ingest(rep *Report) []Action {
	if !a.haveEpoch || rep.Epoch != a.epoch {
		if a.haveEpoch {
			a.stats.EpochResets++
		}
		a.epoch, a.haveEpoch = rep.Epoch, true
		a.hot = make(map[netsim.EntryID]int)
		a.allocated = make(map[netsim.EntryID]int)
	}
	a.stats.Reports++

	present := make(map[netsim.EntryID]uint32, len(rep.Entries))
	for _, ec := range rep.Entries {
		if ec.Count >= a.policy.MinCount && !a.pinned[ec.Entry] {
			present[ec.Entry] = ec.Count
		}
	}

	var actions []Action

	// Allocated prefixes: reset or advance the cold streak.
	for _, e := range sortedEntries(a.allocated) {
		if _, ok := present[e]; ok {
			if a.allocated[e] > 0 {
				a.stats.FlapsSuppressed++
			}
			a.allocated[e] = 0
			continue
		}
		a.allocated[e]++
		if a.allocated[e] >= a.policy.DemoteAfter {
			delete(a.allocated, e)
			a.stats.Demotions++
			actions = append(actions, Action{Kind: Demote, Entry: e})
		}
	}

	// Candidates, heaviest first so contention for the last free slot is
	// resolved toward the bigger prefix.
	for _, ec := range rep.Entries {
		if _, ok := present[ec.Entry]; !ok {
			continue // pinned or under MinCount
		}
		if _, ok := a.allocated[ec.Entry]; ok {
			continue
		}
		a.hot[ec.Entry]++
		if a.hot[ec.Entry] < a.policy.PromoteAfter {
			continue
		}
		if len(a.allocated) >= a.policy.Capacity {
			// Keep the streak: the prefix promotes the moment a slot
			// frees up.
			a.stats.Deferred++
			continue
		}
		delete(a.hot, ec.Entry)
		a.allocated[ec.Entry] = 0
		a.stats.Promotions++
		actions = append(actions, Action{Kind: Promote, Entry: ec.Entry, Count: present[ec.Entry]})
	}

	// A candidate absent from this report loses its streak entirely —
	// consecutive means consecutive.
	for _, e := range sortedEntries(a.hot) {
		if _, ok := present[e]; !ok {
			delete(a.hot, e)
		}
	}
	return actions
}
