package hh

import (
	"bytes"
	"testing"

	"fancy/internal/netsim"
)

// FuzzDecodeHHReport fuzzes the agent↔controller report wire format: the
// decoder must never panic, and any frame it accepts must be exactly the
// canonical encoding of what it decoded (so decode∘encode is idempotent
// and no two distinct frames alias one report).
func FuzzDecodeHHReport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{reportVersion})
	f.Add(EncodeReport(&Report{Port: 1, Epoch: 2, Seq: 3}))
	f.Add(EncodeReport(&Report{
		Port: 9, Epoch: 0, Seq: 77, Packets: 1e6, Recircs: 31,
		Entries: []EntryCount{
			{Entry: 5, Count: 900}, {Entry: 1, Count: 80},
			{Entry: 2, Count: 80}, {Entry: netsim.EntryID(1<<32 - 1), Count: 1},
		},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		rep, err := DecodeReport(b)
		if err != nil {
			return
		}
		canon := EncodeReport(rep)
		if !bytes.Equal(canon, b) {
			t.Fatalf("accepted non-canonical frame:\n in    %x\n canon %x", b, canon)
		}
		again, err := DecodeReport(canon)
		if err != nil {
			t.Fatalf("canonical re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeReport(again), canon) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}
