package hh

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fancy/internal/netsim"
)

// Report is one periodic top-k digest from a port's heavy-hitter stage,
// carried from the dataplane to the switch agent. The wire format follows
// the fleet codec discipline: version-tagged, minimal varints only, strict
// canonical ordering, no trailing bytes — a report that does not decode to
// exactly its canonical encoding is rejected, so the allocator can never
// be steered by a malformed or ambiguous frame.
type Report struct {
	Port    uint16
	Epoch   uint8  // detector wire epoch when the window closed
	Seq     uint32 // per-port report sequence number
	Packets uint64 // packets observed in the window
	Recircs uint64 // recirculated admissions in the window
	// Entries is ordered by descending count, ties by ascending entry —
	// the same canonical order TopK produces.
	Entries []EntryCount
}

const reportVersion = 1

// maxReportEntries bounds the decoded entry list; no real sketch
// configuration reports more, and the bound caps allocation on garbage.
const maxReportEntries = 4096

// EncodeReport serializes r in canonical form.
func EncodeReport(r *Report) []byte {
	b := make([]byte, 0, 16+8*len(r.Entries))
	b = append(b, reportVersion)
	b = binary.AppendUvarint(b, uint64(r.Port))
	b = append(b, r.Epoch)
	b = binary.AppendUvarint(b, uint64(r.Seq))
	b = binary.AppendUvarint(b, r.Packets)
	b = binary.AppendUvarint(b, r.Recircs)
	b = binary.AppendUvarint(b, uint64(len(r.Entries)))
	for _, ec := range r.Entries {
		b = binary.AppendUvarint(b, uint64(ec.Entry))
		b = binary.AppendUvarint(b, uint64(ec.Count))
	}
	return b
}

var errBadReport = errors.New("hh: malformed report")

// rrbuf is the defensive reader: any violation (short buffer, non-minimal
// varint, range overflow) latches bad and zero-fills from then on.
type rrbuf struct {
	b   []byte
	bad bool
}

func (r *rrbuf) fail() uint64 {
	r.bad = true
	return 0
}

func (r *rrbuf) u64() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return r.fail()
	}
	// Reject non-minimal encodings: a multi-byte varint must not end in a
	// zero continuation payload byte.
	if n > 1 && r.b[n-1] == 0 {
		return r.fail()
	}
	r.b = r.b[n:]
	return v
}

func (r *rrbuf) u32() uint32 {
	v := r.u64()
	if v > 1<<32-1 {
		return uint32(r.fail())
	}
	return uint32(v)
}

func (r *rrbuf) u16() uint16 {
	v := r.u64()
	if v > 1<<16-1 {
		return uint16(r.fail())
	}
	return uint16(v)
}

func (r *rrbuf) byte() byte {
	if len(r.b) == 0 {
		return byte(r.fail())
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rrbuf) count() int {
	v := r.u64()
	// Each entry costs at least two bytes on the wire; a count that
	// cannot fit the remaining buffer is garbage, not a big report.
	if v > maxReportEntries || v > uint64(len(r.b)) {
		return int(r.fail())
	}
	return int(v)
}

// DecodeReport parses and validates a canonical report frame.
func DecodeReport(b []byte) (*Report, error) {
	if len(b) == 0 || b[0] != reportVersion {
		return nil, fmt.Errorf("%w: bad version", errBadReport)
	}
	r := &rrbuf{b: b[1:]}
	rep := &Report{
		Port:    r.u16(),
		Epoch:   r.byte(),
		Seq:     r.u32(),
		Packets: r.u64(),
		Recircs: r.u64(),
	}
	n := r.count()
	var prev EntryCount
	for i := 0; i < n; i++ {
		ec := EntryCount{Entry: netsim.EntryID(r.u32()), Count: r.u32()}
		if r.bad {
			break
		}
		// Enforce the canonical order: strictly descending by count,
		// ties strictly ascending by entry (which also bans duplicates).
		if i > 0 {
			if ec.Count > prev.Count || (ec.Count == prev.Count && ec.Entry <= prev.Entry) {
				return nil, fmt.Errorf("%w: entries out of canonical order", errBadReport)
			}
		}
		rep.Entries = append(rep.Entries, ec)
		prev = ec
	}
	if r.bad || len(r.b) != 0 {
		return nil, errBadReport
	}
	return rep, nil
}
