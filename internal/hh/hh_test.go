package hh

import (
	"math/rand"
	"reflect"
	"testing"

	"fancy/internal/netsim"
)

// zipfStream deterministically draws entries with a heavy-tailed
// distribution over n prefixes.
func zipfStream(seed int64, n, packets int) []netsim.EntryID {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	out := make([]netsim.EntryID, packets)
	for i := range out {
		out[i] = netsim.EntryID(z.Uint64())
	}
	return out
}

// TestSketchFindsHead: under a Zipf workload the top reported prefixes
// must be the true head of the distribution.
func TestSketchFindsHead(t *testing.T) {
	sk := NewSketch(Params{Stages: 3, Width: 32, Seed: 7})
	stream := zipfStream(1, 200, 20000)
	truth := map[netsim.EntryID]int{}
	for _, e := range stream {
		truth[e]++
		sk.Observe(e)
	}
	top := sk.TopK(4)
	if len(top) != 4 {
		t.Fatalf("TopK(4) returned %d entries", len(top))
	}
	for _, ec := range top {
		// Every reported heavy hitter must be genuinely heavy: at least
		// 1% of the stream.
		if truth[ec.Entry] < len(stream)/100 {
			t.Errorf("reported entry %d has true count %d — not a heavy hitter", ec.Entry, truth[ec.Entry])
		}
	}
	// The single heaviest prefix must be reported first.
	best, bestCount := netsim.InvalidEntry, 0
	for e, c := range truth {
		if c > bestCount || (c == bestCount && e < best) {
			best, bestCount = e, c
		}
	}
	if top[0].Entry != best {
		t.Errorf("top entry = %d, true heaviest = %d (count %d)", top[0].Entry, best, bestCount)
	}
}

// TestSketchDeterministic: same seed and stream, same slots, counts, and
// recirculation totals.
func TestSketchDeterministic(t *testing.T) {
	stream := zipfStream(2, 100, 5000)
	run := func() *Sketch {
		sk := NewSketch(Params{Seed: 99})
		for _, e := range stream {
			sk.Observe(e)
		}
		return sk
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.keys, b.keys) || !reflect.DeepEqual(a.counts, b.counts) {
		t.Fatal("same seed produced different sketch state")
	}
	if a.TotalRecircs != b.TotalRecircs {
		t.Fatalf("recircs differ: %d vs %d", a.TotalRecircs, b.TotalRecircs)
	}
	if a.TotalRecircs == 0 {
		t.Fatal("no admissions at all — the sketch never learned anything")
	}
}

// TestSketchStickyElephant: once a prefix has a large count, a burst of
// one-off prefixes must not evict it (the PRECISION point).
func TestSketchStickyElephant(t *testing.T) {
	sk := NewSketch(Params{Stages: 2, Width: 8, Seed: 5})
	const elephant = netsim.EntryID(42)
	for i := 0; i < 5000; i++ {
		sk.Observe(elephant)
	}
	// 2000 distinct mice, one packet each.
	for i := 0; i < 2000; i++ {
		sk.Observe(netsim.EntryID(1000 + i))
	}
	top := sk.TopK(1)
	if len(top) == 0 || top[0].Entry != elephant {
		t.Fatalf("elephant evicted by mice: top=%v", top)
	}
	if top[0].Count < 4000 {
		t.Fatalf("elephant count collapsed: %d", top[0].Count)
	}
}

// TestSketchResetAndWindow: Reset clears slots and window counters but the
// lifetime totals and RNG stream continue.
func TestSketchResetAndWindow(t *testing.T) {
	sk := NewSketch(Params{Seed: 1})
	for i := 0; i < 100; i++ {
		sk.Observe(netsim.EntryID(i % 10))
	}
	p, r := sk.Window()
	if p != 100 || r == 0 {
		t.Fatalf("window = (%d, %d), want 100 packets and some recircs", p, r)
	}
	rndBefore := sk.rnd
	sk.Reset()
	if p, r := sk.Window(); p != 0 || r != 0 {
		t.Fatalf("window after reset = (%d, %d)", p, r)
	}
	if len(sk.TopK(0)) != 0 {
		t.Fatal("TopK not empty after reset")
	}
	if sk.rnd != rndBefore {
		t.Fatal("Reset reseeded the RNG stream")
	}
	if sk.TotalPackets != 100 {
		t.Fatalf("lifetime packets reset: %d", sk.TotalPackets)
	}
}

// TestTopKCanonicalOrder: descending count, ties ascending entry.
func TestTopKCanonicalOrder(t *testing.T) {
	sk := NewSketch(Params{Stages: 3, Width: 64, Seed: 11})
	for e := 0; e < 6; e++ {
		for i := 0; i < 50+e; i++ {
			sk.Observe(netsim.EntryID(e))
		}
	}
	top := sk.TopK(0)
	for i := 1; i < len(top); i++ {
		a, b := top[i-1], top[i]
		if b.Count > a.Count || (b.Count == a.Count && b.Entry <= a.Entry) {
			t.Fatalf("TopK order violated at %d: %v then %v", i, a, b)
		}
	}
}

// TestReportRoundTrip: canonical encode/decode is the identity.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Port: 3, Epoch: 7, Seq: 19, Packets: 12345, Recircs: 67,
		Entries: []EntryCount{{Entry: 9, Count: 500}, {Entry: 2, Count: 80}, {Entry: 5, Count: 80}, {Entry: 1, Count: 3}},
	}
	frame := EncodeReport(rep)
	got, err := DecodeReport(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", rep, got)
	}
	// Empty report round-trips too.
	empty := &Report{Port: 1, Epoch: 0, Seq: 0}
	got, err = DecodeReport(EncodeReport(empty))
	if err != nil || !reflect.DeepEqual(empty, got) {
		t.Fatalf("empty round trip: %v %+v", err, got)
	}
}

// TestReportRejects: malformed frames must all fail to decode.
func TestReportRejects(t *testing.T) {
	good := EncodeReport(&Report{
		Port: 1, Epoch: 2, Seq: 3, Packets: 4, Recircs: 1,
		Entries: []EntryCount{{Entry: 7, Count: 9}, {Entry: 8, Count: 9}},
	})
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   append([]byte{99}, good[1:]...),
		"truncated":     good[:len(good)-1],
		"trailing byte": append(append([]byte{}, good...), 0),
		"out of order": EncodeReport(&Report{Entries: []EntryCount{
			{Entry: 1, Count: 5}, {Entry: 2, Count: 9}}}),
		"duplicate entry": EncodeReport(&Report{Entries: []EntryCount{
			{Entry: 1, Count: 5}, {Entry: 1, Count: 5}}}),
		"huge count": {reportVersion, 1, 2, 3, 4, 1, 0xff},
	}
	for name, frame := range cases {
		if _, err := DecodeReport(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Non-minimal varint: port 1 encoded as two bytes.
	nm := append([]byte{reportVersion, 0x81, 0x00}, good[2:]...)
	if _, err := DecodeReport(nm); err == nil {
		t.Error("non-minimal varint decoded without error")
	}
}
