package hh

import (
	"reflect"
	"testing"

	"fancy/internal/netsim"
)

func rep(epoch uint8, seq uint32, entries ...EntryCount) *Report {
	return &Report{Epoch: epoch, Seq: seq, Entries: entries}
}

func acts(a *Allocator, r *Report) []Action { return a.Ingest(r) }

// TestAllocPromoteHysteresis: one hot report is not enough; PromoteAfter
// consecutive reports are.
func TestAllocPromoteHysteresis(t *testing.T) {
	a := NewAllocator(AllocPolicy{Capacity: 4, PromoteAfter: 2}, nil)
	if out := acts(a, rep(0, 0, EntryCount{Entry: 5, Count: 100})); len(out) != 0 {
		t.Fatalf("promoted after one report: %v", out)
	}
	out := acts(a, rep(0, 1, EntryCount{Entry: 5, Count: 100}))
	want := []Action{{Kind: Promote, Entry: 5, Count: 100}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if !a.Allocated(5) || a.Occupancy() != 1 {
		t.Fatal("allocation state not recorded")
	}
	// A streak broken by one absent report starts over.
	b := NewAllocator(AllocPolicy{Capacity: 4, PromoteAfter: 2}, nil)
	acts(b, rep(0, 0, EntryCount{Entry: 9, Count: 50}))
	acts(b, rep(0, 1))
	if out := acts(b, rep(0, 2, EntryCount{Entry: 9, Count: 50})); len(out) != 0 {
		t.Fatalf("broken streak still promoted: %v", out)
	}
}

// TestAllocDemoteHysteresisAndFlaps: demotion needs DemoteAfter
// consecutive absences; a briefly-absent prefix is a suppressed flap.
func TestAllocDemoteHysteresisAndFlaps(t *testing.T) {
	a := NewAllocator(AllocPolicy{Capacity: 4, PromoteAfter: 1, DemoteAfter: 3}, nil)
	acts(a, rep(0, 0, EntryCount{Entry: 5, Count: 100}))
	// Two absences, then hot again: no demotion, one suppressed flap.
	acts(a, rep(0, 1))
	acts(a, rep(0, 2))
	if out := acts(a, rep(0, 3, EntryCount{Entry: 5, Count: 90})); len(out) != 0 {
		t.Fatalf("flap demoted: %v", out)
	}
	if a.Stats().FlapsSuppressed != 1 {
		t.Fatalf("FlapsSuppressed = %d, want 1", a.Stats().FlapsSuppressed)
	}
	// Three consecutive absences demote.
	acts(a, rep(0, 4))
	acts(a, rep(0, 5))
	out := acts(a, rep(0, 6))
	if !reflect.DeepEqual(out, []Action{{Kind: Demote, Entry: 5}}) {
		t.Fatalf("got %v, want demote of 5", out)
	}
	if a.Occupancy() != 0 || a.Stats().Demotions != 1 {
		t.Fatal("demotion state not recorded")
	}
}

// TestAllocCapacityAndDeferral: a full table defers promotions until a
// demotion frees a slot, and the deferred prefix promotes in the same
// ingest that demotes (demotions are emitted first).
func TestAllocCapacityAndDeferral(t *testing.T) {
	a := NewAllocator(AllocPolicy{Capacity: 1, PromoteAfter: 1, DemoteAfter: 2}, nil)
	acts(a, rep(0, 0, EntryCount{Entry: 1, Count: 100}))
	if out := acts(a, rep(0, 1, EntryCount{Entry: 1, Count: 100}, EntryCount{Entry: 2, Count: 50})); len(out) != 0 {
		t.Fatalf("promoted past capacity: %v", out)
	}
	if a.Stats().Deferred == 0 {
		t.Fatal("deferral not counted")
	}
	// Entry 1 goes cold; after DemoteAfter reports entry 2 takes the slot
	// in the same action batch, demote first.
	acts(a, rep(0, 2, EntryCount{Entry: 2, Count: 60}))
	out := acts(a, rep(0, 3, EntryCount{Entry: 2, Count: 60}))
	want := []Action{{Kind: Demote, Entry: 1}, {Kind: Promote, Entry: 2, Count: 60}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

// TestAllocPinnedAndMinCount: pinned prefixes and sub-threshold counts are
// never candidates.
func TestAllocPinnedAndMinCount(t *testing.T) {
	a := NewAllocator(AllocPolicy{Capacity: 4, PromoteAfter: 1, MinCount: 10}, []netsim.EntryID{7})
	out := acts(a, rep(0, 0, EntryCount{Entry: 7, Count: 1000}, EntryCount{Entry: 3, Count: 5}))
	if len(out) != 0 {
		t.Fatalf("pinned or sub-threshold prefix promoted: %v", out)
	}
}

// TestAllocEpochReset: a report from a new detector epoch wipes the
// controller state — the dataplane restarted and the slots are gone.
func TestAllocEpochReset(t *testing.T) {
	a := NewAllocator(AllocPolicy{Capacity: 4, PromoteAfter: 1}, nil)
	acts(a, rep(0, 0, EntryCount{Entry: 5, Count: 100}))
	if a.Occupancy() != 1 {
		t.Fatal("setup failed")
	}
	out := acts(a, rep(1, 0, EntryCount{Entry: 5, Count: 100}))
	if a.Stats().EpochResets != 1 {
		t.Fatalf("EpochResets = %d, want 1", a.Stats().EpochResets)
	}
	// State was wiped, so the prefix re-promotes immediately (PromoteAfter=1).
	if !reflect.DeepEqual(out, []Action{{Kind: Promote, Entry: 5, Count: 100}}) {
		t.Fatalf("got %v, want fresh promote", out)
	}
}

// TestAllocDeterministicOrder: with many prefixes in one report, actions
// come out in a deterministic order across runs.
func TestAllocDeterministicOrder(t *testing.T) {
	mk := func() []Action {
		a := NewAllocator(AllocPolicy{Capacity: 8, PromoteAfter: 1}, nil)
		var ecs []EntryCount
		for i := 0; i < 8; i++ {
			ecs = append(ecs, EntryCount{Entry: netsim.EntryID(20 - i), Count: uint32(100 - i)})
		}
		out := a.Ingest(rep(0, 0, ecs...))
		out = append(out, a.Ingest(rep(0, 1))...)
		out = append(out, a.Ingest(rep(0, 2))...)
		out = append(out, a.Ingest(rep(0, 3))...)
		return out
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("action order differs across identical runs:\n%v\n%v", a, b)
	}
}
