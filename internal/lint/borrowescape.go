package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerBorrowEscape enforces wire.UnmarshalInto's borrow contract: the
// message decoded into a reused scratch — and every slice or sub-struct
// reachable from it — is only valid until the next decode into the same
// scratch. Retaining such a value past the borrowing function (returning
// it, storing it into a field, package variable or parameter, sending it on
// a channel, or capturing it in a closure / go / defer) without a copy means
// it will be silently overwritten by the next decode.
//
// A scratch is considered reused (and its contents borrowed) when it is a
// parameter, a field pointer, a package variable, or a local that is
// decoded into inside a loop that does not also freshly allocate it.
// A local freshly allocated before a single decode — the wire.Unmarshal
// shape `m := new(Message); UnmarshalInto(b, m); return m` — owns its
// memory and is exempt.
//
// Borrowedness propagates through retaining projections and containers
// (m.Counters, m.Targets[i], append(xs, m), composite literals, range
// element values) but dies at value copies: scalar reads (m.Counters[0]),
// results of ordinary function calls, and append's flattening of a
// scalar-element slice (append(dst, m.Path...)).
var AnalyzerBorrowEscape = &Analyzer{
	Name: "borrowescape",
	Doc:  "no wire.UnmarshalInto scratch alias may escape the borrowing function without a copy",
	Run:  runBorrowEscape,
}

func runBorrowEscape(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, borrowFunc(p, fn.Recv, fn.Type, fn.Body)...)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					out = append(out, borrowFunc(p, nil, fn.Type, fn.Body)...)
				}
			}
			return true
		})
	}
	return out
}

// isUnmarshalInto reports whether call is wire.UnmarshalInto (or
// UnmarshalInto within package wire itself) and returns the scratch
// argument's identifier, unwrapping a leading &.
func isUnmarshalInto(p *Package, call *ast.CallExpr) (*ast.Ident, bool) {
	if len(call.Args) != 2 {
		return nil, false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		path := importedPackage(p, fun.X)
		if fun.Sel.Name != "UnmarshalInto" || (path != "wire" && !strings.HasSuffix(path, "/wire")) {
			return nil, false
		}
	case *ast.Ident:
		if fun.Name != "UnmarshalInto" || p.Name != "wire" {
			return nil, false
		}
	default:
		return nil, false
	}
	arg := call.Args[1]
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ue.X
	}
	id, ok := arg.(*ast.Ident)
	return id, ok
}

func borrowFunc(p *Package, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) []Finding {
	// Cheap pre-filter.
	hasDecode := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := isUnmarshalInto(p, call); ok {
				hasDecode = true
			}
		}
		return !hasDecode
	})
	if !hasDecode {
		return nil
	}

	a := &borrowFlow{p: p, params: map[types.Object]bool{}, reused: map[*ast.CallExpr]bool{}}
	for _, fl := range []*ast.FieldList{recv, ftype.Params, ftype.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					a.params[obj] = true
				}
			}
		}
	}
	a.classifyScratches(body)

	g := buildCFG(body)
	in := g.forward(flowState{}, func(n ast.Node, s flowState) { a.step(n, s, false) })
	a.reporting = true
	g.replay(in,
		func(n ast.Node, s flowState) { a.step(n, s, false) },
		func(n ast.Node, s flowState) { a.step(n, s, true) })
	return a.findings
}

type borrowFlow struct {
	p         *Package
	params    map[types.Object]bool
	reused    map[*ast.CallExpr]bool // UnmarshalInto call -> scratch is a reused buffer
	reporting bool
	findings  []Finding
}

// classifyScratches decides, per UnmarshalInto call, whether the scratch is
// a reused buffer (borrowed) or freshly allocated for a single decode
// (exempt). Locals are exempt when every definition is a fresh allocation
// and no decode sits in a loop entered after the definition.
func (a *borrowFlow) classifyScratches(body *ast.BlockStmt) {
	type def struct {
		pos   token.Pos
		fresh bool
	}
	defs := map[types.Object][]def{}
	freshRHS := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			id, ok := x.Fun.(*ast.Ident)
			if !ok || id.Name != "new" {
				return false
			}
			_, isBuiltin := a.p.Info.Uses[id].(*types.Builtin)
			return isBuiltin
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			_, isLit := x.X.(*ast.CompositeLit)
			return isLit
		}
		return false
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := a.p.Info.Defs[id]
		if obj == nil {
			obj = a.p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		defs[obj] = append(defs[obj], def{id.Pos(), rhs == nil || freshRHS(rhs)})
	}
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if len(st.Lhs) == len(st.Rhs) {
						record(id, st.Rhs[i])
					} else {
						record(id, st.Rhs[0]) // tuple: not fresh
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					record(name, st.Values[i])
				} else {
					record(name, nil) // var m Message: zero value is fresh
				}
			}
		}
		return true
	})

	var loops []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					loops = append(loops, m)
					walk(m)
					loops = loops[:len(loops)-1]
					return false
				}
			case *ast.CallExpr:
				id, ok := isUnmarshalInto(a.p, x)
				if !ok {
					break
				}
				obj := a.p.Info.Uses[id]
				if obj == nil {
					obj = a.p.Info.Defs[id]
				}
				isLocal := false
				if obj != nil {
					_, isLocal = defs[obj]
				}
				reused := true
				if isLocal && !a.params[obj] {
					reused = false
					for _, d := range defs[obj] {
						if !d.fresh {
							reused = true
						}
						// A decode inside a loop the definition does not
						// re-enter reuses the same allocation every pass.
						for _, l := range loops {
							if !(l.Pos() <= d.pos && d.pos < l.End()) {
								reused = true
							}
						}
					}
				}
				a.reused[x] = reused
			}
			return true
		})
	}
	walk(body)
}

// borrowed reports whether evaluating e yields a value that aliases a
// borrowed scratch and is capable of retaining it (per typeRetains).
func (a *borrowFlow) borrowed(e ast.Expr, s flowState) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return a.borrowed(x.X, s)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if a.borrowed(elt, s) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := a.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				if a.borrowed(x.Args[0], s) {
					return true
				}
				for i, arg := range x.Args[1:] {
					if x.Ellipsis != token.NoPos && i == len(x.Args)-2 {
						// append(dst, src...) copies elements; only
						// retaining elements keep aliasing the scratch.
						if sl, ok := a.p.Info.TypeOf(arg).Underlying().(*types.Slice); ok {
							if a.borrowed(arg, s) && typeRetains(sl.Elem()) {
								return true
							}
							continue
						}
					}
					if a.borrowed(arg, s) {
						return true
					}
				}
			}
		}
		return false // ordinary call results are fresh copies
	}
	obj := rootIdentObj(a.p, e)
	if obj == nil || s[obj]&factBorrowed == 0 {
		return false
	}
	t := a.p.Info.TypeOf(e)
	return t != nil && typeRetains(t)
}

func (a *borrowFlow) step(n ast.Node, s flowState, check bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Range element values alias the ranged container's backing array.
		fromBorrowed := a.borrowed(rs.X, s)
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			obj := a.p.Info.Defs[id]
			if obj == nil {
				obj = a.p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			delete(s, obj)
			if t := a.p.Info.TypeOf(id); fromBorrowed && t != nil && typeRetains(t) {
				s[obj] = factBorrowed
			}
		}
		return
	}

	// Decodes mark their scratch borrowed (unless the fresh-local shape
	// exempted the call).
	inspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := isUnmarshalInto(a.p, call)
		if !ok || !a.reused[call] {
			return true
		}
		obj := a.p.Info.Uses[id]
		if obj == nil {
			obj = a.p.Info.Defs[id]
		}
		if obj != nil {
			s[obj] |= factBorrowed
		}
		return true
	})

	if check {
		a.checkEscapes(n, s)
	}

	// Assignment transfer: borrowedness flows with the value.
	switch st := n.(type) {
	case *ast.AssignStmt:
		a.assign(st.Lhs, st.Rhs, s)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					a.assign(lhs, vs.Values, s)
				}
			}
		}
	}

	// Closure captures: a literal that outlives this statement may run
	// after the next decode.
	if check {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if fl, ok := call.Fun.(*ast.FuncLit); ok && isImmediatelyInvoked(call, fl) {
					return true // synchronous; nested literals still visited
				}
			}
			fl, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			for obj := range freeVars(a.p, fl) {
				if s[obj]&factBorrowed != 0 && typeRetains(obj.Type()) {
					a.report(fl.Pos(), obj.Name()+" aliases an UnmarshalInto scratch and is captured by a closure that may outlive this decode; copy the needed data first")
					break
				}
			}
			return false
		})
	}
}

// assign moves borrowed facts across an assignment. Storing a borrowed
// value into a parameter, receiver, or package variable escapes the
// function; storing it into a local just marks the local borrowed.
func (a *borrowFlow) assign(lhs, rhs []ast.Expr, s flowState) {
	rhsBorrowed := func(i int) bool {
		if len(lhs) == len(rhs) {
			return a.borrowed(rhs[i], s)
		}
		return false // tuple results are fresh
	}
	for i, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			obj := a.p.Info.Defs[id]
			if obj == nil {
				obj = a.p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if rhsBorrowed(i) {
				s[obj] |= factBorrowed
			} else {
				delete(s, obj)
			}
			continue
		}
		// Store through a selector/index/deref: the target's root keeps
		// the alias alive.
		if rhsBorrowed(i) {
			if obj := rootIdentObj(a.p, l); obj != nil && !a.params[obj] && !a.isPackageLevel(obj) {
				s[obj] |= factBorrowed
			}
		}
	}
}

func (a *borrowFlow) isPackageLevel(obj types.Object) bool {
	return obj.Parent() == a.p.Types.Scope()
}

// checkEscapes reports borrowed values that leave the borrowing function.
func (a *borrowFlow) checkEscapes(n ast.Node, s flowState) {
	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if a.borrowed(r, s) {
					a.report(r.Pos(), types.ExprString(r)+" aliases an UnmarshalInto scratch and is returned without a copy; the next decode into the same scratch overwrites it")
				}
			}
		case *ast.SendStmt:
			if a.borrowed(st.Value, s) {
				a.report(st.Value.Pos(), types.ExprString(st.Value)+" aliases an UnmarshalInto scratch and is sent on a channel; the receiver may read it after the next decode")
			}
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				var src ast.Expr
				if len(st.Lhs) == len(st.Rhs) {
					src = st.Rhs[i]
				}
				if src == nil || !a.borrowed(src, s) {
					continue
				}
				var root types.Object
				if id, ok := l.(*ast.Ident); ok {
					root = a.p.Info.Uses[id]
				} else {
					root = rootIdentObj(a.p, l)
				}
				if root != nil && (a.params[root] || a.isPackageLevel(root)) {
					a.report(st.Pos(), types.ExprString(src)+" aliases an UnmarshalInto scratch and is stored outside the function via "+root.Name()+"; copy it first")
				}
			}
		case *ast.GoStmt:
			for _, arg := range st.Call.Args {
				if a.borrowed(arg, s) {
					a.report(arg.Pos(), types.ExprString(arg)+" aliases an UnmarshalInto scratch and is passed to a goroutine; it may run after the next decode")
				}
			}
		case *ast.DeferStmt:
			for _, arg := range st.Call.Args {
				if a.borrowed(arg, s) {
					a.report(arg.Pos(), types.ExprString(arg)+" aliases an UnmarshalInto scratch and is passed to a deferred call that runs after later decodes")
				}
			}
		}
		return true
	})
}

func (a *borrowFlow) report(pos token.Pos, msg string) {
	if !a.reporting {
		return
	}
	a.findings = append(a.findings, Finding{
		Pos:      a.p.Fset.Position(pos),
		Analyzer: "borrowescape",
		Message:  msg,
	})
}
