package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags `range` over a map whose loop body has
// order-sensitive effects — appending to a slice that outlives the loop,
// printing, sending on a channel, writing to a stream/encoder, or
// scheduling simulator events — unless every such append target is sorted
// after the loop (the collect-then-sort idiom).
//
// Go randomizes map iteration order per run, so any of these effects turns
// a map range into per-run nondeterminism: event logs reorder, checkpoints
// stop being byte-identical, scheduled events get different sequence
// numbers. Order-insensitive bodies (counting, summing, writing into
// another map, finding a max) are not flagged.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map with order-sensitive effects needs sorted keys",
	Run:  runMapOrder,
}

// mapEffect is one order-sensitive effect found in a map-range body.
type mapEffect struct {
	desc   string
	target types.Object // append destination, nil for non-append effects
	expr   string       // printed append destination, for selector targets
}

// emissionMethods are method names whose call inside a map-range body emits
// ordered output: stream writers, encoders and the simulator's scheduling
// entry points.
var emissionMethods = map[string]bool{
	"Write":         true,
	"WriteString":   true,
	"WriteByte":     true,
	"WriteRune":     true,
	"Encode":        true,
	"Schedule":      true,
	"ScheduleAt":    true,
	"ScheduleTimer": true,
	"After":         true,
	"At":            true,
	"CrossAt":       true,
}

func runMapOrder(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		// Walk per enclosing function so the sorted-after-the-loop
		// exemption can scan the rest of the function body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.RangeStmt:
					if !p.isMapRange(x) {
						return true
					}
					effects := p.mapOrderEffects(x.Body, x.Pos(), x.End())
					if len(effects) == 0 || p.allAppendsSorted(body, x.End(), effects) {
						return true
					}
					out = append(out, Finding{
						Pos:      p.Fset.Position(x.Pos()),
						Analyzer: "maporder",
						Message: "map iteration order is randomized but the loop body " +
							effects[0].desc + "; sort the keys first (or //lint:allow with a reason)",
					})
				case *ast.CallExpr:
					// sync.Map.Range iterates in unspecified order, exactly
					// like a map range: the callback body gets the same
					// effect analysis and collect-then-sort exemption.
					fl := p.syncMapRangeBody(x)
					if fl == nil {
						return true
					}
					effects := p.mapOrderEffects(fl.Body, fl.Pos(), fl.End())
					if len(effects) == 0 || p.allAppendsSorted(body, x.End(), effects) {
						return true
					}
					out = append(out, Finding{
						Pos:      p.Fset.Position(x.Pos()),
						Analyzer: "maporder",
						Message: "sync.Map.Range iteration order is unspecified but the callback " +
							effects[0].desc + "; collect and sort the keys first (or //lint:allow with a reason)",
					})
				}
				return true
			})
			return true
		})
	}
	return out
}

func (p *Package) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// syncMapRangeBody returns the callback literal when call is
// (*sync.Map).Range(func(k, v any) bool { ... }), nil otherwise.
func (p *Package) syncMapRangeBody(call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return nil
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Map" || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil
	}
	fl, _ := call.Args[0].(*ast.FuncLit)
	return fl
}

// mapOrderEffects collects the order-sensitive effects of an iteration body
// (a map-range body or a sync.Map.Range callback spanning [lo, hi)).
func (p *Package) mapOrderEffects(body ast.Node, lo, hi token.Pos) []mapEffect {
	var effects []mapEffect
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) || i >= len(s.Lhs) {
					continue
				}
				target, root, expr := p.assignTarget(s.Lhs[i])
				if root != nil && lo <= root.Pos() && root.Pos() < hi {
					// Per-iteration target: a temporary, or a field of
					// per-key state (ls := m[key]; ls.xs = append(...)).
					// Each iteration touches its own target, so order
					// across keys cannot matter.
					continue
				}
				effects = append(effects, mapEffect{
					desc:   "appends to " + expr + ", which outlives the loop",
					target: target,
					expr:   expr,
				})
			}
		case *ast.SendStmt:
			effects = append(effects, mapEffect{desc: "sends on a channel"})
		case *ast.CallExpr:
			if d := p.emissionCall(s); d != "" {
				effects = append(effects, mapEffect{desc: d})
			}
		}
		return true
	})
	return effects
}

// assignTarget resolves an append destination to its object (for plain
// identifiers), the object of the root identifier of its selector chain,
// and its printed form.
func (p *Package) assignTarget(lhs ast.Expr) (target, root types.Object, expr string) {
	expr = types.ExprString(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		return obj, obj, expr
	}
	// Selector or index destination: identified by text; escape analysis
	// falls back to the root identifier (the s of s.field).
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return nil, obj, expr
		default:
			return nil, nil, expr
		}
	}
}

func (p *Package) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// emissionCall reports whether the call prints, writes to a stream or
// schedules events, returning a description ("" if not).
func (p *Package) emissionCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if importedPackage(p, sel.X) == "fmt" &&
		(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
		return "prints with fmt." + sel.Sel.Name
	}
	if emissionMethods[sel.Sel.Name] {
		if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			return "calls " + types.ExprString(sel) + ", which emits in iteration order"
		}
	}
	return ""
}

// allAppendsSorted reports whether every effect is an append whose target is
// passed to a sort.* / slices.Sort* call after the iteration (which ends at
// end) in the same function.
func (p *Package) allAppendsSorted(fnBody *ast.BlockStmt, end token.Pos, effects []mapEffect) bool {
	for _, e := range effects {
		if e.target == nil && e.expr == "" {
			return false // non-append effect: never exempt
		}
		if !p.sortedAfter(fnBody, end, e) {
			return false
		}
	}
	return true
}

func (p *Package) sortedAfter(fnBody *ast.BlockStmt, end token.Pos, e mapEffect) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < end {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := importedPackage(p, sel.X)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		// Any argument subtree mentioning the append target counts: it
		// covers sort.Strings(keys), sort.Slice(keys, less) and
		// slices.SortFunc(keys, cmp) alike.
		for _, arg := range call.Args {
			if p.mentions(arg, e) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether the expression subtree references the effect's
// append target, by object identity or printed form.
func (p *Package) mentions(expr ast.Expr, e mapEffect) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if hit {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if e.target != nil && p.Info.Uses[x] == e.target {
				hit = true
			}
		case *ast.SelectorExpr:
			if e.target == nil && e.expr != "" && types.ExprString(x) == e.expr {
				hit = true
			}
		}
		return !hit
	})
	return hit
}
