// Intra-procedural dataflow engine: CFG construction over go/ast plus a
// forward worklist fixpoint over per-variable facts.
//
// The PR 4 analyzers are syntactic pattern matchers; the PR 9 sim-core
// idioms (pooled packets/events, borrow-semantics decode scratch, sharded
// parallel scheduling) have PATH-sensitive contracts — "a packet must not
// be used after Put *along any execution path*", "the scratch must not be
// referenced after the borrowing function returns". This file gives the
// analyzers an SSA-lite substrate for those checks:
//
//   - buildCFG turns one function body into basic blocks of "simple" nodes
//     (plain statements and control-header expressions) connected by the
//     possible control-flow edges, including loop back edges, switch/select
//     fan-out, break/continue (labeled too) and panic/return terminators.
//   - funcCFG.forward runs a classic reaching-definitions-style worklist to
//     a fixed point: facts are a map from variable (types.Object) to a fact
//     bitmask, the join is bitwise-or per variable (may-analysis), and the
//     analyzer's transfer function generates and kills facts per node.
//   - funcCFG.replay walks every reachable block once more from its stable
//     in-state so the analyzer can report at the exact node where a bad
//     state is observed, with the same transfer function — check and
//     transfer can never disagree.
//
// The engine is deliberately intra-procedural: calls are opaque (a callee
// neither releases nor retains unless the analyzer says so), which keeps
// the analyzers fast, deterministic and explainable. goto is treated as a
// terminator (its facts are conservatively dropped); the repo has none.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// varFact is a bitmask of analyzer-specific facts about one variable. The
// fact space is shared so every analyzer can ride the same flowState; each
// analyzer documents the bits it uses.
type varFact uint16

const (
	// poolsafe
	factPooled   varFact = 1 << iota // holds the result of a pool Get/alloc
	factReleased                     // pool Put/release was called on it
	factEscaped                      // a retaining reference escaped (field/slice/map/closure)
	// borrowescape
	factBorrowed // aliases an UnmarshalInto decode scratch
)

// flowState maps variables to their current facts. The absence of an entry
// is the bottom fact (nothing known).
type flowState map[types.Object]varFact

func (s flowState) clone() flowState {
	c := make(flowState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinFrom merges src into s with per-variable bitwise-or (the may-analysis
// join) and reports whether s changed. Monotone, so the fixpoint terminates.
func (s flowState) joinFrom(src flowState) bool {
	changed := false
	for k, v := range src {
		if old, ok := s[k]; !ok || old|v != old {
			s[k] = old | v
			changed = true
		}
	}
	return changed
}

// cfgBlock is one basic block: simple nodes in execution order plus the
// possible successors.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is a virtual
// empty block every return/panic/fallthrough-off-the-end edge targets.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock // creation order: deterministic iteration for reporting
}

// buildCFG constructs the CFG of one function body. The nodes stored in
// blocks are either plain statements (assignments, calls, sends, returns,
// declarations, defers), control-header expressions (if/for conditions,
// switch tags, case expressions, range operands) or a *ast.RangeStmt
// header marker standing for the per-iteration key/value (re)definition —
// never a compound statement, so transfer functions can inspect each node
// in full without double-visiting a nested body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{exit: &cfgBlock{}}
	b := &cfgBuilder{g: g,
		labelBreak: make(map[string]*cfgBlock),
		labelCont:  make(map[string]*cfgBlock),
	}
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	b.link(b.cur, g.exit)
	g.blocks = append(g.blocks, g.exit)
	return g
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	breaks     []*cfgBlock // innermost-last break targets (loops, switch, select)
	continues  []*cfgBlock // innermost-last continue targets (loops)
	labelBreak map[string]*cfgBlock
	labelCont  map[string]*cfgBlock
	label      string // pending label for the next loop/switch statement
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// takeLabel consumes the pending label of a labeled loop/switch statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		b.label = st.Label.Name
		b.stmt(st.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmtList(st.Body.List)
		b.link(b.cur, join)
		if st.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(st.Else)
			b.link(b.cur, join)
		} else {
			b.link(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		bodyB := b.newBlock()
		postB := b.newBlock()
		exitB := b.newBlock()
		b.link(head, bodyB)
		// Conservative: even `for {}` gets an exit edge; a missing path
		// only weakens facts, never fabricates them.
		b.link(head, exitB)
		b.pushLoop(exitB, postB, label)
		b.cur = bodyB
		b.stmtList(st.Body.List)
		b.popLoop(label)
		b.link(b.cur, postB)
		b.cur = postB
		if st.Post != nil {
			b.add(st.Post)
		}
		b.link(postB, head)
		b.cur = exitB

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(st.X)
		head := b.newBlock()
		b.link(b.cur, head)
		// The RangeStmt itself marks the per-iteration key/value
		// (re)definition; transfer functions treat it as a kill of the
		// iteration variables and must not descend into X or Body.
		head.nodes = append(head.nodes, st)
		bodyB := b.newBlock()
		exitB := b.newBlock()
		b.link(head, bodyB)
		b.link(head, exitB)
		b.pushLoop(exitB, head, label)
		b.cur = bodyB
		b.stmtList(st.Body.List)
		b.popLoop(label)
		b.link(b.cur, head)
		b.cur = exitB

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			if sw.Tag != nil {
				b.add(sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			b.add(sw.Assign)
			bodyList = sw.Body.List
		}
		cond := b.cur
		join := b.newBlock()
		b.pushBreak(join, label)
		hasDefault := false
		var fall *cfgBlock // previous case body end, when it falls through
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.link(cond, caseB)
			if fall != nil {
				b.link(fall, caseB)
				fall = nil
			}
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				caseB.nodes = append(caseB.nodes, e)
			}
			b.cur = caseB
			b.stmtList(cc.Body)
			if endsInFallthrough(cc.Body) {
				fall = b.cur
			} else {
				b.link(b.cur, join)
			}
		}
		if fall != nil {
			b.link(fall, join)
		}
		if !hasDefault {
			b.link(cond, join)
		}
		b.popBreak(label)
		b.cur = join

	case *ast.SelectStmt:
		label := b.takeLabel()
		cond := b.cur
		join := b.newBlock()
		b.pushBreak(join, label)
		for _, cs := range st.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			clauseB := b.newBlock()
			b.link(cond, clauseB)
			b.cur = clauseB
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, join)
		}
		if len(st.Body.List) == 0 {
			b.link(cond, join)
		}
		b.popBreak(label)
		b.cur = join

	case *ast.ReturnStmt:
		b.add(st)
		b.link(b.cur, b.g.exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			target := b.g.exit
			if st.Label != nil {
				if t, ok := b.labelBreak[st.Label.Name]; ok {
					target = t
				}
			} else if n := len(b.breaks); n > 0 {
				target = b.breaks[n-1]
			}
			b.link(b.cur, target)
			b.cur = b.newBlock()
		case token.CONTINUE:
			target := b.g.exit
			if st.Label != nil {
				if t, ok := b.labelCont[st.Label.Name]; ok {
					target = t
				}
			} else if n := len(b.continues); n > 0 {
				target = b.continues[n-1]
			}
			b.link(b.cur, target)
			b.cur = b.newBlock()
		case token.GOTO:
			// Conservative terminator: facts die here rather than flow
			// along an edge the builder does not model.
			b.link(b.cur, b.g.exit)
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Edge added by the switch builder.
		}

	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st.X) {
			b.link(b.cur, b.g.exit)
			b.cur = b.newBlock()
		}

	default:
		// Assign, IncDec, Send, Decl, Defer, Go, Empty: simple nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock, label string) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

func (b *cfgBuilder) pushBreak(brk *cfgBlock, label string) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labelBreak[label] = brk
	}
}

func (b *cfgBuilder) popBreak(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	bs, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// forward runs the transfer function over the CFG to a fixed point and
// returns every reachable block's stable in-state. transfer mutates the
// state in place; it must be deterministic and monotone in the facts it
// generates (kills are fine — the join re-adds facts from other paths).
func (g *funcCFG) forward(entry flowState, transfer func(n ast.Node, s flowState)) map[*cfgBlock]flowState {
	in := map[*cfgBlock]flowState{g.entry: entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := in[blk].clone()
		for _, n := range blk.nodes {
			transfer(n, out)
		}
		for _, succ := range blk.succs {
			s, ok := in[succ]
			if !ok {
				in[succ] = out.clone()
			} else if !s.joinFrom(out) {
				continue
			}
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// replay walks each reachable block once in deterministic creation order,
// calling visit before transfer on every node with the exact state the
// fixpoint computed. Analyzers report their findings from visit.
func (g *funcCFG) replay(in map[*cfgBlock]flowState,
	transfer func(n ast.Node, s flowState), visit func(n ast.Node, s flowState)) {
	for _, blk := range g.blocks {
		state, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		s := state.clone()
		for _, n := range blk.nodes {
			visit(n, s)
			transfer(n, s)
		}
	}
}

// --- shared expression helpers for the dataflow analyzers ---

// rootIdentObj resolves the leftmost identifier of a selector / index /
// slice / paren / star / unary-& chain to its object, or nil.
func rootIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// inspectNoFuncLit walks the subtree like ast.Inspect but does not descend
// into function literals: a closure body is a separate function for the
// intra-procedural analyses (captures are handled explicitly).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// freeVars returns the objects referenced inside the function literal that
// are declared outside it — the closure's captured variables.
func freeVars(p *Package, fl *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() >= fl.End() {
			out[obj] = true
		}
		return true
	})
	return out
}

// isImmediatelyInvoked reports whether parent is a call whose Fun is the
// literal itself (func(){...}() runs synchronously; capturing is harmless).
func isImmediatelyInvoked(parent ast.Node, fl *ast.FuncLit) bool {
	call, ok := parent.(*ast.CallExpr)
	return ok && call.Fun == fl
}

// typeRetains reports whether a value of type t can keep the memory it was
// derived from alive: slices, pointers, maps, channels, funcs, interfaces,
// and structs/arrays containing any of those. Plain scalars (and structs of
// scalars, like wire.Header) copy by value and retain nothing.
func typeRetains(t types.Type) bool {
	return typeRetainsSeen(t, make(map[types.Type]bool))
}

func typeRetainsSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeRetainsSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRetainsSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
