package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks one source file and returns the body of the named
// function, its FileSet, and the objects of its local variables keyed by
// name. The CFG and fixpoint engine are exercised directly, without the
// analyzer layer.
func parseFunc(t *testing.T, src, name string) (*ast.BlockStmt, *token.FileSet, map[string]types.Object) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	vars := make(map[string]types.Object)
	for id, obj := range info.Defs {
		if _, ok := obj.(*types.Var); ok {
			vars[id.Name] = obj
		}
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body, fset, vars
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// markTransfer sets fact on obj whenever a node's source mentions marker, and
// kills it whenever the source mentions killer. Good enough to trace which
// facts survive which CFG paths.
func markTransfer(fset *token.FileSet, src string, obj types.Object, marker, killer string) func(ast.Node, flowState) {
	return func(n ast.Node, s flowState) {
		text := nodeText(fset, src, n)
		if marker != "" && strings.Contains(text, marker) {
			s[obj] |= factPooled
		}
		if killer != "" && strings.Contains(text, killer) {
			delete(s, obj)
		}
	}
}

func nodeText(fset *token.FileSet, src string, n ast.Node) string {
	if n == nil {
		return ""
	}
	lo := fset.Position(n.Pos()).Offset
	hi := fset.Position(n.End()).Offset
	if lo < 0 || hi > len(src) || lo > hi {
		return ""
	}
	return src[lo:hi]
}

// collectVisited replays the CFG and returns the source text of every node
// the engine visits, in deterministic block-creation order.
func collectVisited(g *funcCFG, in map[*cfgBlock]flowState, fset *token.FileSet, src string) []string {
	var visited []string
	g.replay(in, func(ast.Node, flowState) {}, func(n ast.Node, s flowState) {
		visited = append(visited, nodeText(fset, src, n))
	})
	return visited
}

// TestCFGReturnUnreachable asserts statements after an unconditional return
// land in a block the fixpoint never reaches: no facts flow into them and
// replay skips them.
func TestCFGReturnUnreachable(t *testing.T) {
	src := `package p
func f() int {
	x := 1
	return x
	x = 2 //nolint
	return x
}`
	body, fset, _ := parseFunc(t, src, "f")
	g := buildCFG(body)
	in := g.forward(make(flowState), func(ast.Node, flowState) {})
	for _, text := range collectVisited(g, in, fset, src) {
		if strings.Contains(text, "x = 2") {
			t.Fatalf("statement after return was treated as reachable: %q", text)
		}
	}
}

// TestCFGPanicTerminates asserts panic(...) ends its block like return: the
// code after it is unreachable, so facts from the panicking path never merge
// into the rest of the function.
func TestCFGPanicTerminates(t *testing.T) {
	src := `package p
func f(bad bool) int {
	x := 1
	if bad {
		panic("no")
		x = 99
	}
	return x
}`
	body, fset, _ := parseFunc(t, src, "f")
	g := buildCFG(body)
	in := g.forward(make(flowState), func(ast.Node, flowState) {})
	for _, text := range collectVisited(g, in, fset, src) {
		if strings.Contains(text, "x = 99") {
			t.Fatalf("statement after panic was treated as reachable: %q", text)
		}
	}
}

// TestCFGLoopBackEdge asserts a fact generated inside a loop body flows along
// the back edge: on re-entry the loop header observes it, which is exactly
// what lets poolsafe catch a Put in iteration i followed by a use in i+1.
func TestCFGLoopBackEdge(t *testing.T) {
	src := `package p
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		mark := x
		_ = mark
	}
}`
	body, fset, vars := parseFunc(t, src, "f")
	obj := vars["x"]
	if obj == nil {
		t.Fatal("variable x not found")
	}
	transfer := markTransfer(fset, src, obj, "mark := x", "")
	g := buildCFG(body)
	in := g.forward(make(flowState), transfer)
	// The condition i < n is re-evaluated after the body: its in-state must
	// carry the fact set inside the body, proving the back edge joined.
	sawCondWithFact := false
	g.replay(in, transfer, func(n ast.Node, s flowState) {
		if nodeText(fset, src, n) == "i < n" && s[obj]&factPooled != 0 {
			sawCondWithFact = true
		}
	})
	if !sawCondWithFact {
		t.Fatal("fact generated in the loop body did not flow along the back edge to the header")
	}
}

// TestCFGBranchJoin asserts the may-join: a fact set on only one arm of an if
// survives the merge (bitwise-or), while a kill on one arm does not erase the
// fact flowing around the other arm.
func TestCFGBranchJoin(t *testing.T) {
	src := `package p
func f(c bool) {
	x := 0
	if c {
		mark := x
		_ = mark
	}
	after := x
	_ = after
}`
	body, fset, vars := parseFunc(t, src, "f")
	obj := vars["x"]
	transfer := markTransfer(fset, src, obj, "mark := x", "")
	g := buildCFG(body)
	in := g.forward(make(flowState), transfer)
	sawAfterWithFact := false
	g.replay(in, transfer, func(n ast.Node, s flowState) {
		if strings.Contains(nodeText(fset, src, n), "after := x") && s[obj]&factPooled != 0 {
			sawAfterWithFact = true
		}
	})
	if !sawAfterWithFact {
		t.Fatal("fact set on one branch arm did not survive the may-join")
	}
}

// TestCFGKillOneArm asserts a kill on one arm leaves the fact reachable via
// the other arm after the join — the may-analysis keeps the dangerous path.
func TestCFGKillOneArm(t *testing.T) {
	src := `package p
func f(c bool) {
	x := 0
	mark := x
	_ = mark
	if c {
		kill := x
		_ = kill
	}
	after := x
	_ = after
}`
	body, fset, vars := parseFunc(t, src, "f")
	obj := vars["x"]
	transfer := markTransfer(fset, src, obj, "mark := x", "kill := x")
	g := buildCFG(body)
	in := g.forward(make(flowState), transfer)
	sawAfterWithFact := false
	g.replay(in, transfer, func(n ast.Node, s flowState) {
		if strings.Contains(nodeText(fset, src, n), "after := x") && s[obj]&factPooled != 0 {
			sawAfterWithFact = true
		}
	})
	if !sawAfterWithFact {
		t.Fatal("kill on one arm erased the fact flowing around the other arm")
	}
}

// TestCFGBreakSkipsRest asserts break routes facts to the loop exit without
// flowing through the remainder of the body.
func TestCFGBreakSkipsRest(t *testing.T) {
	src := `package p
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			mark := x
			_ = mark
			break
		}
		kill := x
		_ = kill
	}
	after := x
	_ = after
}`
	body, fset, vars := parseFunc(t, src, "f")
	obj := vars["x"]
	transfer := markTransfer(fset, src, obj, "mark := x", "kill := x")
	g := buildCFG(body)
	in := g.forward(make(flowState), transfer)
	sawAfterWithFact := false
	g.replay(in, transfer, func(n ast.Node, s flowState) {
		if strings.Contains(nodeText(fset, src, n), "after := x") && s[obj]&factPooled != 0 {
			sawAfterWithFact = true
		}
	})
	if !sawAfterWithFact {
		t.Fatal("fact carried by break did not reach the statement after the loop")
	}
}

// TestCFGSwitchFanOut asserts every case body receives the pre-switch state
// and their outcomes join after the switch.
func TestCFGSwitchFanOut(t *testing.T) {
	src := `package p
func f(n int) {
	x := 0
	switch n {
	case 1:
		kill := x
		_ = kill
	case 2:
		mark := x
		_ = mark
	}
	after := x
	_ = after
}`
	body, fset, vars := parseFunc(t, src, "f")
	obj := vars["x"]
	transfer := markTransfer(fset, src, obj, "mark := x", "kill := x")
	g := buildCFG(body)
	in := g.forward(make(flowState), transfer)
	sawAfterWithFact := false
	g.replay(in, transfer, func(n ast.Node, s flowState) {
		if strings.Contains(nodeText(fset, src, n), "after := x") && s[obj]&factPooled != 0 {
			sawAfterWithFact = true
		}
	})
	if !sawAfterWithFact {
		t.Fatal("fact set in one switch case did not survive the post-switch join")
	}
}

// TestJoinFrom pins the flowState lattice operations directly.
func TestJoinFrom(t *testing.T) {
	a := types.NewVar(token.NoPos, nil, "a", types.Typ[types.Int])
	b := types.NewVar(token.NoPos, nil, "b", types.Typ[types.Int])
	s := flowState{a: factPooled}
	src := flowState{a: factReleased, b: factBorrowed}
	if !s.joinFrom(src) {
		t.Fatal("joinFrom reported no change when merging new facts")
	}
	if s[a] != factPooled|factReleased || s[b] != factBorrowed {
		t.Fatalf("joinFrom merged wrong facts: a=%b b=%b", s[a], s[b])
	}
	if s.joinFrom(src) {
		t.Fatal("joinFrom reported a change on an already-subsumed merge; the fixpoint would not terminate")
	}
	c := s.clone()
	c[a] |= factEscaped
	if s[a]&factEscaped != 0 {
		t.Fatal("clone shares storage with the original state")
	}
}

// TestTypeRetains pins the escape-relevance classification used by poolsafe
// and borrowescape, including recursion through structs and self-referential
// types.
func TestTypeRetains(t *testing.T) {
	intT := types.Typ[types.Int]
	if typeRetains(intT) {
		t.Error("int must not retain")
	}
	if !typeRetains(types.NewSlice(intT)) {
		t.Error("[]int must retain")
	}
	if !typeRetains(types.NewPointer(intT)) {
		t.Error("*int must retain")
	}
	scalarStruct := types.NewStruct([]*types.Var{
		types.NewField(token.NoPos, nil, "a", intT, false),
		types.NewField(token.NoPos, nil, "b", types.Typ[types.Float64], false),
	}, nil)
	if typeRetains(scalarStruct) {
		t.Error("struct of scalars must not retain")
	}
	sliceStruct := types.NewStruct([]*types.Var{
		types.NewField(token.NoPos, nil, "xs", types.NewSlice(intT), false),
	}, nil)
	if !typeRetains(sliceStruct) {
		t.Error("struct containing a slice must retain")
	}
	if typeRetains(types.NewArray(intT, 4)) {
		t.Error("[4]int must not retain")
	}
	if !typeRetains(types.NewArray(types.NewPointer(intT), 4)) {
		t.Error("[4]*int must retain")
	}
}
