package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqSegments scopes the check to the numerical packages: the stats
// helpers, the experiment sweeps and the detector itself, where a drifting
// accumulation compared with == silently flips results between platforms
// and optimization levels.
var floatEqSegments = map[string]bool{
	"stats": true,
	"exp":   true,
	"fancy": true,
}

// AnalyzerFloatEq flags == and != between floating-point operands.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "floating-point == / != in stats, exp and fancy; compare with an epsilon or integers",
	Run:  runFloatEq,
}

func runFloatEq(p *Package) []Finding {
	if !pathHasSegment(p, floatEqSegments) {
		return nil
	}
	isFloat := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(be.X) && !isFloat(be.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(be.OpPos),
				Analyzer: "floateq",
				Message: "floating-point " + be.Op.String() + " is exact-bit comparison; " +
					"use an epsilon, integer units, or justify with //lint:allow",
			})
			return true
		})
	}
	return out
}
