// Fixture for the poolsafe analyzer: ownership of objects handed out by a
// Get/Put pool, mirroring netsim.PacketPool's contract.
package pool

// Buf is the pooled object.
type Buf struct {
	Data []byte
	N    int
}

// BufPool is the pool shape the analyzer recognizes (type name ends in
// "Pool", Get()/Put(x) methods).
type BufPool struct {
	free []*Buf
}

// Get hands out a buffer; the caller owns it until Put.
func (p *BufPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{}
}

// Put returns ownership to the pool.
func (p *BufPool) Put(b *Buf) {
	p.free = append(p.free, b)
}

var sink []*Buf

// UseAfterPut writes a field of a buffer already returned to the pool
// (true positive: use-after-Put).
func UseAfterPut(p *BufPool) {
	b := p.Get()
	b.N = 1
	p.Put(b)
	b.Data = nil
}

// DoublePutBranch returns the buffer on the conditional path and then
// unconditionally, so one path releases twice (true positive: double-Put).
func DoublePutBranch(p *BufPool, cond bool) {
	b := p.Get()
	if cond {
		p.Put(b)
	}
	p.Put(b)
}

// DoublePutLoop releases inside a loop; the back edge carries the released
// fact into the next iteration (true positive: double-Put).
func DoublePutLoop(p *BufPool, n int) {
	b := p.Get()
	for i := 0; i < n; i++ {
		p.Put(b)
	}
}

// PutAfterStore parks the buffer in a package-level slice and then returns
// it to the pool, leaving sink pointing at recycled memory (true positive:
// Put after escape).
func PutAfterStore(p *BufPool) {
	b := p.Get()
	sink = append(sink, b)
	p.Put(b)
}

// PutAfterCapture hands the buffer to a closure that outlives the
// statement, then returns it to the pool (true positive: Put after escape).
func PutAfterCapture(p *BufPool, defer_ func(func())) {
	b := p.Get()
	defer_(func() { b.N++ })
	p.Put(b)
}

// BranchSeparated releases on one path and keeps using the buffer on the
// other; the paths never mix (true negative).
func BranchSeparated(p *BufPool, cond bool) int {
	b := p.Get()
	if cond {
		p.Put(b)
		return 0
	}
	b.N = 2
	return b.N
}

// CopyOutThenPut copies the needed value out before releasing, the idiom
// Sim.Run uses for pooled events (true negative).
func CopyOutThenPut(p *BufPool) int {
	b := p.Get()
	n := b.N
	p.Put(b)
	return n
}

// ReacquireKills re-Gets into the same variable after a Put; the fresh
// definition ends the released state (true negative).
func ReacquireKills(p *BufPool) {
	b := p.Get()
	p.Put(b)
	b = p.Get()
	b.N = 3
	p.Put(b)
}

// DeferredPut schedules the release for function exit, after every use
// (true negative).
func DeferredPut(p *BufPool) int {
	b := p.Get()
	defer p.Put(b)
	b.N = 4
	return b.N
}

// ImmediateClosure invokes the capturing literal on the spot, so nothing
// outlives the statement (true negative).
func ImmediateClosure(p *BufPool) {
	b := p.Get()
	func() { b.N++ }()
	p.Put(b)
}

// SuppressedUseAfterPut demonstrates a justified suppression.
func SuppressedUseAfterPut(p *BufPool) {
	b := p.Get()
	p.Put(b)
	b.N = 5 //lint:allow poolsafe fixture exercises the recycled-write path on purpose
}
