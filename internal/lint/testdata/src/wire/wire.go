// Fixture mirroring internal/wire's borrow-semantics decode surface, so the
// borrowescape fixtures can exercise recognition of UnmarshalInto.
package wire

// Target is a retaining sub-struct (holds a slice).
type Target struct {
	Addr []byte
	Port int
}

// Message is the decode scratch shape.
type Message struct {
	N        int
	Counters []uint64
	Targets  []Target
	Path     []byte
}

// UnmarshalInto decodes b into m, reusing m's slice capacity. The decoded
// contents are borrowed: valid only until the next UnmarshalInto into the
// same m.
func UnmarshalInto(b []byte, m *Message) {
	m.N = len(b)
	m.Counters = m.Counters[:0]
	m.Targets = m.Targets[:0]
	m.Path = append(m.Path[:0], b...)
	for _, c := range b {
		m.Counters = append(m.Counters, uint64(c))
	}
}

// Unmarshal allocates a fresh message per call; its result owns its memory
// (true negative: the fresh-scratch shape is exempt).
func Unmarshal(b []byte) *Message {
	m := new(Message)
	UnmarshalInto(b, m)
	return m
}
