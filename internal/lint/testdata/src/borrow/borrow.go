// Fixture for the borrowescape analyzer: values aliasing a reused
// wire.UnmarshalInto scratch escaping the borrowing function.
package borrow

import "fixture/wire"

// Decoder reuses one scratch message across decodes, like the detector's
// control-plane ingress path.
type Decoder struct {
	scratch wire.Message
	last    []uint64
}

var history [][]byte

// Counters returns a slice still aliasing the reused scratch (true
// positive: returned without a copy).
func (d *Decoder) Counters(b []byte) []uint64 {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	return m.Counters
}

// Remember parks a scratch alias in a field reachable by the caller (true
// positive: stored outside the function).
func (d *Decoder) Remember(b []byte) {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	d.last = m.Counters
}

// Watch hands a scratch alias to a closure that outlives the decode (true
// positive: capture).
func (d *Decoder) Watch(b []byte, after func(func())) {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	after(func() { _ = m.Counters })
}

// Collect reuses one local scratch across loop iterations and retains its
// path bytes in a package variable (true positive: loop-reused local).
func Collect(frames [][]byte) {
	var m wire.Message
	for _, f := range frames {
		wire.UnmarshalInto(f, &m)
		history = append(history, m.Path)
	}
}

// Parse allocates a fresh scratch per call, the wire.Unmarshal shape (true
// negative).
func Parse(b []byte) *wire.Message {
	m := new(wire.Message)
	wire.UnmarshalInto(b, m)
	return m
}

// RememberCopy copies the counters out before retaining them (true
// negative).
func (d *Decoder) RememberCopy(b []byte) {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	c := make([]uint64, len(m.Counters))
	copy(c, m.Counters)
	d.last = c
}

// Sum only reads scalars out of the borrowed scratch (true negative).
func (d *Decoder) Sum(b []byte) uint64 {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	var s uint64
	for _, v := range m.Counters {
		s += v
	}
	return s
}

// Flatten copies the borrowed bytes via append's element copy (true
// negative: ellipsis append of a scalar-element slice).
func (d *Decoder) Flatten(b []byte) []byte {
	out := []byte{}
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	out = append(out, m.Path...)
	return out
}

// Dispatch passes the scratch to an ordinary synchronous call, which is the
// sanctioned consumption pattern (true negative).
func (d *Decoder) Dispatch(b []byte, handle func(*wire.Message)) {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	handle(m)
}

// Peek demonstrates a justified suppression.
func (d *Decoder) Peek(b []byte) []uint64 {
	m := &d.scratch
	wire.UnmarshalInto(b, m)
	return m.Counters //lint:allow borrowescape fixture caller consumes the slice before the next decode
}
