// Fixture for the shardsafe analyzer: state written from parallel-scheduler
// shard callbacks without the barrier merge.
package shard

import "fixture/sim"

// FanOutShared bumps one shared counter from a callback scheduled on every
// shard (true positive: cross-shard write, racy accumulate).
func FanOutShared(s *sim.Sim, n int) int {
	total := 0
	shards := s.Shards(n)
	for i := 0; i < n; i++ {
		shards[i].At(10, func() {
			total++
		})
	}
	return total
}

// FanOutMap writes a map from every shard, one key per shard (true
// positive: concurrent map writes fault even with disjoint keys).
func FanOutMap(s *sim.Sim, n int) map[int]int {
	res := map[int]int{}
	for i := 0; i < n; i++ {
		i := i
		s.Shard(i).After(5, func() {
			res[i] = i
		})
	}
	return res
}

// TwoViewsOneVar writes the same variable from callbacks on two distinct
// views (true positive on both writes).
func TwoViewsOneVar(s *sim.Sim) int {
	a, b := s.Shard(0), s.Shard(1)
	hits := 0
	a.At(1, func() { hits++ })
	b.At(1, func() { hits++ })
	return hits
}

// RangeFan mixes the sanctioned per-slot store (true negative) with a
// shared scalar write (true positive) in one ranged fan-out.
func RangeFan(s *sim.Sim, n int) []int {
	res := make([]int, n)
	last := 0
	for i, sh := range s.Shards(n) {
		i, sh := i, sh
		sh.After(1, func() {
			res[i] = i
			last = i
		})
	}
	return append(res, last)
}

// PerSlot is the sanctioned pattern: each shard writes only its own slot
// (true negative).
func PerSlot(s *sim.Sim, n int) []int {
	res := make([]int, n)
	shards := s.Shards(n)
	for i := 0; i < n; i++ {
		i := i
		shards[i].At(10, func() {
			res[i] = i * i
		})
	}
	return res
}

// SingleView schedules twice on the same shard; one shard's callbacks run
// serially, so sharing state between them is fine (true negative).
func SingleView(s *sim.Sim) int {
	sh := s.Shard(0)
	count := 0
	sh.At(1, func() { count++ })
	sh.At(2, func() { count++ })
	return count
}

// RootSequential schedules on the root simulator, not a shard view (true
// negative: no parallel window involved).
func RootSequential(s *sim.Sim, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i), func() { sum += i })
	}
	return sum
}

// SuppressedAccumulate demonstrates a justified suppression.
func SuppressedAccumulate(s *sim.Sim, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		i := i
		s.Shard(i).At(1, func() {
			sum += i //lint:allow shardsafe fixture keeps the racy accumulate to document the hazard
		})
	}
	return sum
}
