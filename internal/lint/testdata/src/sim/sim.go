// Mini event engine mirroring internal/sim's scheduling surface, so the
// poolsafe and shardsafe fixtures can exercise recognition of Sim methods.
package sim

// Time is simulated time.
type Time int64

// Sim is the fixture stand-in for the simulator core.
type Sim struct {
	now    Time
	shards []*Sim
}

// New returns a root simulator.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Shards returns n per-shard scheduling views.
func (s *Sim) Shards(n int) []*Sim {
	for len(s.shards) < n {
		s.shards = append(s.shards, &Sim{})
	}
	return s.shards[:n]
}

// Shard returns the i'th shard view.
func (s *Sim) Shard(i int) *Sim { return s.Shards(i + 1)[i] }

// At runs fn at absolute time at.
func (s *Sim) At(at Time, fn func()) { fn() }

// After runs fn after delay.
func (s *Sim) After(delay Time, fn func()) { fn() }

// Schedule runs fn after delay.
func (s *Sim) Schedule(delay Time, fn func()) { fn() }

// CrossAt hands fn to dst's lane at time at, after the window barrier.
func (s *Sim) CrossAt(dst *Sim, at Time, fn func()) { fn() }
