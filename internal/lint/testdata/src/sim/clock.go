// Fixture for the walltime analyzer: the package path contains "sim", so
// wall-clock access is banned.
package sim

import "time"

// Bad reads the wall clock in a simulation-facing package (true positive).
func Bad() time.Time {
	return time.Now()
}

// BadSleep blocks on the wall clock (true positive).
func BadSleep() {
	time.Sleep(time.Millisecond)
}

// Allowed demonstrates a justified suppression.
func Allowed() {
	time.Sleep(time.Microsecond) //lint:allow walltime fixture demonstrates a justified suppression
}

// EmptyReason carries a directive with no reason: the directive itself is a
// finding and the walltime finding is NOT suppressed.
func EmptyReason() {
	_ = time.Now //lint:allow walltime
}

// OK uses time only for data types and formatting (true negative).
func OK(d time.Duration) string {
	return d.String()
}
