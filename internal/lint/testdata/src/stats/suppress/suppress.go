// Fixture for suppression scoping: a directive covers exactly one line —
// the line it trails, or the line below a comment-only directive — and only
// for the analyzer it names.
package suppress

import "math/rand"

// TrailingStaysOnItsLine: the trailing allow silences its own line; the
// identical comparison on the next line is still reported (regression: the
// old two-line window leaked downward).
func TrailingStaysOnItsLine(a, b float64) (bool, bool) {
	x := a == b //lint:allow floateq fixture trailing directive covers this line only
	y := a == b
	return x, y
}

// CommentAboveStaysOnNextLine: a comment-line directive silences the line
// below it, not its own line and not two lines down.
func CommentAboveStaysOnNextLine(a, b float64) (bool, bool) {
	//lint:allow floateq fixture comment-line directive covers the next line only
	x := a == b
	y := a == b
	return x, y
}

// MixedLineNeedsBothNamed: one line carries a floateq and a globalrand
// finding; silencing both takes two directives — one above, one trailing.
func MixedLineNeedsBothNamed(a, b float64) bool {
	//lint:allow floateq fixture exact sentinel compare is intended here
	return a == b && rand.Intn(2) == 1 //lint:allow globalrand fixture nondeterminism is the point of this line
}

// WrongAnalyzerNamed: the trailing directive names globalrand, so the
// floateq finding on the same line is still reported.
func WrongAnalyzerNamed(a, b float64) bool {
	return a == b //lint:allow globalrand fixture names the wrong analyzer on purpose
}
