// Fixture for the floateq analyzer: the package path contains "stats", so
// floating-point == / != is flagged.
package stats

// Same compares floats bit-exactly (true positive).
func Same(a, b float64) bool {
	return a == b
}

// Changed uses != on a float32 operand (true positive).
func Changed(a float32, b int) bool {
	return a != float32(b)
}

// IsSentinel demonstrates a justified suppression.
func IsSentinel(x float64) bool {
	return x == -1 //lint:allow floateq sentinel is assigned exactly and never computed
}

// SameInt compares integers (true negative).
func SameInt(a, b int) bool {
	return a == b
}

// Close compares with an epsilon (true negative: only == and != are
// flagged, ordered comparisons are fine).
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
