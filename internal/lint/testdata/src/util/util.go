// Fixture for analyzer scoping: util is neither simulation-facing nor a
// stats package, so walltime and floateq do not apply here.
package util

import "time"

// Stamp reads the wall clock outside the simulation (true negative:
// walltime is scoped to simulation-facing packages).
func Stamp() time.Time {
	return time.Now()
}

// Equal compares floats outside the stats/exp/fancy scope (true negative
// for floateq).
func Equal(a, b float64) bool {
	return a == b
}

// UnknownDirective names an analyzer that does not exist; the directive is
// reported as a finding.
func UnknownDirective() int {
	return 1 //lint:allow nosuchcheck this analyzer name is bogus
}
