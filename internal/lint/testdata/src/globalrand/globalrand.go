// Fixture for the globalrand analyzer: package-level math/rand is banned
// everywhere, seeded *rand.Rand generators are the approved pattern.
package globalrand

import "math/rand"

// Bad draws from the shared global stream (true positive).
func Bad() int {
	return rand.Intn(6)
}

// BadValue takes the global function as a value (true positive).
func BadValue() func() float64 {
	return rand.Float64
}

// Jitter demonstrates a justified suppression.
func Jitter() float64 {
	return rand.Float64() //lint:allow globalrand fixture demonstrates a justified suppression
}

// OK threads a seeded generator (true negative).
func OK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
