// Fixtures for the sync.Map.Range extension of the maporder analyzer: the
// Range callback runs in unspecified order, so it gets the same effect
// analysis as a map range.
package maporder

import (
	"fmt"
	"sort"
	"sync"
)

// SyncRangeAppend appends keys in Range order (true positive).
func SyncRangeAppend(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, v any) bool {
		keys = append(keys, k.(string))
		return true
	})
	return keys
}

// SyncRangePrint prints in Range order (true positive).
func SyncRangePrint(m *sync.Map) {
	m.Range(func(k, v any) bool {
		fmt.Println(k)
		return true
	})
}

// SyncRangeCollectSorted collects then sorts, the sanctioned idiom (true
// negative).
func SyncRangeCollectSorted(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, v any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// SyncRangeCount is order-insensitive (true negative).
func SyncRangeCount(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool {
		n++
		return true
	})
	return n
}

// SyncRangeAllowed demonstrates a justified suppression.
func SyncRangeAllowed(m *sync.Map) []string {
	var keys []string
	//lint:allow maporder fixture consumer deduplicates, so order is irrelevant
	m.Range(func(k, v any) bool {
		keys = append(keys, k.(string))
		return true
	})
	return keys
}
