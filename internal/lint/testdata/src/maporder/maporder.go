// Fixture for the maporder analyzer: ranging over a map is fine until the
// loop body has order-sensitive effects with no dominating sort.
package maporder

import (
	"fmt"
	"sort"
)

// Keys appends map keys to an escaping slice with no sort (true positive).
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Dump prints in iteration order (true positive).
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// SortedKeys is the collect-then-sort idiom (true negative).
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum aggregates commutatively (true negative).
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// PerKey appends only to per-iteration state fetched by key, so order
// across keys cannot matter (true negative).
func PerKey(m map[string][]int, extra map[string]int) map[string][]int {
	for k, v := range extra {
		xs := m[k]
		xs = append(xs, v)
		m[k] = xs
	}
	return m
}

// Values demonstrates a justified suppression.
func Values(m map[string]int) []int {
	var vals []int
	for _, v := range m { //lint:allow maporder fixture demonstrates a justified suppression
		vals = append(vals, v)
	}
	return vals
}
