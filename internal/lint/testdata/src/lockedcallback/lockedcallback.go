// Fixture for the lockedcallback analyzer: invoking a stored callback
// field while a mutex of the same receiver is held.
package lockedcallback

import "sync"

// Bus is the subscribe/dispatch shape the analyzer protects.
type Bus struct {
	mu      sync.Mutex
	onEvent func(int)
	n       int
}

// PublishLocked invokes the callback under a deferred unlock, so the lock
// is held at the call (true positive).
func (b *Bus) PublishLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	b.onEvent(v)
}

// Publish copies the callback out, unlocks, then calls (true negative).
func (b *Bus) Publish(v int) {
	b.mu.Lock()
	fn := b.onEvent
	b.n++
	b.mu.Unlock()
	if fn != nil {
		fn(v)
	}
}

// PublishReentrant demonstrates a justified suppression.
func (b *Bus) PublishReentrant(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onEvent(v) //lint:allow lockedcallback handler contract forbids re-entering Bus
}

// Ring covers callbacks stored in containers: slices and maps of handlers
// invoked through an index expression.
type Ring struct {
	mu       sync.Mutex
	handlers []func(int)
	byName   map[string]func(int)
}

// DispatchLocked indexes into the handler slice under the lock (true
// positive).
func (r *Ring) DispatchLocked(i, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[i](v)
}

// NotifyLocked indexes into the handler map under the lock (true positive).
func (r *Ring) NotifyLocked(name string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName[name](v)
}

// Dispatch copies the handler out, unlocks, then calls (true negative).
func (r *Ring) Dispatch(i, v int) {
	r.mu.Lock()
	fn := r.handlers[i]
	r.mu.Unlock()
	if fn != nil {
		fn(v)
	}
}

// Feed covers the RWMutex read-lock variant.
type Feed struct {
	mu   sync.RWMutex
	sink func(int)
}

// Broadcast invokes the sink between RLock and RUnlock (true positive).
func (f *Feed) Broadcast(v int) {
	f.mu.RLock()
	f.sink(v)
	f.mu.RUnlock()
}

// Snapshot releases the read lock before calling (true negative).
func (f *Feed) Snapshot(v int) {
	f.mu.RLock()
	sink := f.sink
	f.mu.RUnlock()
	if sink != nil {
		sink(v)
	}
}
