// Fixture for the lockedcallback analyzer: invoking a stored callback
// field while a mutex of the same receiver is held.
package lockedcallback

import "sync"

// Bus is the subscribe/dispatch shape the analyzer protects.
type Bus struct {
	mu      sync.Mutex
	onEvent func(int)
	n       int
}

// PublishLocked invokes the callback under a deferred unlock, so the lock
// is held at the call (true positive).
func (b *Bus) PublishLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	b.onEvent(v)
}

// Publish copies the callback out, unlocks, then calls (true negative).
func (b *Bus) Publish(v int) {
	b.mu.Lock()
	fn := b.onEvent
	b.n++
	b.mu.Unlock()
	if fn != nil {
		fn(v)
	}
}

// PublishReentrant demonstrates a justified suppression.
func (b *Bus) PublishReentrant(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onEvent(v) //lint:allow lockedcallback handler contract forbids re-entering Bus
}

// Feed covers the RWMutex read-lock variant.
type Feed struct {
	mu   sync.RWMutex
	sink func(int)
}

// Broadcast invokes the sink between RLock and RUnlock (true positive).
func (f *Feed) Broadcast(v int) {
	f.mu.RLock()
	f.sink(v)
	f.mu.RUnlock()
}

// Snapshot releases the read lock before calling (true negative).
func (f *Feed) Snapshot(v int) {
	f.mu.RLock()
	sink := f.sink
	f.mu.RUnlock()
	if sink != nil {
		sink(v)
	}
}
