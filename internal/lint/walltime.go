package lint

import (
	"go/ast"
)

// simFacingSegments names the packages that run on the event-loop clock.
// Any package whose module-relative import path contains one of these
// segments must never read the wall clock: a single time.Now or time.Sleep
// makes a run irreproducible from its seed.
var simFacingSegments = map[string]bool{
	"sim":       true,
	"netsim":    true,
	"fancy":     true,
	"fleet":     true,
	"mgmt":      true,
	"tcp":       true,
	"traffic":   true,
	"exp":       true,
	"telemetry": true,
	"reroute":   true,
	"hh":        true,
	"dataplane": true,
	"verify":    true,
}

// walltimeBanned are the package-level time functions that read or wait on
// the wall clock. Pure data types (time.Duration, time.Time arithmetic,
// formatting) remain allowed.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// AnalyzerWalltime bans wall-clock access in simulation-facing packages.
var AnalyzerWalltime = &Analyzer{
	Name: "walltime",
	Doc:  "simulation-facing packages must use the event-loop clock, not time.Now/Sleep/After/...",
	Run:  runWalltime,
}

func runWalltime(p *Package) []Finding {
	if !pathHasSegment(p, simFacingSegments) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !walltimeBanned[sel.Sel.Name] {
				return true
			}
			if importedPackage(p, sel.X) != "time" {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "walltime",
				Message: "time." + sel.Sel.Name + " reads the wall clock; simulation code must use " +
					"the event-loop clock (sim.Sim.Now / sim.Sim.Schedule)",
			})
			return true
		})
	}
	return out
}
