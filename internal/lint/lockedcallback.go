package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerLockedCallback flags invoking a func-typed field of the receiver
// while a sync.Mutex or sync.RWMutex of the same receiver is held. A stored
// callback can do anything — including calling back into the struct and
// re-acquiring the same lock — so the safe pattern is copy the callback out
// under the lock, unlock, then call. This is exactly the subscribe/dispatch
// shape of the fleet and telemetry packages.
var AnalyzerLockedCallback = &Analyzer{
	Name: "lockedcallback",
	Doc:  "never invoke a stored callback field while the receiver's mutex is held",
	Run:  runLockedCallback,
}

var lockMethods = map[string]int{
	"Lock":    +1,
	"RLock":   +1,
	"Unlock":  -1,
	"RUnlock": -1,
}

func runLockedCallback(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil ||
				len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recv := fd.Recv.List[0].Names[0].Name
			if recv == "_" {
				continue
			}
			w := &lockWalker{p: p, recv: recv}
			w.stmts(fd.Body.List, map[string]bool{})
			out = append(out, w.findings...)
		}
	}
	return out
}

type lockWalker struct {
	p        *Package
	recv     string
	findings []Finding
}

// stmts walks a statement list in order, tracking which receiver mutexes
// are held. Nested blocks get a copy of the state: a Lock inside a branch
// conservatively does not leak out, and an Unlock inside a branch does not
// clear the outer state.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		if mu, op := w.mutexOp(s); mu != "" {
			if op > 0 {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			continue
		}
		if len(held) > 0 {
			w.scan(s, held)
		}
		switch st := s.(type) {
		case *ast.BlockStmt:
			w.stmts(st.List, copyState(held))
		case *ast.IfStmt:
			w.stmts(st.Body.List, copyState(held))
			if st.Else != nil {
				w.stmts([]ast.Stmt{st.Else}, copyState(held))
			}
		case *ast.ForStmt:
			w.stmts(st.Body.List, copyState(held))
		case *ast.RangeStmt:
			w.stmts(st.Body.List, copyState(held))
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copyState(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copyState(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.stmts(cc.Body, copyState(held))
				}
			}
		case *ast.LabeledStmt:
			w.stmts([]ast.Stmt{st.Stmt}, held)
		}
	}
}

func copyState(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// mutexOp recognizes statements of the form recv.mu.Lock() (or RLock /
// Unlock / RUnlock, possibly through an embedded sync.Mutex), returning the
// lock key and +1/-1. A deferred Unlock keeps the lock held to function
// end, so it is deliberately not treated as a release.
func (w *lockWalker) mutexOp(s ast.Stmt) (string, int) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", 0
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	op, ok := lockMethods[sel.Sel.Name]
	if !ok || w.rootIdent(sel.X) != w.recv {
		return "", 0
	}
	selection := w.p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", 0
	}
	m := selection.Obj()
	if m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0
	}
	return types.ExprString(sel.X), op
}

// scan reports calls to func-typed fields of the receiver inside s. Both
// direct invocations (recv.field(...)) and indexed ones through a
// func-element container (recv.field[i](...)) are flagged: a callback
// stored in a slice or map of handlers is just as able to re-enter the
// struct as one stored directly.
func (w *lockWalker) scan(s ast.Stmt, held map[string]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var sel *ast.SelectorExpr
		indexed := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			sel = fun
		case *ast.IndexExpr:
			if s2, ok := fun.X.(*ast.SelectorExpr); ok {
				sel = s2
				indexed = true
			}
		}
		if sel == nil || w.rootIdent(sel.X) != w.recv {
			return true
		}
		selection := w.p.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		ftype := selection.Type().Underlying()
		if indexed {
			// The field is a container; the called value is its element.
			switch c := ftype.(type) {
			case *types.Slice:
				ftype = c.Elem().Underlying()
			case *types.Array:
				ftype = c.Elem().Underlying()
			case *types.Map:
				ftype = c.Elem().Underlying()
			default:
				return true // generic instantiation or conversion, not a container index
			}
		}
		if _, ok := ftype.(*types.Signature); !ok {
			return true
		}
		lock := ""
		for mu := range held { // deterministic: keeps the smallest key
			if lock == "" || mu < lock {
				lock = mu
			}
		}
		w.findings = append(w.findings, Finding{
			Pos:      w.p.Fset.Position(call.Pos()),
			Analyzer: "lockedcallback",
			Message: "callback " + types.ExprString(sel) + " invoked while " + lock +
				" is held; copy it out, unlock, then call (deadlock hazard)",
		})
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector chain ("srv" for
// srv.state.mu), or "" if the expression is not rooted in an identifier.
func (w *lockWalker) rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}
