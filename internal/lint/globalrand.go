package lint

import (
	"go/ast"
	"go/types"
)

// globalRandAllowed are the math/rand package-level functions that build
// seeded generators rather than consume the shared global one.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// AnalyzerGlobalRand bans the package-level math/rand functions everywhere:
// the global generator is shared, unseeded (or seeded once per process) and
// its stream depends on every other caller, so nothing drawn from it can be
// reproduced from a scenario seed. Randomness must come from a seeded
// *rand.Rand threaded through config (sim.New(seed) holds one).
var AnalyzerGlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "global math/rand breaks seed-determinism; thread a seeded *rand.Rand from config",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := importedPackage(p, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || globalRandAllowed[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc., not the global funcs
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "globalrand",
				Message: "rand." + fn.Name() + " uses the global math/rand stream, which is not " +
					"reproducible from a seed; use a seeded *rand.Rand (e.g. sim.Sim's)",
			})
			return true
		})
	}
	return out
}
