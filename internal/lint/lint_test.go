package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fancy/internal/lint"
)

var update = flag.Bool("update", false, "rewrite testdata/findings.golden")

// loadFixture type-checks the fixture module under testdata/src and runs
// the full analyzer suite over it.
func loadFixture(t *testing.T) []lint.Finding {
	t.Helper()
	mod, err := lint.FindModule("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "fixture" {
		t.Fatalf("fixture module path = %q, want fixture", mod.Path)
	}
	pkgs, err := lint.Load(mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return lint.Run(pkgs, lint.Analyzers())
}

// format renders findings the way the driver prints them, with paths
// relative to the fixture root so the golden file is location-independent.
func format(t *testing.T, findings []lint.Finding) string {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.ToSlash(rel), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}

// TestFixtureGolden asserts the exact finding set (file, line, analyzer,
// message) over the fixture module: every deliberate true positive is
// reported, every true negative and every justified suppression is not.
func TestFixtureGolden(t *testing.T) {
	got := format(t, loadFixture(t))
	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch (run go test ./internal/lint -update to regenerate):\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAnalyzerCoverage asserts each analyzer contributes at least one
// finding over the fixtures, so a broken analyzer cannot silently pass the
// golden test by reporting nothing everywhere.
func TestAnalyzerCoverage(t *testing.T) {
	findings := loadFixture(t)
	seen := make(map[string]int)
	for _, f := range findings {
		seen[f.Analyzer]++
	}
	for _, a := range lint.Analyzers() {
		if seen[a.Name] == 0 {
			t.Errorf("analyzer %s reported no findings over the fixtures", a.Name)
		}
	}
	if seen["directive"] == 0 {
		t.Error("malformed directives reported no findings over the fixtures")
	}
}

// TestEmptyReasonDirective asserts that a //lint:allow with an empty reason
// is itself reported and does not suppress the underlying finding.
func TestEmptyReasonDirective(t *testing.T) {
	findings := loadFixture(t)
	var directive, suppressedAnyway bool
	for _, f := range findings {
		if !strings.HasSuffix(f.Pos.Filename, "sim/clock.go") {
			continue
		}
		if f.Analyzer == "directive" && strings.Contains(f.Message, "empty reason") {
			directive = true
		}
		if f.Analyzer == "walltime" && strings.Contains(f.Message, "time.Now") {
			suppressedAnyway = true
		}
	}
	if !directive {
		t.Error("empty-reason //lint:allow was not reported as a finding")
	}
	if !suppressedAnyway {
		t.Error("finding on the empty-reason line was suppressed; an allow without a reason must not suppress")
	}
}

// TestJustifiedSuppression asserts that a well-formed //lint:allow with a
// reason removes the finding: no finding of analyzer X may land on a line
// carrying a reasoned "//lint:allow X" directive in the fixtures.
func TestJustifiedSuppression(t *testing.T) {
	allowRE := regexp.MustCompile(`//lint:allow (\w+) \S`)
	suppressed := make(map[string]bool) // "file:line:analyzer"
	err := filepath.WalkDir("testdata/src", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := allowRE.FindStringSubmatch(line); m != nil {
				suppressed[fmt.Sprintf("%s:%d:%s", abs, i+1, m[1])] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(suppressed) == 0 {
		t.Fatal("no reasoned //lint:allow directives found in fixtures")
	}
	for _, f := range loadFixture(t) {
		key := fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Analyzer)
		if suppressed[key] {
			t.Errorf("suppressed finding leaked: %s: %s", key, f.Message)
		}
	}
}

// TestSuppressionScope pins the one-line directive scope on the suppress
// fixture: a trailing directive covers exactly its own line (the identical
// finding one line below must still be reported — the old two-line window
// leaked downward), a comment-line directive covers exactly the line below,
// and a directive naming a different analyzer suppresses nothing.
func TestSuppressionScope(t *testing.T) {
	var got []string
	for _, f := range loadFixture(t) {
		if strings.HasSuffix(f.Pos.Filename, filepath.Join("suppress", "suppress.go")) {
			got = append(got, fmt.Sprintf("%d:%s", f.Pos.Line, f.Analyzer))
		}
	}
	want := []string{"13:floateq", "22:floateq", "36:floateq"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("suppress fixture findings = %v, want %v", got, want)
	}
}

// TestRunDeterministic asserts the parallel per-package fan-out in lint.Run
// reports the identical finding sequence on repeated runs: output order is a
// total order over (file, line, column, analyzer, message), never goroutine
// scheduling.
func TestRunDeterministic(t *testing.T) {
	first := format(t, loadFixture(t))
	for i := 0; i < 3; i++ {
		if again := format(t, loadFixture(t)); again != first {
			t.Fatalf("run %d produced a different finding sequence", i+2)
		}
	}
}

// TestRepoClean runs the suite over the real module: the tree must stay
// vet-clean, which is the tentpole's acceptance criterion and keeps the
// gate local to go test (CI runs the driver binary as well).
func TestRepoClean(t *testing.T) {
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(mod)
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
}
