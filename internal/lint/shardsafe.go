package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerShardSafe protects the conservative-lookahead parallel scheduler's
// barrier contract (internal/sim/parallel.go): within a lookahead window,
// shard callbacks execute concurrently, so state written from callbacks
// scheduled on more than one shard view races unless it is merged at the
// window barrier or kept in per-shard slots.
//
// The analyzer tracks shard views inside a function — results of
// Sim.Shard(i), elements of Sim.Shards(n) (indexed or ranged over), and
// local aliases of either — and inspects the callback literals handed to
// their scheduling entry points (At, After, CrossAt, Schedule, ScheduleAt,
// ScheduleTimer). It flags
//
//   - writes to a variable declared outside the callback when the callback
//     is scheduled on a loop-varying view (the same body runs on every
//     shard) or when callbacks on two different views write the same
//     variable, and
//   - map writes from any loop-fanned or multiply-scheduled callback —
//     concurrent map writes fault even when the keys are disjoint.
//
// Per-slot writes (res[i] = ... where the index is the fan-out loop
// variable) are the sanctioned pattern and pass clean, as do writes to
// state local to one shard's callback.
var AnalyzerShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "no cross-shard writes from shard callbacks that bypass the barrier merge",
	Run:  runShardSafe,
}

// shardSchedMethods are Sim scheduling entry points whose final argument is
// the callback run on the receiver shard.
var shardSchedMethods = map[string]bool{
	"Schedule":      true,
	"ScheduleAt":    true,
	"ScheduleTimer": true,
	"After":         true,
	"At":            true,
	"CrossAt":       true,
}

func runShardSafe(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, shardSafeFunc(p, body)...)
			}
			return true
		})
	}
	return out
}

// isSimType reports whether t (possibly behind a pointer) is the simulator
// core type sim.Sim.
func isSimType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sim" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// simMethodCall returns the method name when call is a method call on a
// sim.Sim receiver, and the receiver expression.
func simMethodCall(p *Package, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || !isSimType(selection.Recv()) {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

type shardWrite struct {
	obj    types.Object // written variable's root
	pos    token.Pos
	name   string
	isMap  bool
	inLoop bool   // callback scheduled on a loop-varying view: runs on every shard
	view   string // receiver expression; writes from one view are serial
}

func shardSafeFunc(p *Package, body *ast.BlockStmt) []Finding {
	// Pass 1: shard collections ([]*Sim from Shards) and view objects
	// (*Sim from Shard/indexing/ranging/aliasing). One sweep in source
	// order is enough: views are always derived before use.
	colls := map[types.Object]bool{}
	views := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := rhs.(type) {
		case *ast.CallExpr:
			if name, _ := simMethodCall(p, r); name == "Shards" {
				colls[obj] = true
			} else if name == "Shard" {
				views[obj] = true
			}
		case *ast.IndexExpr:
			if root := rootIdentObj(p, r.X); root != nil && colls[root] {
				views[obj] = true
			}
		case *ast.Ident:
			if root := p.Info.Uses[r]; root != nil {
				if views[root] {
					views[obj] = true
				}
				if colls[root] {
					colls[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			overShards := false
			if root := rootIdentObj(p, st.X); root != nil && colls[root] {
				overShards = true
			}
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, _ := simMethodCall(p, call); name == "Shards" {
					overShards = true
				}
			}
			if overShards && st.Value != nil {
				if id, ok := st.Value.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						views[obj] = true
					}
				}
			}
		}
		return true
	})

	// isViewRecv reports whether the receiver expression denotes a shard
	// view, and whether it varies with an enclosing fan-out loop.
	loopVarObjs := func(loops []ast.Node) map[types.Object]bool {
		vars := map[types.Object]bool{}
		for _, l := range loops {
			lp, le := l.Pos(), l.End()
			// Any object declared within the loop varies per iteration.
			ast.Inspect(l, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil && lp <= obj.Pos() && obj.Pos() < le {
						vars[obj] = true
					}
				}
				return true
			})
		}
		return vars
	}
	mentionsAny := func(e ast.Expr, set map[types.Object]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && set[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	isViewRecv := func(recv ast.Expr, loopVars map[types.Object]bool) (isView, varies bool) {
		switch r := recv.(type) {
		case *ast.CallExpr:
			if name, _ := simMethodCall(p, r); name == "Shard" {
				return true, mentionsAny(r, loopVars)
			}
		case *ast.IndexExpr:
			if root := rootIdentObj(p, r.X); root != nil && colls[root] {
				return true, mentionsAny(r.Index, loopVars)
			}
		case *ast.Ident:
			if obj := p.Info.Uses[r]; obj != nil && views[obj] {
				return true, loopVars[obj]
			}
		}
		return false, false
	}

	// Pass 2: collect writes from callbacks scheduled on views, with loop
	// context.
	var writes []shardWrite
	var loops []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					loops = append(loops, m)
					walk(m)
					loops = loops[:len(loops)-1]
					return false
				}
			case *ast.CallExpr:
				name, recv := simMethodCall(p, x)
				if !shardSchedMethods[name] || len(x.Args) == 0 {
					return true
				}
				fl, ok := x.Args[len(x.Args)-1].(*ast.FuncLit)
				if !ok {
					return true
				}
				loopVars := loopVarObjs(loops)
				isView, varies := isViewRecv(recv, loopVars)
				if !isView {
					return true
				}
				writes = append(writes, callbackWrites(p, fl, types.ExprString(recv), varies, loopVars)...)
			}
			return true
		})
	}
	walk(body)

	// Pass 3: decide. Loop-fanned callbacks race with themselves; otherwise
	// callbacks on two textually different views must write the same
	// object (one shard's callbacks execute serially and may share state).
	viewsOf := map[types.Object]map[string]bool{}
	for _, w := range writes {
		if viewsOf[w.obj] == nil {
			viewsOf[w.obj] = map[string]bool{}
		}
		viewsOf[w.obj][w.view] = true
	}
	var out []Finding
	for _, w := range writes {
		shared := w.inLoop || len(viewsOf[w.obj]) > 1
		if !shared {
			continue
		}
		msg := w.name + " is written from shard callbacks on more than one shard inside the lookahead window; merge per-shard results at the window barrier or give each shard its own slot"
		if w.isMap {
			msg = "map " + w.name + " is written from concurrently executing shard callbacks; concurrent map writes fault even with per-shard keys — use a per-shard slice merged at the barrier"
		}
		out = append(out, Finding{
			Pos:      p.Fset.Position(w.pos),
			Analyzer: "shardsafe",
			Message:  msg,
		})
	}
	return out
}

// callbackWrites collects writes inside a shard callback literal that touch
// state declared outside it. Slice/array stores indexed by a per-iteration
// variable are the sanctioned per-slot pattern and are skipped.
func callbackWrites(p *Package, fl *ast.FuncLit, view string, varies bool, loopVars map[types.Object]bool) []shardWrite {
	outer := func(obj types.Object) bool {
		return obj != nil && !(fl.Pos() <= obj.Pos() && obj.Pos() < fl.End())
	}
	indexIsPerIteration := func(idx ast.Expr) bool {
		found := false
		ast.Inspect(idx, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	var writes []shardWrite
	addTarget := func(lhs ast.Expr, pos token.Pos) {
		switch l := lhs.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[l]; outer(obj) {
				writes = append(writes, shardWrite{obj: obj, pos: pos, name: l.Name, inLoop: varies, view: view})
			}
		case *ast.IndexExpr:
			root := rootIdentObj(p, l.X)
			if !outer(root) {
				return
			}
			t := p.Info.TypeOf(l.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					writes = append(writes, shardWrite{obj: root, pos: pos, name: root.Name(), isMap: true, inLoop: varies, view: view})
					return
				}
			}
			if indexIsPerIteration(l.Index) {
				return // per-slot: res[i] = ...
			}
			writes = append(writes, shardWrite{obj: root, pos: pos, name: root.Name(), inLoop: varies, view: view})
		case *ast.SelectorExpr, *ast.StarExpr:
			if root := rootIdentObj(p, lhs); outer(root) {
				name := root.Name()
				writes = append(writes, shardWrite{obj: root, pos: pos, name: name, inLoop: varies, view: view})
			}
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				// Short declarations define callback-locals, not writes.
				if id, ok := lhs.(*ast.Ident); ok && st.Tok == token.DEFINE {
					_ = id
					continue
				}
				addTarget(lhs, st.Pos())
			}
		case *ast.IncDecStmt:
			addTarget(st.X, st.Pos())
		}
		return true
	})
	return writes
}
