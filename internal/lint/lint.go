// Analyzer framework: findings, suppression directives and the run loop.
//
// fancy-vet enforces the repo's two load-bearing invariants — every layer of
// the simulator must be seed-deterministic, and callback dispatch must not
// hold locks — as machine-checked analyzers. A finding can only be silenced
// with an inline
//
//	//lint:allow <analyzer> <reason>
//
// directive on the offending line (or the line directly above it), and the
// driver verifies the reason is non-empty: a bare allow is itself reported
// as a finding.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one repo-specific check.
type Analyzer struct {
	Name string
	Doc  string // one-line invariant statement, shown by fancy-vet -help
	Run  func(p *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerWalltime,
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerLockedCallback,
	}
}

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported. It is not itself suppressible.
const directiveAnalyzer = "directive"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// fileDirectives extracts the //lint:allow directives of one file.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
			if !ok {
				continue
			}
			rest = strings.TrimSpace(rest)
			name, reason, _ := strings.Cut(rest, " ")
			ds = append(ds, directive{
				pos:      fset.Position(c.Pos()),
				analyzer: name,
				reason:   strings.TrimSpace(reason),
			})
		}
	}
	return ds
}

// Run executes the analyzers over the packages and returns the unsuppressed
// findings plus one finding per malformed directive, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, p := range pkgs {
		var ds []directive
		for _, f := range p.Files {
			ds = append(ds, fileDirectives(p.Fset, f)...)
		}
		// A well-formed directive suppresses findings of its analyzer on
		// its own line and on the line below (so it can trail the code or
		// sit on its own comment line above it).
		suppressed := func(f Finding) bool {
			for _, d := range ds {
				if d.analyzer == f.Analyzer && d.reason != "" &&
					d.pos.Filename == f.Pos.Filename &&
					(d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1) {
					return true
				}
			}
			return false
		}
		for _, d := range ds {
			switch {
			case d.analyzer == "":
				out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
					Message: "//lint:allow needs an analyzer name and a reason"})
			case !known[d.analyzer]:
				out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
					Message: "//lint:allow " + d.analyzer + ": unknown analyzer"})
			case d.reason == "":
				out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
					Message: "//lint:allow " + d.analyzer + " has an empty reason; justify the suppression"})
			}
		}
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if !suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pathHasSegment reports whether the module-relative package path (or, for
// the module root where rel is empty, the package name) contains one of the
// given path segments.
func pathHasSegment(p *Package, segments map[string]bool) bool {
	if p.Rel == "" {
		return segments[p.Name]
	}
	for _, seg := range strings.Split(p.Rel, "/") {
		if segments[seg] {
			return true
		}
	}
	return false
}

// importedPackage resolves a selector base like the `time` in time.Now to
// the import path of the package it names, or "" if it is not a package
// qualifier.
func importedPackage(p *Package, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
