// Analyzer framework: findings, suppression directives and the run loop.
//
// fancy-vet enforces the repo's two load-bearing invariants — every layer of
// the simulator must be seed-deterministic, and callback dispatch must not
// hold locks — as machine-checked analyzers. A finding can only be silenced
// with an inline
//
//	//lint:allow <analyzer> <reason>
//
// directive trailing the offending line (or on a comment line directly
// above it — each scope is exclusive, so one directive never covers two
// lines), and the driver verifies the reason is non-empty: a bare allow is
// itself reported as a finding.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one repo-specific check.
type Analyzer struct {
	Name string
	Doc  string // one-line invariant statement, shown by fancy-vet -help
	Run  func(p *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerWalltime,
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerLockedCallback,
		AnalyzerPoolSafe,
		AnalyzerBorrowEscape,
		AnalyzerShardSafe,
	}
}

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported. It is not itself suppressible.
const directiveAnalyzer = "directive"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// fileDirectives extracts the //lint:allow directives of one file.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
			if !ok {
				continue
			}
			rest = strings.TrimSpace(rest)
			name, reason, _ := strings.Cut(rest, " ")
			ds = append(ds, directive{
				pos:      fset.Position(c.Pos()),
				analyzer: name,
				reason:   strings.TrimSpace(reason),
			})
		}
	}
	return ds
}

// codeLines returns the set of line numbers of f that carry any non-comment
// source token. Directive scoping depends on it: a directive sharing a line
// with code trails that code; a directive on a comment-only line precedes
// the code below it.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// runPackage runs the analyzers over one package and returns its
// unsuppressed findings plus directive diagnostics, unsorted.
//
// Suppression scope is exact: a directive trailing code suppresses findings
// of its named analyzer on that line only; a directive on a comment-only
// line suppresses them on the next line only. One directive can therefore
// never blanket two different findings — a line carrying two findings needs
// each analyzer named (trailing for one, a comment line above for the
// other).
func runPackage(p *Package, analyzers []*Analyzer, known map[string]bool) []Finding {
	var ds []directive
	code := make(map[string]map[int]bool)
	for _, f := range p.Files {
		ds = append(ds, fileDirectives(p.Fset, f)...)
		pos := p.Fset.Position(f.Pos())
		code[pos.Filename] = codeLines(p.Fset, f)
	}
	suppressed := func(f Finding) bool {
		for _, d := range ds {
			if d.analyzer != f.Analyzer || d.reason == "" ||
				d.pos.Filename != f.Pos.Filename {
				continue
			}
			if code[d.pos.Filename][d.pos.Line] {
				if d.pos.Line == f.Pos.Line {
					return true // trails the offending code
				}
			} else if d.pos.Line == f.Pos.Line-1 {
				return true // comment line directly above it
			}
		}
		return false
	}
	var out []Finding
	for _, d := range ds {
		switch {
		case d.analyzer == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
				Message: "//lint:allow needs an analyzer name and a reason"})
		case !known[d.analyzer]:
			out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
				Message: "//lint:allow " + d.analyzer + ": unknown analyzer"})
		case d.reason == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: directiveAnalyzer,
				Message: "//lint:allow " + d.analyzer + " has an empty reason; justify the suppression"})
		}
	}
	for _, a := range analyzers {
		for _, f := range a.Run(p) {
			if !suppressed(f) {
				out = append(out, f)
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages and returns the unsuppressed
// findings plus one finding per malformed directive, sorted by position.
//
// Packages are analyzed concurrently (bounded by GOMAXPROCS): analyzers
// only read the type-checked package data, and the shared token.FileSet is
// internally synchronized. Findings are accumulated per package and merged
// under a total order, so the output is independent of scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	results := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		go func(i int, p *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runPackage(p, analyzers, known)
		}(i, p)
	}
	wg.Wait()
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// pathHasSegment reports whether the module-relative package path (or, for
// the module root where rel is empty, the package name) contains one of the
// given path segments.
func pathHasSegment(p *Package, segments map[string]bool) bool {
	if p.Rel == "" {
		return segments[p.Name]
	}
	for _, seg := range strings.Split(p.Rel, "/") {
		if segments[seg] {
			return true
		}
	}
	return false
}

// importedPackage resolves a selector base like the `time` in time.Now to
// the import path of the package it names, or "" if it is not a package
// qualifier.
func importedPackage(p *Package, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
