// Package loading and type-checking for fancy-vet.
//
// The loader is deliberately restricted to the Go standard library
// (go/parser, go/types, go/ast, go/token, go/build): the module must stay
// dependency-free, so the usual golang.org/x/tools/go/packages machinery is
// off the table. Instead we resolve import paths ourselves: paths inside the
// module map onto directories under the module root, everything else is
// assumed to live in GOROOT and is parsed and type-checked from source with
// cgo disabled (the pure-Go fallback files are always sufficient for type
// information). Packages are checked in dependency order with a shared
// FileSet so positions stay comparable across the whole run.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Module identifies the module under analysis.
type Module struct {
	Path string // module path from the go.mod "module" directive
	Root string // absolute directory containing go.mod
}

// FindModule locates the enclosing module of dir by walking up to the
// nearest go.mod.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return &Module{Path: path, Root: d}, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// Package is one type-checked package of the module under analysis, the
// unit every analyzer runs over.
type Package struct {
	Path  string // full import path ("fancy/internal/sim")
	Rel   string // module-relative path ("internal/sim", "" for the root)
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader resolves, parses and type-checks packages on demand.
type loader struct {
	mod      *Module
	fset     *token.FileSet
	ctx      build.Context
	sizes    types.Sizes
	pkgs     map[string]*Package       // module packages by import path
	imports  map[string]*types.Package // every checked package by import path
	loading  map[string]bool           // cycle detection
	errs     []error                   // type errors in module packages
	parseSem chan struct{}             // bounds concurrent file parses
}

func newLoader(mod *Module) *loader {
	ctx := build.Default
	// Disable cgo so build-tag file selection always picks the pure-Go
	// fallbacks; their exported type surface is what we need.
	ctx.CgoEnabled = false
	return &loader{
		mod:      mod,
		fset:     token.NewFileSet(),
		ctx:      ctx,
		sizes:    types.SizesFor("gc", ctx.GOARCH),
		pkgs:     make(map[string]*Package),
		imports:  make(map[string]*types.Package),
		loading:  make(map[string]bool),
		parseSem: make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// Import implements types.Importer over the module + GOROOT source tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.imports[path]; ok {
		return tp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, local, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(path, dir, local)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// resolve maps an import path to a source directory. local reports whether
// the package belongs to the module under analysis.
func (l *loader) resolve(path string) (dir string, local bool, err error) {
	if path == l.mod.Path {
		return l.mod.Root, true, nil
	}
	if rest, ok := strings.CutPrefix(path, l.mod.Path+"/"); ok {
		return filepath.Join(l.mod.Root, filepath.FromSlash(rest)), true, nil
	}
	bp, err := l.ctx.Import(path, l.mod.Root, build.FindOnly)
	if err != nil {
		return "", false, fmt.Errorf("cannot find package %q: %v", path, err)
	}
	return bp.Dir, false, nil
}

// check parses and type-checks the package in dir under import path.
func (l *loader) check(path, dir string, local bool) (*types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("package %q: %v", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, fmt.Errorf("package %q: %v", path, err)
	}

	var info *types.Info
	if local {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		Error: func(err error) {
			// Collect module-package errors for the caller; tolerate
			// stdlib hiccups (partial type information is enough).
			if local {
				l.errs = append(l.errs, err)
			}
		},
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil && tp == nil {
		return nil, fmt.Errorf("package %q: %v", path, err)
	}
	l.imports[path] = tp
	if local {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod.Path), "/")
		l.pkgs[path] = &Package{
			Path:  path,
			Rel:   rel,
			Name:  tp.Name(),
			Fset:  l.fset,
			Files: files,
			Types: tp,
			Info:  info,
		}
	}
	return tp, nil
}

// parseFiles parses the package's files concurrently (bounded by GOMAXPROCS)
// into the shared FileSet, which synchronizes internally. Results land in a
// slice indexed by the sorted-name position, so the file order handed to the
// type checker is identical to a sequential parse. Raw token.Pos bases are
// assigned in completion order, but every analyzer either resolves positions
// through the FileSet (file/line/col, which concurrency cannot change) or
// compares Pos values for containment — and FileSet ranges never overlap, so
// a position from another file is outside any local range either way.
func (l *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			l.parseSem <- struct{}{}
			defer func() { <-l.parseSem }()
			files[i], errs[i] = parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// Load loads the packages selected by patterns (relative directories,
// optionally ending in "/...") from the module and returns them sorted by
// import path. A bare "./..." loads every package under the module root;
// directories named "testdata" or "vendor" and hidden or underscore-prefixed
// directories are skipped, matching the go tool's convention.
func Load(mod *Module, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := newLoader(mod)
	for _, pat := range patterns {
		if err := l.loadPattern(pat); err != nil {
			return nil, err
		}
	}
	if len(l.errs) > 0 {
		msgs := make([]string, 0, len(l.errs))
		for _, e := range l.errs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("type errors:\n\t%s", strings.Join(msgs, "\n\t"))
	}
	pkgs := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *loader) loadPattern(pat string) error {
	pat = filepath.ToSlash(pat)
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
	}
	if pat == "." || pat == "./" || pat == "" {
		pat = "."
	}
	dir := filepath.Join(l.mod.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if !recursive {
		return l.loadDir(dir, false)
	}
	return filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return l.loadDir(path, true)
	})
}

// loadDir loads the package in dir. When lax, directories without Go files
// are skipped silently (pattern walks traverse plenty of them).
func (l *loader) loadDir(dir string, lax bool) error {
	if _, err := l.ctx.ImportDir(dir, 0); err != nil {
		if _, ok := err.(*build.NoGoError); ok && lax {
			return nil
		}
		if lax {
			// Directories whose files are all excluded by build
			// constraints are also skippable during a walk.
			return nil
		}
		return err
	}
	rel, err := filepath.Rel(l.mod.Root, dir)
	if err != nil {
		return err
	}
	path := l.mod.Path
	if rel != "." {
		path = l.mod.Path + "/" + filepath.ToSlash(rel)
	}
	_, err = l.Import(path)
	return err
}
