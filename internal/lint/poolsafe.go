package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerPoolSafe enforces the ownership contract of the object pools
// (netsim.PacketPool's Get/Put and sim.Sim's event alloc/release), which
// pool.go states only in prose: Put transfers ownership back to the pool.
// Along every execution path it flags
//
//   - a use of a variable after it was returned to its pool (the pool may
//     already have recycled and reinitialized the object),
//   - a second Put of the same variable without an intervening
//     re-definition (double free), and
//   - a Put after a retaining reference escaped into a struct field,
//     slice, map, array, channel, go/defer call or closure (the pool would
//     recycle an object something still points to).
//
// The analysis is the dataflow engine's path-sensitive forward pass: facts
// are per-variable {pooled, released, escaped} bits, so the
// copy-out-then-release idiom (fn := ev.fn; s.release(ev); fn()) and
// branch-separated release/retain paths (chaos drop vs. delayed redeliver)
// pass clean. Calls are opaque: passing a packet to a function neither
// releases nor retains it here. A Put inside defer is not analyzed (it runs
// at function end, after every textually later use).
var AnalyzerPoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "no use-after-Put, double-Put, or Put of an escaped pooled object",
	Run:  runPoolSafe,
}

const (
	poolOpNone = iota
	poolOpGet
	poolOpPut
)

// poolCallOf classifies a call as a pool acquire or release: Get/Put on a
// named type whose name ends in "Pool", or alloc/release on sim.Sim (the
// event pool). The released/acquired object must be a plain identifier to
// be tracked.
func poolCallOf(p *Package, call *ast.CallExpr) (op int, arg *ast.Ident) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return poolOpNone, nil
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return poolOpNone, nil
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return poolOpNone, nil
	}
	name := named.Obj().Name()
	isPool := strings.HasSuffix(name, "Pool")
	isSim := name == "Sim" && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "sim"
	switch {
	case isPool && sel.Sel.Name == "Get" && len(call.Args) == 0:
		return poolOpGet, nil
	case isSim && sel.Sel.Name == "alloc":
		return poolOpGet, nil
	case (isPool && sel.Sel.Name == "Put" || isSim && sel.Sel.Name == "release") && len(call.Args) == 1:
		id, _ := call.Args[0].(*ast.Ident)
		return poolOpPut, id
	}
	return poolOpNone, nil
}

func runPoolSafe(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, poolSafeFunc(p, body)...)
			}
			return true
		})
	}
	return out
}

func poolSafeFunc(p *Package, body *ast.BlockStmt) []Finding {
	// Cheap pre-filter: no pool call, nothing to analyze.
	hasPool := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _ := poolCallOf(p, call); op != poolOpNone {
				hasPool = true
			}
		}
		return !hasPool
	})
	if !hasPool {
		return nil
	}
	g := buildCFG(body)
	a := &poolFlow{p: p}
	in := g.forward(flowState{}, func(n ast.Node, s flowState) { a.step(n, s, false) })
	a.reporting = true
	g.replay(in,
		func(n ast.Node, s flowState) { a.step(n, s, false) },
		func(n ast.Node, s flowState) { a.step(n, s, true) })
	return a.findings
}

type poolFlow struct {
	p         *Package
	reporting bool
	findings  []Finding
}

// step is both the transfer function and, with check set, the reporting
// visitor — one implementation so they can never disagree. Order inside a
// node: Put calls first (their own argument is not a "use"), then the
// use-after-release scan, then escapes, then assignment kills/gens.
func (a *poolFlow) step(n ast.Node, s flowState, check bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Loop-header marker: the iteration variables are freshly defined
		// on every entry. (rs.X was scanned as its own node.)
		a.kill(s, rs.Key)
		a.kill(s, rs.Value)
		return
	}

	skipUse := make(map[*ast.Ident]bool)

	// 1. Pool releases. A `defer pool.Put(x)` runs after every later use,
	// so defers are exempt from the release tracking entirely.
	if _, isDefer := n.(*ast.DeferStmt); !isDefer {
		inspectNoFuncLit(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, arg := poolCallOf(a.p, call)
			if op != poolOpPut || arg == nil {
				return true
			}
			obj, isVar := a.p.Info.Uses[arg].(*types.Var)
			if !isVar {
				return true
			}
			// Everything inside the releasing call expression (receiver
			// chain and argument) is evaluated before the release takes
			// effect, so none of it is a use-after-release.
			ast.Inspect(call, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					skipUse[id] = true
				}
				return true
			})
			fact := s[obj]
			if check {
				switch {
				case fact&factReleased != 0:
					a.report(call.Pos(), arg.Name+" is returned to its pool twice along this path; a pooled object may only be released once per Get")
				case fact&factEscaped != 0:
					a.report(call.Pos(), arg.Name+" is returned to its pool after a reference to it escaped into a field, container, goroutine or closure; the pool would recycle a still-referenced object")
				}
			}
			s[obj] = fact | factReleased
			return true
		})
	}

	// 2. Use-after-release: any remaining read of a released variable.
	a.scanUses(n, s, skipUse, check)

	// 3. Escapes: retaining stores of identifiers.
	a.scanEscapes(n, s)

	// 4. Definitions: kills and Get results.
	switch st := n.(type) {
	case *ast.AssignStmt:
		a.assign(st.Lhs, st.Rhs, s)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					a.assign(lhs, vs.Values, s)
				}
			}
		}
	}
}

// scanUses reports reads of released variables. Plain-identifier assignment
// targets are definitions, not reads, and are skipped; so are the arguments
// of the Put calls handled above and the interiors of function literals
// (captures are escapes, handled separately).
func (a *poolFlow) scanUses(n ast.Node, s flowState, skip map[*ast.Ident]bool, check bool) {
	if !check {
		return
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || skip[id] || id.Name == "_" {
			return true
		}
		obj := a.p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if s[obj]&factReleased != 0 {
			a.report(id.Pos(), id.Name+" is used after being returned to its pool; the pool may already have recycled it")
			// Report once per path position; clearing keeps one finding
			// per statement rather than one per mention.
			s[obj] &^= factReleased
		}
		return true
	})
}

// scanEscapes marks identifiers whose value is stored somewhere that
// outlives the statement: composite-literal elements, stores through
// selectors/indexes/dereferences, appends, channel sends, go/defer call
// arguments, and closure captures.
func (a *poolFlow) scanEscapes(n ast.Node, s flowState) {
	mark := func(e ast.Expr) {
		if e == nil {
			return
		}
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			e = ue.X
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj, isVar := a.p.Info.Uses[id].(*types.Var); isVar {
			s[obj] |= factEscaped
		}
	}

	switch st := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range st.Lhs {
			if _, ok := lhs.(*ast.Ident); ok {
				continue
			}
			// Store through a field, index, or pointer target.
			if i < len(st.Rhs) {
				mark(st.Rhs[i])
			} else if len(st.Rhs) == 1 {
				mark(st.Rhs[0])
			}
		}
	case *ast.SendStmt:
		mark(st.Value)
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			mark(arg)
		}
	case *ast.DeferStmt:
		if op, _ := poolCallOf(a.p, st.Call); op != poolOpPut {
			for _, arg := range st.Call.Args {
				mark(arg)
			}
		}
	}

	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(elt)
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := a.p.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range x.Args[1:] {
						mark(arg)
					}
				}
			}
		}
		return true
	})

	// Closure captures: every free variable of a non-immediately-invoked
	// function literal escapes into the closure.
	ast.Inspect(n, func(m ast.Node) bool {
		call, isCall := m.(*ast.CallExpr)
		if isCall {
			if fl, ok := call.Fun.(*ast.FuncLit); ok && isImmediatelyInvoked(call, fl) {
				// Visit args and the body's nested literals, but the
				// directly-invoked literal itself is synchronous.
				for _, arg := range call.Args {
					ast.Inspect(arg, func(k ast.Node) bool { return a.captureWalk(k, s) })
				}
				ast.Inspect(fl.Body, func(k ast.Node) bool { return a.captureWalk(k, s) })
				return false
			}
		}
		return a.captureWalk(m, s)
	})
}

func (a *poolFlow) captureWalk(m ast.Node, s flowState) bool {
	fl, ok := m.(*ast.FuncLit)
	if !ok {
		return true
	}
	for obj := range freeVars(a.p, fl) {
		s[obj] |= factEscaped
	}
	return false
}

// assign applies definition kills and Get gens for an assignment.
func (a *poolFlow) assign(lhs, rhs []ast.Expr, s flowState) {
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := a.p.Info.Defs[id]
		if obj == nil {
			obj = a.p.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		delete(s, obj) // fresh definition: prior facts die
		if len(lhs) == len(rhs) {
			if call, ok := rhs[i].(*ast.CallExpr); ok {
				if op, _ := poolCallOf(a.p, call); op == poolOpGet {
					s[obj] = factPooled
				}
			}
		}
	}
}

func (a *poolFlow) kill(s flowState, e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := a.p.Info.Defs[id]
	if obj == nil {
		obj = a.p.Info.Uses[id]
	}
	if obj != nil {
		delete(s, obj)
	}
}

func (a *poolFlow) report(pos token.Pos, msg string) {
	if !a.reporting {
		return
	}
	a.findings = append(a.findings, Finding{
		Pos:      a.p.Fset.Position(pos),
		Analyzer: "poolsafe",
		Message:  msg,
	})
}
