package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"fancy/internal/sim"
)

func TestAccTPRAndLatency(t *testing.T) {
	var a Acc
	a.Cap = 30
	a.Add(Detection{Detected: true, Latency: 1 * sim.Second})
	a.Add(Detection{Detected: true, Latency: 3 * sim.Second})
	a.Add(Detection{Detected: false})

	if a.Trials() != 3 {
		t.Errorf("Trials = %d", a.Trials())
	}
	if got := a.TPR(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("TPR = %v, want 2/3", got)
	}
	// Mean with cap: (1+3+30)/3.
	if got := a.MeanLatency(); math.Abs(got-34.0/3) > 1e-9 {
		t.Errorf("MeanLatency = %v, want 11.33", got)
	}
	if got := a.MedianLatency(); got != 3 {
		t.Errorf("MedianLatency = %v, want 3", got)
	}
}

func TestAccNoCapExcludesMisses(t *testing.T) {
	var a Acc
	a.Add(Detection{Detected: true, Latency: 2 * sim.Second})
	a.Add(Detection{Detected: false})
	if got := a.MeanLatency(); got != 2 {
		t.Errorf("MeanLatency = %v, want 2 (miss excluded)", got)
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.TPR() != 0 || a.MeanLatency() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		for _, p := range []float64{0, 10, 50, 90, 100} {
			v := Percentile(xs, p)
			if v < s[0] || v > s[len(s)-1] {
				return false
			}
		}
		// Monotone in p.
		return Percentile(xs, 10) <= Percentile(xs, 90)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:    "Avg TPR",
		RowLabel: "Entry",
		Rows:     []string{"500Kbps/50", "8Kbps/1"},
		Cols:     []string{"100", "1", "0.1"},
		Cells:    [][]float64{{1, 1, 0.2}, {1, 0.6}},
	}
	out := h.Render()
	if !strings.Contains(out, "Avg TPR") || !strings.Contains(out, "500Kbps/50") {
		t.Errorf("missing labels in:\n%s", out)
	}
	if !strings.Contains(out, "0.20") {
		t.Errorf("missing cell value in:\n%s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent cell in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("got %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestTableRender(t *testing.T) {
	out := Table([]string{"Loss", "TPR"}, [][]string{{"100%", "0.913"}, {"0.1%", "0.566"}})
	if !strings.Contains(out, "Loss") || !strings.Contains(out, "0.913") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("got %d lines, want 4", len(lines))
	}
}
