// Package stats aggregates experiment outcomes (true positive rate,
// detection time, false positives) and renders the text tables and heatmaps
// that the benchmark harness prints for each paper figure.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fancy/internal/sim"
)

// Detection is the outcome of one failure-detection trial.
type Detection struct {
	Detected bool
	Latency  sim.Time // valid when Detected
}

// Acc accumulates detection trials.
type Acc struct {
	trials    int
	detected  int
	latencies []float64 // seconds

	// Cap is the latency charged to undetected trials in means (the
	// paper reports 30 s — the experiment duration — for missed
	// failures). Zero means undetected trials are excluded from times.
	Cap float64
}

// Add records one trial.
func (a *Acc) Add(d Detection) {
	a.trials++
	if d.Detected {
		a.detected++
		a.latencies = append(a.latencies, d.Latency.Seconds())
	}
}

// Trials reports the number of recorded trials.
func (a *Acc) Trials() int { return a.trials }

// TPR is the fraction of trials where the failure was detected.
func (a *Acc) TPR() float64 {
	if a.trials == 0 {
		return 0
	}
	return float64(a.detected) / float64(a.trials)
}

// MeanLatency averages detection latency in seconds, charging Cap for each
// missed trial when Cap > 0.
func (a *Acc) MeanLatency() float64 {
	n := len(a.latencies)
	sum := 0.0
	for _, l := range a.latencies {
		sum += l
	}
	if a.Cap > 0 {
		miss := a.trials - a.detected
		sum += float64(miss) * a.Cap
		n += miss
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MedianLatency is the median detection latency in seconds over detected
// trials (Cap-charged misses included when Cap > 0).
func (a *Acc) MedianLatency() float64 {
	ls := append([]float64(nil), a.latencies...)
	if a.Cap > 0 {
		for i := 0; i < a.trials-a.detected; i++ {
			ls = append(ls, a.Cap)
		}
	}
	return Percentile(ls, 50)
}

// Percentile returns the p-th percentile (0–100) of xs, interpolating
// linearly. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean averages xs (NaN for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Heatmap renders a labelled grid, mirroring the paper's Figure 7/9 layout
// (rows: entry sizes; columns: loss rates).
type Heatmap struct {
	Title    string
	RowLabel string
	Rows     []string
	Cols     []string
	Cells    [][]float64 // [row][col]
	Format   string      // cell format, default "%5.2f"
}

// Render returns the heatmap as a text table.
func (h *Heatmap) Render() string {
	format := h.Format
	if format == "" {
		format = "%5.2f"
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	rowW := len(h.RowLabel)
	for _, r := range h.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	cellW := 0
	for _, c := range h.Cols {
		if len(c) > cellW {
			cellW = len(c)
		}
	}
	if w := len(fmt.Sprintf(format, 0.0)); w > cellW {
		cellW = w
	}
	fmt.Fprintf(&b, "%-*s", rowW+2, h.RowLabel)
	for _, c := range h.Cols {
		fmt.Fprintf(&b, " %*s", cellW, c)
	}
	b.WriteByte('\n')
	for i, r := range h.Rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for j := range h.Cols {
			v := math.NaN()
			if i < len(h.Cells) && j < len(h.Cells[i]) {
				v = h.Cells[i][j]
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %*s", cellW, "-")
			} else {
				fmt.Fprintf(&b, " %*s", cellW, fmt.Sprintf(format, v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders a simple aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
