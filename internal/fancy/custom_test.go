package fancy

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// udpSized sends a CBR stream of fixed-size packets.
func (tb *testbed) udpSized(entry netsim.EntryID, size, pps int, stop sim.Time) {
	gap := sim.Second / sim.Time(pps)
	var tick func()
	tick = func() {
		if tb.s.Now() >= stop {
			return
		}
		tb.src.Send(&netsim.Packet{
			Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Src: netsim.IPv4(172, 16, 0, 1), Proto: netsim.ProtoUDP, Size: size,
		})
		tb.s.Schedule(gap, tick)
	}
	tb.s.Schedule(0, tick)
}

// customBed extends the testbed with a size-histogram custom session.
func customBed(t *testing.T, seed int64) (*testbed, *SizeHistogramUnit) {
	t.Helper()
	tb := newTestbed(t, testCfg, seed)
	sender := NewSizeHistogramUnit()
	receiver := NewSizeHistogramUnit()
	unit := tb.det.MonitorCustom(1, 100*sim.Millisecond, sender)
	// The downstream detector of newTestbed is not exposed; create the
	// custom receiver registration through a fresh listen call on it via
	// the detector we can reach: rebuild instead.
	_ = unit
	_ = receiver
	return tb, sender
}

func TestSizeHistogramLocalizesSizeSpecificBug(t *testing.T) {
	// Build the full topology by hand so we hold both detectors.
	s := sim.New(41)
	src := netsim.NewHost(s, "src")
	dst := netsim.NewHost(s, "dst")
	up := netsim.NewSwitch(s, "up", 2)
	down := netsim.NewSwitch(s, "down", 2)
	netsim.Connect(s, src, 0, up, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	link := netsim.Connect(s, up, 1, down, 0, netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9})
	netsim.Connect(s, down, 1, dst, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	upDet, err := NewDetector(s, up, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet, err := NewDetector(s, down, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	downDet.ListenPort(0)
	upDet.MonitorPort(1)

	sender := NewSizeHistogramUnit()
	receiver := NewSizeHistogramUnit()
	unit := upDet.MonitorCustom(1, 100*sim.Millisecond, sender)
	downDet.ListenCustom(0, unit, receiver)

	// Traffic at three distinct packet sizes.
	sizes := []int{200, 800, 1400}
	for i, size := range sizes {
		entry := netsim.EntryID(50 + i)
		sz := size
		gap := 4 * sim.Millisecond
		var tick func()
		tick = func() {
			if s.Now() >= 8*sim.Second {
				return
			}
			src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Proto: netsim.ProtoUDP, Size: sz})
			s.Schedule(gap, tick)
		}
		s.Schedule(sim.Time(i)*sim.Millisecond, tick)
	}

	// The CSCtc33158-style bug: drop packets of 760–900 bytes.
	link.AB.SetFailure(netsim.FailSizes(7, 2*sim.Second, 760, 900, 1.0))
	s.Run(8 * sim.Second)

	if len(sender.FlaggedBuckets) == 0 {
		t.Fatal("size histogram flagged nothing")
	}
	// Exactly the buckets covering ~800+tag bytes must be flagged; the
	// 200 B and 1400 B buckets must stay clean.
	for b := range sender.FlaggedBuckets {
		lo, hi := b*64, b*64+63
		if hi < 760 || lo > 910 {
			t.Errorf("bucket %d (%s) flagged outside the failing size range", b, BucketRange(b))
		}
	}
	if sender.FlaggedBuckets[SizeBucket(200)] {
		t.Error("200 B bucket flagged")
	}
	if sender.FlaggedBuckets[SizeBucket(1400)] {
		t.Error("1400 B bucket flagged")
	}
}

func TestCustomSessionRequiresMonitorPort(t *testing.T) {
	s := sim.New(42)
	sw := netsim.NewSwitch(s, "sw", 2)
	det, err := NewDetector(s, sw, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MonitorCustom before MonitorPort should panic")
		}
	}()
	det.MonitorCustom(1, sim.Second, NewSizeHistogramUnit())
}

func TestOneCustomUnitPerPort(t *testing.T) {
	tb := newTestbed(t, testCfg, 43)
	tb.det.MonitorCustom(1, sim.Second, NewSizeHistogramUnit())
	defer func() {
		if recover() == nil {
			t.Error("second custom unit on one port should panic")
		}
	}()
	tb.det.MonitorCustom(1, sim.Second, NewSizeHistogramUnit())
}

func TestCustomSessionNoFalsePositives(t *testing.T) {
	tb, sender := customBed(t, 44)
	tb.udpSized(60, 500, 200, 4*sim.Second)
	tb.udpSized(61, 1200, 200, 4*sim.Second)
	tb.s.Run(4 * sim.Second)
	// Without a registered downstream receiver the sessions never close
	// (no reports), so nothing can be flagged; more importantly nothing
	// crashes and regular monitoring is intact.
	if len(sender.FlaggedBuckets) != 0 {
		t.Errorf("flagged buckets without loss: %v", sender.FlaggedBuckets)
	}
}

func TestSizeBucketHelpers(t *testing.T) {
	if SizeBucket(0) != 0 || SizeBucket(63) != 0 || SizeBucket(64) != 1 {
		t.Error("bucket boundaries wrong")
	}
	if SizeBucket(100_000) != SizeBuckets-1 {
		t.Error("oversize packets must land in the overflow bucket")
	}
	if BucketRange(0) != "0-63B" {
		t.Errorf("BucketRange(0) = %q", BucketRange(0))
	}
	if BucketRange(SizeBuckets-1) == "" {
		t.Error("overflow bucket needs a label")
	}
}
