package fancy

// Congestion-guard coverage (§4.3, footnote 2). The guard matters for
// remote (multi-hop) sessions: tagged packets then cross a transit switch's
// transmit queue, and congestion drops there are indistinguishable from
// gray-failure drops in the counters alone. The guard must discard the
// affected sessions (no false positive) without suppressing the detection
// of a real gray failure once uncongested measurements flow again.

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// guardBed is the partial-deployment chain src—A—B(transit)—C—dst with a
// bottleneck on the B→C hop and a QueueGuard watching its queue.
type guardBed struct {
	s        *sim.Sim
	src, dst *netsim.Host
	a, b, c  *netsim.Switch
	l1, l2   *netsim.Link
	det      *Detector
	guard    *QueueGuard
	events   []Event
}

func newGuardBed(t *testing.T, seed int64) *guardBed {
	t.Helper()
	s := sim.New(seed)
	gb := &guardBed{s: s}
	gb.src = netsim.NewHost(s, "src")
	gb.dst = netsim.NewHost(s, "dst")
	gb.a = netsim.NewSwitch(s, "borderA", 2)
	gb.b = netsim.NewSwitch(s, "transit", 2)
	gb.c = netsim.NewSwitch(s, "borderC", 2)
	fast := netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9}
	// The B→C hop is the bottleneck: 100 Mbps with a shallow 30 KB queue.
	slow := netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 100e6, QueueBytes: 30_000}
	netsim.Connect(s, gb.src, 0, gb.a, 0, fast)
	gb.l1 = netsim.Connect(s, gb.a, 1, gb.b, 0, fast)
	gb.l2 = netsim.Connect(s, gb.b, 1, gb.c, 0, slow)
	netsim.Connect(s, gb.c, 1, gb.dst, 0, fast)

	aAddr := netsim.IPv4(10, 255, 0, 1)
	cAddr := netsim.IPv4(10, 255, 0, 3)
	for _, sw := range []*netsim.Switch{gb.a, gb.b, gb.c} {
		sw.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
		sw.Routes.Insert(aAddr, 32, netsim.Route{Port: 0, Backup: -1})
	}
	gb.src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	gb.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	var err error
	gb.det, err = NewDetector(s, gb.a, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	detC, err := NewDetector(s, gb.c, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	gb.det.SetOwnAddr(aAddr)
	gb.det.SetPeerAddr(1, cAddr)
	detC.SetOwnAddr(cAddr)
	detC.SetPeerAddr(0, aAddr)
	detC.ListenPort(0)
	gb.det.MonitorPort(1)
	gb.det.OnEvent = func(ev Event) { gb.events = append(gb.events, ev) }

	// Guard: sample the bottleneck queue every millisecond; anything beyond
	// 10 KB counts as congested.
	gb.guard = NewQueueGuard(s, 10_000, sim.Millisecond)
	gb.guard.Watch(gb.l2.AB)
	gb.det.SetCongestionGuard(gb.guard)
	return gb
}

// udp sends a CBR stream for entry between start and stop.
func (gb *guardBed) udp(entry netsim.EntryID, rateBps float64, start, stop sim.Time) {
	const size = 1000
	gap := sim.Time(float64(size*8) / rateBps * float64(sim.Second))
	var tick func()
	tick = func() {
		if gb.s.Now() >= stop {
			return
		}
		gb.src.Send(&netsim.Packet{
			Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Proto: netsim.ProtoUDP, Size: size,
		})
		gb.s.Schedule(gap, tick)
	}
	gb.s.ScheduleAt(start, tick)
}

func (gb *guardBed) dedicatedEvents() int {
	n := 0
	for _, ev := range gb.events {
		if ev.Kind == EventDedicated {
			n++
		}
	}
	return n
}

func TestQueueGuardSuppressesCongestionFalsePositives(t *testing.T) {
	gb := newGuardBed(t, 40)
	gb.udp(10, 2e6, 0, 6*sim.Second)
	// A 150 Mbps burst into the 100 Mbps hop between 2 s and 3 s overflows
	// the transit queue: tagged entry-10 packets are among the congestion
	// drops, which the counters alone would read as a gray failure.
	gb.udp(200, 150e6, 2*sim.Second, 3*sim.Second)
	gb.s.Run(6 * sim.Second)

	if gb.l2.AB.Stats().CongestionDrops == 0 {
		t.Fatal("burst did not overflow the bottleneck queue; test is vacuous")
	}
	if gb.guard.CongestedWindows() == 0 || gb.guard.OverSamples == 0 {
		t.Fatal("guard never saw the congested queue")
	}
	if got := gb.det.DiscardedSessions(); got == 0 {
		t.Error("no session discarded despite congestion overlapping sessions")
	}
	if n := gb.dedicatedEvents(); n != 0 {
		t.Errorf("congestion misread as gray failure: %d dedicated events", n)
	}
	if gb.det.Flagged(1, 10) {
		t.Error("entry 10 flagged by congestion drops")
	}
}

func TestQueueGuardDoesNotSuppressRealFailure(t *testing.T) {
	gb := newGuardBed(t, 41)
	gb.udp(10, 2e6, 0, 8*sim.Second)
	gb.udp(200, 150e6, 2*sim.Second, 3*sim.Second)
	// A real gray failure appears DURING the congested window and persists.
	// Sessions overlapping the window are rightly discarded; the sessions
	// after it must still expose the failure.
	gb.l1.AB.SetFailure(netsim.FailEntries(gb.s.DeriveSeed("guard/fail"),
		2500*sim.Millisecond, 1.0, 10))
	gb.s.Run(8 * sim.Second)

	if gb.dedicatedEvents() == 0 || !gb.det.Flagged(1, 10) {
		t.Fatal("guard suppressed a real gray failure")
	}
	// Detection could only come from a clean post-congestion session.
	for _, ev := range gb.events {
		if ev.Kind == EventDedicated && ev.Time <= 3*sim.Second {
			t.Errorf("dedicated event at %v, inside the congested window", ev.Time)
		}
	}
}

func TestQueueGuardWithoutCongestionStaysOut(t *testing.T) {
	// With the guard installed but no congestion, detection behaves exactly
	// as without a guard: nothing is discarded and failures flag promptly.
	gb := newGuardBed(t, 42)
	gb.udp(10, 2e6, 0, 6*sim.Second)
	gb.l1.AB.SetFailure(netsim.FailEntries(gb.s.DeriveSeed("guard/fail"),
		2*sim.Second, 1.0, 10))
	gb.s.Run(6 * sim.Second)

	if gb.guard.CongestedWindows() != 0 {
		t.Fatalf("phantom congestion windows: %d", gb.guard.CongestedWindows())
	}
	if gb.det.DiscardedSessions() != 0 {
		t.Errorf("%d sessions discarded without congestion", gb.det.DiscardedSessions())
	}
	if !gb.det.Flagged(1, 10) {
		t.Error("failure not detected with an idle guard installed")
	}
}
