package fancy

// This file implements FANcY's output data structures (§4.3): a 1-bit
// register array flagging dedicated entries with detected mismatches, and a
// two-register Bloom filter storing the hash paths flagged by the tree.

// FlagArray is the 1-bit register array with one flag per dedicated counter.
type FlagArray struct {
	bits []uint64
	n    int
	set  int
}

// NewFlagArray allocates an array for n dedicated entries.
func NewFlagArray(n int) *FlagArray {
	return &FlagArray{bits: make([]uint64, (n+63)/64), n: n}
}

// Set flags entry slot i.
func (f *FlagArray) Set(i int) {
	if i < 0 || i >= f.n {
		return
	}
	w, b := i/64, uint(i%64)
	if f.bits[w]&(1<<b) == 0 {
		f.bits[w] |= 1 << b
		f.set++
	}
}

// Get reports whether slot i is flagged.
func (f *FlagArray) Get(i int) bool {
	if i < 0 || i >= f.n {
		return false
	}
	return f.bits[i/64]&(1<<uint(i%64)) != 0
}

// Clear resets slot i.
func (f *FlagArray) Clear(i int) {
	if i < 0 || i >= f.n || !f.Get(i) {
		return
	}
	f.bits[i/64] &^= 1 << uint(i%64)
	f.set--
}

// Count reports the number of flagged slots.
func (f *FlagArray) Count() int { return f.set }

// Len reports the array capacity.
func (f *FlagArray) Len() int { return f.n }

// PathBloom is the two-register Bloom filter that records flagged hash
// paths. Each register is a 1-bit array; a path sets (and is queried
// against) one bit per register through independent hashes — the layout of
// the Tofino prototype's rerouting structure (Appendix B.2).
type PathBloom struct {
	reg0, reg1 []uint64
	cells      int
	inserted   int
}

// NewPathBloom allocates a filter with the given cells per register.
func NewPathBloom(cells int) *PathBloom {
	if cells < 64 {
		cells = 64
	}
	words := (cells + 63) / 64
	return &PathBloom{reg0: make([]uint64, words), reg1: make([]uint64, words), cells: cells}
}

// hashPath folds a hash path into two independent cell indices.
func (b *PathBloom) hashPath(path []uint16) (uint32, uint32) {
	const prime = 1099511628211
	var h0, h1 uint64 = 14695981039346656037, 0x9e3779b97f4a7c15
	for _, p := range path {
		h0 = (h0 ^ uint64(p)) * prime
		h1 ^= uint64(p) + 0x9e3779b97f4a7c15 + h1<<6 + h1>>2
	}
	return uint32(h0 % uint64(b.cells)), uint32(h1 % uint64(b.cells))
}

// Insert records path as flagged.
func (b *PathBloom) Insert(path []uint16) {
	i0, i1 := b.hashPath(path)
	b.reg0[i0/64] |= 1 << (i0 % 64)
	b.reg1[i1/64] |= 1 << (i1 % 64)
	b.inserted++
}

// Contains reports whether path may have been flagged (Bloom semantics:
// false positives possible, false negatives impossible).
func (b *PathBloom) Contains(path []uint16) bool {
	if b.inserted == 0 {
		return false
	}
	i0, i1 := b.hashPath(path)
	return b.reg0[i0/64]&(1<<(i0%64)) != 0 && b.reg1[i1/64]&(1<<(i1%64)) != 0
}

// Inserted reports the number of inserted paths.
func (b *PathBloom) Inserted() int { return b.inserted }

// Reset clears the filter.
func (b *PathBloom) Reset() {
	for i := range b.reg0 {
		b.reg0[i] = 0
		b.reg1[i] = 0
	}
	b.inserted = 0
}

// MemoryBits reports the filter's register memory (2 × cells bits).
func (b *PathBloom) MemoryBits() int { return 2 * b.cells }
