package fancy

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// TestPartialDeployment reproduces §4.3's remote-deployment property: FANcY
// at two border switches separated by a non-FANcY transit switch detects
// gray failures anywhere on the path between them (losing only the ability
// to pinpoint which hop failed).
func TestPartialDeployment(t *testing.T) {
	for _, failSecondHop := range []bool{false, true} {
		s := sim.New(21)
		src := netsim.NewHost(s, "src")
		dst := netsim.NewHost(s, "dst")
		a := netsim.NewSwitch(s, "borderA", 2) // FANcY upstream
		b := netsim.NewSwitch(s, "transit", 2) // no FANcY
		c := netsim.NewSwitch(s, "borderC", 2) // FANcY downstream
		lc := netsim.LinkConfig{Delay: 5 * sim.Millisecond, RateBps: 10e9}
		netsim.Connect(s, src, 0, a, 0, lc)
		l1 := netsim.Connect(s, a, 1, b, 0, lc)
		l2 := netsim.Connect(s, b, 1, c, 0, lc)
		netsim.Connect(s, c, 1, dst, 0, lc)

		aAddr := netsim.IPv4(10, 255, 0, 1)
		cAddr := netsim.IPv4(10, 255, 0, 3)
		for _, sw := range []*netsim.Switch{a, b, c} {
			sw.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
			// Reverse routes for control replies and the A address.
			sw.Routes.Insert(aAddr, 32, netsim.Route{Port: 0, Backup: -1})
		}
		// Forward route for C's address along the chain (default covers it).
		dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
		src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

		detA, err := NewDetector(s, a, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		detC, err := NewDetector(s, c, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		detA.SetOwnAddr(aAddr)
		detA.SetPeerAddr(1, cAddr)
		detC.SetOwnAddr(cAddr)
		detC.SetPeerAddr(0, aAddr)
		detC.ListenPort(0)
		detA.MonitorPort(1)

		var events []Event
		detA.OnEvent = func(ev Event) { events = append(events, ev) }

		// Traffic on a dedicated entry.
		const entry = netsim.EntryID(10)
		gap := 5 * sim.Millisecond
		var tick func()
		tick = func() {
			if s.Now() >= 8*sim.Second {
				return
			}
			src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Proto: netsim.ProtoUDP, Size: 1000})
			s.Schedule(gap, tick)
		}
		s.Schedule(0, tick)

		// The failure sits on either hop of the A→C path.
		failed := l1
		if failSecondHop {
			failed = l2
		}
		failed.AB.SetFailure(netsim.FailEntries(3, 2*sim.Second, 1.0, entry))
		s.Run(8 * sim.Second)

		detected := false
		for _, ev := range events {
			if ev.Kind == EventDedicated && ev.Entry == entry {
				detected = true
				break
			}
		}
		if !detected {
			t.Errorf("failSecondHop=%v: remote deployment did not detect the path failure", failSecondHop)
		}
		if !detA.Flagged(1, entry) {
			t.Errorf("failSecondHop=%v: entry not flagged", failSecondHop)
		}
	}
}

// TestTransitFancySwitchForwardsForeignControl checks that a FANcY switch
// on the transit path of another pair's session forwards their control
// messages instead of consuming them.
func TestTransitFancySwitchForwardsForeignControl(t *testing.T) {
	s := sim.New(22)
	a := netsim.NewSwitch(s, "a", 2)
	b := netsim.NewSwitch(s, "b", 2) // FANcY too, but not a session peer
	c := netsim.NewSwitch(s, "c", 2)
	sink := netsim.NewHost(s, "sink")
	lc := netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 1e9}
	netsim.Connect(s, a, 1, b, 0, lc)
	netsim.Connect(s, b, 1, c, 0, lc)
	netsim.Connect(s, c, 1, sink, 0, lc)

	aAddr := netsim.IPv4(10, 255, 0, 1)
	cAddr := netsim.IPv4(10, 255, 0, 3)
	for _, sw := range []*netsim.Switch{a, b, c} {
		sw.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
		sw.Routes.Insert(aAddr, 32, netsim.Route{Port: 0, Backup: -1})
	}
	detA, _ := NewDetector(s, a, testCfg)
	detB, _ := NewDetector(s, b, testCfg)
	detB.SetOwnAddr(netsim.IPv4(10, 255, 0, 2))
	detC, _ := NewDetector(s, c, testCfg)
	detC.SetOwnAddr(cAddr)
	detC.SetPeerAddr(0, aAddr)
	detC.ListenPort(0)
	detA.SetOwnAddr(aAddr)
	detA.SetPeerAddr(1, cAddr)
	detA.MonitorPort(1)

	s.Run(2 * sim.Second)
	// A's sessions must complete: B forwarded Start/Report through.
	if detA.SessionsCompleted(1) == 0 {
		t.Error("transit FANcY switch swallowed foreign control messages")
	}
	if b.Consumed > 0 {
		t.Errorf("transit switch consumed %d foreign control packets", b.Consumed)
	}
}
