package fancy

// This file implements the strawman protocol of §4.1 — continuous counting
// with in-packet session IDs — which the paper rejects in favour of
// stop-and-wait. It exists for the ablation study (exp.AblationStrawman):
//
//   - The upstream tags packets with the current session ID and rolls the
//     session over every interval without any handshake, so counting never
//     pauses (its advantage over FANcY's protocol).
//   - The downstream, upon seeing a tag from a new session, sends back the
//     counter of the session that just ended — once, unacknowledged.
//   - Reliability costs memory: to survive the loss of a report, both
//     sides must keep the last K session counters. A session whose report
//     is lost beyond the history depth is simply unverifiable: the
//     measurement is gone ("a link cannot be monitored if a failure
//     affects the reverse direction of the traffic").
//
// Memory per monitored entry is therefore K× FANcY's single counter pair
// (MemoryBits), and the fraction of verifiable sessions degrades with
// reverse-path loss (Verified/Sessions), which the ablation quantifies.

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// StrawmanConfig parameterizes the continuous-counting strawman.
type StrawmanConfig struct {
	Entry    netsim.EntryID
	Interval sim.Time // session rollover period
	History  int      // K: counter sets kept on each side (≥1)
}

func (c *StrawmanConfig) fill() {
	if c.Interval == 0 {
		c.Interval = 50 * sim.Millisecond
	}
	if c.History < 1 {
		c.History = 1
	}
}

// MemoryBits is the per-entry register memory on both sides: K pairs of
// 32-bit counters plus the 16-bit session tag state, mirroring the §4.3
// accounting style used for FANcY's dedicated counters.
func (c StrawmanConfig) MemoryBits() int {
	return c.History*2*32 + 16
}

// StrawmanSender runs at the upstream switch. Attach via the switch's
// egress hook for the monitored port and feed reports through
// HandleReport.
type StrawmanSender struct {
	cfg  StrawmanConfig
	s    *sim.Sim
	sw   *netsim.Switch
	port int

	session uint32
	history []strawSession // ring, newest last

	// Results.
	Sessions   uint64 // sessions closed
	Verified   uint64 // sessions whose report arrived in time
	Lost       uint64 // sessions evicted unverified (measurement lost)
	Mismatches uint64 // verified sessions with upstream > downstream
	FlaggedAt  sim.Time

	OnMismatch func(session uint32, diff uint64)
}

type strawSession struct {
	id    uint32
	count uint64
	done  bool // verified or given up
}

// NewStrawmanSender installs the sender on sw's egress port.
func NewStrawmanSender(s *sim.Sim, sw *netsim.Switch, port int, cfg StrawmanConfig) *StrawmanSender {
	cfg.fill()
	snd := &StrawmanSender{cfg: cfg, s: s, sw: sw, port: port}
	snd.history = append(snd.history, strawSession{id: snd.session})
	sw.AddEgressHook(snd)
	sw.RefreshEgressHooks()
	s.After(cfg.Interval, snd.rollover)
	return snd
}

// OnEgress implements netsim.EgressHook: continuous counting and tagging.
func (snd *StrawmanSender) OnEgress(pkt *netsim.Packet, port int) {
	if port != snd.port || pkt.Proto == netsim.ProtoFancy || pkt.Entry != snd.cfg.Entry {
		return
	}
	cur := &snd.history[len(snd.history)-1]
	cur.count++
	pkt.Tagged = true
	pkt.TagKind = wire.KindDedicated
	pkt.Tag = wire.DedicatedTag(uint16(snd.session))
	pkt.Size += wire.TagSize
}

func (snd *StrawmanSender) rollover() {
	snd.Sessions++
	snd.session++
	snd.history = append(snd.history, strawSession{id: snd.session})
	// Evict beyond the history depth: an unverified evicted session is a
	// lost measurement.
	for len(snd.history) > snd.cfg.History+1 { // +1 for the live session
		old := snd.history[0]
		snd.history = snd.history[1:]
		if !old.done {
			snd.Lost++
		}
	}
	snd.s.After(snd.cfg.Interval, snd.rollover)
}

// HandleReport processes a downstream counter report for a session.
func (snd *StrawmanSender) HandleReport(session uint32, downstream uint64) {
	for i := range snd.history {
		ses := &snd.history[i]
		if ses.id != session || ses.done {
			continue
		}
		ses.done = true
		snd.Verified++
		if ses.count > downstream {
			snd.Mismatches++
			if snd.FlaggedAt == 0 {
				snd.FlaggedAt = snd.s.Now()
			}
			if snd.OnMismatch != nil {
				snd.OnMismatch(session, ses.count-downstream)
			}
		}
		return
	}
	// Report for a session outside the history: useless.
}

// VerifiedFraction reports the share of closed sessions that produced a
// usable measurement.
func (snd *StrawmanSender) VerifiedFraction() float64 {
	closed := snd.Verified + snd.Lost
	if closed == 0 {
		return 1
	}
	return float64(snd.Verified) / float64(closed)
}

// StrawmanReceiver runs at the downstream switch: it counts tagged packets
// per session and emits one unacknowledged report at each session change.
type StrawmanReceiver struct {
	cfg  StrawmanConfig
	s    *sim.Sim
	sw   *netsim.Switch
	port int
	peer *StrawmanSender // report delivery, subject to reverse-path loss

	reverse *netsim.Failure // loss model for the report path

	counts  map[uint32]uint64
	current uint32
	started bool

	ReportsSent uint64
	ReportsLost uint64
}

// NewStrawmanReceiver installs the receiver on sw's ingress port. Reports
// travel back to peer over a path modelled by reverse (nil = lossless):
// the strawman has no retransmission, so a dropped report permanently
// loses that session's measurement.
func NewStrawmanReceiver(s *sim.Sim, sw *netsim.Switch, port int, peer *StrawmanSender,
	reverse *netsim.Failure, cfg StrawmanConfig) *StrawmanReceiver {
	cfg.fill()
	rcv := &StrawmanReceiver{
		cfg: cfg, s: s, sw: sw, port: port, peer: peer, reverse: reverse,
		counts: make(map[uint32]uint64),
	}
	sw.AddIngressHook(rcv)
	return rcv
}

// OnIngress implements netsim.IngressHook.
func (rcv *StrawmanReceiver) OnIngress(pkt *netsim.Packet, port int) bool {
	if port != rcv.port || !pkt.Tagged {
		return false
	}
	session := uint32(pkt.Tag.DedicatedID())
	pkt.Tagged = false
	pkt.Size -= wire.TagSize
	if !rcv.started {
		rcv.started = true
		rcv.current = session
	}
	if session != rcv.current {
		// Session change observed: report the session that ended.
		rcv.report(rcv.current)
		rcv.current = session
	}
	rcv.counts[session]++
	// Trim old sessions beyond the history depth.
	for id := range rcv.counts {
		if session >= uint32(rcv.cfg.History)+1 && id < session-uint32(rcv.cfg.History) {
			delete(rcv.counts, id)
		}
	}
	return false
}

func (rcv *StrawmanReceiver) report(session uint32) {
	rcv.ReportsSent++
	// The report carries the last History sessions' counters — this is
	// what the k-fold memory buys: one surviving report compensates up to
	// k−1 lost predecessors (§4.1: "to ensure reliability across k
	// sessions, both ... must keep k−1 historical counters' values").
	type sessCount struct {
		id    uint32
		count uint64
	}
	var payload []sessCount
	for i := 0; i < rcv.cfg.History; i++ {
		id := session - uint32(i)
		if c, ok := rcv.counts[id]; ok {
			payload = append(payload, sessCount{id, c})
		}
		if id == 0 {
			break
		}
	}
	// One RTT later the report reaches the sender — unless the reverse
	// path drops it (no retransmission in the strawman).
	probe := &netsim.Packet{Proto: netsim.ProtoFancy, Entry: netsim.InvalidEntry, Size: 64}
	if rcv.reverse.Drop(probe, rcv.s.Now()) {
		rcv.ReportsLost++
		return
	}
	rcv.s.After(10*sim.Millisecond, func() {
		for _, sc := range payload {
			rcv.peer.HandleReport(sc.id, sc.count)
		}
	})
}
