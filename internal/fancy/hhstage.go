package fancy

// The heavy-hitter stage and dynamic dedicated-slot management: the
// runtime half of the counter-allocation loop. The sketch (internal/hh)
// observes every data packet on a monitored port; hhTick closes each
// measurement window, hands the encoded top-k report to OnHHReport, and
// the switch agent's allocator answers with Promote/Demote calls.

import (
	"fmt"
	"sort"

	"fancy/internal/hh"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// hhTick closes one heavy-hitter measurement window on a port: encode the
// top-k digest, reset the sketch, deliver the frame, re-arm the timer.
func (d *Detector) hhTick(m *portMonitor, port int) {
	if m.hh == nil {
		return
	}
	rep := &hh.Report{Port: uint16(port), Epoch: d.epoch, Seq: m.hhSeq}
	m.hhSeq++
	rep.Entries = m.hh.TopK(d.cfg.HH.TopK)
	rep.Packets, rep.Recircs = m.hh.Window()
	m.hh.Reset()
	d.stats.HHReports++
	if d.OnHHReport != nil {
		d.OnHHReport(port, hh.EncodeReport(rep))
	}
	m.hhTimer = d.s.ScheduleTimer(d.cfg.HH.ReportInterval, m.hhTickFn)
}

// Promote assigns entry a dynamic dedicated-counter slot on the monitored
// port and starts its counting FSM. The receiver side needs no
// coordination: the first Start for the slot's unit number instantiates a
// fresh receiver FSM there, exactly as for a static entry.
func (d *Detector) Promote(port int, entry netsim.EntryID) (int, error) {
	m, ok := d.monitors[port]
	if !ok {
		return 0, fmt.Errorf("fancy: port %d is not monitored", port)
	}
	if _, ok := d.slotByEntry[entry]; ok {
		return 0, fmt.Errorf("fancy: entry %d already holds a static dedicated slot", entry)
	}
	if _, ok := m.dyn[entry]; ok {
		return 0, fmt.Errorf("fancy: entry %d already promoted on port %d", entry, port)
	}
	if len(m.freeDyn) == 0 {
		return 0, fmt.Errorf("fancy: no free dynamic slot on port %d", port)
	}
	slot := m.freeDyn[0]
	m.freeDyn = m.freeDyn[1:]
	m.dyn[entry] = slot
	fsm := &senderFSM{
		det: d, port: port, kind: wire.KindDedicated, unit: uint16(slot),
		interval: d.cfg.ExchangeInterval,
		counters: &dedicatedSender{det: d, port: port, slot: slot, entry: entry},
	}
	m.dedicated[slot] = fsm
	d.stats.Promotions++
	d.s.After(0, fsm.startSession)
	return slot, nil
}

// Demote releases entry's dynamic slot on the port: the counting FSM is
// killed, the flag bit cleared, and the slot returned to the free list.
// The entry's traffic falls back to the hash-based tree. Stale control
// messages for the dead session are ignored (the slot dispatch is
// nil-guarded) and a later reuse of the slot resynchronizes the receiver
// on its first Start.
func (d *Detector) Demote(port int, entry netsim.EntryID) error {
	m, ok := d.monitors[port]
	if !ok {
		return fmt.Errorf("fancy: port %d is not monitored", port)
	}
	slot, ok := m.dyn[entry]
	if !ok {
		return fmt.Errorf("fancy: entry %d is not promoted on port %d", entry, port)
	}
	if fsm := m.dedicated[slot]; fsm != nil {
		fsm.kill()
		if fsm.linkDown {
			d.reportLinkUp(port)
		}
	}
	m.dedicated[slot] = nil
	delete(m.dyn, entry)
	m.out.Flags.Clear(slot)
	i := sort.SearchInts(m.freeDyn, slot)
	m.freeDyn = append(m.freeDyn, 0)
	copy(m.freeDyn[i+1:], m.freeDyn[i:])
	m.freeDyn[i] = slot
	d.stats.Demotions++
	return nil
}

// Promoted reports whether entry currently holds a dynamic slot on the
// port, and which.
func (d *Detector) Promoted(port int, entry netsim.EntryID) (int, bool) {
	m, ok := d.monitors[port]
	if !ok {
		return 0, false
	}
	slot, ok := m.dyn[entry]
	return slot, ok
}

// DynamicOccupancy returns the used and total dynamic slots of a port.
func (d *Detector) DynamicOccupancy(port int) (used, capacity int) {
	m, ok := d.monitors[port]
	if !ok {
		return 0, 0
	}
	return len(m.dyn), d.cfg.DynamicSlots
}

// PromotedEntries lists a port's dynamically promoted entries in
// ascending order (deterministic for reports and tests).
func (d *Detector) PromotedEntries(port int) []netsim.EntryID {
	m, ok := d.monitors[port]
	if !ok {
		return nil
	}
	out := make([]netsim.EntryID, 0, len(m.dyn))
	for e := range m.dyn {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HHReportInterval exposes the effective reporting interval (0 when the
// stage is not deployed).
func (d *Detector) HHReportInterval() sim.Time {
	if d.cfg.HH == nil {
		return 0
	}
	return d.cfg.HH.ReportInterval
}
