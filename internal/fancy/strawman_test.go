package fancy

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// strawBed wires a strawman sender/receiver pair on the two-switch
// topology of the main testbed.
type strawBed struct {
	*testbed
	snd *StrawmanSender
	rcv *StrawmanReceiver
}

func newStrawBed(t *testing.T, cfg StrawmanConfig, reverse *netsim.Failure, seed int64) *strawBed {
	t.Helper()
	// Reuse the topology but without FANcY detectors: build manually.
	s := sim.New(seed)
	tb := &testbed{s: s}
	tb.src = netsim.NewHost(s, "src")
	tb.dst = netsim.NewHost(s, "dst")
	tb.up = netsim.NewSwitch(s, "up", 2)
	tb.down = netsim.NewSwitch(s, "down", 2)
	netsim.Connect(s, tb.src, 0, tb.up, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	tb.link = netsim.Connect(s, tb.up, 1, tb.down, 0, netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9})
	netsim.Connect(s, tb.down, 1, tb.dst, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	tb.up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	tb.down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	tb.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	sb := &strawBed{testbed: tb}
	sb.snd = NewStrawmanSender(s, tb.up, 1, cfg)
	sb.rcv = NewStrawmanReceiver(s, tb.down, 0, sb.snd, reverse, cfg)
	return sb
}

func TestStrawmanMemoryScalesWithHistory(t *testing.T) {
	base := StrawmanConfig{History: 1}
	quad := StrawmanConfig{History: 4}
	if quad.MemoryBits() <= base.MemoryBits() {
		t.Fatal("history must cost memory")
	}
	// §4.1: reliability across k sessions consumes ≈k× the memory of a
	// single session's counters.
	if got := quad.MemoryBits() - 16; got != 4*(base.MemoryBits()-16) {
		t.Errorf("memory = %d bits, want 4× the single-session counters", got)
	}
}

func TestStrawmanDetectsPartialLossLossless(t *testing.T) {
	cfg := StrawmanConfig{Entry: 7, Interval: 50 * sim.Millisecond, History: 2}
	sb := newStrawBed(t, cfg, nil, 1)
	sb.udp(7, 2e6, 0, 5*sim.Second)
	sb.failEntries(1*sim.Second, 0.5, 7)
	sb.s.Run(5 * sim.Second)

	if sb.snd.Mismatches == 0 {
		t.Fatal("strawman missed a 50% loss with a lossless reverse path")
	}
	if sb.snd.FlaggedAt < sim.Second || sb.snd.FlaggedAt > 1500*sim.Millisecond {
		t.Errorf("flagged at %v, want shortly after 1s", sb.snd.FlaggedAt)
	}
	if f := sb.snd.VerifiedFraction(); f < 0.9 {
		t.Errorf("verified fraction = %.2f on a lossless reverse path", f)
	}
	// Continuous counting: no false mismatches before the failure means
	// the session tags kept both sides consistent.
}

func TestStrawmanLosesMeasurementsUnderReverseLoss(t *testing.T) {
	// §4.1's core criticism: a lost report permanently loses the session;
	// with 50% reverse loss and history 1, about half the measurements
	// are gone.
	cfg := StrawmanConfig{Entry: 7, Interval: 50 * sim.Millisecond, History: 1}
	reverse := netsim.FailUniform(3, 0, 0.5)
	sb := newStrawBed(t, cfg, reverse, 2)
	sb.udp(7, 2e6, 0, 5*sim.Second)
	sb.s.Run(5 * sim.Second)

	f := sb.snd.VerifiedFraction()
	if f > 0.65 || f < 0.35 {
		t.Errorf("verified fraction = %.2f under 50%% reverse loss, want ≈0.5", f)
	}
	if sb.rcv.ReportsLost == 0 {
		t.Error("no reports recorded as lost")
	}
}

func TestStrawmanBlindDuringBlackhole(t *testing.T) {
	// The receiver only reports when it SEES a tag from a new session: a
	// blackhole starves it of packets entirely, so sessions go
	// unverified and the strawman cannot even flag the failure. FANcY's
	// control-driven Stop/Report does not have this problem.
	cfg := StrawmanConfig{Entry: 7, Interval: 50 * sim.Millisecond, History: 2}
	sb := newStrawBed(t, cfg, nil, 3)
	sb.udp(7, 2e6, 0, 6*sim.Second)
	sb.failEntries(1*sim.Second, 1.0, 7)
	sb.s.Run(6 * sim.Second)

	if sb.snd.Mismatches > 1 {
		// At most the boundary session straddling the failure start can
		// be verified-with-mismatch; after that the receiver is starved.
		t.Errorf("mismatches = %d; blackhole should starve the strawman's reporting", sb.snd.Mismatches)
	}
	if sb.snd.Lost == 0 {
		t.Error("expected lost measurements while the receiver is starved")
	}
}

func TestQueueGuardWindows(t *testing.T) {
	s := sim.New(1)
	a := netsim.NewHost(s, "a")
	b := netsim.NewHost(s, "b")
	// Slow link with a deep queue: bursts congest it.
	link := netsim.Connect(s, a, 0, b, 0, netsim.LinkConfig{Delay: 0, RateBps: 1e6, QueueBytes: 1 << 20})
	b.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	g := NewQueueGuard(s, 10_000, 5*sim.Millisecond)
	g.Watch(link.AB)

	// Burst at t=1s: 100 KB into a 1 Mbps link ≈ 800 ms of backlog.
	s.Schedule(sim.Second, func() {
		for i := 0; i < 100; i++ {
			a.Send(&netsim.Packet{Size: 1000, Proto: netsim.ProtoUDP})
		}
	})
	s.Run(3 * sim.Second)

	if g.CongestedWindows() == 0 {
		t.Fatal("burst did not register any congested window")
	}
	if !g.Congested(0, 1100*sim.Millisecond, 1200*sim.Millisecond) {
		t.Error("window during the burst not reported congested")
	}
	if g.Congested(0, 0, 500*sim.Millisecond) {
		t.Error("pre-burst window reported congested")
	}
	if g.Congested(0, 2500*sim.Millisecond, 2600*sim.Millisecond) {
		t.Error("post-drain window reported congested")
	}
}

func TestCongestionGuardDiscardsSessions(t *testing.T) {
	// A guard that flags everything congested must suppress all detection
	// and count discarded sessions.
	tb := newTestbed(t, testCfg, 31)
	tb.det.SetCongestionGuard(alwaysCongested{})
	tb.udp(10, 2e6, 0, 4*sim.Second)
	tb.failEntries(1*sim.Second, 1.0, 10)
	tb.s.Run(4 * sim.Second)

	if n := tb.countEvents(EventDedicated); n != 0 {
		t.Errorf("%d events despite congestion discard", n)
	}
	if tb.det.DiscardedSessions() == 0 {
		t.Error("no sessions recorded as discarded")
	}
}

func TestCongestionGuardCleanWindowsStillDetect(t *testing.T) {
	tb := newTestbed(t, testCfg, 32)
	g := NewQueueGuard(tb.s, 1<<20, 5*sim.Millisecond) // nothing exceeds 1 MB
	g.Watch(tb.link.AB)
	tb.det.SetCongestionGuard(g)
	tb.udp(10, 2e6, 0, 4*sim.Second)
	tb.failEntries(1*sim.Second, 1.0, 10)
	tb.s.Run(4 * sim.Second)

	if _, ok := tb.firstEvent(EventDedicated); !ok {
		t.Fatal("uncongested guard suppressed a real detection")
	}
	if tb.det.DiscardedSessions() != 0 {
		t.Errorf("%d sessions discarded without congestion", tb.det.DiscardedSessions())
	}
}

type alwaysCongested struct{}

func (alwaysCongested) Congested(int, sim.Time, sim.Time) bool { return true }
