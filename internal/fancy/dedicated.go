package fancy

// Dedicated counters: each high-priority entry is tracked by one pair of
// counters (one per session side) driven by its own sender/receiver FSM
// pair (§4.3). Detection is immediate — any positive discrepancy at session
// close flags the entry, with zero false positives.

import (
	"fancy/internal/netsim"
	"fancy/internal/wire"
)

// dedicatedSender is the sender-side counter for one high-priority entry.
type dedicatedSender struct {
	det   *Detector
	port  int
	slot  int // index into the FlagArray and wire unit
	entry netsim.EntryID
	count uint64
}

func (d *dedicatedSender) resetSession() []wire.ZoomTarget {
	d.count = 0
	return nil
}

func (d *dedicatedSender) tagPacket(entry netsim.EntryID) (wire.Tag, bool) {
	// The detector routes only this entry's packets here.
	d.count++
	return wire.DedicatedTag(uint16(d.slot)), true
}

func (d *dedicatedSender) handleReport(counters []uint64) {
	if len(counters) != 1 {
		return // malformed report
	}
	remote := counters[0]
	if d.count > remote {
		d.det.outputs(d.port).Flags.Set(d.slot)
		d.det.emit(Event{
			Time: d.det.s.Now(), Port: d.port, Kind: EventDedicated,
			Entry: d.entry, Diff: d.count - remote,
		})
	}
}

// dedicatedReceiver is the downstream counter for one high-priority entry.
type dedicatedReceiver struct {
	count uint64
}

func (d *dedicatedReceiver) resetSession(_ []wire.ZoomTarget) { d.count = 0 }
func (d *dedicatedReceiver) countTag(_ wire.Tag)              { d.count++ }
func (d *dedicatedReceiver) snapshot() []uint64               { return []uint64{d.count} }
