package fancy

import (
	"testing"

	"fancy/internal/fancy/tree"
	"fancy/internal/hh"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

func hhTestConfig() Config {
	return Config{
		Tree:         tree.Params{Width: 8, Depth: 2, Split: 2, Pipelined: true},
		TreeSeed:     7,
		DynamicSlots: 2,
		HH:           &HHStageConfig{Sketch: hh.Params{Stages: 3, Width: 32, Seed: 99}},
	}
}

// TestHHReportsFlow: with the stage deployed, canonical report frames
// arrive once per interval, sequence-numbered, epoch-stamped, and ranking
// the genuinely heavy prefix first.
func TestHHReportsFlow(t *testing.T) {
	tb := newTestbed(t, hhTestConfig(), 1)
	var reports []*hh.Report
	tb.det.OnHHReport = func(port int, frame []byte) {
		if port != 1 {
			t.Fatalf("report from port %d, want 1", port)
		}
		rep, err := hh.DecodeReport(frame)
		if err != nil {
			t.Fatalf("report did not decode: %v", err)
		}
		reports = append(reports, rep)
	}
	tb.udp(7, 4e6, 0, sim.Second)    // heavy
	tb.udp(30, 400e3, 0, sim.Second) // light
	tb.s.Run(sim.Second)

	if len(reports) < 8 {
		t.Fatalf("got %d reports in 1 s, want ~10", len(reports))
	}
	for i, rep := range reports {
		if rep.Seq != uint32(i) {
			t.Fatalf("report %d has seq %d", i, rep.Seq)
		}
		if rep.Epoch != tb.det.Epoch() {
			t.Fatalf("report epoch %d, detector epoch %d", rep.Epoch, tb.det.Epoch())
		}
	}
	// Steady-state windows must rank the heavy prefix first.
	last := reports[len(reports)-1]
	if len(last.Entries) == 0 || last.Entries[0].Entry != 7 {
		t.Fatalf("last report does not lead with the heavy prefix: %+v", last.Entries)
	}
	if last.Packets == 0 {
		t.Fatal("report window saw no packets")
	}
}

// TestPromoteDetectGrayDemote is the full dynamic-slot lifecycle: promote
// a prefix, detect a gray failure on it through the dedicated counter,
// demote it, and reuse the slot.
func TestPromoteDetectGrayDemote(t *testing.T) {
	tb := newTestbed(t, hhTestConfig(), 2)
	tb.udp(7, 4e6, 0, 2*sim.Second)

	tb.s.ScheduleAt(100*sim.Millisecond, func() {
		slot, err := tb.det.Promote(1, 7)
		if err != nil {
			t.Errorf("Promote: %v", err)
		}
		if slot != 0 {
			t.Errorf("first promotion got slot %d, want 0", slot)
		}
	})
	tb.failEntries(500*sim.Millisecond, 1.0, 7)
	tb.s.Run(sim.Second)

	ev, ok := tb.firstEvent(EventDedicated)
	if !ok || ev.Entry != 7 {
		t.Fatalf("no dedicated detection for the promoted entry: %+v ok=%v", ev, ok)
	}
	if ev.Time < 500*sim.Millisecond || ev.Time > 800*sim.Millisecond {
		t.Fatalf("detection at %v, want within ~2 exchange intervals of the failure", ev.Time)
	}
	if !tb.det.Flagged(1, 7) {
		t.Fatal("promoted entry not flagged after detection")
	}
	if used, capacity := tb.det.DynamicOccupancy(1); used != 1 || capacity != 2 {
		t.Fatalf("occupancy = %d/%d, want 1/2", used, capacity)
	}
	if got := tb.det.PromotedEntries(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("PromotedEntries = %v", got)
	}

	if err := tb.det.Demote(1, 7); err != nil {
		t.Fatal(err)
	}
	if tb.det.Flagged(1, 7) {
		t.Fatal("flag survived demotion")
	}
	if used, _ := tb.det.DynamicOccupancy(1); used != 0 {
		t.Fatalf("occupancy after demotion = %d", used)
	}
	st := tb.det.Stats()
	if st.Promotions != 1 || st.Demotions != 1 {
		t.Fatalf("stats = %+v, want 1 promotion and 1 demotion", st)
	}
	// The freed slot is reused lowest-first.
	if slot, err := tb.det.Promote(1, 9); err != nil || slot != 0 {
		t.Fatalf("slot reuse: slot=%d err=%v, want 0", slot, err)
	}
}

// TestPromoteErrors: static entries, duplicates and exhaustion are all
// rejected without corrupting state.
func TestPromoteErrors(t *testing.T) {
	cfg := hhTestConfig()
	cfg.HighPriority = []netsim.EntryID{3}
	tb := newTestbed(t, cfg, 3)
	if _, err := tb.det.Promote(1, 3); err == nil {
		t.Fatal("promoted a static high-priority entry")
	}
	if _, err := tb.det.Promote(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.det.Promote(1, 10); err == nil {
		t.Fatal("double promotion accepted")
	}
	if _, err := tb.det.Promote(1, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.det.Promote(1, 12); err == nil {
		t.Fatal("promotion past capacity accepted")
	}
	if err := tb.det.Demote(1, 12); err == nil {
		t.Fatal("demoted an entry that was never promoted")
	}
	// Dynamic slots are provisioned after the static ones: entry 10 got
	// unit len(HighPriority)=1.
	if slot, ok := tb.det.Promoted(1, 10); !ok || slot != 1 {
		t.Fatalf("Promoted(10) = (%d, %v), want slot 1", slot, ok)
	}
}

// TestRestartWipesDynamicSlots: a device reboot forgets every dynamic
// assignment and stamps subsequent reports with the new epoch, which is
// what tells the allocation controller to relearn.
func TestRestartWipesDynamicSlots(t *testing.T) {
	tb := newTestbed(t, hhTestConfig(), 4)
	tb.udp(7, 4e6, 0, sim.Second)
	var epochs []uint8
	tb.det.OnHHReport = func(_ int, frame []byte) {
		rep, err := hh.DecodeReport(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		epochs = append(epochs, rep.Epoch)
	}
	tb.s.ScheduleAt(100*sim.Millisecond, func() {
		if _, err := tb.det.Promote(1, 7); err != nil {
			t.Errorf("Promote: %v", err)
		}
	})
	tb.s.ScheduleAt(450*sim.Millisecond, tb.det.Restart)
	tb.s.Run(sim.Second)

	if _, ok := tb.det.Promoted(1, 7); ok {
		t.Fatal("dynamic assignment survived Restart")
	}
	if used, capacity := tb.det.DynamicOccupancy(1); used != 0 || capacity != 2 {
		t.Fatalf("occupancy after restart = %d/%d", used, capacity)
	}
	if len(epochs) < 6 {
		t.Fatalf("only %d reports", len(epochs))
	}
	if epochs[0] != 1 || epochs[len(epochs)-1] != 2 {
		t.Fatalf("epochs %v do not span the restart", epochs)
	}
	// Promotion works again post-restart, from a clean slot list.
	if slot, err := tb.det.Promote(1, 8); err != nil || slot != 0 {
		t.Fatalf("post-restart promotion: slot=%d err=%v", slot, err)
	}
}
