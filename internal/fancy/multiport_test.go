package fancy

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// TestMonitorMultipleDownstreams: §3 — "each upstream FANcY switch sending
// packets to a downstream FANcY switch establishes counting sessions with
// the downstream". One upstream switch runs independent session sets on
// two egress ports; a failure on one link must flag only that port.
func TestMonitorMultipleDownstreams(t *testing.T) {
	s := sim.New(51)
	src := netsim.NewHost(s, "src")
	up := netsim.NewSwitch(s, "up", 3)
	d1 := netsim.NewSwitch(s, "down1", 2)
	d2 := netsim.NewSwitch(s, "down2", 2)
	sink1 := netsim.NewHost(s, "sink1")
	sink2 := netsim.NewHost(s, "sink2")
	lc := netsim.LinkConfig{Delay: 5 * sim.Millisecond, RateBps: 10e9}
	netsim.Connect(s, src, 0, up, 0, lc)
	l1 := netsim.Connect(s, up, 1, d1, 0, lc)
	netsim.Connect(s, up, 2, d2, 0, lc)
	netsim.Connect(s, d1, 1, sink1, 0, lc)
	netsim.Connect(s, d2, 1, sink2, 0, lc)
	sink1.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	sink2.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	// Entry 10 exits via port 1, entry 11 via port 2 — the same entry IDs
	// are dedicated on both ports (per-port state).
	up.Routes.InsertEntry(10, netsim.Route{Port: 1, Backup: -1})
	up.Routes.InsertEntry(11, netsim.Route{Port: 2, Backup: -1})
	d1.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	d2.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})

	det, err := NewDetector(s, up, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, downstream := range []*netsim.Switch{d1, d2} {
		dd, err := NewDetector(s, downstream, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		dd.ListenPort(0)
	}
	out1 := det.MonitorPort(1)
	out2 := det.MonitorPort(2)
	var events []Event
	det.OnEvent = func(ev Event) { events = append(events, ev) }

	for _, e := range []netsim.EntryID{10, 11} {
		entry := e
		gap := 4 * sim.Millisecond
		var tick func()
		tick = func() {
			if s.Now() >= 6*sim.Second {
				return
			}
			src.Send(&netsim.Packet{Entry: entry, Dst: netsim.EntryAddr(entry, 1),
				Proto: netsim.ProtoUDP, Size: 800})
			s.Schedule(gap, tick)
		}
		s.Schedule(0, tick)
	}

	// Fail only the up→d1 link for entry 10.
	l1.AB.SetFailure(netsim.FailEntries(9, 2*sim.Second, 1.0, 10))
	s.Run(6 * sim.Second)

	if !det.Flagged(1, 10) {
		t.Fatal("failed entry on port 1 not flagged")
	}
	if det.Flagged(2, 11) || det.Flagged(2, 10) {
		t.Fatal("healthy port 2 flagged")
	}
	if out1.Flags.Count() != 1 || out2.Flags.Count() != 0 {
		t.Fatalf("flag counts = %d/%d, want 1/0", out1.Flags.Count(), out2.Flags.Count())
	}
	for _, ev := range events {
		if ev.Kind == EventDedicated && ev.Port != 1 {
			t.Errorf("event on port %d, want only port 1: %v", ev.Port, ev)
		}
	}
	// Both ports cycle sessions independently.
	if det.SessionsCompleted(1) == 0 || det.SessionsCompleted(2) == 0 {
		t.Error("sessions not cycling on both ports")
	}
}

// Hot-path microbenchmarks for the per-packet work on a monitored port.

func benchDetector(b *testing.B, entry netsim.EntryID) {
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw", 2)
	det, err := NewDetector(s, sw, testCfg)
	if err != nil {
		b.Fatal(err)
	}
	det.MonitorPort(1)
	// Put the per-entry/tree unit into Counting by faking the handshake.
	s.Run(5 * sim.Millisecond)
	for _, fsm := range det.monitors[1].dedicated {
		fsm.state = sCounting
	}
	det.monitors[1].tree.state = sCounting

	pkt := &netsim.Packet{Entry: entry, Proto: netsim.ProtoUDP, Size: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Tagged = false
		pkt.Size = 1000
		det.OnEgress(pkt, 1)
	}
}

func BenchmarkEgressDedicatedCounter(b *testing.B) { benchDetector(b, 10) }
func BenchmarkEgressTreeHashing(b *testing.B)      { benchDetector(b, 5000) }
