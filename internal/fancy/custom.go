package fancy

// Custom counting sessions — the §4.1 extensibility claim: "our FSMs can
// be easily extended to synchronize and exchange arbitrary state across
// switches. Indeed, exchanging information other than packet counters only
// requires to tweak the semantics that switches associate to packet tags,
// and adjust the content of the Report messages."
//
// A CustomUnit defines those two things: how egress packets map to tags
// (and local state), and what to do with the downstream's report. The unit
// rides the existing stop-and-wait sender/receiver FSMs unchanged, getting
// their reliability (retransmission, link-down reporting) for free.
//
// SizeHistogramUnit below is a working example: it synchronizes per-packet-
// size bucket counters to localize the Table 1 bug class "drops packets
// with specific sizes" — something per-entry counters cannot express.

import (
	"fmt"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// CustomSender is the upstream half of a custom session.
type CustomSender interface {
	// ResetSession zeroes local state for a new counting session.
	ResetSession()
	// Observe maps an egress packet to its tag; ok=false leaves the
	// packet untagged and uncounted this session.
	Observe(pkt *netsim.Packet) (tag wire.Tag, ok bool)
	// HandleReport receives the downstream's state at session close.
	// state is borrowed from the control-message parse scratch and is only
	// valid for the duration of the call; copy it to retain it.
	HandleReport(state []uint64)
}

// CustomReceiver is the downstream half.
type CustomReceiver interface {
	ResetSession()
	// Count processes one tagged packet.
	Count(tag wire.Tag)
	// Snapshot returns the state for the Report message.
	Snapshot() []uint64
}

// customUnitBase is the first wire unit number used for custom sessions,
// keeping them clear of dedicated-entry slots.
const customUnitBase uint16 = 0xf000

// MonitorCustom opens recurring custom sessions on an egress port,
// exchanging cs's state every interval. The returned unit number must be
// used by the downstream's ListenCustom. MonitorPort must have been called
// for the port first (custom sessions share its infrastructure).
func (d *Detector) MonitorCustom(port int, interval sim.Time, cs CustomSender) uint16 {
	m := d.monitors[port]
	if m == nil {
		panic(fmt.Sprintf("fancy: MonitorCustom before MonitorPort(%d)", port))
	}
	if len(m.custom) > 0 {
		// Packet tags carry no unit number, so tagged-packet dispatch at
		// the receiver supports one custom unit per port.
		panic(fmt.Sprintf("fancy: port %d already has a custom session", port))
	}
	unit := customUnitBase + uint16(len(m.custom))
	fsm := &senderFSM{
		det: d, port: port, kind: wire.KindCustom, unit: unit,
		interval: interval,
		counters: &customSenderAdapter{cs},
	}
	m.custom = append(m.custom, fsm)
	d.s.After(0, fsm.startSession)
	return unit
}

// ListenCustom registers the downstream half for (port, unit).
func (d *Detector) ListenCustom(port int, unit uint16, cr CustomReceiver) {
	d.ListenPort(port)
	if d.customRecv == nil {
		d.customRecv = make(map[uint32]CustomReceiver)
	}
	d.customRecv[uint32(port)<<16|uint32(unit)] = cr
}

// customSenderAdapter bridges CustomSender onto the senderCounters
// interface the FSM drives.
type customSenderAdapter struct{ cs CustomSender }

func (a *customSenderAdapter) resetSession() []wire.ZoomTarget {
	a.cs.ResetSession()
	return nil
}

func (a *customSenderAdapter) tagPacket(netsim.EntryID) (wire.Tag, bool) {
	// Custom units tag via tagPacketFull (they need the whole packet).
	return wire.Tag{}, false
}

func (a *customSenderAdapter) handleReport(counters []uint64) {
	a.cs.HandleReport(counters)
}

// customReceiverAdapter bridges CustomReceiver onto receiverCounters.
type customReceiverAdapter struct{ cr CustomReceiver }

func (a *customReceiverAdapter) resetSession([]wire.ZoomTarget) { a.cr.ResetSession() }
func (a *customReceiverAdapter) countTag(tag wire.Tag)          { a.cr.Count(tag) }
func (a *customReceiverAdapter) snapshot() []uint64             { return a.cr.Snapshot() }

// SizeBuckets is the bucket count of SizeHistogramUnit (64-byte buckets up
// to 1536 B and an overflow bucket → 25 buckets fit one tag byte).
const SizeBuckets = 25

// SizeHistogramUnit synchronizes per-packet-size counters across a link,
// localizing hardware bugs that drop packets of specific sizes. It
// implements both CustomSender and CustomReceiver (instantiate one per
// side).
type SizeHistogramUnit struct {
	counts [SizeBuckets]uint64

	// OnMismatch fires on the upstream side for each size bucket with
	// missing packets.
	OnMismatch func(bucket int, diff uint64)

	// FlaggedBuckets accumulates mismatching buckets across sessions.
	FlaggedBuckets map[int]bool
}

// NewSizeHistogramUnit builds a unit.
func NewSizeHistogramUnit() *SizeHistogramUnit {
	return &SizeHistogramUnit{FlaggedBuckets: make(map[int]bool)}
}

// SizeBucket maps a wire size to its bucket.
func SizeBucket(size int) int {
	b := size / 64
	if b >= SizeBuckets {
		b = SizeBuckets - 1
	}
	return b
}

// BucketRange describes a bucket's size range for reports.
func BucketRange(b int) string {
	if b >= SizeBuckets-1 {
		return fmt.Sprintf("≥%dB", (SizeBuckets-1)*64)
	}
	return fmt.Sprintf("%d-%dB", b*64, b*64+63)
}

// ResetSession implements CustomSender/CustomReceiver.
func (u *SizeHistogramUnit) ResetSession() {
	for i := range u.counts {
		u.counts[i] = 0
	}
}

// Observe implements CustomSender.
func (u *SizeHistogramUnit) Observe(pkt *netsim.Packet) (wire.Tag, bool) {
	b := SizeBucket(pkt.Size)
	u.counts[b]++
	return wire.Tag{Node: 0, Counter: uint8(b)}, true
}

// Count implements CustomReceiver.
func (u *SizeHistogramUnit) Count(tag wire.Tag) {
	if int(tag.Counter) < SizeBuckets {
		u.counts[tag.Counter]++
	}
}

// Snapshot implements CustomReceiver.
func (u *SizeHistogramUnit) Snapshot() []uint64 {
	out := make([]uint64, SizeBuckets)
	copy(out, u.counts[:])
	return out
}

// HandleReport implements CustomSender.
func (u *SizeHistogramUnit) HandleReport(state []uint64) {
	for b := 0; b < SizeBuckets && b < len(state); b++ {
		if u.counts[b] > state[b] {
			u.FlaggedBuckets[b] = true
			if u.OnMismatch != nil {
				u.OnMismatch(b, u.counts[b]-state[b])
			}
		}
	}
}
