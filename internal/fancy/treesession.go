package fancy

// Tree sessions: the hash-based tree counters and the zooming algorithm
// (§4.2). The pipelined variant counts the root node plus every active zoom
// node simultaneously, exploring up to split^(depth-1) paths in parallel;
// the non-pipelined variant (the Tofino prototype's, Appendix B.1) reuses a
// single node's memory and cycles a zooming-stage register through the
// levels, counting only packets that match the current partial path.

import (
	"sort"

	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/wire"
)

// zoomNode is one active exploration: a partial hash path and the counter
// node at its tip. Explorations move down one level per counting session
// like a wave (the pipelining of §4.2): a zoom at level L either advances
// into up to k children at level L+1 or retires, so its node slot frees
// every session and the root can start k new explorations per session.
type zoomNode struct {
	path     []uint16
	counters []uint64
	nodeID   uint8 // tag node ID this session (1-based; 0 is the root)
}

// treeSender runs the sender side of the tree session for one port.
type treeSender struct {
	det    *Detector
	port   int
	params tree.Params
	hasher *tree.Hasher

	root    []uint64
	zooms   []*zoomNode
	pathBuf []uint16

	// Non-pipelined state (zooming stage register, max0/max1/... indices).
	stage int
	maxes []uint16
	node  []uint64 // the single reused node

	// Uniform-failure bookkeeping: emit one event per failure episode.
	uniformActive bool

	// localized marks root counters whose exploration already reached a
	// reported leaf during the current mismatch episode. New waves prefer
	// unexplored counters so a single persistent heavy failure cannot
	// starve the others; an entry is cleared once its counter goes clean
	// (the failure healed or was rerouted away).
	localized map[uint16]bool

	selection ZoomSelection
}

func newTreeSender(det *Detector, port int, params tree.Params, seed uint64) *treeSender {
	t := &treeSender{
		det: det, port: port, params: params,
		hasher:    tree.NewHasher(params, seed),
		root:      make([]uint64, params.Width),
		pathBuf:   make([]uint16, 0, params.Depth),
		localized: make(map[uint16]bool),
		selection: det.cfg.ZoomSelection,
	}
	if !params.Pipelined {
		t.maxes = make([]uint16, params.Depth-1)
		t.node = make([]uint64, params.Width)
	}
	return t
}

func (t *treeSender) resetSession() []wire.ZoomTarget {
	if !t.params.Pipelined {
		for i := range t.node {
			t.node[i] = 0
		}
		if t.stage == 0 {
			return nil
		}
		return []wire.ZoomTarget{{Path: append([]uint16(nil), t.maxes[:t.stage]...)}}
	}
	for i := range t.root {
		t.root[i] = 0
	}
	targets := make([]wire.ZoomTarget, len(t.zooms))
	for i, z := range t.zooms {
		for j := range z.counters {
			z.counters[j] = 0
		}
		z.nodeID = uint8(i + 1)
		targets[i] = wire.ZoomTarget{Path: z.path}
	}
	return targets
}

func (t *treeSender) tagPacket(entry netsim.EntryID) (wire.Tag, bool) {
	t.pathBuf = t.hasher.Path(uint64(entry), t.pathBuf[:0])
	path := t.pathBuf
	if !t.params.Pipelined {
		return t.tagNonPipelined(path)
	}
	t.root[path[0]]++
	var deepest *zoomNode
	for _, z := range t.zooms {
		if isPrefix(z.path, path) {
			z.counters[path[len(z.path)]]++
			if deepest == nil || len(z.path) > len(deepest.path) {
				deepest = z
			}
		}
	}
	if deepest == nil {
		return wire.Tag{Node: 0, Counter: uint8(path[0])}, true
	}
	return wire.Tag{Node: deepest.nodeID, Counter: uint8(path[len(deepest.path)])}, true
}

func (t *treeSender) tagNonPipelined(path []uint16) (wire.Tag, bool) {
	if t.stage > 0 {
		for l := 0; l < t.stage; l++ {
			if path[l] != t.maxes[l] {
				// Not under the zoomed partial path: not counted this
				// session (root counting pauses while zooming).
				return wire.Tag{}, false
			}
		}
	}
	idx := path[t.stage]
	t.node[idx]++
	return wire.Tag{Node: uint8(t.stage), Counter: uint8(idx)}, true
}

func isPrefix(p, full []uint16) bool {
	if len(p) >= len(full) {
		return false
	}
	for i := range p {
		if p[i] != full[i] {
			return false
		}
	}
	return true
}

// mismatch is one counter with more local than downstream packets.
type mismatch struct {
	idx  uint16
	diff uint64
}

func diffs(local, remote []uint64) []mismatch {
	var out []mismatch
	for i := range local {
		if i < len(remote) && local[i] > remote[i] {
			out = append(out, mismatch{uint16(i), local[i] - remote[i]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].diff != out[b].diff {
			return out[a].diff > out[b].diff
		}
		return out[a].idx < out[b].idx
	})
	return out
}

func (t *treeSender) handleReport(counters []uint64) {
	if !t.params.Pipelined {
		t.handleReportNonPipelined(counters)
		return
	}
	w := t.params.Width
	if len(counters) < w {
		return // malformed
	}
	rootRemote := counters[:w]
	rootMis := diffs(t.root, rootRemote)

	// Uniform-failure test: more than half the root counters mismatch.
	if len(rootMis) > w/2 {
		if !t.uniformActive {
			t.uniformActive = true
			t.det.emit(Event{Time: t.det.s.Now(), Port: t.port, Kind: EventUniform})
		}
		t.zooms = nil // per-entry localization is meaningless here
		return
	}
	if len(rootMis) == 0 {
		t.uniformActive = false
	}

	hadZooms := len(t.zooms) > 0
	k := t.params.Split
	var next []*zoomNode
	taken := make(map[string]bool, len(t.zooms)) // paths active next session

	// Ablation hook: explore mismatching counters in random order instead
	// of largest-difference-first.
	reorder := func(mis []mismatch) []mismatch {
		if t.selection == SelectRandom && len(mis) > 1 {
			t.det.s.Rand().Shuffle(len(mis), func(a, b int) { mis[a], mis[b] = mis[b], mis[a] })
		}
		return mis
	}

	// Advance the waves: each zoom either reports (leaf level), splits
	// into up to k children one level deeper, or retires as a dead end.
	// Its own node slot frees either way — that is what lets the pipeline
	// explore k^(d-1) paths across d sessions (§4.2).
	for i, z := range t.zooms {
		lo := w * (i + 1)
		if lo+w > len(counters) {
			continue // malformed report; drop this wave
		}
		mis := reorder(diffs(z.counters, counters[lo:lo+w]))
		if len(mis) == 0 {
			continue // transient or collision dead end
		}
		if len(z.path) == t.params.Depth-1 {
			// Leaf level: flag each mismatching leaf counter (Fig. 6c).
			out := t.det.outputs(t.port)
			for _, m := range mis {
				leafPath := make([]uint16, len(z.path)+1)
				copy(leafPath, z.path)
				leafPath[len(z.path)] = m.idx
				out.Bloom.Insert(leafPath)
				t.det.emit(Event{
					Time: t.det.s.Now(), Port: t.port, Kind: EventTreeLeaf,
					Path: leafPath, Diff: m.diff,
				})
			}
			t.localized[z.path[0]] = true
			continue
		}
		children := 0
		for _, m := range mis {
			if children >= k {
				break
			}
			p := make([]uint16, len(z.path)+1)
			copy(p, z.path)
			p[len(z.path)] = m.idx
			if taken[pathKey(p)] {
				continue
			}
			taken[pathKey(p)] = true
			next = append(next, &zoomNode{path: p, counters: make([]uint64, w)})
			children++
		}
	}

	// The root starts up to k new waves per session, skipping counters
	// already under exploration ("since it is already zooming in c1, it
	// starts zooming in c2 this time").
	heads := make(map[uint16]bool)
	for _, z := range next {
		heads[z.path[0]] = true
	}
	// Healed counters leave the localized set so they can be re-explored
	// if they fail again later.
	misSet := make(map[uint16]bool, len(rootMis))
	for _, m := range rootMis {
		misSet[m.idx] = true
	}
	for idx := range t.localized {
		if !misSet[idx] {
			delete(t.localized, idx)
		}
	}
	started := 0
	rootMis = reorder(rootMis)
	// Two passes: fresh (never-localized) counters first, then — if wave
	// slots remain — already-localized ones, so persistent heavy failures
	// keep being monitored without starving undiagnosed ones.
	for _, fresh := range []bool{true, false} {
		for _, m := range rootMis {
			if started >= k {
				break
			}
			if heads[m.idx] || t.localized[m.idx] == fresh {
				continue
			}
			heads[m.idx] = true
			started++
			next = append(next, &zoomNode{path: []uint16{m.idx}, counters: make([]uint64, w)})
		}
	}

	if len(next) > 254 {
		// Tag node IDs are one byte; unreachable with sane split/depth.
		next = next[:254]
	}
	t.zooms = next

	if !hadZooms && len(t.zooms) > 0 {
		t.det.emit(Event{Time: t.det.s.Now(), Port: t.port, Kind: EventTreeZoomStart})
	}
}

func (t *treeSender) handleReportNonPipelined(counters []uint64) {
	if len(counters) < t.params.Width {
		return
	}
	mis := diffs(t.node, counters[:t.params.Width])
	switch {
	case t.stage == 0:
		if len(mis) > t.params.Width/2 {
			if !t.uniformActive {
				t.uniformActive = true
				t.det.emit(Event{Time: t.det.s.Now(), Port: t.port, Kind: EventUniform})
			}
			return
		}
		if len(mis) == 0 {
			t.uniformActive = false
			return
		}
		t.maxes[0] = mis[0].idx
		t.stage = 1
		t.det.emit(Event{Time: t.det.s.Now(), Port: t.port, Kind: EventTreeZoomStart})
	case t.stage < t.params.Depth-1:
		if len(mis) == 0 {
			t.stage = 0 // dead end; restart at the root
			return
		}
		t.maxes[t.stage] = mis[0].idx
		t.stage++
	default: // leaf level
		out := t.det.outputs(t.port)
		for _, m := range mis {
			leafPath := make([]uint16, t.stage+1)
			copy(leafPath, t.maxes[:t.stage])
			leafPath[t.stage] = m.idx
			out.Bloom.Insert(leafPath)
			t.det.emit(Event{
				Time: t.det.s.Now(), Port: t.port, Kind: EventTreeLeaf,
				Path: leafPath, Diff: m.diff,
			})
		}
		t.stage = 0
	}
}

func pathKey(p []uint16) string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}

// EntryPath returns the hash path the tree assigns to an entry, used by
// evaluations to check the output Bloom filter.
func (t *treeSender) EntryPath(entry netsim.EntryID) []uint16 {
	return t.hasher.Path(uint64(entry), nil)
}

// treeReceiver is the downstream side of the tree session.
type treeReceiver struct {
	params tree.Params

	root  []uint64
	nodes [][]uint64
	// ancestors[i] lists (nodeIdx, counterIdx) increments implied by a tag
	// for target i, precomputed from the prefix-closed target list.
	ancestors [][]ancestorRef
	targets   []wire.ZoomTarget

	// Non-pipelined: single reused node.
	node []uint64
}

type ancestorRef struct {
	node    int // -1 = root
	counter uint16
}

func newTreeReceiver(params tree.Params) *treeReceiver {
	r := &treeReceiver{params: params}
	if params.Pipelined {
		r.root = make([]uint64, params.Width)
	} else {
		r.node = make([]uint64, params.Width)
	}
	return r
}

func (r *treeReceiver) resetSession(targets []wire.ZoomTarget) {
	if !r.params.Pipelined {
		for i := range r.node {
			r.node[i] = 0
		}
		return
	}
	for i := range r.root {
		r.root[i] = 0
	}
	// The zoom configuration outlives this call (tag decoding reads it all
	// session), while targets is borrowed from the control-message parse
	// scratch — deep-copy it. Healthy ports carry no zooms, so this
	// allocates only while a failure is being chased.
	r.targets = make([]wire.ZoomTarget, len(targets))
	for i, tg := range targets {
		r.targets[i].Path = append([]uint16(nil), tg.Path...)
	}
	targets = r.targets
	r.nodes = make([][]uint64, len(targets))
	r.ancestors = make([][]ancestorRef, len(targets))
	idxByPath := make(map[string]int, len(targets))
	for i, tg := range targets {
		r.nodes[i] = make([]uint64, r.params.Width)
		idxByPath[pathKey(tg.Path)] = i
	}
	for i, tg := range targets {
		refs := []ancestorRef{{node: -1, counter: tg.Path[0]}}
		for l := 1; l < len(tg.Path); l++ {
			if pi, ok := idxByPath[pathKey(tg.Path[:l])]; ok {
				refs = append(refs, ancestorRef{node: pi, counter: tg.Path[l]})
			}
		}
		r.ancestors[i] = refs
	}
}

func (r *treeReceiver) countTag(tag wire.Tag) {
	if !r.params.Pipelined {
		if int(tag.Counter) < len(r.node) {
			r.node[tag.Counter]++
		}
		return
	}
	if tag.Node == 0 {
		if int(tag.Counter) < len(r.root) {
			r.root[tag.Counter]++
		}
		return
	}
	i := int(tag.Node) - 1
	if i >= len(r.nodes) {
		return // stale tag from a previous session layout
	}
	for _, ref := range r.ancestors[i] {
		if ref.node < 0 {
			r.root[ref.counter]++
		} else {
			r.nodes[ref.node][ref.counter]++
		}
	}
	if int(tag.Counter) < len(r.nodes[i]) {
		r.nodes[i][tag.Counter]++
	}
}

func (r *treeReceiver) snapshot() []uint64 {
	if !r.params.Pipelined {
		return append([]uint64(nil), r.node...)
	}
	out := make([]uint64, 0, (1+len(r.nodes))*r.params.Width)
	out = append(out, r.root...)
	for _, n := range r.nodes {
		out = append(out, n...)
	}
	return out
}
