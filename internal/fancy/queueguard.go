package fancy

// Congestion guard (§4.3, footnote 2): "systematic failures can be
// distinguished from congestion even in partial deployments of FANcY by
// monitoring queue sizes on all devices, and discarding all measurements
// collected during periods where queue sizes were excessively long."
//
// FANcY's counter placement (after the upstream TM, before the downstream
// one) already excludes local congestion drops; the guard matters for
// remote sessions whose tagged packets cross other switches' queues. A
// QueueGuard samples those queues and records congested windows; the
// detector then discards any counting session overlapping one.

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// CongestionGuard decides whether measurements taken in [from, to] on a
// monitored port must be discarded.
type CongestionGuard interface {
	Congested(port int, from, to sim.Time) bool
}

// SetCongestionGuard installs the guard consulted before every counter
// comparison. Sessions overlapping a congested window raise no events and
// are counted in DiscardedSessions.
func (d *Detector) SetCongestionGuard(g CongestionGuard) { d.guard = g }

// DiscardedSessions reports sessions dropped by the congestion guard.
func (d *Detector) DiscardedSessions() uint64 { return d.discarded }

// QueueGuard implements CongestionGuard by sampling transmit-queue depths
// of watched link directions and remembering windows where any exceeded
// the threshold.
type QueueGuard struct {
	s         *sim.Sim
	threshold int
	interval  sim.Time
	sampleFn  func() // bound once so resampling does not allocate

	watched []*netsim.LinkEnd
	windows []guardWindow

	Samples     uint64
	OverSamples uint64
}

type guardWindow struct{ from, to sim.Time }

// NewQueueGuard starts sampling every interval; queues deeper than
// thresholdBytes taint the surrounding window (one interval of slack on
// each side, since queues can have peaked between samples).
func NewQueueGuard(s *sim.Sim, thresholdBytes int, interval sim.Time) *QueueGuard {
	if interval <= 0 {
		interval = 5 * sim.Millisecond
	}
	g := &QueueGuard{s: s, threshold: thresholdBytes, interval: interval}
	g.sampleFn = g.sample
	s.After(interval, g.sampleFn)
	return g
}

// Watch adds a link direction to the sampled set.
func (g *QueueGuard) Watch(end *netsim.LinkEnd) { g.watched = append(g.watched, end) }

func (g *QueueGuard) sample() {
	g.Samples++
	over := false
	for _, end := range g.watched {
		if end.QueueDepthBytes() > g.threshold {
			over = true
			break
		}
	}
	if over {
		g.OverSamples++
		now := g.s.Now()
		w := guardWindow{from: now - g.interval, to: now + g.interval}
		if n := len(g.windows); n > 0 && g.windows[n-1].to >= w.from {
			g.windows[n-1].to = w.to // merge adjacent windows
		} else {
			g.windows = append(g.windows, w)
		}
	}
	g.s.After(g.interval, g.sampleFn)
}

// Congested implements CongestionGuard.
func (g *QueueGuard) Congested(_ int, from, to sim.Time) bool {
	for i := len(g.windows) - 1; i >= 0; i-- {
		w := g.windows[i]
		if w.to < from {
			return false // windows are time-ordered
		}
		if w.from <= to {
			return true
		}
	}
	return false
}

// CongestedWindows reports the recorded windows, for diagnostics.
func (g *QueueGuard) CongestedWindows() int { return len(g.windows) }
