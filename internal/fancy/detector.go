package fancy

import (
	"fmt"
	"sort"

	"fancy/internal/hh"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// Outputs are FANcY's per-port result structures (Figure 1): flagged
// dedicated entries and the Bloom filter of flagged hash paths.
type Outputs struct {
	Flags *FlagArray
	Bloom *PathBloom
}

// Detector attaches FANcY to one switch. Call MonitorPort on the upstream
// switch for each egress port to watch, and ListenPort on the downstream
// switch for the matching ingress port. A switch commonly does both, for
// different ports (§4.3: FANcY is designed to be deployed at every switch).
type Detector struct {
	s   *sim.Sim
	sw  *netsim.Switch
	cfg Config

	// Layout is the memory plan computed from the config.
	Layout Layout

	slotByEntry map[netsim.EntryID]int

	monitors  map[int]*portMonitor
	listeners map[int]*portListener

	// ownAddr and peerAddr support partial deployments (§4.3): when the
	// counterpart switch is several hops away, control messages carry a
	// destination address so non-FANcY transit switches forward them, and
	// this detector only consumes control packets addressed to it.
	ownAddr  uint32
	peerAddr map[int]uint32

	guard     CongestionGuard
	discarded uint64

	// epoch is this detector incarnation's generation number, stamped into
	// every control message (wire.Header.Epoch). Restart increments it, so
	// control messages referring to pre-restart counter state are
	// recognizably stale and discarded by both sides. Zero is reserved so
	// an all-zero header never matches a live epoch.
	epoch uint8

	stats DetectorStats

	// ctlScratch is the reusable parse target for inbound control messages
	// (see OnIngress); its slice capacity is recycled across messages.
	ctlScratch wire.Message

	customRecv map[uint32]CustomReceiver

	// OnEvent receives every detection event (required for experiments;
	// may be nil).
	OnEvent func(Event)

	// OnHHReport receives the encoded heavy-hitter report of a monitored
	// port once per HH.ReportInterval (nil when cfg.HH is nil or nobody
	// subscribed). The frame decodes with hh.DecodeReport; the switch
	// agent's counter-allocation controller is the intended consumer.
	OnHHReport func(port int, frame []byte)

	// Control-plane overhead accounting (§5.3).
	CtlMsgsSent  uint64
	CtlBytesSent uint64
}

// portMonitor is the sender side for one monitored egress port.
type portMonitor struct {
	dedicated []*senderFSM // index = slot; dynamic slots are nil when free
	tree      *senderFSM
	treeCnt   *treeSender
	custom    []*senderFSM
	out       Outputs

	// Dynamic dedicated-slot state (cfg.DynamicSlots > 0): which entry
	// holds which slot, and the free slots in ascending order.
	dyn     map[netsim.EntryID]int
	freeDyn []int

	// Heavy-hitter stage state (cfg.HH != nil).
	hh       *hh.Sketch
	hhTimer  sim.Timer
	hhTickFn func()
	hhSeq    uint32

	// downUnits counts sub-state-machines currently reporting the link as
	// unresponsive; EventLinkDown fires on the 0→1 transition only, so a
	// port raises one alarm however many of its units time out.
	downUnits int
}

// portListener is the receiver side for one ingress port. FSMs are created
// on demand when the first Start for a unit arrives.
type portListener struct {
	units map[uint16]*receiverFSM
}

// NewDetector validates cfg (running the §4.3 input translation) and hooks
// the detector into the switch pipelines.
func NewDetector(s *sim.Sim, sw *netsim.Switch, cfg Config) (*Detector, error) {
	layout, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cfg.Tree = layout.Tree
	d := &Detector{
		s: s, sw: sw, cfg: cfg, Layout: layout, epoch: 1,
		slotByEntry: make(map[netsim.EntryID]int, len(cfg.HighPriority)),
		monitors:    make(map[int]*portMonitor),
		listeners:   make(map[int]*portListener),
		peerAddr:    make(map[int]uint32),
	}
	for i, e := range cfg.HighPriority {
		if _, dup := d.slotByEntry[e]; dup {
			return nil, fmt.Errorf("fancy: duplicate high-priority entry %d", e)
		}
		d.slotByEntry[e] = i
	}
	if cfg.DynamicSlots < 0 {
		return nil, fmt.Errorf("fancy: negative DynamicSlots")
	}
	// Dedicated slots double as wire unit numbers; they must stay below
	// the custom-unit range.
	if total := len(cfg.HighPriority) + cfg.DynamicSlots; total >= int(customUnitBase) {
		return nil, fmt.Errorf("fancy: %d dedicated slots exceed the unit number space", total)
	}
	sw.AddIngressHook(d)
	sw.AddEgressHook(d)
	sw.RefreshEgressHooks()
	return d, nil
}

// Config returns the effective configuration (defaults filled, tree sized).
func (d *Detector) Config() Config { return d.cfg }

// SetOwnAddr gives the detector an address for remote (multi-hop) counting
// sessions: it then consumes only control packets destined to that address
// and forwards the rest, so it can sit on the transit path of other
// detectors' sessions.
func (d *Detector) SetOwnAddr(addr uint32) { d.ownAddr = addr }

// SetPeerAddr sets the control-message destination for a monitored or
// listening port. Zero (the default) addresses the adjacent switch
// directly; a non-zero address lets non-FANcY transit switches route the
// messages in a partial deployment (§4.3).
func (d *Detector) SetPeerAddr(port int, addr uint32) { d.peerAddr[port] = addr }

// MonitorPort starts sender FSMs for an egress port: one per dedicated
// entry plus one for the tree. Session starts are staggered across the
// exchange interval so control messages do not burst.
func (d *Detector) MonitorPort(port int) *Outputs {
	if m, ok := d.monitors[port]; ok {
		return &m.out
	}
	m := &portMonitor{
		out: Outputs{
			Flags: NewFlagArray(len(d.cfg.HighPriority) + d.cfg.DynamicSlots),
			Bloom: NewPathBloom(d.cfg.BloomCells),
		},
	}
	d.startMonitor(m, port)
	d.monitors[port] = m
	return &m.out
}

// startMonitor (re)builds and launches a port's sender FSMs. Session starts
// are staggered across the exchange interval so control messages do not
// burst. Restart reuses it with the existing portMonitor so caller-held
// *Outputs pointers stay valid.
func (d *Detector) startMonitor(m *portMonitor, port int) {
	n := len(d.cfg.HighPriority)
	m.dedicated = m.dedicated[:0]
	for slot, entry := range d.cfg.HighPriority {
		fsm := &senderFSM{
			det: d, port: port, kind: wire.KindDedicated, unit: uint16(slot),
			interval: d.cfg.ExchangeInterval,
			counters: &dedicatedSender{det: d, port: port, slot: slot, entry: entry},
		}
		m.dedicated = append(m.dedicated, fsm)
		delay := sim.Time(int64(d.cfg.ExchangeInterval) * int64(slot) / int64(max(n, 1)))
		d.s.After(delay, fsm.startSession)
	}
	// Dynamic slots start free; Promote fills them. After a restart the
	// dataplane state is gone, so any previous assignment is forgotten —
	// the allocation controller relearns from fresh reports (it notices
	// the epoch change).
	m.dyn = make(map[netsim.EntryID]int)
	m.freeDyn = m.freeDyn[:0]
	for i := 0; i < d.cfg.DynamicSlots; i++ {
		m.dedicated = append(m.dedicated, nil)
		m.freeDyn = append(m.freeDyn, n+i)
	}
	if d.cfg.HH != nil {
		p := d.cfg.HH.Sketch
		p.Seed = hh.PortSeed(p.Seed, port)
		m.hh = hh.NewSketch(p)
		m.hhTimer.Stop()
		if m.hhTickFn == nil {
			m.hhTickFn = func() { d.hhTick(m, port) }
		}
		m.hhTimer = d.s.ScheduleTimer(d.cfg.HH.ReportInterval, m.hhTickFn)
	}
	m.treeCnt = newTreeSender(d, port, d.cfg.Tree, d.cfg.TreeSeed)
	m.tree = &senderFSM{
		det: d, port: port, kind: wire.KindTree, unit: wire.TreeUnit,
		interval: d.cfg.ZoomingInterval,
		counters: m.treeCnt,
	}
	d.s.After(0, m.tree.startSession)
}

// Restart models a device reboot: all protocol and counter state is wiped,
// the epoch is bumped so in-flight control messages from the previous
// incarnation are recognizably stale, and every monitored port starts fresh
// sessions. The peer resynchronizes on the first new-epoch Start it sees.
// Configuration, port wiring and registered custom units survive (they live
// in the control plane, not the reset dataplane state).
func (d *Detector) Restart() {
	d.epoch++
	if d.epoch == 0 {
		d.epoch = 1 // zero is reserved
	}
	d.stats.Restarts++
	// Restarted sender FSMs are scheduled below; visit the ports in a
	// fixed order so event sequence numbers stay reproducible.
	ports := make([]int, 0, len(d.monitors))
	for port := range d.monitors {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		m := d.monitors[port]
		for _, f := range m.dedicated {
			if f != nil {
				f.kill()
			}
		}
		custom := m.custom
		for _, f := range custom {
			f.kill()
		}
		m.custom = nil
		m.tree.kill()
		m.downUnits = 0
		// A reboot wipes the output registers too.
		for i := 0; i < m.out.Flags.Len(); i++ {
			m.out.Flags.Clear(i)
		}
		m.out.Bloom.Reset()
		d.startMonitor(m, port)
		for _, old := range custom {
			fsm := &senderFSM{
				det: d, port: port, kind: wire.KindCustom, unit: old.unit,
				interval: old.interval, counters: old.counters,
			}
			m.custom = append(m.custom, fsm)
			d.s.After(0, fsm.startSession)
		}
	}
	for _, l := range d.listeners {
		for _, f := range l.units {
			f.kill()
		}
		l.units = make(map[uint16]*receiverFSM)
	}
}

// ListenPort enables receiver FSMs for an ingress port.
func (d *Detector) ListenPort(port int) {
	if _, ok := d.listeners[port]; !ok {
		d.listeners[port] = &portListener{units: make(map[uint16]*receiverFSM)}
	}
}

// Outputs returns the result structures of a monitored port (nil if the
// port is not monitored).
func (d *Detector) Outputs(port int) *Outputs {
	if m, ok := d.monitors[port]; ok {
		return &m.out
	}
	return nil
}

// outputs is the internal non-nil accessor used by counter machinery.
func (d *Detector) outputs(port int) *Outputs {
	return &d.monitors[port].out
}

// Acknowledge clears a monitored port's output structures (the flag array
// and the path Bloom filter) after the operator has acted on them — e.g.
// once the faulty hardware is repaired or the traffic rerouted. Ongoing
// mismatches will re-flag within a session.
func (d *Detector) Acknowledge(port int) {
	m, ok := d.monitors[port]
	if !ok {
		return
	}
	for i := 0; i < m.out.Flags.Len(); i++ {
		m.out.Flags.Clear(i)
	}
	m.out.Bloom.Reset()
}

// Flagged reports whether FANcY has flagged entry on the monitored port —
// through its dedicated flag bit if the entry is high priority, otherwise
// through the hash-path Bloom filter.
func (d *Detector) Flagged(port int, entry netsim.EntryID) bool {
	m, ok := d.monitors[port]
	if !ok {
		return false
	}
	if slot, ok := d.slotByEntry[entry]; ok {
		return m.out.Flags.Get(slot)
	}
	if slot, ok := m.dyn[entry]; ok {
		return m.out.Flags.Get(slot)
	}
	return m.out.Bloom.Contains(m.treeCnt.EntryPath(entry))
}

// EntryPath exposes the tree hash path of an entry on a monitored port,
// for evaluation tooling.
func (d *Detector) EntryPath(port int, entry netsim.EntryID) []uint16 {
	if m, ok := d.monitors[port]; ok {
		return m.treeCnt.EntryPath(entry)
	}
	return nil
}

// DedicatedSlot returns the flag-array slot of a high-priority entry.
func (d *Detector) DedicatedSlot(entry netsim.EntryID) (int, bool) {
	s, ok := d.slotByEntry[entry]
	return s, ok
}

// SessionsCompleted sums completed counting sessions across a port's units.
func (d *Detector) SessionsCompleted(port int) uint64 {
	m, ok := d.monitors[port]
	if !ok {
		return 0
	}
	var n uint64
	for _, f := range m.dedicated {
		if f != nil {
			n += f.SessionsCompleted
		}
	}
	return n + m.tree.SessionsCompleted
}

// DetectorStats are cumulative robustness counters: what the detector shrugs
// off (corrupted control messages, retransmissions) and the lifecycle events
// it raises. They complement the per-unit accuracy outputs.
type DetectorStats struct {
	// CtlCorrupted counts control messages dropped at ingress because they
	// failed wire validation (checksum, version, framing).
	CtlCorrupted uint64
	// Retransmits counts control retransmission timer firings across all
	// sender units, including degraded-state probes.
	Retransmits uint64
	// LinkDownEvents and LinkUpEvents count EventLinkDown/EventLinkUp
	// emissions across all ports.
	LinkDownEvents uint64
	LinkUpEvents   uint64
	// Restarts counts Restart calls (device reboots).
	Restarts uint64
	// SessionsDiscarded counts sessions whose comparison was skipped by the
	// congestion guard (§4.3 footnote 2).
	SessionsDiscarded uint64
	// HHReports counts heavy-hitter report windows closed across all ports.
	HHReports uint64
	// Promotions and Demotions count dynamic dedicated-slot assignments
	// and releases across all ports.
	Promotions uint64
	Demotions  uint64
}

// Stats returns a snapshot of the detector's robustness counters.
func (d *Detector) Stats() DetectorStats {
	st := d.stats
	st.SessionsDiscarded = d.discarded
	return st
}

// Epoch returns the detector's current generation number (bumped by
// Restart).
func (d *Detector) Epoch() uint8 { return d.epoch }

func (d *Detector) emit(ev Event) {
	if d.OnEvent != nil {
		d.OnEvent(ev)
	}
}

// reportLinkDown aggregates per-unit timeout reports into one link-down
// event per port.
func (d *Detector) reportLinkDown(port int) {
	m := d.monitors[port]
	m.downUnits++
	if m.downUnits == 1 {
		d.stats.LinkDownEvents++
		d.emit(Event{Time: d.s.Now(), Port: port, Kind: EventLinkDown})
	}
}

// reportLinkUp retracts one unit's down report; when the last down unit of a
// port recovers, the port announces EventLinkUp — counting has resumed.
func (d *Detector) reportLinkUp(port int) {
	m := d.monitors[port]
	if m.downUnits == 0 {
		return
	}
	m.downUnits--
	if m.downUnits == 0 {
		d.stats.LinkUpEvents++
		d.emit(Event{Time: d.s.Now(), Port: port, Kind: EventLinkUp})
	}
}

// LinkDown reports whether any of the port's units currently considers the
// link unresponsive.
func (d *Detector) LinkDown(port int) bool {
	m, ok := d.monitors[port]
	return ok && m.downUnits > 0
}

// sendControl marshals and injects a control message out of port, returning
// its wire size. Control packets occupy at least a minimum-size Ethernet
// frame (64 B), the figure the paper's overhead analysis uses.
func (d *Detector) sendControl(port int, m *wire.Message) int {
	buf := m.Marshal(make([]byte, 0, m.WireSize()))
	size := len(buf)
	if size < 64 {
		size = 64
	}
	pkt := &netsim.Packet{
		Proto: netsim.ProtoFancy, Entry: netsim.InvalidEntry,
		Size: size, Ctl: buf,
		Src: d.ownAddr, Dst: d.peerAddr[port],
	}
	d.CtlMsgsSent++
	d.CtlBytesSent += uint64(size)
	d.sw.Inject(pkt, port)
	return size
}

// OnIngress implements netsim.IngressHook: it consumes FANcY control
// messages and counts tagged data packets before the traffic manager.
func (d *Detector) OnIngress(pkt *netsim.Packet, port int) bool {
	if pkt.Proto == netsim.ProtoFancy {
		if pkt.Dst != 0 && pkt.Dst != d.ownAddr {
			return false // someone else's session in transit: forward it
		}
		// Parse into the per-detector scratch message: control handling is
		// synchronous and the one retaining consumer (treeReceiver's zoom
		// configuration) copies what it keeps, so the scratch — and its
		// Counters/Targets capacity — is reused for every message.
		m := &d.ctlScratch
		_, err := wire.UnmarshalInto(pkt.Ctl, m)
		if err != nil {
			// Corrupted control message (failed checksum or malformed
			// framing): drop it and let the stop-and-wait retransmission
			// recover. Counted so operators can see a lossy control plane.
			d.stats.CtlCorrupted++
			return true
		}
		d.handleControl(m, port)
		return true
	}
	if pkt.Tagged {
		if l, ok := d.listeners[port]; ok {
			if fsm, ok := l.units[unitOf(pkt)]; ok {
				fsm.onIngress(pkt)
			}
			// Strip the tag: it is meaningful on this link only.
			pkt.Tagged = false
			pkt.Size -= wire.TagSize
		}
	}
	return false
}

func unitOf(pkt *netsim.Packet) uint16 {
	switch pkt.TagKind {
	case wire.KindTree:
		return wire.TreeUnit
	case wire.KindCustom:
		// Tags carry no unit number, so a port supports one custom unit.
		return customUnitBase
	default:
		return pkt.Tag.DedicatedID()
	}
}

func (d *Detector) handleControl(m *wire.Message, port int) {
	switch m.Type {
	case wire.MsgStart, wire.MsgStop:
		l, ok := d.listeners[port]
		if !ok {
			return // not listening on this port
		}
		fsm, ok := l.units[m.Unit]
		if !ok {
			if m.Type != wire.MsgStart {
				return // Stop for an unknown session
			}
			fsm = d.newReceiverFSM(port, m)
			if fsm == nil {
				return // custom session without a registered receiver
			}
			l.units[m.Unit] = fsm
		}
		fsm.onControl(m)
	case wire.MsgStartACK, wire.MsgReport:
		mon, ok := d.monitors[port]
		if !ok {
			return
		}
		if m.Unit == wire.TreeUnit {
			if m.Kind == wire.KindTree {
				mon.tree.onControl(m)
			}
			return
		}
		if m.Kind == wire.KindCustom {
			if i := int(m.Unit) - int(customUnitBase); i >= 0 && i < len(mon.custom) {
				mon.custom[i].onControl(m)
			}
			return
		}
		if int(m.Unit) < len(mon.dedicated) {
			// A demoted dynamic slot is nil; a straggler ACK or Report
			// for its dead session is simply stale.
			if fsm := mon.dedicated[m.Unit]; fsm != nil {
				fsm.onControl(m)
			}
		}
	}
}

func (d *Detector) newReceiverFSM(port int, m *wire.Message) *receiverFSM {
	fsm := &receiverFSM{det: d, port: port, kind: m.Kind, unit: m.Unit}
	switch m.Kind {
	case wire.KindTree:
		fsm.counters = newTreeReceiver(d.cfg.Tree)
	case wire.KindCustom:
		cr, ok := d.customRecv[uint32(port)<<16|uint32(m.Unit)]
		if !ok {
			return nil
		}
		fsm.counters = &customReceiverAdapter{cr}
	default:
		fsm.counters = &dedicatedReceiver{}
	}
	return fsm
}

// OnEgress implements netsim.EgressHook: it counts and tags data packets
// after the traffic manager on monitored ports.
func (d *Detector) OnEgress(pkt *netsim.Packet, port int) {
	if pkt.Proto == netsim.ProtoFancy {
		return
	}
	m, ok := d.monitors[port]
	if !ok {
		return
	}
	if pkt.Entry == netsim.InvalidEntry {
		return // unclassified traffic (e.g. reverse ACKs) is not monitored
	}
	// The heavy-hitter stage sits ahead of the counting logic in the
	// pipeline and observes every classified data packet — including
	// already-dedicated traffic, so a promoted prefix keeps appearing in
	// reports while it stays hot (the allocator skips pinned prefixes).
	if m.hh != nil {
		m.hh.Observe(pkt.Entry)
	}
	// A packet carries at most one 2-byte tag, so it is counted by exactly
	// one session per link. Custom sessions take precedence over the
	// standard counting (they exist to analyze traffic the operator
	// singled out; see MonitorCustom).
	for _, fsm := range m.custom {
		if fsm.onEgressCustom(pkt) {
			return
		}
	}
	if slot, ok := d.slotByEntry[pkt.Entry]; ok {
		m.dedicated[slot].onEgress(pkt)
		return
	}
	if slot, ok := m.dyn[pkt.Entry]; ok {
		if fsm := m.dedicated[slot]; fsm != nil {
			fsm.onEgress(pkt)
			return
		}
	}
	m.tree.onEgress(pkt)
}
