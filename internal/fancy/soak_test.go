package fancy

// Chaos soak: many seeded, randomized fault schedules thrown at the full
// two-switch deployment. Each schedule mixes an injected fault with
// adversarial link conditions (control corruption, duplication, reordering,
// flapping, device restarts) and asserts the detector's core invariants:
//
//  1. no false positives — healthy entries are never flagged;
//  2. every injected gray failure is detected;
//  3. every link-down recovers to counting once the fault clears;
//  4. the protocol never wedges — sessions keep completing to the end.
//
// Every random draw comes from the per-run seed, so each schedule replays
// identically; a failing seed is a deterministic reproducer.

import (
	"fmt"
	"math/rand"
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Soak schedule families.
const (
	soakGray    = iota // per-entry gray failure under control-plane chaos
	soakFlap           // full outage (link flap) + chaos on the heal
	soakCorrupt        // uniform data corruption: a CRC-class gray failure
)

func TestChaosSoak(t *testing.T) {
	const runs = 120
	for i := 0; i < runs; i++ {
		seed := int64(1000 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			soakOne(t, seed)
		})
	}
}

const (
	soakTrafficEnd = 5300 * sim.Millisecond
	soakMid        = 4500 * sim.Millisecond
	soakEnd        = 5500 * sim.Millisecond
)

func soakOne(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	family := int(seed % 3)
	tb := newTestbed(t, testCfg, seed)

	// Entry 10 is the (potential) victim; 11 (dedicated), 12 (dedicated,
	// idle) and 300 (best effort) must stay unflagged unless the fault is
	// link-wide.
	tb.udp(10, 1e6, 0, soakTrafficEnd)
	tb.udp(11, 1e6, 0, soakTrafficEnd)
	tb.udp(300, 1e6, 0, soakTrafficEnd)

	// Adversarial link conditions on both directions. JitterMax stays below
	// Twait (2 ms): the receiver's grace period is the protocol's stated
	// tolerance for reordering, and the soak must not inject what no
	// protocol could absorb.
	fwd := netsim.NewChaos(tb.s, "soak/fwd")
	rev := netsim.NewChaos(tb.s, "soak/rev")
	for _, c := range []*netsim.Chaos{fwd, rev} {
		c.CorruptCtl = rng.Float64() * 0.25
		c.Duplicate = rng.Float64() * 0.2
		c.Reorder = rng.Float64() * 0.3
		c.JitterMax = sim.Microsecond + sim.Time(rng.Int63n(int64(1800*sim.Microsecond)))
	}
	tb.link.AB.SetChaos(fwd)
	tb.link.BA.SetChaos(rev)

	wantUnflagged := []netsim.EntryID{11, 12, 300}
	var outageEnd sim.Time

	switch family {
	case soakGray:
		failAt := sim.Second + sim.Time(rng.Int63n(int64(sim.Second)))
		rate := 0.5 + rng.Float64()*0.5
		f := netsim.FailEntries(tb.s.DeriveSeed("soak/fail"), failAt, rate, 10)
		tb.link.AB.SetFailure(f)
		soakMaybeRestart(tb, rng)
	case soakFlap:
		// One solid outage [start, start+dur) on both directions; control
		// chaos kicks in at the same instant and keeps harassing the
		// recovery.
		start := sim.Second + sim.Time(rng.Int63n(int64(500*sim.Millisecond)))
		dur := 500*sim.Millisecond + sim.Time(rng.Int63n(int64(700*sim.Millisecond)))
		outageEnd = start + dur
		for _, c := range []*netsim.Chaos{fwd, rev} {
			c.Start = start
			c.DownFor = dur
			c.UpFor = 20 * sim.Second // single pulse
		}
	case soakCorrupt:
		// CRC-model corruption drops a fraction of every entry's packets —
		// the paper's canonical uniform gray failure. Detection, not
		// absence of flags, is the invariant here.
		fwd.Start = sim.Second + sim.Time(rng.Int63n(int64(sim.Second)))
		fwd.CorruptData = 0.05 + rng.Float64()*0.25
		wantUnflagged = nil
		soakMaybeRestart(tb, rng)
	}

	tb.s.Run(soakMid)
	midSessions := tb.det.SessionsCompleted(1)
	tb.s.Run(soakEnd)

	// Invariant 4: the protocol still makes progress at the end of the run,
	// whatever happened in the middle.
	if got := tb.det.SessionsCompleted(1); got <= midSessions {
		t.Errorf("protocol wedged: sessions %d at %v, still %d at %v",
			midSessions, soakMid, got, soakEnd)
	}

	// Invariant 2: the injected failure is detected.
	switch family {
	case soakGray:
		if !tb.det.Flagged(1, 10) {
			t.Errorf("injected gray failure on entry 10 not flagged (stats %+v)", tb.det.Stats())
		}
	case soakFlap:
		down, ok := tb.firstEvent(EventLinkDown)
		if !ok {
			t.Fatal("outage raised no link-down")
		}
		if down.Time > outageEnd {
			t.Errorf("link-down at %v, after the outage ended (%v)", down.Time, outageEnd)
		}
		// Invariant 3: the outage heals and the port announces recovery.
		up, ok := tb.firstEvent(EventLinkUp)
		if !ok || up.Time < outageEnd {
			t.Errorf("no link-up after the outage (found=%v at %v)", ok, up.Time)
		}
	case soakCorrupt:
		if tb.countEvents(EventDedicated) == 0 {
			t.Errorf("uniform corruption raised no dedicated mismatch (stats %+v)", tb.det.Stats())
		}
	}

	// Invariant 3, all families: no unit is still probing once faults that
	// can silence the control plane have cleared. (Control corruption never
	// clears, but its loss rate is far too low to hold a unit down; the
	// deterministic seeds pin this.)
	if tb.det.LinkDown(1) {
		t.Errorf("link still down at the end of the run (stats %+v)", tb.det.Stats())
	}

	// Invariant 1: healthy entries are never flagged — not by duplication,
	// reordering, corruption-rejected control messages, outages or reboots.
	for _, e := range wantUnflagged {
		if tb.det.Flagged(1, e) {
			t.Errorf("healthy entry %d flagged (family %d, stats %+v)", e, family, tb.det.Stats())
		}
	}
}

// soakMaybeRestart reboots one side mid-run in half the schedules.
func soakMaybeRestart(tb *testbed, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		return
	}
	det := tb.det
	if rng.Intn(2) == 0 {
		det = tb.downDet
	}
	at := sim.Second + sim.Time(rng.Int63n(int64(1500*sim.Millisecond)))
	tb.s.ScheduleAt(at, det.Restart)
}
