package fancy

// Robustness tests: epoch-based resynchronization after device restarts,
// the degraded probe state with exponential backoff after link-down, and
// the receiver's protection against duplicated Start messages. The
// randomized end-to-end torture runs live in soak_test.go; these pin the
// individual mechanisms.

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

func TestEpochStampedAndEchoed(t *testing.T) {
	tb := newTestbed(t, testCfg, 30)
	tb.udp(10, 2e6, 0, sim.Second)
	tb.s.Run(sim.Second)
	if tb.det.Epoch() != 1 || tb.downDet.Epoch() != 1 {
		t.Fatalf("fresh detectors have epochs %d/%d, want 1/1", tb.det.Epoch(), tb.downDet.Epoch())
	}
	// The receiver FSMs adopted the upstream's epoch.
	for unit, fsm := range tb.downDet.listeners[0].units {
		if fsm.epoch != 1 {
			t.Errorf("receiver unit %d adopted epoch %d, want 1", unit, fsm.epoch)
		}
	}
}

func TestSenderEpochMismatchIgnored(t *testing.T) {
	h := newFSMHarness(t)
	m := h.msg(wire.MsgStartACK, h.fsm.session)
	m.Epoch = h.det.epoch + 1 // response from another incarnation
	h.fsm.onControl(m)
	if h.fsm.state != sWaitStartACK {
		t.Fatal("foreign-epoch StartACK advanced the FSM")
	}
}

func TestReceiverEpochTransitions(t *testing.T) {
	h := newRecvHarness(t)
	h.deliverEpoch(wire.MsgStart, 1, 1)
	fsm := h.unitFSM()
	fsm.onIngress(&netsim.Packet{Tagged: true, Tag: wire.DedicatedTag(0)})

	// A Stop from a different epoch must not close the live session.
	h.deliverEpoch(wire.MsgStop, 1, 2)
	if fsm.state != rCounting {
		t.Fatal("foreign-epoch Stop closed the session")
	}

	// A Start under a NEW epoch — the upstream rebooted and restarted its
	// session numbering — resynchronizes immediately, even with the same
	// session number.
	h.deliverEpoch(wire.MsgStart, 1, 2)
	if fsm.epoch != 2 || fsm.state != rCounting || fsm.tagged != 0 {
		t.Fatalf("epoch bump did not resync: epoch=%d state=%d tagged=%d",
			fsm.epoch, fsm.state, fsm.tagged)
	}
	// And the echo carries the adopted epoch.
	h.deliverEpoch(wire.MsgStop, 1, 2)
	if fsm.state != rWaitToSend {
		t.Fatal("new-epoch Stop ignored after resync")
	}
}

func TestDuplicateStartDoesNotResetLiveCounts(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStart, 1)
	fsm := h.unitFSM()
	for i := 0; i < 3; i++ {
		fsm.onIngress(&netsim.Packet{Tagged: true, Tag: wire.DedicatedTag(0)})
	}
	// A duplicated (or reordered) copy of the Start arrives mid-session.
	// Packets have been counted, so the sender's ACK clearly got through:
	// resetting would fabricate a mismatch at session close.
	h.deliver(wire.MsgStart, 1)
	h.deliver(wire.MsgStop, 1)
	h.s.Run(h.s.Now() + DefaultTwait + sim.Millisecond)
	if got := fsm.lastReport; len(got) != 1 || got[0] != 3 {
		t.Fatalf("report after duplicated Start = %v, want [3]", got)
	}
}

func TestProbeBackoffAndRecovery(t *testing.T) {
	h := newFSMHarness(t)
	var events []Event
	h.det.OnEvent = func(ev Event) { events = append(events, ev) }
	// Nothing ever answers: the unit reports link-down, then degrades to
	// backed-off probing instead of hammering Trtx retransmissions.
	h.s.Run(h.s.Now() + 4*sim.Second)
	if !h.fsm.linkDown || h.fsm.state != sWaitStartACK {
		t.Fatalf("not probing: linkDown=%v state=%d", h.fsm.linkDown, h.fsm.state)
	}
	if h.fsm.backoff != h.det.cfg.MaxProbeInterval {
		t.Fatalf("backoff = %v, want capped at %v", h.fsm.backoff, h.det.cfg.MaxProbeInterval)
	}
	// Rough bound: after the first 250 ms the probe intervals are
	// 100+200+400+400+… ms, so ~4 s of silence fits well under 20 sends;
	// plain Trtx retransmission would have sent ~80.
	if h.fsm.CtlSent > 20 {
		t.Errorf("probe state sent %d control messages in 4s, want backed off (≤20)", h.fsm.CtlSent)
	}
	st := h.det.Stats()
	if st.Retransmits == 0 || st.LinkDownEvents != 1 || st.LinkUpEvents != 0 {
		t.Errorf("stats = %+v, want retransmits>0, 1 down, 0 up", st)
	}

	// The peer answers a probe: counting resumes. Link-up is announced only
	// once the port's LAST down unit recovers (all four here: three
	// dedicated + the tree).
	h.fsm.onControl(h.msg(wire.MsgStartACK, h.fsm.session))
	if h.fsm.state != sCounting || h.fsm.linkDown || h.fsm.backoff != 0 {
		t.Fatalf("probe ACK did not recover: state=%d linkDown=%v backoff=%v",
			h.fsm.state, h.fsm.linkDown, h.fsm.backoff)
	}
	if !h.det.LinkDown(1) || h.det.Stats().LinkUpEvents != 0 {
		t.Fatal("one recovered unit of four announced link-up early")
	}
	m := h.det.monitors[1]
	for _, f := range append([]*senderFSM{m.tree}, m.dedicated[1:]...) {
		f.onControl(&wire.Message{Header: wire.Header{
			Type: wire.MsgStartACK, Kind: f.kind, Epoch: h.det.epoch,
			Session: f.session, Link: 1, Unit: f.unit,
		}})
	}
	ups := 0
	for _, ev := range events {
		if ev.Kind == EventLinkUp {
			ups++
		}
	}
	if ups != 1 || h.det.Stats().LinkUpEvents != 1 {
		t.Errorf("link-up events = %d (stat %d), want 1", ups, h.det.Stats().LinkUpEvents)
	}
	if h.det.LinkDown(1) {
		t.Error("LinkDown still true after recovery")
	}
}

func TestFlapDownUpRecovery(t *testing.T) {
	// A real outage via the chaos injector: both directions solid-down from
	// 1 s to 2.5 s. The detector must raise link-down during the outage,
	// raise link-up after it clears, and resume completing sessions — with
	// zero false positives on the (healthy) entries.
	tb := newTestbed(t, testCfg, 31)
	tb.udp(10, 2e6, 0, 6*sim.Second)
	tb.udp(300, 2e6, 0, 6*sim.Second)
	for i, end := range []*netsim.LinkEnd{tb.link.AB, tb.link.BA} {
		c := netsim.NewChaos(tb.s, "flap/"+string(rune('a'+i)))
		c.Start = 1 * sim.Second
		c.End = 2500 * sim.Millisecond
		c.DownFor = sim.Millisecond // UpFor 0: down for the whole window
		end.SetChaos(c)
	}
	tb.s.Run(6 * sim.Second)

	down, ok := tb.firstEvent(EventLinkDown)
	if !ok {
		t.Fatal("outage did not raise link-down")
	}
	if down.Time < 1*sim.Second || down.Time > 2*sim.Second {
		t.Errorf("link-down at %v, want shortly after 1s", down.Time)
	}
	up, ok := tb.firstEvent(EventLinkUp)
	if !ok {
		t.Fatal("healed link never announced link-up")
	}
	// Recovery latency is bounded by one MaxProbeInterval plus a session
	// open round trip.
	if up.Time < 2500*sim.Millisecond || up.Time > 2500*sim.Millisecond+DefaultMaxProbeInterval+100*sim.Millisecond {
		t.Errorf("link-up at %v, want within a probe interval of 2.5s", up.Time)
	}
	if tb.det.LinkDown(1) {
		t.Error("LinkDown still reported after recovery")
	}
	// Counting resumed: sessions keep completing after the heal.
	if got := tb.det.SessionsCompleted(1); got == 0 {
		t.Error("no sessions completed")
	}
	if n := tb.countEvents(EventDedicated); n != 0 {
		t.Errorf("outage misattributed to entries: %d dedicated events", n)
	}
	if tb.out.Flags.Count() != 0 {
		t.Errorf("%d entries flagged by a link outage", tb.out.Flags.Count())
	}
}

func TestSenderRestartResync(t *testing.T) {
	tb := newTestbed(t, testCfg, 32)
	tb.udp(10, 2e6, 0, 5*sim.Second)
	tb.udp(300, 2e6, 0, 5*sim.Second)
	tb.s.ScheduleAt(1500*sim.Millisecond, tb.det.Restart)
	tb.s.Run(5 * sim.Second)

	if tb.det.Epoch() != 2 || tb.det.Stats().Restarts != 1 {
		t.Fatalf("epoch = %d restarts = %d, want 2/1", tb.det.Epoch(), tb.det.Stats().Restarts)
	}
	// The downstream adopted the new epoch from the first post-restart
	// Starts and the pair kept counting.
	for unit, fsm := range tb.downDet.listeners[0].units {
		if !fsm.dead && fsm.epoch != 2 {
			t.Errorf("receiver unit %d still on epoch %d", unit, fsm.epoch)
		}
	}
	if got := tb.det.SessionsCompleted(1); got < 20 {
		t.Errorf("only %d sessions completed across a restart", got)
	}
	// In-flight responses to pre-restart sessions must not flag anything.
	if n := tb.countEvents(EventDedicated); n != 0 {
		t.Errorf("restart fabricated %d dedicated mismatches", n)
	}
	if tb.out.Flags.Count() != 0 || tb.out.Bloom.Inserted() != 0 {
		t.Error("restart left false positives in the outputs")
	}
}

func TestReceiverRestartResync(t *testing.T) {
	tb := newTestbed(t, testCfg, 33)
	tb.udp(10, 2e6, 0, 6*sim.Second)
	tb.udp(300, 2e6, 0, 6*sim.Second)
	tb.s.ScheduleAt(1500*sim.Millisecond, tb.downDet.Restart)
	tb.s.Run(6 * sim.Second)

	// A receiver reboot leaves some Stops unanswered (the rebooted side has
	// no session state to report), so units may transit the link-down/probe
	// path — but they must resynchronize and resume counting.
	if tb.det.LinkDown(1) {
		t.Error("link still considered down long after the peer rebooted")
	}
	before := tb.det.SessionsCompleted(1)
	tb.s.Run(8 * sim.Second)
	if after := tb.det.SessionsCompleted(1); after <= before {
		t.Error("sessions stopped completing after the peer restart")
	}
	// The lost session state must never read as an entry failure.
	if n := tb.countEvents(EventDedicated); n != 0 {
		t.Errorf("peer restart fabricated %d dedicated mismatches", n)
	}
	if tb.out.Flags.Count() != 0 || tb.out.Bloom.Inserted() != 0 {
		t.Error("peer restart left false positives in the outputs")
	}
}

func TestRestartStillDetectsRealFailures(t *testing.T) {
	// A restart must reset, not lobotomize: a gray failure present after
	// the reboot is still caught.
	tb := newTestbed(t, testCfg, 34)
	tb.udp(10, 2e6, 0, 6*sim.Second)
	tb.failEntries(2*sim.Second, 1.0, 10)
	tb.s.ScheduleAt(1*sim.Second, tb.det.Restart)
	tb.s.Run(6 * sim.Second)
	if _, ok := tb.firstEvent(EventDedicated); !ok {
		t.Fatal("failure after a restart not detected")
	}
	if !tb.det.Flagged(1, 10) {
		t.Error("failed entry not flagged after restart")
	}
}

func TestCorruptedControlCounted(t *testing.T) {
	tb := newTestbed(t, testCfg, 35)
	if consumed := tb.det.OnIngress(&netsim.Packet{
		Proto: netsim.ProtoFancy, Entry: netsim.InvalidEntry, Ctl: []byte{0xde, 0xad, 0xbe, 0xef},
	}, 1); !consumed {
		t.Fatal("corrupted control message not consumed")
	}
	if st := tb.det.Stats(); st.CtlCorrupted != 1 {
		t.Fatalf("CtlCorrupted = %d, want 1", st.CtlCorrupted)
	}
}
