package fancy

// White-box tests of the zooming algorithm: drive treeSender/treeReceiver
// session by session without a network, controlling exactly which packets
// the "downstream" sees.

import (
	"testing"

	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// wire2ZoomTargets builds zoom targets from raw paths.
func wire2ZoomTargets(paths [][]uint16) []wire.ZoomTarget {
	out := make([]wire.ZoomTarget, len(paths))
	for i, p := range paths {
		out[i] = wire.ZoomTarget{Path: p}
	}
	return out
}

// tagFor builds a tree tag: node ID (1-based; 0 = root) and counter index.
func tagFor(node, counter uint8) wire.Tag { return wire.Tag{Node: node, Counter: counter} }

// zoomHarness couples a tree sender with a tree receiver and lets tests
// run counting sessions with precise per-entry delivery counts.
type zoomHarness struct {
	t      *testing.T
	det    *Detector
	snd    *treeSender
	rcv    *treeReceiver
	events *[]Event
}

func newZoomHarness(t *testing.T, params tree.Params, seed int64) *zoomHarness {
	t.Helper()
	s := sim.New(seed)
	sw := netsim.NewSwitch(s, "sw", 2)
	cfg := Config{HighPriority: []netsim.EntryID{1}, Tree: params, TreeSeed: uint64(seed)}
	det, err := NewDetector(s, sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	det.OnEvent = func(ev Event) { events = append(events, ev) }
	det.MonitorPort(1)
	return &zoomHarness{
		t:      t,
		det:    det,
		snd:    det.monitors[1].treeCnt,
		rcv:    newTreeReceiver(params),
		events: &events,
	}
}

// session runs one counting session: sent maps entries to packets offered;
// delivered maps entries to how many of those reach the receiver.
func (h *zoomHarness) session(sent, delivered map[netsim.EntryID]int) {
	targets := h.snd.resetSession()
	h.rcv.resetSession(targets)
	for e, n := range sent {
		got := delivered[e]
		for i := 0; i < n; i++ {
			tag, ok := h.snd.tagPacket(e)
			if !ok {
				continue
			}
			if i < got {
				h.rcv.countTag(tag)
			}
		}
	}
	h.snd.handleReport(h.rcv.snapshot())
}

func (h *zoomHarness) leafEvents() []Event {
	var out []Event
	for _, ev := range *h.events {
		if ev.Kind == EventTreeLeaf {
			out = append(out, ev)
		}
	}
	return out
}

var zoomParams = tree.Params{Width: 16, Depth: 3, Split: 2, Pipelined: true}

func TestZoomLosslessSessionsSpawnNothing(t *testing.T) {
	h := newZoomHarness(t, zoomParams, 1)
	for i := 0; i < 5; i++ {
		h.session(map[netsim.EntryID]int{100: 10, 200: 7}, map[netsim.EntryID]int{100: 10, 200: 7})
		if len(h.snd.zooms) != 0 {
			t.Fatalf("session %d: %d zooms active without loss", i, len(h.snd.zooms))
		}
	}
	if len(*h.events) != 0 {
		t.Fatalf("events raised without loss: %v", *h.events)
	}
}

func TestZoomReachesLeafInDepthSessions(t *testing.T) {
	h := newZoomHarness(t, zoomParams, 2)
	const victim = netsim.EntryID(100)
	path := h.snd.EntryPath(victim)

	// Session 1: loss observed at the root; one zoom spawns at level 1.
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 5})
	if len(h.snd.zooms) != 1 {
		t.Fatalf("after session 1: %d zooms, want 1", len(h.snd.zooms))
	}
	if got := h.snd.zooms[0].path; len(got) != 1 || got[0] != path[0] {
		t.Fatalf("zoom path %v, want [%d]", got, path[0])
	}

	// Session 2: the wave advances to level 2 (the leaf level for d=3).
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 5})
	if len(h.snd.zooms) != 1 || len(h.snd.zooms[0].path) != 2 {
		t.Fatalf("after session 2: zooms %+v, want one at depth 2", h.snd.zooms)
	}

	// Session 3: the leaf mismatch is reported with the entry's full path.
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 5})
	leaves := h.leafEvents()
	if len(leaves) != 1 {
		t.Fatalf("leaf events = %d, want 1", len(leaves))
	}
	got := leaves[0].Path
	for i := range path {
		if got[i] != path[i] {
			t.Fatalf("reported path %v, want %v", got, path)
		}
	}
	if leaves[0].Diff != 5 {
		t.Errorf("reported diff = %d, want 5", leaves[0].Diff)
	}
	// The output Bloom filter knows the entry now.
	if !h.det.monitors[1].out.Bloom.Contains(path) {
		t.Error("leaf path not in the output Bloom filter")
	}
}

func TestZoomParallelWaves(t *testing.T) {
	// Two entries in different root counters: with split 2 both are
	// explored in parallel and both leaves are reported after 3 sessions.
	h := newZoomHarness(t, zoomParams, 3)
	// Find two entries with distinct root indices.
	a := netsim.EntryID(100)
	b := a + 1
	for h.snd.EntryPath(a)[0] == h.snd.EntryPath(b)[0] {
		b++
	}
	traffic := map[netsim.EntryID]int{a: 10, b: 10}
	lossy := map[netsim.EntryID]int{a: 4, b: 4}
	for i := 0; i < 3; i++ {
		h.session(traffic, lossy)
	}
	leaves := h.leafEvents()
	found := map[string]bool{}
	for _, ev := range leaves {
		found[pathKeyTest(ev.Path)] = true
	}
	if !found[pathKeyTest(h.snd.EntryPath(a))] || !found[pathKeyTest(h.snd.EntryPath(b))] {
		t.Fatalf("parallel waves did not localize both entries: %v", leaves)
	}
}

func TestZoomPipelineStaggeredEntries(t *testing.T) {
	// With split 1, only one new wave starts per session, but waves
	// pipeline: entry B's exploration starts while A's is still running
	// (§4.2's pipelining example with c1 and c2).
	params := tree.Params{Width: 16, Depth: 3, Split: 1, Pipelined: true}
	h := newZoomHarness(t, params, 4)
	a := netsim.EntryID(100)
	b := a + 1
	for h.snd.EntryPath(a)[0] == h.snd.EntryPath(b)[0] {
		b++
	}
	// Make A's mismatch strictly bigger so the first wave picks it.
	traffic := map[netsim.EntryID]int{a: 20, b: 10}
	lossy := map[netsim.EntryID]int{a: 5, b: 4}

	h.session(traffic, lossy) // wave 1 starts on A's counter
	if len(h.snd.zooms) != 1 || h.snd.zooms[0].path[0] != h.snd.EntryPath(a)[0] {
		t.Fatalf("wave 1 = %+v, want A's root index %d", h.snd.zooms, h.snd.EntryPath(a)[0])
	}
	h.session(traffic, lossy) // wave 1 advances; wave 2 starts on B
	if len(h.snd.zooms) != 2 {
		t.Fatalf("after session 2: %d zooms, want 2 (pipelined)", len(h.snd.zooms))
	}
	h.session(traffic, lossy) // wave 1 reports A's leaf
	h.session(traffic, lossy) // wave 2 reports B's leaf
	leaves := h.leafEvents()
	found := map[string]bool{}
	for _, ev := range leaves {
		found[pathKeyTest(ev.Path)] = true
	}
	if !found[pathKeyTest(h.snd.EntryPath(a))] || !found[pathKeyTest(h.snd.EntryPath(b))] {
		t.Fatalf("pipelining failed to localize both entries")
	}
}

func TestZoomDeadEndRetires(t *testing.T) {
	h := newZoomHarness(t, zoomParams, 5)
	const victim = netsim.EntryID(100)
	// One lossy session starts a wave...
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 5})
	if len(h.snd.zooms) != 1 {
		t.Fatal("wave did not start")
	}
	// ...then the loss disappears (transient): the wave dies out.
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 10})
	if len(h.snd.zooms) != 0 {
		t.Fatalf("dead-end wave still active: %+v", h.snd.zooms)
	}
	if len(h.leafEvents()) != 0 {
		t.Error("transient loss reported a leaf")
	}
}

func TestZoomUniformClearsWaves(t *testing.T) {
	h := newZoomHarness(t, zoomParams, 6)
	// Populate most root counters with lossy traffic.
	sent := map[netsim.EntryID]int{}
	lossy := map[netsim.EntryID]int{}
	for e := netsim.EntryID(0); e < 200; e++ {
		sent[e] = 4
		lossy[e] = 2
	}
	h.session(sent, lossy)
	uniform := 0
	for _, ev := range *h.events {
		if ev.Kind == EventUniform {
			uniform++
		}
	}
	if uniform != 1 {
		t.Fatalf("uniform events = %d, want 1", uniform)
	}
	if len(h.snd.zooms) != 0 {
		t.Error("uniform classification must clear per-entry waves")
	}
	// The episode does not re-fire while it persists.
	h.session(sent, lossy)
	uniform = 0
	for _, ev := range *h.events {
		if ev.Kind == EventUniform {
			uniform++
		}
	}
	if uniform != 1 {
		t.Errorf("uniform re-fired during the same episode: %d", uniform)
	}
}

func TestZoomReceiverAncestorCounting(t *testing.T) {
	// A tag for the deepest node must increment the whole ancestor chain
	// advertised in the zoom targets.
	params := tree.Params{Width: 8, Depth: 3, Split: 2, Pipelined: true}
	rcv := newTreeReceiver(params)
	rcv.resetSession(wire2ZoomTargets([][]uint16{{3}, {3, 5}}))

	// Tag: deepest node = target 1 (path [3,5]), counter 2.
	rcv.countTag(tagFor(2, 2))
	snap := rcv.snapshot()
	// Layout: root(8) | node0(8) | node1(8).
	if snap[3] != 1 {
		t.Errorf("root[3] = %d, want 1", snap[3])
	}
	if snap[8+5] != 1 {
		t.Errorf("node0[5] = %d, want 1 (ancestor)", snap[8+5])
	}
	if snap[16+2] != 1 {
		t.Errorf("node1[2] = %d, want 1 (deepest)", snap[16+2])
	}
	var total uint64
	for _, v := range snap {
		total += v
	}
	if total != 3 {
		t.Errorf("total increments = %d, want 3", total)
	}
}

// Non-pipelined (Tofino-style) zooming: a single reused node register and a
// stage counter that cycles root → level 1 → ... → leaves → root.
func TestZoomNonPipelinedStageCycle(t *testing.T) {
	params := tree.Params{Width: 16, Depth: 3, Split: 1, Pipelined: false}
	h := newZoomHarness(t, params, 7)
	const victim = netsim.EntryID(321)
	path := h.snd.EntryPath(victim)
	traffic := map[netsim.EntryID]int{victim: 10, victim + 1: 10}
	lossy := map[netsim.EntryID]int{victim: 5, victim + 1: 10}

	// Stage 0: root counting; mismatch selects max0 and advances.
	if h.snd.stage != 0 {
		t.Fatalf("initial stage = %d", h.snd.stage)
	}
	h.session(traffic, lossy)
	if h.snd.stage != 1 || h.snd.maxes[0] != path[0] {
		t.Fatalf("after stage 0: stage=%d max0=%d, want 1/%d", h.snd.stage, h.snd.maxes[0], path[0])
	}
	// Stage 1: only packets under max0 are counted at all; the healthy
	// entry is invisible this session.
	h.session(traffic, lossy)
	if h.snd.stage != 2 || h.snd.maxes[1] != path[1] {
		t.Fatalf("after stage 1: stage=%d max1=%d, want 2/%d", h.snd.stage, h.snd.maxes[1], path[1])
	}
	// Stage 2 (leaf): report and wrap back to the root.
	h.session(traffic, lossy)
	leaves := h.leafEvents()
	if len(leaves) != 1 {
		t.Fatalf("leaf events = %d, want 1", len(leaves))
	}
	for i := range path {
		if leaves[0].Path[i] != path[i] {
			t.Fatalf("leaf path %v, want %v", leaves[0].Path, path)
		}
	}
	if h.snd.stage != 0 {
		t.Fatalf("stage = %d after leaves, want 0 (wrap)", h.snd.stage)
	}
}

func TestZoomNonPipelinedDeadEndResets(t *testing.T) {
	params := tree.Params{Width: 16, Depth: 3, Split: 1, Pipelined: false}
	h := newZoomHarness(t, params, 8)
	const victim = netsim.EntryID(321)
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 5})
	if h.snd.stage != 1 {
		t.Fatal("zoom did not start")
	}
	// Loss vanishes: the stage machine resets to the root.
	h.session(map[netsim.EntryID]int{victim: 10}, map[netsim.EntryID]int{victim: 10})
	if h.snd.stage != 0 {
		t.Fatalf("stage = %d after clean session, want 0", h.snd.stage)
	}
	if len(h.leafEvents()) != 0 {
		t.Error("transient loss reported a leaf")
	}
}

func TestZoomNonPipelinedUniform(t *testing.T) {
	params := tree.Params{Width: 16, Depth: 3, Split: 1, Pipelined: false}
	h := newZoomHarness(t, params, 9)
	sent := map[netsim.EntryID]int{}
	lossy := map[netsim.EntryID]int{}
	for e := netsim.EntryID(0); e < 100; e++ {
		sent[e] = 4
		lossy[e] = 2
	}
	h.session(sent, lossy)
	uniform := false
	for _, ev := range *h.events {
		if ev.Kind == EventUniform {
			uniform = true
		}
	}
	if !uniform {
		t.Fatal("non-pipelined tree missed a uniform failure")
	}
	if h.snd.stage != 0 {
		t.Error("uniform classification must not start zooming")
	}
}
