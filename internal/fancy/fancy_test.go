package fancy

import (
	"testing"

	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// testbed is a two-switch topology:
//
//	src — up(0) … up(1) ——link—— down(0) … down(1) — dst
//
// The up switch monitors its port 1; the down switch listens on its port 0.
// Failures are injected on the up→down link direction.
type testbed struct {
	s        *sim.Sim
	src, dst *netsim.Host
	up, down *netsim.Switch
	link     *netsim.Link
	det      *Detector
	downDet  *Detector
	out      *Outputs
	events   []Event
}

func newTestbed(t *testing.T, cfg Config, seed int64) *testbed {
	t.Helper()
	s := sim.New(seed)
	tb := &testbed{s: s}
	tb.src = netsim.NewHost(s, "src")
	tb.dst = netsim.NewHost(s, "dst")
	tb.up = netsim.NewSwitch(s, "up", 2)
	tb.down = netsim.NewSwitch(s, "down", 2)
	netsim.Connect(s, tb.src, 0, tb.up, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	tb.link = netsim.Connect(s, tb.up, 1, tb.down, 0, netsim.LinkConfig{Delay: 10 * sim.Millisecond, RateBps: 10e9})
	netsim.Connect(s, tb.down, 1, tb.dst, 0, netsim.LinkConfig{Delay: sim.Millisecond, RateBps: 10e9})
	// Entries forward (toward dst), host-src prefix backward.
	tb.up.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	tb.up.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	tb.down.Routes.Insert(0, 0, netsim.Route{Port: 1, Backup: -1})
	tb.down.Routes.Insert(netsim.IPv4(172, 16, 0, 0), 16, netsim.Route{Port: 0, Backup: -1})
	tb.dst.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})
	tb.src.Default = netsim.PacketHandlerFunc(func(*netsim.Packet) {})

	var err error
	tb.det, err = NewDetector(s, tb.up, cfg)
	if err != nil {
		t.Fatalf("NewDetector(up): %v", err)
	}
	tb.det.OnEvent = func(ev Event) { tb.events = append(tb.events, ev) }
	tb.downDet, err = NewDetector(s, tb.down, cfg)
	if err != nil {
		t.Fatalf("NewDetector(down): %v", err)
	}
	tb.downDet.ListenPort(0)
	tb.out = tb.det.MonitorPort(1)
	return tb
}

// udp schedules a CBR UDP stream for entry between start and stop.
func (tb *testbed) udp(entry netsim.EntryID, rateBps float64, start, stop sim.Time) {
	const size = 1000
	gap := sim.Time(float64(size*8) / rateBps * float64(sim.Second))
	if gap <= 0 {
		gap = sim.Microsecond
	}
	var tick func()
	tick = func() {
		if tb.s.Now() >= stop {
			return
		}
		tb.src.Send(&netsim.Packet{
			Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Src: netsim.IPv4(172, 16, 0, 1), Proto: netsim.ProtoUDP, Size: size,
		})
		tb.s.Schedule(gap, tick)
	}
	tb.s.ScheduleAt(start, tick)
}

func (tb *testbed) failEntries(at sim.Time, rate float64, entries ...netsim.EntryID) *netsim.Failure {
	f := netsim.FailEntries(tb.s.DeriveSeed("testbed/fail"), at, rate, entries...)
	tb.link.AB.SetFailure(f)
	return f
}

func (tb *testbed) firstEvent(kind EventKind) (Event, bool) {
	for _, ev := range tb.events {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

func (tb *testbed) countEvents(kind EventKind) int {
	n := 0
	for _, ev := range tb.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

var testCfg = Config{
	HighPriority: []netsim.EntryID{10, 11, 12},
	Tree:         tree.Params{Width: 32, Depth: 3, Split: 2, Pipelined: true},
	TreeSeed:     7,
}

func TestPlanAutoWidth(t *testing.T) {
	cfg := Config{
		HighPriority: make([]netsim.EntryID, 500),
		MemoryBytes:  20_000, // paper: 20 KB per port
	}
	for i := range cfg.HighPriority {
		cfg.HighPriority[i] = netsim.EntryID(i)
	}
	l, err := cfg.Plan()
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if l.Tree.Depth != 3 || l.Tree.Split != 2 || !l.Tree.Pipelined {
		t.Errorf("default tree params = %+v, want d=3 k=2 pipelined", l.Tree)
	}
	if l.Tree.Width < 100 || l.Tree.Width > 256 {
		t.Errorf("auto width = %d, want 100..256 for 20KB budget", l.Tree.Width)
	}
	if l.TotalBits > l.BudgetBits {
		t.Errorf("layout %d bits exceeds budget %d", l.TotalBits, l.BudgetBits)
	}
}

func TestPlanRejectsOverBudget(t *testing.T) {
	cfg := Config{
		HighPriority: make([]netsim.EntryID, 5000),
		MemoryBytes:  10_000, // 80 kbit budget < 400 kbit of dedicated state
	}
	if _, err := cfg.Plan(); err == nil {
		t.Fatal("Plan accepted an over-budget configuration")
	}
	cfg2 := Config{
		MemoryBytes: 1000,
		Tree:        tree.Params{Width: 200, Depth: 3, Split: 2, Pipelined: true},
	}
	if _, err := cfg2.Plan(); err == nil {
		t.Fatal("Plan accepted a tree larger than the budget")
	}
}

func TestPlanDuplicateHighPriority(t *testing.T) {
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw", 2)
	cfg := testCfg
	cfg.HighPriority = []netsim.EntryID{5, 5}
	if _, err := NewDetector(s, sw, cfg); err == nil {
		t.Fatal("duplicate high-priority entries accepted")
	}
}

func TestPaperLayoutMatchesAppendix(t *testing.T) {
	// The paper's software evaluation: 500 dedicated entries + w190/d3/k2
	// pipelined tree within 20 KB per port.
	cfg := Config{
		HighPriority: make([]netsim.EntryID, 500),
		MemoryBytes:  20_000,
		Tree:         tree.Params{Width: 190, Depth: 3, Split: 2, Pipelined: true},
	}
	for i := range cfg.HighPriority {
		cfg.HighPriority[i] = netsim.EntryID(i)
	}
	l, err := cfg.Plan()
	if err != nil {
		t.Fatalf("paper configuration rejected: %v", err)
	}
	if l.DedicatedBits != 500*80 {
		t.Errorf("dedicated bits = %d, want 40000", l.DedicatedBits)
	}
	if l.Tree.Nodes() != 7 {
		t.Errorf("nodes = %d, want 7", l.Tree.Nodes())
	}
}

func TestDedicatedDetection(t *testing.T) {
	tb := newTestbed(t, testCfg, 1)
	tb.udp(10, 2e6, 0, 5*sim.Second)
	const failAt = 1 * sim.Second
	tb.failEntries(failAt, 1.0, 10)
	tb.s.Run(5 * sim.Second)

	ev, ok := tb.firstEvent(EventDedicated)
	if !ok {
		t.Fatal("blackhole on a dedicated entry not detected")
	}
	if ev.Entry != 10 {
		t.Errorf("flagged entry %d, want 10", ev.Entry)
	}
	lat := ev.Time - failAt
	// Expected ≈ exchange interval (50 ms) + session open/close overhead.
	if lat <= 0 || lat > 400*sim.Millisecond {
		t.Errorf("detection latency = %v, want < 400ms", lat)
	}
	if !tb.det.Flagged(1, 10) {
		t.Error("Flagged(10) = false after detection")
	}
	if tb.out.Flags.Count() != 1 {
		t.Errorf("flag count = %d, want 1 (no false positives)", tb.out.Flags.Count())
	}
}

func TestNoFalsePositivesWithoutFailure(t *testing.T) {
	tb := newTestbed(t, testCfg, 2)
	tb.udp(10, 2e6, 0, 3*sim.Second)  // dedicated
	tb.udp(200, 2e6, 0, 3*sim.Second) // best effort
	tb.s.Run(4 * sim.Second)

	for _, kind := range []EventKind{EventDedicated, EventTreeLeaf, EventUniform, EventLinkDown} {
		if n := tb.countEvents(kind); n != 0 {
			t.Errorf("%v raised %d times without any failure", kind, n)
		}
	}
	if tb.det.SessionsCompleted(1) == 0 {
		t.Error("no sessions completed; protocol is not cycling")
	}
}

func TestTreeDetectionSingleEntry(t *testing.T) {
	tb := newTestbed(t, testCfg, 3)
	const entry = netsim.EntryID(500) // best effort
	tb.udp(entry, 2e6, 0, 8*sim.Second)
	tb.udp(600, 2e6, 0, 8*sim.Second) // healthy background
	const failAt = 1 * sim.Second
	tb.failEntries(failAt, 1.0, entry)
	tb.s.Run(8 * sim.Second)

	if _, ok := tb.firstEvent(EventTreeZoomStart); !ok {
		t.Fatal("zooming never started")
	}
	ev, ok := tb.firstEvent(EventTreeLeaf)
	if !ok {
		t.Fatal("tree never reached a mismatching leaf")
	}
	lat := ev.Time - failAt
	// Lower bound ≈ depth × zooming interval (3 × 200 ms).
	if lat < 400*sim.Millisecond || lat > 2*sim.Second {
		t.Errorf("tree detection latency = %v, want ≈600ms..2s", lat)
	}
	if !tb.det.Flagged(1, entry) {
		t.Error("failed entry not flagged via the Bloom filter")
	}
	if tb.det.Flagged(1, 600) {
		t.Error("healthy entry flagged (hash collision with w=32 is possible but unlikely)")
	}
	// The reported path must equal the entry's hash path.
	want := tb.det.EntryPath(1, entry)
	if len(ev.Path) != len(want) {
		t.Fatalf("leaf path %v, want %v", ev.Path, want)
	}
	for i := range want {
		if ev.Path[i] != want[i] {
			t.Fatalf("leaf path %v, want %v", ev.Path, want)
		}
	}
}

func TestTreeDetectionMultiEntry(t *testing.T) {
	tb := newTestbed(t, testCfg, 4)
	failed := []netsim.EntryID{300, 301, 302, 303}
	for _, e := range failed {
		tb.udp(e, 1e6, 0, 15*sim.Second)
	}
	tb.udp(700, 1e6, 0, 15*sim.Second)
	tb.failEntries(1*sim.Second, 1.0, failed...)
	tb.s.Run(15 * sim.Second)

	for _, e := range failed {
		if !tb.det.Flagged(1, e) {
			t.Errorf("multi-entry failure: entry %d not flagged", e)
		}
	}
	if tb.det.Flagged(1, 700) {
		t.Error("healthy entry flagged during multi-entry failure")
	}
}

func TestUniformFailureDetectedAsUniform(t *testing.T) {
	tb := newTestbed(t, testCfg, 5)
	// Many best-effort entries so most root counters carry traffic.
	for e := netsim.EntryID(100); e < 160; e++ {
		tb.udp(e, 400e3, 0, 5*sim.Second)
	}
	f := netsim.FailUniform(42, 1*sim.Second, 0.5)
	tb.link.AB.SetFailure(f)
	tb.s.Run(5 * sim.Second)

	ev, ok := tb.firstEvent(EventUniform)
	if !ok {
		t.Fatal("uniform failure not classified as uniform")
	}
	lat := ev.Time - 1*sim.Second
	// §5.1.3: average detection time matches one zooming interval.
	if lat > 600*sim.Millisecond {
		t.Errorf("uniform detection latency = %v, want ≈1 zooming interval", lat)
	}
}

func TestPartialLossDetected(t *testing.T) {
	tb := newTestbed(t, testCfg, 6)
	tb.udp(10, 5e6, 0, 10*sim.Second) // dedicated, 625 pkt/s
	tb.failEntries(1*sim.Second, 0.01, 10)
	tb.s.Run(10 * sim.Second)
	if _, ok := tb.firstEvent(EventDedicated); !ok {
		t.Fatal("1% loss on a busy dedicated entry not detected within 9s")
	}
}

func TestControlLossResilience(t *testing.T) {
	// Drop 30% of control messages too: stop-and-wait retransmission must
	// still close sessions and detect the failure.
	tb := newTestbed(t, testCfg, 7)
	tb.udp(10, 2e6, 0, 10*sim.Second)
	f := tb.failEntries(1*sim.Second, 0.5, 10)
	f.DropsControl = true
	tb.s.Run(10 * sim.Second)
	if _, ok := tb.firstEvent(EventDedicated); !ok {
		t.Fatal("failure not detected despite control-plane retransmissions")
	}
}

func TestReverseControlLoss(t *testing.T) {
	// Loss on the reverse direction hits StartACK/Report. The link is
	// still monitorable thanks to retransmission (the strawman protocol
	// of §4.1 would lose whole sessions here).
	tb := newTestbed(t, testCfg, 8)
	tb.udp(10, 2e6, 0, 10*sim.Second)
	tb.link.BA.SetFailure(netsim.FailUniform(13, 0, 0.3))
	tb.failEntries(1*sim.Second, 1.0, 10)
	tb.s.Run(10 * sim.Second)
	if _, ok := tb.firstEvent(EventDedicated); !ok {
		t.Fatal("failure not detected under reverse-direction control loss")
	}
}

func TestLinkDownAfterMaxAttempts(t *testing.T) {
	tb := newTestbed(t, testCfg, 9)
	tb.udp(10, 1e6, 0, 5*sim.Second)
	// Hard failure: everything dropped, including control messages.
	tb.link.AB.SetFailure(netsim.FailUniform(14, 1*sim.Second, 1.0))
	tb.s.Run(5 * sim.Second)
	ev, ok := tb.firstEvent(EventLinkDown)
	if !ok {
		t.Fatal("total blackhole did not raise link-down")
	}
	// X=5 attempts at Trtx=50ms ≈ 250 ms after the last exchange.
	if ev.Time < 1*sim.Second || ev.Time > 2*sim.Second {
		t.Errorf("link-down at %v, want shortly after 1s", ev.Time)
	}
}

func TestTagsStrippedBeforeForwarding(t *testing.T) {
	tb := newTestbed(t, testCfg, 10)
	var tagged int
	tb.dst.Default = netsim.PacketHandlerFunc(func(p *netsim.Packet) {
		if p.Tagged {
			tagged++
		}
	})
	tb.udp(10, 2e6, 0, 1*sim.Second)
	tb.udp(300, 2e6, 0, 1*sim.Second)
	tb.s.Run(2 * sim.Second)
	if tagged != 0 {
		t.Errorf("%d tagged packets escaped the monitored link", tagged)
	}
}

func TestSessionCadence(t *testing.T) {
	tb := newTestbed(t, testCfg, 11)
	tb.udp(10, 1e6, 0, 3*sim.Second)
	tb.s.Run(3 * sim.Second)
	// Each dedicated unit cycles roughly every interval + open/close
	// (≈50+42 ms on a 10 ms link) → ≈32 sessions in 3 s; the tree every
	// ≈242 ms → ≈12. Three dedicated units + tree ≥ 60 total.
	got := tb.det.SessionsCompleted(1)
	if got < 40 || got > 200 {
		t.Errorf("SessionsCompleted = %d, want ≈100", got)
	}
}

func TestNonPipelinedTreeDetects(t *testing.T) {
	cfg := testCfg
	cfg.Tree = tree.Params{Width: 32, Depth: 3, Split: 1, Pipelined: false}
	tb := newTestbed(t, cfg, 12)
	const entry = netsim.EntryID(500)
	tb.udp(entry, 2e6, 0, 10*sim.Second)
	tb.udp(600, 2e6, 0, 10*sim.Second)
	tb.failEntries(1*sim.Second, 1.0, entry)
	tb.s.Run(10 * sim.Second)
	if !tb.det.Flagged(1, entry) {
		t.Fatal("non-pipelined tree did not flag the failed entry")
	}
	if tb.det.Flagged(1, 600) {
		t.Error("non-pipelined tree flagged a healthy entry")
	}
}

func TestCountingPausesDuringExchange(t *testing.T) {
	// Indirect check of the stop-and-wait trade-off: the dedicated unit
	// does not count while opening/closing sessions, so over a fixed time
	// the counted packets are fewer than the sent packets even without
	// loss — but never more.
	tb := newTestbed(t, testCfg, 13)
	tb.udp(10, 2e6, 0, 2*sim.Second)
	tb.s.Run(3 * sim.Second)
	if n := tb.countEvents(EventDedicated); n != 0 {
		t.Errorf("counting pauses misclassified as failures: %d events", n)
	}
}

func TestFlaggedUnmonitoredPort(t *testing.T) {
	tb := newTestbed(t, testCfg, 14)
	if tb.det.Flagged(0, 10) {
		t.Error("unmonitored port reported a flag")
	}
	if tb.det.Outputs(0) != nil {
		t.Error("Outputs for unmonitored port should be nil")
	}
	if tb.det.EntryPath(0, 10) != nil {
		t.Error("EntryPath for unmonitored port should be nil")
	}
}

func TestAcknowledgeLifecycle(t *testing.T) {
	tb := newTestbed(t, testCfg, 16)
	tb.udp(10, 2e6, 0, 8*sim.Second)
	tb.udp(300, 2e6, 0, 8*sim.Second)
	// Failure heals at 3s.
	f := netsim.FailEntries(99, 1*sim.Second, 1.0, 10, 300)
	f.End = 3 * sim.Second
	tb.link.AB.SetFailure(f)
	tb.s.Run(4 * sim.Second)
	if !tb.det.Flagged(1, 10) || !tb.det.Flagged(1, 300) {
		t.Fatal("precondition: both entries flagged")
	}
	// Operator acknowledges after the repair: flags clear and (failure
	// gone) stay clear.
	tb.det.Acknowledge(1)
	if tb.det.Flagged(1, 10) || tb.det.Flagged(1, 300) {
		t.Fatal("Acknowledge did not clear the outputs")
	}
	tb.s.Run(6 * sim.Second)
	if tb.det.Flagged(1, 10) || tb.det.Flagged(1, 300) {
		t.Error("flags returned without a failure")
	}
	tb.det.Acknowledge(0) // unmonitored port: no-op
}

func TestAcknowledgeReflagsWhileFailing(t *testing.T) {
	tb := newTestbed(t, testCfg, 17)
	tb.udp(10, 2e6, 0, 8*sim.Second)
	tb.failEntries(1*sim.Second, 1.0, 10) // persists
	tb.s.Run(2 * sim.Second)
	if !tb.det.Flagged(1, 10) {
		t.Fatal("precondition: flagged")
	}
	tb.det.Acknowledge(1)
	tb.s.Run(3 * sim.Second)
	if !tb.det.Flagged(1, 10) {
		t.Error("persistent failure did not re-flag after Acknowledge")
	}
}

func TestOverheadAccounting(t *testing.T) {
	tb := newTestbed(t, testCfg, 15)
	tb.udp(10, 1e6, 0, 2*sim.Second)
	tb.s.Run(2 * sim.Second)
	if tb.det.CtlMsgsSent == 0 || tb.det.CtlBytesSent == 0 {
		t.Fatal("control overhead counters not populated")
	}
	// Sanity: per session the sender sends Start and Stop (≥2 messages).
	if tb.det.CtlMsgsSent < 2*tb.det.SessionsCompleted(1) {
		t.Errorf("CtlMsgsSent = %d < 2×sessions (%d)", tb.det.CtlMsgsSent, tb.det.SessionsCompleted(1))
	}
}

func TestIntermittentFailureDetected(t *testing.T) {
	// §2.1: intermittent gray failures are the ones operators never
	// manage to diagnose. FANcY's continuous sessions catch the bursts:
	// any burst overlapping a counting window produces a mismatch.
	tb := newTestbed(t, testCfg, 61)
	tb.udp(10, 2e6, 0, 10*sim.Second)
	f := netsim.FailEntries(5, 1*sim.Second, 1.0, 10)
	f.BurstOn = 80 * sim.Millisecond // bursts shorter than a session
	f.BurstOff = 920 * sim.Millisecond
	tb.link.AB.SetFailure(f)
	tb.s.Run(10 * sim.Second)

	ev, ok := tb.firstEvent(EventDedicated)
	if !ok {
		t.Fatal("intermittent failure never detected")
	}
	if lat := ev.Time - sim.Second; lat > 500*sim.Millisecond {
		t.Errorf("first burst detected after %v, want within a few sessions", lat)
	}
	// Each ~1s period has one burst → roughly one flagging session per
	// period; sanity-check that detection repeats across bursts.
	if n := tb.countEvents(EventDedicated); n < 4 {
		t.Errorf("only %d mismatch events across ~9 bursts", n)
	}
}

func TestStringersAndAccessors(t *testing.T) {
	// EventKind/Event stringers.
	for _, k := range []EventKind{EventDedicated, EventTreeZoomStart, EventTreeLeaf,
		EventUniform, EventLinkDown, EventKind(77)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	evs := []Event{
		{Kind: EventDedicated, Entry: 5, Diff: 2},
		{Kind: EventTreeLeaf, Path: []uint16{1, 2}, Diff: 3},
		{Kind: EventUniform},
	}
	for _, ev := range evs {
		if ev.String() == "" {
			t.Errorf("empty Event string for %v", ev.Kind)
		}
	}

	tb := newTestbed(t, testCfg, 71)
	if got := tb.det.Config(); len(got.HighPriority) != 3 {
		t.Error("Config accessor broken")
	}
	if slot, ok := tb.det.DedicatedSlot(11); !ok || slot != 1 {
		t.Errorf("DedicatedSlot(11) = %d,%v; want 1,true", slot, ok)
	}
	if _, ok := tb.det.DedicatedSlot(999); ok {
		t.Error("DedicatedSlot for best-effort entry reported true")
	}
	if tb.det.LinkDown(1) {
		t.Error("LinkDown true on a healthy link")
	}
	if tb.det.Layout.String() == "" {
		t.Error("Layout string empty")
	}
}

func TestOutputStructuresEdges(t *testing.T) {
	fa := NewFlagArray(10)
	fa.Set(-1)
	fa.Set(10)
	if fa.Count() != 0 {
		t.Error("out-of-range Set changed the array")
	}
	if fa.Get(-1) || fa.Get(10) {
		t.Error("out-of-range Get returned true")
	}
	fa.Set(3)
	fa.Set(3) // idempotent
	if fa.Count() != 1 || fa.Len() != 10 {
		t.Errorf("count=%d len=%d", fa.Count(), fa.Len())
	}
	fa.Clear(9) // unset slot: no-op
	if fa.Count() != 1 {
		t.Error("Clear of unset slot changed the count")
	}

	pb := NewPathBloom(10) // below the 64-cell floor
	if pb.MemoryBits() < 128 {
		t.Errorf("MemoryBits = %d, want ≥128 (2×64 cells)", pb.MemoryBits())
	}
	if pb.Contains([]uint16{1}) {
		t.Error("empty bloom contains something")
	}
	pb.Insert([]uint16{1, 2, 3})
	if !pb.Contains([]uint16{1, 2, 3}) || pb.Inserted() != 1 {
		t.Error("bloom insert/contains broken")
	}
	pb.Reset()
	if pb.Contains([]uint16{1, 2, 3}) || pb.Inserted() != 0 {
		t.Error("bloom Reset ineffective")
	}
}
