package fancy

// White-box tests of the sender/receiver FSM transition edge cases:
// out-of-order, duplicated and stale control messages must never corrupt a
// session, and every lost-message recovery path must terminate.

import (
	"testing"

	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// fsmHarness exposes one dedicated sender FSM and the detector around it.
// The switch's monitored port is unattached, so control messages go
// nowhere — exactly what these tests want: full manual control.
type fsmHarness struct {
	s   *sim.Sim
	det *Detector
	fsm *senderFSM
}

func newFSMHarness(t *testing.T) *fsmHarness {
	t.Helper()
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw", 2)
	det, err := NewDetector(s, sw, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	det.MonitorPort(1)
	s.Run(10 * sim.Millisecond) // let startSession fire
	return &fsmHarness{s: s, det: det, fsm: det.monitors[1].dedicated[0]}
}

func (h *fsmHarness) msg(typ wire.MsgType, session uint32) *wire.Message {
	return &wire.Message{Header: wire.Header{
		Type: typ, Kind: wire.KindDedicated, Epoch: h.det.epoch,
		Session: session, Link: 1, Unit: 0,
	}}
}

func TestFSMStartACKAdvancesToCounting(t *testing.T) {
	h := newFSMHarness(t)
	if h.fsm.state != sWaitStartACK {
		t.Fatalf("state = %d after start, want WaitStartACK", h.fsm.state)
	}
	h.fsm.onControl(h.msg(wire.MsgStartACK, h.fsm.session))
	if h.fsm.state != sCounting {
		t.Fatalf("state = %d after ACK, want Counting", h.fsm.state)
	}
}

func TestFSMStaleSessionIgnored(t *testing.T) {
	h := newFSMHarness(t)
	h.fsm.onControl(h.msg(wire.MsgStartACK, h.fsm.session+7))
	if h.fsm.state != sWaitStartACK {
		t.Fatal("ACK with wrong session advanced the FSM")
	}
	h.fsm.onControl(h.msg(wire.MsgStartACK, h.fsm.session-1))
	if h.fsm.state != sWaitStartACK {
		t.Fatal("stale-session ACK advanced the FSM")
	}
}

func TestFSMReportInWrongStateIgnored(t *testing.T) {
	h := newFSMHarness(t)
	rep := h.msg(wire.MsgReport, h.fsm.session)
	rep.Counters = []uint64{0}
	h.fsm.onControl(rep) // still WaitStartACK
	if h.fsm.state != sWaitStartACK || h.fsm.SessionsCompleted != 0 {
		t.Fatal("Report accepted before the session was even open")
	}
}

func TestFSMDuplicateACKHarmless(t *testing.T) {
	h := newFSMHarness(t)
	sess := h.fsm.session
	h.fsm.onControl(h.msg(wire.MsgStartACK, sess))
	h.fsm.onControl(h.msg(wire.MsgStartACK, sess)) // duplicate
	if h.fsm.state != sCounting {
		t.Fatal("duplicate ACK disturbed Counting")
	}
}

func TestFSMFullSessionCycle(t *testing.T) {
	h := newFSMHarness(t)
	sess := h.fsm.session
	h.fsm.onControl(h.msg(wire.MsgStartACK, sess))
	// Advance past the exchange interval: the FSM stops counting.
	h.s.Run(h.s.Now() + DefaultExchangeInterval + sim.Millisecond)
	if h.fsm.state != sWaitReport {
		t.Fatalf("state = %d after interval, want WaitReport", h.fsm.state)
	}
	rep := h.msg(wire.MsgReport, sess)
	rep.Counters = []uint64{0}
	h.fsm.onControl(rep)
	if h.fsm.SessionsCompleted != 1 {
		t.Fatalf("SessionsCompleted = %d, want 1", h.fsm.SessionsCompleted)
	}
	// A new session opened immediately with a fresh session number.
	if h.fsm.session != sess+1 || h.fsm.state != sWaitStartACK {
		t.Fatalf("next session not opened: session=%d state=%d", h.fsm.session, h.fsm.state)
	}
	// A late duplicate Report of the old session is ignored.
	h.fsm.onControl(rep)
	if h.fsm.SessionsCompleted != 1 {
		t.Fatal("duplicate Report double-counted")
	}
}

func TestFSMRetransmitsAndReportsLinkDown(t *testing.T) {
	h := newFSMHarness(t)
	var events []Event
	h.det.OnEvent = func(ev Event) { events = append(events, ev) }
	sent := h.fsm.CtlSent
	// No ACK ever arrives: the FSM retransmits every Trtx and reports a
	// link failure after MaxAttempts.
	h.s.Run(h.s.Now() + sim.Time(testCfgAttempts()+2)*DefaultTrtx)
	if h.fsm.CtlSent <= sent {
		t.Fatal("no retransmissions")
	}
	down := 0
	for _, ev := range events {
		if ev.Kind == EventLinkDown {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("link-down events = %d, want exactly 1", down)
	}
	// Recovery: a (very) late ACK clears the condition.
	h.fsm.onControl(h.msg(wire.MsgStartACK, h.fsm.session))
	if h.fsm.state != sCounting || h.fsm.linkDown {
		t.Fatal("late ACK did not recover the session")
	}
}

func testCfgAttempts() int64 { return int64(DefaultMaxAttempts) }

// --- Receiver FSM edge cases, driven through handleControl ---

type recvHarness struct {
	s   *sim.Sim
	det *Detector
	sw  *netsim.Switch
}

func newRecvHarness(t *testing.T) *recvHarness {
	t.Helper()
	s := sim.New(2)
	sw := netsim.NewSwitch(s, "sw", 2)
	det, err := NewDetector(s, sw, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	det.ListenPort(0)
	return &recvHarness{s: s, det: det, sw: sw}
}

func (h *recvHarness) deliver(typ wire.MsgType, session uint32) {
	h.deliverEpoch(typ, session, 1)
}

func (h *recvHarness) deliverEpoch(typ wire.MsgType, session uint32, epoch uint8) {
	m := &wire.Message{Header: wire.Header{
		Type: typ, Kind: wire.KindDedicated, Epoch: epoch,
		Session: session, Link: 0, Unit: 0,
	}}
	h.det.handleControl(m, 0)
}

func (h *recvHarness) unitFSM() *receiverFSM {
	return h.det.listeners[0].units[0]
}

func TestReceiverStopBeforeStartIgnored(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStop, 5)
	if len(h.det.listeners[0].units) != 0 {
		t.Fatal("Stop without a Start created a receiver FSM")
	}
}

func TestReceiverStartAckStopReport(t *testing.T) {
	h := newRecvHarness(t)
	before := h.det.CtlMsgsSent
	h.deliver(wire.MsgStart, 1)
	if h.det.CtlMsgsSent != before+1 {
		t.Fatal("no Start ACK sent")
	}
	fsm := h.unitFSM()
	if fsm.state != rCounting {
		t.Fatalf("state = %d, want counting", fsm.state)
	}
	// Tagged packet counted.
	fsm.onIngress(&netsim.Packet{Tagged: true, Tag: wire.DedicatedTag(0)})
	h.deliver(wire.MsgStop, 1)
	if fsm.state != rWaitToSend {
		t.Fatalf("state = %d after Stop, want WaitToSend", fsm.state)
	}
	// Counting continues during Twait (delayed packets).
	fsm.onIngress(&netsim.Packet{Tagged: true, Tag: wire.DedicatedTag(0)})
	sent := h.det.CtlMsgsSent
	h.s.Run(h.s.Now() + DefaultTwait + sim.Millisecond)
	if h.det.CtlMsgsSent != sent+1 {
		t.Fatal("no Report sent after Twait")
	}
	if fsm.state != rIdle {
		t.Fatal("receiver not idle after Report")
	}
	if got := fsm.lastReport; len(got) != 1 || got[0] != 2 {
		t.Fatalf("report counters = %v, want [2]", got)
	}
}

func TestReceiverDuplicateStartReACKs(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStart, 1)
	sent := h.det.CtlMsgsSent
	h.deliver(wire.MsgStart, 1) // retransmitted Start (our ACK was lost)
	if h.det.CtlMsgsSent != sent+1 {
		t.Fatal("retransmitted Start not re-ACKed")
	}
}

func TestReceiverRetransmittedStopResendsReport(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStart, 1)
	h.deliver(wire.MsgStop, 1)
	h.s.Run(h.s.Now() + DefaultTwait + sim.Millisecond) // Report sent, now idle
	sent := h.det.CtlMsgsSent
	h.deliver(wire.MsgStop, 1) // upstream never got the Report
	if h.det.CtlMsgsSent != sent+1 {
		t.Fatal("retransmitted Stop did not resend the Report")
	}
	// But a Stop for some other session does nothing.
	h.deliver(wire.MsgStop, 9)
	if h.det.CtlMsgsSent != sent+1 {
		t.Fatal("foreign-session Stop answered")
	}
}

func TestReceiverStopDuringTwaitIgnored(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStart, 1)
	h.deliver(wire.MsgStop, 1)
	sent := h.det.CtlMsgsSent
	h.deliver(wire.MsgStop, 1) // duplicate while Twait pending
	if h.det.CtlMsgsSent != sent {
		t.Fatal("duplicate Stop answered early (Report should wait for Twait)")
	}
}

func TestReceiverNewSessionResetsCounters(t *testing.T) {
	h := newRecvHarness(t)
	h.deliver(wire.MsgStart, 1)
	fsm := h.unitFSM()
	fsm.onIngress(&netsim.Packet{Tagged: true, Tag: wire.DedicatedTag(0)})
	h.deliver(wire.MsgStart, 2) // next session
	h.deliver(wire.MsgStop, 2)
	h.s.Run(h.s.Now() + DefaultTwait + sim.Millisecond)
	if got := fsm.lastReport; len(got) != 1 || got[0] != 0 {
		t.Fatalf("session 2 report = %v, want [0] (fresh counters)", got)
	}
}
