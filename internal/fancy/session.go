package fancy

// This file implements the counting protocol's finite state machines
// (Figures 3 and 4 of the paper). One sender FSM runs at the upstream
// switch and one receiver FSM at the downstream switch for every monitored
// unit: each dedicated entry is a unit, and the hash-based tree is one more
// unit — matching the per-port sub-state-machines of the Tofino
// implementation (Appendix B.2).
//
// The protocol is stop-and-wait: Start/StartACK opens a session,
// Stop/Report closes it, and the upstream retransmits unanswered control
// messages every Trtx, reporting a link failure after MaxAttempts. Counting
// pauses while control messages are in flight — the deliberate accuracy/
// memory trade-off of §4.1.

import (
	"fancy/internal/netsim"
	"fancy/internal/sim"
	"fancy/internal/wire"
)

// senderState enumerates the sender FSM states of Figure 3 (left).
type senderState uint8

const (
	sIdle         senderState = iota
	sWaitStartACK             // Start sent, waiting for Start ACK
	sCounting                 // tagging and counting packets
	sWaitReport               // Stop sent, waiting for Report
)

// senderCounters abstracts the two counting machineries on the sender side.
type senderCounters interface {
	// resetSession zeroes the counters for a new session and returns the
	// zoom targets to advertise in the Start message (nil for dedicated).
	resetSession() []wire.ZoomTarget
	// tagPacket counts a packet belonging to this unit and returns its
	// wire tag. ok=false means the packet is not counted this session
	// (non-pipelined zoom stages only count matching packets).
	tagPacket(entry netsim.EntryID) (tag wire.Tag, ok bool)
	// handleReport compares the downstream counters against the local
	// ones, raising events through the detector.
	handleReport(counters []uint64)
}

// senderFSM drives one unit's counting sessions from the upstream switch.
type senderFSM struct {
	det      *Detector
	port     int
	kind     wire.SessionKind
	unit     uint16
	interval sim.Time
	counters senderCounters

	state      senderState
	session    uint32
	attempts   int
	rtx        sim.Timer
	sessEnd    sim.Timer
	countStart sim.Time

	// Bound once, lazily: rearming the recurring timers with prebound
	// callbacks keeps the steady-state session loop allocation-free.
	onRtxFn       func()
	endCountingFn func()

	lastTargets []wire.ZoomTarget
	linkDown    bool
	// backoff is the current probe interval of the degraded state entered
	// after link-down (doubles per probe up to cfg.MaxProbeInterval).
	backoff sim.Time
	// dead marks an FSM retired by Detector.Restart; its pending timers may
	// still fire and must become no-ops.
	dead bool

	// SessionsCompleted counts fully closed sessions, for tests.
	SessionsCompleted uint64
	// CtlSent counts control messages (overhead accounting, §5.3).
	CtlSent      uint64
	CtlBytesSent uint64
}

func (f *senderFSM) startSession() {
	if f.dead {
		return
	}
	f.session++
	f.attempts = 0
	f.lastTargets = f.counters.resetSession()
	f.state = sWaitStartACK
	f.sendStart()
	f.armRtx()
}

// kill retires the FSM (device restart): stop its timers and neuter any
// already-scheduled callbacks.
func (f *senderFSM) kill() {
	f.dead = true
	f.state = sIdle
	f.rtx.Stop()
	f.sessEnd.Stop()
}

func (f *senderFSM) sendStart() {
	f.sendCtl(&wire.Message{
		Header:  wire.Header{Type: wire.MsgStart, Kind: f.kind, Epoch: f.det.epoch, Session: f.session, Link: uint16(f.port), Unit: f.unit},
		Targets: f.lastTargets,
	})
}

func (f *senderFSM) sendStop() {
	f.sendCtl(&wire.Message{
		Header: wire.Header{Type: wire.MsgStop, Kind: f.kind, Epoch: f.det.epoch, Session: f.session, Link: uint16(f.port), Unit: f.unit},
	})
}

func (f *senderFSM) sendCtl(m *wire.Message) {
	f.CtlSent++
	f.CtlBytesSent += uint64(f.det.sendControl(f.port, m))
}

func (f *senderFSM) armRtx() {
	if f.onRtxFn == nil {
		f.onRtxFn = f.onRtx
	}
	f.rtx.Stop()
	f.rtx = f.det.s.ScheduleTimer(f.det.cfg.Trtx, f.onRtxFn)
}

func (f *senderFSM) onRtx() {
	if f.dead {
		return
	}
	f.attempts++
	f.det.stats.Retransmits++
	if f.attempts >= f.det.cfg.MaxAttempts {
		if !f.linkDown {
			f.linkDown = true
			f.det.reportLinkDown(f.port)
			// Degrade to probing: abandon the stalled session and solicit
			// the peer with a fresh Start at exponentially backed-off
			// intervals. Counting resumes automatically the moment an ACK
			// comes back (see onControl), so flap heal and peer restart
			// both recover without operator action.
			f.backoff = f.det.cfg.Trtx
			f.session++
			f.lastTargets = f.counters.resetSession()
			f.state = sWaitStartACK
		}
		f.backoff *= 2
		if f.backoff > f.det.cfg.MaxProbeInterval {
			f.backoff = f.det.cfg.MaxProbeInterval
		}
		f.sendStart()
		f.rtx.Stop()
		f.rtx = f.det.s.ScheduleTimer(f.backoff, f.onRtxFn)
		return
	}
	switch f.state {
	case sWaitStartACK:
		f.sendStart()
	case sWaitReport:
		f.sendStop()
	default:
		return // stale timer
	}
	f.armRtx()
}

// recover leaves the degraded probe state when the peer answers again.
func (f *senderFSM) recover() {
	if f.linkDown {
		f.linkDown = false
		f.backoff = 0
		f.det.reportLinkUp(f.port)
	}
}

// onControl handles StartACK and Report messages from the downstream.
func (f *senderFSM) onControl(m *wire.Message) {
	if f.dead || m.Session != f.session {
		return // stale or duplicated response
	}
	if m.Epoch != f.det.epoch {
		// Response from a previous incarnation of this detector (it
		// restarted since the session opened) — the counters it refers to
		// are gone. Ignore; the new epoch's sessions stand on their own.
		return
	}
	switch m.Type {
	case wire.MsgStartACK:
		if f.state != sWaitStartACK {
			return
		}
		f.rtx.Stop()
		f.recover()
		f.attempts = 0
		f.state = sCounting
		f.countStart = f.det.s.Now()
		if f.endCountingFn == nil {
			f.endCountingFn = f.endCounting
		}
		f.sessEnd = f.det.s.ScheduleTimer(f.interval, f.endCountingFn)
	case wire.MsgReport:
		if f.state != sWaitReport {
			return
		}
		f.rtx.Stop()
		f.recover()
		f.state = sIdle
		f.SessionsCompleted++
		if g := f.det.guard; g != nil && g.Congested(f.port, f.countStart, f.det.s.Now()) {
			// Footnote 2 of §4.3: measurements overlapping a congested
			// period are discarded rather than compared.
			f.det.discarded++
		} else {
			f.counters.handleReport(m.Counters)
		}
		// "opening a new session as soon as the previous one is closed".
		f.startSession()
	}
}

func (f *senderFSM) endCounting() {
	if f.dead || f.state != sCounting {
		return
	}
	f.state = sWaitReport
	f.attempts = 0
	f.sendStop()
	f.armRtx()
}

// onEgress counts and tags a data packet if this unit is in Counting state.
func (f *senderFSM) onEgress(pkt *netsim.Packet) {
	if f.state != sCounting {
		return
	}
	tag, ok := f.counters.tagPacket(pkt.Entry)
	if !ok {
		return
	}
	pkt.Tagged = true
	pkt.Tag = tag
	pkt.TagKind = f.kind
	pkt.Size += wire.TagSize
}

// onEgressCustom counts a packet through a custom unit, which sees the
// whole packet rather than just its entry. It reports whether the unit
// claimed (tagged) the packet.
func (f *senderFSM) onEgressCustom(pkt *netsim.Packet) bool {
	if f.state != sCounting {
		return false
	}
	a, ok := f.counters.(*customSenderAdapter)
	if !ok {
		return false
	}
	tag, want := a.cs.Observe(pkt)
	if !want {
		return false
	}
	pkt.Tagged = true
	pkt.Tag = tag
	pkt.TagKind = wire.KindCustom
	pkt.Size += wire.TagSize
	return true
}

// receiverState enumerates the receiver FSM states of Figure 3 (right).
type receiverState uint8

const (
	rIdle       receiverState = iota
	rCounting                 // Start ACKed; counting tagged packets
	rWaitToSend               // Stop received; grace period Twait running
)

// receiverCounters abstracts the downstream counting machinery.
type receiverCounters interface {
	// resetSession zeroes counters and adopts the zoom targets advertised
	// in the Start message.
	resetSession(targets []wire.ZoomTarget)
	// countTag increments the counter a tagged packet maps to.
	countTag(tag wire.Tag)
	// snapshot returns the Report payload.
	snapshot() []uint64
}

// receiverFSM runs at the downstream switch for one unit.
type receiverFSM struct {
	det      *Detector
	port     int // our ingress port for this link
	kind     wire.SessionKind
	unit     uint16
	counters receiverCounters

	state        receiverState
	session      uint32
	epoch        uint8 // adopted from the upstream's Start, echoed back
	haveSess     bool
	tagged       uint64 // tagged packets counted this session
	lastReport   []uint64
	twait        sim.Timer
	sendReportFn func()
	dead         bool
}

// kill retires the FSM (device restart).
func (f *receiverFSM) kill() {
	f.dead = true
	f.state = rIdle
	f.twait.Stop()
}

// onControl handles Start and Stop from the upstream.
func (f *receiverFSM) onControl(m *wire.Message) {
	if f.dead {
		return
	}
	switch m.Type {
	case wire.MsgStart:
		if f.haveSess && m.Session == f.session && m.Epoch == f.epoch {
			// Retransmitted or duplicated Start. If our ACK was lost the
			// sender never started counting and no tagged packet can have
			// arrived, so resetting again is harmless. But if we HAVE
			// counted packets, an ACK clearly got through and this copy is
			// a network duplicate (or a reordered straggler): resetting now
			// would discard live counts and fabricate a mismatch at session
			// close. Either way, only re-ACK once counting has begun.
			if f.tagged == 0 && f.state == rCounting {
				f.counters.resetSession(m.Targets)
			}
			f.sendAck()
			return
		}
		// New session — or the same session number under a different epoch,
		// meaning the upstream rebooted and restarted numbering: adopt its
		// epoch and resynchronize on this Start.
		f.session = m.Session
		f.epoch = m.Epoch
		f.haveSess = true
		f.twait.Stop()
		f.tagged = 0
		f.counters.resetSession(m.Targets)
		f.state = rCounting
		f.sendAck()
	case wire.MsgStop:
		if !f.haveSess || m.Session != f.session || m.Epoch != f.epoch {
			return
		}
		switch f.state {
		case rCounting:
			// Keep counting for Twait to absorb delayed or reordered
			// tagged packets (the WaitToSendCounter state of §4.1).
			f.state = rWaitToSend
			if f.sendReportFn == nil {
				f.sendReportFn = f.sendReport
			}
			f.twait = f.det.s.ScheduleTimer(f.det.cfg.Twait, f.sendReportFn)
		case rIdle:
			// Retransmitted Stop: our Report was lost; resend it.
			f.resendReport()
		case rWaitToSend:
			// Report is already pending; ignore.
		}
	}
}

func (f *receiverFSM) sendAck() {
	f.det.sendControl(f.port, &wire.Message{
		Header: wire.Header{Type: wire.MsgStartACK, Kind: f.kind, Epoch: f.epoch, Session: f.session, Link: uint16(f.port), Unit: f.unit},
	})
}

func (f *receiverFSM) sendReport() {
	if f.dead {
		return
	}
	f.state = rIdle
	f.lastReport = append(f.lastReport[:0], f.counters.snapshot()...)
	f.resendReport()
}

func (f *receiverFSM) resendReport() {
	f.det.sendControl(f.port, &wire.Message{
		Header:   wire.Header{Type: wire.MsgReport, Kind: f.kind, Epoch: f.epoch, Session: f.session, Link: uint16(f.port), Unit: f.unit},
		Counters: f.lastReport,
	})
}

// onIngress counts a tagged packet while the session is open.
func (f *receiverFSM) onIngress(pkt *netsim.Packet) {
	if f.dead {
		return
	}
	if f.state == rCounting || f.state == rWaitToSend {
		f.tagged++
		f.counters.countTag(pkt.Tag)
	}
}
