// Package tree implements FANcY's hash-based tree data structure (§4.2) and
// the analytical properties from Appendix A: node counts, memory sizing and
// collision (false positive) probability.
//
// A hash-based tree is a balanced k-ary tree whose nodes are fixed-size
// arrays of counters. A packet maps to one counter per level through a
// level-specific hash function; the list of counter indices from root to
// leaf is the packet's hash path. The tree generalizes a Bloom filter (a
// one-level tree) and is explored at runtime by the zooming algorithm,
// trading detection speed (d counting sessions) for memory.
package tree

import (
	"fmt"
	"math"
)

// Params are the three tree parameters plus the pipelining mode (§4.2,
// Appendix A.3). The paper's software evaluation uses Width 190, Depth 3,
// Split 2, pipelined; the Tofino prototype uses Split 1, non-pipelined.
type Params struct {
	Width int // counters per node (w)
	Depth int // levels, root to leaf (d)
	Split int // children per node (k)

	// Pipelined selects the zooming variant that explores several tree
	// levels simultaneously, storing every node; the non-pipelined variant
	// reuses one node's memory across levels (Appendix B.2).
	Pipelined bool
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.Width < 2 {
		return fmt.Errorf("tree: width %d < 2", p.Width)
	}
	if p.Width > 256 {
		// The 2-byte packet tag spends one byte on the counter index
		// (§5.3), bounding node width at 256.
		return fmt.Errorf("tree: width %d does not fit the one-byte tag counter index", p.Width)
	}
	if p.Depth < 1 {
		return fmt.Errorf("tree: depth %d < 1", p.Depth)
	}
	if p.Split < 1 {
		return fmt.Errorf("tree: split %d < 1", p.Split)
	}
	return nil
}

// Nodes computes the number of tree nodes that must be stored in switch
// memory (Appendix A.3, Eq. 3):
//
//	pipelined:          (k^d − 1)/(k − 1) for k > 1, else d
//	non-pipelined:      k^(d−1)
//	non-pipelined, k=1: 1
func (p Params) Nodes() int {
	k, d := p.Split, p.Depth
	if p.Pipelined {
		if k > 1 {
			return (ipow(k, d) - 1) / (k - 1)
		}
		return d
	}
	if k == 1 {
		return 1
	}
	return ipow(k, d-1)
}

// CounterBits is the per-counter register width used by the paper's memory
// accounting (32-bit counters).
const CounterBits = 32

// MemoryBits returns the total tree memory in bits across both session
// sides, excluding counting-protocol state: 2 · 32 · w · nodes (App. A.3).
func (p Params) MemoryBits() int {
	return 2 * CounterBits * p.Width * p.Nodes()
}

// HashPaths returns the number of distinct hash paths m = w^d, the
// effective "size" of the tree when viewed as a Bloom filter (App. A.2).
func (p Params) HashPaths() float64 {
	return math.Pow(float64(p.Width), float64(p.Depth))
}

// CollisionProb returns the probability that a non-faulty entry shares a
// hash path with at least one of n faulty entries (Appendix A.2, Eq. 1):
//
//	p = 1 − e^(−1/(m/n)) = 1 − e^(−n/m)
func (p Params) CollisionProb(nFaulty int) float64 {
	if nFaulty <= 0 {
		return 0
	}
	m := p.HashPaths()
	return 1 - math.Exp(-float64(nFaulty)/m)
}

// ExpectedCollisions returns the expected number of false positives when
// x entries cross the tree and nFaulty of them fail (Eq. 2: E = p · x).
func (p Params) ExpectedCollisions(nFaulty, x int) float64 {
	return p.CollisionProb(nFaulty) * float64(x)
}

// MaxParallelPaths is the number of hash paths the zooming algorithm can
// explore simultaneously: k^(d−1) in d counting sessions (§4.2).
func (p Params) MaxParallelPaths() int {
	return ipow(p.Split, p.Depth-1)
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Hasher maps entry keys to per-level counter indices. Both FANcY switches
// of a session never need to agree on hashes (the downstream learns indices
// from packet tags), but a deterministic seeded hash keeps experiments
// reproducible.
type Hasher struct {
	width uint64
	depth int
	seed  uint64
}

// NewHasher builds a hasher for a tree of the given width and depth.
func NewHasher(p Params, seed uint64) *Hasher {
	return &Hasher{width: uint64(p.Width), depth: p.Depth, seed: seed}
}

// Index returns H_level(entry) ∈ [0, width).
func (h *Hasher) Index(entry uint64, level int) uint16 {
	return uint16(h.mix(entry, uint64(level)) % h.width)
}

// Path appends the full hash path of entry (one index per level) to dst.
func (h *Hasher) Path(entry uint64, dst []uint16) []uint16 {
	for l := 0; l < h.depth; l++ {
		dst = append(dst, h.Index(entry, l))
	}
	return dst
}

// mix is a 64-bit FNV-1a-style hash over (seed, level, entry).
func (h *Hasher) mix(entry, level uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	x := uint64(offset)
	for _, v := range [3]uint64{h.seed, level, entry} {
		for i := 0; i < 8; i++ {
			x ^= (v >> (8 * i)) & 0xff
			x *= prime
		}
	}
	// Final avalanche (splitmix64 tail) to decorrelate low bits.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
