package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Params{Width: 190, Depth: 3, Split: 2, Pipelined: true}
	if err := good.Validate(); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
	bad := []Params{
		{Width: 1, Depth: 3, Split: 2},
		{Width: 190, Depth: 0, Split: 2},
		{Width: 190, Depth: 3, Split: 0},
		{Width: 257, Depth: 3, Split: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestNodesFormula(t *testing.T) {
	cases := []struct {
		p    Params
		want int
	}{
		// Pipelined, k>1: (k^d − 1)/(k − 1).
		{Params{Width: 4, Depth: 3, Split: 2, Pipelined: true}, 7},
		{Params{Width: 4, Depth: 3, Split: 3, Pipelined: true}, 13},
		{Params{Width: 4, Depth: 4, Split: 2, Pipelined: true}, 15},
		// Pipelined, k=1: d.
		{Params{Width: 4, Depth: 3, Split: 1, Pipelined: true}, 3},
		// Non-pipelined: k^(d−1).
		{Params{Width: 4, Depth: 3, Split: 2}, 4},
		{Params{Width: 4, Depth: 4, Split: 3}, 27},
		// Non-pipelined, k=1: 1 (the Tofino prototype reuses one node).
		{Params{Width: 190, Depth: 3, Split: 1}, 1},
	}
	for _, c := range cases {
		if got := c.p.Nodes(); got != c.want {
			t.Errorf("Nodes(%+v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestMemoryMatchesTofinoAppendix(t *testing.T) {
	// Appendix B.2: width-190 non-pipelined split-1 tree needs
	// 32·2·190 = 12160 bits per port for the counters.
	p := Params{Width: 190, Depth: 3, Split: 1}
	if got := p.MemoryBits(); got != 12160 {
		t.Errorf("MemoryBits = %d, want 12160", got)
	}
}

func TestHashPathsAndCollisions(t *testing.T) {
	p := Params{Width: 190, Depth: 3, Split: 2, Pipelined: true}
	m := p.HashPaths()
	if m != 190*190*190 {
		t.Errorf("HashPaths = %v, want 190^3", m)
	}
	if got := p.CollisionProb(0); got != 0 {
		t.Errorf("CollisionProb(0) = %v, want 0", got)
	}
	// With 100 simultaneous faulty entries over 190^3 paths, per-entry
	// collision probability is ≈100/190^3 ≈ 1.5e-5.
	prob := p.CollisionProb(100)
	if prob < 1e-5 || prob > 2e-5 {
		t.Errorf("CollisionProb(100) = %v, want ≈1.5e-5", prob)
	}
	// Paper §5: for 250K entries and 100 failures, ≈1.1 average false
	// positives at 100% loss. Eq. 2 gives E ≈ 3.6 for x=250K, same order.
	e := p.ExpectedCollisions(100, 250_000)
	if e < 1 || e > 6 {
		t.Errorf("ExpectedCollisions = %v, want a few (same order as paper's ≈1.1)", e)
	}
}

func TestMaxParallelPaths(t *testing.T) {
	if got := (Params{Width: 4, Depth: 3, Split: 2}).MaxParallelPaths(); got != 4 {
		t.Errorf("k=2,d=3: MaxParallelPaths = %d, want 4", got)
	}
	if got := (Params{Width: 4, Depth: 3, Split: 1}).MaxParallelPaths(); got != 1 {
		t.Errorf("k=1: MaxParallelPaths = %d, want 1", got)
	}
}

func TestHasherDeterminism(t *testing.T) {
	p := Params{Width: 190, Depth: 3, Split: 2}
	a := NewHasher(p, 42)
	b := NewHasher(p, 42)
	for e := uint64(0); e < 100; e++ {
		pa := a.Path(e, nil)
		pb := b.Path(e, nil)
		if len(pa) != 3 || len(pb) != 3 {
			t.Fatalf("path length = %d, want 3", len(pa))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("hashers disagree for entry %d", e)
			}
			if int(pa[i]) >= p.Width {
				t.Fatalf("index %d out of range", pa[i])
			}
		}
	}
}

func TestHasherSeedsDiffer(t *testing.T) {
	p := Params{Width: 190, Depth: 3, Split: 2}
	a := NewHasher(p, 1)
	b := NewHasher(p, 2)
	same := 0
	for e := uint64(0); e < 1000; e++ {
		if a.Index(e, 0) == b.Index(e, 0) {
			same++
		}
	}
	// Expected collisions ≈ 1000/190 ≈ 5; anything near 1000 means the
	// seed is ignored.
	if same > 50 {
		t.Errorf("seeds produce %d/1000 equal indices; seed not mixed in", same)
	}
}

func TestHasherLevelIndependence(t *testing.T) {
	p := Params{Width: 190, Depth: 3, Split: 2}
	h := NewHasher(p, 7)
	same := 0
	for e := uint64(0); e < 1000; e++ {
		if h.Index(e, 0) == h.Index(e, 1) {
			same++
		}
	}
	if same > 50 {
		t.Errorf("levels produce %d/1000 equal indices; level not mixed in", same)
	}
}

func TestHasherUniformity(t *testing.T) {
	p := Params{Width: 16, Depth: 1, Split: 1}
	h := NewHasher(p, 99)
	counts := make([]int, 16)
	const n = 16000
	for e := uint64(0); e < n; e++ {
		counts[h.Index(e, 0)]++
	}
	// Chi-squared against uniform: each bin expects 1000. With 15 dof the
	// 99.9th percentile is ≈37.7; allow generous slack.
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - 1000
		chi2 += d * d / 1000
	}
	if chi2 > 60 {
		t.Errorf("chi2 = %.1f, hash badly non-uniform: %v", chi2, counts)
	}
}

// Property: the empirical collision rate between random entry pairs matches
// the Bloom-filter analysis within an order of magnitude.
func TestPropertyCollisionRateMatchesFormula(t *testing.T) {
	p := Params{Width: 16, Depth: 2, Split: 2, Pipelined: true} // m = 256
	h := NewHasher(p, 5)
	rng := rand.New(rand.NewSource(6))
	const trials = 20000
	collisions := 0
	for i := 0; i < trials; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a == b {
			continue
		}
		pa := h.Path(a, nil)
		pb := h.Path(b, nil)
		if pa[0] == pb[0] && pa[1] == pb[1] {
			collisions++
		}
	}
	got := float64(collisions) / trials
	want := p.CollisionProb(1) // n=1 faulty entry
	if got < want/3 || got > want*3 {
		t.Errorf("empirical collision rate %.5f vs formula %.5f", got, want)
	}
}

// Property: Nodes() is always ≥ depth for pipelined trees and the memory
// formula is consistent with it.
func TestPropertyNodeMemoryConsistency(t *testing.T) {
	f := func(w, d, k uint8, pipelined bool) bool {
		p := Params{Width: int(w%200) + 2, Depth: int(d%5) + 1, Split: int(k%4) + 1, Pipelined: pipelined}
		n := p.Nodes()
		if n < 1 {
			return false
		}
		if p.Pipelined && n < p.Depth {
			return false
		}
		return p.MemoryBits() == 2*32*p.Width*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: collision probability is monotone in the number of faulty
// entries and bounded by 1.
func TestPropertyCollisionMonotone(t *testing.T) {
	p := Params{Width: 32, Depth: 2, Split: 2, Pipelined: true}
	prev := 0.0
	for n := 0; n < 5000; n += 100 {
		prob := p.CollisionProb(n)
		if prob < prev || prob > 1 || math.IsNaN(prob) {
			t.Fatalf("CollisionProb(%d) = %v not monotone in [0,1]", n, prob)
		}
		prev = prob
	}
}

func BenchmarkHashPath(b *testing.B) {
	p := Params{Width: 190, Depth: 3, Split: 2}
	h := NewHasher(p, 1)
	buf := make([]uint16, 0, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.Path(uint64(i), buf[:0])
	}
}
