// Package fancy implements the FANcY gray-failure detector (§3–§4 of the
// paper): the inter-switch counting protocol with its sender and receiver
// finite state machines, dedicated per-entry counters for high-priority
// entries, and the hash-based tree with the zooming algorithm for
// best-effort entries.
//
// A Detector attaches to a netsim.Switch. The switch upstream of a link runs
// sender FSMs (one per dedicated entry plus one for the tree, exactly the
// per-port sub-state-machines of the Tofino implementation in Appendix B);
// the downstream switch runs the matching receiver FSMs. Counters are
// compared at the upstream side at the end of every counting session, and
// mismatches raise Events and populate the output structures (a 1-bit flag
// array for dedicated entries and a Bloom filter of flagged hash paths).
package fancy

import (
	"fmt"

	"fancy/internal/fancy/tree"
	"fancy/internal/hh"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// Config is the FANcY input of Figure 1: the monitoring requirements
// (high-priority entries), the memory budget, and protocol timing knobs.
type Config struct {
	// HighPriority lists entries tracked with dedicated counters, in slot
	// order (slot index = wire unit). The paper's evaluation uses the 500
	// prefixes driving the most traffic.
	HighPriority []netsim.EntryID

	// MemoryBytes is the per-port memory budget (paper: 20 KB per port,
	// 1.25 MB for a 64-port switch). Zero disables the budget check.
	MemoryBytes int

	// Tree parameterizes the hash-based tree for best-effort entries. A
	// zero Width is auto-sized from the memory left after dedicated
	// counters. The paper's defaults are Depth 3, Split 2, pipelined.
	Tree tree.Params

	// TreeSeed seeds the per-level hash functions.
	TreeSeed uint64

	// ExchangeInterval is the dedicated counting session duration (the
	// counters' exchange frequency, §5.1.1; default 50 ms).
	ExchangeInterval sim.Time

	// ZoomingInterval is the tree counting session duration (the zooming
	// speed, §5.1.2; default 200 ms, matching TCP's retransmission
	// timeout).
	ZoomingInterval sim.Time

	// Trtx is the control-message retransmission timeout of the
	// stop-and-wait protocol (default 50 ms).
	Trtx sim.Time

	// Twait is the receiver's WaitToSendCounter grace period for delayed
	// or reordered tagged packets (default 2 ms).
	Twait sim.Time

	// MaxAttempts is X, the number of unanswered control retransmissions
	// after which a link failure is reported (default 5).
	MaxAttempts int

	// MaxProbeInterval caps the exponential backoff of the degraded probe
	// state a unit enters after reporting link-down: instead of hammering
	// Trtx retransmissions forever, it sends a fresh Start at intervals
	// doubling from Trtx up to this cap, and resumes counting on the first
	// answer (default 8×Trtx).
	MaxProbeInterval sim.Time

	// BloomCells sizes each of the two output Bloom filter registers
	// (default 100_000, the Tofino prototype's layout).
	BloomCells int

	// ZoomSelection picks which mismatching counters the zooming
	// algorithm explores first. The paper selects the maximum difference
	// "to prioritize failure detection for most traffic" (§4.2, fn. 1);
	// SelectRandom exists for the ablation study.
	ZoomSelection ZoomSelection

	// DynamicSlots reserves extra dedicated-counter slots beyond
	// HighPriority that the control plane assigns at runtime via
	// Promote/Demote (units len(HighPriority)..len(HighPriority)+
	// DynamicSlots-1 on the wire). The slots consume dedicated-counter
	// memory whether occupied or not — hardware register arrays are
	// provisioned, not grown.
	DynamicSlots int

	// HH, when non-nil, deploys the per-port heavy-hitter stage
	// (internal/hh): every data packet is observed by a HashPipe sketch
	// with PRECISION admission, and the top-k digest is reported through
	// Detector.OnHHReport once per ReportInterval. This is the signal the
	// counter-allocation controller uses to drive DynamicSlots.
	HH *HHStageConfig
}

// HHStageConfig parameterizes the heavy-hitter stage.
type HHStageConfig struct {
	// Sketch sizes the per-port sketch; each port derives its own seed
	// from Sketch.Seed via hh.PortSeed.
	Sketch hh.Params

	// ReportInterval is the sketch measurement window (default 100 ms):
	// every interval the top-k is encoded, reported, and the sketch reset.
	ReportInterval sim.Time

	// TopK is the number of prefixes per report (default 8).
	TopK int
}

func (h HHStageConfig) withDefaults() HHStageConfig {
	if h.ReportInterval == 0 {
		h.ReportInterval = DefaultHHReportInterval
	}
	if h.TopK <= 0 {
		h.TopK = DefaultHHTopK
	}
	return h
}

// ZoomSelection is the zooming algorithm's counter-selection policy.
type ZoomSelection uint8

// Selection policies.
const (
	// SelectMaxDiff explores the counters with the largest mismatch
	// first (the paper's choice).
	SelectMaxDiff ZoomSelection = iota
	// SelectRandom explores mismatching counters in random order.
	SelectRandom
)

// Protocol and layout defaults.
const (
	DefaultExchangeInterval = 50 * sim.Millisecond
	DefaultZoomingInterval  = 200 * sim.Millisecond
	DefaultTrtx             = 50 * sim.Millisecond
	DefaultTwait            = 2 * sim.Millisecond
	DefaultMaxAttempts      = 5
	DefaultMaxProbeInterval = 8 * DefaultTrtx
	DefaultBloomCells       = 100_000
	DefaultHHReportInterval = 100 * sim.Millisecond
	DefaultHHTopK           = 8

	// DedicatedEntryBits is the total memory per dedicated entry across
	// both session sides, including protocol state (§4.3: 80 bits).
	DedicatedEntryBits = 80

	// TreeNodeOverheadBits is the per-node counting-protocol and zooming
	// state (§4.3: 88 bits per side).
	TreeNodeOverheadBits = 88
)

// withDefaults returns a copy of c with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.ExchangeInterval == 0 {
		c.ExchangeInterval = DefaultExchangeInterval
	}
	if c.ZoomingInterval == 0 {
		c.ZoomingInterval = DefaultZoomingInterval
	}
	if c.Trtx == 0 {
		c.Trtx = DefaultTrtx
	}
	if c.Twait == 0 {
		c.Twait = DefaultTwait
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.MaxProbeInterval == 0 {
		c.MaxProbeInterval = 8 * c.Trtx
	}
	if c.BloomCells == 0 {
		c.BloomCells = DefaultBloomCells
	}
	if c.Tree.Depth == 0 {
		c.Tree.Depth = 3
	}
	if c.Tree.Split == 0 {
		c.Tree.Split = 2
		c.Tree.Pipelined = true
	}
	if c.HH != nil {
		h := c.HH.withDefaults()
		c.HH = &h
	}
	return c
}

// Layout is the result of input translation (§4.3): how the memory budget
// is split between dedicated counters and the hash-based tree.
type Layout struct {
	Dedicated     int // dedicated entries
	DedicatedBits int
	Tree          tree.Params
	TreeBits      int
	TotalBits     int
	BudgetBits    int // 0 if unlimited
}

// Plan performs FANcY's input translation: it allocates one dedicated
// counter per high-priority entry, then dimensions the hash-based tree from
// the remaining memory. It returns an error if the budget cannot fit the
// high-priority set plus a minimal tree — the error behaviour Figure 1
// prescribes.
func (c Config) Plan() (Layout, error) {
	c = c.withDefaults()
	var l Layout
	// Dynamic slots are provisioned register memory exactly like static
	// high-priority entries; only their assignment differs.
	l.Dedicated = len(c.HighPriority) + c.DynamicSlots
	l.DedicatedBits = l.Dedicated * DedicatedEntryBits
	l.BudgetBits = c.MemoryBytes * 8

	tp := c.Tree
	if tp.Width == 0 {
		if l.BudgetBits == 0 {
			return l, fmt.Errorf("fancy: cannot auto-size tree width without a memory budget")
		}
		remaining := l.BudgetBits - l.DedicatedBits
		perNode := remaining/tp.Nodes() - 2*TreeNodeOverheadBits
		tp.Width = perNode / (2 * tree.CounterBits)
		if tp.Width > 256 {
			tp.Width = 256
		}
	}
	if err := tp.Validate(); err != nil {
		return l, fmt.Errorf("fancy: memory budget of %d bytes cannot support %d dedicated entries plus a tree: %w",
			c.MemoryBytes, l.Dedicated, err)
	}
	l.Tree = tp
	l.TreeBits = tp.MemoryBits() + 2*TreeNodeOverheadBits*tp.Nodes()
	l.TotalBits = l.DedicatedBits + l.TreeBits
	if l.BudgetBits > 0 && l.TotalBits > l.BudgetBits {
		return l, fmt.Errorf("fancy: configuration needs %d bits but the budget is %d bits (%d bytes)",
			l.TotalBits, l.BudgetBits, c.MemoryBytes)
	}
	return l, nil
}

// String renders the layout for reports.
func (l Layout) String() string {
	return fmt.Sprintf("dedicated=%d (%.1f KB)  tree=w%d/d%d/k%d pipelined=%v (%.1f KB)  total=%.1f KB",
		l.Dedicated, float64(l.DedicatedBits)/8192,
		l.Tree.Width, l.Tree.Depth, l.Tree.Split, l.Tree.Pipelined,
		float64(l.TreeBits)/8192, float64(l.TotalBits)/8192)
}
