package fancy

// Protocol-level property tests: invariants that must hold across random
// traffic patterns, loss configurations and seeds.

import (
	"math/rand"
	"testing"

	"fancy/internal/fancy/tree"
	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// TestPropertyNoFalsePositivesLossless: whatever the traffic pattern, a
// lossless link never raises any detection event. This is FANcY's central
// soundness claim (FPR = 0 for dedicated counters; tree FPs only from
// hash collisions WITH a real failure present).
func TestPropertyNoFalsePositivesLossless(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := Config{
			HighPriority: []netsim.EntryID{10, 11, 12},
			Tree:         tree.Params{Width: 16, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     uint64(seed),
		}
		tb := newTestbed(t, cfg, 100+seed)
		rng := rand.New(rand.NewSource(seed))
		// Random bursty traffic over random entries, including dedicated.
		for i := 0; i < 12; i++ {
			entry := netsim.EntryID(rng.Intn(40))
			rate := float64(rng.Intn(40)+1) * 100e3
			start := sim.Time(rng.Intn(1000)) * sim.Millisecond
			stop := start + sim.Time(rng.Intn(3000)+200)*sim.Millisecond
			tb.udpWindow(entry, rate, start, stop)
		}
		tb.s.Run(5 * sim.Second)
		for _, kind := range []EventKind{EventDedicated, EventTreeLeaf, EventUniform, EventLinkDown} {
			if n := tb.countEvents(kind); n != 0 {
				t.Errorf("seed %d: %v raised %d times on a lossless link", seed, kind, n)
			}
		}
		if tb.out.Flags.Count() != 0 || tb.out.Bloom.Inserted() != 0 {
			t.Errorf("seed %d: outputs populated without loss", seed)
		}
	}
}

// TestPropertyConservation: with a blackhole on one entry and random
// background traffic, the detector flags the failed entry and only the
// failed entry (modulo tree hash collisions, which we avoid by checking
// the dedicated set and distinct tree paths).
func TestPropertyOnlyFailedEntryFlagged(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := Config{
			HighPriority: []netsim.EntryID{10, 11, 12},
			Tree:         tree.Params{Width: 64, Depth: 3, Split: 2, Pipelined: true},
			TreeSeed:     uint64(seed) + 77,
		}
		tb := newTestbed(t, cfg, 200+seed)
		rng := rand.New(rand.NewSource(seed + 50))

		entries := []netsim.EntryID{10, 11, 12, 100, 101, 102, 103}
		for _, e := range entries {
			tb.udp(e, float64(rng.Intn(20)+5)*100e3, 0, 8*sim.Second)
		}
		victim := entries[rng.Intn(len(entries))]
		tb.failEntries(1*sim.Second, 1.0, victim)
		tb.s.Run(8 * sim.Second)

		if !tb.det.Flagged(1, victim) {
			t.Errorf("seed %d: victim %d not flagged", seed, victim)
		}
		victimPath := pathKeyTest(tb.det.EntryPath(1, victim))
		for _, e := range entries {
			if e == victim {
				continue
			}
			if pathKeyTest(tb.det.EntryPath(1, e)) == victimPath {
				continue // genuine hash collision: a Bloom FP is expected
			}
			if tb.det.Flagged(1, e) {
				t.Errorf("seed %d: healthy entry %d flagged (victim %d)", seed, e, victim)
			}
		}
	}
}

// TestPropertyDetectionUnderRandomProtocolLoss: random loss on control
// messages in both directions cannot stop the stop-and-wait protocol from
// eventually detecting a blackhole.
func TestPropertyDetectionUnderRandomProtocolLoss(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tb := newTestbed(t, testCfg, 300+seed)
		tb.udp(10, 2e6, 0, 12*sim.Second)
		rng := rand.New(rand.NewSource(seed))
		rev := float64(rng.Intn(40)) / 100 // up to 40% reverse loss
		tb.link.BA.SetFailure(netsim.FailUniform(seed+9, 0, rev))
		// 70% data loss whose bug also eats control messages at the same
		// rate (a total control blackhole would correctly surface as
		// EventLinkDown instead).
		f := tb.failEntries(1*sim.Second, 0.7, 10)
		f.DropsControl = true
		tb.s.Run(12 * sim.Second)
		if _, ok := tb.firstEvent(EventDedicated); !ok {
			t.Errorf("seed %d (rev=%.2f): failure never detected", seed, rev)
		}
	}
}

// TestPropertySessionMonotonic: sessions complete continuously and the
// output structures never shrink.
func TestPropertySessionMonotonic(t *testing.T) {
	tb := newTestbed(t, testCfg, 400)
	tb.udp(10, 1e6, 0, 3*sim.Second)
	tb.failEntries(1*sim.Second, 0.3, 10)

	var lastSessions uint64
	var lastFlags int
	for step := sim.Time(0); step < 3*sim.Second; step += 200 * sim.Millisecond {
		tb.s.Run(step + 200*sim.Millisecond)
		s := tb.det.SessionsCompleted(1)
		if s < lastSessions {
			t.Fatalf("sessions went backwards: %d → %d", lastSessions, s)
		}
		lastSessions = s
		fl := tb.out.Flags.Count()
		if fl < lastFlags {
			t.Fatalf("flag count shrank: %d → %d", lastFlags, fl)
		}
		lastFlags = fl
	}
	if lastSessions == 0 {
		t.Fatal("no sessions completed")
	}
}

// udpWindow is like udp but with an explicit start.
func (tb *testbed) udpWindow(entry netsim.EntryID, rateBps float64, start, stop sim.Time) {
	const size = 1000
	gap := sim.Time(float64(size*8) / rateBps * float64(sim.Second))
	if gap <= 0 {
		gap = sim.Microsecond
	}
	var tick func()
	tick = func() {
		if tb.s.Now() >= stop {
			return
		}
		tb.src.Send(&netsim.Packet{
			Entry: entry, Dst: netsim.EntryAddr(entry, 1),
			Src: netsim.IPv4(172, 16, 0, 1), Proto: netsim.ProtoUDP, Size: size,
		})
		tb.s.Schedule(gap, tick)
	}
	tb.s.ScheduleAt(start, tick)
}

func pathKeyTest(p []uint16) string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}
