package fancy

import (
	"fmt"

	"fancy/internal/netsim"
	"fancy/internal/sim"
)

// EventKind classifies detector events.
type EventKind uint8

// Detector event kinds.
const (
	// EventDedicated: a dedicated counter mismatched — the entry is
	// flagged in the FlagArray.
	EventDedicated EventKind = iota
	// EventTreeZoomStart: the tree observed its first root-level mismatch
	// and began zooming ("FANcY technically detects a failure when it
	// starts zooming", §4.2); reported for diagnostics only.
	EventTreeZoomStart
	// EventTreeLeaf: the zooming algorithm reached a mismatching leaf
	// counter — the hash path is flagged in the PathBloom.
	EventTreeLeaf
	// EventUniform: more than half of the root counters mismatched — the
	// failure affects all entries (link-level loss).
	EventUniform
	// EventLinkDown: MaxAttempts control retransmissions went unanswered.
	// The port's units degrade to low-rate probing with exponential
	// backoff until the peer answers again.
	EventLinkDown
	// EventLinkUp: control messages flow again after an EventLinkDown —
	// all of the port's units recovered and resumed counting.
	EventLinkUp
)

func (k EventKind) String() string {
	switch k {
	case EventDedicated:
		return "dedicated-mismatch"
	case EventTreeZoomStart:
		return "tree-zoom-start"
	case EventTreeLeaf:
		return "tree-leaf"
	case EventUniform:
		return "uniform-failure"
	case EventLinkDown:
		return "link-down"
	case EventLinkUp:
		return "link-up"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is a detection raised by the upstream (sender-side) detector.
type Event struct {
	Time sim.Time
	Port int
	Kind EventKind

	// Entry is the flagged dedicated entry (EventDedicated only).
	Entry netsim.EntryID

	// Path is the flagged hash path (EventTreeLeaf only).
	Path []uint16

	// Diff is the counter discrepancy (upstream − downstream) that
	// triggered the event.
	Diff uint64
}

func (e Event) String() string {
	switch e.Kind {
	case EventDedicated:
		return fmt.Sprintf("[%v] port %d: %v entry=%d diff=%d", e.Time, e.Port, e.Kind, e.Entry, e.Diff)
	case EventTreeLeaf:
		return fmt.Sprintf("[%v] port %d: %v path=%v diff=%d", e.Time, e.Port, e.Kind, e.Path, e.Diff)
	default:
		return fmt.Sprintf("[%v] port %d: %v", e.Time, e.Port, e.Kind)
	}
}
