package tofino

import "testing"

func TestAppendixB2MemoryAccounting(t *testing.T) {
	d := PaperConfig()
	// Appendix B.2 figures: 192 KB of state machines, 128 KB of dedicated
	// counters, 47.6 KB of tree, ≈26.4 KB of rerouting, 367.6 KB total
	// (394 KB with rerouting).
	if got := d.StateMachineBytes(); got != 196_608 {
		t.Errorf("state machines = %d B, want 196608 (192 KB)", got)
	}
	if got := d.DedicatedCounterBytes(); got != 131_072 {
		t.Errorf("dedicated counters = %d B, want 131072 (128 KB)", got)
	}
	if got := d.TreeBytes(); got != 48_800 {
		t.Errorf("tree = %d B, want 48800 (≈47.6 KB)", got)
	}
	if got := d.RerouteBytes(); got < 26_000 || got > 28_000 {
		t.Errorf("reroute = %d B, want ≈27 KB", got)
	}
	if got := d.TotalBytes(false); got < 360_000 || got > 385_000 {
		t.Errorf("total = %d B, want ≈376 KB (paper: 367.6 KB)", got)
	}
	if got := d.TotalBytes(true); got < 390_000 || got > 415_000 {
		t.Errorf("total with reroute = %d B, want ≈403 KB (paper: 394 KB)", got)
	}
}

func approxPct(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= 0.25*want+0.005
}

func TestTable4Utilization(t *testing.T) {
	chip := Tofino32()
	d := PaperConfig()

	ded := chip.Utilization(chip.DedicatedComponent(d))
	full := chip.Utilization(chip.FancyResources(d, false))
	rer := chip.Utilization(chip.FancyResources(d, true))

	type row struct {
		name  string
		got   [3]float64
		paper [3]float64
	}
	rows := []row{
		{"SRAM", [3]float64{ded.SRAM, full.SRAM, rer.SRAM}, [3]float64{0.048, 0.0665, 0.081}},
		{"SALU", [3]float64{ded.SALU, full.SALU, rer.SALU}, [3]float64{0.1666, 0.2708, 0.3333}},
		{"VLIW", [3]float64{ded.VLIW, full.VLIW, rer.VLIW}, [3]float64{0.094, 0.141, 0.156}},
		{"TCAM", [3]float64{ded.TCAM, full.TCAM, rer.TCAM}, [3]float64{0.014, 0.021, 0.021}},
		{"Hash", [3]float64{ded.HashBits, full.HashBits, rer.HashBits}, [3]float64{0.058, 0.118, 0.131}},
		{"TernaryXbar", [3]float64{ded.TernaryXbar, full.TernaryXbar, rer.TernaryXbar}, [3]float64{0.018, 0.031, 0.031}},
		{"ExactXbar", [3]float64{ded.ExactXbar, full.ExactXbar, rer.ExactXbar}, [3]float64{0.051, 0.108, 0.123}},
	}
	cols := []string{"dedicated", "full", "full+reroute"}
	for _, r := range rows {
		for i := range r.got {
			if !approxPct(r.got[i], r.paper[i]) {
				t.Errorf("%s/%s = %.3f, paper %.3f", r.name, cols[i], r.got[i], r.paper[i])
			}
		}
	}
}

func TestFancyIsSmallerThanSwitchP4ExceptSALU(t *testing.T) {
	// The paper's headline for Table 4: FANcY uses a modest amount of
	// resources; stateful ALUs are the ONLY resource where it exceeds
	// switch.p4.
	chip := Tofino32()
	full := chip.Utilization(chip.FancyResources(PaperConfig(), true))
	ref := SwitchP4Reference()
	if full.SALU <= ref.SALU {
		t.Errorf("SALU: fancy %.3f should exceed switch.p4 %.3f", full.SALU, ref.SALU)
	}
	checks := []struct {
		name       string
		fancy, ref float64
	}{
		{"SRAM", full.SRAM, ref.SRAM},
		{"VLIW", full.VLIW, ref.VLIW},
		{"TCAM", full.TCAM, ref.TCAM},
		{"Hash", full.HashBits, ref.HashBits},
		{"TernaryXbar", full.TernaryXbar, ref.TernaryXbar},
		{"ExactXbar", full.ExactXbar, ref.ExactXbar},
	}
	for _, c := range checks {
		if c.fancy >= c.ref {
			t.Errorf("%s: fancy %.3f should be below switch.p4 %.3f", c.name, c.fancy, c.ref)
		}
	}
}

func TestSRAMScalesWithMemoryBudget(t *testing.T) {
	// §6: "SRAM is the only resource that increases when FANcY is given a
	// higher memory budget".
	chip := Tofino32()
	small := PaperConfig()
	big := PaperConfig()
	big.DedicatedPerPort = 2048
	big.MachinesPerPort = 2048
	big.TreeWidth = 250

	rs, rb := chip.FancyResources(small, true), chip.FancyResources(big, true)
	if rb.SRAMBlocks <= rs.SRAMBlocks {
		t.Error("SRAM did not grow with the memory budget")
	}
	if rb.SALUs != rs.SALUs || rb.VLIWActions != rs.VLIWActions ||
		rb.TCAMBlocks != rs.TCAMBlocks || rb.HashBits != rs.HashBits ||
		rb.TernaryXbarBytes != rs.TernaryXbarBytes || rb.ExactXbarBytes != rs.ExactXbarBytes {
		t.Error("non-SRAM resources changed with the memory budget")
	}
}

func TestResourcesAdd(t *testing.T) {
	a := Resources{SRAMBlocks: 1, SALUs: 2, VLIWActions: 3, TCAMBlocks: 4,
		HashBits: 5, TernaryXbarBytes: 6, ExactXbarBytes: 7}
	sum := a.Add(a)
	if sum.SRAMBlocks != 2 || sum.SALUs != 4 || sum.VLIWActions != 6 ||
		sum.TCAMBlocks != 8 || sum.HashBits != 10 || sum.TernaryXbarBytes != 12 ||
		sum.ExactXbarBytes != 14 {
		t.Errorf("Add = %+v", sum)
	}
}

func TestChipCapacityPositive(t *testing.T) {
	c := Tofino32()
	if c.Stages != 12 || c.Capacity.SRAMBlocks != 960 || c.Capacity.SALUs != 48 {
		t.Errorf("unexpected chip capacities: %+v", c)
	}
}

// TestHeavyHitterEnvelope: adding the heavy-hitter stage to the paper's
// prototype configuration must keep the full deployment (with rerouting)
// inside the Tofino-1 envelope, and a zero-stage config must cost nothing
// so the Table 4 baseline is unchanged.
func TestHeavyHitterEnvelope(t *testing.T) {
	chip := Tofino32()
	base := PaperConfig()
	if r := chip.HeavyHitterComponent(base); r != (Resources{}) {
		t.Fatalf("zero-stage HH component is not free: %+v", r)
	}
	withHH := base
	withHH.HHStages, withHH.HHWidth = 3, 64
	if withHH.HeavyHitterBytes() == 0 {
		t.Fatal("HH stage consumes no register memory")
	}
	r := chip.FancyResources(withHH, true)
	if !chip.Fits(r) {
		t.Fatalf("FANcY + reroute + HH stage does not fit Tofino-1: %+v vs %+v", r, chip.Capacity)
	}
	baseR := chip.FancyResources(base, true)
	if r.SALUs <= baseR.SALUs || r.HashBits <= baseR.HashBits {
		t.Fatal("HH stage added no SALUs/hash bits — accounting is broken")
	}
	if got, want := withHH.TotalBytes(true)-base.TotalBytes(true), withHH.HeavyHitterBytes(); got != want {
		t.Fatalf("TotalBytes delta = %d, want HeavyHitterBytes = %d", got, want)
	}
}

// TestFits: a bundle exceeding any single capacity must not fit.
func TestFits(t *testing.T) {
	chip := Tofino32()
	if !chip.Fits(chip.Capacity) {
		t.Fatal("capacity itself must fit")
	}
	over := chip.Capacity
	over.SALUs++
	if chip.Fits(over) {
		t.Fatal("over-capacity bundle reported as fitting")
	}
}
