// Package tofino models the hardware resource consumption of FANcY's P4
// implementation on an Intel Tofino switch, reproducing the memory
// accounting of Appendix B.2 and the resource-utilization comparison of
// Table 4.
//
// The model is component-based: each FANcY building block (state machines,
// dedicated counters, hash-based tree, rerouting) consumes register SRAM
// derived from its exact layout plus fixed costs for its match-action
// tables, stateful ALUs, VLIW actions, hash distribution units and crossbar
// bytes. Chip capacities follow the public Tofino 1 architecture (12 match
// stages). The switch.p4 reference column reproduces the paper's measured
// baseline.
package tofino

import "math"

// Resources is a bundle of per-resource consumption or capacity.
type Resources struct {
	SRAMBlocks       float64
	SALUs            float64
	VLIWActions      float64
	TCAMBlocks       float64
	HashBits         float64
	TernaryXbarBytes float64
	ExactXbarBytes   float64
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		SRAMBlocks:       r.SRAMBlocks + o.SRAMBlocks,
		SALUs:            r.SALUs + o.SALUs,
		VLIWActions:      r.VLIWActions + o.VLIWActions,
		TCAMBlocks:       r.TCAMBlocks + o.TCAMBlocks,
		HashBits:         r.HashBits + o.HashBits,
		TernaryXbarBytes: r.TernaryXbarBytes + o.TernaryXbarBytes,
		ExactXbarBytes:   r.ExactXbarBytes + o.ExactXbarBytes,
	}
}

// Chip describes a Tofino pipeline's total resources.
type Chip struct {
	Name     string
	Stages   int
	Capacity Resources
	// SRAMBlockBytes is the allocation granularity of register memory.
	SRAMBlockBytes int
}

// Tofino32 is the 32-port Wedge 100BF-32X used by the paper's prototype:
// 12 stages with 80×16 KB SRAM blocks, 4 stateful ALUs, 32 VLIW action
// slots, 24 TCAM blocks, 416 hash bits and 66/128 crossbar bytes per stage.
func Tofino32() Chip {
	const stages = 12
	return Chip{
		Name:   "Wedge100BF-32X",
		Stages: stages,
		Capacity: Resources{
			SRAMBlocks:       stages * 80,
			SALUs:            stages * 4,
			VLIWActions:      stages * 32,
			TCAMBlocks:       stages * 24,
			HashBits:         stages * 416,
			TernaryXbarBytes: stages * 66,
			ExactXbarBytes:   stages * 128,
		},
		SRAMBlockBytes: 16 * 1024,
	}
}

// Utilization is per-resource usage as a fraction of chip capacity.
type Utilization struct {
	SRAM        float64
	SALU        float64
	VLIW        float64
	TCAM        float64
	HashBits    float64
	TernaryXbar float64
	ExactXbar   float64
}

// Utilization computes fractions of the chip's capacity.
func (c Chip) Utilization(r Resources) Utilization {
	return Utilization{
		SRAM:        r.SRAMBlocks / c.Capacity.SRAMBlocks,
		SALU:        r.SALUs / c.Capacity.SALUs,
		VLIW:        r.VLIWActions / c.Capacity.VLIWActions,
		TCAM:        r.TCAMBlocks / c.Capacity.TCAMBlocks,
		HashBits:    r.HashBits / c.Capacity.HashBits,
		TernaryXbar: r.TernaryXbarBytes / c.Capacity.TernaryXbarBytes,
		ExactXbar:   r.ExactXbarBytes / c.Capacity.ExactXbarBytes,
	}
}

// DeployConfig is the FANcY deployment the resources are computed for. The
// paper's prototype: 32 ports, 512 dedicated entries per port, one
// non-pipelined width-190 depth-3 tree per port, 2×100K-cell reroute Bloom.
type DeployConfig struct {
	Ports            int
	DedicatedPerPort int
	TreeWidth        int
	TreeDepth        int
	BloomCells       int
	MachinesPerPort  int // counting-protocol sub-state-machines

	// Heavy-hitter stage (internal/hh): a d-stage HashPipe sketch with
	// PRECISION admission per port. Zero stages = stage not deployed
	// (the paper's configuration).
	HHStages int
	HHWidth  int // slots per sketch stage
}

// PaperConfig returns the prototype configuration of §6/Appendix B.2.
func PaperConfig() DeployConfig {
	return DeployConfig{
		Ports: 32, DedicatedPerPort: 512,
		TreeWidth: 190, TreeDepth: 3,
		BloomCells: 100_000, MachinesPerPort: 512,
	}
}

// --- Appendix B.2 register memory accounting ---

// StateMachineBytes: each state-machine pair needs (32+8+8)·2 = 96 bits
// (state counter/timer, current state, state lock, at ingress and egress).
func (d DeployConfig) StateMachineBytes() int {
	return 96 * d.MachinesPerPort * d.Ports / 8
}

// DedicatedCounterBytes: one pair of 32-bit registers per entry (64 bits).
func (d DeployConfig) DedicatedCounterBytes() int {
	return 64 * d.DedicatedPerPort * d.Ports / 8
}

// TreeBytes: two 32-bit node registers of the tree's width plus 40 bits of
// zooming state (stage, max0, max1) per port — the non-pipelined layout
// that reuses one node's memory across levels.
func (d DeployConfig) TreeBytes() int {
	perPort := 32*2*d.TreeWidth + 40
	return perPort * d.Ports / 8
}

// RerouteBytes: a 1-bit flag per dedicated entry per port plus the
// two-register Bloom filter.
func (d DeployConfig) RerouteBytes() int {
	return (d.DedicatedPerPort*d.Ports + 2*d.BloomCells) / 8
}

// HeavyHitterBytes: each sketch stage is a paired 64-bit cell (32-bit key
// + 32-bit count) per slot, per port, plus one 64-bit admission RNG cell
// per port.
func (d DeployConfig) HeavyHitterBytes() int {
	if d.HHStages <= 0 {
		return 0
	}
	return (64*d.HHStages*d.HHWidth*d.Ports + 64*d.Ports) / 8
}

// TotalBytes sums the register memory of the full deployment with
// rerouting (Appendix B.2 reports 367.6 KB, 394 KB with rerouting). The
// heavy-hitter stage, when deployed, is included.
func (d DeployConfig) TotalBytes(withReroute bool) int {
	n := d.StateMachineBytes() + d.DedicatedCounterBytes() + d.TreeBytes() + d.HeavyHitterBytes()
	if withReroute {
		n += d.RerouteBytes()
	}
	return n
}

// --- Component resource models (Table 4) ---

// sramBlocks converts register bytes to SRAM blocks with allocation
// rounding, plus the component's match-action table blocks.
func (c Chip) sramBlocks(regBytes, tableBlocks int) float64 {
	return math.Ceil(float64(regBytes)/float64(c.SRAMBlockBytes)) + float64(tableBlocks)
}

// DedicatedComponent: dedicated counters and their counting-protocol state
// machines — registers, the next_state transition tables, per-state SALU
// updates and recirculation actions.
func (c Chip) DedicatedComponent(d DeployConfig) Resources {
	regBytes := d.StateMachineBytes() + d.DedicatedCounterBytes()
	return Resources{
		SRAMBlocks:       c.sramBlocks(regBytes, 26),
		SALUs:            8,
		VLIWActions:      36,
		TCAMBlocks:       4,
		HashBits:         290,
		TernaryXbarBytes: 14,
		ExactXbarBytes:   78,
	}
}

// TreeComponent: the hash-based tree registers, per-level hash units, the
// zooming-state SALUs and the counter comparison/recirculation logic.
func (c Chip) TreeComponent(d DeployConfig) Resources {
	return Resources{
		SRAMBlocks:       c.sramBlocks(d.TreeBytes(), 15),
		SALUs:            5,
		VLIWActions:      18,
		TCAMBlocks:       2,
		HashBits:         300,
		TernaryXbarBytes: 11,
		ExactXbarBytes:   88,
	}
}

// RerouteComponent: the output flag array, the path Bloom filter and the
// backup next-hop selection table.
func (c Chip) RerouteComponent(d DeployConfig) Resources {
	return Resources{
		SRAMBlocks:       c.sramBlocks(d.RerouteBytes(), 12),
		SALUs:            3,
		VLIWActions:      6,
		TCAMBlocks:       0,
		HashBits:         64,
		TernaryXbarBytes: 0,
		ExactXbarBytes:   23,
	}
}

// HeavyHitterComponent: the d-stage sketch registers (one paired-SALU
// key/count cell per stage touched per packet), the admission RNG SALU,
// one 32-bit hash distribution per stage, and the small claim/decision
// tables. The stage itself adds no TCAM: every lookup is an exact-match
// register index.
func (c Chip) HeavyHitterComponent(d DeployConfig) Resources {
	if d.HHStages <= 0 {
		return Resources{}
	}
	return Resources{
		SRAMBlocks:       c.sramBlocks(d.HeavyHitterBytes(), 4),
		SALUs:            float64(d.HHStages) + 1, // one paired SALU per stage + RNG
		VLIWActions:      float64(2*d.HHStages) + 4,
		TCAMBlocks:       0,
		HashBits:         float64(32 * d.HHStages),
		TernaryXbarBytes: 0,
		ExactXbarBytes:   float64(4*d.HHStages) + 8,
	}
}

// FancyResources composes the deployment's total resource usage,
// including the heavy-hitter stage when HHStages > 0.
func (c Chip) FancyResources(d DeployConfig, withReroute bool) Resources {
	r := c.DedicatedComponent(d).Add(c.TreeComponent(d))
	if withReroute {
		r = r.Add(c.RerouteComponent(d))
	}
	r = r.Add(c.HeavyHitterComponent(d))
	return r
}

// Fits reports whether the resource bundle fits the chip: every resource
// at or under capacity.
func (c Chip) Fits(r Resources) bool {
	return r.SRAMBlocks <= c.Capacity.SRAMBlocks &&
		r.SALUs <= c.Capacity.SALUs &&
		r.VLIWActions <= c.Capacity.VLIWActions &&
		r.TCAMBlocks <= c.Capacity.TCAMBlocks &&
		r.HashBits <= c.Capacity.HashBits &&
		r.TernaryXbarBytes <= c.Capacity.TernaryXbarBytes &&
		r.ExactXbarBytes <= c.Capacity.ExactXbarBytes
}

// SwitchP4Reference is the paper's measured utilization of the reference
// switch.p4 program on the same chip (Table 4, rightmost column).
func SwitchP4Reference() Utilization {
	return Utilization{
		SRAM: 0.2958, SALU: 0.1458, VLIW: 0.3672, TCAM: 0.3229,
		HashBits: 0.3474, TernaryXbar: 0.4318, ExactXbar: 0.2936,
	}
}
