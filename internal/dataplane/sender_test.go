package dataplane

import "testing"

// driveSenderSession opens a session and counts the given per-index packet
// counts, returning after Stop is emitted.
func driveSenderSession(t *testing.T, s *SenderProgram, counts map[int]int) {
	t.Helper()
	if _, err := s.Inject(SendKick, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s.CurrentState() != SenderWaitACK {
		t.Fatalf("state = %d after kick, want WaitACK", s.CurrentState())
	}
	// Data offered before the ACK must not be counted (stop-and-wait).
	s.Inject(SendData, 0, 0)
	preACK := s.Node.Peek(0)
	if preACK != 0 {
		t.Fatal("counted a packet before the Start ACK")
	}
	if _, err := s.Inject(SendACKIn, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s.CurrentState() != SenderCounting {
		t.Fatalf("state = %d after ACK, want Counting", s.CurrentState())
	}
	for idx, n := range counts {
		for i := 0; i < n; i++ {
			if _, err := s.Inject(SendData, 0, Value(idx)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Inject(SendTimer, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s.CurrentState() != SenderWaitRep {
		t.Fatalf("state = %d after timer, want WaitReport", s.CurrentState())
	}
}

func TestSenderFullSessionComparison(t *testing.T) {
	s := BuildSender(4)
	driveSenderSession(t, s, map[int]int{0: 5, 2: 9, 3: 1})

	// The downstream reports fewer packets on counter 2: the comparison
	// must single it out as the max-difference counter.
	s.ResetComparison()
	remote := []Value{5, 0, 4, 1}
	for i, v := range remote {
		if _, err := s.InjectReportWord(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if s.CurrentState() != SenderIdle {
		t.Fatalf("state = %d after full report, want Idle", s.CurrentState())
	}
	if s.LastMaxIdx != 2 || s.LastMaxDiff != 5 {
		t.Fatalf("max = (idx %d, diff %d), want (2, 5)", s.LastMaxIdx, s.LastMaxDiff)
	}
	if s.Compared != 1 {
		t.Errorf("Compared = %d, want 1", s.Compared)
	}
	// Counters were reset during comparison, ready for the next session.
	for i := 0; i < 4; i++ {
		if s.Node.Peek(i) != 0 {
			t.Errorf("node[%d] = %d after comparison, want 0", i, s.Node.Peek(i))
		}
	}
}

func TestSenderLosslessComparison(t *testing.T) {
	s := BuildSender(4)
	driveSenderSession(t, s, map[int]int{1: 7})
	s.ResetComparison()
	for i, v := range []Value{0, 7, 0, 0} {
		s.InjectReportWord(i, v)
	}
	if s.LastMaxIdx != -1 || s.LastMaxDiff != 0 {
		t.Fatalf("lossless session produced max (idx %d, diff %d)", s.LastMaxIdx, s.LastMaxDiff)
	}
}

func TestSenderMaxAccumulatesAcrossWords(t *testing.T) {
	// A later word with zero difference must not erase an earlier max —
	// the running maximum rides across recirculations.
	s := BuildSender(3)
	driveSenderSession(t, s, map[int]int{0: 9, 1: 3, 2: 3})
	s.ResetComparison()
	s.InjectReportWord(0, 2) // diff 7
	s.InjectReportWord(1, 3) // diff 0
	s.InjectReportWord(2, 3) // diff 0
	if s.LastMaxIdx != 0 || s.LastMaxDiff != 7 {
		t.Fatalf("max = (idx %d, diff %d), want (0, 7)", s.LastMaxIdx, s.LastMaxDiff)
	}
}

func TestSenderIgnoresOutOfStateInputs(t *testing.T) {
	s := BuildSender(2)
	// ACK in Idle: dropped.
	if res, _ := s.Inject(SendACKIn, 0, 0); res.Disposition != Drop {
		t.Error("ACK in Idle not dropped")
	}
	// Timer in Idle: dropped.
	if res, _ := s.Inject(SendTimer, 0, 0); res.Disposition != Drop {
		t.Error("timer in Idle not dropped")
	}
	// Report word in Idle: dropped, no comparison.
	s.InjectReportWord(0, 5)
	if s.Compared != 0 {
		t.Error("report processed outside WaitReport")
	}
	if s.CurrentState() != SenderIdle {
		t.Error("state drifted")
	}
}

func TestSenderDataForwardedWhilePaused(t *testing.T) {
	// Data packets keep flowing (Forward disposition) even when the FSM
	// is not counting — monitoring must never black-hole traffic.
	s := BuildSender(2)
	res, err := s.Inject(SendData, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Forward {
		t.Fatal("data packet dropped while Idle")
	}
	if s.Node.Peek(1) != 0 {
		t.Error("packet counted while Idle")
	}
}

func TestSenderEmitsControlMessages(t *testing.T) {
	s := BuildSender(2)
	res, _ := s.Inject(SendKick, 0, 0)
	found := false
	for _, e := range res.Emits {
		if e.Kind == "start" {
			found = true
		}
	}
	if !found {
		t.Error("no Start emitted on session open")
	}
	s.Inject(SendACKIn, 0, 0)
	res, _ = s.Inject(SendTimer, 0, 0)
	found = false
	for _, e := range res.Emits {
		if e.Kind == "stop" {
			found = true
		}
	}
	if !found {
		t.Error("no Stop emitted on session close")
	}
}

func BenchmarkSenderDataPath(b *testing.B) {
	s := BuildSender(190)
	s.Inject(SendKick, 0, 0)
	s.Inject(SendACKIn, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Inject(SendData, 0, Value(i%190)); err != nil {
			b.Fatal(err)
		}
	}
}
