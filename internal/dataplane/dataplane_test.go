package dataplane

import (
	"strings"
	"testing"
)

func TestRegisterSingleAccessEnforced(t *testing.T) {
	p := NewPipeline(1)
	r := p.HomeRegister(NewRegister("r", 4), 0)
	p.Stage(0).AddTable(&Table{
		Name: "double",
		Default: func(c *Ctx) {
			c.RegOp(r, 0, func(v Value) Value { return v + 1 })
			c.RegOp(r, 0, func(v Value) Value { return v + 1 }) // illegal
		},
	})
	_, err := p.Process(NewPacket(nil))
	if err == nil || !strings.Contains(err.Error(), "accessed twice") {
		t.Fatalf("double access not rejected: %v", err)
	}
}

func TestRegisterOutOfRange(t *testing.T) {
	p := NewPipeline(1)
	r := p.HomeRegister(NewRegister("r", 2), 0)
	p.Stage(0).AddTable(&Table{
		Name:    "oob",
		Default: func(c *Ctx) { c.RegOp(r, 5, nil) },
	})
	if _, err := p.Process(NewPacket(nil)); err == nil {
		t.Fatal("out-of-range access not rejected")
	}
}

func TestRecirculationBudget(t *testing.T) {
	p := NewPipeline(1)
	p.MaxRecirculations = 3
	p.Stage(0).AddTable(&Table{
		Name:    "loop",
		Default: func(c *Ctx) { c.Recirculate() },
	})
	_, err := p.Process(NewPacket(nil))
	if err != ErrRecircBudget {
		t.Fatalf("err = %v, want ErrRecircBudget", err)
	}
}

func TestTableMatchAndDefault(t *testing.T) {
	p := NewPipeline(1)
	var hit string
	p.Stage(0).AddTable(&Table{
		Name: "match",
		Key:  func(pkt *Packet) Value { return pkt.Field("k") },
		Entries: map[Value]Action{
			7: func(c *Ctx) { hit = "seven" },
		},
		Default: func(c *Ctx) { hit = "default" },
	})
	p.Process(NewPacket(map[string]Value{"k": 7}))
	if hit != "seven" {
		t.Errorf("hit = %q", hit)
	}
	p.Process(NewPacket(map[string]Value{"k": 8}))
	if hit != "default" {
		t.Errorf("hit = %q", hit)
	}
}

func TestMemoryByStage(t *testing.T) {
	p := NewPipeline(3)
	p.HomeRegister(NewRegister("a", 10), 0)
	p.HomeRegister(NewRegister("b", 20), 2)
	p.HomeRegister(NewRegister("c", 5), 2)
	got := p.MemoryByStage()
	if got[0] != 10 || got[1] != 0 || got[2] != 25 {
		t.Errorf("MemoryByStage = %v", got)
	}
}

// --- Compiled FANcY receiver FSM ---

func TestReceiverSessionLifecycle(t *testing.T) {
	r := BuildReceiver(4)
	if r.CurrentState() != StateIdle {
		t.Fatal("initial state not Idle")
	}

	// Start: two passes (plan + apply), emits a Start ACK.
	res, err := r.Inject(TypeStart, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 2 {
		t.Errorf("start transition took %d passes, want 2 (Appendix B.1)", res.Passes)
	}
	if len(res.Emits) != 1 || res.Emits[0].Kind != "start-ack" || res.Emits[0].Data["session"] != 9 {
		t.Errorf("emits = %+v, want one start-ack for session 9", res.Emits)
	}
	if r.CurrentState() != StateCounting {
		t.Errorf("state = %d, want Counting", r.CurrentState())
	}
	if r.Locked() {
		t.Error("lock not released after transition")
	}

	// Tagged packets: single pass, counted into the node.
	for _, idx := range []Value{1, 1, 3} {
		res, err := r.Inject(TypeTagged, 9, idx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passes != 1 {
			t.Errorf("counting took %d passes, want 1", res.Passes)
		}
	}
	if r.Node.Peek(1) != 2 || r.Node.Peek(3) != 1 {
		t.Errorf("node = [%d %d %d %d], want [0 2 0 1]",
			r.Node.Peek(0), r.Node.Peek(1), r.Node.Peek(2), r.Node.Peek(3))
	}

	// Stop: transition to WaitToSend; counting continues.
	if _, err := r.Inject(TypeStop, 9, 0); err != nil {
		t.Fatal(err)
	}
	if r.CurrentState() != StateWaitToSend {
		t.Fatalf("state = %d, want WaitToSend", r.CurrentState())
	}
	if _, err := r.Inject(TypeTagged, 9, 2); err != nil {
		t.Fatal(err)
	}
	if r.Node.Peek(2) != 1 {
		t.Error("tagged packet not counted during WaitToSend (Twait grace)")
	}

	// Timer expiry: report readout takes width recirculations.
	res, err = r.Inject(TypeTimer, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 plan + 1 apply + 4 readout passes.
	if res.Passes != 2+4 {
		t.Errorf("report took %d passes, want %d (w recirculations)", res.Passes, 2+4)
	}
	var words []Value
	done := false
	for _, e := range res.Emits {
		switch e.Kind {
		case "report-word":
			words = append(words, e.Data["value"])
		case "report-done":
			done = true
		}
	}
	if !done || len(words) != 4 {
		t.Fatalf("report emits = %+v", res.Emits)
	}
	want := []Value{0, 2, 1, 1}
	for i, w := range want {
		if words[i] != w {
			t.Errorf("report[%d] = %d, want %d", i, words[i], w)
		}
	}
	if r.CurrentState() != StateIdle {
		t.Errorf("state = %d, want Idle after report", r.CurrentState())
	}
	// Counters were reset during readout.
	for i := 0; i < 4; i++ {
		if r.Node.Peek(i) != 0 {
			t.Errorf("node[%d] = %d after readout, want 0", i, r.Node.Peek(i))
		}
	}
}

func TestReceiverIgnoresOutOfSessionTraffic(t *testing.T) {
	r := BuildReceiver(4)
	// Tagged packet while Idle: dropped, not counted.
	res, err := r.Inject(TypeTagged, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Drop || r.Node.Peek(2) != 0 {
		t.Error("idle receiver counted a tagged packet")
	}
	// Stop while Idle: dropped.
	if res, _ := r.Inject(TypeStop, 1, 0); res.Disposition != Drop {
		t.Error("stop in Idle not dropped")
	}
	// Timer while Idle: dropped.
	if res, _ := r.Inject(TypeTimer, 1, 0); res.Disposition != Drop {
		t.Error("timer in Idle not dropped")
	}
}

func TestReceiverLockBlocksConcurrentTransition(t *testing.T) {
	r := BuildReceiver(2)
	// Simulate a transition left in flight by taking the lock manually.
	r.Lock.Poke(0, 1)
	res, err := r.Inject(TypeStart, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != Drop {
		t.Error("transition proceeded despite the state lock")
	}
	if r.CurrentState() != StateIdle {
		t.Error("state changed despite the lock")
	}
}

func TestDedicatedWidthOneResetsInline(t *testing.T) {
	r := BuildReceiver(1)
	r.Inject(TypeStart, 1, 0)
	r.Inject(TypeTagged, 1, 0)
	r.Inject(TypeTagged, 1, 0)
	if r.Node.Peek(0) != 2 {
		t.Fatalf("count = %d, want 2", r.Node.Peek(0))
	}
	// A new Start resets the single-cell counter in the apply pass.
	r.Inject(TypeStart, 2, 0)
	if r.Node.Peek(0) != 0 {
		t.Error("dedicated counter not reset on session start")
	}
	if r.CurrentState() != StateCounting {
		t.Error("not counting after restart")
	}
}

func TestPipelineStats(t *testing.T) {
	r := BuildReceiver(2)
	r.Inject(TypeStart, 1, 0)  // 2 passes, 1 recirc
	r.Inject(TypeTagged, 1, 0) // 1 pass
	if r.Pipe.Passes != 3 || r.Pipe.Recircs != 1 {
		t.Errorf("passes=%d recircs=%d, want 3/1", r.Pipe.Passes, r.Pipe.Recircs)
	}
	if r.Pipe.Dropped == 0 {
		t.Error("control packets should be consumed (dropped) after transitions")
	}
}

func BenchmarkReceiverTaggedPacket(b *testing.B) {
	r := BuildReceiver(190)
	r.Inject(TypeStart, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Inject(TypeTagged, 1, Value(i%190)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiverReportReadout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := BuildReceiver(190)
		r.Inject(TypeStart, 1, 0)
		r.Inject(TypeStop, 1, 0)
		b.StartTimer()
		if _, err := r.Inject(TypeTimer, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRegisterAccessors(t *testing.T) {
	r := NewRegister("r", 7)
	if r.Len() != 7 {
		t.Errorf("Len = %d, want 7", r.Len())
	}
	r.Poke(3, 99)
	if r.Peek(3) != 99 {
		t.Error("Poke/Peek broken")
	}
}
