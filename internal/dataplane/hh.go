package dataplane

import (
	"math/bits"

	"fancy/internal/hh"
)

// HHProgram is the register-level heavy-hitter stage: the HashPipe /
// PRECISION sketch of internal/hh lowered onto the emulated pipeline with
// its hardware constraints — one stateful access per register per pass,
// per-stage register homing, and a recirculated claim pass for the
// admission write. It must stay packet-for-packet equivalent to hh.Sketch
// (same hash placement, same LCG draws, same slot contents); the
// equivalence test in hh_test.go holds the two together.
//
// Layout, per sketch stage i:
//
//	stage i:     hh_keys[i] + hh_counts[i]  (a paired-SALU 64-bit cell in
//	             hardware: key compare and count update in one operation;
//	             the emulator splits them into two registers, still one
//	             access each per pass)
//	last stage:  hh_rng (1 cell) + the admission decision table
//
// Normal pass: each stage matches its slot; a hit increments in place and
// sets the PHV "matched" bit so later stages skip. A full miss tracks the
// running minimum (count, stage, index) in the PHV. The decision table
// then draws the LCG and, with probability 2^-len(min), writes the claim
// into resubmit metadata and recirculates. The claim pass skips the
// matching logic and performs the two writes at the claimed stage.
type HHProgram struct {
	Pipe   *Pipeline
	params hh.Params

	keys   []*Register
	counts []*Register
	rng    *Register
}

// Metadata and PHV field names of the program.
const (
	hhMetaClaim = "hh.claim" // resubmit: this pass installs a claim
	hhMetaStage = "hh.stage"
	hhMetaIdx   = "hh.idx"
	hhMetaKey   = "hh.key"
	hhMetaVal   = "hh.val"

	hhPHVMatched  = "hh.matched" // intra-pass: some stage already hit
	hhPHVMin      = "hh.min"
	hhPHVMinSet   = "hh.minset"
	hhPHVMinStage = "hh.minstage"
	hhPHVMinIdx   = "hh.minidx"
)

// BuildHeavyHitter lowers the sketch parameters onto a fresh pipeline.
func BuildHeavyHitter(p hh.Params) *HHProgram {
	sk := hh.NewSketch(p) // canonical defaulting
	p = sk.Params()
	g := &HHProgram{params: p, Pipe: NewPipeline(p.Stages + 1)}
	for i := 0; i < p.Stages; i++ {
		i := i
		g.keys = append(g.keys, g.Pipe.HomeRegister(NewRegister("hh_keys", p.Width), i))
		g.counts = append(g.counts, g.Pipe.HomeRegister(NewRegister("hh_counts", p.Width), i))
		g.Pipe.Stage(i).AddTable(&Table{Name: "hh_stage", Default: g.stageAction(i)})
	}
	g.rng = g.Pipe.HomeRegister(NewRegister("hh_rng", 1), p.Stages)
	g.rng.Poke(0, hh.RandInit(p.Seed))
	g.Pipe.Stage(p.Stages).AddTable(&Table{Name: "hh_decide", Default: g.decideAction()})
	return g
}

// Params returns the (defaulted) sketch sizing the program was built for.
func (g *HHProgram) Params() hh.Params { return g.params }

func (g *HHProgram) stageAction(i int) Action {
	return func(c *Ctx) {
		if c.Meta(hhMetaClaim) == 1 {
			// Claim pass: only the claimed stage touches its registers.
			if c.Meta(hhMetaStage) == Value(i) {
				idx := int(c.Meta(hhMetaIdx))
				c.RegOp(g.keys[i], idx, func(Value) Value { return c.Meta(hhMetaKey) })
				c.RegOp(g.counts[i], idx, func(Value) Value { return c.Meta(hhMetaVal) })
			}
			return
		}
		if c.PHV(hhPHVMatched) == 1 {
			return
		}
		entry := c.Pkt.Field("entry")
		idx := hh.StageIndex(g.params.Seed, i, g.params.Width, entry)
		// Hardware: one paired-SALU op compares the stored key and, on
		// match, increments the count half of the cell.
		if c.RegOp(g.keys[i], idx, nil) == entry+1 {
			c.RegOp(g.counts[i], idx, func(old Value) Value { return old + 1 })
			c.SetPHV(hhPHVMatched, 1)
			return
		}
		cnt := c.RegOp(g.counts[i], idx, nil)
		if c.PHV(hhPHVMinSet) == 0 || cnt < c.PHV(hhPHVMin) {
			c.SetPHV(hhPHVMinSet, 1)
			c.SetPHV(hhPHVMin, cnt)
			c.SetPHV(hhPHVMinStage, Value(i))
			c.SetPHV(hhPHVMinIdx, Value(idx))
		}
	}
}

func (g *HHProgram) decideAction() Action {
	return func(c *Ctx) {
		if c.Meta(hhMetaClaim) == 1 {
			// The claim pass models the recirculated clone — in hardware
			// the original packet forwarded on its first pass and only
			// the clone re-entered; the clone ends here.
			c.Drop()
			return
		}
		if c.PHV(hhPHVMatched) == 1 {
			return
		}
		min := c.PHV(hhPHVMin)
		// PRECISION admission: probability 2^-len(min), evaluated as a
		// mask over the register-resident LCG. The RegOp returns the OLD
		// value, which is the draw — the same contract hh.Sketch models.
		r := c.RegOp(g.rng, 0, func(old Value) Value { return hh.LCGStep(old) })
		j := bits.Len32(min)
		var mask Value
		if j >= 32 {
			mask = ^Value(0)
		} else {
			mask = 1<<uint(j) - 1
		}
		if r&mask != 0 {
			return
		}
		c.SetMeta(hhMetaClaim, 1)
		c.SetMeta(hhMetaStage, c.PHV(hhPHVMinStage))
		c.SetMeta(hhMetaIdx, c.PHV(hhPHVMinIdx))
		c.SetMeta(hhMetaKey, c.Pkt.Field("entry")+1)
		c.SetMeta(hhMetaVal, min+1)
		c.Recirculate()
	}
}

// Inject runs one packet carrying the given entry through the program and
// follows its recirculation.
func (g *HHProgram) Inject(entry Value) (Result, error) {
	return g.Pipe.Process(NewPacket(map[string]Value{"entry": entry}))
}

// Slot exposes one cell (key+1 encoding, 0 = empty) for the equivalence
// test.
func (g *HHProgram) Slot(stage, idx int) (key, count Value) {
	return g.keys[stage].Peek(idx), g.counts[stage].Peek(idx)
}
