package dataplane

// This file compiles FANcY's receiver FSM onto the pipeline emulator,
// following the implementation strategy of Appendix B.1:
//
//   - State transitions take two pipeline passes. The first pass reads the
//     current state, matches the next_state table, test-and-sets the
//     state_lock register (dropping the packet if a transition is already
//     in flight), stores the planned transition in packet metadata and
//     recirculates. The second pass writes the new state, resets counters,
//     releases the lock and performs the transition action (emit an ACK,
//     emit a Report, ...).
//
//   - Reading the w counters of a tree node back out takes w recirculated
//     passes, one register access each — the cost the paper quotes for
//     counter comparison and report generation.

// Packet field and type encodings of the compiled FSM.
const (
	FieldType    = "type"
	FieldSession = "session"
	FieldIndex   = "idx"

	TypeTagged Value = 0 // tagged data packet
	TypeStart  Value = 1
	TypeStop   Value = 2
	TypeTimer  Value = 3 // Twait expiry, delivered by the traffic generator
)

// Receiver FSM states (Figure 3, right).
const (
	StateIdle       Value = 0
	StateCounting   Value = 1
	StateWaitToSend Value = 2
)

// Metadata keys.
const (
	metaPass    = "pass"    // 0 = first step, 1 = apply, 2 = readout
	metaState   = "state"   // state read in the first step
	metaNext    = "next"    // planned next state
	metaAckSess = "ackSess" // session to acknowledge
	metaReset   = "reset"   // reset counters during apply
	metaReport  = "report"  // start counter readout after apply
	metaRidx    = "ridx"    // readout index
)

// ReceiverProgram is the compiled FANcY receiver for one unit with a
// width-w counter node.
type ReceiverProgram struct {
	Pipe *Pipeline

	State   *Register // current FSM state
	Lock    *Register // state_lock
	Session *Register // current session number
	Node    *Register // counter node (width w; w=1 for a dedicated entry)

	width int
}

// BuildReceiver constructs the program. Width 1 models a dedicated-counter
// unit; larger widths model a tree node.
func BuildReceiver(width int) *ReceiverProgram {
	p := NewPipeline(3)
	r := &ReceiverProgram{
		Pipe:    p,
		State:   NewRegister("state", 1),
		Lock:    NewRegister("state_lock", 1),
		Session: NewRegister("session", 1),
		Node:    NewRegister("node", width),
		width:   width,
	}
	p.HomeRegister(r.State, 0)
	p.HomeRegister(r.Lock, 0)
	p.HomeRegister(r.Session, 1)
	p.HomeRegister(r.Node, 2)
	p.MaxRecirculations = width + 8

	// Stage 0, first step: read state, check/take the lock for control
	// packets, plan the transition.
	firstStep := &Table{
		Name: "next_state",
		Key: func(pkt *Packet) Value {
			if pkt.Meta[metaPass] != 0 {
				return 0xffff // skip: handled by later tables
			}
			return pkt.Field(FieldType)
		},
		Entries: map[Value]Action{
			TypeStart: func(c *Ctx) {
				if c.RegOp(r.Lock, 0, func(old Value) Value { return 1 }) != 0 {
					c.Drop() // transition already in flight
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, StateCounting)
				c.SetMeta(metaReset, 1)
				c.SetMeta(metaAckSess, c.Pkt.Field(FieldSession))
				c.Recirculate()
			},
			TypeStop: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != StateCounting {
					c.Drop()
					return
				}
				if c.RegOp(r.Lock, 0, func(old Value) Value { return 1 }) != 0 {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, StateWaitToSend)
				c.Recirculate()
			},
			TypeTimer: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != StateWaitToSend {
					c.Drop()
					return
				}
				if c.RegOp(r.Lock, 0, func(old Value) Value { return 1 }) != 0 {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, StateIdle)
				c.SetMeta(metaReport, 1)
				c.Recirculate()
			},
			TypeTagged: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != StateCounting && st != StateWaitToSend {
					c.Drop() // not in a counting session
					return
				}
				idx := int(c.Pkt.Field(FieldIndex))
				if idx >= r.width {
					c.Drop()
					return
				}
				c.RegOp(r.Node, idx, func(old Value) Value { return old + 1 })
			},
		},
	}
	p.Stage(0).AddTable(firstStep)

	// Stage 1, second step: apply the planned transition.
	apply := &Table{
		Name: "apply_transition",
		Key: func(pkt *Packet) Value {
			return pkt.Meta[metaPass]
		},
		Entries: map[Value]Action{
			1: func(c *Ctx) {
				next := c.Meta(metaNext)
				c.RegOp(r.State, 0, func(Value) Value { return next })
				if c.Meta(metaAckSess) != 0 || next == StateCounting {
					c.RegOp(r.Session, 0, func(Value) Value { return c.Meta(metaAckSess) })
					c.EmitMsg("start-ack", map[string]Value{"session": c.Meta(metaAckSess)})
				}
				if c.Meta(metaReset) != 0 && r.width == 1 {
					// A one-cell counter resets in the same pass; wider
					// nodes reset lazily during readout.
					c.RegOp(r.Node, 0, func(Value) Value { return 0 })
				}
				if c.Meta(metaReport) != 0 {
					// Begin the w-pass counter readout.
					c.SetMeta(metaPass, 2)
					c.SetMeta(metaRidx, 0)
					c.Recirculate()
					return
				}
				c.RegOp(r.Lock, 0, func(Value) Value { return 0 })
				c.Drop() // control packet consumed
			},
			2: func(c *Ctx) {
				// Readout pass: one counter per recirculation, resetting
				// it for the next session as we go.
				idx := int(c.Meta(metaRidx))
				v := c.RegOp(r.Node, idx, func(Value) Value { return 0 })
				c.EmitMsg("report-word", map[string]Value{"idx": Value(idx), "value": v})
				if idx+1 < r.width {
					c.SetMeta(metaRidx, Value(idx+1))
					c.Recirculate()
					return
				}
				c.EmitMsg("report-done", map[string]Value{"words": Value(r.width)})
				c.RegOp(r.Lock, 0, func(Value) Value { return 0 })
				c.Drop()
			},
		},
	}
	p.Stage(1).AddTable(apply)
	return r
}

// Inject runs one packet through the program and returns the result.
func (r *ReceiverProgram) Inject(typ, session, idx Value) (Result, error) {
	pkt := NewPacket(map[string]Value{
		FieldType: typ, FieldSession: session, FieldIndex: idx,
	})
	return r.Pipe.Process(pkt)
}

// CurrentState reads the FSM state from the control plane.
func (r *ReceiverProgram) CurrentState() Value { return r.State.Peek(0) }

// Locked reports whether a transition is in flight.
func (r *ReceiverProgram) Locked() bool { return r.Lock.Peek(0) != 0 }
