package dataplane

// The sender-side FANcY FSM compiled onto the pipeline emulator, completing
// the Appendix B pair. The sender drives sessions: it emits Start, waits
// for the ACK (counting nothing in between — the stop-and-wait guarantee
// that both sides count from the same packet), tags and counts data
// packets, emits Stop, and compares the downstream's report word by word —
// one recirculated pass per counter, carrying the running maximum-
// difference in packet metadata exactly as Appendix B.1 describes for the
// zooming algorithm's comparison step.

// Sender FSM states (Figure 3, left).
const (
	SenderIdle     Value = 0
	SenderWaitACK  Value = 1
	SenderCounting Value = 2
	SenderWaitRep  Value = 3
)

// Sender packet types (inputs to the sender pipeline).
const (
	SendData   Value = 0 // data packet heading out the monitored port
	SendKick   Value = 1 // control-plane kick: open a session
	SendACKIn  Value = 2 // Start ACK arrived from downstream
	SendTimer  Value = 3 // session timer expired: close the session
	SendReport Value = 4 // Report arrived; FieldIndex = report word index
)

// Additional metadata key for the comparison loop.
const metaRemote = "remote"

// SenderProgram is the compiled sender for one unit with a width-w node.
type SenderProgram struct {
	Pipe *Pipeline

	State   *Register
	Lock    *Register
	Session *Register
	Node    *Register

	width int

	// Comparison results surfaced to the control plane / reroute app:
	// the counter with the maximum positive difference in the last
	// completed session.
	LastMaxIdx  int
	LastMaxDiff Value
	Compared    uint64 // completed comparisons
}

// BuildSender constructs the sender program.
func BuildSender(width int) *SenderProgram {
	p := NewPipeline(3)
	r := &SenderProgram{
		Pipe:       p,
		State:      NewRegister("state", 1),
		Lock:       NewRegister("state_lock", 1),
		Session:    NewRegister("session", 1),
		Node:       NewRegister("node", width),
		width:      width,
		LastMaxIdx: -1,
	}
	p.HomeRegister(r.State, 0)
	p.HomeRegister(r.Lock, 0)
	p.HomeRegister(r.Session, 1)
	p.HomeRegister(r.Node, 2)
	p.MaxRecirculations = width + 8

	first := &Table{
		Name: "sender_next_state",
		Key: func(pkt *Packet) Value {
			if pkt.Meta[metaPass] != 0 {
				return 0xffff
			}
			return pkt.Field(FieldType)
		},
		Entries: map[Value]Action{
			SendKick: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != SenderIdle {
					c.Drop()
					return
				}
				if c.RegOp(r.Lock, 0, func(Value) Value { return 1 }) != 0 {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, SenderWaitACK)
				c.SetMeta(metaReset, 1)
				c.Recirculate()
			},
			SendACKIn: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != SenderWaitACK {
					c.Drop()
					return
				}
				if c.RegOp(r.Lock, 0, func(Value) Value { return 1 }) != 0 {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, SenderCounting)
				c.Recirculate()
			},
			SendTimer: func(c *Ctx) {
				st := c.RegOp(r.State, 0, nil)
				if st != SenderCounting {
					c.Drop()
					return
				}
				if c.RegOp(r.Lock, 0, func(Value) Value { return 1 }) != 0 {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 1)
				c.SetMeta(metaNext, SenderWaitRep)
				c.Recirculate()
			},
			SendData: func(c *Ctx) {
				// Data packets are forwarded regardless; they are counted
				// and tagged only while Counting (stop-and-wait pause).
				st := c.RegOp(r.State, 0, nil)
				if st != SenderCounting {
					return
				}
				idx := int(c.Pkt.Field(FieldIndex))
				if idx >= r.width {
					return
				}
				c.RegOp(r.Node, idx, func(old Value) Value { return old + 1 })
				c.EmitMsg("tagged", map[string]Value{"idx": Value(idx)})
			},
			SendReport: func(c *Ctx) {
				// Report words arrive one by one; compare each against the
				// local counter via a recirculated read-and-reset, keeping
				// the running max difference in metadata.
				st := c.RegOp(r.State, 0, nil)
				if st != SenderWaitRep {
					c.Drop()
					return
				}
				c.SetMeta(metaPass, 3)
				c.SetMeta(metaRemote, c.Pkt.Field(FieldIndex)) // remote count in idx field
				c.SetMeta(metaRidx, c.Pkt.Field(FieldSession)) // word index rides the session field
				c.Recirculate()
			},
		},
	}
	p.Stage(0).AddTable(first)

	apply := &Table{
		Name: "sender_apply",
		Key:  func(pkt *Packet) Value { return pkt.Meta[metaPass] },
		Entries: map[Value]Action{
			1: func(c *Ctx) {
				next := c.Meta(metaNext)
				c.RegOp(r.State, 0, func(Value) Value { return next })
				switch next {
				case SenderWaitACK:
					c.RegOp(r.Session, 0, func(old Value) Value { return old + 1 })
					c.EmitMsg("start", nil)
					if c.Meta(metaReset) != 0 && r.width == 1 {
						c.RegOp(r.Node, 0, func(Value) Value { return 0 })
					}
				case SenderWaitRep:
					c.EmitMsg("stop", nil)
				}
				c.RegOp(r.Lock, 0, func(Value) Value { return 0 })
				c.Drop()
			},
			3: func(c *Ctx) {
				// Comparison pass for one report word. The running
				// maximum lives in the program's zooming-state fields —
				// the max0/max1 registers of the hardware design — not in
				// packet metadata, which does not survive across the
				// separate report-word packets.
				idx := int(c.Meta(metaRidx))
				if idx >= r.width {
					c.Drop()
					return
				}
				local := c.RegOp(r.Node, idx, func(Value) Value { return 0 })
				remote := c.Meta(metaRemote)
				if local > remote && local-remote > r.LastMaxDiff {
					r.LastMaxDiff = local - remote
					r.LastMaxIdx = idx
				}
				if idx+1 < r.width {
					c.Drop()
					return
				}
				// Last word: close the session (back to Idle).
				c.RegOp(r.State, 0, func(Value) Value { return SenderIdle })
				r.Compared++
				c.EmitMsg("session-closed", map[string]Value{
					"maxIdx": Value(r.LastMaxIdx + 1), "maxDiff": r.LastMaxDiff,
				})
				c.Drop()
			},
		},
	}
	p.Stage(1).AddTable(apply)
	return r
}

// Inject runs one packet through the sender pipeline.
func (r *SenderProgram) Inject(typ, a, b Value) (Result, error) {
	pkt := NewPacket(map[string]Value{FieldType: typ, FieldSession: a, FieldIndex: b})
	return r.Pipe.Process(pkt)
}

// InjectReportWord delivers one report word (index, remote count).
func (r *SenderProgram) InjectReportWord(index int, remote Value) (Result, error) {
	return r.Inject(SendReport, Value(index), remote)
}

// CurrentState reads the FSM state from the control plane.
func (r *SenderProgram) CurrentState() Value { return r.State.Peek(0) }

// ResetComparison clears the last session's comparison maximum before a
// new session's report arrives.
func (r *SenderProgram) ResetComparison() {
	r.LastMaxIdx = -1
	r.LastMaxDiff = 0
}
