// Package dataplane emulates a Tofino-like programmable switch pipeline at
// the register-machine level: match-action tables arranged in stages,
// register arrays with the hardware's one-stateful-access-per-pass
// constraint, and packet recirculation.
//
// The FANcY prototype (Appendix B.1) cannot read a state, compute, and
// write the state back in a single pipeline pass, so every FSM transition
// is implemented in two steps: the first pass matches a next_state table,
// takes a state lock and recirculates the packet; the recirculated pass
// applies the update and releases the lock. Reading a width-w tree node
// back to the control logic likewise takes w recirculations, one register
// access each. This package reproduces those constraints so the FSM
// programs in fsm.go demonstrably fit them.
package dataplane

import (
	"errors"
	"fmt"
)

// Value is the register cell and metadata word size (32-bit, the width of
// Tofino stateful-ALU registers).
type Value = uint32

// Register is a stateful array pinned to one pipeline stage. The hardware
// allows a single read-modify-write per packet pass.
type Register struct {
	Name  string
	cells []Value
	stage int
}

// NewRegister allocates a register array with n cells.
func NewRegister(name string, n int) *Register {
	return &Register{Name: name, cells: make([]Value, n)}
}

// Len reports the number of cells.
func (r *Register) Len() int { return len(r.cells) }

// Peek reads a cell without the pipeline constraint (control-plane access,
// for tests and reports only).
func (r *Register) Peek(i int) Value { return r.cells[i] }

// Poke writes a cell from the control plane.
func (r *Register) Poke(i int, v Value) { r.cells[i] = v }

// Packet is the unit flowing through the emulated pipeline: header fields
// and per-pass metadata.
type Packet struct {
	Fields map[string]Value
	Meta   map[string]Value

	// Recirculations counts how many times the packet re-entered the
	// pipeline (Appendix B.1's resubmit/clone mechanism).
	Recirculations int
}

// NewPacket builds a packet with the given header fields.
func NewPacket(fields map[string]Value) *Packet {
	if fields == nil {
		fields = map[string]Value{}
	}
	return &Packet{Fields: fields, Meta: map[string]Value{}}
}

// Field reads a header field (0 when absent).
func (p *Packet) Field(name string) Value { return p.Fields[name] }

// Disposition is what the pipeline decided to do with a packet pass.
type Disposition int

// Dispositions.
const (
	Forward Disposition = iota
	Drop
	Recirculate
)

// Ctx is the per-pass execution context handed to actions.
type Ctx struct {
	Pkt  *Packet
	pipe *Pipeline

	disposition Disposition
	emits       []Emit
	accessed    map[*Register]bool
	newMeta     map[string]Value
	phv         map[string]Value
	err         error
}

// Emit is a control message or mirror the program generated this pass.
type Emit struct {
	Kind string
	Data map[string]Value
}

// RegOp performs the single allowed read-modify-write on a register cell
// and returns the OLD value (the stateful-ALU contract). A second access
// to the same register in one pass is a program bug and fails the pass.
func (c *Ctx) RegOp(r *Register, index int, update func(old Value) Value) Value {
	if c.accessed[r] {
		c.err = fmt.Errorf("dataplane: register %q accessed twice in one pass", r.Name)
		return 0
	}
	c.accessed[r] = true
	if index < 0 || index >= len(r.cells) {
		c.err = fmt.Errorf("dataplane: register %q index %d out of range", r.Name, index)
		return 0
	}
	old := r.cells[index]
	if update != nil {
		r.cells[index] = update(old)
	}
	return old
}

// SetMeta stores metadata for the NEXT pass: like resubmit metadata in
// hardware, writes become visible only after the packet re-enters the
// pipeline, so later tables of the current pass still see the old values.
func (c *Ctx) SetMeta(k string, v Value) {
	if c.newMeta == nil {
		c.newMeta = map[string]Value{}
	}
	c.newMeta[k] = v
}

// Meta reads metadata as it was when the pass started (0 when absent).
func (c *Ctx) Meta(k string) Value { return c.Pkt.Meta[k] }

// SetPHV writes a packet-header-vector scratch word. Unlike SetMeta, PHV
// writes are visible to LATER stages of the SAME pass — that is exactly
// what the hardware's intra-pipeline metadata bus provides — and are
// discarded when the pass ends, so nothing carries across a
// recirculation except explicit SetMeta state.
func (c *Ctx) SetPHV(k string, v Value) {
	if c.phv == nil {
		c.phv = map[string]Value{}
	}
	c.phv[k] = v
}

// PHV reads a scratch word written earlier in the current pass (0 when
// absent).
func (c *Ctx) PHV(k string) Value { return c.phv[k] }

// Recirculate resubmits the packet for another pass.
func (c *Ctx) Recirculate() { c.disposition = Recirculate }

// Drop discards the packet.
func (c *Ctx) Drop() { c.disposition = Drop }

// EmitMsg queues a generated control message (ACK, Report, ...).
func (c *Ctx) EmitMsg(kind string, data map[string]Value) {
	c.emits = append(c.emits, Emit{Kind: kind, Data: data})
}

// Action is one table entry's body.
type Action func(c *Ctx)

// Table is an exact-match match-action table.
type Table struct {
	Name    string
	Key     func(p *Packet) Value
	Entries map[Value]Action
	Default Action
}

// apply matches the packet and runs the chosen action.
func (t *Table) apply(c *Ctx) {
	if t.Key == nil {
		if t.Default != nil {
			t.Default(c)
		}
		return
	}
	if a, ok := t.Entries[t.Key(c.Pkt)]; ok {
		a(c)
		return
	}
	if t.Default != nil {
		t.Default(c)
	}
}

// Stage is one pipeline stage holding tables and the registers homed there.
type Stage struct {
	Name   string
	tables []*Table
}

// AddTable appends a table to the stage.
func (s *Stage) AddTable(t *Table) { s.tables = append(s.tables, t) }

// Pipeline is the emulated switch pipeline.
type Pipeline struct {
	stages    []*Stage
	registers []*Register

	// MaxRecirculations bounds resubmission loops (hardware recirculation
	// bandwidth is finite); exceeded passes error out.
	MaxRecirculations int

	// Stats.
	Passes   uint64
	Recircs  uint64
	Dropped  uint64
	Forwards uint64
}

// NewPipeline builds a pipeline with the given number of stages.
func NewPipeline(stages int) *Pipeline {
	p := &Pipeline{MaxRecirculations: 64}
	for i := 0; i < stages; i++ {
		p.stages = append(p.stages, &Stage{Name: fmt.Sprintf("stage%d", i)})
	}
	return p
}

// Stage returns stage i.
func (p *Pipeline) Stage(i int) *Stage { return p.stages[i] }

// HomeRegister pins a register to a stage, reflecting the per-stage memory
// split of real pipelines (§2.3): the binding constraint for an in-switch
// application is the maximum per-stage memory, which MemoryByStage reports.
func (p *Pipeline) HomeRegister(r *Register, stage int) *Register {
	r.stage = stage
	p.registers = append(p.registers, r)
	return r
}

// MemoryByStage reports the register cells homed in each stage.
func (p *Pipeline) MemoryByStage() []int {
	out := make([]int, len(p.stages))
	for _, r := range p.registers {
		if r.stage >= 0 && r.stage < len(out) {
			out[r.stage] += len(r.cells)
		}
	}
	return out
}

// ErrRecircBudget is returned when a packet exceeds MaxRecirculations.
var ErrRecircBudget = errors.New("dataplane: recirculation budget exceeded")

// Result summarizes the processing of one packet until it leaves the
// pipeline (forwarded or dropped).
type Result struct {
	Disposition Disposition
	Passes      int
	Emits       []Emit
}

// Process runs pkt through the pipeline, following recirculations.
func (p *Pipeline) Process(pkt *Packet) (Result, error) {
	var res Result
	for {
		c := &Ctx{Pkt: pkt, pipe: p, accessed: make(map[*Register]bool)}
		p.Passes++
		res.Passes++
		for _, st := range p.stages {
			for _, t := range st.tables {
				t.apply(c)
				if c.err != nil {
					return res, c.err
				}
			}
		}
		res.Emits = append(res.Emits, c.emits...)
		for k, v := range c.newMeta {
			pkt.Meta[k] = v
		}
		switch c.disposition {
		case Recirculate:
			pkt.Recirculations++
			p.Recircs++
			if pkt.Recirculations > p.MaxRecirculations {
				return res, ErrRecircBudget
			}
			continue
		case Drop:
			p.Dropped++
			res.Disposition = Drop
			return res, nil
		default:
			p.Forwards++
			res.Disposition = Forward
			return res, nil
		}
	}
}
