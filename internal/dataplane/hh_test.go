package dataplane

import (
	"math/rand"
	"testing"

	"fancy/internal/hh"
	"fancy/internal/netsim"
)

// TestHHProgramEquivalence is the contract between the control-plane
// sketch model and the register-level program: fed the same packet
// sequence they must hold identical slot contents (keys and counts in
// every stage), make identical admission decisions, and leave the
// admission RNG in the same state. This is what lets the switch agent
// reason about the dataplane stage using hh.Sketch alone.
func TestHHProgramEquivalence(t *testing.T) {
	p := hh.Params{Stages: 3, Width: 16, Seed: 2026}
	sk := hh.NewSketch(p)
	g := BuildHeavyHitter(p)

	rng := rand.New(rand.NewSource(8))
	z := rand.NewZipf(rng, 1.2, 1, 120)
	admitted := 0
	for i := 0; i < 8000; i++ {
		entry := uint32(z.Uint64())
		wantAdmit := sk.Observe(netsim.EntryID(entry))
		res, err := g.Inject(Value(entry))
		if err != nil {
			t.Fatalf("packet %d (entry %d): %v", i, entry, err)
		}
		gotAdmit := res.Passes == 2
		if gotAdmit != wantAdmit {
			t.Fatalf("packet %d (entry %d): program admit=%v, sketch admit=%v", i, entry, gotAdmit, wantAdmit)
		}
		if wantAdmit {
			admitted++
			if res.Disposition != Drop {
				t.Fatalf("claim pass disposition = %v, want Drop (clone consumed)", res.Disposition)
			}
		} else if res.Disposition != Forward || res.Passes != 1 {
			t.Fatalf("non-admitted packet: disposition=%v passes=%d", res.Disposition, res.Passes)
		}
	}
	if admitted == 0 {
		t.Fatal("no admissions in 8000 packets — nothing was exercised")
	}
	_, recircs := sk.Window()
	if g.Pipe.Recircs != recircs {
		t.Fatalf("recirculations: program %d, sketch %d", g.Pipe.Recircs, recircs)
	}
	for stage := 0; stage < p.Stages; stage++ {
		for idx := 0; idx < p.Width; idx++ {
			gk, gc := g.Slot(stage, idx)
			sk2, sc := sk.Slot(stage, idx)
			if gk != sk2 || gc != sc {
				t.Fatalf("slot [%d][%d]: program (key=%d,count=%d), sketch (key=%d,count=%d)",
					stage, idx, gk, gc, sk2, sc)
			}
		}
	}
}

// TestHHProgramStageBudget: the program must respect the hardware
// constraints the emulator enforces — most importantly one stateful access
// per register per pass (RegOp errors out otherwise, which the equivalence
// test would surface) — and home each stage's registers in distinct
// stages so the per-stage memory report is meaningful.
func TestHHProgramStageBudget(t *testing.T) {
	p := hh.Params{Stages: 4, Width: 32, Seed: 1}
	g := BuildHeavyHitter(p)
	mem := g.Pipe.MemoryByStage()
	if len(mem) != p.Stages+1 {
		t.Fatalf("pipeline has %d stages, want %d", len(mem), p.Stages+1)
	}
	for i := 0; i < p.Stages; i++ {
		if mem[i] != 2*p.Width {
			t.Errorf("stage %d homes %d cells, want %d (keys+counts)", i, mem[i], 2*p.Width)
		}
	}
	if mem[p.Stages] != 1 {
		t.Errorf("decision stage homes %d cells, want 1 (rng)", mem[p.Stages])
	}
}

// TestHHProgramPHVScratchIsPerPass: PHV state must not leak across
// passes; a value set in one pass reads as zero after a recirculation.
func TestHHProgramPHVScratchIsPerPass(t *testing.T) {
	pipe := NewPipeline(1)
	var second Value
	passes := 0
	pipe.Stage(0).AddTable(&Table{Name: "t", Default: func(c *Ctx) {
		passes++
		if passes == 1 {
			c.SetPHV("x", 7)
			if c.PHV("x") != 7 {
				t.Error("PHV not visible later in the same pass")
			}
			c.Recirculate()
			return
		}
		second = c.PHV("x")
	}})
	if _, err := pipe.Process(NewPacket(nil)); err != nil {
		t.Fatal(err)
	}
	if second != 0 {
		t.Fatalf("PHV leaked across passes: %d", second)
	}
}
